//! Umbrella crate re-exporting the full ACM crossbar stack.
#![deny(missing_docs)]
pub use xbar_core as core;
pub use xbar_data as data;
pub use xbar_device as device;
pub use xbar_models as models;
pub use xbar_neurosim as neurosim;
pub use xbar_nn as nn;
pub use xbar_tensor as tensor;
