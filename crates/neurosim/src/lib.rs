//! # xbar-neurosim
//!
//! An analytical system-level cost model of a crossbar-array DNN
//! accelerator, in the spirit of the NeuroSim+ tool the paper uses for its
//! Table I ("System-level results of the three mapping approaches for
//! training a two-layered MLP on XBar arrays").
//!
//! The model prices a workload (a stack of fully connected layer
//! dimensions) under each [`xbar_core::Mapping`] as four metrics — crossbar area,
//! periphery area, read energy per training epoch, and read delay — using
//! per-component power laws in the device-column count:
//!
//! * **Crossbar area** grows slightly superlinearly with columns
//!   (`cols^1.21`): longer rows need upsized wordline drivers and relaxed
//!   wire pitch;
//! * **Periphery area** grows sublinearly (`cols^0.67`): the MUX tree,
//!   ADCs, adders, and shift registers are shared across columns;
//! * **Read energy** grows strongly superlinearly (`cols^2.62`): the row
//!   wires lengthen with the column count (higher capacitance per row
//!   activation) *and* more MUX cycles are needed per MVM — the paper's
//!   "7× read energy due to the longer wires for rows of the XBar array";
//! * **Read delay** grows sublinearly (`cols^0.43`): extra columns are
//!   largely hidden behind ADC pipelining, surfacing only as additional
//!   MUX cycles.
//!
//! The coefficients and exponents of [`TechParams::nm14`] are calibrated
//! against the paper's published NeuroSim+ 14 nm results (Table I) on its
//! 2-layer MLP workload; the model then extrapolates to other layer
//! shapes. This reproduces the *relative* costs the paper reports (BC =
//! ACM exactly; DE ≈ 2.3× area, ≈ 6–7× energy, ≈ 1.33× delay) by
//! construction and keeps absolute numbers in the paper's units.
//!
//! # Example
//!
//! ```
//! use xbar_core::Mapping;
//! use xbar_neurosim::{evaluate, TechParams, Workload};
//!
//! let params = TechParams::nm14();
//! let mlp = Workload::table1_mlp();
//! let acm = evaluate(&mlp, Mapping::Acm, &params);
//! let de = evaluate(&mlp, Mapping::DoubleElement, &params);
//! assert!(de.read_energy_uj / acm.read_energy_uj > 5.0);
//! ```

#![deny(missing_docs)]

mod cost;
mod params;
mod workload;

pub use cost::{
    evaluate, evaluate_tiled, evaluate_tiled_with_line, evaluate_with_adc, table1, CostReport,
    TiledCostReport, ADC_CALIBRATION_BITS, ADC_PERIPH_FRACTION,
};
pub use params::TechParams;
pub use workload::{LayerDims, Workload};
