/// Dimensions of one fully connected layer mapped onto a crossbar tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerDims {
    /// Number of layer inputs (crossbar rows).
    pub inputs: usize,
    /// Number of signed layer outputs (before mapping expansion).
    pub outputs: usize,
}

impl LayerDims {
    /// Creates layer dimensions.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(inputs: usize, outputs: usize) -> Self {
        assert!(inputs > 0 && outputs > 0, "layer dims must be positive");
        Self { inputs, outputs }
    }
}

/// A crossbar workload: an ordered stack of fully connected layers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Workload {
    layers: Vec<LayerDims>,
    name: String,
}

impl Workload {
    /// Creates a workload from layer dimensions.
    ///
    /// # Panics
    ///
    /// Panics if `layers` is empty.
    pub fn new(layers: Vec<LayerDims>, name: impl Into<String>) -> Self {
        assert!(!layers.is_empty(), "workload needs at least one layer");
        Self {
            layers,
            name: name.into(),
        }
    }

    /// The paper's Table I workload: a two-layer MLP of MNIST scale
    /// (400-100-10, the NeuroSim+ MLP reference network).
    pub fn table1_mlp() -> Self {
        Self::new(
            vec![LayerDims::new(400, 100), LayerDims::new(100, 10)],
            "2-layer MLP 400-100-10",
        )
    }

    /// The layers.
    pub fn layers(&self) -> &[LayerDims] {
        &self.layers
    }

    /// Workload name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_workload_shape() {
        let w = Workload::table1_mlp();
        assert_eq!(w.layers().len(), 2);
        assert_eq!(w.layers()[0], LayerDims::new(400, 100));
        assert_eq!(w.layers()[1], LayerDims::new(100, 10));
        assert!(w.name().contains("MLP"));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_dims() {
        let _ = LayerDims::new(0, 10);
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn rejects_empty_workload() {
        let _ = Workload::new(vec![], "empty");
    }
}
