use xbar_core::{Mapping, MappingError, TileGrid, TileShape};

use crate::{TechParams, Workload};

/// System-level cost of running a workload under one mapping — the four
/// rows of the paper's Table I.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostReport {
    /// The mapping priced.
    pub mapping: Mapping,
    /// Crossbar array area (µm²).
    pub xbar_area_um2: f64,
    /// Periphery area: MUX, ADC, wordline decoder, bit/select-line switch
    /// matrices, adders, shift registers (µm²).
    pub periphery_area_um2: f64,
    /// Read energy for one training epoch (µJ).
    pub read_energy_uj: f64,
    /// Read delay for one training epoch (ms).
    pub read_delay_ms: f64,
}

impl CostReport {
    /// Total (crossbar + periphery) area.
    pub fn total_area_um2(&self) -> f64 {
        self.xbar_area_um2 + self.periphery_area_um2
    }
}

/// Prices `workload` under `mapping` with the given technology parameters.
pub fn evaluate(workload: &Workload, mapping: Mapping, params: &TechParams) -> CostReport {
    let mut xbar_area = 0.0;
    let mut periph_area = 0.0;
    let mut energy = 0.0;
    let mut delay = 0.0;
    for layer in workload.layers() {
        let rows = layer.inputs as f64;
        let cols = mapping.num_device_columns(layer.outputs) as f64;
        xbar_area += params.area_coeff_um2 * rows * cols.powf(params.area_exp);
        periph_area += params.periph_coeff_um2 * cols.powf(params.periph_exp);
        energy += params.energy_coeff_uj * rows * cols.powf(params.energy_exp);
        delay += params.delay_coeff_ms * cols.powf(params.delay_exp);
    }
    CostReport {
        mapping,
        xbar_area_um2: xbar_area,
        periphery_area_um2: periph_area,
        read_energy_uj: energy,
        read_delay_ms: delay,
    }
}

/// Fraction of the periphery cost attributable to the column ADCs at the
/// 8-bit calibration point — the converter dominates the read periphery
/// (MUX/decoder/adders make up the rest), as in NeuroSim-style
/// breakdowns.
pub const ADC_PERIPH_FRACTION: f64 = 0.58;

/// The ADC bit width the [`TechParams`] coefficients are calibrated at
/// (the paper's Table I setting).
pub const ADC_CALIBRATION_BITS: u8 = 8;

/// Prices `workload` under `mapping` with a `adc_bits`-wide column ADC.
///
/// First-order SAR model: a successive-approximation converter spends one
/// comparison cycle per bit, so its area, conversion energy, and
/// conversion delay all scale *linearly* in the bit count. The
/// [`TechParams`] coefficients are calibrated at
/// [`ADC_CALIBRATION_BITS`]; this re-prices the ADC share
/// ([`ADC_PERIPH_FRACTION`]) of the periphery area, read energy, and read
/// delay by `adc_bits / 8`, leaving the crossbar array and the non-ADC
/// periphery untouched. At `adc_bits = 8` the result equals
/// [`evaluate`] exactly.
pub fn evaluate_with_adc(
    workload: &Workload,
    mapping: Mapping,
    params: &TechParams,
    adc_bits: u8,
) -> CostReport {
    let base = evaluate(workload, mapping, params);
    let factor = adc_bits as f64 / ADC_CALIBRATION_BITS as f64;
    // Written as `1 + f·(factor − 1)` so the calibration point is exact.
    let rescale = |v: f64| v * (1.0 + ADC_PERIPH_FRACTION * (factor - 1.0));
    CostReport {
        mapping,
        xbar_area_um2: base.xbar_area_um2,
        periphery_area_um2: rescale(base.periphery_area_um2),
        read_energy_uj: rescale(base.read_energy_uj),
        read_delay_ms: rescale(base.read_delay_ms),
    }
}

/// Reproduces the paper's Table I: all three mappings priced on the
/// two-layer MLP workload, in the paper's row order (BC, DE, ACM).
pub fn table1(params: &TechParams) -> Vec<CostReport> {
    let workload = Workload::table1_mlp();
    Mapping::ALL
        .iter()
        .map(|&m| evaluate(&workload, m, params))
        .collect()
}

/// System-level cost of a workload split across a grid of physical
/// crossbar tiles — the tile-granular refinement of [`CostReport`].
///
/// Where [`evaluate`] prices one arbitrarily large array per layer, this
/// prices what actually gets fabricated: whole tiles (area is paid for
/// every cell of every tile, occupied or not), a periphery instance per
/// tile, and one replicated reference column per extra column group for
/// BC/ACM — the tiling overhead the monolithic model cannot see.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TiledCostReport {
    /// The mapping priced.
    pub mapping: Mapping,
    /// The physical tile shape.
    pub tile: TileShape,
    /// Total physical arrays across all layers.
    pub num_tiles: usize,
    /// Total device columns across all layers (per-group `N_D`
    /// accounting: `outputs + 1` per column group for BC/ACM).
    pub nd_total: usize,
    /// Reference columns that exist only because of tiling (zero for DE
    /// and for layers that fit one tile).
    pub replicated_reference_columns: usize,
    /// Fabricated crossbar area: every cell of every tile (µm²).
    pub xbar_area_um2: f64,
    /// Periphery area, one instance per tile (µm²).
    pub periphery_area_um2: f64,
    /// Read energy for one training epoch, on occupied cells (µJ).
    pub read_energy_uj: f64,
    /// Read delay for one training epoch: tiles convert in parallel, so
    /// each layer pays its widest column group (ms).
    pub read_delay_ms: f64,
    /// Worst-case IR-drop attenuation over all tiles: the signal fraction
    /// surviving at the far corner of the largest tile,
    /// `1 / (1 + r·(dev_len + row_len))`. Exactly `1.0` when the
    /// line-resistance fraction is zero.
    pub ir_worst_attenuation: f64,
    /// Read energy including the IR-drop penalty (µJ): the wordline
    /// drivers make up the power dissipated in the line parasitics, so
    /// each layer's energy scales by the reciprocal of its worst-corner
    /// attenuation. Equals [`read_energy_uj`](Self::read_energy_uj) at
    /// zero line resistance.
    pub read_energy_ir_uj: f64,
    /// Read delay including the IR-drop penalty (ms): the sense margin
    /// shrinks with the attenuation, so the integration window stretches
    /// by its reciprocal. Equals [`read_delay_ms`](Self::read_delay_ms)
    /// at zero line resistance.
    pub read_delay_ir_ms: f64,
}

impl TiledCostReport {
    /// Total (crossbar + periphery) area.
    pub fn total_area_um2(&self) -> f64 {
        self.xbar_area_um2 + self.periphery_area_um2
    }
}

/// Prices `workload` under `mapping` split across `tile`-sized physical
/// arrays.
///
/// # Errors
///
/// Returns an error if the tile is too narrow to hold one output under
/// `mapping` (fewer than two device columns).
pub fn evaluate_tiled(
    workload: &Workload,
    mapping: Mapping,
    tile: TileShape,
    params: &TechParams,
) -> Result<TiledCostReport, MappingError> {
    evaluate_tiled_with_line(workload, mapping, tile, params, 0.0)
}

/// Prices `workload` under `mapping` split across `tile`-sized physical
/// arrays with parasitic wire resistance.
///
/// `r_frac` is the per-segment line resistance as a fraction of a device's
/// on-resistance — the same parameter as
/// `xbar_device::LineResistanceModel`. The signal reaching a cell `d`
/// columns and `i` rows from the drivers is attenuated by
/// `1 / (1 + r·((d+1)+(i+1)))`, so the worst corner of a tile of
/// `row_len × dev_len` occupied cells sees `1 / (1 + r·(dev_len +
/// row_len))`. IR drop restarts at every tile boundary, which is why the
/// penalty is per-tile, not per-layer: smaller tiles trade fabricated
/// area for shorter, cleaner lines.
///
/// The base (`read_energy_uj`, `read_delay_ms`) fields are unchanged by
/// `r_frac`; the `*_ir_*` fields carry the penalty so callers can rank
/// both with and without parasitics from one report.
///
/// # Errors
///
/// Returns an error if the tile is too narrow to hold one output under
/// `mapping` (fewer than two device columns).
pub fn evaluate_tiled_with_line(
    workload: &Workload,
    mapping: Mapping,
    tile: TileShape,
    params: &TechParams,
    r_frac: f64,
) -> Result<TiledCostReport, MappingError> {
    let tile_cols = tile.cols as f64;
    let mut report = TiledCostReport {
        mapping,
        tile,
        num_tiles: 0,
        nd_total: 0,
        replicated_reference_columns: 0,
        xbar_area_um2: 0.0,
        periphery_area_um2: 0.0,
        read_energy_uj: 0.0,
        read_delay_ms: 0.0,
        ir_worst_attenuation: 1.0,
        read_energy_ir_uj: 0.0,
        read_delay_ir_ms: 0.0,
    };
    for layer in workload.layers() {
        let grid = TileGrid::new(layer.outputs, layer.inputs, mapping, Some(tile))?;
        report.num_tiles += grid.num_tiles();
        report.nd_total += grid.nd_total();
        report.replicated_reference_columns += grid.replicated_reference_columns();
        // Area is fabricated, not occupied: a ragged edge tile costs as
        // much silicon as a full one.
        report.xbar_area_um2 += grid.num_tiles() as f64
            * params.area_coeff_um2
            * tile.rows as f64
            * tile_cols.powf(params.area_exp);
        let row_blocks = grid.row_blocks();
        let longest_rows = row_blocks.iter().map(|&(_, len)| len).max().unwrap_or(0);
        let mut widest = 0.0f64;
        let mut layer_energy = 0.0;
        for g in grid.col_groups() {
            let cols = g.dev_len as f64;
            // One periphery instance (MUX/ADC/decoder/adders) per tile in
            // this group's column strip.
            report.periphery_area_um2 +=
                row_blocks.len() as f64 * params.periph_coeff_um2 * cols.powf(params.periph_exp);
            // Energy scales with the cells actually driven.
            layer_energy +=
                params.energy_coeff_uj * layer.inputs as f64 * cols.powf(params.energy_exp);
            widest = widest.max(cols);
        }
        // Tiles convert in parallel; the layer's read waits for its
        // widest column group.
        let layer_delay = params.delay_coeff_ms * widest.powf(params.delay_exp);
        report.read_energy_uj += layer_energy;
        report.read_delay_ms += layer_delay;
        // Worst IR corner of the layer: the tile pairing the widest
        // column group with the tallest row block.
        let attenuation = 1.0 / (1.0 + r_frac * (widest + longest_rows as f64));
        report.ir_worst_attenuation = report.ir_worst_attenuation.min(attenuation);
        report.read_energy_ir_uj += layer_energy / attenuation;
        report.read_delay_ir_ms += layer_delay / attenuation;
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pct_close(a: f64, b: f64, pct: f64) -> bool {
        (a - b).abs() / b <= pct / 100.0
    }

    #[test]
    fn bc_and_acm_costs_are_identical() {
        // Paper: "Read energy, area, and read delay values for BC and ACM
        // approaches are exactly the same."
        let p = TechParams::nm14();
        let w = Workload::table1_mlp();
        let bc = evaluate(&w, Mapping::BiasColumn, &p);
        let acm = evaluate(&w, Mapping::Acm, &p);
        assert_eq!(bc.xbar_area_um2, acm.xbar_area_um2);
        assert_eq!(bc.periphery_area_um2, acm.periphery_area_um2);
        assert_eq!(bc.read_energy_uj, acm.read_energy_uj);
        assert_eq!(bc.read_delay_ms, acm.read_delay_ms);
    }

    #[test]
    #[allow(clippy::approx_constant)] // 0.318 ms is the paper's DE delay, not 1/pi
    fn reproduces_table1_absolute_values() {
        let reports = table1(&TechParams::nm14());
        let bc = &reports[0];
        let de = &reports[1];
        let acm = &reports[2];
        assert_eq!(bc.mapping, Mapping::BiasColumn);
        assert_eq!(de.mapping, Mapping::DoubleElement);
        assert_eq!(acm.mapping, Mapping::Acm);
        // Paper Table I, within 2% (the model is calibrated on these).
        assert!(
            pct_close(bc.xbar_area_um2, 914.0, 2.0),
            "{}",
            bc.xbar_area_um2
        );
        assert!(
            pct_close(bc.periphery_area_um2, 157.0, 2.0),
            "{}",
            bc.periphery_area_um2
        );
        assert!(
            pct_close(bc.read_energy_uj, 2.402, 2.0),
            "{}",
            bc.read_energy_uj
        );
        assert!(
            pct_close(bc.read_delay_ms, 0.240, 2.0),
            "{}",
            bc.read_delay_ms
        );
        assert!(
            pct_close(de.xbar_area_um2, 2088.0, 2.0),
            "{}",
            de.xbar_area_um2
        );
        assert!(
            pct_close(de.periphery_area_um2, 246.0, 2.0),
            "{}",
            de.periphery_area_um2
        );
        assert!(
            pct_close(de.read_energy_uj, 14.408, 2.0),
            "{}",
            de.read_energy_uj
        );
        assert!(
            pct_close(de.read_delay_ms, 0.318, 2.0),
            "{}",
            de.read_delay_ms
        );
    }

    #[test]
    fn headline_ratios_match_paper_text() {
        let reports = table1(&TechParams::nm14());
        let (de, acm) = (&reports[1], &reports[2]);
        // "DE uses 2.3x XBar area compared to the ACM"
        let area_ratio = de.xbar_area_um2 / acm.xbar_area_um2;
        assert!(area_ratio > 2.2 && area_ratio < 2.4, "{area_ratio}");
        // "The read energy of DE is [6-7]x more than that of the ACM"
        let energy_ratio = de.read_energy_uj / acm.read_energy_uj;
        assert!(energy_ratio > 5.5 && energy_ratio < 7.5, "{energy_ratio}");
        // "DE has a 1.33x higher read delay"
        let delay_ratio = de.read_delay_ms / acm.read_delay_ms;
        assert!(delay_ratio > 1.25 && delay_ratio < 1.42, "{delay_ratio}");
    }

    #[test]
    fn extrapolates_monotonically_with_layer_width() {
        // A wider MLP must cost more in every metric under every mapping.
        let p = TechParams::nm14();
        let small = Workload::new(vec![crate::LayerDims::new(100, 20)], "small");
        let large = Workload::new(vec![crate::LayerDims::new(100, 200)], "large");
        for m in Mapping::ALL {
            let s = evaluate(&small, m, &p);
            let l = evaluate(&large, m, &p);
            assert!(l.xbar_area_um2 > s.xbar_area_um2);
            assert!(l.periphery_area_um2 > s.periphery_area_um2);
            assert!(l.read_energy_uj > s.read_energy_uj);
            assert!(l.read_delay_ms > s.read_delay_ms);
        }
    }

    #[test]
    fn total_area_sums_components() {
        let r = table1(&TechParams::nm14());
        assert!(
            (r[0].total_area_um2() - (r[0].xbar_area_um2 + r[0].periphery_area_um2)).abs() < 1e-9
        );
    }

    #[test]
    fn tiled_bc_and_acm_costs_are_identical() {
        // BC and ACM fit the same outputs per tile (cols − 1), so their
        // grids — and therefore every tiled cost — coincide exactly, the
        // tile-granular form of the paper's BC ≡ ACM cost identity.
        let p = TechParams::nm14();
        let w = Workload::table1_mlp();
        for tile in [TileShape::standard(), TileShape::new(64, 32)] {
            let bc = evaluate_tiled(&w, Mapping::BiasColumn, tile, &p).unwrap();
            let acm = evaluate_tiled(&w, Mapping::Acm, tile, &p).unwrap();
            assert_eq!(bc.num_tiles, acm.num_tiles);
            assert_eq!(bc.nd_total, acm.nd_total);
            assert_eq!(
                bc.replicated_reference_columns,
                acm.replicated_reference_columns
            );
            assert_eq!(bc.xbar_area_um2, acm.xbar_area_um2);
            assert_eq!(bc.periphery_area_um2, acm.periphery_area_um2);
            assert_eq!(bc.read_energy_uj, acm.read_energy_uj);
            assert_eq!(bc.read_delay_ms, acm.read_delay_ms);
        }
    }

    #[test]
    fn tiled_de_needs_about_double_the_tiles_of_acm() {
        let p = TechParams::nm14();
        let w = Workload::table1_mlp();
        let tile = TileShape::standard();
        let de = evaluate_tiled(&w, Mapping::DoubleElement, tile, &p).unwrap();
        let acm = evaluate_tiled(&w, Mapping::Acm, tile, &p).unwrap();
        assert!(de.num_tiles >= acm.num_tiles);
        assert!(de.nd_total > acm.nd_total);
        assert!(de.xbar_area_um2 > acm.xbar_area_um2);
        // DE has no shared reference to replicate.
        assert_eq!(de.replicated_reference_columns, 0);
    }

    #[test]
    fn tiling_wide_layers_replicates_references() {
        let p = TechParams::nm14();
        // 400-output layer on 128-wide tiles: ceil(400/127) = 4 column
        // groups for ACM → 3 extra reference columns.
        let w = Workload::new(vec![crate::LayerDims::new(256, 400)], "wide");
        let acm = evaluate_tiled(&w, Mapping::Acm, TileShape::standard(), &p).unwrap();
        assert_eq!(acm.replicated_reference_columns, 3);
        assert_eq!(acm.nd_total, 404);
        // Smaller tiles → more groups → more replicated references and
        // more fabricated area.
        let small = evaluate_tiled(&w, Mapping::Acm, TileShape::new(64, 64), &p).unwrap();
        assert!(small.replicated_reference_columns > acm.replicated_reference_columns);
        assert!(small.num_tiles > acm.num_tiles);
    }

    #[test]
    fn tiled_area_covers_fabricated_cells_not_just_occupied() {
        let p = TechParams::nm14();
        // A layer occupying a sliver of one tile still pays the full tile.
        let w = Workload::new(vec![crate::LayerDims::new(4, 4)], "sliver");
        let tiled = evaluate_tiled(&w, Mapping::Acm, TileShape::standard(), &p).unwrap();
        let mono = evaluate(&w, Mapping::Acm, &p);
        assert_eq!(tiled.num_tiles, 1);
        assert!(tiled.xbar_area_um2 > mono.xbar_area_um2 * 100.0);
        // Energy is on occupied cells, so it matches the monolithic model.
        assert!((tiled.read_energy_uj - mono.read_energy_uj).abs() < 1e-12);
    }

    #[test]
    fn ir_fields_match_base_at_zero_line_resistance() {
        // The degenerate point: no wire resistance, no penalty — the IR
        // fields collapse onto the base fields exactly.
        let p = TechParams::nm14();
        let w = Workload::table1_mlp();
        for m in Mapping::ALL {
            let r = evaluate_tiled(&w, m, TileShape::standard(), &p).unwrap();
            assert_eq!(r.ir_worst_attenuation, 1.0);
            assert_eq!(r.read_energy_ir_uj, r.read_energy_uj);
            assert_eq!(r.read_delay_ir_ms, r.read_delay_ms);
        }
    }

    #[test]
    fn ir_penalty_grows_with_line_resistance() {
        let p = TechParams::nm14();
        let w = Workload::table1_mlp();
        let tile = TileShape::standard();
        let mut last_att = 1.0;
        let mut last_energy = 0.0;
        let mut last_delay = 0.0;
        for (i, r_frac) in [0.0, 0.001, 0.005, 0.02].into_iter().enumerate() {
            let r = evaluate_tiled_with_line(&w, Mapping::Acm, tile, &p, r_frac).unwrap();
            if i > 0 {
                assert!(
                    r.ir_worst_attenuation < last_att,
                    "{}",
                    r.ir_worst_attenuation
                );
                assert!(r.read_energy_ir_uj > last_energy);
                assert!(r.read_delay_ir_ms > last_delay);
            }
            // The base fields never move with r.
            let base = evaluate_tiled(&w, Mapping::Acm, tile, &p).unwrap();
            assert_eq!(r.read_energy_uj, base.read_energy_uj);
            assert_eq!(r.read_delay_ms, base.read_delay_ms);
            last_att = r.ir_worst_attenuation;
            last_energy = r.read_energy_ir_uj;
            last_delay = r.read_delay_ir_ms;
        }
    }

    #[test]
    fn ir_aware_costs_preserve_bc_acm_perm_identity() {
        // BC, ACM, and Perm share outputs-per-tile (cols − 1), so their
        // grids — and every cost, parasitic or not — coincide exactly.
        // Perm only reorders rows inside each tile, which moves no wire.
        let p = TechParams::nm14();
        let w = Workload::table1_mlp();
        let tile = TileShape::standard();
        let bc = evaluate_tiled_with_line(&w, Mapping::BiasColumn, tile, &p, 0.01).unwrap();
        for m in [Mapping::Acm, Mapping::Perm] {
            let r = evaluate_tiled_with_line(&w, m, tile, &p, 0.01).unwrap();
            assert_eq!(r.num_tiles, bc.num_tiles);
            assert_eq!(r.nd_total, bc.nd_total);
            assert_eq!(r.ir_worst_attenuation, bc.ir_worst_attenuation);
            assert_eq!(r.read_energy_ir_uj, bc.read_energy_ir_uj);
            assert_eq!(r.read_delay_ir_ms, bc.read_delay_ir_ms);
        }
    }

    #[test]
    fn smaller_tiles_soften_the_worst_ir_corner() {
        // IR drop restarts at every tile boundary: quartering the tile
        // shortens the worst line, at the price of more tiles (and a
        // periphery instance on each).
        let p = TechParams::nm14();
        let w = Workload::table1_mlp();
        let big =
            evaluate_tiled_with_line(&w, Mapping::Acm, TileShape::standard(), &p, 0.01).unwrap();
        let small =
            evaluate_tiled_with_line(&w, Mapping::Acm, TileShape::new(64, 64), &p, 0.01).unwrap();
        assert!(small.ir_worst_attenuation > big.ir_worst_attenuation);
        assert!(small.num_tiles > big.num_tiles);
    }

    #[test]
    fn adc_cost_is_calibrated_at_eight_bits_and_monotone() {
        let p = TechParams::nm14();
        let w = Workload::table1_mlp();
        let base = evaluate(&w, Mapping::Acm, &p);
        let at8 = evaluate_with_adc(&w, Mapping::Acm, &p, ADC_CALIBRATION_BITS);
        assert_eq!(at8, base);
        // Narrower converters are cheaper, wider ones dearer, on every
        // ADC-bearing axis; the array itself never moves.
        let mut last = evaluate_with_adc(&w, Mapping::Acm, &p, 2);
        for bits in 3..=12u8 {
            let r = evaluate_with_adc(&w, Mapping::Acm, &p, bits);
            assert!(r.periphery_area_um2 > last.periphery_area_um2);
            assert!(r.read_energy_uj > last.read_energy_uj);
            assert!(r.read_delay_ms > last.read_delay_ms);
            assert_eq!(r.xbar_area_um2, base.xbar_area_um2);
            last = r;
        }
        // The non-ADC periphery share never scales away.
        let narrow = evaluate_with_adc(&w, Mapping::Acm, &p, 2);
        assert!(narrow.periphery_area_um2 > base.periphery_area_um2 * (1.0 - ADC_PERIPH_FRACTION));
    }

    #[test]
    fn tiled_rejects_too_narrow_tiles() {
        let p = TechParams::nm14();
        let w = Workload::table1_mlp();
        assert!(evaluate_tiled(&w, Mapping::Acm, TileShape::new(128, 1), &p).is_err());
        assert!(evaluate_tiled(&w, Mapping::DoubleElement, TileShape::new(128, 1), &p).is_err());
    }
}
