use xbar_core::Mapping;

use crate::{TechParams, Workload};

/// System-level cost of running a workload under one mapping — the four
/// rows of the paper's Table I.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostReport {
    /// The mapping priced.
    pub mapping: Mapping,
    /// Crossbar array area (µm²).
    pub xbar_area_um2: f64,
    /// Periphery area: MUX, ADC, wordline decoder, bit/select-line switch
    /// matrices, adders, shift registers (µm²).
    pub periphery_area_um2: f64,
    /// Read energy for one training epoch (µJ).
    pub read_energy_uj: f64,
    /// Read delay for one training epoch (ms).
    pub read_delay_ms: f64,
}

impl CostReport {
    /// Total (crossbar + periphery) area.
    pub fn total_area_um2(&self) -> f64 {
        self.xbar_area_um2 + self.periphery_area_um2
    }
}

/// Prices `workload` under `mapping` with the given technology parameters.
pub fn evaluate(workload: &Workload, mapping: Mapping, params: &TechParams) -> CostReport {
    let mut xbar_area = 0.0;
    let mut periph_area = 0.0;
    let mut energy = 0.0;
    let mut delay = 0.0;
    for layer in workload.layers() {
        let rows = layer.inputs as f64;
        let cols = mapping.num_device_columns(layer.outputs) as f64;
        xbar_area += params.area_coeff_um2 * rows * cols.powf(params.area_exp);
        periph_area += params.periph_coeff_um2 * cols.powf(params.periph_exp);
        energy += params.energy_coeff_uj * rows * cols.powf(params.energy_exp);
        delay += params.delay_coeff_ms * cols.powf(params.delay_exp);
    }
    CostReport {
        mapping,
        xbar_area_um2: xbar_area,
        periphery_area_um2: periph_area,
        read_energy_uj: energy,
        read_delay_ms: delay,
    }
}

/// Reproduces the paper's Table I: all three mappings priced on the
/// two-layer MLP workload, in the paper's row order (BC, DE, ACM).
pub fn table1(params: &TechParams) -> Vec<CostReport> {
    let workload = Workload::table1_mlp();
    Mapping::ALL
        .iter()
        .map(|&m| evaluate(&workload, m, params))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pct_close(a: f64, b: f64, pct: f64) -> bool {
        (a - b).abs() / b <= pct / 100.0
    }

    #[test]
    fn bc_and_acm_costs_are_identical() {
        // Paper: "Read energy, area, and read delay values for BC and ACM
        // approaches are exactly the same."
        let p = TechParams::nm14();
        let w = Workload::table1_mlp();
        let bc = evaluate(&w, Mapping::BiasColumn, &p);
        let acm = evaluate(&w, Mapping::Acm, &p);
        assert_eq!(bc.xbar_area_um2, acm.xbar_area_um2);
        assert_eq!(bc.periphery_area_um2, acm.periphery_area_um2);
        assert_eq!(bc.read_energy_uj, acm.read_energy_uj);
        assert_eq!(bc.read_delay_ms, acm.read_delay_ms);
    }

    #[test]
    #[allow(clippy::approx_constant)] // 0.318 ms is the paper's DE delay, not 1/pi
    fn reproduces_table1_absolute_values() {
        let reports = table1(&TechParams::nm14());
        let bc = &reports[0];
        let de = &reports[1];
        let acm = &reports[2];
        assert_eq!(bc.mapping, Mapping::BiasColumn);
        assert_eq!(de.mapping, Mapping::DoubleElement);
        assert_eq!(acm.mapping, Mapping::Acm);
        // Paper Table I, within 2% (the model is calibrated on these).
        assert!(
            pct_close(bc.xbar_area_um2, 914.0, 2.0),
            "{}",
            bc.xbar_area_um2
        );
        assert!(
            pct_close(bc.periphery_area_um2, 157.0, 2.0),
            "{}",
            bc.periphery_area_um2
        );
        assert!(
            pct_close(bc.read_energy_uj, 2.402, 2.0),
            "{}",
            bc.read_energy_uj
        );
        assert!(
            pct_close(bc.read_delay_ms, 0.240, 2.0),
            "{}",
            bc.read_delay_ms
        );
        assert!(
            pct_close(de.xbar_area_um2, 2088.0, 2.0),
            "{}",
            de.xbar_area_um2
        );
        assert!(
            pct_close(de.periphery_area_um2, 246.0, 2.0),
            "{}",
            de.periphery_area_um2
        );
        assert!(
            pct_close(de.read_energy_uj, 14.408, 2.0),
            "{}",
            de.read_energy_uj
        );
        assert!(
            pct_close(de.read_delay_ms, 0.318, 2.0),
            "{}",
            de.read_delay_ms
        );
    }

    #[test]
    fn headline_ratios_match_paper_text() {
        let reports = table1(&TechParams::nm14());
        let (de, acm) = (&reports[1], &reports[2]);
        // "DE uses 2.3x XBar area compared to the ACM"
        let area_ratio = de.xbar_area_um2 / acm.xbar_area_um2;
        assert!(area_ratio > 2.2 && area_ratio < 2.4, "{area_ratio}");
        // "The read energy of DE is [6-7]x more than that of the ACM"
        let energy_ratio = de.read_energy_uj / acm.read_energy_uj;
        assert!(energy_ratio > 5.5 && energy_ratio < 7.5, "{energy_ratio}");
        // "DE has a 1.33x higher read delay"
        let delay_ratio = de.read_delay_ms / acm.read_delay_ms;
        assert!(delay_ratio > 1.25 && delay_ratio < 1.42, "{delay_ratio}");
    }

    #[test]
    fn extrapolates_monotonically_with_layer_width() {
        // A wider MLP must cost more in every metric under every mapping.
        let p = TechParams::nm14();
        let small = Workload::new(vec![crate::LayerDims::new(100, 20)], "small");
        let large = Workload::new(vec![crate::LayerDims::new(100, 200)], "large");
        for m in Mapping::ALL {
            let s = evaluate(&small, m, &p);
            let l = evaluate(&large, m, &p);
            assert!(l.xbar_area_um2 > s.xbar_area_um2);
            assert!(l.periphery_area_um2 > s.periphery_area_um2);
            assert!(l.read_energy_uj > s.read_energy_uj);
            assert!(l.read_delay_ms > s.read_delay_ms);
        }
    }

    #[test]
    fn total_area_sums_components() {
        let r = table1(&TechParams::nm14());
        assert!(
            (r[0].total_area_um2() - (r[0].xbar_area_um2 + r[0].periphery_area_um2)).abs() < 1e-9
        );
    }
}
