/// Technology / calibration parameters of the analytical cost model.
///
/// Each metric `m` of a layer with `rows` crossbar rows and `cols` device
/// columns is priced as
///
/// ```text
/// area      = area_coeff_um2   · rows · cols^area_exp
/// periphery = periph_coeff_um2 ·        cols^periph_exp
/// energy    = energy_coeff_uj  · rows · cols^energy_exp
/// delay     = delay_coeff_ms   ·        cols^delay_exp
/// ```
///
/// and summed over layers (delay: layers are pipelined stages evaluated
/// serially, so delays add).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TechParams {
    /// Crossbar cell+wire area coefficient (µm² per row·colᵖ).
    pub area_coeff_um2: f64,
    /// Column exponent of crossbar area.
    pub area_exp: f64,
    /// Periphery (decoder, switch matrices, MUX, ADC, adder, shift
    /// register) area coefficient (µm² per colᵠ).
    pub periph_coeff_um2: f64,
    /// Column exponent of periphery area.
    pub periph_exp: f64,
    /// Read-energy coefficient (µJ per row·colʳ per training epoch).
    pub energy_coeff_uj: f64,
    /// Column exponent of read energy.
    pub energy_exp: f64,
    /// Read-delay coefficient (ms per colˢ per training epoch).
    pub delay_coeff_ms: f64,
    /// Column exponent of read delay.
    pub delay_exp: f64,
    /// Human-readable label of the calibration point.
    pub label: &'static str,
}

impl TechParams {
    /// The 14 nm parameter set calibrated against the paper's NeuroSim+
    /// Table I (default NeuroSim+ parameters, one training epoch of the
    /// two-layer MLP).
    pub fn nm14() -> Self {
        Self {
            area_coeff_um2: 8.376_588_570_645e-3,
            area_exp: 1.211_624_541_499,
            periph_coeff_um2: 5.754_011_089_189,
            periph_exp: 0.672_413_095_923,
            energy_coeff_uj: 3.326_671_272_742e-8,
            energy_exp: 2.622_423_396_685,
            delay_coeff_ms: 2.413_439_459_366e-2,
            delay_exp: 0.426_620_057_972,
            label: "14nm (calibrated to DAC'20 Table I / NeuroSim+ defaults)",
        }
    }
}

impl Default for TechParams {
    fn default() -> Self {
        Self::nm14()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_nm14() {
        assert_eq!(TechParams::default(), TechParams::nm14());
        assert!(TechParams::nm14().label.contains("14nm"));
    }

    #[test]
    fn exponent_ordering_matches_physics() {
        let p = TechParams::nm14();
        // Energy scales hardest with columns, then area, then delay and
        // periphery sublinearly.
        assert!(p.energy_exp > p.area_exp);
        assert!(p.area_exp > 1.0);
        assert!(p.periph_exp < 1.0);
        assert!(p.delay_exp < 1.0);
    }
}
