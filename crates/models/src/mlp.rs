use xbar_nn::{Dense, Flatten, NnError, Relu, Sequential};
use xbar_tensor::rng::XorShiftRng;

use crate::lenet::push_act_quant;
use crate::ModelConfig;

/// Builds the two-layer multi-layer perceptron used for the paper's
/// system-level evaluation (Table I): `inputs → hidden → classes` with a
/// ReLU in between. Input may be flat `(batch, inputs)` or image NCHW; a
/// flatten layer is always prepended for convenience.
///
/// The paper's Table I workload is an MNIST-scale MLP; the default
/// dimensions used by `xbar-neurosim` are 400-100-10.
///
/// # Errors
///
/// Returns [`NnError::Config`] on zero dimensions.
pub fn mlp2(
    inputs: usize,
    hidden: usize,
    classes: usize,
    cfg: &ModelConfig,
) -> Result<Sequential, NnError> {
    if inputs == 0 || hidden == 0 || classes == 0 {
        return Err(NnError::Config(format!(
            "mlp dimensions must be positive: {inputs}-{hidden}-{classes}"
        )));
    }
    let mut rng = XorShiftRng::new(cfg.seed);
    let mut net = Sequential::new();
    net.push(Flatten::new());
    net.push(Dense::new(inputs, hidden, cfg.kind, cfg.device, &mut rng)?);
    net.push(Relu::new());
    push_act_quant(&mut net, cfg);
    net.push(Dense::new(hidden, classes, cfg.kind, cfg.device, &mut rng)?);
    Ok(net)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xbar_core::Mapping;
    use xbar_device::DeviceConfig;
    use xbar_nn::Layer;
    use xbar_tensor::Tensor;

    #[test]
    fn forward_flat_and_image_inputs() {
        let mut net = mlp2(16, 8, 4, &ModelConfig::baseline()).unwrap();
        assert_eq!(
            net.forward(&Tensor::zeros(&[3, 16]), false)
                .unwrap()
                .shape(),
            &[3, 4]
        );
        assert_eq!(
            net.forward(&Tensor::zeros(&[3, 1, 4, 4]), false)
                .unwrap()
                .shape(),
            &[3, 4]
        );
    }

    #[test]
    fn mapped_mlp_element_counts() {
        let acm = mlp2(
            400,
            100,
            10,
            &ModelConfig::mapped(Mapping::Acm, DeviceConfig::ideal()),
        )
        .unwrap();
        let de = mlp2(
            400,
            100,
            10,
            &ModelConfig::mapped(Mapping::DoubleElement, DeviceConfig::ideal()),
        )
        .unwrap();
        // DE ~2x the crossbar elements (101*400+11*100 vs 200*400+20*100).
        let ratio = de.num_params() as f32 / acm.num_params() as f32;
        assert!(ratio > 1.8 && ratio < 2.1, "{ratio}");
    }

    #[test]
    fn rejects_zero_dims() {
        assert!(mlp2(0, 8, 4, &ModelConfig::baseline()).is_err());
        assert!(mlp2(16, 0, 4, &ModelConfig::baseline()).is_err());
        assert!(mlp2(16, 8, 0, &ModelConfig::baseline()).is_err());
    }
}
