use xbar_nn::{Conv2d, Dense, Flatten, MaxPool2d, NnError, Relu, Sequential};
use xbar_tensor::rng::XorShiftRng;

use crate::lenet::push_act_quant;
use crate::{ModelConfig, ModelScale};

/// Builds the VGG-9 network of the paper's CIFAR-10 experiments: six 3×3
/// convolutional layers in three pooled stages, followed by three fully
/// connected layers \[21\].
///
/// `input` is `(channels, height, width)`; images must be at least 8×8
/// (three 2× poolings).
///
/// # Errors
///
/// Returns [`NnError::Config`] if the input is too small.
pub fn vgg9(
    input: (usize, usize, usize),
    classes: usize,
    scale: ModelScale,
    cfg: &ModelConfig,
) -> Result<Sequential, NnError> {
    let (c, h, w) = input;
    if h < 8 || w < 8 {
        return Err(NnError::Config(format!(
            "vgg9 needs at least 8x8 input, got {h}x{w}"
        )));
    }
    if classes == 0 {
        return Err(NnError::Config("need at least one class".into()));
    }
    let mut rng = XorShiftRng::new(cfg.seed);
    let stage_widths = [
        scale.width(64, 8, 4),
        scale.width(128, 16, 8),
        scale.width(256, 32, 16),
    ];
    let fc_width = scale.width(256, 48, 24);
    let mut net = Sequential::new();
    let mut in_c = c;
    for &out_c in &stage_widths {
        for _ in 0..2 {
            net.push(Conv2d::same3x3(
                in_c, out_c, cfg.kind, cfg.device, &mut rng,
            )?);
            net.push(Relu::new());
            push_act_quant(&mut net, cfg);
            in_c = out_c;
        }
        net.push(MaxPool2d::halving());
    }
    net.push(Flatten::new());
    let flat = in_c * (h / 8) * (w / 8);
    net.push(Dense::new(flat, fc_width, cfg.kind, cfg.device, &mut rng)?);
    net.push(Relu::new());
    push_act_quant(&mut net, cfg);
    net.push(Dense::new(
        fc_width, fc_width, cfg.kind, cfg.device, &mut rng,
    )?);
    net.push(Relu::new());
    push_act_quant(&mut net, cfg);
    net.push(Dense::new(
        fc_width, classes, cfg.kind, cfg.device, &mut rng,
    )?);
    Ok(net)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xbar_core::Mapping;
    use xbar_device::DeviceConfig;
    use xbar_nn::Layer;
    use xbar_tensor::Tensor;

    #[test]
    fn forward_shape_tiny() {
        let mut net = vgg9((3, 16, 16), 10, ModelScale::Tiny, &ModelConfig::baseline()).unwrap();
        let x = Tensor::zeros(&[2, 3, 16, 16]);
        assert_eq!(net.forward(&x, false).unwrap().shape(), &[2, 10]);
    }

    #[test]
    fn has_six_convs_and_three_dense() {
        let net = vgg9((3, 16, 16), 10, ModelScale::Tiny, &ModelConfig::baseline()).unwrap();
        let s = net.summary();
        assert_eq!(s.matches("conv ").count(), 6, "{s}");
        assert_eq!(s.matches("dense ").count(), 3, "{s}");
        assert_eq!(s.matches("maxpool").count(), 3, "{s}");
    }

    #[test]
    fn paper_scale_widths() {
        let net = vgg9((3, 32, 32), 10, ModelScale::Paper, &ModelConfig::baseline()).unwrap();
        let s = net.summary();
        assert!(s.contains("conv 3x3x3->64"), "{s}");
        assert!(s.contains("conv 3x3x128->256"), "{s}");
    }

    #[test]
    fn backward_runs_mapped() {
        let cfg = ModelConfig::mapped(Mapping::BiasColumn, DeviceConfig::ideal());
        let mut net = vgg9((3, 16, 16), 10, ModelScale::Tiny, &cfg).unwrap();
        let x = Tensor::zeros(&[1, 3, 16, 16]);
        let y = net.forward(&x, true).unwrap();
        let g = net.backward(&Tensor::ones(y.shape())).unwrap();
        assert_eq!(g.shape(), x.shape());
    }

    #[test]
    fn rejects_small_inputs() {
        assert!(vgg9((3, 4, 4), 10, ModelScale::Tiny, &ModelConfig::baseline()).is_err());
    }

    #[test]
    fn vgg_is_heavier_than_lenet() {
        // The paper attributes VGG's nonlinearity resilience to
        // overparameterization; at matched scale our VGG has more params.
        let v = vgg9((3, 16, 16), 10, ModelScale::Tiny, &ModelConfig::baseline())
            .unwrap()
            .num_params();
        let l = crate::lenet((3, 16, 16), 10, ModelScale::Tiny, &ModelConfig::baseline())
            .unwrap()
            .num_params();
        assert!(v > l, "vgg {v} vs lenet {l}");
    }
}
