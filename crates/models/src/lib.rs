//! # xbar-models
//!
//! The network architectures the paper evaluates — a LeNet variant (MNIST),
//! VGG-9 with 6 convolutional + 3 fully connected layers (CIFAR-10), and
//! ResNet-20 (CIFAR-10) — plus the two-layer MLP used for the system-level
//! Table I analysis.
//!
//! Every builder takes a [`ModelConfig`] selecting the weight realisation
//! (baseline signed, or crossbar-mapped under DE/BC/ACM with a device
//! model) and a [`ModelScale`] width multiplier. `ModelScale::Paper` is the
//! architecture exactly as published; `Small`/`Tiny` shrink widths (never
//! depth or structure) so the full experiment grid runs in minutes on one
//! CPU core — see DESIGN.md §1 for the scaling argument.
//!
//! # Example
//!
//! ```
//! use xbar_core::Mapping;
//! use xbar_models::{lenet, ModelConfig, ModelScale};
//! use xbar_nn::Layer;
//!
//! # fn main() -> Result<(), xbar_nn::NnError> {
//! let cfg = ModelConfig::mapped(Mapping::Acm, xbar_device::DeviceConfig::ideal());
//! let mut net = lenet((1, 16, 16), 10, ModelScale::Tiny, &cfg)?;
//! let x = xbar_tensor::Tensor::zeros(&[2, 1, 16, 16]);
//! assert_eq!(net.forward(&x, false)?.shape(), &[2, 10]);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

mod config;
mod lenet;
mod mlp;
mod resnet;
mod vgg;

pub use config::{ModelConfig, ModelScale};
pub use lenet::lenet;
pub use mlp::mlp2;
pub use resnet::resnet20;
pub use vgg::vgg9;
