use xbar_core::Mapping;
use xbar_device::DeviceConfig;
use xbar_nn::WeightKind;

/// Width scaling for the model builders.
///
/// Scaling touches only layer *widths* (channel counts, hidden sizes) —
/// never depth, kernel sizes, pooling structure, or residual topology — so
/// the mapping-comparison mechanisms (dynamic range, update nonlinearity,
/// column coupling) are exercised identically at every scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ModelScale {
    /// Published widths (LeNet 6/16/120/84, VGG-9 64…512, ResNet-20
    /// 16/32/64). Hours of CPU time per run — use on real hardware.
    Paper,
    /// Quarter-ish widths; minutes per run.
    #[default]
    Small,
    /// Minimum useful widths; seconds per run (CI and smoke tests).
    Tiny,
}

impl ModelScale {
    /// Scales a paper-width `w` down, keeping at least `min`.
    pub(crate) fn width(&self, paper: usize, small: usize, tiny: usize) -> usize {
        match self {
            Self::Paper => paper,
            Self::Small => small,
            Self::Tiny => tiny,
        }
    }
}

/// Model-construction options: weight realisation, device model, and
/// activation quantization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelConfig {
    /// Weight realisation (signed baseline or crossbar-mapped).
    pub kind: WeightKind,
    /// Device non-ideality model for mapped weights.
    pub device: DeviceConfig,
    /// Activation quantization bit width (`None` = full precision). The
    /// paper uses 8-bit activations for all quantized experiments.
    pub act_bits: Option<u8>,
    /// Weight-initialization seed.
    pub seed: u64,
}

impl ModelConfig {
    /// Baseline model: signed FP32 weights, ideal device, FP activations —
    /// the paper's "original network".
    pub fn baseline() -> Self {
        Self {
            kind: WeightKind::Signed,
            device: DeviceConfig::ideal(),
            act_bits: None,
            seed: 0xACE5,
        }
    }

    /// Crossbar-mapped model with the paper's standard 8-bit activations.
    pub fn mapped(mapping: Mapping, device: DeviceConfig) -> Self {
        Self {
            kind: WeightKind::Mapped(mapping),
            device,
            act_bits: if device.is_quantized() { Some(8) } else { None },
            seed: 0xACE5,
        }
    }

    /// Returns a copy with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns a copy with explicit activation quantization.
    pub fn with_act_bits(mut self, bits: Option<u8>) -> Self {
        self.act_bits = bits;
        self
    }

    /// Returns a copy with a physical crossbar tile bound: every mapped
    /// layer is laid out on a grid of `tile`-sized arrays, with per-tile
    /// periphery and reference columns (`None` models one arbitrarily
    /// large array per layer).
    pub fn with_tile_shape(mut self, tile: Option<xbar_device::TileShape>) -> Self {
        self.device = self.device.with_tile_shape(tile);
        self
    }
}

impl Default for ModelConfig {
    fn default() -> Self {
        Self::baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_is_signed_fp() {
        let c = ModelConfig::baseline();
        assert_eq!(c.kind, WeightKind::Signed);
        assert_eq!(c.act_bits, None);
    }

    #[test]
    fn mapped_quantized_gets_8bit_acts() {
        let c = ModelConfig::mapped(Mapping::Acm, DeviceConfig::quantized_linear(4));
        assert_eq!(c.act_bits, Some(8));
        let c = ModelConfig::mapped(Mapping::Acm, DeviceConfig::ideal());
        assert_eq!(c.act_bits, None);
    }

    #[test]
    fn scale_picks_widths() {
        assert_eq!(ModelScale::Paper.width(64, 16, 8), 64);
        assert_eq!(ModelScale::Small.width(64, 16, 8), 16);
        assert_eq!(ModelScale::Tiny.width(64, 16, 8), 8);
    }

    #[test]
    fn with_helpers() {
        let c = ModelConfig::baseline().with_seed(42).with_act_bits(Some(6));
        assert_eq!(c.seed, 42);
        assert_eq!(c.act_bits, Some(6));
    }

    #[test]
    fn tile_shape_threads_into_device() {
        use xbar_device::{DeviceConfig, TileShape};
        let c = ModelConfig::mapped(Mapping::Acm, DeviceConfig::quantized_linear(4))
            .with_tile_shape(Some(TileShape::new(64, 64)));
        assert_eq!(c.device.tile_shape(), Some(TileShape::new(64, 64)));
        assert_eq!(c.with_tile_shape(None).device.tile_shape(), None);
    }
}
