use xbar_nn::{Conv2d, Dense, Flatten, MaxPool2d, NnError, QuantAct, Relu, Sequential};
use xbar_tensor::rng::XorShiftRng;

use crate::{ModelConfig, ModelScale};

/// Builds the LeNet variant used for the paper's MNIST experiments:
/// two 5×5 convolution + pool stages followed by three fully connected
/// layers (LeNet-5 shape \[20\]).
///
/// `input` is `(channels, height, width)`; images must be at least 8×8
/// (two 2× poolings).
///
/// # Errors
///
/// Returns [`NnError::Config`] if the input is too small.
pub fn lenet(
    input: (usize, usize, usize),
    classes: usize,
    scale: ModelScale,
    cfg: &ModelConfig,
) -> Result<Sequential, NnError> {
    let (c, h, w) = input;
    if h < 8 || w < 8 {
        return Err(NnError::Config(format!(
            "lenet needs at least 8x8 input, got {h}x{w}"
        )));
    }
    if classes == 0 {
        return Err(NnError::Config("need at least one class".into()));
    }
    let mut rng = XorShiftRng::new(cfg.seed);
    let c1 = scale.width(6, 4, 2);
    let c2 = scale.width(16, 8, 4);
    let f1 = scale.width(120, 32, 16);
    let f2 = scale.width(84, 16, 8);
    let mut net = Sequential::new();
    // Conv stage 1: 5x5 "same" + 2x2 pool.
    net.push(Conv2d::new(c, c1, 5, 1, 2, cfg.kind, cfg.device, &mut rng)?);
    net.push(Relu::new());
    push_act_quant(&mut net, cfg);
    net.push(MaxPool2d::halving());
    // Conv stage 2.
    net.push(Conv2d::new(
        c1, c2, 5, 1, 2, cfg.kind, cfg.device, &mut rng,
    )?);
    net.push(Relu::new());
    push_act_quant(&mut net, cfg);
    net.push(MaxPool2d::halving());
    // Classifier.
    net.push(Flatten::new());
    let flat = c2 * (h / 4) * (w / 4);
    net.push(Dense::new(flat, f1, cfg.kind, cfg.device, &mut rng)?);
    net.push(Relu::new());
    push_act_quant(&mut net, cfg);
    net.push(Dense::new(f1, f2, cfg.kind, cfg.device, &mut rng)?);
    net.push(Relu::new());
    push_act_quant(&mut net, cfg);
    net.push(Dense::new(f2, classes, cfg.kind, cfg.device, &mut rng)?);
    Ok(net)
}

/// Appends the paper's 8-bit activation quantizer when configured.
pub(crate) fn push_act_quant(net: &mut Sequential, cfg: &ModelConfig) {
    if let Some(bits) = cfg.act_bits {
        net.push(QuantAct::new(bits, 4.0));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xbar_core::Mapping;
    use xbar_device::DeviceConfig;
    use xbar_nn::Layer;
    use xbar_tensor::Tensor;

    #[test]
    fn forward_shapes_all_scales() {
        for scale in [ModelScale::Tiny, ModelScale::Small] {
            let mut net = lenet((1, 16, 16), 10, scale, &ModelConfig::baseline()).unwrap();
            let x = Tensor::zeros(&[2, 1, 16, 16]);
            assert_eq!(net.forward(&x, false).unwrap().shape(), &[2, 10]);
        }
    }

    #[test]
    fn paper_scale_has_published_widths() {
        let net = lenet((1, 28, 28), 10, ModelScale::Paper, &ModelConfig::baseline()).unwrap();
        let s = net.summary();
        assert!(s.contains("conv 5x5x1->6"), "{s}");
        assert!(s.contains("conv 5x5x6->16"), "{s}");
        assert!(s.contains("dense 784->120"), "{s}");
        assert!(s.contains("dense 120->84"), "{s}");
    }

    #[test]
    fn mapped_lenet_inserts_act_quant() {
        let cfg = ModelConfig::mapped(Mapping::Acm, DeviceConfig::quantized_linear(4));
        let net = lenet((1, 16, 16), 10, ModelScale::Tiny, &cfg).unwrap();
        assert!(net.summary().contains("quant-act 8b"));
    }

    #[test]
    fn baseline_has_no_act_quant() {
        let net = lenet((1, 16, 16), 10, ModelScale::Tiny, &ModelConfig::baseline()).unwrap();
        assert!(!net.summary().contains("quant-act"));
    }

    #[test]
    fn rejects_tiny_inputs() {
        assert!(lenet((1, 4, 4), 10, ModelScale::Tiny, &ModelConfig::baseline()).is_err());
        assert!(lenet((1, 16, 16), 0, ModelScale::Tiny, &ModelConfig::baseline()).is_err());
    }

    #[test]
    fn backward_runs_end_to_end() {
        let cfg = ModelConfig::mapped(Mapping::Acm, DeviceConfig::ideal());
        let mut net = lenet((1, 16, 16), 10, ModelScale::Tiny, &cfg).unwrap();
        let x = Tensor::zeros(&[2, 1, 16, 16]);
        let y = net.forward(&x, true).unwrap();
        let g = net.backward(&Tensor::ones(y.shape())).unwrap();
        assert_eq!(g.shape(), x.shape());
    }

    #[test]
    fn mapped_variant_counts_more_elements_for_de() {
        let acm = lenet(
            (1, 16, 16),
            10,
            ModelScale::Tiny,
            &ModelConfig::mapped(Mapping::Acm, DeviceConfig::ideal()),
        )
        .unwrap();
        let de = lenet(
            (1, 16, 16),
            10,
            ModelScale::Tiny,
            &ModelConfig::mapped(Mapping::DoubleElement, DeviceConfig::ideal()),
        )
        .unwrap();
        assert!(de.num_params() > acm.num_params());
    }
}
