use xbar_nn::{
    BatchNorm2d, Conv2d, Dense, GlobalAvgPool, NnError, Relu, ResidualBlock, Sequential,
};
use xbar_tensor::rng::XorShiftRng;

use crate::lenet::push_act_quant;
use crate::{ModelConfig, ModelScale};

/// Builds ResNet-20 \[22\] as in the paper's CIFAR-10 experiments: an
/// initial 3×3 convolution, three stages of three residual blocks with
/// widths `(w, 2w, 4w)` (stride-2 downsampling entering stages 2 and 3),
/// global average pooling, and a final dense classifier.
///
/// Depth check: `1 + 3·3·2 + 1 = 20` weighted layers.
///
/// # Errors
///
/// Returns [`NnError::Config`] if the input is smaller than 8×8.
pub fn resnet20(
    input: (usize, usize, usize),
    classes: usize,
    scale: ModelScale,
    cfg: &ModelConfig,
) -> Result<Sequential, NnError> {
    let (c, h, w) = input;
    if h < 8 || w < 8 {
        return Err(NnError::Config(format!(
            "resnet20 needs at least 8x8 input, got {h}x{w}"
        )));
    }
    if classes == 0 {
        return Err(NnError::Config("need at least one class".into()));
    }
    let mut rng = XorShiftRng::new(cfg.seed);
    let base = scale.width(16, 4, 2);
    let widths = [base, base * 2, base * 4];
    let mut net = Sequential::new();
    net.push(Conv2d::same3x3(
        c, widths[0], cfg.kind, cfg.device, &mut rng,
    )?);
    net.push(BatchNorm2d::new(widths[0]));
    net.push(Relu::new());
    push_act_quant(&mut net, cfg);
    let mut in_c = widths[0];
    for (stage, &out_c) in widths.iter().enumerate() {
        for block in 0..3 {
            let stride = if stage > 0 && block == 0 { 2 } else { 1 };
            net.push(basic_block(in_c, out_c, stride, cfg, &mut rng)?);
            in_c = out_c;
        }
    }
    net.push(GlobalAvgPool::new());
    net.push(Dense::new(in_c, classes, cfg.kind, cfg.device, &mut rng)?);
    Ok(net)
}

/// One ResNet basic block: conv-BN-relu-conv-BN plus identity or
/// 1×1-projection shortcut, joined by the block's output ReLU.
fn basic_block(
    in_c: usize,
    out_c: usize,
    stride: usize,
    cfg: &ModelConfig,
    rng: &mut XorShiftRng,
) -> Result<ResidualBlock, NnError> {
    let mut body = Sequential::new();
    body.push(Conv2d::new(
        in_c, out_c, 3, stride, 1, cfg.kind, cfg.device, rng,
    )?);
    body.push(BatchNorm2d::new(out_c));
    body.push(Relu::new());
    push_act_quant(&mut body, cfg);
    body.push(Conv2d::same3x3(out_c, out_c, cfg.kind, cfg.device, rng)?);
    body.push(BatchNorm2d::new(out_c));
    if in_c == out_c && stride == 1 {
        Ok(ResidualBlock::new(body))
    } else {
        let mut shortcut = Sequential::new();
        shortcut.push(Conv2d::new(
            in_c, out_c, 1, stride, 0, cfg.kind, cfg.device, rng,
        )?);
        shortcut.push(BatchNorm2d::new(out_c));
        Ok(ResidualBlock::with_projection(body, shortcut))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xbar_core::Mapping;
    use xbar_device::DeviceConfig;
    use xbar_nn::Layer;
    use xbar_tensor::Tensor;

    #[test]
    fn forward_shape_tiny() {
        let mut net =
            resnet20((3, 16, 16), 10, ModelScale::Tiny, &ModelConfig::baseline()).unwrap();
        let x = Tensor::zeros(&[2, 3, 16, 16]);
        assert_eq!(net.forward(&x, false).unwrap().shape(), &[2, 10]);
    }

    #[test]
    fn has_nine_residual_blocks() {
        let net = resnet20((3, 16, 16), 10, ModelScale::Tiny, &ModelConfig::baseline()).unwrap();
        let s = net.summary();
        assert_eq!(s.matches("residual").count(), 9, "{s}");
        // Two projection blocks (entering stages 2 and 3).
        assert_eq!(s.matches("residual(project)").count(), 2, "{s}");
    }

    #[test]
    fn weighted_layer_count_is_twenty() {
        // 1 stem conv + 9 blocks x 2 convs + 1 dense = 20 (projections
        // excluded, per the ResNet convention).
        let mut net =
            resnet20((3, 16, 16), 10, ModelScale::Tiny, &ModelConfig::baseline()).unwrap();
        let mut mapped = 0;
        net.visit_mapped(&mut |_| mapped += 1);
        // Baseline is signed, so count via a mapped build instead.
        let cfg = ModelConfig::mapped(Mapping::Acm, DeviceConfig::ideal());
        let mut net = resnet20((3, 16, 16), 10, ModelScale::Tiny, &cfg).unwrap();
        let mut count = 0;
        net.visit_mapped(&mut |_| count += 1);
        // 20 weighted layers + 2 projection convs.
        assert_eq!(count, 22);
        let _ = mapped;
    }

    #[test]
    fn training_mode_backward_works() {
        let cfg = ModelConfig::mapped(Mapping::Acm, DeviceConfig::ideal());
        let mut net = resnet20((3, 16, 16), 10, ModelScale::Tiny, &cfg).unwrap();
        let x = Tensor::zeros(&[2, 3, 16, 16]);
        let y = net.forward(&x, true).unwrap();
        let g = net.backward(&Tensor::ones(y.shape())).unwrap();
        assert_eq!(g.shape(), x.shape());
        net.update(0.01);
        net.zero_grad();
    }

    #[test]
    fn paper_scale_widths() {
        let net = resnet20((3, 32, 32), 10, ModelScale::Paper, &ModelConfig::baseline()).unwrap();
        let s = net.summary();
        assert!(s.contains("conv 3x3x3->16"), "{s}");
        assert!(s.contains("dense 64->10"), "{s}");
    }

    #[test]
    fn rejects_small_inputs() {
        assert!(resnet20((3, 4, 4), 10, ModelScale::Tiny, &ModelConfig::baseline()).is_err());
    }
}
