//! Property-based tests of the tensor kernels: algebraic identities that
//! must hold for arbitrary shapes and values.

// Entire file is proptest-driven; compiled only with the non-default
// `slow-proptests` feature (the proptest dep is unavailable offline).
#![cfg(feature = "slow-proptests")]

use proptest::prelude::*;
use xbar_tensor::conv::{conv2d_backward, conv2d_forward, ConvGeometry};
use xbar_tensor::{linalg, rng::XorShiftRng, Tensor};

fn tensor(shape: &[usize], seed: u64) -> Tensor {
    let mut rng = XorShiftRng::new(seed);
    Tensor::rand_normal(shape, 0.0, 1.0, &mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// (A·B)ᵀ = Bᵀ·Aᵀ.
    #[test]
    fn matmul_transpose_identity(
        seed in any::<u64>(),
        m in 1usize..8, k in 1usize..8, n in 1usize..8,
    ) {
        let a = tensor(&[m, k], seed);
        let b = tensor(&[k, n], seed ^ 1);
        let left = linalg::matmul(&a, &b).unwrap().transpose().unwrap();
        let right = linalg::matmul(&b.transpose().unwrap(), &a.transpose().unwrap()).unwrap();
        prop_assert!(left.all_close(&right, 1e-4));
    }

    /// Matmul distributes over addition: A·(B + C) = A·B + A·C.
    #[test]
    fn matmul_distributes(
        seed in any::<u64>(),
        m in 1usize..6, k in 1usize..6, n in 1usize..6,
    ) {
        let a = tensor(&[m, k], seed);
        let b = tensor(&[k, n], seed ^ 2);
        let c = tensor(&[k, n], seed ^ 3);
        let left = linalg::matmul(&a, &b.add(&c).unwrap()).unwrap();
        let right = linalg::matmul(&a, &b)
            .unwrap()
            .add(&linalg::matmul(&a, &c).unwrap())
            .unwrap();
        prop_assert!(left.all_close(&right, 1e-3));
    }

    /// matmul_tn and matmul_nt agree with explicit transposes.
    #[test]
    fn transposed_kernels_agree(
        seed in any::<u64>(),
        m in 1usize..7, k in 1usize..7, n in 1usize..7,
    ) {
        let a = tensor(&[k, m], seed);
        let b = tensor(&[k, n], seed ^ 4);
        let tn = linalg::matmul_tn(&a, &b).unwrap();
        let explicit = linalg::matmul(&a.transpose().unwrap(), &b).unwrap();
        prop_assert!(tn.all_close(&explicit, 1e-4));

        let c = tensor(&[m, k], seed ^ 5);
        let d = tensor(&[n, k], seed ^ 6);
        let nt = linalg::matmul_nt(&c, &d).unwrap();
        let explicit = linalg::matmul(&c, &d.transpose().unwrap()).unwrap();
        prop_assert!(nt.all_close(&explicit, 1e-4));
    }

    /// rank(A) ≤ min(m, n); rank of a product ≤ min of ranks.
    #[test]
    fn rank_bounds(seed in any::<u64>(), m in 1usize..6, n in 1usize..6) {
        let a = tensor(&[m, n], seed);
        let r = linalg::rank(&a, 1e-5).unwrap();
        prop_assert!(r <= m.min(n));
    }

    /// Convolution is linear in its input: conv(x1 + x2) = conv(x1) + conv(x2).
    #[test]
    fn conv_is_linear_in_input(seed in any::<u64>(), c in 1usize..3, oc in 1usize..3) {
        let geom = ConvGeometry::new(5, 5, 3, 3, 1, 1);
        let x1 = tensor(&[1, c, 5, 5], seed);
        let x2 = tensor(&[1, c, 5, 5], seed ^ 7);
        let w = tensor(&[oc, c * 9], seed ^ 8);
        let (y1, _) = conv2d_forward(&x1, &w, &geom).unwrap();
        let (y2, _) = conv2d_forward(&x2, &w, &geom).unwrap();
        let (ysum, _) = conv2d_forward(&x1.add(&x2).unwrap(), &w, &geom).unwrap();
        prop_assert!(ysum.all_close(&y1.add(&y2).unwrap(), 1e-3));
    }

    /// The conv backward pass is the adjoint of the forward pass:
    /// <conv(x), g> == <x, conv_backward(g)>.
    #[test]
    fn conv_backward_is_adjoint(seed in any::<u64>(), c in 1usize..3) {
        let geom = ConvGeometry::new(4, 4, 3, 3, 1, 1);
        let x = tensor(&[1, c, 4, 4], seed);
        let w = tensor(&[2, c * 9], seed ^ 9);
        let (y, cols) = conv2d_forward(&x, &w, &geom).unwrap();
        let g = tensor(y.shape(), seed ^ 10);
        let (gx, _) = conv2d_backward(&g, &cols, &w, 1, c, &geom).unwrap();
        let lhs: f32 = y.data().iter().zip(g.data()).map(|(&a, &b)| a * b).sum();
        let rhs: f32 = x.data().iter().zip(gx.data()).map(|(&a, &b)| a * b).sum();
        prop_assert!((lhs - rhs).abs() < 1e-2 * lhs.abs().max(1.0), "{lhs} vs {rhs}");
    }

    /// Reshape preserves data; transpose twice is identity.
    #[test]
    fn structural_round_trips(seed in any::<u64>(), m in 1usize..8, n in 1usize..8) {
        let a = tensor(&[m, n], seed);
        let r = a.reshape(&[n, m]).unwrap();
        prop_assert_eq!(r.data(), a.data());
        let tt = a.transpose().unwrap().transpose().unwrap();
        prop_assert_eq!(&tt, &a);
    }
}
