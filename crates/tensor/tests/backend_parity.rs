//! Determinism-contract tests for the compute backend: every parallel
//! kernel must produce results bitwise identical to its serial execution.
//!
//! The whole binary pins the global pool to 4 lanes (via `XBAR_THREADS`
//! before first pool use) so the parallel paths genuinely split work even
//! on a single-core CI host; the serial arm of each comparison runs under
//! [`backend::force_serial`].

use std::sync::{Mutex, Once};

use xbar_tensor::conv::{
    avgpool2d_backward, avgpool2d_forward, col2im, conv2d_backward, conv2d_forward, im2col,
    maxpool2d_backward, maxpool2d_forward, ConvGeometry,
};
use xbar_tensor::rng::XorShiftRng;
use xbar_tensor::{backend, linalg, Tensor};

/// Pins the global pool to 4 lanes, exactly once, before any test touches
/// it. Every test calls this first.
fn pool4() {
    static INIT: Once = Once::new();
    INIT.call_once(|| {
        std::env::set_var("XBAR_THREADS", "4");
        assert_eq!(backend::threads(), 4, "pool must pick up XBAR_THREADS");
    });
}

/// Serializes tests that toggle the process-wide force_serial flag.
static SERIAL_TOGGLE: Mutex<()> = Mutex::new(());

/// Runs `f` twice — forced-serial and parallel — and returns both results.
fn both<T>(f: impl Fn() -> T) -> (T, T) {
    let _guard = SERIAL_TOGGLE.lock().unwrap();
    backend::force_serial(true);
    let serial = f();
    backend::force_serial(false);
    let parallel = f();
    (serial, parallel)
}

fn rand_t(shape: &[usize], seed: u64) -> Tensor {
    let mut rng = XorShiftRng::new(seed);
    Tensor::rand_normal(shape, 0.0, 1.0, &mut rng)
}

#[test]
fn matmul_variants_bitwise_parity_across_shapes() {
    pool4();
    // Odd shapes: 1×N, N×1, empty dims, non-divisible-by-block, and
    // sizes crossing the small/blocked threshold and KC/NR/MC remainders.
    let shapes: &[(usize, usize, usize)] = &[
        (1, 1, 1),
        (1, 300, 40), // 1×N
        (300, 40, 1), // N×1
        (0, 5, 7),    // empty m
        (5, 0, 7),    // empty k
        (5, 7, 0),    // empty n
        (3, 5, 7),
        (65, 129, 17), // non-divisible by MR/NR/MC
        (64, 256, 16), // exact tile multiples
        (67, 300, 33), // KC remainder + row/col remainders
        (130, 64, 70), // multiple MC chunks
    ];
    for &(m, k, n) in shapes {
        let a = rand_t(&[m, k], 1000 + m as u64);
        let b = rand_t(&[k, n], 2000 + n as u64);
        let (s, p) = both(|| linalg::matmul(&a, &b).unwrap());
        assert_eq!(s.data(), p.data(), "matmul {m}x{k}x{n}");

        let at = rand_t(&[k, m], 3000 + m as u64);
        let (s, p) = both(|| linalg::matmul_tn(&at, &b).unwrap());
        assert_eq!(s.data(), p.data(), "matmul_tn {m}x{k}x{n}");

        let bt = rand_t(&[n, k], 4000 + n as u64);
        let (s, p) = both(|| linalg::matmul_nt(&a, &bt).unwrap());
        assert_eq!(s.data(), p.data(), "matmul_nt {m}x{k}x{n}");
    }
}

#[test]
fn matvec_bitwise_parity() {
    pool4();
    for &(m, k) in &[(1usize, 7usize), (700, 13), (33, 1), (2048, 64)] {
        let a = rand_t(&[m, k], 5000 + m as u64);
        let x = rand_t(&[k], 6000 + k as u64);
        let (s, p) = both(|| linalg::matvec(&a, &x).unwrap());
        assert_eq!(s.data(), p.data(), "matvec {m}x{k}");
    }
}

#[test]
fn conv_and_pool_kernels_bitwise_parity() {
    pool4();
    let geom = ConvGeometry::new(9, 7, 3, 3, 2, 1);
    let input = rand_t(&[5, 3, 9, 7], 7000);
    let weight = rand_t(&[4, 3 * 9], 7100);

    let (s, p) = both(|| im2col(&input, &geom).unwrap());
    assert_eq!(s.data(), p.data(), "im2col");

    let cols = s;
    let (s, p) = both(|| col2im(&cols, 5, 3, &geom).unwrap());
    assert_eq!(s.data(), p.data(), "col2im");

    let (s, p) = both(|| conv2d_forward(&input, &weight, &geom).unwrap());
    assert_eq!(s.0.data(), p.0.data(), "conv2d_forward out");
    assert_eq!(s.1.data(), p.1.data(), "conv2d_forward cols");

    let (out, cached) = s;
    let grad_out = rand_t(out.shape(), 7200);
    let (s, p) = both(|| conv2d_backward(&grad_out, &cached, &weight, 5, 3, &geom).unwrap());
    assert_eq!(s.0.data(), p.0.data(), "conv2d_backward grad_in");
    assert_eq!(s.1.data(), p.1.data(), "conv2d_backward grad_w");

    let pool_geom = ConvGeometry::new(9, 7, 2, 2, 2, 1);
    let (s, p) = both(|| maxpool2d_forward(&input, &pool_geom).unwrap());
    assert_eq!(s.0.data(), p.0.data(), "maxpool fwd");
    assert_eq!(s.1, p.1, "maxpool indices");

    let (mp_out, mp_idx) = s;
    let g = rand_t(mp_out.shape(), 7300);
    let (s, p) = both(|| maxpool2d_backward(&g, &mp_idx, input.shape()).unwrap());
    assert_eq!(s.data(), p.data(), "maxpool bwd");

    let (s, p) = both(|| avgpool2d_forward(&input, &pool_geom).unwrap());
    assert_eq!(s.data(), p.data(), "avgpool fwd");

    let ag = rand_t(s.shape(), 7400);
    let (s, p) = both(|| avgpool2d_backward(&ag, 5, 3, &pool_geom).unwrap());
    assert_eq!(s.data(), p.data(), "avgpool bwd");
}

#[test]
fn xbar_threads_env_controls_configured_lanes() {
    pool4(); // global pool already built at 4 — env changes below only
             // affect `configured_threads`, never the live pool.
    std::env::set_var("XBAR_THREADS", "1");
    assert_eq!(backend::configured_threads(), 1, "serial-mode request");
    std::env::set_var("XBAR_THREADS", "3");
    assert_eq!(backend::configured_threads(), 3);
    std::env::set_var("XBAR_THREADS", "not-a-number");
    assert!(backend::configured_threads() >= 1, "falls back to hardware");
    std::env::set_var("XBAR_THREADS", "0");
    assert!(backend::configured_threads() >= 1, "zero is rejected");
    std::env::set_var("XBAR_THREADS", "4");
    assert_eq!(backend::threads(), 4, "live pool unchanged throughout");
}

#[test]
fn serial_pool_runs_everything_inline() {
    pool4();
    let serial = backend::Pool::new(1);
    assert_eq!(serial.threads(), 1);
    let order = Mutex::new(Vec::new());
    let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..8)
        .map(|i| {
            let order = &order;
            Box::new(move || order.lock().unwrap().push(i)) as Box<dyn FnOnce() + Send + '_>
        })
        .collect();
    serial.run_scoped(tasks);
    assert_eq!(*order.lock().unwrap(), (0..8).collect::<Vec<_>>());
}

#[test]
fn nested_parallel_kernels_do_not_deadlock() {
    pool4();
    // Hold the toggle lock so no concurrent test forces serial mode while
    // this test is specifically exercising the parallel path.
    let _guard = SERIAL_TOGGLE.lock().unwrap();
    // Kernels launched from inside pool tasks must run inline rather than
    // re-enter the pool. parallel_map items each run a full (internally
    // parallel) matmul; with 4 lanes and 8 outer items, any inner
    // re-entry that blocked on a worker would deadlock the pool.
    let a = rand_t(&[65, 70], 8000);
    let b = rand_t(&[70, 33], 8100);
    let expect = linalg::matmul(&a, &b).unwrap();
    let results = backend::parallel_map((0..8).collect::<Vec<usize>>(), |_, _| {
        linalg::matmul(&a, &b).unwrap()
    });
    for r in results {
        assert_eq!(r.data(), expect.data());
    }
}
