//! Quantized tensors: i8 codes plus scale/zero-point metadata, and the
//! integer matmul that consumes them.
//!
//! Two schemes cover the inference path:
//!
//! * **Affine** (activations): unsigned codes `0..=2^bits − 1` with a
//!   per-tensor scale and integer zero point, `x ≈ scale · (code − zp)`.
//!   Bits are capped at 7 so codes stay ≤ 127 — the
//!   [`crate::qgemm::QGEMM_A_MAX`] operand contract that keeps the AVX2
//!   `maddubs` kernel exact. The grid is the same uniform
//!   round-to-nearest-state construction as the device `Quantizer`
//!   (`2^bits` states spanning the clip range), with the range extended
//!   to include zero so a zero activation is always exactly
//!   representable.
//! * **Symmetric per-row** (weights): signed codes `−Q..=Q`,
//!   `Q = 2^(bits−1) − 1`, one scale per output row (the NT layout's
//!   row = one output channel), `w ≈ scale_row · code`.
//!
//! Code buffers are scratch-pool backed ([`crate::scratch`]), so
//! steady-state quantized inference allocates nothing.

use crate::qgemm;
use crate::{scratch, Tensor};

/// Maximum affine (activation) bit width — codes must fit the unsigned
/// 7-bit GEMM operand.
pub const AFFINE_BITS_MAX: u8 = 7;

/// Maximum symmetric (weight) bit width — codes must fit i8.
pub const SYMMETRIC_BITS_MAX: u8 = 8;

/// Quantization scheme attached to a [`QuantizedTensor`].
#[derive(Debug, Clone, PartialEq)]
pub enum QScheme {
    /// Unsigned affine codes: `value = scale · (code − zero_point)`,
    /// codes in `0..=2^bits − 1`.
    Affine {
        /// Step between adjacent codes.
        scale: f32,
        /// The code representing zero, in `0..=2^bits − 1`.
        zero_point: i32,
        /// Bit width (≤ [`AFFINE_BITS_MAX`]).
        bits: u8,
    },
    /// Signed symmetric codes with one scale per row:
    /// `value = scales[row] · code`, codes in `−Q..=Q`.
    SymmetricPerRow {
        /// Per-row step (one entry per tensor row).
        scales: Vec<f32>,
        /// Bit width (≤ [`SYMMETRIC_BITS_MAX`]).
        bits: u8,
    },
}

/// An i8-coded tensor with its quantization scheme. 2-D row-major, like
/// the dense [`Tensor`] it mirrors.
#[derive(Debug, PartialEq)]
pub struct QuantizedTensor {
    shape: [usize; 2],
    data: Vec<i8>,
    scheme: QScheme,
}

impl Clone for QuantizedTensor {
    fn clone(&self) -> Self {
        let mut data = scratch::take_filled_i8(self.data.len(), 0);
        data.copy_from_slice(&self.data);
        Self {
            shape: self.shape,
            data,
            scheme: self.scheme.clone(),
        }
    }
}

impl Drop for QuantizedTensor {
    fn drop(&mut self) {
        scratch::give_i8(std::mem::take(&mut self.data));
    }
}

impl QuantizedTensor {
    /// Quantizes `x` onto the unsigned affine grid, deriving the clip
    /// range from the data. See
    /// [`quantize_affine_with_range`](Self::quantize_affine_with_range).
    pub fn quantize_affine(x: &Tensor, bits: u8) -> Self {
        Self::quantize_affine_with_range(x, bits, None)
    }

    /// Quantizes `x` onto the unsigned affine grid over `range` (e.g. a
    /// calibrated activation range); values outside clip. The range is
    /// extended to include zero, so zero is always a grid point
    /// (`code == zero_point` exactly).
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ bits ≤ 7` and `x` is 2-D.
    pub fn quantize_affine_with_range(x: &Tensor, bits: u8, range: Option<(f32, f32)>) -> Self {
        assert!(
            (1..=AFFINE_BITS_MAX).contains(&bits),
            "affine bits must be 1..={AFFINE_BITS_MAX}, got {bits}"
        );
        let shape = dims2(x);
        let d = x.data();
        let (mut lo, mut hi) = range.unwrap_or_else(|| {
            d.iter()
                .fold((f32::INFINITY, f32::NEG_INFINITY), |(lo, hi), &v| {
                    (lo.min(v), hi.max(v))
                })
        });
        lo = lo.min(0.0);
        hi = hi.max(0.0);
        let max_code = ((1u32 << bits) - 1) as i32;
        let span = hi - lo;
        let scale = if span > 0.0 && span.is_finite() {
            span / max_code as f32
        } else {
            1.0
        };
        let zero_point = ((-lo / scale).round() as i32).clamp(0, max_code);
        let mut data = scratch::take_filled_i8(d.len(), 0);
        for (c, &v) in data.iter_mut().zip(d) {
            let code = (v / scale).round() as i32 + zero_point;
            *c = code.clamp(0, max_code) as i8;
        }
        Self {
            shape,
            data,
            scheme: QScheme::Affine {
                scale,
                zero_point,
                bits,
            },
        }
    }

    /// Quantizes a 2-D weight matrix onto the signed symmetric grid with
    /// one scale per row (output channel).
    ///
    /// # Panics
    ///
    /// Panics unless `2 ≤ bits ≤ 8` and `w` is 2-D.
    pub fn quantize_symmetric_per_row(w: &Tensor, bits: u8) -> Self {
        assert!(
            (2..=SYMMETRIC_BITS_MAX).contains(&bits),
            "symmetric bits must be 2..={SYMMETRIC_BITS_MAX}, got {bits}"
        );
        let shape = dims2(w);
        let (rows, cols) = (shape[0], shape[1]);
        let q = ((1u32 << (bits - 1)) - 1) as i32;
        let d = w.data();
        let mut scales = Vec::with_capacity(rows);
        let mut data = scratch::take_filled_i8(d.len(), 0);
        for r in 0..rows {
            let row = &d[r * cols..][..cols];
            let amax = row.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
            let scale = if amax > 0.0 && amax.is_finite() {
                amax / q as f32
            } else {
                1.0
            };
            scales.push(scale);
            for (c, &v) in data[r * cols..][..cols].iter_mut().zip(row) {
                *c = ((v / scale).round() as i32).clamp(-q, q) as i8;
            }
        }
        Self {
            shape,
            data,
            scheme: QScheme::SymmetricPerRow { scales, bits },
        }
    }

    /// `(rows, cols)` shape.
    pub fn shape(&self) -> [usize; 2] {
        self.shape
    }

    /// Raw i8 codes, row-major.
    pub fn data(&self) -> &[i8] {
        &self.data
    }

    /// The attached scheme.
    pub fn scheme(&self) -> &QScheme {
        &self.scheme
    }

    /// The codes reinterpreted as the unsigned GEMM operand. Only valid
    /// for affine tensors, whose codes are non-negative by construction.
    pub fn as_unsigned(&self) -> &[u8] {
        debug_assert!(matches!(self.scheme, QScheme::Affine { .. }));
        debug_assert!(self.data.iter().all(|&c| c >= 0));
        // SAFETY: i8 and u8 have identical layout; all codes are ≥ 0, so
        // the reinterpretation preserves values.
        unsafe { std::slice::from_raw_parts(self.data.as_ptr().cast::<u8>(), self.data.len()) }
    }

    /// Per-row sums of the raw codes — the correction term an affine
    /// counterpart's zero point multiplies in [`qmatmul_nt`].
    pub fn row_code_sums(&self) -> Vec<i32> {
        let (rows, cols) = (self.shape[0], self.shape[1]);
        (0..rows)
            .map(|r| {
                self.data[r * cols..][..cols]
                    .iter()
                    .map(|&c| c as i32)
                    .sum()
            })
            .collect()
    }

    /// Reconstructs the f32 tensor the codes represent.
    pub fn dequantize(&self) -> Tensor {
        let mut out = Tensor::zeros(&[self.shape[0], self.shape[1]]);
        let od = out.data_mut();
        match &self.scheme {
            QScheme::Affine {
                scale, zero_point, ..
            } => {
                for (o, &c) in od.iter_mut().zip(&self.data) {
                    *o = scale * (c as i32 - zero_point) as f32;
                }
            }
            QScheme::SymmetricPerRow { scales, .. } => {
                let cols = self.shape[1];
                for (r, &s) in scales.iter().enumerate() {
                    for (o, &c) in od[r * cols..][..cols]
                        .iter_mut()
                        .zip(&self.data[r * cols..][..cols])
                    {
                        *o = s * c as f32;
                    }
                }
            }
        }
        out
    }

    /// Largest dequantization step of this tensor — "one quantization
    /// step" for parity tolerances.
    pub fn step(&self) -> f32 {
        match &self.scheme {
            QScheme::Affine { scale, .. } => *scale,
            QScheme::SymmetricPerRow { scales, .. } => scales.iter().fold(0.0f32, |m, &s| m.max(s)),
        }
    }
}

fn dims2(t: &Tensor) -> [usize; 2] {
    let s = t.shape();
    assert_eq!(s.len(), 2, "quantization expects a 2-D tensor");
    [s[0], s[1]]
}

/// Integer NT matmul of an affine activation tensor `a` (`m × k`)
/// against a per-row-symmetric weight tensor `b` (`n × k`), returning
/// the dequantized f32 product `dequant(a) · dequant(b)ᵀ` (`m × n`).
///
/// The products accumulate exactly in i32 through [`qgemm::qgemm_nt`];
/// the affine zero point is removed digitally with `b`'s row code sums:
/// `y[i,j] = s_a · s_b[j] · (acc[i,j] − zp_a · Σ_p b[j,p])`. The only
/// rounding is the final f32 scaling, identical for any thread count.
///
/// # Panics
///
/// Panics if inner dims disagree or the schemes are not
/// affine × symmetric-per-row.
pub fn qmatmul_nt(a: &QuantizedTensor, b: &QuantizedTensor) -> Tensor {
    let [m, k] = a.shape();
    let [n, kb] = b.shape();
    assert_eq!(k, kb, "qmatmul_nt: inner dims {k} vs {kb}");
    let QScheme::Affine {
        scale: sa,
        zero_point: zp,
        ..
    } = *a.scheme()
    else {
        panic!("qmatmul_nt: a must be affine-quantized");
    };
    let QScheme::SymmetricPerRow { scales, .. } = b.scheme() else {
        panic!("qmatmul_nt: b must be symmetric-per-row");
    };
    let mut acc = scratch::take_filled_i32(m * n, 0);
    qgemm::qgemm_nt(a.as_unsigned(), b.data(), &mut acc, m, k, n);
    let colsum = b.row_code_sums();
    let mut out = Tensor::zeros(&[m, n]);
    let od = out.data_mut();
    for i in 0..m {
        for j in 0..n {
            let corrected = acc[i * n + j] - zp * colsum[j];
            od[i * n + j] = sa * scales[j] * corrected as f32;
        }
    }
    scratch::give_i32(acc);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linalg::matmul_nt;
    use crate::qgemm::QGEMM_A_MAX;
    use crate::rng::XorShiftRng;

    fn rand_tensor(rng: &mut XorShiftRng, shape: &[usize], lo: f32, hi: f32) -> Tensor {
        let mut t = Tensor::zeros(shape);
        for v in t.data_mut() {
            *v = lo + (hi - lo) * rng.next_f32();
        }
        t
    }

    #[test]
    fn affine_round_trip_within_half_step() {
        let mut rng = XorShiftRng::new(11);
        let x = rand_tensor(&mut rng, &[6, 40], -0.8, 1.3);
        let q = QuantizedTensor::quantize_affine(&x, 7);
        let back = q.dequantize();
        let step = q.step();
        for (&a, &b) in x.data().iter().zip(back.data()) {
            assert!((a - b).abs() <= 0.5 * step + 1e-6, "{a} vs {b} step {step}");
        }
        // Zero is exactly representable.
        let z = QuantizedTensor::quantize_affine(&Tensor::zeros(&[2, 70]), 7);
        assert!(z.dequantize().data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn affine_codes_respect_the_unsigned_bound() {
        let mut rng = XorShiftRng::new(3);
        let x = rand_tensor(&mut rng, &[4, 33], -5.0, 5.0);
        for bits in 1..=AFFINE_BITS_MAX {
            let q = QuantizedTensor::quantize_affine(&x, bits);
            let max_code = (1i32 << bits) - 1;
            assert!(q
                .data()
                .iter()
                .all(|&c| c >= 0 && (c as i32) <= max_code.min(QGEMM_A_MAX as i32)));
        }
    }

    #[test]
    fn symmetric_per_row_scales_each_row_independently() {
        let mut w = Tensor::zeros(&[2, 64]);
        w.data_mut()[..64].iter_mut().for_each(|v| *v = 0.01);
        w.data_mut()[64..].iter_mut().for_each(|v| *v = 100.0);
        let q = QuantizedTensor::quantize_symmetric_per_row(&w, 8);
        // Both rows are at full scale despite a 10^4 magnitude gap.
        assert!(q.data().iter().all(|&c| c == 127));
        let back = q.dequantize();
        for (&a, &b) in w.data().iter().zip(back.data()) {
            assert!((a - b).abs() <= 1e-4 * a.abs());
        }
    }

    #[test]
    fn qmatmul_matches_f32_on_dequantized_operands() {
        let mut rng = XorShiftRng::new(77);
        let x = rand_tensor(&mut rng, &[9, 48], -1.0, 1.0);
        let w = rand_tensor(&mut rng, &[13, 48], -0.5, 0.5);
        let qx = QuantizedTensor::quantize_affine(&x, 7);
        let qw = QuantizedTensor::quantize_symmetric_per_row(&w, 8);
        let got = qmatmul_nt(&qx, &qw);
        let want = matmul_nt(&qx.dequantize(), &qw.dequantize()).unwrap();
        // Same products, exact integer accumulation vs f32 accumulation:
        // agreement to f32 rounding, far inside one quantization step.
        for (&g, &e) in got.data().iter().zip(want.data()) {
            assert!((g - e).abs() <= 1e-4 + 1e-4 * e.abs(), "{g} vs {e}");
        }
    }

    #[test]
    fn clone_and_drop_round_trip_through_the_pool() {
        let x = Tensor::full(&[4, 64], 0.5);
        let q = QuantizedTensor::quantize_affine(&x, 7);
        let q2 = q.clone();
        assert_eq!(q.data(), q2.data());
        assert_eq!(q.scheme(), q2.scheme());
        drop(q);
        drop(q2);
    }
}
