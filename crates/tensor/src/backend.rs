//! Parallel compute backend: a dependency-free persistent work-stealing
//! scheduler (mechanism in [`crate::sched`]) plus the data-parallel
//! helpers every hot kernel in the workspace is written against.
//!
//! Every hot kernel in the workspace (GEMM, im2col, pooling, Monte-Carlo
//! trial fan-out, per-tile MVM, sharded gradient reduction, the sweep
//! runner) runs through this module. The design goals, in order:
//!
//! 1. **Determinism** — results are bitwise identical regardless of the
//!    thread count. Work is split into *fixed* chunks whose boundaries
//!    depend only on the problem size, every chunk writes a disjoint
//!    region of the output, and per-element arithmetic is the same code
//!    on the serial and parallel paths. Reductions over chunk results are
//!    always performed in chunk order on the calling thread — or, for the
//!    task-graph paths, committed in submission order via
//!    [`ordered_stream`] / fixed-order [`TaskScope::defer`] reductions.
//! 2. **Zero dependencies** — `std::thread` + `Mutex`/`Condvar` only, so
//!    the workspace keeps building fully offline.
//! 3. **Graceful degradation** — on a single-core host (whatever
//!    `XBAR_THREADS` says) and with `XBAR_THREADS=1` everything runs
//!    inline on the caller with no queueing overhead: requested lanes
//!    beyond [`std::thread::available_parallelism`] are never spawned,
//!    because a worker the hardware cannot run concurrently only adds
//!    context-switch cost to work the caller would finish sooner itself.
//!
//! # Configuration
//!
//! * `XBAR_THREADS=N` caps the pool at `N` lanes (the calling thread
//!   counts as one lane; `N = 1` is the guaranteed-serial mode). Unset, the
//!   pool sizes itself from [`std::thread::available_parallelism`].
//! * [`force_serial`] switches the process to serial execution at runtime
//!   — used by the benchmark harness to time the serial baseline, and by
//!   parity tests to compare serial and parallel results in one process.
//! * `XBAR_SCHED_JITTER=<seed>` (with the `sched-fuzz` cargo feature)
//!   injects a per-task pseudo-random sleep to fuzz steal order — the
//!   determinism tests assert results are bitwise identical anyway.
//!
//! # Nested parallelism
//!
//! A task already running on a pool lane — a spawned worker, or the
//! calling thread while it drains scoped jobs — that calls back into a
//! `parallel_*` helper executes its sub-work inline. Lanes never block
//! on other lanes, so pool-in-pool usage cannot deadlock, and a nested
//! kernel call costs nothing beyond the serial loop it runs.

use std::ops::Range;
use std::sync::OnceLock;

pub use crate::sched::{force_serial, serial_active, Pool, TaskHandle, TaskScope, Trigger};

/// Resolves the configured lane count: `XBAR_THREADS` if set and valid,
/// otherwise [`std::thread::available_parallelism`]. This is what the
/// global pool is sized with on first use; later env changes have no
/// effect on an already-built pool.
pub fn configured_threads() -> usize {
    match std::env::var("XBAR_THREADS") {
        Ok(s) => match s.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!("XBAR_THREADS={s:?} is not a positive integer; using hardware default");
                hardware_threads()
            }
        },
        Err(_) => hardware_threads(),
    }
}

pub(crate) fn hardware_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// The process-wide pool, created on first use from `XBAR_THREADS` /
/// available parallelism.
pub fn global() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool::new(configured_threads()))
}

/// Total concurrent lanes of the global pool.
pub fn threads() -> usize {
    global().threads()
}

/// Opens a task-graph scope on the global pool — see [`Pool::scope`].
pub fn scope<'scope, R>(f: impl FnOnce(&TaskScope<'scope>) -> R) -> R {
    global().scope(f)
}

/// Journal-ordered commit stream on the global pool: `produce` runs on the
/// pool (one stealable task per item), `consume` runs on the calling
/// thread strictly in submission order — see [`Pool::ordered_stream`].
pub fn ordered_stream<I, R, F, C>(items: Vec<I>, produce: F, consume: C)
where
    I: Send,
    R: Send,
    F: Fn(usize, I) -> R + Sync,
    C: FnMut(usize, R),
{
    global().ordered_stream(items, produce, consume);
}

/// How many tasks to split `n_items` into: enough to load every lane with
/// a little slack for imbalance, never more than the item count. The task
/// count influences scheduling only — results are chunk-invariant — so it
/// may depend on the lane count without breaking determinism.
fn task_count(n_items: usize) -> usize {
    n_items.min(threads().saturating_mul(3))
}

/// Runs `f` over disjoint sub-ranges covering `0..n`. Ranges are multiples
/// of `grain` items (the last may be short); `f` must only touch state
/// owned by its range. Runs `f(0..n)` inline when serial or when the work
/// is one grain or less.
pub fn parallel_for<F>(n: usize, grain: usize, f: F)
where
    F: Fn(Range<usize>) + Sync,
{
    let grain = grain.max(1);
    let n_chunks = n.div_ceil(grain);
    crate::sched::parallel_for_impl(global(), n, grain, task_count(n_chunks), f);
}

/// Splits `data` into consecutive `chunk_len`-sized pieces (the last may
/// be short) and runs `f(chunk_index, chunk)` for each, in parallel.
/// Chunk boundaries depend only on `chunk_len`, so any per-chunk
/// computation that matches the serial loop is bitwise reproducible.
///
/// # Panics
///
/// Panics if `chunk_len == 0` while `data` is non-empty.
pub fn parallel_chunks_mut<T, F>(data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    if data.is_empty() {
        return;
    }
    assert!(
        chunk_len > 0,
        "parallel_chunks_mut: chunk_len must be positive"
    );
    let n_chunks = data.len().div_ceil(chunk_len);
    if n_chunks <= 1 || !global().has_workers() || serial_active() {
        for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(i, chunk);
        }
        return;
    }
    let groups = task_count(n_chunks);
    let chunks_per_group = n_chunks.div_ceil(groups);
    let f = &f;
    let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(groups);
    let mut rest = data;
    let mut base = 0usize;
    while !rest.is_empty() {
        let take = (chunks_per_group * chunk_len).min(rest.len());
        let (head, tail) = rest.split_at_mut(take);
        rest = tail;
        let first_chunk = base;
        tasks.push(Box::new(move || {
            for (i, chunk) in head.chunks_mut(chunk_len).enumerate() {
                f(first_chunk + i, chunk);
            }
        }));
        base += take.div_ceil(chunk_len);
    }
    global().run_scoped(tasks);
}

/// Applies `f(index, item)` to every item, in parallel, preserving input
/// order in the returned vector. The reduction (vector assembly) happens
/// in index order, so `parallel_map(v, f)` equals the serial
/// `v.into_iter().map(f).collect()` whenever each `f(i, item)` is
/// independent of the others.
pub fn parallel_map<I, R, F>(items: Vec<I>, f: F) -> Vec<R>
where
    I: Send,
    R: Send,
    F: Fn(usize, I) -> R + Sync,
{
    parallel_map_with(|| (), items, |(), i, item| f(i, item))
}

/// Like [`parallel_map`], but each task first builds a private scratch
/// state with `make_state` (e.g. a cloned network for Monte-Carlo trials)
/// that is reused across the items of that task. `f` must leave the state
/// equivalent to fresh after each item — results must not depend on how
/// items are grouped into tasks, which is also what keeps the output
/// thread-count-invariant.
pub fn parallel_map_with<S, I, R, MK, F>(make_state: MK, items: Vec<I>, f: F) -> Vec<R>
where
    I: Send,
    R: Send,
    MK: Fn() -> S + Sync,
    F: Fn(&mut S, usize, I) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    if n == 1 || !global().has_workers() || serial_active() {
        let mut state = make_state();
        return items
            .into_iter()
            .enumerate()
            .map(|(i, item)| f(&mut state, i, item))
            .collect();
    }
    let groups = task_count(n);
    let per_group = n.div_ceil(groups);
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    {
        let f = &f;
        let make_state = &make_state;
        let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(groups);
        let mut item_groups: Vec<Vec<I>> = Vec::with_capacity(groups);
        let mut items = items;
        while !items.is_empty() {
            let tail = items.split_off(per_group.min(items.len()));
            item_groups.push(std::mem::replace(&mut items, tail));
        }
        for (gi, (group, out)) in item_groups
            .into_iter()
            .zip(slots.chunks_mut(per_group))
            .enumerate()
        {
            let base = gi * per_group;
            tasks.push(Box::new(move || {
                let mut state = make_state();
                for ((off, item), slot) in group.into_iter().enumerate().zip(out.iter_mut()) {
                    *slot = Some(f(&mut state, base + off, item));
                }
            }));
        }
        global().run_scoped(tasks);
    }
    slots
        .into_iter()
        .map(|r| r.expect("parallel_map task filled every slot"))
        .collect()
}

/// The captured payload of a panicking task — the per-task error type of
/// [`try_parallel_map`] / [`try_parallel_map_with`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskPanic {
    /// Human-readable panic message (the `&str`/`String` payload when the
    /// task panicked with one, a placeholder otherwise).
    pub message: String,
}

impl std::fmt::Display for TaskPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "task panicked: {}", self.message)
    }
}

impl std::error::Error for TaskPanic {}

/// Extracts a readable message from a `catch_unwind` payload.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Fault-isolating [`parallel_map`]: a panicking item yields
/// `Err(TaskPanic)` in its slot instead of poisoning the whole map. Every
/// other item still runs to completion, and output order matches input
/// order exactly as in [`parallel_map`]. This is the primitive the
/// resilient sweep runner builds on — one crashed Monte-Carlo cell must
/// not discard the rest of the grid.
pub fn try_parallel_map<I, R, F>(items: Vec<I>, f: F) -> Vec<Result<R, TaskPanic>>
where
    I: Send,
    R: Send,
    F: Fn(usize, I) -> R + Sync,
{
    try_parallel_map_with(|| (), items, |(), i, item| f(i, item))
}

/// Fault-isolating [`parallel_map_with`]. Like [`try_parallel_map`], but
/// each task carries private scratch state built by `make_state`. A panic
/// may leave that state inconsistent, so it is discarded and rebuilt
/// before the task's next item — later items never observe a
/// half-mutated scratch.
pub fn try_parallel_map_with<S, I, R, MK, F>(
    make_state: MK,
    items: Vec<I>,
    f: F,
) -> Vec<Result<R, TaskPanic>>
where
    I: Send,
    R: Send,
    MK: Fn() -> S + Sync,
    F: Fn(&mut S, usize, I) -> R + Sync,
{
    let make_state = &make_state;
    let f = &f;
    parallel_map_with(
        || None::<S>,
        items,
        move |slot, i, item| {
            let state = slot.get_or_insert_with(make_state);
            let result =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(state, i, item)));
            match result {
                Ok(r) => Ok(r),
                Err(payload) => {
                    let message = panic_message(payload.as_ref());
                    *slot = None; // scratch may be torn mid-panic: rebuild
                    Err(TaskPanic { message })
                }
            }
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    #[test]
    fn serial_pool_runs_inline_in_order() {
        let pool = Pool::new(1);
        let order = Mutex::new(Vec::new());
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..4)
            .map(|i| {
                let order = &order;
                Box::new(move || order.lock().unwrap().push(i)) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.run_scoped(tasks);
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn pool_executes_all_tasks() {
        let pool = Pool::new(4);
        let counter = AtomicUsize::new(0);
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..64)
            .map(|_| {
                let counter = &counter;
                Box::new(move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.run_scoped(tasks);
        assert_eq!(counter.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn scoped_borrow_of_stack_data() {
        let pool = Pool::new(3);
        let mut data = vec![0u64; 97];
        {
            let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::new();
            for (i, chunk) in data.chunks_mut(10).enumerate() {
                tasks.push(Box::new(move || {
                    for (j, v) in chunk.iter_mut().enumerate() {
                        *v = (i * 10 + j) as u64;
                    }
                }));
            }
            pool.run_scoped(tasks);
        }
        assert!(data.iter().enumerate().all(|(i, &v)| v == i as u64));
    }

    #[test]
    fn panic_in_task_propagates_after_completion() {
        let pool = Pool::new(2);
        let done = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..8)
                .map(|i| {
                    let done = &done;
                    Box::new(move || {
                        if i == 3 {
                            panic!("boom");
                        }
                        done.fetch_add(1, Ordering::SeqCst);
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            pool.run_scoped(tasks);
        }));
        assert!(result.is_err(), "panic must propagate to the caller");
        assert_eq!(done.load(Ordering::SeqCst), 7, "surviving tasks all ran");
    }

    #[test]
    fn parallel_for_covers_range_once() {
        let n = 1013;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        parallel_for(n, 64, |range| {
            for i in range {
                hits[i].fetch_add(1, Ordering::SeqCst);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn parallel_for_empty_and_single() {
        parallel_for(0, 8, |_| panic!("must not be called"));
        let hits = AtomicUsize::new(0);
        parallel_for(3, 8, |r| {
            assert_eq!(r, 0..3);
            hits.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn parallel_chunks_mut_indexes_match_serial() {
        let mut par = vec![0u32; 257];
        parallel_chunks_mut(&mut par, 10, |i, chunk| {
            for (j, v) in chunk.iter_mut().enumerate() {
                *v = (i * 1000 + j) as u32;
            }
        });
        let mut ser = vec![0u32; 257];
        for (i, chunk) in ser.chunks_mut(10).enumerate() {
            for (j, v) in chunk.iter_mut().enumerate() {
                *v = (i * 1000 + j) as u32;
            }
        }
        assert_eq!(par, ser);
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<usize> = (0..533).collect();
        let out = parallel_map(items, |i, x| {
            assert_eq!(i, x);
            x * 2 + 1
        });
        assert_eq!(out, (0..533).map(|x| x * 2 + 1).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_with_builds_state_per_task() {
        let builds = AtomicUsize::new(0);
        let out = parallel_map_with(
            || {
                builds.fetch_add(1, Ordering::SeqCst);
                0usize
            },
            (0..40).collect::<Vec<usize>>(),
            |scratch, _i, x| {
                *scratch += 1; // scratch usage must not leak into results
                x + 1
            },
        );
        assert_eq!(out, (1..=40).collect::<Vec<_>>());
        assert!(builds.load(Ordering::SeqCst) >= 1);
    }

    #[test]
    fn try_parallel_map_isolates_panics() {
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // silence expected panics
        let out = try_parallel_map((0..64).collect::<Vec<usize>>(), |_, x| {
            if x % 13 == 5 {
                panic!("boom at {x}");
            }
            x * 2
        });
        std::panic::set_hook(hook);
        assert_eq!(out.len(), 64);
        for (i, r) in out.iter().enumerate() {
            if i % 13 == 5 {
                let e = r.as_ref().unwrap_err();
                assert_eq!(e.message, format!("boom at {i}"));
            } else {
                assert_eq!(*r.as_ref().unwrap(), i * 2);
            }
        }
    }

    #[test]
    fn try_parallel_map_with_rebuilds_state_after_panic() {
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        // Force a single task so items share (and re-share) scratch state:
        // after the panic at item 1 the scratch must come back fresh.
        force_serial(true);
        let builds = AtomicUsize::new(0);
        let out = try_parallel_map_with(
            || {
                builds.fetch_add(1, Ordering::SeqCst);
                0usize
            },
            vec![10usize, 11, 12],
            |scratch, _i, x| {
                *scratch += 1;
                if x == 11 {
                    panic!("poisoned");
                }
                (*scratch, x)
            },
        );
        force_serial(false);
        std::panic::set_hook(hook);
        assert_eq!(out[0], Ok((1, 10)));
        assert!(out[1].is_err());
        // Scratch was rebuilt: the post-panic item sees a fresh counter.
        assert_eq!(out[2], Ok((1, 12)));
        assert!(builds.load(Ordering::SeqCst) >= 2);
    }

    #[test]
    fn try_parallel_map_non_string_payload_is_labelled() {
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let out = try_parallel_map(vec![0usize], |_, _| {
            std::panic::panic_any(42usize);
            #[allow(unreachable_code)]
            ()
        });
        std::panic::set_hook(hook);
        assert_eq!(
            out[0].as_ref().unwrap_err().message,
            "non-string panic payload"
        );
    }

    #[test]
    fn nested_parallel_for_runs_inline_without_deadlock() {
        // A parallel_for body that itself calls parallel_for: the inner
        // call must run inline on the worker rather than re-entering the
        // pool (which could deadlock a fully-busy pool).
        let n = 64;
        let hits: Vec<AtomicUsize> = (0..n * n).map(|_| AtomicUsize::new(0)).collect();
        parallel_for(n, 1, |outer| {
            for i in outer {
                parallel_for(n, 1, |inner| {
                    for j in inner {
                        hits[i * n + j].fetch_add(1, Ordering::SeqCst);
                    }
                });
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn force_serial_round_trip() {
        assert!(!serial_active());
        force_serial(true);
        assert!(serial_active());
        let hits = AtomicUsize::new(0);
        parallel_for(100, 1, |r| {
            // Forced-serial: a single inline call over the whole range.
            assert_eq!(r, 0..100);
            hits.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 1);
        force_serial(false);
        assert!(!serial_active());
    }

    #[test]
    fn scope_spawn_runs_all_tasks() {
        let pool = Pool::new(4);
        let counter = AtomicUsize::new(0);
        pool.scope(|s| {
            for _ in 0..64 {
                s.spawn(|| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn scope_spawn_after_orders_dependents() {
        let pool = Pool::new(4);
        for _ in 0..50 {
            let stage = AtomicUsize::new(0);
            pool.scope(|s| {
                let a = s.spawn(|| {
                    stage.fetch_max(1, Ordering::SeqCst);
                });
                let b = s.spawn(|| {
                    stage.fetch_max(1, Ordering::SeqCst);
                });
                s.spawn_after(&[&a, &b], || {
                    assert!(
                        stage.load(Ordering::SeqCst) >= 1,
                        "dependent ran before its dependencies"
                    );
                    stage.fetch_max(2, Ordering::SeqCst);
                });
            });
            assert_eq!(stage.load(Ordering::SeqCst), 2);
        }
    }

    #[test]
    fn scope_defer_fires_on_final_signal() {
        let pool = Pool::new(4);
        let fired = AtomicUsize::new(0);
        let signaled = AtomicUsize::new(0);
        pool.scope(|s| {
            let trigger = s.defer(3, || {
                assert_eq!(signaled.load(Ordering::SeqCst), 3);
                fired.fetch_add(1, Ordering::SeqCst);
            });
            for _ in 0..3 {
                let trigger = trigger.clone();
                let signaled = &signaled;
                s.spawn(move || {
                    signaled.fetch_add(1, Ordering::SeqCst);
                    trigger.signal();
                });
            }
        });
        assert_eq!(fired.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn scope_defer_zero_deps_fires_immediately() {
        let pool = Pool::new(2);
        let fired = AtomicUsize::new(0);
        pool.scope(|s| {
            let _trigger = s.defer(0, || {
                fired.fetch_add(1, Ordering::SeqCst);
            });
        });
        assert_eq!(fired.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn scope_serial_runs_in_submission_order() {
        let pool = Pool::new(1);
        let order = Mutex::new(Vec::new());
        pool.scope(|s| {
            for i in 0..4 {
                let order = &order;
                s.spawn(move || order.lock().unwrap().push(i));
            }
            let t = s.defer(2, || order.lock().unwrap().push(99));
            s.spawn({
                let t = t.clone();
                move || t.signal()
            });
            s.spawn(move || t.signal());
        });
        // Inline mode: spawns run at submission; the deferred task fires
        // inside the second signaling spawn.
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2, 3, 99]);
    }

    #[test]
    fn scope_task_panic_propagates() {
        let pool = Pool::new(2);
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.spawn(|| panic!("scoped boom"));
            });
        }));
        std::panic::set_hook(hook);
        assert!(result.is_err(), "task panic must reach the scope caller");
    }

    #[test]
    fn ordered_stream_commits_in_submission_order() {
        let pool = Pool::new(4);
        // Heterogeneous costs: early items are the slowest, so completion
        // order differs from submission order with high probability.
        let items: Vec<usize> = (0..64).collect();
        let mut seen = Vec::new();
        pool.ordered_stream(
            items,
            |i, x| {
                assert_eq!(i, x);
                if x < 8 {
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
                x * 3
            },
            |i, r| seen.push((i, r)),
        );
        assert_eq!(seen, (0..64).map(|i| (i, i * 3)).collect::<Vec<_>>());
    }

    #[test]
    fn ordered_stream_serial_matches_parallel() {
        let items: Vec<u32> = (0..40).collect();
        let run = || {
            let mut out = Vec::new();
            ordered_stream(
                items.clone(),
                |_, x| (x as f32).sqrt(),
                |_, r| out.push(r.to_bits()),
            );
            out
        };
        let parallel = run();
        force_serial(true);
        let serial = run();
        force_serial(false);
        assert_eq!(parallel, serial);
    }

    #[test]
    fn ordered_stream_panic_propagates() {
        let pool = Pool::new(2);
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let consumed = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.ordered_stream(
                (0..16).collect::<Vec<usize>>(),
                |_, x| {
                    if x == 7 {
                        panic!("cell boom");
                    }
                    x
                },
                |_, _| {
                    consumed.fetch_add(1, Ordering::SeqCst);
                },
            );
        }));
        std::panic::set_hook(hook);
        assert!(result.is_err(), "producer panic must propagate");
        assert!(
            consumed.load(Ordering::SeqCst) <= 7,
            "nothing at or past the panicked index may be consumed"
        );
    }

    #[test]
    fn nested_scope_inside_stolen_task_is_inline() {
        // Regression (caller-lane starvation): a stolen task that opens
        // its own scope and a nested parallel_for must complete without
        // blocking any lane on another lane.
        let pool = Pool::new(4);
        let total = AtomicUsize::new(0);
        pool.scope(|s| {
            for _ in 0..16 {
                let total = &total;
                s.spawn(move || {
                    crate::backend::global().scope(|inner| {
                        for _ in 0..4 {
                            inner.spawn(|| {
                                parallel_for(8, 1, |r| {
                                    total.fetch_add(r.len(), Ordering::SeqCst);
                                });
                            });
                        }
                    });
                });
            }
        });
        assert_eq!(total.load(Ordering::SeqCst), 16 * 4 * 8);
    }
}
