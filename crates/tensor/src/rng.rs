//! Deterministic pseudo-random number generation.
//!
//! Every stochastic component in the workspace (weight init, synthetic data,
//! device variation sampling) draws from [`XorShiftRng`], a small
//! xorshift64* generator, so that an experiment is fully reproducible from a
//! single `u64` seed. The generator is *not* cryptographically secure — it
//! is a simulation PRNG.

/// The complete serializable state of an [`XorShiftRng`] stream.
///
/// Capturing and restoring this snapshot lets a consumer (e.g. a training
/// checkpoint) resume a stochastic computation mid-stream and reproduce the
/// uninterrupted sequence bitwise. The Box–Muller spare is part of the
/// state: [`XorShiftRng::normal`] produces samples in pairs, so dropping
/// the cached half would desynchronize every draw after an odd number of
/// normal samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RngState {
    /// The raw xorshift64* register.
    pub state: u64,
    /// Cached second output of the Box–Muller transform, if any.
    pub spare_normal: Option<f32>,
}

/// A deterministic xorshift64* pseudo-random number generator.
///
/// # Example
///
/// ```
/// use xbar_tensor::rng::XorShiftRng;
///
/// let mut a = XorShiftRng::new(42);
/// let mut b = XorShiftRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct XorShiftRng {
    state: u64,
    /// Cached second output of the Box–Muller transform.
    spare_normal: Option<f32>,
}

impl XorShiftRng {
    /// Creates a generator from `seed`. A zero seed is remapped to a fixed
    /// non-zero constant because xorshift has an all-zero fixed point.
    pub fn new(seed: u64) -> Self {
        let state = if seed == 0 {
            0x9E37_79B9_7F4A_7C15
        } else {
            seed
        };
        Self {
            state,
            spare_normal: None,
        }
    }

    /// Snapshots the complete generator state for persistence.
    pub fn save_state(&self) -> RngState {
        RngState {
            state: self.state,
            spare_normal: self.spare_normal,
        }
    }

    /// Rebuilds a generator from a [`RngState`] snapshot. The restored
    /// stream continues bitwise where the saved one left off.
    pub fn from_state(s: RngState) -> Self {
        Self {
            state: s.state,
            spare_normal: s.spare_normal,
        }
    }

    /// Overwrites this generator's state with a snapshot (in-place
    /// counterpart of [`XorShiftRng::from_state`]).
    pub fn restore_state(&mut self, s: RngState) {
        self.state = s.state;
        self.spare_normal = s.spare_normal;
    }

    /// Derives an independent child generator. Useful for giving each
    /// Monte-Carlo sample its own stream.
    pub fn fork(&mut self, stream: u64) -> Self {
        let mixed = self
            .next_u64()
            .wrapping_add(stream.wrapping_mul(0xA076_1D64_78BD_642F));
        Self::new(mixed | 1)
    }

    /// Returns the next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform `f32` in `[0, 1)`.
    pub fn next_f32(&mut self) -> f32 {
        // Use the top 24 bits for a uniformly spaced mantissa.
        (self.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }

    /// Uniform `f32` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        assert!(lo <= hi, "uniform bounds inverted: [{lo}, {hi})");
        lo + (hi - lo) * self.next_f32()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is undefined");
        // Multiplicative range reduction; bias is negligible for the small
        // ranges used in simulation (n << 2^64).
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// Standard normal sample via the Box–Muller transform.
    pub fn normal(&mut self) -> f32 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        // Reject u1 == 0 to keep ln finite.
        let mut u1 = self.next_f32();
        while u1 <= f32::EPSILON {
            u1 = self.next_f32();
        }
        let u2 = self.next_f32();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f32, std_dev: f32) -> f32 {
        mean + std_dev * self.normal()
    }

    /// Fisher–Yates shuffle of `slice`.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i + 1);
            slice.swap(i, j);
        }
    }
}

impl Default for XorShiftRng {
    fn default() -> Self {
        Self::new(0x5EED)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = XorShiftRng::new(7);
        let mut b = XorShiftRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = XorShiftRng::new(1);
        let mut b = XorShiftRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should be effectively independent");
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = XorShiftRng::new(0);
        assert_ne!(r.next_u64(), 0);
    }

    #[test]
    fn uniform_stays_in_range() {
        let mut r = XorShiftRng::new(3);
        for _ in 0..10_000 {
            let x = r.next_f32();
            assert!((0.0..1.0).contains(&x), "{x} out of [0,1)");
        }
    }

    #[test]
    fn uniform_bounds_respected() {
        let mut r = XorShiftRng::new(4);
        for _ in 0..1000 {
            let x = r.uniform(-2.5, 3.5);
            assert!((-2.5..3.5).contains(&x));
        }
    }

    #[test]
    fn below_covers_range() {
        let mut r = XorShiftRng::new(5);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[r.below(10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn normal_moments_are_sane() {
        let mut r = XorShiftRng::new(6);
        let n = 50_000;
        let samples: Vec<f32> = (0..n).map(|_| r.normal()).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn normal_with_scales_and_shifts() {
        let mut r = XorShiftRng::new(8);
        let n = 50_000;
        let samples: Vec<f32> = (0..n).map(|_| r.normal_with(5.0, 0.5)).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        assert!((mean - 5.0).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = XorShiftRng::new(9);
        let mut v: Vec<usize> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..100).collect::<Vec<_>>(),
            "shuffle left input unchanged"
        );
    }

    #[test]
    fn state_round_trip_resumes_bitwise() {
        let mut a = XorShiftRng::new(77);
        // Advance through an odd number of normal draws so the Box–Muller
        // spare is populated — the snapshot must carry it.
        for _ in 0..7 {
            a.normal();
        }
        let snap = a.save_state();
        assert!(snap.spare_normal.is_some());
        let mut b = XorShiftRng::from_state(snap);
        let expected: Vec<f32> = (0..32).map(|_| a.normal()).collect();
        let resumed: Vec<f32> = (0..32).map(|_| b.normal()).collect();
        assert_eq!(expected, resumed);
    }

    #[test]
    fn restore_state_overwrites_in_place() {
        let mut a = XorShiftRng::new(78);
        let snap = a.save_state();
        let first = a.next_u64();
        a.restore_state(snap);
        assert_eq!(a.next_u64(), first);
    }

    #[test]
    fn fork_produces_distinct_streams() {
        let mut parent = XorShiftRng::new(10);
        let mut c1 = parent.fork(0);
        let mut c2 = parent.fork(1);
        assert_ne!(c1.next_u64(), c2.next_u64());
    }
}
