//! Persistent GEMM autotune cache.
//!
//! The dispatch selector ([`crate::dispatch`]) files its measured
//! routine choices here, keyed by shape-class string. Two environment
//! variables control the cache:
//!
//! * `XBAR_TUNE_CACHE=<path>` — persist choices to `<path>` so the first
//!   `bench_kernels` or sweep run on a host tunes and every later run
//!   dispatches warm. Unset, tuning still happens but stays in-memory
//!   for the process.
//! * `XBAR_AUTOTUNE=0` — disable measurement entirely; the selector uses
//!   its static heuristic table.
//!
//! The file is canonical JSON (`{"version":1,"entries":[...]}`, entries
//! sorted by key — see [`crate::json`]) written with the same atomic
//! temp + fsync + rename scheme as the checkpoint writer in
//! `xbar-nn::persist`, so a cache file is never observed half-written. A
//! corrupt, truncated or wrong-version file yields a typed [`TuneError`]
//! — never a panic — and the selector falls back to the static table
//! (the broken file is left in place for inspection, not overwritten).

use crate::json::Json;
use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, OnceLock};

/// Cache file format version.
pub const CACHE_VERSION: f64 = 1.0;

/// Why a tune-cache file could not be used.
#[derive(Debug, Clone)]
pub enum TuneError {
    /// Filesystem operation failed.
    Io {
        /// The path involved.
        path: PathBuf,
        /// The operation that failed (`"read"`, `"write"`, `"rename"`).
        op: &'static str,
        /// The OS error text.
        detail: String,
    },
    /// The file is not valid JSON (e.g. truncated mid-write by a crash
    /// of a non-atomic writer, or hand-edited badly).
    Parse {
        /// The path involved.
        path: PathBuf,
        /// First syntax error from the JSON parser.
        detail: String,
    },
    /// The file's `version` field is one this build does not understand.
    Version {
        /// The path involved.
        path: PathBuf,
        /// The version value found (`None` when missing/non-numeric).
        found: Option<f64>,
    },
    /// The JSON parsed but does not have the expected shape.
    Schema {
        /// The path involved.
        path: PathBuf,
        /// What was wrong.
        detail: String,
    },
}

impl fmt::Display for TuneError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TuneError::Io { path, op, detail } => {
                write!(f, "tune cache {op} failed for {}: {detail}", path.display())
            }
            TuneError::Parse { path, detail } => {
                write!(
                    f,
                    "tune cache {} is not valid JSON: {detail}",
                    path.display()
                )
            }
            TuneError::Version { path, found } => match found {
                Some(v) => write!(
                    f,
                    "tune cache {} has unsupported version {v} (expected {CACHE_VERSION})",
                    path.display()
                ),
                None => write!(
                    f,
                    "tune cache {} is missing a numeric version field",
                    path.display()
                ),
            },
            TuneError::Schema { path, detail } => {
                write!(f, "tune cache {} has bad schema: {detail}", path.display())
            }
        }
    }
}

impl std::error::Error for TuneError {}

/// One cached selection.
#[derive(Debug, Clone)]
pub(crate) struct CacheEntry {
    /// Registry name of the winning routine.
    pub routine: String,
    /// Wall-clock cost of the measurement pass that produced it (ms).
    pub tune_ms: f64,
    /// True when loaded from the persistent file (warm), false when
    /// measured by this process (cold).
    pub from_file: bool,
}

struct State {
    /// User intent (`XBAR_AUTOTUNE != "0"`).
    enabled: bool,
    /// Set when the cache file failed to load: measurement is suspended
    /// and the selector uses its static table, leaving the broken file
    /// untouched for inspection.
    broken: bool,
    path: Option<PathBuf>,
    entries: HashMap<String, CacheEntry>,
    load_error: Option<TuneError>,
    save_error: Option<TuneError>,
}

fn state() -> &'static Mutex<State> {
    static STATE: OnceLock<Mutex<State>> = OnceLock::new();
    STATE.get_or_init(|| {
        let enabled = !std::env::var("XBAR_AUTOTUNE").is_ok_and(|v| v.trim() == "0");
        let path = std::env::var("XBAR_TUNE_CACHE")
            .ok()
            .filter(|p| !p.trim().is_empty())
            .map(PathBuf::from);
        let mut st = State {
            enabled,
            broken: false,
            path,
            entries: HashMap::new(),
            load_error: None,
            save_error: None,
        };
        if let Some(p) = st.path.clone() {
            match load(&p) {
                Ok(entries) => st.entries = entries,
                Err(e) => {
                    st.broken = true;
                    st.load_error = Some(e);
                }
            }
        }
        Mutex::new(st)
    })
}

fn lock() -> std::sync::MutexGuard<'static, State> {
    state().lock().unwrap_or_else(|e| e.into_inner())
}

/// Whether the user left autotuning enabled (`XBAR_AUTOTUNE != "0"`).
pub fn autotune_enabled() -> bool {
    lock().enabled
}

/// Whether the selector may measure/consult the cache: enabled and the
/// cache file (if any) loaded cleanly.
pub(crate) fn active() -> bool {
    let st = lock();
    st.enabled && !st.broken
}

/// The configured persistent cache path, if any.
pub fn cache_path() -> Option<PathBuf> {
    lock().path.clone()
}

/// The error that made the cache file unusable at load time, if any.
pub fn load_error() -> Option<TuneError> {
    lock().load_error.clone()
}

/// The most recent persistence failure, if any (selections still apply
/// in-memory when saving fails).
pub fn save_error() -> Option<TuneError> {
    lock().save_error.clone()
}

/// Number of selections currently cached (file-loaded plus measured).
pub fn entry_count() -> usize {
    lock().entries.len()
}

pub(crate) fn lookup(key: &str) -> Option<CacheEntry> {
    lock().entries.get(key).cloned()
}

/// Records a measured selection and persists the cache when a path is
/// configured. Persistence failures are stashed (see [`save_error`]),
/// never panics — the in-memory entry stands regardless.
pub(crate) fn record(key: &str, routine: &'static str, tune_ms: f64) {
    let mut st = lock();
    st.entries.insert(
        key.to_string(),
        CacheEntry {
            routine: routine.to_string(),
            tune_ms,
            from_file: false,
        },
    );
    if let Some(path) = st.path.clone() {
        match save(&path, &st.entries) {
            Ok(()) => st.save_error = None,
            Err(e) => st.save_error = Some(e),
        }
    }
}

/// Swaps the cache state wholesale: new path (or none), new enabled
/// flag, entries reloaded from the file. Returns the number of entries
/// loaded. On error the state is left usable but `broken` — the selector
/// falls back to its static table and the file is not overwritten.
///
/// This is the test hook behind the warm/cold and corrupt-cache
/// integration suites; production code configures via environment
/// variables instead.
pub fn reload_from(path: Option<&Path>, enabled: bool) -> Result<usize, TuneError> {
    let mut st = lock();
    st.enabled = enabled;
    st.path = path.map(Path::to_path_buf);
    st.entries.clear();
    st.load_error = None;
    st.save_error = None;
    st.broken = false;
    let Some(p) = st.path.clone() else {
        return Ok(0);
    };
    match load(&p) {
        Ok(entries) => {
            let count = entries.len();
            st.entries = entries;
            Ok(count)
        }
        Err(e) => {
            st.broken = true;
            st.load_error = Some(e.clone());
            Err(e)
        }
    }
}

fn schema_err(path: &Path, detail: &str) -> TuneError {
    TuneError::Schema {
        path: path.to_path_buf(),
        detail: detail.to_string(),
    }
}

/// Loads a cache file. A missing file is a clean empty cache (cold
/// start); everything else unparseable is a typed error.
fn load(path: &Path) -> Result<HashMap<String, CacheEntry>, TuneError> {
    let text = match fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(HashMap::new()),
        Err(e) => {
            return Err(TuneError::Io {
                path: path.to_path_buf(),
                op: "read",
                detail: e.to_string(),
            })
        }
    };
    let doc = Json::parse(&text).map_err(|detail| TuneError::Parse {
        path: path.to_path_buf(),
        detail,
    })?;
    let version = doc.get("version").and_then(Json::as_f64);
    if version != Some(CACHE_VERSION) {
        return Err(TuneError::Version {
            path: path.to_path_buf(),
            found: version,
        });
    }
    let items = doc
        .get("entries")
        .and_then(Json::as_arr)
        .ok_or_else(|| schema_err(path, "missing entries array"))?;
    let mut entries = HashMap::new();
    for item in items {
        let key = item
            .get("key")
            .and_then(Json::as_str)
            .ok_or_else(|| schema_err(path, "entry missing string key"))?;
        let routine = item
            .get("routine")
            .and_then(Json::as_str)
            .ok_or_else(|| schema_err(path, "entry missing string routine"))?;
        let tune_ms = item
            .get("tune_ms")
            .and_then(Json::as_f64)
            .ok_or_else(|| schema_err(path, "entry missing numeric tune_ms"))?;
        entries.insert(
            key.to_string(),
            CacheEntry {
                routine: routine.to_string(),
                tune_ms,
                from_file: true,
            },
        );
    }
    Ok(entries)
}

/// Writes the cache atomically: canonical JSON (entries sorted by key)
/// to a same-directory temp file, fsync, rename over the target —
/// the same scheme the checkpoint writer uses, so an interrupted save
/// never leaves a torn file.
fn save(path: &Path, entries: &HashMap<String, CacheEntry>) -> Result<(), TuneError> {
    let mut keys: Vec<&String> = entries.keys().collect();
    keys.sort();
    let items = keys
        .into_iter()
        .map(|k| {
            let e = &entries[k];
            Json::Obj(vec![
                ("key".to_string(), Json::Str(k.clone())),
                ("routine".to_string(), Json::Str(e.routine.clone())),
                ("tune_ms".to_string(), Json::Num(e.tune_ms)),
            ])
        })
        .collect();
    let doc = Json::Obj(vec![
        ("version".to_string(), Json::Num(CACHE_VERSION)),
        ("entries".to_string(), Json::Arr(items)),
    ]);
    let mut body = doc.render();
    body.push('\n');

    let io_err = |op: &'static str| {
        let path = path.to_path_buf();
        move |e: std::io::Error| TuneError::Io {
            path,
            op,
            detail: e.to_string(),
        }
    };
    let dir = path.parent().filter(|d| !d.as_os_str().is_empty());
    let file_name = path
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("tune.json");
    let tmp = match dir {
        Some(d) => d.join(format!(".{file_name}.tmp")),
        None => PathBuf::from(format!(".{file_name}.tmp")),
    };
    let mut f = fs::File::create(&tmp).map_err(io_err("create"))?;
    f.write_all(body.as_bytes()).map_err(io_err("write"))?;
    f.sync_all().map_err(io_err("fsync"))?;
    drop(f);
    fs::rename(&tmp, path).map_err(io_err("rename"))?;
    // Best effort: make the rename itself durable.
    if let Some(d) = dir {
        if let Ok(dh) = fs::File::open(d) {
            let _ = dh.sync_all();
        }
    }
    Ok(())
}

#[cfg(test)]
pub(crate) mod test_support {
    //! Shared lock serializing tests that mutate the global tune state.
    use std::sync::Mutex;

    /// Tests touching [`super::reload_from`] must hold this.
    pub static TUNE_TEST_LOCK: Mutex<()> = Mutex::new(());

    /// Grabs the lock even if a prior test panicked while holding it.
    pub fn guard() -> std::sync::MutexGuard<'static, ()> {
        TUNE_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// A unique temp-file path for tune-cache tests.
    pub fn temp_cache(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("xbar-tune-{}-{tag}.json", std::process::id()))
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::{guard, temp_cache};
    use super::*;

    fn entry(routine: &str, ms: f64) -> CacheEntry {
        CacheEntry {
            routine: routine.to_string(),
            tune_ms: ms,
            from_file: false,
        }
    }

    #[test]
    fn save_then_load_round_trips_sorted() {
        let path = temp_cache("roundtrip");
        let mut entries = HashMap::new();
        entries.insert(
            "nn:m256:k256:n256:t4:simd".to_string(),
            entry("packed_wide", 1.5),
        );
        entries.insert(
            "tn:m128:k64:n32:t4:simd".to_string(),
            entry("tn_packed", 0.25),
        );
        save(&path, &entries).unwrap();
        let text = fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("{\"version\":1,\"entries\":["));
        // Sorted by key: nn before tn.
        assert!(text.find("nn:m256").unwrap() < text.find("tn:m128").unwrap());
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.len(), 2);
        let e = &loaded["tn:m128:k64:n32:t4:simd"];
        assert_eq!(e.routine, "tn_packed");
        assert_eq!(e.tune_ms, 0.25);
        assert!(e.from_file);
        // Saving the loaded map reproduces the file byte for byte.
        let again = temp_cache("roundtrip2");
        save(&again, &loaded).unwrap();
        assert_eq!(fs::read_to_string(&again).unwrap(), text);
        let _ = fs::remove_file(&path);
        let _ = fs::remove_file(&again);
    }

    #[test]
    fn missing_file_is_clean_cold_start() {
        let path = temp_cache("missing");
        let _ = fs::remove_file(&path);
        assert!(load(&path).unwrap().is_empty());
    }

    #[test]
    fn corrupt_truncated_and_wrong_version_are_typed_errors() {
        let path = temp_cache("corrupt");
        fs::write(&path, "{\"version\":1,\"entr").unwrap();
        assert!(matches!(load(&path), Err(TuneError::Parse { .. })));
        fs::write(&path, "{\"version\":99,\"entries\":[]}").unwrap();
        assert!(matches!(
            load(&path),
            Err(TuneError::Version { found: Some(v), .. }) if v == 99.0
        ));
        fs::write(&path, "{\"version\":1}").unwrap();
        assert!(matches!(load(&path), Err(TuneError::Schema { .. })));
        fs::write(&path, "{\"version\":1,\"entries\":[{\"key\":\"x\"}]}").unwrap();
        assert!(matches!(load(&path), Err(TuneError::Schema { .. })));
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn reload_from_broken_file_falls_back_without_clobbering() {
        let _g = guard();
        let path = temp_cache("broken");
        fs::write(&path, "not json at all").unwrap();
        let before = fs::read_to_string(&path).unwrap();
        let err = reload_from(Some(&path), true).unwrap_err();
        assert!(matches!(err, TuneError::Parse { .. }));
        assert!(!active(), "broken cache must suspend tuning");
        assert!(load_error().is_some());
        // record() must not overwrite the broken file (the selector never
        // measures while broken, but guard the invariant directly too).
        assert_eq!(fs::read_to_string(&path).unwrap(), before);
        // Restore pristine global state for other tests.
        reload_from(None, true).unwrap();
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn record_persists_and_reload_marks_from_file() {
        let _g = guard();
        let path = temp_cache("record");
        let _ = fs::remove_file(&path);
        reload_from(Some(&path), true).unwrap();
        record("nn:m64:k64:n64:t1:simd", "packed_wide", 2.0);
        assert!(save_error().is_none());
        assert_eq!(entry_count(), 1);
        assert!(!lookup("nn:m64:k64:n64:t1:simd").unwrap().from_file);
        let n = reload_from(Some(&path), true).unwrap();
        assert_eq!(n, 1);
        let e = lookup("nn:m64:k64:n64:t1:simd").unwrap();
        assert!(e.from_file);
        assert_eq!(e.routine, "packed_wide");
        reload_from(None, true).unwrap();
        let _ = fs::remove_file(&path);
    }
}
