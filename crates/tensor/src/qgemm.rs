//! Fixed-point GEMM kernels: `u8 × i8 → i32`, NT layout.
//!
//! These are the integer counterparts of the f32 engine in
//! [`crate::gemm`]: `out[i·n + j] = Σ_p a[i·k + p] · b[j·k + p]` with `a`
//! an `m × k` row-major matrix of *unsigned* codes and `b` an `n × k`
//! row-major matrix of *signed* codes. The NT (row-dot-row) layout is the
//! one every quantized consumer produces naturally: activations ×
//! weight-rows in `xbar-nn`, DAC codes × device-column conductance states
//! in `xbar-core`.
//!
//! **Operand contract.** Every element of `a` must be ≤ [`QGEMM_A_MAX`]
//! (127). With that bound the AVX2 micro-kernel's `maddubs` step — which
//! sums *pairs* of `u8 × i8` products into saturating i16 lanes — can
//! never saturate: `2 · 127 · 128 = 32512 < 32768`. The quantizers in
//! [`crate::quant`] produce ≤ 7-bit unsigned activation codes precisely
//! to keep this bound; the kernels `debug_assert` it.
//!
//! **Determinism.** All arithmetic is exact integer arithmetic, so every
//! kernel — scalar or SIMD, any blocking, any thread count — produces
//! bitwise-identical output. Routine selection (see the `q_*` half of
//! [`crate::dispatch`]) is therefore free to pick purely on speed, and
//! the serial ≡ parallel contract of the f32 path holds trivially here.
//!
//! **Accumulator width.** `|acc| ≤ k · 127 · 128`, so i32 is exact for
//! `k ≤ 2^31 / 2^14 = 2^17`. [`QGEMM_MAX_K`] names the bound; callers
//! stay far below it (crossbar tiles are ≤ a few hundred rows).

use crate::backend;

/// Largest value allowed in the unsigned `a` operand (7-bit codes).
pub const QGEMM_A_MAX: u8 = 127;

/// Largest depth for which the i32 accumulator is exact under the
/// operand contract.
pub const QGEMM_MAX_K: usize = 1 << 17;

/// Row-chunk granularity for the parallel integer routines. A fixed
/// constant (not tuned): chunk boundaries cannot change results here,
/// but keeping them shape-only preserves the backend's reproducibility
/// idiom.
pub(crate) const QMC: usize = 64;

/// Quantized NT GEMM entry point: resolves a routine through the
/// quantized half of the dispatch registry and runs it.
///
/// # Panics
///
/// Panics if slice lengths do not match `m × k` / `n × k` / `m × n`, or
/// if `k` exceeds [`QGEMM_MAX_K`]. Debug builds also assert the
/// [`QGEMM_A_MAX`] operand bound.
pub fn qgemm_nt(a: &[u8], b: &[i8], out: &mut [i32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "qgemm_nt: a length");
    assert_eq!(b.len(), n * k, "qgemm_nt: b length");
    assert_eq!(out.len(), m * n, "qgemm_nt: out length");
    assert!(k <= QGEMM_MAX_K, "qgemm_nt: k {k} exceeds exact-i32 bound");
    debug_assert!(
        a.iter().all(|&v| v <= QGEMM_A_MAX),
        "qgemm_nt: unsigned operand exceeds 7-bit code bound"
    );
    if m == 0 || n == 0 {
        return;
    }
    crate::dispatch::q_dispatch(a, b, out, m, k, n);
}

#[inline]
fn dot_u8i8(a: &[u8], b: &[i8]) -> i32 {
    debug_assert_eq!(a.len(), b.len());
    let mut s = 0i32;
    for (&x, &y) in a.iter().zip(b) {
        s += x as i32 * y as i32;
    }
    s
}

/// Serial streaming kernel: one dot product per output element. The
/// small-class routine, and the reference every other kernel must match
/// bitwise (they all do, exactly — integer arithmetic).
pub(crate) fn qk_rowdot(a: &[u8], b: &[i8], out: &mut [i32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        let ar = &a[i * k..][..k];
        let or = &mut out[i * n..][..n];
        for (j, o) in or.iter_mut().enumerate() {
            *o = dot_u8i8(ar, &b[j * k..][..k]);
        }
    }
}

/// Runs `body(first_row, rows_out)` over [`QMC`]-row chunks of the
/// output, in parallel. `rows_out` is the chunk's `rows × n` slice.
fn par_row_chunks(out: &mut [i32], n: usize, body: impl Fn(usize, &mut [i32]) + Sync) {
    backend::parallel_chunks_mut(out, QMC * n, |ci, chunk| body(ci * QMC, chunk));
}

/// Scalar register-blocked kernel, parallel over row chunks: 2 rows × 4
/// columns per inner tile so each loaded `a` row feeds four dots and each
/// `b` row two — the same reuse structure the SIMD kernel uses, in plain
/// integer scalar code the autovectorizer handles well.
pub(crate) fn qk_blocked(a: &[u8], b: &[i8], out: &mut [i32], _m: usize, k: usize, n: usize) {
    par_row_chunks(out, n, |i0, chunk| {
        let rows = chunk.len() / n;
        let mut i = 0;
        while i < rows {
            let ir = (rows - i).min(2);
            let mut j = 0;
            while j < n {
                let jr = (n - j).min(4);
                let mut acc = [[0i32; 4]; 2];
                for p in 0..k {
                    for (r, accr) in acc.iter_mut().enumerate().take(ir) {
                        let av = a[(i0 + i + r) * k + p] as i32;
                        for (c, av_acc) in accr.iter_mut().enumerate().take(jr) {
                            *av_acc += av * b[(j + c) * k + p] as i32;
                        }
                    }
                }
                for r in 0..ir {
                    for c in 0..jr {
                        chunk[(i + r) * n + (j + c)] = acc[r][c];
                    }
                }
                j += jr;
            }
            i += ir;
        }
    });
}

/// AVX2 `maddubs` kernel, parallel over row chunks. Only reachable when
/// [`crate::gemm::simd_active`] is true (the dispatch `supports` gate),
/// which implies AVX2 was detected at runtime.
#[cfg(target_arch = "x86_64")]
pub(crate) fn qk_maddubs(a: &[u8], b: &[i8], out: &mut [i32], _m: usize, k: usize, n: usize) {
    par_row_chunks(out, n, |i0, chunk| {
        let rows = chunk.len() / n;
        // SAFETY: `supports` gating guarantees AVX2 is available.
        unsafe { maddubs_block(a, b, chunk, i0, rows, k, n) };
    });
}

/// Computes `rows × n` output rows starting at global row `i0`.
///
/// Register tile: 2 `a` rows × 4 `b` rows, eight `ymm` accumulators.
/// Each 32-byte step of the depth loop multiplies unsigned `a` bytes by
/// signed `b` bytes (`maddubs` → i16 pairs, exact under the
/// [`QGEMM_A_MAX`] contract), widens pairs to i32 (`madd` by ones), and
/// adds — all exact, so the horizontal reduction order is free.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn maddubs_block(
    a: &[u8],
    b: &[i8],
    out: &mut [i32],
    i0: usize,
    rows: usize,
    k: usize,
    n: usize,
) {
    use std::arch::x86_64::*;

    let kv = k - k % 32;
    // Full 2×4 tiles run the fixed-bound kernel below; remainder rows and
    // columns fall back to a generic edge loop. The split matters: with
    // runtime-bounded register tiles LLVM keeps the accumulator array on
    // the stack, and the resulting spill traffic costs the kernel most of
    // its integer-throughput advantage over the f32 path.
    let mut i = 0;
    while i + 2 <= rows {
        let mut j = 0;
        while j + 4 <= n {
            tile_2x4(a, b, out, i0, i, j, k, kv, n);
            j += 4;
        }
        edge_tile(a, b, out, i0, i, 2, j, n - j, k, kv, n);
        i += 2;
    }
    if i < rows {
        edge_tile(a, b, out, i0, i, rows - i, 0, n, k, kv, n);
    }

    #[inline]
    unsafe fn hsum_epi32(v: __m256i) -> i32 {
        let lo = _mm256_castsi256_si128(v);
        let hi = _mm256_extracti128_si256(v, 1);
        let s = _mm_add_epi32(lo, hi);
        let s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0b01_00_11_10));
        let s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0b00_00_00_01));
        _mm_cvtsi128_si32(s)
    }

    /// One full register tile: 2 `a` rows × 4 `b` rows, eight *named*
    /// `ymm` accumulators (plus two `a` vectors, one `b` vector and the
    /// ones constant — 12 of the 16 architectural registers, no spills).
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2")]
    unsafe fn tile_2x4(
        a: &[u8],
        b: &[i8],
        out: &mut [i32],
        i0: usize,
        i: usize,
        j: usize,
        k: usize,
        kv: usize,
        n: usize,
    ) {
        let ones = _mm256_set1_epi16(1);
        let a0 = a.as_ptr().add((i0 + i) * k);
        let a1 = a.as_ptr().add((i0 + i + 1) * k);
        let b0 = b.as_ptr().add(j * k);
        let b1 = b.as_ptr().add((j + 1) * k);
        let b2 = b.as_ptr().add((j + 2) * k);
        let b3 = b.as_ptr().add((j + 3) * k);
        let (mut c00, mut c01, mut c02, mut c03) = (
            _mm256_setzero_si256(),
            _mm256_setzero_si256(),
            _mm256_setzero_si256(),
            _mm256_setzero_si256(),
        );
        let (mut c10, mut c11, mut c12, mut c13) = (
            _mm256_setzero_si256(),
            _mm256_setzero_si256(),
            _mm256_setzero_si256(),
            _mm256_setzero_si256(),
        );
        let mut p = 0;
        while p < kv {
            let av0 = _mm256_loadu_si256(a0.add(p) as *const __m256i);
            let av1 = _mm256_loadu_si256(a1.add(p) as *const __m256i);
            let bv = _mm256_loadu_si256(b0.add(p) as *const __m256i);
            c00 = _mm256_add_epi32(c00, _mm256_madd_epi16(_mm256_maddubs_epi16(av0, bv), ones));
            c10 = _mm256_add_epi32(c10, _mm256_madd_epi16(_mm256_maddubs_epi16(av1, bv), ones));
            let bv = _mm256_loadu_si256(b1.add(p) as *const __m256i);
            c01 = _mm256_add_epi32(c01, _mm256_madd_epi16(_mm256_maddubs_epi16(av0, bv), ones));
            c11 = _mm256_add_epi32(c11, _mm256_madd_epi16(_mm256_maddubs_epi16(av1, bv), ones));
            let bv = _mm256_loadu_si256(b2.add(p) as *const __m256i);
            c02 = _mm256_add_epi32(c02, _mm256_madd_epi16(_mm256_maddubs_epi16(av0, bv), ones));
            c12 = _mm256_add_epi32(c12, _mm256_madd_epi16(_mm256_maddubs_epi16(av1, bv), ones));
            let bv = _mm256_loadu_si256(b3.add(p) as *const __m256i);
            c03 = _mm256_add_epi32(c03, _mm256_madd_epi16(_mm256_maddubs_epi16(av0, bv), ones));
            c13 = _mm256_add_epi32(c13, _mm256_madd_epi16(_mm256_maddubs_epi16(av1, bv), ones));
            p += 32;
        }
        let sums = [
            [
                hsum_epi32(c00),
                hsum_epi32(c01),
                hsum_epi32(c02),
                hsum_epi32(c03),
            ],
            [
                hsum_epi32(c10),
                hsum_epi32(c11),
                hsum_epi32(c12),
                hsum_epi32(c13),
            ],
        ];
        for (r, row) in sums.iter().enumerate() {
            for (c, &partial) in row.iter().enumerate() {
                let mut s = partial;
                for q in kv..k {
                    s += a[(i0 + i + r) * k + q] as i32 * b[(j + c) * k + q] as i32;
                }
                out[(i + r) * n + (j + c)] = s;
            }
        }
    }

    /// Remainder rows/columns: plain vector dots, one accumulator each.
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2")]
    unsafe fn edge_tile(
        a: &[u8],
        b: &[i8],
        out: &mut [i32],
        i0: usize,
        i: usize,
        ir: usize,
        j: usize,
        jr: usize,
        k: usize,
        kv: usize,
        n: usize,
    ) {
        let ones = _mm256_set1_epi16(1);
        for r in 0..ir {
            let ar = a.as_ptr().add((i0 + i + r) * k);
            for c in 0..jr {
                let br = b.as_ptr().add((j + c) * k);
                let mut acc = _mm256_setzero_si256();
                let mut p = 0;
                while p < kv {
                    let av = _mm256_loadu_si256(ar.add(p) as *const __m256i);
                    let bv = _mm256_loadu_si256(br.add(p) as *const __m256i);
                    acc = _mm256_add_epi32(
                        acc,
                        _mm256_madd_epi16(_mm256_maddubs_epi16(av, bv), ones),
                    );
                    p += 32;
                }
                let mut s = hsum_epi32(acc);
                for q in kv..k {
                    s += a[(i0 + i + r) * k + q] as i32 * b[(j + c) * k + q] as i32;
                }
                out[(i + r) * n + (j + c)] = s;
            }
        }
    }
}

#[cfg(not(target_arch = "x86_64"))]
pub(crate) fn qk_maddubs(a: &[u8], b: &[i8], out: &mut [i32], m: usize, k: usize, n: usize) {
    qk_blocked(a, b, out, m, k, n);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(m: usize, k: usize, n: usize) -> (Vec<u8>, Vec<i8>) {
        let a: Vec<u8> = (0..m * k).map(|i| ((i * 37 + 11) % 128) as u8).collect();
        let b: Vec<i8> = (0..n * k)
            .map(|i| (((i * 53 + 7) % 256) as i32 - 128) as i8)
            .collect();
        (a, b)
    }

    #[test]
    fn all_kernels_match_rowdot_bitwise() {
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 5, 2),
            (7, 33, 9),
            (16, 64, 16),
            (13, 100, 21),
        ] {
            let (a, b) = fill(m, k, n);
            let mut reference = vec![0i32; m * n];
            qk_rowdot(&a, &b, &mut reference, m, k, n);
            let mut got = vec![0i32; m * n];
            qk_blocked(&a, &b, &mut got, m, k, n);
            assert_eq!(got, reference, "qk_blocked {m}x{k}x{n}");
            if crate::gemm::simd_active() {
                got.fill(0);
                qk_maddubs(&a, &b, &mut got, m, k, n);
                assert_eq!(got, reference, "qk_maddubs {m}x{k}x{n}");
            }
        }
    }

    #[test]
    fn maddubs_extreme_operands_do_not_saturate() {
        // The worst case of the operand contract: a = 127 against
        // b = −128 and +127. Pairs reach ±32512, inside i16.
        let k = 96;
        let a = vec![QGEMM_A_MAX; k];
        let mut b = vec![-128i8; k];
        b[k / 2..].fill(127);
        let mut reference = vec![0i32; 1];
        qk_rowdot(&a, &b, &mut reference, 1, k, 1);
        let expected: i32 = b.iter().map(|&y| 127 * y as i32).sum();
        assert_eq!(reference[0], expected);
        if crate::gemm::simd_active() {
            let mut got = vec![0i32; 1];
            qk_maddubs(&a, &b, &mut got, 1, k, 1);
            assert_eq!(got, reference);
        }
    }

    #[test]
    fn qgemm_nt_serial_parallel_bitwise() {
        let (m, k, n) = (130, 70, 40);
        let (a, b) = fill(m, k, n);
        let mut serial = vec![0i32; m * n];
        crate::backend::force_serial(true);
        qgemm_nt(&a, &b, &mut serial, m, k, n);
        crate::backend::force_serial(false);
        let mut parallel = vec![0i32; m * n];
        qgemm_nt(&a, &b, &mut parallel, m, k, n);
        assert_eq!(serial, parallel);
    }
}
