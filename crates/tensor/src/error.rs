use std::error::Error;
use std::fmt;

/// Error returned when tensor shapes are incompatible with the requested
/// operation.
///
/// Carries the operation name and the offending shapes so the failure is
/// actionable without a debugger.
///
/// # Example
///
/// ```
/// use xbar_tensor::Tensor;
///
/// let a = Tensor::zeros(&[2, 3]);
/// let b = Tensor::zeros(&[4, 4]);
/// let err = xbar_tensor::linalg::matmul(&a, &b).unwrap_err();
/// assert!(err.to_string().contains("matmul"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    op: &'static str,
    detail: String,
}

impl ShapeError {
    /// Creates a new shape error for operation `op` with a human-readable
    /// `detail` describing the mismatch.
    pub fn new(op: &'static str, detail: impl Into<String>) -> Self {
        Self {
            op,
            detail: detail.into(),
        }
    }

    /// The name of the operation that rejected the shapes.
    pub fn op(&self) -> &'static str {
        self.op
    }

    /// The human-readable mismatch description.
    pub fn detail(&self) -> &str {
        &self.detail
    }
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shape mismatch in {}: {}", self.op, self.detail)
    }
}

impl Error for ShapeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_op_and_detail() {
        let e = ShapeError::new("matmul", "inner dims 3 vs 4");
        let s = e.to_string();
        assert!(s.contains("matmul"));
        assert!(s.contains("inner dims 3 vs 4"));
        assert_eq!(e.op(), "matmul");
        assert_eq!(e.detail(), "inner dims 3 vs 4");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ShapeError>();
    }
}
