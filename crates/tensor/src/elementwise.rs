//! SIMD elementwise kernels for the training hot path.
//!
//! These cover the per-element loops that remain after GEMM is blocked:
//! the axpy-style SGD update ([`axpy`]), batch-norm normalization
//! ([`bn_normalize_train`] / [`bn_normalize_eval`]), and the softmax row
//! maximum ([`row_max`]).
//!
//! Unlike the GEMM micro-kernel, these kernels are **bit-exact** with
//! their scalar counterparts: each output element is produced by the same
//! sequence of individually rounded operations (multiply then add — no
//! FMA contraction, no reassociation of sums), so enabling them changes
//! wall-clock only, never a result. `XBAR_SIMD=0` still routes everything
//! through the scalar loops for A/B debugging.

use crate::simd_active;

/// `y[i] += a * x[i]` for all `i` — the SGD update primitive.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn axpy(y: &mut [f32], x: &[f32], a: f32) {
    assert_eq!(y.len(), x.len(), "axpy length mismatch");
    #[cfg(target_arch = "x86_64")]
    if simd_active() {
        // SAFETY: simd_active() implies AVX2 support was detected.
        unsafe { axpy_avx2(y, x, a) };
        return;
    }
    axpy_scalar(y, x, a);
}

fn axpy_scalar(y: &mut [f32], x: &[f32], a: f32) {
    for (yv, &xv) in y.iter_mut().zip(x) {
        *yv += a * xv;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn axpy_avx2(y: &mut [f32], x: &[f32], a: f32) {
    use std::arch::x86_64::*;
    let n = y.len();
    let av = _mm256_set1_ps(a);
    let mut i = 0;
    while i + 8 <= n {
        let xv = _mm256_loadu_ps(x.as_ptr().add(i));
        let yv = _mm256_loadu_ps(y.as_ptr().add(i));
        // mul then add (not fmadd): identical rounding to the scalar loop.
        let r = _mm256_add_ps(yv, _mm256_mul_ps(av, xv));
        _mm256_storeu_ps(y.as_mut_ptr().add(i), r);
        i += 8;
    }
    axpy_scalar(&mut y[i..], &x[i..], a);
}

/// Maximum element of `row` (`-inf` for an empty row) — the softmax
/// stabilizer. Order-independent for finite inputs, so the SIMD lane
/// split cannot change the result.
pub fn row_max(row: &[f32]) -> f32 {
    #[cfg(target_arch = "x86_64")]
    if simd_active() && row.len() >= 8 {
        // SAFETY: simd_active() implies AVX2 support was detected.
        return unsafe { row_max_avx2(row) };
    }
    row.iter().copied().fold(f32::NEG_INFINITY, f32::max)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn row_max_avx2(row: &[f32]) -> f32 {
    use std::arch::x86_64::*;
    let n = row.len();
    let mut mv = _mm256_loadu_ps(row.as_ptr());
    let mut i = 8;
    while i + 8 <= n {
        mv = _mm256_max_ps(mv, _mm256_loadu_ps(row.as_ptr().add(i)));
        i += 8;
    }
    let mut lanes = [0f32; 8];
    _mm256_storeu_ps(lanes.as_mut_ptr(), mv);
    let mut m = lanes.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    for &v in &row[i..] {
        m = m.max(v);
    }
    m
}

/// Batch-norm training normalization over one contiguous channel slab:
/// `xhat[i] = (x[i] - mean) * inv_std`, `y[i] = g * xhat[i] + b`.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn bn_normalize_train(
    x: &[f32],
    xhat: &mut [f32],
    y: &mut [f32],
    mean: f32,
    inv_std: f32,
    g: f32,
    b: f32,
) {
    assert_eq!(x.len(), xhat.len(), "bn_normalize_train length mismatch");
    assert_eq!(x.len(), y.len(), "bn_normalize_train length mismatch");
    #[cfg(target_arch = "x86_64")]
    if simd_active() {
        // SAFETY: simd_active() implies AVX2 support was detected.
        unsafe { bn_train_avx2(x, xhat, y, mean, inv_std, g, b) };
        return;
    }
    bn_train_scalar(x, xhat, y, mean, inv_std, g, b);
}

fn bn_train_scalar(
    x: &[f32],
    xhat: &mut [f32],
    y: &mut [f32],
    mean: f32,
    inv_std: f32,
    g: f32,
    b: f32,
) {
    for ((&xv, xh), yv) in x.iter().zip(xhat.iter_mut()).zip(y.iter_mut()) {
        let h = (xv - mean) * inv_std;
        *xh = h;
        *yv = g * h + b;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn bn_train_avx2(
    x: &[f32],
    xhat: &mut [f32],
    y: &mut [f32],
    mean: f32,
    inv_std: f32,
    g: f32,
    b: f32,
) {
    use std::arch::x86_64::*;
    let n = x.len();
    let mv = _mm256_set1_ps(mean);
    let sv = _mm256_set1_ps(inv_std);
    let gv = _mm256_set1_ps(g);
    let bv = _mm256_set1_ps(b);
    let mut i = 0;
    while i + 8 <= n {
        let xv = _mm256_loadu_ps(x.as_ptr().add(i));
        let h = _mm256_mul_ps(_mm256_sub_ps(xv, mv), sv);
        _mm256_storeu_ps(xhat.as_mut_ptr().add(i), h);
        let yv = _mm256_add_ps(_mm256_mul_ps(gv, h), bv);
        _mm256_storeu_ps(y.as_mut_ptr().add(i), yv);
        i += 8;
    }
    bn_train_scalar(&x[i..], &mut xhat[i..], &mut y[i..], mean, inv_std, g, b);
}

/// Batch-norm inference normalization over one contiguous channel slab:
/// `y[i] = g * (x[i] - mean) * inv_std + b` (evaluated in exactly that
/// association order, matching the historical scalar loop).
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn bn_normalize_eval(x: &[f32], y: &mut [f32], mean: f32, inv_std: f32, g: f32, b: f32) {
    assert_eq!(x.len(), y.len(), "bn_normalize_eval length mismatch");
    #[cfg(target_arch = "x86_64")]
    if simd_active() {
        // SAFETY: simd_active() implies AVX2 support was detected.
        unsafe { bn_eval_avx2(x, y, mean, inv_std, g, b) };
        return;
    }
    bn_eval_scalar(x, y, mean, inv_std, g, b);
}

fn bn_eval_scalar(x: &[f32], y: &mut [f32], mean: f32, inv_std: f32, g: f32, b: f32) {
    for (&xv, yv) in x.iter().zip(y.iter_mut()) {
        *yv = g * (xv - mean) * inv_std + b;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn bn_eval_avx2(x: &[f32], y: &mut [f32], mean: f32, inv_std: f32, g: f32, b: f32) {
    use std::arch::x86_64::*;
    let n = x.len();
    let mv = _mm256_set1_ps(mean);
    let sv = _mm256_set1_ps(inv_std);
    let gv = _mm256_set1_ps(g);
    let bv = _mm256_set1_ps(b);
    let mut i = 0;
    while i + 8 <= n {
        let xv = _mm256_loadu_ps(x.as_ptr().add(i));
        let t = _mm256_mul_ps(_mm256_mul_ps(gv, _mm256_sub_ps(xv, mv)), sv);
        _mm256_storeu_ps(y.as_mut_ptr().add(i), _mm256_add_ps(t, bv));
        i += 8;
    }
    bn_eval_scalar(&x[i..], &mut y[i..], mean, inv_std, g, b);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::XorShiftRng;

    fn rand_vec(n: usize, seed: u64) -> Vec<f32> {
        let mut r = XorShiftRng::new(seed);
        (0..n).map(|_| r.normal_with(0.0, 2.0)).collect()
    }

    #[test]
    fn axpy_matches_scalar_bitwise() {
        for n in [0usize, 1, 7, 8, 9, 64, 100] {
            let x = rand_vec(n, 1 + n as u64);
            let mut y = rand_vec(n, 100 + n as u64);
            let mut y_ref = y.clone();
            axpy(&mut y, &x, -0.37);
            axpy_scalar(&mut y_ref, &x, -0.37);
            for (a, b) in y.iter().zip(&y_ref) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn row_max_matches_fold() {
        for n in [0usize, 1, 7, 8, 9, 33, 100] {
            let x = rand_vec(n, 7 + n as u64);
            let expected = x.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            assert_eq!(row_max(&x).to_bits(), expected.to_bits(), "n={n}");
        }
    }

    #[test]
    fn bn_train_matches_scalar_bitwise() {
        for n in [1usize, 8, 13, 64, 99] {
            let x = rand_vec(n, 21 + n as u64);
            let (mut xh, mut y) = (vec![0.0; n], vec![0.0; n]);
            let (mut xh_ref, mut y_ref) = (vec![0.0; n], vec![0.0; n]);
            bn_normalize_train(&x, &mut xh, &mut y, 0.31, 1.7, 0.9, -0.2);
            bn_train_scalar(&x, &mut xh_ref, &mut y_ref, 0.31, 1.7, 0.9, -0.2);
            for (a, b) in xh.iter().chain(&y).zip(xh_ref.iter().chain(&y_ref)) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn bn_eval_matches_scalar_bitwise() {
        for n in [1usize, 8, 13, 64, 99] {
            let x = rand_vec(n, 42 + n as u64);
            let mut y = vec![0.0; n];
            let mut y_ref = vec![0.0; n];
            bn_normalize_eval(&x, &mut y, -0.11, 0.8, 1.3, 0.05);
            bn_eval_scalar(&x, &mut y_ref, -0.11, 0.8, 1.3, 0.05);
            for (a, b) in y.iter().zip(&y_ref) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }
}
