use crate::error::ShapeError;
use crate::rng::XorShiftRng;
use crate::{elementwise, scratch};

/// An owned, row-major, N-dimensional `f32` array.
///
/// `Tensor` is the single data type flowing through the whole workspace:
/// weight matrices, activations, gradients, conductance matrices, and
/// dataset batches. It is deliberately simple — owned storage, row-major
/// layout, shape-checked operations — because the simulation workloads here
/// are small enough that views/strides would add complexity without paying
/// for themselves.
///
/// # Example
///
/// ```
/// use xbar_tensor::Tensor;
///
/// # fn main() -> Result<(), xbar_tensor::ShapeError> {
/// let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3])?;
/// assert_eq!(t.at(&[1, 2]), 6.0);
/// assert_eq!(t.sum(), 21.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Clone for Tensor {
    /// Pooled deep copy: draws the destination buffer from the
    /// thread-local [`crate::scratch`] pool when a same-size buffer is
    /// parked, so steady-state clones (weight snapshots, layer caches,
    /// replica broadcasts) skip the allocator just like
    /// [`Tensor::zeros`] does.
    fn clone(&self) -> Self {
        Self {
            shape: self.shape.clone(),
            data: scratch::take_copied(&self.data),
        }
    }
}

impl Tensor {
    /// Creates a tensor of zeros with the given shape.
    ///
    /// Draws the backing buffer from the thread-local [`crate::scratch`]
    /// pool when a previously dropped tensor of the same size is
    /// available, so steady-state loops (training steps, sweep cells)
    /// stop hitting the allocator after their first iteration.
    pub fn zeros(shape: &[usize]) -> Self {
        Self::full(shape, 0.0)
    }

    /// Creates a tensor of ones with the given shape.
    pub fn ones(shape: &[usize]) -> Self {
        Self::full(shape, 1.0)
    }

    /// Creates a tensor filled with `value` (pooled, see [`Tensor::zeros`]).
    pub fn full(shape: &[usize], value: f32) -> Self {
        Self {
            shape: shape.to_vec(),
            data: scratch::take_filled(shape.iter().product(), value),
        }
    }

    /// Creates the `n`×`n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Self::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Wraps an existing buffer as a tensor.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `data.len()` does not equal the product of
    /// `shape`.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Result<Self, ShapeError> {
        let expected: usize = shape.iter().product();
        if data.len() != expected {
            return Err(ShapeError::new(
                "from_vec",
                format!("buffer length {} != shape product {expected}", data.len()),
            ));
        }
        Ok(Self {
            shape: shape.to_vec(),
            data,
        })
    }

    /// Creates a tensor with elements drawn from `f(index)`.
    pub fn from_fn(shape: &[usize], mut f: impl FnMut(usize) -> f32) -> Self {
        let n: usize = shape.iter().product();
        Self {
            shape: shape.to_vec(),
            data: (0..n).map(&mut f).collect(),
        }
    }

    /// Creates a tensor with i.i.d. uniform entries in `[lo, hi)`.
    pub fn rand_uniform(shape: &[usize], lo: f32, hi: f32, rng: &mut XorShiftRng) -> Self {
        Self::from_fn(shape, |_| rng.uniform(lo, hi))
    }

    /// Creates a tensor with i.i.d. normal entries.
    pub fn rand_normal(shape: &[usize], mean: f32, std_dev: f32, rng: &mut XorShiftRng) -> Self {
        Self::from_fn(shape, |_| rng.normal_with(mean, std_dev))
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of dimensions.
    pub fn ndim(&self) -> usize {
        self.shape.len()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the flat row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the flat row-major data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its flat data buffer.
    pub fn into_vec(mut self) -> Vec<f32> {
        std::mem::take(&mut self.data)
    }

    /// Flat row-major offset of a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if `index` has the wrong rank or is out of bounds
    /// (debug-checked per dimension).
    fn offset(&self, index: &[usize]) -> usize {
        debug_assert_eq!(index.len(), self.shape.len(), "index rank mismatch");
        let mut off = 0;
        for (d, (&i, &s)) in index.iter().zip(&self.shape).enumerate() {
            debug_assert!(i < s, "index {i} out of bounds for dim {d} of size {s}");
            off = off * s + i;
        }
        off
    }

    /// Element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank does not match [`Tensor::ndim`].
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.offset(index)]
    }

    /// Mutable element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank does not match [`Tensor::ndim`].
    pub fn at_mut(&mut self, index: &[usize]) -> &mut f32 {
        let off = self.offset(index);
        &mut self.data[off]
    }

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the element counts differ.
    pub fn reshape(&self, shape: &[usize]) -> Result<Self, ShapeError> {
        let expected: usize = shape.iter().product();
        if expected != self.data.len() {
            return Err(ShapeError::new(
                "reshape",
                format!(
                    "cannot reshape {:?} ({} elems) to {:?} ({expected} elems)",
                    self.shape,
                    self.data.len(),
                    shape
                ),
            ));
        }
        Ok(Self {
            shape: shape.to_vec(),
            data: self.data.clone(),
        })
    }

    /// Transposes a 2-D tensor.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the tensor is not 2-D.
    pub fn transpose(&self) -> Result<Self, ShapeError> {
        if self.ndim() != 2 {
            return Err(ShapeError::new(
                "transpose",
                format!("expected 2-D tensor, got {:?}", self.shape),
            ));
        }
        let (r, c) = (self.shape[0], self.shape[1]);
        let mut out = Self::zeros(&[c, r]);
        for i in 0..r {
            for j in 0..c {
                out.data[j * r + i] = self.data[i * c + j];
            }
        }
        Ok(out)
    }

    /// Applies `f` elementwise, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        Self {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` elementwise in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Combines two same-shape tensors elementwise.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if shapes differ.
    pub fn zip(&self, other: &Self, f: impl Fn(f32, f32) -> f32) -> Result<Self, ShapeError> {
        self.check_same_shape("zip", other)?;
        Ok(Self {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }

    fn check_same_shape(&self, op: &'static str, other: &Self) -> Result<(), ShapeError> {
        if self.shape != other.shape {
            return Err(ShapeError::new(
                op,
                format!("shapes {:?} and {:?} differ", self.shape, other.shape),
            ));
        }
        Ok(())
    }

    /// Elementwise sum of two same-shape tensors.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if shapes differ.
    pub fn add(&self, other: &Self) -> Result<Self, ShapeError> {
        self.zip(other, |a, b| a + b)
    }

    /// Elementwise difference.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if shapes differ.
    pub fn sub(&self, other: &Self) -> Result<Self, ShapeError> {
        self.zip(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if shapes differ.
    pub fn mul(&self, other: &Self) -> Result<Self, ShapeError> {
        self.zip(other, |a, b| a * b)
    }

    /// Adds `other * scale` into `self` in place (axpy).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if shapes differ.
    pub fn add_scaled(&mut self, other: &Self, scale: f32) -> Result<(), ShapeError> {
        self.check_same_shape("add_scaled", other)?;
        elementwise::axpy(&mut self.data, &other.data, scale);
        Ok(())
    }

    /// Multiplies every element by `s`, returning a new tensor.
    pub fn scale(&self, s: f32) -> Self {
        self.map(|x| x * s)
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (`0.0` for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Minimum element (`+inf` for an empty tensor).
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Maximum element (`-inf` for an empty tensor).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Maximum absolute element (`0.0` for an empty tensor).
    pub fn abs_max(&self) -> f32 {
        self.data.iter().fold(0.0_f32, |m, &x| m.max(x.abs()))
    }

    /// Squared Frobenius norm.
    pub fn norm_sq(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum()
    }

    /// Clamps every element to `[lo, hi]` in place.
    pub fn clamp_inplace(&mut self, lo: f32, hi: f32) {
        self.map_inplace(|x| x.clamp(lo, hi));
    }

    /// Copies row `r` of a 2-D tensor into a new 1-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D or `r` is out of bounds.
    pub fn row(&self, r: usize) -> Self {
        assert_eq!(self.ndim(), 2, "row() requires a 2-D tensor");
        let cols = self.shape[1];
        assert!(r < self.shape[0], "row {r} out of bounds");
        Self {
            shape: vec![cols],
            data: self.data[r * cols..(r + 1) * cols].to_vec(),
        }
    }

    /// Copies column `c` of a 2-D tensor into a new 1-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D or `c` is out of bounds.
    pub fn col(&self, c: usize) -> Self {
        assert_eq!(self.ndim(), 2, "col() requires a 2-D tensor");
        let (rows, cols) = (self.shape[0], self.shape[1]);
        assert!(c < cols, "col {c} out of bounds");
        Self {
            shape: vec![rows],
            data: (0..rows).map(|r| self.data[r * cols + c]).collect(),
        }
    }

    /// True when every pairwise element difference is at most `tol`.
    ///
    /// Shapes must match exactly; mismatched shapes return `false`.
    pub fn all_close(&self, other: &Self, tol: f32) -> bool {
        self.shape == other.shape
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(&a, &b)| (a - b).abs() <= tol)
    }

    /// Index of the maximum element of a 1-D tensor (first on ties).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is empty.
    pub fn argmax(&self) -> usize {
        assert!(!self.data.is_empty(), "argmax of empty tensor");
        let mut best = 0;
        for (i, &x) in self.data.iter().enumerate() {
            if x > self.data[best] {
                best = i;
            }
        }
        best
    }
}

impl Default for Tensor {
    fn default() -> Self {
        Self::zeros(&[0])
    }
}

impl Drop for Tensor {
    /// Parks the data buffer in the thread-local [`crate::scratch`] pool
    /// so the next same-size [`Tensor::zeros`]/[`Tensor::full`] skips the
    /// allocator.
    fn drop(&mut self) {
        if !self.data.is_empty() {
            scratch::give(std::mem::take(&mut self.data));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_produce_expected_values() {
        assert!(Tensor::zeros(&[2, 3]).data().iter().all(|&x| x == 0.0));
        assert!(Tensor::ones(&[4]).data().iter().all(|&x| x == 1.0));
        assert!(Tensor::full(&[2, 2], 7.5).data().iter().all(|&x| x == 7.5));
        let eye = Tensor::eye(3);
        assert_eq!(eye.at(&[0, 0]), 1.0);
        assert_eq!(eye.at(&[0, 1]), 0.0);
        assert_eq!(eye.sum(), 3.0);
    }

    #[test]
    fn from_vec_rejects_bad_lengths() {
        assert!(Tensor::from_vec(vec![1.0; 5], &[2, 3]).is_err());
        assert!(Tensor::from_vec(vec![1.0; 6], &[2, 3]).is_ok());
    }

    #[test]
    fn indexing_is_row_major() {
        let t = Tensor::from_vec((0..24).map(|x| x as f32).collect(), &[2, 3, 4]).unwrap();
        assert_eq!(t.at(&[0, 0, 0]), 0.0);
        assert_eq!(t.at(&[0, 0, 3]), 3.0);
        assert_eq!(t.at(&[0, 1, 0]), 4.0);
        assert_eq!(t.at(&[1, 0, 0]), 12.0);
        assert_eq!(t.at(&[1, 2, 3]), 23.0);
    }

    #[test]
    fn at_mut_writes_through() {
        let mut t = Tensor::zeros(&[2, 2]);
        *t.at_mut(&[1, 0]) = 5.0;
        assert_eq!(t.data(), &[0.0, 0.0, 5.0, 0.0]);
    }

    #[test]
    fn reshape_checks_element_count() {
        let t = Tensor::zeros(&[2, 6]);
        assert!(t.reshape(&[3, 4]).is_ok());
        assert!(t.reshape(&[5, 2]).is_err());
    }

    #[test]
    fn transpose_round_trips() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let tt = t.transpose().unwrap();
        assert_eq!(tt.shape(), &[3, 2]);
        assert_eq!(tt.at(&[2, 1]), 6.0);
        assert_eq!(tt.transpose().unwrap(), t);
    }

    #[test]
    fn transpose_rejects_non_2d() {
        assert!(Tensor::zeros(&[2, 2, 2]).transpose().is_err());
    }

    #[test]
    fn arithmetic_matches_manual_computation() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let b = Tensor::from_vec(vec![0.5, 1.5, 2.5, 3.5], &[2, 2]).unwrap();
        assert_eq!(a.add(&b).unwrap().data(), &[1.5, 3.5, 5.5, 7.5]);
        assert_eq!(a.sub(&b).unwrap().data(), &[0.5, 0.5, 0.5, 0.5]);
        assert_eq!(a.mul(&b).unwrap().data(), &[0.5, 3.0, 7.5, 14.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn arithmetic_rejects_shape_mismatch() {
        let a = Tensor::zeros(&[2, 2]);
        let b = Tensor::zeros(&[2, 3]);
        assert!(a.add(&b).is_err());
        assert!(a.sub(&b).is_err());
        assert!(a.mul(&b).is_err());
    }

    #[test]
    fn add_scaled_is_axpy() {
        let mut a = Tensor::ones(&[3]);
        let b = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap();
        a.add_scaled(&b, -0.5).unwrap();
        assert_eq!(a.data(), &[0.5, 0.0, -0.5]);
    }

    #[test]
    fn reductions_match_manual_computation() {
        let t = Tensor::from_vec(vec![-3.0, 1.0, 2.0], &[3]).unwrap();
        assert_eq!(t.sum(), 0.0);
        assert_eq!(t.mean(), 0.0);
        assert_eq!(t.min(), -3.0);
        assert_eq!(t.max(), 2.0);
        assert_eq!(t.abs_max(), 3.0);
        assert_eq!(t.norm_sq(), 14.0);
    }

    #[test]
    fn clamp_bounds_all_elements() {
        let mut t = Tensor::from_vec(vec![-2.0, 0.5, 9.0], &[3]).unwrap();
        t.clamp_inplace(0.0, 1.0);
        assert_eq!(t.data(), &[0.0, 0.5, 1.0]);
    }

    #[test]
    fn row_and_col_extract_correctly() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        assert_eq!(t.row(1).data(), &[4.0, 5.0, 6.0]);
        assert_eq!(t.col(2).data(), &[3.0, 6.0]);
    }

    #[test]
    fn argmax_returns_first_max() {
        let t = Tensor::from_vec(vec![1.0, 5.0, 5.0, 2.0], &[4]).unwrap();
        assert_eq!(t.argmax(), 1);
    }

    #[test]
    fn all_close_tolerates_small_differences() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![1.0 + 1e-7, 2.0 - 1e-7], &[2]).unwrap();
        assert!(a.all_close(&b, 1e-6));
        assert!(!a.all_close(&b, 1e-9));
        assert!(!a.all_close(&Tensor::zeros(&[3]), 1.0));
    }

    #[test]
    fn random_tensors_are_deterministic_per_seed() {
        let mut r1 = XorShiftRng::new(11);
        let mut r2 = XorShiftRng::new(11);
        let a = Tensor::rand_normal(&[4, 4], 0.0, 1.0, &mut r1);
        let b = Tensor::rand_normal(&[4, 4], 0.0, 1.0, &mut r2);
        assert_eq!(a, b);
    }
}
