//! Matrix multiplication kernels.
//!
//! All kernels operate on 2-D [`Tensor`]s. The three matmul variants are
//! thin shape-checking wrappers over the shared cache-blocked GEMM engine
//! in `gemm` (packed panels, SIMD micro-kernel where available, row-range
//! parallelism via [`crate::backend`]); sub-threshold problems fall back
//! to simple streaming loops. All kernels honour the backend's
//! determinism contract: results are bitwise identical for any thread
//! count, including the forced-serial mode.

use crate::{backend, gemm, ShapeError, Tensor};

fn expect_2d(op: &'static str, t: &Tensor) -> Result<(usize, usize), ShapeError> {
    if t.ndim() != 2 {
        return Err(ShapeError::new(
            op,
            format!("expected 2-D operand, got shape {:?}", t.shape()),
        ));
    }
    Ok((t.shape()[0], t.shape()[1]))
}

/// Computes `C = A · B` for `A: (m, k)` and `B: (k, n)`.
///
/// # Errors
///
/// Returns [`ShapeError`] if either operand is not 2-D or the inner
/// dimensions disagree.
///
/// # Example
///
/// ```
/// use xbar_tensor::{Tensor, linalg};
///
/// # fn main() -> Result<(), xbar_tensor::ShapeError> {
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
/// let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2])?;
/// let c = linalg::matmul(&a, &b)?;
/// assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
/// # Ok(())
/// # }
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor, ShapeError> {
    let (m, ka) = expect_2d("matmul", a)?;
    let (kb, n) = expect_2d("matmul", b)?;
    if ka != kb {
        return Err(ShapeError::new(
            "matmul",
            format!("inner dims {ka} vs {kb}"),
        ));
    }
    let mut out = Tensor::zeros(&[m, n]);
    gemm::gemm(false, false, a.data(), b.data(), out.data_mut(), m, ka, n);
    Ok(out)
}

/// Computes `C = Aᵀ · B` for `A: (k, m)` and `B: (k, n)` without
/// materialising the transpose.
///
/// # Errors
///
/// Returns [`ShapeError`] if either operand is not 2-D or the shared
/// dimension disagrees.
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Result<Tensor, ShapeError> {
    let (ka, m) = expect_2d("matmul_tn", a)?;
    let (kb, n) = expect_2d("matmul_tn", b)?;
    if ka != kb {
        return Err(ShapeError::new(
            "matmul_tn",
            format!("shared dims {ka} vs {kb}"),
        ));
    }
    let mut out = Tensor::zeros(&[m, n]);
    gemm::gemm(true, false, a.data(), b.data(), out.data_mut(), m, ka, n);
    Ok(out)
}

/// Computes `C = A · Bᵀ` for `A: (m, k)` and `B: (n, k)` without
/// materialising the transpose.
///
/// # Errors
///
/// Returns [`ShapeError`] if either operand is not 2-D or the shared
/// dimension disagrees.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Result<Tensor, ShapeError> {
    let (m, ka) = expect_2d("matmul_nt", a)?;
    let (n, kb) = expect_2d("matmul_nt", b)?;
    if ka != kb {
        return Err(ShapeError::new(
            "matmul_nt",
            format!("shared dims {ka} vs {kb}"),
        ));
    }
    let mut out = Tensor::zeros(&[m, n]);
    gemm::gemm(false, true, a.data(), b.data(), out.data_mut(), m, ka, n);
    Ok(out)
}

/// Computes the matrix-vector product `y = A · x` for `A: (m, k)` and a
/// 1-D `x` of length `k`.
///
/// # Errors
///
/// Returns [`ShapeError`] if `A` is not 2-D, `x` is not 1-D, or the lengths
/// disagree.
pub fn matvec(a: &Tensor, x: &Tensor) -> Result<Tensor, ShapeError> {
    let (m, k) = expect_2d("matvec", a)?;
    if x.ndim() != 1 || x.len() != k {
        return Err(ShapeError::new(
            "matvec",
            format!(
                "vector shape {:?} incompatible with matrix (m={m}, k={k})",
                x.shape()
            ),
        ));
    }
    let mut out = Tensor::zeros(&[m]);
    let (ad, xd) = (a.data(), x.data());
    let od = out.data_mut();
    // Row-parallel with enough rows per task to amortise dispatch. The
    // per-row expression is unchanged from the original serial kernel, so
    // each output element is bitwise identical regardless of the split.
    let rows_per_task = (16 * 1024 / k.max(1)).max(1);
    backend::parallel_chunks_mut(od, rows_per_task, |ci, chunk| {
        let base = ci * rows_per_task;
        for (off, o) in chunk.iter_mut().enumerate() {
            let i = base + off;
            let arow = &ad[i * k..(i + 1) * k];
            *o = arow.iter().zip(xd).map(|(&a, &b)| a * b).sum();
        }
    });
    Ok(out)
}

/// Computes the outer product `A = x · yᵀ` of two 1-D tensors.
///
/// # Errors
///
/// Returns [`ShapeError`] if either operand is not 1-D.
pub fn outer(x: &Tensor, y: &Tensor) -> Result<Tensor, ShapeError> {
    if x.ndim() != 1 || y.ndim() != 1 {
        return Err(ShapeError::new(
            "outer",
            format!(
                "expected 1-D operands, got {:?} and {:?}",
                x.shape(),
                y.shape()
            ),
        ));
    }
    let (m, n) = (x.len(), y.len());
    let mut out = Tensor::zeros(&[m, n]);
    let od = out.data_mut();
    for (i, &xv) in x.data().iter().enumerate() {
        for (j, &yv) in y.data().iter().enumerate() {
            od[i * n + j] = xv * yv;
        }
    }
    Ok(out)
}

/// Rank of a matrix computed by Gaussian elimination with partial pivoting.
///
/// Entries with magnitude below `tol` (relative to the largest pivot
/// candidate) are treated as zero. Used by the mapping-validity checks in
/// `xbar-core` (the periphery matrix must have full row rank).
///
/// # Errors
///
/// Returns [`ShapeError`] if the operand is not 2-D.
pub fn rank(a: &Tensor, tol: f32) -> Result<usize, ShapeError> {
    let (m, n) = expect_2d("rank", a)?;
    let mut work: Vec<f64> = a.data().iter().map(|&x| x as f64).collect();
    let tol = tol as f64;
    let mut rank = 0;
    let mut row = 0;
    for col in 0..n {
        if row >= m {
            break;
        }
        // Partial pivot: largest |entry| in this column at or below `row`.
        let mut pivot = row;
        for r in row + 1..m {
            if work[r * n + col].abs() > work[pivot * n + col].abs() {
                pivot = r;
            }
        }
        if work[pivot * n + col].abs() <= tol {
            continue;
        }
        if pivot != row {
            for c in 0..n {
                work.swap(row * n + c, pivot * n + c);
            }
        }
        let pv = work[row * n + col];
        for r in row + 1..m {
            let factor = work[r * n + col] / pv;
            if factor != 0.0 {
                for c in col..n {
                    work[r * n + c] -= factor * work[row * n + c];
                }
            }
        }
        rank += 1;
        row += 1;
    }
    Ok(rank)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::XorShiftRng;

    fn naive_matmul(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.shape()[0], a.shape()[1]);
        let n = b.shape()[1];
        Tensor::from_fn(&[m, n], |idx| {
            let (i, j) = (idx / n, idx % n);
            (0..k).map(|p| a.at(&[i, p]) * b.at(&[p, j])).sum()
        })
    }

    #[test]
    fn matmul_matches_naive_reference() {
        let mut rng = XorShiftRng::new(21);
        for &(m, k, n) in &[(1, 1, 1), (2, 3, 4), (5, 5, 5), (7, 3, 11)] {
            let a = Tensor::rand_normal(&[m, k], 0.0, 1.0, &mut rng);
            let b = Tensor::rand_normal(&[k, n], 0.0, 1.0, &mut rng);
            let fast = matmul(&a, &b).unwrap();
            assert!(fast.all_close(&naive_matmul(&a, &b), 1e-4));
        }
    }

    #[test]
    fn matmul_identity_is_noop() {
        let mut rng = XorShiftRng::new(22);
        let a = Tensor::rand_normal(&[4, 4], 0.0, 1.0, &mut rng);
        assert!(matmul(&a, &Tensor::eye(4)).unwrap().all_close(&a, 1e-6));
        assert!(matmul(&Tensor::eye(4), &a).unwrap().all_close(&a, 1e-6));
    }

    #[test]
    fn matmul_rejects_mismatched_inner_dims() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        assert!(matmul(&a, &b).is_err());
    }

    #[test]
    fn matmul_rejects_non_2d() {
        let a = Tensor::zeros(&[2, 3, 4]);
        let b = Tensor::zeros(&[4, 2]);
        assert!(matmul(&a, &b).is_err());
    }

    #[test]
    fn matmul_tn_equals_explicit_transpose() {
        let mut rng = XorShiftRng::new(23);
        let a = Tensor::rand_normal(&[6, 3], 0.0, 1.0, &mut rng);
        let b = Tensor::rand_normal(&[6, 5], 0.0, 1.0, &mut rng);
        let expected = matmul(&a.transpose().unwrap(), &b).unwrap();
        assert!(matmul_tn(&a, &b).unwrap().all_close(&expected, 1e-4));
    }

    #[test]
    fn matmul_nt_equals_explicit_transpose() {
        let mut rng = XorShiftRng::new(24);
        let a = Tensor::rand_normal(&[4, 7], 0.0, 1.0, &mut rng);
        let b = Tensor::rand_normal(&[5, 7], 0.0, 1.0, &mut rng);
        let expected = matmul(&a, &b.transpose().unwrap()).unwrap();
        assert!(matmul_nt(&a, &b).unwrap().all_close(&expected, 1e-4));
    }

    #[test]
    fn matvec_matches_matmul_with_column() {
        let mut rng = XorShiftRng::new(25);
        let a = Tensor::rand_normal(&[5, 3], 0.0, 1.0, &mut rng);
        let x = Tensor::rand_normal(&[3], 0.0, 1.0, &mut rng);
        let xc = x.reshape(&[3, 1]).unwrap();
        let expected = matmul(&a, &xc).unwrap();
        let got = matvec(&a, &x).unwrap();
        assert!(got.reshape(&[5, 1]).unwrap().all_close(&expected, 1e-5));
    }

    #[test]
    fn matvec_rejects_bad_shapes() {
        let a = Tensor::zeros(&[5, 3]);
        assert!(matvec(&a, &Tensor::zeros(&[4])).is_err());
        assert!(matvec(&a, &Tensor::zeros(&[3, 1])).is_err());
    }

    #[test]
    fn outer_product_shape_and_values() {
        let x = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let y = Tensor::from_vec(vec![3.0, 4.0, 5.0], &[3]).unwrap();
        let o = outer(&x, &y).unwrap();
        assert_eq!(o.shape(), &[2, 3]);
        assert_eq!(o.data(), &[3.0, 4.0, 5.0, 6.0, 8.0, 10.0]);
    }

    #[test]
    fn rank_of_identity_and_singular_matrices() {
        assert_eq!(rank(&Tensor::eye(4), 1e-6).unwrap(), 4);
        assert_eq!(rank(&Tensor::zeros(&[3, 5]), 1e-6).unwrap(), 0);
        // Rank-1 matrix: outer product.
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap();
        let o = outer(&x, &x).unwrap();
        assert_eq!(rank(&o, 1e-5).unwrap(), 1);
    }

    #[test]
    fn rank_of_wide_full_row_rank_matrix() {
        // ACM-style periphery: rows (1,-1,0), (0,1,-1) — rank 2.
        let s = Tensor::from_vec(vec![1.0, -1.0, 0.0, 0.0, 1.0, -1.0], &[2, 3]).unwrap();
        assert_eq!(rank(&s, 1e-6).unwrap(), 2);
    }

    #[test]
    fn matmul_propagates_inf_through_zero_rows() {
        // Regression: the old kernels skipped `aval == 0.0`, silently
        // turning `0 · ±Inf` (NaN by IEEE 754) into 0. A zero row in A
        // against a B containing Inf must now yield NaN everywhere the
        // Inf participates.
        let a = Tensor::zeros(&[2, 3]);
        let mut b = Tensor::ones(&[3, 4]);
        b.data_mut()[4 + 2] = f32::INFINITY;
        let c = matmul(&a, &b).unwrap();
        for i in 0..2 {
            assert!(c.at(&[i, 2]).is_nan(), "0 * Inf must give NaN");
            assert_eq!(c.at(&[i, 0]), 0.0);
        }
        // Same contract for the TN variant (shared-dim-major loops).
        let at = Tensor::zeros(&[3, 2]);
        let ct = matmul_tn(&at, &b).unwrap();
        for i in 0..2 {
            assert!(ct.at(&[i, 2]).is_nan());
        }
        // And NT: B is (n, k) with an Inf in the shared dimension.
        let mut bt = Tensor::ones(&[4, 3]);
        bt.data_mut()[2 * 3 + 1] = f32::INFINITY;
        let cnt = matmul_nt(&a, &bt).unwrap();
        for i in 0..2 {
            assert!(cnt.at(&[i, 2]).is_nan());
        }
    }

    #[test]
    fn matmul_nt_matches_reference_on_unroll_remainders() {
        // k values around the 4-way unroll boundary of the NT small path.
        let mut rng = XorShiftRng::new(27);
        for &k in &[1usize, 2, 3, 4, 5, 7, 8, 9] {
            let a = Tensor::rand_normal(&[3, k], 0.0, 1.0, &mut rng);
            let b = Tensor::rand_normal(&[5, k], 0.0, 1.0, &mut rng);
            let expected = matmul(&a, &b.transpose().unwrap()).unwrap();
            assert!(
                matmul_nt(&a, &b).unwrap().all_close(&expected, 1e-4),
                "k={k}"
            );
        }
    }

    #[test]
    fn matmul_associativity_on_random_matrices() {
        let mut rng = XorShiftRng::new(26);
        let a = Tensor::rand_normal(&[3, 4], 0.0, 1.0, &mut rng);
        let b = Tensor::rand_normal(&[4, 5], 0.0, 1.0, &mut rng);
        let c = Tensor::rand_normal(&[5, 2], 0.0, 1.0, &mut rng);
        let left = matmul(&matmul(&a, &b).unwrap(), &c).unwrap();
        let right = matmul(&a, &matmul(&b, &c).unwrap()).unwrap();
        assert!(left.all_close(&right, 1e-3));
    }
}
