//! Thread-local scratch-buffer recycling for the training hot path.
//!
//! A training step allocates the same tensor shapes over and over —
//! im2col workspaces, GEMM pack buffers, per-layer activations and
//! gradients. Instead of threading an explicit workspace object through
//! every kernel signature, the pool intercepts the buffers at the
//! [`crate::Tensor`] boundary: when a tensor is dropped its `Vec<f32>` is
//! parked in a thread-local free list keyed by exact capacity, and
//! `Tensor::zeros`/`Tensor::full` reuse a parked buffer of the right size
//! instead of calling the allocator. After the first step of a training
//! loop the hot path therefore performs (almost) no heap allocation.
//!
//! Semantics are unchanged: a reused buffer is `clear()`ed and
//! `resize()`d to the requested fill value, which is bit-identical to a
//! fresh `vec![value; n]`. The pool is purely a cache.
//!
//! Each thread's pool is capped at [`MAX_POOL_BYTES`]; buffers past the
//! cap, and buffers smaller than [`MIN_RECYCLE_LEN`] (where the free-list
//! bookkeeping would cost as much as the allocation), fall through to the
//! normal allocator. Worker threads in [`crate::backend`] live for the
//! process lifetime, so their pools persist across steps exactly like the
//! caller's.

use std::cell::RefCell;
use std::collections::HashMap;

/// Per-thread cap on parked bytes (64 MiB).
pub const MAX_POOL_BYTES: usize = 64 * 1024 * 1024;

/// Buffers shorter than this are not worth recycling.
pub const MIN_RECYCLE_LEN: usize = 64;

#[derive(Default)]
struct BufferPool {
    /// Free buffers keyed by exact capacity.
    free: HashMap<usize, Vec<Vec<f32>>>,
    /// Total parked bytes across all buckets.
    bytes: usize,
    hits: u64,
    misses: u64,
}

thread_local! {
    static POOL: RefCell<BufferPool> = RefCell::new(BufferPool::default());
}

/// Returns a buffer of exactly `len` elements filled with `value`,
/// reusing a parked buffer when one of matching capacity exists.
pub(crate) fn take_filled(len: usize, value: f32) -> Vec<f32> {
    if len >= MIN_RECYCLE_LEN {
        let reused = POOL.with(|p| {
            let mut p = p.borrow_mut();
            match p.free.get_mut(&len).and_then(Vec::pop) {
                Some(buf) => {
                    p.bytes -= len * std::mem::size_of::<f32>();
                    p.hits += 1;
                    Some(buf)
                }
                None => {
                    p.misses += 1;
                    None
                }
            }
        });
        if let Some(mut buf) = reused {
            buf.clear();
            buf.resize(len, value);
            return buf;
        }
    }
    vec![value; len]
}

/// Returns a buffer holding a copy of `src`, reusing a parked buffer of
/// matching capacity when one exists. Unlike [`take_filled`] the reused
/// buffer is written exactly once (`extend_from_slice`, no pre-fill), so
/// a pooled deep copy costs one memcpy — same as `slice::to_vec` minus
/// the allocator round-trip.
pub(crate) fn take_copied(src: &[f32]) -> Vec<f32> {
    let len = src.len();
    if len >= MIN_RECYCLE_LEN {
        let reused = POOL.with(|p| {
            let mut p = p.borrow_mut();
            match p.free.get_mut(&len).and_then(Vec::pop) {
                Some(buf) => {
                    p.bytes -= std::mem::size_of_val(src);
                    p.hits += 1;
                    Some(buf)
                }
                None => {
                    p.misses += 1;
                    None
                }
            }
        });
        if let Some(mut buf) = reused {
            buf.clear();
            buf.extend_from_slice(src);
            return buf;
        }
    }
    src.to_vec()
}

/// Parks `buf` for reuse. Called from `Tensor::drop`; buffers that do not
/// qualify (too small, pool full, thread-local storage torn down) are
/// simply freed.
pub(crate) fn give(buf: Vec<f32>) {
    let cap = buf.capacity();
    if cap < MIN_RECYCLE_LEN {
        return;
    }
    let size = cap * std::mem::size_of::<f32>();
    // `try_with`: a tensor dropped during thread teardown must not panic.
    let _ = POOL.try_with(|p| {
        if let Ok(mut p) = p.try_borrow_mut() {
            if p.bytes + size <= MAX_POOL_BYTES {
                p.bytes += size;
                p.free.entry(cap).or_default().push(buf);
            }
        }
    });
}

/// Point-in-time statistics for the calling thread's pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScratchStats {
    /// Bytes currently parked.
    pub cached_bytes: usize,
    /// Number of parked buffers.
    pub cached_buffers: usize,
    /// Requests served from the pool.
    pub hits: u64,
    /// Requests that fell through to the allocator.
    pub misses: u64,
}

/// Returns the calling thread's pool statistics.
pub fn stats() -> ScratchStats {
    POOL.with(|p| {
        let p = p.borrow();
        ScratchStats {
            cached_bytes: p.bytes,
            cached_buffers: p.free.values().map(Vec::len).sum(),
            hits: p.hits,
            misses: p.misses,
        }
    })
}

/// Frees every buffer parked by the calling thread and resets counters.
pub fn clear_pool() {
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        p.free.clear();
        p.bytes = 0;
        p.hits = 0;
        p.misses = 0;
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tensor;

    #[test]
    fn dropped_tensor_buffer_is_reused() {
        clear_pool();
        let t = Tensor::zeros(&[32, 32]);
        let ptr = t.data().as_ptr();
        drop(t);
        let t2 = Tensor::zeros(&[32, 32]);
        assert_eq!(t2.data().as_ptr(), ptr, "same-size alloc should reuse");
        assert!(t2.data().iter().all(|&v| v == 0.0));
        clear_pool();
    }

    #[test]
    fn reused_buffer_is_reset_to_fill_value() {
        clear_pool();
        let mut t = Tensor::full(&[64], 3.0);
        t.data_mut()[7] = -9.0;
        drop(t);
        let t2 = Tensor::full(&[64], 1.5);
        assert!(t2.data().iter().all(|&v| v == 1.5));
        clear_pool();
    }

    #[test]
    fn tiny_buffers_bypass_the_pool() {
        clear_pool();
        drop(Tensor::zeros(&[4]));
        assert_eq!(stats().cached_buffers, 0);
    }

    #[test]
    fn mismatched_sizes_do_not_alias() {
        clear_pool();
        drop(Tensor::zeros(&[100]));
        let t = Tensor::zeros(&[101]);
        assert_eq!(t.len(), 101);
        clear_pool();
    }

    #[test]
    fn stats_track_hits_and_misses() {
        clear_pool();
        drop(Tensor::zeros(&[256]));
        let before = stats();
        let _t = Tensor::zeros(&[256]);
        let after = stats();
        assert_eq!(after.hits, before.hits + 1);
        clear_pool();
    }
}
