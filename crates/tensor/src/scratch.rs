//! Thread-local scratch-buffer recycling for the training hot path.
//!
//! A training step allocates the same tensor shapes over and over —
//! im2col workspaces, GEMM pack buffers, per-layer activations and
//! gradients. Instead of threading an explicit workspace object through
//! every kernel signature, the pool intercepts the buffers at the
//! [`crate::Tensor`] boundary: when a tensor is dropped its `Vec<f32>` is
//! parked in a thread-local free list keyed by exact capacity, and
//! `Tensor::zeros`/`Tensor::full` reuse a parked buffer of the right size
//! instead of calling the allocator. After the first step of a training
//! loop the hot path therefore performs (almost) no heap allocation.
//!
//! Semantics are unchanged: a reused buffer is `clear()`ed and
//! `resize()`d to the requested fill value, which is bit-identical to a
//! fresh `vec![value; n]`. The pool is purely a cache.
//!
//! Each thread's pool is capped at [`MAX_POOL_BYTES`]; buffers past the
//! cap, and buffers smaller than [`MIN_RECYCLE_LEN`] (where the free-list
//! bookkeeping would cost as much as the allocation), fall through to the
//! normal allocator. Worker threads in [`crate::backend`] live for the
//! process lifetime, so their pools persist across steps exactly like the
//! caller's.

use std::cell::RefCell;
use std::collections::HashMap;

/// Per-thread cap on parked bytes (64 MiB), shared across element types.
pub const MAX_POOL_BYTES: usize = 64 * 1024 * 1024;

/// Buffers shorter than this are not worth recycling.
pub const MIN_RECYCLE_LEN: usize = 64;

struct BufferPool<T> {
    /// Free buffers keyed by exact capacity.
    free: HashMap<usize, Vec<Vec<T>>>,
    /// Total parked bytes across all buckets.
    bytes: usize,
    hits: u64,
    misses: u64,
}

// Manual impl: `derive(Default)` would demand `T: Default` for nothing.
impl<T> Default for BufferPool<T> {
    fn default() -> Self {
        Self {
            free: HashMap::new(),
            bytes: 0,
            hits: 0,
            misses: 0,
        }
    }
}

impl<T: Copy> BufferPool<T> {
    fn pop(&mut self, len: usize) -> Option<Vec<T>> {
        match self.free.get_mut(&len).and_then(Vec::pop) {
            Some(buf) => {
                self.bytes -= len * std::mem::size_of::<T>();
                self.hits += 1;
                Some(buf)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }
}

thread_local! {
    static POOL: RefCell<BufferPool<f32>> = RefCell::new(BufferPool::default());
    static POOL_I8: RefCell<BufferPool<i8>> = RefCell::new(BufferPool::default());
    static POOL_I32: RefCell<BufferPool<i32>> = RefCell::new(BufferPool::default());
}

fn take_filled_in<T: Copy>(
    pool: &'static std::thread::LocalKey<RefCell<BufferPool<T>>>,
    len: usize,
    value: T,
) -> Vec<T> {
    if len >= MIN_RECYCLE_LEN {
        let reused = pool.with(|p| p.borrow_mut().pop(len));
        if let Some(mut buf) = reused {
            buf.clear();
            buf.resize(len, value);
            return buf;
        }
    }
    vec![value; len]
}

fn give_in<T: Copy>(pool: &'static std::thread::LocalKey<RefCell<BufferPool<T>>>, buf: Vec<T>) {
    let cap = buf.capacity();
    if cap < MIN_RECYCLE_LEN {
        return;
    }
    let size = cap * std::mem::size_of::<T>();
    // `try_with`: a buffer dropped during thread teardown must not panic.
    let _ = pool.try_with(|p| {
        if let Ok(mut p) = p.try_borrow_mut() {
            if p.bytes + size <= MAX_POOL_BYTES {
                p.bytes += size;
                p.free.entry(cap).or_default().push(buf);
            }
        }
    });
}

/// Returns a buffer of exactly `len` elements filled with `value`,
/// reusing a parked buffer when one of matching capacity exists.
pub(crate) fn take_filled(len: usize, value: f32) -> Vec<f32> {
    take_filled_in(&POOL, len, value)
}

/// Returns a buffer holding a copy of `src`, reusing a parked buffer of
/// matching capacity when one exists. Unlike [`take_filled`] the reused
/// buffer is written exactly once (`extend_from_slice`, no pre-fill), so
/// a pooled deep copy costs one memcpy — same as `slice::to_vec` minus
/// the allocator round-trip.
pub(crate) fn take_copied(src: &[f32]) -> Vec<f32> {
    let len = src.len();
    if len >= MIN_RECYCLE_LEN {
        let reused = POOL.with(|p| p.borrow_mut().pop(len));
        if let Some(mut buf) = reused {
            buf.clear();
            buf.extend_from_slice(src);
            return buf;
        }
    }
    src.to_vec()
}

/// Parks `buf` for reuse. Called from `Tensor::drop`; buffers that do not
/// qualify (too small, pool full, thread-local storage torn down) are
/// simply freed.
pub(crate) fn give(buf: Vec<f32>) {
    give_in(&POOL, buf);
}

/// Pooled `i8` buffer for quantized-kernel operands (codes, packed
/// blocks). Return it with [`give_i8`] when done so the quantized hot
/// path stays allocation-free after warmup.
pub fn take_filled_i8(len: usize, value: i8) -> Vec<i8> {
    take_filled_in(&POOL_I8, len, value)
}

/// Parks an `i8` buffer taken with [`take_filled_i8`].
pub fn give_i8(buf: Vec<i8>) {
    give_in(&POOL_I8, buf);
}

/// Pooled `i32` buffer for quantized-kernel accumulators. Return it with
/// [`give_i32`].
pub fn take_filled_i32(len: usize, value: i32) -> Vec<i32> {
    take_filled_in(&POOL_I32, len, value)
}

/// Parks an `i32` buffer taken with [`take_filled_i32`].
pub fn give_i32(buf: Vec<i32>) {
    give_in(&POOL_I32, buf);
}

/// Point-in-time statistics for the calling thread's pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScratchStats {
    /// Bytes currently parked.
    pub cached_bytes: usize,
    /// Number of parked buffers.
    pub cached_buffers: usize,
    /// Requests served from the pool.
    pub hits: u64,
    /// Requests that fell through to the allocator.
    pub misses: u64,
}

/// Returns the calling thread's pool statistics, summed over the f32,
/// i8, and i32 pools.
pub fn stats() -> ScratchStats {
    fn add<T>(pool: &RefCell<BufferPool<T>>, s: &mut ScratchStats) {
        let p = pool.borrow();
        s.cached_bytes += p.bytes;
        s.cached_buffers += p.free.values().map(Vec::len).sum::<usize>();
        s.hits += p.hits;
        s.misses += p.misses;
    }
    let mut s = ScratchStats {
        cached_bytes: 0,
        cached_buffers: 0,
        hits: 0,
        misses: 0,
    };
    POOL.with(|p| add(p, &mut s));
    POOL_I8.with(|p| add(p, &mut s));
    POOL_I32.with(|p| add(p, &mut s));
    s
}

/// Frees every buffer parked by the calling thread and resets counters.
pub fn clear_pool() {
    fn clear<T>(pool: &RefCell<BufferPool<T>>) {
        let mut p = pool.borrow_mut();
        p.free.clear();
        p.bytes = 0;
        p.hits = 0;
        p.misses = 0;
    }
    POOL.with(clear);
    POOL_I8.with(clear);
    POOL_I32.with(clear);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tensor;

    #[test]
    fn dropped_tensor_buffer_is_reused() {
        clear_pool();
        let t = Tensor::zeros(&[32, 32]);
        let ptr = t.data().as_ptr();
        drop(t);
        let t2 = Tensor::zeros(&[32, 32]);
        assert_eq!(t2.data().as_ptr(), ptr, "same-size alloc should reuse");
        assert!(t2.data().iter().all(|&v| v == 0.0));
        clear_pool();
    }

    #[test]
    fn reused_buffer_is_reset_to_fill_value() {
        clear_pool();
        let mut t = Tensor::full(&[64], 3.0);
        t.data_mut()[7] = -9.0;
        drop(t);
        let t2 = Tensor::full(&[64], 1.5);
        assert!(t2.data().iter().all(|&v| v == 1.5));
        clear_pool();
    }

    #[test]
    fn tiny_buffers_bypass_the_pool() {
        clear_pool();
        drop(Tensor::zeros(&[4]));
        assert_eq!(stats().cached_buffers, 0);
    }

    #[test]
    fn mismatched_sizes_do_not_alias() {
        clear_pool();
        drop(Tensor::zeros(&[100]));
        let t = Tensor::zeros(&[101]);
        assert_eq!(t.len(), 101);
        clear_pool();
    }

    #[test]
    fn stats_track_hits_and_misses() {
        clear_pool();
        drop(Tensor::zeros(&[256]));
        let before = stats();
        let _t = Tensor::zeros(&[256]);
        let after = stats();
        assert_eq!(after.hits, before.hits + 1);
        clear_pool();
    }

    #[test]
    fn integer_pools_recycle_independently() {
        clear_pool();
        let b8 = take_filled_i8(256, 3);
        let p8 = b8.as_ptr();
        give_i8(b8);
        let b8b = take_filled_i8(256, -1);
        assert_eq!(b8b.as_ptr(), p8, "i8 pool should reuse");
        assert!(b8b.iter().all(|&v| v == -1));
        // Same length in the i32 pool must not alias the i8 buffer.
        let b32 = take_filled_i32(256, 7);
        assert!(b32.iter().all(|&v| v == 7));
        give_i8(b8b);
        give_i32(b32);
        assert_eq!(stats().cached_buffers, 2);
        clear_pool();
        assert_eq!(stats().cached_bytes, 0);
    }
}
