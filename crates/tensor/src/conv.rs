//! 2-D convolution and pooling kernels (NCHW layout).
//!
//! Convolution is implemented by lowering to matrix multiplication via
//! [`im2col`]/[`col2im`], the standard approach for CPU DNN kernels: the
//! receptive field of every output pixel becomes one row of a patch matrix,
//! so the convolution forward pass is a single GEMM against the flattened
//! filter bank. This is also exactly the form in which a convolution is
//! mapped onto a crossbar array (each filter is one crossbar column group),
//! which is why the mapped convolution layers in `xbar-nn` reuse these
//! kernels unchanged.

use crate::{backend, linalg, ShapeError, Tensor};

/// Spatial geometry of a convolution or pooling operation.
///
/// # Example
///
/// ```
/// use xbar_tensor::conv::ConvGeometry;
///
/// let g = ConvGeometry::new(32, 32, 3, 3, 1, 1);
/// assert_eq!((g.out_h, g.out_w), (32, 32)); // "same" conv
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvGeometry {
    /// Input height.
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
    /// Kernel height.
    pub k_h: usize,
    /// Kernel width.
    pub k_w: usize,
    /// Stride (same in both dimensions).
    pub stride: usize,
    /// Zero padding (same on all sides).
    pub pad: usize,
    /// Output height.
    pub out_h: usize,
    /// Output width.
    pub out_w: usize,
}

impl ConvGeometry {
    /// Computes the output geometry for the given input size, kernel,
    /// stride, and padding.
    ///
    /// # Panics
    ///
    /// Panics if `stride == 0` or the kernel (after padding) does not fit in
    /// the input.
    pub fn new(
        in_h: usize,
        in_w: usize,
        k_h: usize,
        k_w: usize,
        stride: usize,
        pad: usize,
    ) -> Self {
        assert!(stride > 0, "stride must be positive");
        assert!(
            in_h + 2 * pad >= k_h && in_w + 2 * pad >= k_w,
            "kernel {k_h}x{k_w} larger than padded input {}x{}",
            in_h + 2 * pad,
            in_w + 2 * pad
        );
        Self {
            in_h,
            in_w,
            k_h,
            k_w,
            stride,
            pad,
            out_h: (in_h + 2 * pad - k_h) / stride + 1,
            out_w: (in_w + 2 * pad - k_w) / stride + 1,
        }
    }
}

fn expect_4d(op: &'static str, t: &Tensor) -> Result<(usize, usize, usize, usize), ShapeError> {
    if t.ndim() != 4 {
        return Err(ShapeError::new(
            op,
            format!("expected NCHW 4-D tensor, got shape {:?}", t.shape()),
        ));
    }
    let s = t.shape();
    Ok((s[0], s[1], s[2], s[3]))
}

/// Lowers an NCHW input to a patch matrix of shape
/// `(N·out_h·out_w, C·k_h·k_w)`.
///
/// Row `((n·out_h + oh)·out_w + ow)` holds the receptive field of output
/// pixel `(n, oh, ow)` flattened in `(c, kh, kw)` order. Padded positions
/// contribute zeros.
///
/// # Errors
///
/// Returns [`ShapeError`] if `input` is not 4-D or its spatial dims disagree
/// with `geom`.
pub fn im2col(input: &Tensor, geom: &ConvGeometry) -> Result<Tensor, ShapeError> {
    let (n, c, h, w) = expect_4d("im2col", input)?;
    if h != geom.in_h || w != geom.in_w {
        return Err(ShapeError::new(
            "im2col",
            format!(
                "input {h}x{w} but geometry expects {}x{}",
                geom.in_h, geom.in_w
            ),
        ));
    }
    let k = c * geom.k_h * geom.k_w;
    let rows = n * geom.out_h * geom.out_w;
    let mut cols = Tensor::zeros(&[rows, k]);
    let src = input.data();
    let dst = cols.data_mut();
    // Sample `ni` owns the contiguous destination block of
    // `out_h·out_w·k` floats, so batch parallelism is a disjoint-chunk
    // split; each chunk runs the identical per-sample loop.
    backend::parallel_chunks_mut(dst, geom.out_h * geom.out_w * k, |ni, block| {
        for oh in 0..geom.out_h {
            for ow in 0..geom.out_w {
                let row = (oh * geom.out_w + ow) * k;
                let ih0 = (oh * geom.stride) as isize - geom.pad as isize;
                let iw0 = (ow * geom.stride) as isize - geom.pad as isize;
                for ci in 0..c {
                    let plane = (ni * c + ci) * h * w;
                    for kh in 0..geom.k_h {
                        let ih = ih0 + kh as isize;
                        if ih < 0 || ih >= h as isize {
                            continue;
                        }
                        let src_row = plane + ih as usize * w;
                        let dst_base = row + (ci * geom.k_h + kh) * geom.k_w;
                        for kw in 0..geom.k_w {
                            let iw = iw0 + kw as isize;
                            if iw < 0 || iw >= w as isize {
                                continue;
                            }
                            block[dst_base + kw] = src[src_row + iw as usize];
                        }
                    }
                }
            }
        }
    });
    Ok(cols)
}

/// Scatter-adds a patch matrix back to an NCHW tensor — the adjoint of
/// [`im2col`], used for the convolution input gradient.
///
/// # Errors
///
/// Returns [`ShapeError`] if `cols` does not have the shape [`im2col`] would
/// produce for `(n, c)` and `geom`.
pub fn col2im(
    cols: &Tensor,
    n: usize,
    c: usize,
    geom: &ConvGeometry,
) -> Result<Tensor, ShapeError> {
    let k = c * geom.k_h * geom.k_w;
    let rows = n * geom.out_h * geom.out_w;
    if cols.ndim() != 2 || cols.shape() != [rows, k] {
        return Err(ShapeError::new(
            "col2im",
            format!(
                "expected cols of shape [{rows}, {k}], got {:?}",
                cols.shape()
            ),
        ));
    }
    let (h, w) = (geom.in_h, geom.in_w);
    let mut out = Tensor::zeros(&[n, c, h, w]);
    let src = cols.data();
    let dst = out.data_mut();
    // Sample `ni` scatter-adds exclusively into its own `c·h·w` output
    // plane, and the within-sample accumulation order is unchanged from
    // the serial loop, so the batch split is deterministic.
    backend::parallel_chunks_mut(dst, c * h * w, |ni, planes| {
        for oh in 0..geom.out_h {
            for ow in 0..geom.out_w {
                let row = ((ni * geom.out_h + oh) * geom.out_w + ow) * k;
                let ih0 = (oh * geom.stride) as isize - geom.pad as isize;
                let iw0 = (ow * geom.stride) as isize - geom.pad as isize;
                for ci in 0..c {
                    let plane = ci * h * w;
                    for kh in 0..geom.k_h {
                        let ih = ih0 + kh as isize;
                        if ih < 0 || ih >= h as isize {
                            continue;
                        }
                        let dst_row = plane + ih as usize * w;
                        let src_base = row + (ci * geom.k_h + kh) * geom.k_w;
                        for kw in 0..geom.k_w {
                            let iw = iw0 + kw as isize;
                            if iw < 0 || iw >= w as isize {
                                continue;
                            }
                            planes[dst_row + iw as usize] += src[src_base + kw];
                        }
                    }
                }
            }
        }
    });
    Ok(out)
}

/// Convolution forward pass.
///
/// `input` is NCHW `(n, c, h, w)`; `weight` is the flattened filter bank
/// `(out_c, c·k_h·k_w)`. Returns `(output, cols)` where `output` is
/// `(n, out_c, out_h, out_w)` and `cols` is the patch matrix, which callers
/// cache for the backward pass ([`conv2d_backward`]).
///
/// # Errors
///
/// Returns [`ShapeError`] on operand rank or dimension mismatches.
pub fn conv2d_forward(
    input: &Tensor,
    weight: &Tensor,
    geom: &ConvGeometry,
) -> Result<(Tensor, Tensor), ShapeError> {
    let (n, c, _, _) = expect_4d("conv2d_forward", input)?;
    let cols = im2col(input, geom)?;
    let k = c * geom.k_h * geom.k_w;
    if weight.ndim() != 2 || weight.shape()[1] != k {
        return Err(ShapeError::new(
            "conv2d_forward",
            format!(
                "weight shape {:?} incompatible with patch width {k}",
                weight.shape()
            ),
        ));
    }
    let out_c = weight.shape()[0];
    // (rows, k) x (out_c, k)^T -> (rows, out_c)
    let out_mat = linalg::matmul_nt(&cols, weight)?;
    let output = rows_to_nchw(&out_mat, n, out_c, geom.out_h, geom.out_w);
    Ok((output, cols))
}

/// Reorders a `(n·oh·ow, out_c)` matrix into an NCHW tensor.
pub fn rows_to_nchw(mat: &Tensor, n: usize, out_c: usize, oh: usize, ow: usize) -> Tensor {
    let mut out = Tensor::zeros(&[n, out_c, oh, ow]);
    let src = mat.data();
    let dst = out.data_mut();
    let spatial = oh * ow;
    for ni in 0..n {
        for s in 0..spatial {
            let row = (ni * spatial + s) * out_c;
            for oc in 0..out_c {
                dst[(ni * out_c + oc) * spatial + s] = src[row + oc];
            }
        }
    }
    out
}

/// Reorders an NCHW tensor into a `(n·oh·ow, out_c)` matrix — the inverse
/// of [`rows_to_nchw`].
pub fn nchw_to_rows(t: &Tensor) -> Result<Tensor, ShapeError> {
    let (n, c, h, w) = expect_4d("nchw_to_rows", t)?;
    let spatial = h * w;
    let mut out = Tensor::zeros(&[n * spatial, c]);
    let src = t.data();
    let dst = out.data_mut();
    for ni in 0..n {
        for ci in 0..c {
            let plane = (ni * c + ci) * spatial;
            for s in 0..spatial {
                dst[(ni * spatial + s) * c + ci] = src[plane + s];
            }
        }
    }
    Ok(out)
}

/// Gradients of the convolution forward pass.
///
/// Given `grad_out` `(n, out_c, out_h, out_w)`, the cached `cols` from
/// [`conv2d_forward`], and the `weight` used in the forward pass, returns
/// `(grad_input, grad_weight)`.
///
/// # Errors
///
/// Returns [`ShapeError`] on operand mismatches.
pub fn conv2d_backward(
    grad_out: &Tensor,
    cols: &Tensor,
    weight: &Tensor,
    n: usize,
    in_c: usize,
    geom: &ConvGeometry,
) -> Result<(Tensor, Tensor), ShapeError> {
    let g_mat = nchw_to_rows(grad_out)?; // (rows, out_c)
                                         // dW = g_mat^T . cols -> (out_c, k)
    let grad_weight = linalg::matmul_tn(&g_mat, cols)?;
    // dcols = g_mat . weight -> (rows, k)
    let d_cols = linalg::matmul(&g_mat, weight)?;
    let grad_input = col2im(&d_cols, n, in_c, geom)?;
    Ok((grad_input, grad_weight))
}

/// Max-pooling forward pass. Returns the pooled tensor and the flat argmax
/// index of each output element (for the backward scatter).
///
/// # Errors
///
/// Returns [`ShapeError`] if `input` is not 4-D or disagrees with `geom`.
pub fn maxpool2d_forward(
    input: &Tensor,
    geom: &ConvGeometry,
) -> Result<(Tensor, Vec<usize>), ShapeError> {
    let (n, c, h, w) = expect_4d("maxpool2d_forward", input)?;
    if h != geom.in_h || w != geom.in_w {
        return Err(ShapeError::new(
            "maxpool2d_forward",
            format!(
                "input {h}x{w} but geometry expects {}x{}",
                geom.in_h, geom.in_w
            ),
        ));
    }
    let mut out = Tensor::zeros(&[n, c, geom.out_h, geom.out_w]);
    let mut idx = vec![0usize; out.len()];
    let src = input.data();
    let dst = out.data_mut();
    // Batch-parallel: zip each sample's output block with its index block
    // (both are `c·out_h·out_w` long) so every task owns disjoint slices.
    let sample = c * geom.out_h * geom.out_w;
    let work: Vec<(usize, &mut [f32], &mut [usize])> = dst
        .chunks_mut(sample.max(1))
        .zip(idx.chunks_mut(sample.max(1)))
        .enumerate()
        .map(|(ni, (d, ix))| (ni, d, ix))
        .collect();
    backend::parallel_map(work, |_, (ni, d, ix)| {
        let mut o = 0;
        for ci in 0..c {
            let plane = (ni * c + ci) * h * w;
            for oh in 0..geom.out_h {
                for ow in 0..geom.out_w {
                    let ih0 = (oh * geom.stride) as isize - geom.pad as isize;
                    let iw0 = (ow * geom.stride) as isize - geom.pad as isize;
                    let mut best = f32::NEG_INFINITY;
                    let mut best_at = plane; // fallback; overwritten on first in-bounds hit
                    for kh in 0..geom.k_h {
                        let ih = ih0 + kh as isize;
                        if ih < 0 || ih >= h as isize {
                            continue;
                        }
                        for kw in 0..geom.k_w {
                            let iw = iw0 + kw as isize;
                            if iw < 0 || iw >= w as isize {
                                continue;
                            }
                            let at = plane + ih as usize * w + iw as usize;
                            if src[at] > best {
                                best = src[at];
                                best_at = at;
                            }
                        }
                    }
                    d[o] = best;
                    ix[o] = best_at;
                    o += 1;
                }
            }
        }
    });
    Ok((out, idx))
}

/// Max-pooling backward pass: routes each output gradient to the input
/// position that produced the max.
///
/// # Errors
///
/// Returns [`ShapeError`] if `grad_out` length disagrees with `indices`.
pub fn maxpool2d_backward(
    grad_out: &Tensor,
    indices: &[usize],
    input_shape: &[usize],
) -> Result<Tensor, ShapeError> {
    if grad_out.len() != indices.len() {
        return Err(ShapeError::new(
            "maxpool2d_backward",
            format!(
                "grad len {} vs indices len {}",
                grad_out.len(),
                indices.len()
            ),
        ));
    }
    let mut grad_in = Tensor::zeros(input_shape);
    let dst = grad_in.data_mut();
    let god = grad_out.data();
    // For the NCHW case, sample `ni` scatters only into its own input
    // plane (forward indices are always in-sample), so the batch split is
    // race-free. Non-4-D shapes fall back to the serial loop.
    let n = input_shape.first().copied().unwrap_or(0);
    if input_shape.len() == 4 && n > 0 && god.len().is_multiple_of(n) && !dst.is_empty() {
        let plane = input_shape[1] * input_shape[2] * input_shape[3];
        let per = god.len() / n;
        backend::parallel_chunks_mut(dst, plane, |ni, chunk| {
            let base = ni * plane;
            for (&g, &at) in god[ni * per..(ni + 1) * per]
                .iter()
                .zip(&indices[ni * per..(ni + 1) * per])
            {
                chunk[at - base] += g;
            }
        });
    } else {
        for (&g, &at) in god.iter().zip(indices) {
            dst[at] += g;
        }
    }
    Ok(grad_in)
}

/// Average-pooling forward pass (counts only in-bounds elements, i.e.
/// padding does not dilute the average).
///
/// # Errors
///
/// Returns [`ShapeError`] if `input` is not 4-D or disagrees with `geom`.
pub fn avgpool2d_forward(input: &Tensor, geom: &ConvGeometry) -> Result<Tensor, ShapeError> {
    let (n, c, h, w) = expect_4d("avgpool2d_forward", input)?;
    if h != geom.in_h || w != geom.in_w {
        return Err(ShapeError::new(
            "avgpool2d_forward",
            format!(
                "input {h}x{w} but geometry expects {}x{}",
                geom.in_h, geom.in_w
            ),
        ));
    }
    let mut out = Tensor::zeros(&[n, c, geom.out_h, geom.out_w]);
    let src = input.data();
    let dst = out.data_mut();
    // Batch-parallel over each sample's `c·out_h·out_w` output block.
    backend::parallel_chunks_mut(dst, (c * geom.out_h * geom.out_w).max(1), |ni, block| {
        let mut o = 0;
        for ci in 0..c {
            let plane = (ni * c + ci) * h * w;
            for oh in 0..geom.out_h {
                for ow in 0..geom.out_w {
                    let ih0 = (oh * geom.stride) as isize - geom.pad as isize;
                    let iw0 = (ow * geom.stride) as isize - geom.pad as isize;
                    let mut acc = 0.0;
                    let mut count = 0;
                    for kh in 0..geom.k_h {
                        let ih = ih0 + kh as isize;
                        if ih < 0 || ih >= h as isize {
                            continue;
                        }
                        for kw in 0..geom.k_w {
                            let iw = iw0 + kw as isize;
                            if iw < 0 || iw >= w as isize {
                                continue;
                            }
                            acc += src[plane + ih as usize * w + iw as usize];
                            count += 1;
                        }
                    }
                    block[o] = if count > 0 { acc / count as f32 } else { 0.0 };
                    o += 1;
                }
            }
        }
    });
    Ok(out)
}

/// Average-pooling backward pass: spreads each output gradient uniformly
/// over the in-bounds elements of its window.
///
/// # Errors
///
/// Returns [`ShapeError`] if `grad_out` disagrees with the geometry.
pub fn avgpool2d_backward(
    grad_out: &Tensor,
    n: usize,
    c: usize,
    geom: &ConvGeometry,
) -> Result<Tensor, ShapeError> {
    let expected = [n, c, geom.out_h, geom.out_w];
    if grad_out.shape() != expected {
        return Err(ShapeError::new(
            "avgpool2d_backward",
            format!("grad shape {:?}, expected {:?}", grad_out.shape(), expected),
        ));
    }
    let (h, w) = (geom.in_h, geom.in_w);
    let mut grad_in = Tensor::zeros(&[n, c, h, w]);
    let src = grad_out.data();
    let dst = grad_in.data_mut();
    // Batch-parallel: sample `ni` reads its own `c·out_h·out_w` gradient
    // block and writes its own `c·h·w` input plane.
    let out_block = c * geom.out_h * geom.out_w;
    backend::parallel_chunks_mut(dst, (c * h * w).max(1), |ni, planes| {
        let mut o = ni * out_block;
        for ci in 0..c {
            let plane = ci * h * w;
            for oh in 0..geom.out_h {
                for ow in 0..geom.out_w {
                    let ih0 = (oh * geom.stride) as isize - geom.pad as isize;
                    let iw0 = (ow * geom.stride) as isize - geom.pad as isize;
                    let mut in_bounds = Vec::with_capacity(geom.k_h * geom.k_w);
                    for kh in 0..geom.k_h {
                        let ih = ih0 + kh as isize;
                        if ih < 0 || ih >= h as isize {
                            continue;
                        }
                        for kw in 0..geom.k_w {
                            let iw = iw0 + kw as isize;
                            if iw < 0 || iw >= w as isize {
                                continue;
                            }
                            in_bounds.push(plane + ih as usize * w + iw as usize);
                        }
                    }
                    if !in_bounds.is_empty() {
                        let share = src[o] / in_bounds.len() as f32;
                        for at in in_bounds {
                            planes[at] += share;
                        }
                    }
                    o += 1;
                }
            }
        }
    });
    Ok(grad_in)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::XorShiftRng;

    /// Direct (non-im2col) convolution used as the ground-truth reference.
    fn naive_conv(input: &Tensor, weight: &Tensor, geom: &ConvGeometry, out_c: usize) -> Tensor {
        let s = input.shape();
        let (n, c) = (s[0], s[1]);
        let mut out = Tensor::zeros(&[n, out_c, geom.out_h, geom.out_w]);
        for ni in 0..n {
            for oc in 0..out_c {
                for oh in 0..geom.out_h {
                    for ow in 0..geom.out_w {
                        let mut acc = 0.0;
                        for ci in 0..c {
                            for kh in 0..geom.k_h {
                                for kw in 0..geom.k_w {
                                    let ih = (oh * geom.stride + kh) as isize - geom.pad as isize;
                                    let iw = (ow * geom.stride + kw) as isize - geom.pad as isize;
                                    if ih < 0
                                        || iw < 0
                                        || ih >= geom.in_h as isize
                                        || iw >= geom.in_w as isize
                                    {
                                        continue;
                                    }
                                    acc += input.at(&[ni, ci, ih as usize, iw as usize])
                                        * weight.at(&[oc, (ci * geom.k_h + kh) * geom.k_w + kw]);
                                }
                            }
                        }
                        *out.at_mut(&[ni, oc, oh, ow]) = acc;
                    }
                }
            }
        }
        out
    }

    #[test]
    fn geometry_same_and_valid_conv() {
        let same = ConvGeometry::new(8, 8, 3, 3, 1, 1);
        assert_eq!((same.out_h, same.out_w), (8, 8));
        let valid = ConvGeometry::new(8, 8, 3, 3, 1, 0);
        assert_eq!((valid.out_h, valid.out_w), (6, 6));
        let strided = ConvGeometry::new(8, 8, 2, 2, 2, 0);
        assert_eq!((strided.out_h, strided.out_w), (4, 4));
    }

    #[test]
    #[should_panic(expected = "stride")]
    fn geometry_rejects_zero_stride() {
        let _ = ConvGeometry::new(8, 8, 3, 3, 0, 1);
    }

    #[test]
    fn conv_forward_matches_naive_reference() {
        let mut rng = XorShiftRng::new(31);
        for &(pad, stride) in &[(0usize, 1usize), (1, 1), (1, 2)] {
            let geom = ConvGeometry::new(6, 5, 3, 3, stride, pad);
            let input = Tensor::rand_normal(&[2, 3, 6, 5], 0.0, 1.0, &mut rng);
            let weight = Tensor::rand_normal(&[4, 3 * 9], 0.0, 1.0, &mut rng);
            let (out, _) = conv2d_forward(&input, &weight, &geom).unwrap();
            let expected = naive_conv(&input, &weight, &geom, 4);
            assert!(out.all_close(&expected, 1e-4), "pad={pad} stride={stride}");
        }
    }

    #[test]
    fn im2col_col2im_are_adjoint() {
        // <im2col(x), y> == <x, col2im(y)> for random x, y — the defining
        // property of an adjoint pair, which is what backward relies on.
        let mut rng = XorShiftRng::new(32);
        let geom = ConvGeometry::new(5, 5, 3, 3, 1, 1);
        let x = Tensor::rand_normal(&[1, 2, 5, 5], 0.0, 1.0, &mut rng);
        let cols = im2col(&x, &geom).unwrap();
        let y = Tensor::rand_normal(cols.shape(), 0.0, 1.0, &mut rng);
        let lhs: f32 = cols.data().iter().zip(y.data()).map(|(&a, &b)| a * b).sum();
        let back = col2im(&y, 1, 2, &geom).unwrap();
        let rhs: f32 = x.data().iter().zip(back.data()).map(|(&a, &b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }

    #[test]
    fn conv_backward_matches_finite_differences() {
        let mut rng = XorShiftRng::new(33);
        let geom = ConvGeometry::new(4, 4, 3, 3, 1, 1);
        let input = Tensor::rand_normal(&[1, 2, 4, 4], 0.0, 1.0, &mut rng);
        let weight = Tensor::rand_normal(&[3, 2 * 9], 0.0, 1.0, &mut rng);
        let (out, cols) = conv2d_forward(&input, &weight, &geom).unwrap();
        // Loss = sum(out); grad_out = ones.
        let grad_out = Tensor::ones(out.shape());
        let (gi, gw) = conv2d_backward(&grad_out, &cols, &weight, 1, 2, &geom).unwrap();

        let eps = 1e-3;
        // Check a few weight entries.
        for &wi in &[0usize, 5, 17, 26] {
            let mut wp = weight.clone();
            wp.data_mut()[wi] += eps;
            let (op, _) = conv2d_forward(&input, &wp, &geom).unwrap();
            let num = (op.sum() - out.sum()) / eps;
            assert!(
                (num - gw.data()[wi]).abs() < 0.05,
                "weight grad {wi}: numeric {num} vs analytic {}",
                gw.data()[wi]
            );
        }
        // Check a few input entries.
        for &xi in &[0usize, 7, 15, 31] {
            let mut xp = input.clone();
            xp.data_mut()[xi] += eps;
            let (op, _) = conv2d_forward(&xp, &weight, &geom).unwrap();
            let num = (op.sum() - out.sum()) / eps;
            assert!(
                (num - gi.data()[xi]).abs() < 0.05,
                "input grad {xi}: numeric {num} vs analytic {}",
                gi.data()[xi]
            );
        }
    }

    #[test]
    fn maxpool_forward_and_backward() {
        let geom = ConvGeometry::new(4, 4, 2, 2, 2, 0);
        let input = Tensor::from_vec((0..16).map(|x| x as f32).collect(), &[1, 1, 4, 4]).unwrap();
        let (out, idx) = maxpool2d_forward(&input, &geom).unwrap();
        assert_eq!(out.shape(), &[1, 1, 2, 2]);
        assert_eq!(out.data(), &[5.0, 7.0, 13.0, 15.0]);
        let grad_out = Tensor::ones(out.shape());
        let gi = maxpool2d_backward(&grad_out, &idx, input.shape()).unwrap();
        assert_eq!(gi.sum(), 4.0);
        assert_eq!(gi.at(&[0, 0, 1, 1]), 1.0); // position of 5
        assert_eq!(gi.at(&[0, 0, 0, 0]), 0.0);
    }

    #[test]
    fn avgpool_forward_matches_manual() {
        let geom = ConvGeometry::new(2, 2, 2, 2, 2, 0);
        let input = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]).unwrap();
        let out = avgpool2d_forward(&input, &geom).unwrap();
        assert_eq!(out.data(), &[2.5]);
    }

    #[test]
    fn avgpool_backward_spreads_gradient() {
        let geom = ConvGeometry::new(2, 2, 2, 2, 2, 0);
        let grad_out = Tensor::from_vec(vec![4.0], &[1, 1, 1, 1]).unwrap();
        let gi = avgpool2d_backward(&grad_out, 1, 1, &geom).unwrap();
        assert_eq!(gi.data(), &[1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn global_avgpool_via_full_window() {
        let geom = ConvGeometry::new(3, 3, 3, 3, 1, 0);
        let input = Tensor::from_vec((1..=9).map(|x| x as f32).collect(), &[1, 1, 3, 3]).unwrap();
        let out = avgpool2d_forward(&input, &geom).unwrap();
        assert_eq!(out.shape(), &[1, 1, 1, 1]);
        assert_eq!(out.data(), &[5.0]);
    }

    #[test]
    fn nchw_row_round_trip() {
        let mut rng = XorShiftRng::new(34);
        let t = Tensor::rand_normal(&[2, 3, 4, 5], 0.0, 1.0, &mut rng);
        let rows = nchw_to_rows(&t).unwrap();
        let back = rows_to_nchw(&rows, 2, 3, 4, 5);
        assert!(back.all_close(&t, 0.0));
    }
}
