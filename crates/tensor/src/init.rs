//! Weight initializers.
//!
//! The mapped layers in `xbar-nn` initialize the *signed* weight matrix `W`
//! with one of these schemes and then decompose it into the non-negative
//! crossbar matrix `M`, so that all mapping approaches start training from
//! statistically identical signed weights (the comparison in the paper's
//! Fig. 5 depends on this parity).

use crate::rng::XorShiftRng;
use crate::Tensor;

/// Weight-initialization scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Init {
    /// He/Kaiming normal: `N(0, sqrt(2 / fan_in))` — the right scale for
    /// ReLU networks, used by every model in this workspace.
    #[default]
    HeNormal,
    /// Xavier/Glorot uniform: `U(-a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
    XavierUniform,
    /// Uniform in `[-0.5, 0.5]` scaled by `1/sqrt(fan_in)` — the classic
    /// LeCun-style initializer.
    LecunUniform,
    /// All zeros (used for biases).
    Zeros,
}

impl Init {
    /// Samples a tensor of the given shape.
    ///
    /// `fan_in`/`fan_out` are passed explicitly because for convolution
    /// filters they include the kernel area, which the flat shape does not
    /// reveal.
    pub fn sample(
        self,
        shape: &[usize],
        fan_in: usize,
        fan_out: usize,
        rng: &mut XorShiftRng,
    ) -> Tensor {
        match self {
            Init::HeNormal => {
                let std = (2.0 / fan_in.max(1) as f32).sqrt();
                Tensor::rand_normal(shape, 0.0, std, rng)
            }
            Init::XavierUniform => {
                let a = (6.0 / (fan_in + fan_out).max(1) as f32).sqrt();
                Tensor::rand_uniform(shape, -a, a, rng)
            }
            Init::LecunUniform => {
                let a = 1.0 / (fan_in.max(1) as f32).sqrt();
                Tensor::rand_uniform(shape, -a, a, rng)
            }
            Init::Zeros => Tensor::zeros(shape),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn he_normal_has_expected_scale() {
        let mut rng = XorShiftRng::new(41);
        let t = Init::HeNormal.sample(&[100, 100], 100, 100, &mut rng);
        let std = (t.norm_sq() / t.len() as f32).sqrt();
        let expected = (2.0_f32 / 100.0).sqrt();
        assert!(
            (std - expected).abs() / expected < 0.1,
            "std {std} vs {expected}"
        );
    }

    #[test]
    fn xavier_uniform_bounded() {
        let mut rng = XorShiftRng::new(42);
        let a = (6.0_f32 / 200.0).sqrt();
        let t = Init::XavierUniform.sample(&[100, 100], 100, 100, &mut rng);
        assert!(t.min() >= -a && t.max() <= a);
    }

    #[test]
    fn lecun_uniform_bounded() {
        let mut rng = XorShiftRng::new(43);
        let t = Init::LecunUniform.sample(&[64, 64], 64, 64, &mut rng);
        let a = 1.0 / 8.0;
        assert!(t.min() >= -a && t.max() <= a);
    }

    #[test]
    fn zeros_is_zero() {
        let mut rng = XorShiftRng::new(44);
        let t = Init::Zeros.sample(&[10], 10, 10, &mut rng);
        assert_eq!(t.sum(), 0.0);
    }

    #[test]
    fn default_is_he_normal() {
        assert_eq!(Init::default(), Init::HeNormal);
    }

    #[test]
    fn zero_fan_in_does_not_divide_by_zero() {
        let mut rng = XorShiftRng::new(45);
        let t = Init::HeNormal.sample(&[4], 0, 0, &mut rng);
        assert!(t.data().iter().all(|x| x.is_finite()));
    }
}
