//! A minimal, dependency-free JSON value with a *deterministic* renderer.
//!
//! Shared by the GEMM autotune cache ([`crate::tune`]) and, downstream,
//! by the `xbar-bench` sweep journal and result files (re-exported there
//! as `xbar_bench::json`). Both need byte-level comparability: an
//! interrupted-and-resumed sweep has to produce output identical to an
//! uninterrupted one (`cmp` in CI), and a tune-cache file must round-trip
//! byte-identically across load/save. Two properties make that hold:
//!
//! * Rendering is canonical — object keys keep insertion order, numbers
//!   use Rust's shortest-round-trip `f64` formatting, strings escape the
//!   same way every time.
//! * `render(parse(render(v))) == render(v)` — a value read back from a
//!   journal renders byte-identically to the freshly computed one.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A finite number. Non-finite values render as `null`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Keys keep insertion order (deterministic rendering).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Self::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Self::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Self::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Self::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders to a compact canonical string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Self::Null => out.push_str("null"),
            Self::Bool(true) => out.push_str("true"),
            Self::Bool(false) => out.push_str("false"),
            Self::Num(v) => {
                if v.is_finite() {
                    // Shortest round-trip formatting: parse(render(v)) == v,
                    // and equal values always render identically.
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            Self::Str(s) => render_string(s, out),
            Self::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Self::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (the full input must be one value).
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first syntax error.
    pub fn parse(input: &str) -> Result<Json, String> {
        let bytes = input.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(format!("trailing input at byte {}", p.pos));
        }
        Ok(v)
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("invalid number at byte {start}"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number '{text}' at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let rest = std::str::from_utf8(&self.bytes[self.pos..])
                .map_err(|_| "invalid UTF-8 in string".to_string())?;
            let mut chars = rest.char_indices();
            match chars.next() {
                None => return Err("unterminated string".into()),
                Some((_, '"')) => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some((_, '\\')) => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape '{hex}'"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or(format!("invalid code point {code:#x}"))?,
                            );
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?} at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some((i, c)) => {
                    out.push(c);
                    self.pos += i + c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    #[test]
    fn renders_compact_and_ordered() {
        let v = obj(vec![
            ("b", Json::Num(2.0)),
            ("a", Json::Arr(vec![Json::Null, Json::Bool(true)])),
        ]);
        assert_eq!(v.render(), r#"{"b":2,"a":[null,true]}"#);
    }

    #[test]
    fn parse_render_round_trip_is_stable() {
        let v = obj(vec![
            ("sigma", Json::Num(f64::from(0.1f32))),
            ("acc", Json::Num(93.272_461)),
            ("label", Json::Str("ACM \"quoted\"\n".into())),
            ("n", Json::Num(-0.0)),
        ]);
        let once = v.render();
        let twice = Json::parse(&once).unwrap().render();
        assert_eq!(once, twice);
    }

    #[test]
    fn parses_whitespace_and_nesting() {
        let v = Json::parse(" { \"a\" : [ 1 , { \"b\" : \"x\" } ] } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[1]
                .get("b")
                .unwrap()
                .as_str(),
            Some("x")
        );
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Json::parse("{\"a\":").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn escapes_control_characters() {
        let v = Json::Str("a\u{1}\tb".into());
        let rendered = v.render();
        assert_eq!(rendered, "\"a\\u0001\\tb\"");
        assert_eq!(Json::parse(&rendered).unwrap(), v);
    }

    #[test]
    fn non_finite_numbers_render_null() {
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
    }

    #[test]
    fn accessors() {
        let v = obj(vec![("x", Json::Num(3.5))]);
        assert_eq!(v.get("x").unwrap().as_f64(), Some(3.5));
        assert!(v.get("y").is_none());
        assert!(v.as_str().is_none());
    }
}
