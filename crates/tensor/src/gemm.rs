//! GEMM engine primitives shared by every registered routine.
//!
//! One engine computes `C += op(A) · op(B)` for all of `matmul` (NN),
//! `matmul_tn` (TN) and `matmul_nt` (NT). This module owns the numeric
//! building blocks — packing, micro-kernels, the small-problem streaming
//! kernels and the SIMD feature gate — while [`crate::dispatch`] owns the
//! *routing*: which registered routine runs a given problem shape, picked
//! by a static heuristic table or the persistent autotune cache
//! ([`crate::tune`]).
//!
//! The blocked path follows the classic pack-and-tile scheme:
//!
//! * the depth dimension is split into `KC`-deep blocks so one packed B
//!   panel stays resident in L1/L2 across a whole row sweep;
//! * B is packed into `KC × NR` column panels (zero-padded to `NR`), which
//!   confines all transposed/strided access to the packing step;
//! * A blocks are packed to row-major `rows × KC`, again hiding the TN
//!   stride from the inner loop;
//! * the micro-kernel updates an `MRT × NR` register tile, with an
//!   AVX2+FMA variant selected at runtime (scalar fallback elsewhere,
//!   `XBAR_SIMD=0` forces the fallback). The tile height `MRT` is a const
//!   generic: per output element the accumulation is still one sequential
//!   pass over the depth block into a private accumulator, so the tile
//!   shape affects throughput only, never the bitwise result.
//!
//! Sub-threshold problems use simple serial kernels (`ikj` streaming
//! loops; four-way unrolled dot products for NT) where packing overhead
//! would dominate. The small/blocked boundary depends only on the problem
//! size, never on thread count or tuning state, preserving the
//! determinism contract (see `dispatch` for the full argument).

use std::sync::OnceLock;

/// Depth of a packed panel: one panel is `KC × NR` floats (16 KiB).
pub(crate) const KC: usize = 256;
/// Panel width in columns; the micro-kernel's register-tile width.
pub(crate) const NR: usize = 16;
/// Reference micro-kernel register-tile height in rows.
pub(crate) const MR: usize = 4;
/// Rows per parallel chunk — the classic unit of row-range parallelism.
pub(crate) const MC: usize = 64;

/// Problems below this many multiply-adds (or narrower than `NR/2`
/// columns) skip the blocked machinery. This boundary is part of the
/// numeric contract: the small kernels accumulate in a different order
/// than the blocked ones, so the class split must be a fixed function of
/// the problem size alone (never of tuning state).
pub(crate) const SMALL_MACS: usize = 16 * 1024;

/// Whether the AVX2+FMA micro-kernel is in use. False on non-x86_64
/// hosts, on CPUs without AVX2/FMA, or when `XBAR_SIMD=0` is set.
pub fn simd_active() -> bool {
    static ON: OnceLock<bool> = OnceLock::new();
    *ON.get_or_init(|| {
        if std::env::var("XBAR_SIMD").is_ok_and(|v| v.trim() == "0") {
            return false;
        }
        #[cfg(target_arch = "x86_64")]
        {
            std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            false
        }
    })
}

/// Computes `C += op(A) · op(B)` into `od` (row-major `m × n`, normally
/// freshly zeroed by the caller) via the dispatch layer.
///
/// Logical dims are `op(A): (m, k)`, `op(B): (k, n)`. Physically `A` is
/// `(m, k)` when `trans_a` is false and `(k, m)` when true; `B` is
/// `(k, n)` / `(n, k)` likewise. Callers validate shapes; slices must
/// match the implied sizes.
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm(
    trans_a: bool,
    trans_b: bool,
    ad: &[f32],
    bd: &[f32],
    od: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    crate::dispatch::dispatch(trans_a, trans_b, ad, bd, od, m, k, n);
}

/// Packs A rows `i0..i0 + rows`, depth `p0..p0 + kc`, into row-major
/// `rows × kc` (leading dimension `KC`).
#[allow(clippy::too_many_arguments)]
pub(crate) fn pack_a(
    trans_a: bool,
    ad: &[f32],
    pa: &mut [f32],
    i0: usize,
    rows: usize,
    p0: usize,
    kc: usize,
    m: usize,
    k: usize,
) {
    if trans_a {
        // A is (k, m) row-major: column gather per depth element.
        for pp in 0..kc {
            let src = &ad[(p0 + pp) * m..(p0 + pp) * m + m];
            for r in 0..rows {
                pa[r * KC + pp] = src[i0 + r];
            }
        }
    } else {
        for r in 0..rows {
            let src = &ad[(i0 + r) * k + p0..(i0 + r) * k + p0 + kc];
            pa[r * KC..r * KC + kc].copy_from_slice(src);
        }
    }
    let _ = m;
}

/// Packs the `kc × nr` panel of op(B) at `(p0, j0)` into `panel`,
/// zero-padding columns `nr..NR`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn pack_b(
    trans_b: bool,
    bd: &[f32],
    panel: &mut [f32],
    p0: usize,
    kc: usize,
    j0: usize,
    nr: usize,
    k: usize,
    n: usize,
) {
    if trans_b {
        // B is (n, k) row-major: op(B)[p][j] = B[j][p].
        for pp in 0..kc {
            let dst = &mut panel[pp * NR..(pp + 1) * NR];
            for (r, d) in dst[..nr].iter_mut().enumerate() {
                *d = bd[(j0 + r) * k + p0 + pp];
            }
            dst[nr..].fill(0.0);
        }
    } else {
        for pp in 0..kc {
            let src = &bd[(p0 + pp) * n + j0..(p0 + pp) * n + j0 + nr];
            let dst = &mut panel[pp * NR..(pp + 1) * NR];
            dst[..nr].copy_from_slice(src);
            dst[nr..].fill(0.0);
        }
    }
    let _ = k;
}

/// Runs the `MRT`-row micro-kernel over one packed panel, picking the
/// AVX2+FMA variant when `simd` is set.
///
/// `pa` holds the A rows with leading dimension `astride` — `KC` for
/// packed panels, or the matrix's own row stride `k` when an NN-layout
/// A block is fed directly without packing. The element values the
/// kernel reads are identical either way (indexing is the only thing
/// that changes), so skipping the pack is bitwise-invariant. `panel` is
/// one packed `KC × NR` B panel, `oc` the output chunk (`rows × n`).
#[allow(clippy::too_many_arguments)]
pub(crate) fn microkernel<const MRT: usize>(
    pa: &[f32],
    astride: usize,
    panel: &[f32],
    oc: &mut [f32],
    rows: usize,
    kc: usize,
    n: usize,
    j0: usize,
    nr: usize,
    simd: bool,
) {
    #[cfg(target_arch = "x86_64")]
    if simd {
        // SAFETY: `simd` is only true when AVX2+FMA were detected.
        unsafe { kern_avx2::<MRT>(pa, astride, panel, oc, rows, kc, n, j0, nr) };
        return;
    }
    let _ = simd;
    kern_scalar::<MRT>(pa, astride, panel, oc, rows, kc, n, j0, nr);
}

/// Portable micro-kernel: `MRT`-row register tiles over one packed panel.
///
/// Per output element the accumulation is a single in-order pass over
/// `pp = 0..kc` into a private accumulator, followed by one add into the
/// output — independent of `MRT`, which only changes how many rows share
/// a register tile. Every `MRT` therefore produces bitwise-identical
/// results.
#[allow(clippy::too_many_arguments)]
fn kern_scalar<const MRT: usize>(
    pa: &[f32],
    astride: usize,
    panel: &[f32],
    oc: &mut [f32],
    rows: usize,
    kc: usize,
    n: usize,
    j0: usize,
    nr: usize,
) {
    let mut i = 0;
    while i + MRT <= rows {
        let mut acc = [[0f32; NR]; MRT];
        for pp in 0..kc {
            let pb = &panel[pp * NR..pp * NR + NR];
            for (mi, row) in acc.iter_mut().enumerate() {
                let av = pa[(i + mi) * astride + pp];
                for (o, &b) in row.iter_mut().zip(pb) {
                    *o += av * b;
                }
            }
        }
        for (mi, row) in acc.iter().enumerate() {
            let orow = &mut oc[(i + mi) * n + j0..(i + mi) * n + j0 + nr];
            for (o, &v) in orow.iter_mut().zip(row) {
                *o += v;
            }
        }
        i += MRT;
    }
    while i < rows {
        let arow = &pa[i * astride..i * astride + kc];
        let mut acc = [0f32; NR];
        for (pp, &av) in arow.iter().enumerate() {
            let pb = &panel[pp * NR..pp * NR + NR];
            for (o, &b) in acc.iter_mut().zip(pb) {
                *o += av * b;
            }
        }
        let orow = &mut oc[i * n + j0..i * n + j0 + nr];
        for (o, &v) in orow.iter_mut().zip(&acc) {
            *o += v;
        }
        i += 1;
    }
}

/// AVX2+FMA micro-kernel; same tile structure as [`kern_scalar`] with the
/// `NR`-wide accumulators held in two `__m256` registers per row. The
/// per-element FMA sequence over `pp` is identical for every `MRT`, so
/// tile height never changes the bitwise result (it only trades register
/// pressure against FMA-port utilisation: `MRT = 6` keeps 12 accumulator
/// registers live versus 8 at the reference `MRT = 4`).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
#[allow(clippy::needless_range_loop, clippy::too_many_arguments)]
unsafe fn kern_avx2<const MRT: usize>(
    pa: &[f32],
    astride: usize,
    panel: &[f32],
    oc: &mut [f32],
    rows: usize,
    kc: usize,
    n: usize,
    j0: usize,
    nr: usize,
) {
    use std::arch::x86_64::*;
    let mut i = 0;
    while i + MRT <= rows {
        let mut acc: [[__m256; 2]; MRT] = [[_mm256_setzero_ps(); 2]; MRT];
        for pp in 0..kc {
            let pb = panel.as_ptr().add(pp * NR);
            let b0 = _mm256_loadu_ps(pb);
            let b1 = _mm256_loadu_ps(pb.add(8));
            for mi in 0..MRT {
                let av = _mm256_set1_ps(*pa.get_unchecked((i + mi) * astride + pp));
                acc[mi][0] = _mm256_fmadd_ps(av, b0, acc[mi][0]);
                acc[mi][1] = _mm256_fmadd_ps(av, b1, acc[mi][1]);
            }
        }
        for mi in 0..MRT {
            let mut tmp = [0f32; NR];
            _mm256_storeu_ps(tmp.as_mut_ptr(), acc[mi][0]);
            _mm256_storeu_ps(tmp.as_mut_ptr().add(8), acc[mi][1]);
            let orow = &mut oc[(i + mi) * n + j0..(i + mi) * n + j0 + nr];
            for (o, &v) in orow.iter_mut().zip(&tmp) {
                *o += v;
            }
        }
        i += MRT;
    }
    while i < rows {
        let mut a0 = _mm256_setzero_ps();
        let mut a1 = _mm256_setzero_ps();
        for pp in 0..kc {
            let pb = panel.as_ptr().add(pp * NR);
            let av = _mm256_set1_ps(*pa.get_unchecked(i * astride + pp));
            a0 = _mm256_fmadd_ps(av, _mm256_loadu_ps(pb), a0);
            a1 = _mm256_fmadd_ps(av, _mm256_loadu_ps(pb.add(8)), a1);
        }
        let mut tmp = [0f32; NR];
        _mm256_storeu_ps(tmp.as_mut_ptr(), a0);
        _mm256_storeu_ps(tmp.as_mut_ptr().add(8), a1);
        let orow = &mut oc[i * n + j0..i * n + j0 + nr];
        for (o, &v) in orow.iter_mut().zip(&tmp) {
            *o += v;
        }
        i += 1;
    }
}

/// Small-problem NN kernel: `ikj` streaming loop. Deliberately has no
/// zero-value skip so `0 · ±Inf → NaN` propagates exactly as in the
/// reference definition.
pub(crate) fn small_nn(ad: &[f32], bd: &[f32], od: &mut [f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        let arow = &ad[i * k..(i + 1) * k];
        let orow = &mut od[i * n..(i + 1) * n];
        for (p, &aval) in arow.iter().enumerate() {
            let brow = &bd[p * n..(p + 1) * n];
            for (o, &bval) in orow.iter_mut().zip(brow) {
                *o += aval * bval;
            }
        }
    }
}

/// Small-problem TN kernel (`A: (k, m)`): depth-major loop so both B and
/// the touched output row stream contiguously. No zero-skip (see
/// [`small_nn`]).
pub(crate) fn small_tn(ad: &[f32], bd: &[f32], od: &mut [f32], m: usize, k: usize, n: usize) {
    for p in 0..k {
        let arow = &ad[p * m..(p + 1) * m];
        let brow = &bd[p * n..(p + 1) * n];
        for (i, &aval) in arow.iter().enumerate() {
            let orow = &mut od[i * n..(i + 1) * n];
            for (o, &bval) in orow.iter_mut().zip(brow) {
                *o += aval * bval;
            }
        }
    }
}

/// Small-problem NT kernel (`B: (n, k)`): row-dot-row with four
/// independent accumulators to break the serial FP dependency chain that
/// made the scalar-accumulator version ~2× slower than the other kernels.
pub(crate) fn small_nt(ad: &[f32], bd: &[f32], od: &mut [f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        let arow = &ad[i * k..(i + 1) * k];
        for j in 0..n {
            let brow = &bd[j * k..(j + 1) * k];
            let mut acc = [0f32; 4];
            let mut p = 0;
            while p + 4 <= k {
                acc[0] += arow[p] * brow[p];
                acc[1] += arow[p + 1] * brow[p + 1];
                acc[2] += arow[p + 2] * brow[p + 2];
                acc[3] += arow[p + 3] * brow[p + 3];
                p += 4;
            }
            let mut tail = 0f32;
            while p < k {
                tail += arow[p] * brow[p];
                p += 1;
            }
            od[i * n + j] = ((acc[0] + acc[1]) + (acc[2] + acc[3])) + tail;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::XorShiftRng;
    use crate::Tensor;

    /// f64-accumulated reference for accuracy checks.
    fn reference(
        trans_a: bool,
        trans_b: bool,
        a: &Tensor,
        b: &Tensor,
        m: usize,
        k: usize,
        n: usize,
    ) -> Vec<f32> {
        let (ad, bd) = (a.data(), b.data());
        let mut out = vec![0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0f64;
                for p in 0..k {
                    let av = if trans_a {
                        ad[p * m + i]
                    } else {
                        ad[i * k + p]
                    };
                    let bv = if trans_b {
                        bd[j * k + p]
                    } else {
                        bd[p * n + j]
                    };
                    acc += f64::from(av) * f64::from(bv);
                }
                out[i * n + j] = acc as f32;
            }
        }
        out
    }

    fn check(trans_a: bool, trans_b: bool, m: usize, k: usize, n: usize, seed: u64) {
        let mut rng = XorShiftRng::new(seed);
        let a_shape = if trans_a { [k, m] } else { [m, k] };
        let b_shape = if trans_b { [n, k] } else { [k, n] };
        let a = Tensor::rand_normal(&a_shape, 0.0, 1.0, &mut rng);
        let b = Tensor::rand_normal(&b_shape, 0.0, 1.0, &mut rng);
        let mut out = vec![0f32; m * n];
        gemm(trans_a, trans_b, a.data(), b.data(), &mut out, m, k, n);
        let want = reference(trans_a, trans_b, &a, &b, m, k, n);
        let scale = (k as f32).sqrt();
        for (got, want) in out.iter().zip(&want) {
            assert!(
                (got - want).abs() <= 1e-4 * scale,
                "({trans_a},{trans_b}) {m}x{k}x{n}: {got} vs {want}"
            );
        }
    }

    #[test]
    fn blocked_paths_match_f64_reference() {
        // Sizes chosen to exercise the blocked path with full tiles,
        // remainder rows, remainder columns and multiple KC blocks.
        for &(m, k, n) in &[(64, 64, 64), (65, 300, 17), (33, 257, 48), (128, 512, 16)] {
            check(false, false, m, k, n, 0xA0 + m as u64);
            check(true, false, m, k, n, 0xB0 + m as u64);
            check(false, true, m, k, n, 0xC0 + m as u64);
        }
    }

    #[test]
    fn small_paths_match_f64_reference() {
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 7), (16, 16, 7), (2, 300, 3)] {
            check(false, false, m, k, n, 0xD0 + m as u64);
            check(true, false, m, k, n, 0xE0 + m as u64);
            check(false, true, m, k, n, 0xF0 + m as u64);
        }
    }

    #[test]
    fn degenerate_dims_leave_output_zeroed() {
        let a = vec![1.0f32; 12];
        let b = vec![1.0f32; 12];
        let mut out = vec![0f32; 12];
        gemm(false, false, &a, &b, &mut out, 3, 0, 4);
        assert!(out.iter().all(|&v| v == 0.0));
        gemm(false, false, &[], &b, &mut out[..0], 0, 3, 4);
        gemm(false, false, &a, &[], &mut out[..0], 4, 3, 0);
    }

    #[test]
    fn microkernel_tile_height_is_bitwise_invariant() {
        // The register-tile height MRT only regroups rows; each output
        // element's accumulation order is unchanged, so every MRT must
        // agree bit for bit (this is what licenses the packed_wide and
        // double_buffered routines).
        let (rows, kc, n) = (13, 96, 23);
        let mut rng = XorShiftRng::new(0x5151);
        let a = Tensor::rand_normal(&[rows, KC], 0.0, 1.0, &mut rng);
        let b = Tensor::rand_normal(&[KC, NR], 0.0, 1.0, &mut rng);
        let mut panel = [0f32; KC * NR];
        pack_b(false, b.data(), &mut panel, 0, kc, 0, NR.min(n), KC, NR);
        let run = |simd: bool, wide: bool| {
            let mut oc = vec![0f32; rows * n];
            if wide {
                microkernel::<6>(
                    a.data(),
                    KC,
                    &panel,
                    &mut oc,
                    rows,
                    kc,
                    n,
                    0,
                    NR.min(n),
                    simd,
                );
            } else {
                microkernel::<4>(
                    a.data(),
                    KC,
                    &panel,
                    &mut oc,
                    rows,
                    kc,
                    n,
                    0,
                    NR.min(n),
                    simd,
                );
            }
            oc
        };
        for simd in [false, simd_active()] {
            let narrow = run(simd, false);
            let wide = run(simd, true);
            for (x, y) in narrow.iter().zip(&wide) {
                assert_eq!(x.to_bits(), y.to_bits(), "simd={simd}");
            }
        }
    }

    #[test]
    fn inf_times_zero_propagates_nan() {
        // k=1: A column of zeros, B row containing an Inf. The reference
        // result is NaN in the Inf column; the old zero-skip kernels
        // returned 0 there.
        let m = 3;
        let n = 4;
        let a = vec![0f32; m];
        let mut b = vec![1f32; n];
        b[2] = f32::INFINITY;
        let mut out = vec![0f32; m * n];
        gemm(false, false, &a, &b, &mut out, m, 1, n);
        for i in 0..m {
            assert!(out[i * n + 2].is_nan(), "0 * Inf must produce NaN");
            assert_eq!(out[i * n], 0.0);
        }
    }
}
