//! Cache-blocked GEMM engine shared by every matmul variant.
//!
//! One engine computes `C = op(A) · op(B)` for all of `matmul` (NN),
//! `matmul_tn` (TN) and `matmul_nt` (NT). The blocked path follows the
//! classic pack-and-tile scheme:
//!
//! * the depth dimension is split into `KC`-deep blocks so one packed B
//!   panel stays resident in L1/L2 across a whole row sweep;
//! * B is packed into `KC × NR` column panels (zero-padded to `NR`), which
//!   confines all transposed/strided access to the packing step;
//! * A blocks are packed to row-major `rows × KC`, again hiding the TN
//!   stride from the inner loop;
//! * the micro-kernel updates an `MR × NR` register tile, with an
//!   AVX2+FMA variant selected at runtime (scalar fallback elsewhere,
//!   `XBAR_SIMD=0` forces the fallback).
//!
//! Row-range parallelism: output rows are split into fixed-size row
//! chunks handed to [`backend::parallel_chunks_mut`] — `MC` rows for
//! NN/NT, and a finer work-balanced granularity for TN (whose packing
//! step is a strided column gather; see [`chunk_rows`]). Sub-threshold TN
//! problems run the blocked loop as a single chunk, bypassing pool
//! dispatch entirely. Chunk boundaries depend only on the problem size,
//! each output element lives in exactly one chunk, and every chunk runs
//! the identical depth-block loop in increasing order, so per-element
//! accumulation order — and therefore the bitwise result — is independent
//! of both the thread count and the chunk granularity (each output row's
//! dot products accumulate row-locally).
//!
//! Sub-threshold problems use simple serial kernels (`ikj` streaming
//! loops; four-way unrolled dot products for NT) where packing overhead
//! would dominate. The path choice depends only on the problem size,
//! never on thread count, preserving the determinism contract.

use crate::{backend, scratch};
use std::sync::OnceLock;

/// Depth of a packed panel: one panel is `KC × NR` floats (16 KiB).
pub(crate) const KC: usize = 256;
/// Panel width in columns; the micro-kernel's register-tile width.
pub(crate) const NR: usize = 16;
/// Micro-kernel register-tile height in rows.
pub(crate) const MR: usize = 4;
/// Rows per parallel chunk — the unit of row-range parallelism.
pub(crate) const MC: usize = 64;

/// Problems below this many multiply-adds (or narrower than `NR/2`
/// columns) skip the blocked machinery.
const SMALL_MACS: usize = 16 * 1024;

/// Whether the AVX2+FMA micro-kernel is in use. False on non-x86_64
/// hosts, on CPUs without AVX2/FMA, or when `XBAR_SIMD=0` is set.
pub fn simd_active() -> bool {
    static ON: OnceLock<bool> = OnceLock::new();
    *ON.get_or_init(|| {
        if std::env::var("XBAR_SIMD").is_ok_and(|v| v.trim() == "0") {
            return false;
        }
        #[cfg(target_arch = "x86_64")]
        {
            std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            false
        }
    })
}

/// Computes `C += op(A) · op(B)` into `od` (row-major `m × n`, normally
/// freshly zeroed by the caller).
///
/// Logical dims are `op(A): (m, k)`, `op(B): (k, n)`. Physically `A` is
/// `(m, k)` when `trans_a` is false and `(k, m)` when true; `B` is
/// `(k, n)` / `(n, k)` likewise. Callers validate shapes; slices must
/// match the implied sizes.
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm(
    trans_a: bool,
    trans_b: bool,
    ad: &[f32],
    bd: &[f32],
    od: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    if n < NR / 2 || m * k * n < SMALL_MACS {
        match (trans_a, trans_b) {
            (false, false) => small_nn(ad, bd, od, m, k, n),
            (true, false) => small_tn(ad, bd, od, m, k, n),
            (false, true) => small_nt(ad, bd, od, m, k, n),
            (true, true) => unreachable!("no TT matmul variant exists"),
        }
        return;
    }
    let simd = simd_active();
    let rows_per_chunk = chunk_rows(trans_a, m, k, n);
    backend::parallel_chunks_mut(od, rows_per_chunk * n, |ci, oc| {
        gemm_chunk(
            trans_a,
            trans_b,
            ad,
            bd,
            oc,
            ci * rows_per_chunk,
            k,
            m,
            n,
            simd,
        );
    });
}

/// Rows per parallel chunk, a function of the problem size only (never
/// the thread count — determinism contract rule 1).
///
/// NN/NT split at `MC` rows. TN packing is a strided column gather whose
/// cost scales with the chunk's row count, so `MC`-row chunks leave
/// mid-size TN shapes (e.g. the `(hidden, batch)ᵀ · (batch, in)` weight
/// gradients) with a single chunk and zero parallelism; TN instead aims
/// for ~`2^20` multiply-adds per chunk — coarse enough that per-job queue
/// traffic stays below 1% of a chunk's compute, fine enough to keep every
/// lane busy on the shapes that clear the threshold. Below `2^21` total
/// multiply-adds a TN problem stays a single chunk —
/// [`backend::parallel_chunks_mut`] then runs it inline, so pool dispatch
/// can never make a small TN product slower than serial.
fn chunk_rows(trans_a: bool, m: usize, k: usize, n: usize) -> usize {
    if !trans_a {
        return MC;
    }
    const TN_PARALLEL_MIN_MACS: usize = 1 << 21;
    if m * k * n < TN_PARALLEL_MIN_MACS {
        return m.max(1);
    }
    const TN_CHUNK_MACS: usize = 1 << 20;
    let per_row = (k * n).max(1);
    let rows = (TN_CHUNK_MACS / per_row).max(1).div_ceil(MR) * MR;
    rows.clamp(MR, MC)
}

/// Blocked GEMM over one chunk of `oc.len() / n` consecutive output rows
/// starting at global row `i0`.
#[allow(clippy::too_many_arguments)]
fn gemm_chunk(
    trans_a: bool,
    trans_b: bool,
    ad: &[f32],
    bd: &[f32],
    oc: &mut [f32],
    i0: usize,
    k: usize,
    m: usize,
    n: usize,
    simd: bool,
) {
    let rows = oc.len() / n;
    // Pack buffer comes from the thread-local scratch pool: steady-state
    // training steps repeat the same shapes, so after warmup this is
    // allocation-free.
    let mut pa = scratch::take_filled(rows * KC, 0.0);
    let mut panel = [0f32; KC * NR];
    let mut p0 = 0;
    while p0 < k {
        let kc = KC.min(k - p0);
        pack_a(trans_a, ad, &mut pa, i0, rows, p0, kc, m, k);
        let mut j0 = 0;
        while j0 < n {
            let nr = NR.min(n - j0);
            pack_b(trans_b, bd, &mut panel, p0, kc, j0, nr, k, n);
            #[cfg(target_arch = "x86_64")]
            if simd {
                // SAFETY: `simd` is only true when AVX2+FMA were detected.
                unsafe { kern_avx2(&pa, &panel, oc, rows, kc, n, j0, nr) };
                j0 += NR;
                continue;
            }
            let _ = simd;
            kern_scalar(&pa, &panel, oc, rows, kc, n, j0, nr);
            j0 += NR;
        }
        p0 += KC;
    }
    scratch::give(pa);
}

/// Packs A rows `i0..i0 + rows`, depth `p0..p0 + kc`, into row-major
/// `rows × kc` (leading dimension `kc`).
#[allow(clippy::too_many_arguments)]
fn pack_a(
    trans_a: bool,
    ad: &[f32],
    pa: &mut [f32],
    i0: usize,
    rows: usize,
    p0: usize,
    kc: usize,
    m: usize,
    k: usize,
) {
    if trans_a {
        // A is (k, m) row-major: column gather per depth element.
        for pp in 0..kc {
            let src = &ad[(p0 + pp) * m..(p0 + pp) * m + m];
            for r in 0..rows {
                pa[r * KC + pp] = src[i0 + r];
            }
        }
    } else {
        for r in 0..rows {
            let src = &ad[(i0 + r) * k + p0..(i0 + r) * k + p0 + kc];
            pa[r * KC..r * KC + kc].copy_from_slice(src);
        }
    }
}

/// Packs the `kc × nr` panel of op(B) at `(p0, j0)` into `panel`,
/// zero-padding columns `nr..NR`.
#[allow(clippy::too_many_arguments)]
fn pack_b(
    trans_b: bool,
    bd: &[f32],
    panel: &mut [f32],
    p0: usize,
    kc: usize,
    j0: usize,
    nr: usize,
    k: usize,
    n: usize,
) {
    if trans_b {
        // B is (n, k) row-major: op(B)[p][j] = B[j][p].
        for pp in 0..kc {
            let dst = &mut panel[pp * NR..(pp + 1) * NR];
            for (r, d) in dst[..nr].iter_mut().enumerate() {
                *d = bd[(j0 + r) * k + p0 + pp];
            }
            dst[nr..].fill(0.0);
        }
    } else {
        for pp in 0..kc {
            let src = &bd[(p0 + pp) * n + j0..(p0 + pp) * n + j0 + nr];
            let dst = &mut panel[pp * NR..(pp + 1) * NR];
            dst[..nr].copy_from_slice(src);
            dst[nr..].fill(0.0);
        }
    }
}

/// Portable micro-kernel: `MR`-row register tiles over one packed panel.
/// `pa` is packed A (`rows` rows, leading dimension `KC`), `oc` the output
/// chunk (`rows × n`).
#[allow(clippy::too_many_arguments)]
fn kern_scalar(
    pa: &[f32],
    panel: &[f32],
    oc: &mut [f32],
    rows: usize,
    kc: usize,
    n: usize,
    j0: usize,
    nr: usize,
) {
    let mut i = 0;
    while i + MR <= rows {
        let mut acc = [[0f32; NR]; MR];
        for pp in 0..kc {
            let pb = &panel[pp * NR..pp * NR + NR];
            for (mi, row) in acc.iter_mut().enumerate() {
                let av = pa[(i + mi) * KC + pp];
                for (o, &b) in row.iter_mut().zip(pb) {
                    *o += av * b;
                }
            }
        }
        for (mi, row) in acc.iter().enumerate() {
            let orow = &mut oc[(i + mi) * n + j0..(i + mi) * n + j0 + nr];
            for (o, &v) in orow.iter_mut().zip(row) {
                *o += v;
            }
        }
        i += MR;
    }
    while i < rows {
        let arow = &pa[i * KC..i * KC + kc];
        let mut acc = [0f32; NR];
        for (pp, &av) in arow.iter().enumerate() {
            let pb = &panel[pp * NR..pp * NR + NR];
            for (o, &b) in acc.iter_mut().zip(pb) {
                *o += av * b;
            }
        }
        let orow = &mut oc[i * n + j0..i * n + j0 + nr];
        for (o, &v) in orow.iter_mut().zip(&acc) {
            *o += v;
        }
        i += 1;
    }
}

/// AVX2+FMA micro-kernel; same tile structure as [`kern_scalar`] with the
/// `NR`-wide accumulators held in two `__m256` registers per row.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
#[allow(clippy::needless_range_loop, clippy::too_many_arguments)]
unsafe fn kern_avx2(
    pa: &[f32],
    panel: &[f32],
    oc: &mut [f32],
    rows: usize,
    kc: usize,
    n: usize,
    j0: usize,
    nr: usize,
) {
    use std::arch::x86_64::*;
    let mut i = 0;
    while i + MR <= rows {
        let mut acc: [[__m256; 2]; MR] = [[_mm256_setzero_ps(); 2]; MR];
        for pp in 0..kc {
            let pb = panel.as_ptr().add(pp * NR);
            let b0 = _mm256_loadu_ps(pb);
            let b1 = _mm256_loadu_ps(pb.add(8));
            for mi in 0..MR {
                let av = _mm256_set1_ps(*pa.get_unchecked((i + mi) * KC + pp));
                acc[mi][0] = _mm256_fmadd_ps(av, b0, acc[mi][0]);
                acc[mi][1] = _mm256_fmadd_ps(av, b1, acc[mi][1]);
            }
        }
        for mi in 0..MR {
            let mut tmp = [0f32; NR];
            _mm256_storeu_ps(tmp.as_mut_ptr(), acc[mi][0]);
            _mm256_storeu_ps(tmp.as_mut_ptr().add(8), acc[mi][1]);
            let orow = &mut oc[(i + mi) * n + j0..(i + mi) * n + j0 + nr];
            for (o, &v) in orow.iter_mut().zip(&tmp) {
                *o += v;
            }
        }
        i += MR;
    }
    while i < rows {
        let mut a0 = _mm256_setzero_ps();
        let mut a1 = _mm256_setzero_ps();
        for pp in 0..kc {
            let pb = panel.as_ptr().add(pp * NR);
            let av = _mm256_set1_ps(*pa.get_unchecked(i * KC + pp));
            a0 = _mm256_fmadd_ps(av, _mm256_loadu_ps(pb), a0);
            a1 = _mm256_fmadd_ps(av, _mm256_loadu_ps(pb.add(8)), a1);
        }
        let mut tmp = [0f32; NR];
        _mm256_storeu_ps(tmp.as_mut_ptr(), a0);
        _mm256_storeu_ps(tmp.as_mut_ptr().add(8), a1);
        let orow = &mut oc[i * n + j0..i * n + j0 + nr];
        for (o, &v) in orow.iter_mut().zip(&tmp) {
            *o += v;
        }
        i += 1;
    }
}

/// Small-problem NN kernel: `ikj` streaming loop. Deliberately has no
/// zero-value skip so `0 · ±Inf → NaN` propagates exactly as in the
/// reference definition.
fn small_nn(ad: &[f32], bd: &[f32], od: &mut [f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        let arow = &ad[i * k..(i + 1) * k];
        let orow = &mut od[i * n..(i + 1) * n];
        for (p, &aval) in arow.iter().enumerate() {
            let brow = &bd[p * n..(p + 1) * n];
            for (o, &bval) in orow.iter_mut().zip(brow) {
                *o += aval * bval;
            }
        }
    }
}

/// Small-problem TN kernel (`A: (k, m)`): depth-major loop so both B and
/// the touched output row stream contiguously. No zero-skip (see
/// [`small_nn`]).
fn small_tn(ad: &[f32], bd: &[f32], od: &mut [f32], m: usize, k: usize, n: usize) {
    for p in 0..k {
        let arow = &ad[p * m..(p + 1) * m];
        let brow = &bd[p * n..(p + 1) * n];
        for (i, &aval) in arow.iter().enumerate() {
            let orow = &mut od[i * n..(i + 1) * n];
            for (o, &bval) in orow.iter_mut().zip(brow) {
                *o += aval * bval;
            }
        }
    }
}

/// Small-problem NT kernel (`B: (n, k)`): row-dot-row with four
/// independent accumulators to break the serial FP dependency chain that
/// made the scalar-accumulator version ~2× slower than the other kernels.
fn small_nt(ad: &[f32], bd: &[f32], od: &mut [f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        let arow = &ad[i * k..(i + 1) * k];
        for j in 0..n {
            let brow = &bd[j * k..(j + 1) * k];
            let mut acc = [0f32; 4];
            let mut p = 0;
            while p + 4 <= k {
                acc[0] += arow[p] * brow[p];
                acc[1] += arow[p + 1] * brow[p + 1];
                acc[2] += arow[p + 2] * brow[p + 2];
                acc[3] += arow[p + 3] * brow[p + 3];
                p += 4;
            }
            let mut tail = 0f32;
            while p < k {
                tail += arow[p] * brow[p];
                p += 1;
            }
            od[i * n + j] = ((acc[0] + acc[1]) + (acc[2] + acc[3])) + tail;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::XorShiftRng;
    use crate::Tensor;

    /// f64-accumulated reference for accuracy checks.
    fn reference(
        trans_a: bool,
        trans_b: bool,
        a: &Tensor,
        b: &Tensor,
        m: usize,
        k: usize,
        n: usize,
    ) -> Vec<f32> {
        let (ad, bd) = (a.data(), b.data());
        let mut out = vec![0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0f64;
                for p in 0..k {
                    let av = if trans_a {
                        ad[p * m + i]
                    } else {
                        ad[i * k + p]
                    };
                    let bv = if trans_b {
                        bd[j * k + p]
                    } else {
                        bd[p * n + j]
                    };
                    acc += f64::from(av) * f64::from(bv);
                }
                out[i * n + j] = acc as f32;
            }
        }
        out
    }

    fn check(trans_a: bool, trans_b: bool, m: usize, k: usize, n: usize, seed: u64) {
        let mut rng = XorShiftRng::new(seed);
        let a_shape = if trans_a { [k, m] } else { [m, k] };
        let b_shape = if trans_b { [n, k] } else { [k, n] };
        let a = Tensor::rand_normal(&a_shape, 0.0, 1.0, &mut rng);
        let b = Tensor::rand_normal(&b_shape, 0.0, 1.0, &mut rng);
        let mut out = vec![0f32; m * n];
        gemm(trans_a, trans_b, a.data(), b.data(), &mut out, m, k, n);
        let want = reference(trans_a, trans_b, &a, &b, m, k, n);
        let scale = (k as f32).sqrt();
        for (got, want) in out.iter().zip(&want) {
            assert!(
                (got - want).abs() <= 1e-4 * scale,
                "({trans_a},{trans_b}) {m}x{k}x{n}: {got} vs {want}"
            );
        }
    }

    #[test]
    fn blocked_paths_match_f64_reference() {
        // Sizes chosen to exercise the blocked path with full tiles,
        // remainder rows, remainder columns and multiple KC blocks.
        for &(m, k, n) in &[(64, 64, 64), (65, 300, 17), (33, 257, 48), (128, 512, 16)] {
            check(false, false, m, k, n, 0xA0 + m as u64);
            check(true, false, m, k, n, 0xB0 + m as u64);
            check(false, true, m, k, n, 0xC0 + m as u64);
        }
    }

    #[test]
    fn small_paths_match_f64_reference() {
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 7), (16, 16, 7), (2, 300, 3)] {
            check(false, false, m, k, n, 0xD0 + m as u64);
            check(true, false, m, k, n, 0xE0 + m as u64);
            check(false, true, m, k, n, 0xF0 + m as u64);
        }
    }

    #[test]
    fn degenerate_dims_leave_output_zeroed() {
        let a = vec![1.0f32; 12];
        let b = vec![1.0f32; 12];
        let mut out = vec![0f32; 12];
        gemm(false, false, &a, &b, &mut out, 3, 0, 4);
        assert!(out.iter().all(|&v| v == 0.0));
        gemm(false, false, &[], &b, &mut out[..0], 0, 3, 4);
        gemm(false, false, &a, &[], &mut out[..0], 4, 3, 0);
    }

    #[test]
    fn tn_chunk_rows_depend_only_on_problem_size() {
        // Below the parallel threshold: one chunk covering every row.
        assert_eq!(chunk_rows(true, 64, 64, 64), 64);
        // Above it: work-balanced, MR-aligned, clamped to [MR, MC].
        let r = chunk_rows(true, 256, 256, 256);
        assert!(r.is_multiple_of(MR) && (MR..=MC).contains(&r));
        assert!(r < 256, "large TN must split into multiple chunks");
        // NN/NT keep the MC granularity.
        assert_eq!(chunk_rows(false, 256, 256, 256), MC);
    }

    #[test]
    fn tn_multi_chunk_split_is_bitwise_identical_to_one_chunk() {
        // 160x160x160 = 4.1M MACs crosses the TN parallel threshold, so
        // gemm() runs multiple row chunks; the single-chunk execution of
        // the same blocked loop must agree bit for bit (per-row
        // accumulation is chunk-grouping independent).
        let (m, k, n) = (160, 160, 160);
        let mut rng = XorShiftRng::new(0x7171);
        let a = Tensor::rand_normal(&[k, m], 0.0, 1.0, &mut rng);
        let b = Tensor::rand_normal(&[k, n], 0.0, 1.0, &mut rng);
        assert!(chunk_rows(true, m, k, n) < m, "test must exercise a split");
        let mut got = vec![0f32; m * n];
        gemm(true, false, a.data(), b.data(), &mut got, m, k, n);
        let mut want = vec![0f32; m * n];
        gemm_chunk(
            true,
            false,
            a.data(),
            b.data(),
            &mut want,
            0,
            k,
            m,
            n,
            simd_active(),
        );
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.to_bits(), w.to_bits());
        }
    }

    #[test]
    fn inf_times_zero_propagates_nan() {
        // k=1: A column of zeros, B row containing an Inf. The reference
        // result is NaN in the Inf column; the old zero-skip kernels
        // returned 0 there.
        let m = 3;
        let n = 4;
        let a = vec![0f32; m];
        let mut b = vec![1f32; n];
        b[2] = f32::INFINITY;
        let mut out = vec![0f32; m * n];
        gemm(false, false, &a, &b, &mut out, m, 1, n);
        for i in 0..m {
            assert!(out[i * n + 2].is_nan(), "0 * Inf must produce NaN");
            assert_eq!(out[i * n], 0.0);
        }
    }
}
