//! Autotuned GEMM kernel dispatch: routine registry, per-shape selector,
//! and the glue to the persistent tune cache ([`crate::tune`]).
//!
//! Every matmul variant enters through [`dispatch`], which picks one of
//! the registered [`Routine`]s for the problem shape. Selection happens
//! in three tiers:
//!
//! 1. **Class split** — sub-threshold problems (`n < NR/2` or fewer than
//!    `SMALL_MACS` multiply-adds) always run the streaming small kernels.
//!    This boundary is a fixed function of the problem size and is *not*
//!    tunable: the small kernels accumulate in a different order than the
//!    blocked family, so crossing it would change bits.
//! 2. **Tune cache** — blocked problems look up their [`ShapeClass`] key
//!    (transpose kind, pow2-bucketed dims, thread count, SIMD flag) in
//!    the in-memory cache seeded from `XBAR_TUNE_CACHE`. A miss measures
//!    every candidate routine on synthetic data of the same size and
//!    records the winner (persisted when a cache path is set).
//! 3. **Static table** — with `XBAR_AUTOTUNE=0`, or when the cache file
//!    failed to load (typed error, never a panic), a heuristic table
//!    picks the routine instead.
//!
//! **Determinism.** Autotuning changes *which* routine runs, never the
//! result. All blocked-family routines are bitwise-identical to each
//! other because three knobs they vary are bitwise-invariant:
//!
//! * *packing strategy* is pure data movement — per-chunk panels, a
//!   shared per-KC-block buffer, an explicit A-transpose, or reading A
//!   in place through a runtime stride all feed the micro-kernel the
//!   same values in the same order;
//! * *row-chunk granularity* regroups rows across pool jobs, and every
//!   output element's dot product accumulates row-locally;
//! * *register-tile height* (`MRT`) regroups rows within a chunk; per
//!   element the depth loop is one sequential FMA chain regardless.
//!
//! The serial≡parallel contract is likewise preserved: chunk boundaries
//! depend only on the problem size, and the selector key includes the
//! thread count only so a host tunes per configuration — within one
//! process, serial and parallel runs resolve to the same key, and even a
//! different routine choice could not change bits.

use crate::gemm::{
    microkernel, pack_a, pack_b, simd_active, small_nn, small_nt, small_tn, KC, MC, MR, NR,
    SMALL_MACS,
};
use crate::{backend, scratch, tune};
use std::time::Instant;

/// Register-tile height used by the wide blocked routines: 12 of the 16
/// AVX2 `ymm` registers hold accumulators (vs 8 at the reference
/// `MR = 4`), trading register pressure for FMA-port utilisation.
const WIDE_MR: usize = 6;

/// Transpose kind of a GEMM problem. `TT` does not exist in this
/// workspace (no matmul variant produces it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kind {
    /// `C += A · B`
    Nn,
    /// `C += Aᵀ · B` (weight-gradient shape)
    Tn,
    /// `C += A · Bᵀ` (input-gradient shape)
    Nt,
}

impl Kind {
    /// Short tag used in shape-class keys: `"nn"` / `"tn"` / `"nt"`.
    pub fn tag(&self) -> &'static str {
        match self {
            Kind::Nn => "nn",
            Kind::Tn => "tn",
            Kind::Nt => "nt",
        }
    }
}

/// One GEMM problem: logical dims `op(A): (m, k)`, `op(B): (k, n)` plus
/// the operand transpose flags.
#[derive(Debug, Clone, Copy)]
pub struct Problem {
    /// A is stored `(k, m)` row-major and used transposed.
    pub trans_a: bool,
    /// B is stored `(n, k)` row-major and used transposed.
    pub trans_b: bool,
    /// Output rows.
    pub m: usize,
    /// Depth (dot-product length).
    pub k: usize,
    /// Output columns.
    pub n: usize,
}

impl Problem {
    /// Builds a problem description.
    pub fn new(trans_a: bool, trans_b: bool, m: usize, k: usize, n: usize) -> Self {
        Self {
            trans_a,
            trans_b,
            m,
            k,
            n,
        }
    }

    /// The transpose kind.
    pub fn kind(&self) -> Kind {
        match (self.trans_a, self.trans_b) {
            (false, false) => Kind::Nn,
            (true, false) => Kind::Tn,
            (false, true) => Kind::Nt,
            (true, true) => unreachable!("no TT matmul variant exists"),
        }
    }

    /// Total multiply-adds.
    pub fn macs(&self) -> usize {
        self.m * self.k * self.n
    }

    /// Whether this problem belongs to the small (streaming-kernel)
    /// class. Fixed function of the problem size — part of the numeric
    /// contract, never tuned.
    pub fn small(&self) -> bool {
        self.n < NR / 2 || self.macs() < SMALL_MACS
    }
}

/// A named GEMM routine. All routines compute `C += op(A) · op(B)`;
/// routines supporting the same problem are bitwise-identical on it
/// (asserted by `tests/integration_dispatch.rs`).
pub trait Routine: Sync {
    /// Stable registry name (appears in tune-cache files and bench JSON).
    fn name(&self) -> &'static str;
    /// Whether this routine can run `p`. Supports-sets never cross the
    /// small/blocked class boundary.
    fn supports(&self, p: &Problem) -> bool;
    /// Runs the routine. `od` is the row-major `m × n` accumulator.
    fn run(&self, p: &Problem, ad: &[f32], bd: &[f32], od: &mut [f32]);
}

/// Streaming single-chunk kernel for sub-threshold NN/TN problems; runs
/// inline with no packing or pool dispatch.
struct SingleChunk;

impl Routine for SingleChunk {
    fn name(&self) -> &'static str {
        "single_chunk"
    }
    fn supports(&self, p: &Problem) -> bool {
        p.small() && p.kind() != Kind::Nt
    }
    fn run(&self, p: &Problem, ad: &[f32], bd: &[f32], od: &mut [f32]) {
        match p.kind() {
            Kind::Nn => small_nn(ad, bd, od, p.m, p.k, p.n),
            Kind::Tn => small_tn(ad, bd, od, p.m, p.k, p.n),
            Kind::Nt => unreachable!("single_chunk does not support NT"),
        }
    }
}

/// Four-way unrolled row-dot-row kernel for sub-threshold NT problems.
struct SmallNtUnrolled;

impl Routine for SmallNtUnrolled {
    fn name(&self) -> &'static str {
        "small_nt_unrolled"
    }
    fn supports(&self, p: &Problem) -> bool {
        p.small() && p.kind() == Kind::Nt
    }
    fn run(&self, p: &Problem, ad: &[f32], bd: &[f32], od: &mut [f32]) {
        small_nt(ad, bd, od, p.m, p.k, p.n);
    }
}

/// The reference pack-and-tile routine: per-chunk A/B packing, `MR = 4`
/// register tiles, classic chunk granularity. Reproduces the
/// pre-dispatch engine exactly.
struct PackedBlocked;

impl Routine for PackedBlocked {
    fn name(&self) -> &'static str {
        "packed_blocked"
    }
    fn supports(&self, p: &Problem) -> bool {
        !p.small()
    }
    fn run(&self, p: &Problem, ad: &[f32], bd: &[f32], od: &mut [f32]) {
        blocked_run::<MR>(p, ad, bd, od);
    }
}

/// Same structure as [`PackedBlocked`] with a 6-row register tile.
struct PackedWide;

impl Routine for PackedWide {
    fn name(&self) -> &'static str {
        "packed_wide"
    }
    fn supports(&self, p: &Problem) -> bool {
        !p.small()
    }
    fn run(&self, p: &Problem, ad: &[f32], bd: &[f32], od: &mut [f32]) {
        blocked_run::<WIDE_MR>(p, ad, bd, od);
    }
}

/// Shared-B double-buffered routine: each `KC` block of B is packed
/// exactly once into a shared buffer (instead of once per row chunk),
/// and the next block is packed into the inactive buffer before the
/// current block's row chunks are dispatched.
struct DoubleBuffered;

impl Routine for DoubleBuffered {
    fn name(&self) -> &'static str {
        "double_buffered"
    }
    fn supports(&self, p: &Problem) -> bool {
        !p.small() && !p.trans_a
    }
    fn run(&self, p: &Problem, ad: &[f32], bd: &[f32], od: &mut [f32]) {
        shared_b_run::<MR>(p.trans_b, ad, bd, od, p.m, p.k, p.n);
    }
}

/// TN-specialized routine: cache-blocked transpose of A into scratch,
/// then the shared-B NN path. Replaces the per-chunk strided column
/// gather (and the hand-tuned TN chunk constants) with one contiguous
/// pass.
struct TnPacked;

impl Routine for TnPacked {
    fn name(&self) -> &'static str {
        "tn_packed"
    }
    fn supports(&self, p: &Problem) -> bool {
        !p.small() && p.trans_a
    }
    fn run(&self, p: &Problem, ad: &[f32], bd: &[f32], od: &mut [f32]) {
        let mut at = scratch::take_filled(p.m * p.k, 0.0);
        transpose_into(ad, &mut at, p.k, p.m);
        // The transpose left A in NN row-major layout, so the kernel can
        // read it directly — packing it again would be a second copy.
        direct_a_run::<MR>(false, &at, bd, od, p.k, p.n);
        scratch::give(at);
    }
}

/// Zero-pack-A routine: shared per-`KC`-block B packing like
/// [`DoubleBuffered`], but the micro-kernel reads NN-layout A directly
/// (row stride `k`) instead of copying row panels first. The kernel
/// consumes the same values in the same order, so skipping the pack is
/// bitwise-invariant; it wins on tall-skinny problems where the A copy
/// rivals the compute.
struct DirectA;

impl Routine for DirectA {
    fn name(&self) -> &'static str {
        "direct_a"
    }
    fn supports(&self, p: &Problem) -> bool {
        !p.small() && !p.trans_a
    }
    fn run(&self, p: &Problem, ad: &[f32], bd: &[f32], od: &mut [f32]) {
        direct_a_run::<MR>(p.trans_b, ad, bd, od, p.k, p.n);
    }
}

/// The routine registry, in deterministic tie-break order (earlier wins
/// a measurement tie).
pub fn routines() -> &'static [&'static dyn Routine] {
    static REGISTRY: [&dyn Routine; 7] = [
        &SingleChunk,
        &SmallNtUnrolled,
        &PackedBlocked,
        &PackedWide,
        &DoubleBuffered,
        &TnPacked,
        &DirectA,
    ];
    &REGISTRY
}

/// Looks up a registered routine by name.
pub fn routine_by_name(name: &str) -> Option<&'static dyn Routine> {
    routines().iter().copied().find(|r| r.name() == name)
}

/// Names of the routines that support the given problem, in registry
/// order.
pub fn candidate_names(
    trans_a: bool,
    trans_b: bool,
    m: usize,
    k: usize,
    n: usize,
) -> Vec<&'static str> {
    let p = Problem::new(trans_a, trans_b, m, k, n);
    routines()
        .iter()
        .filter(|r| r.supports(&p))
        .map(|r| r.name())
        .collect()
}

/// Runs one named routine directly, bypassing the selector (test hook).
/// Returns `false` if the routine is unknown or does not support the
/// problem. Zero-sized problems are a successful no-op.
#[allow(clippy::too_many_arguments)]
pub fn run_routine(
    name: &str,
    trans_a: bool,
    trans_b: bool,
    ad: &[f32],
    bd: &[f32],
    od: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) -> bool {
    let Some(r) = routine_by_name(name) else {
        return false;
    };
    let p = Problem::new(trans_a, trans_b, m, k, n);
    if m == 0 || k == 0 || n == 0 {
        return true;
    }
    if !r.supports(&p) {
        return false;
    }
    r.run(&p, ad, bd, od);
    true
}

// ---------------------------------------------------------------------------
// Shape classes and selection
// ---------------------------------------------------------------------------

/// The selector key: transpose kind, pow2-bucketed dims, thread count and
/// SIMD flag. Problems in one class share a tuned routine choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ShapeClass {
    /// Transpose kind.
    pub kind: Kind,
    /// Pow2-floor bucket of `m`.
    pub m: usize,
    /// Pow2-floor bucket of `k`.
    pub k: usize,
    /// Pow2-floor bucket of `n`.
    pub n: usize,
    /// Configured pool thread count (`backend::threads()`).
    pub threads: usize,
    /// Whether the AVX2+FMA micro-kernel is active.
    pub simd: bool,
}

/// Pow2-floor bucket: `257 → 256`, `96 → 64`, `1 → 1`, `0 → 0`.
pub fn bucket(x: usize) -> usize {
    if x == 0 {
        0
    } else {
        1 << (usize::BITS - 1 - x.leading_zeros())
    }
}

impl ShapeClass {
    /// The class of a problem under the current backend configuration.
    pub fn of(p: &Problem) -> Self {
        Self {
            kind: p.kind(),
            m: bucket(p.m),
            k: bucket(p.k),
            n: bucket(p.n),
            threads: backend::threads(),
            simd: simd_active(),
        }
    }

    /// Canonical cache key, e.g. `"tn:m256:k256:n256:t4:simd"`.
    pub fn key(&self) -> String {
        format!(
            "{}:m{}:k{}:n{}:t{}:{}",
            self.kind.tag(),
            self.m,
            self.k,
            self.n,
            self.threads,
            if self.simd { "simd" } else { "nosimd" }
        )
    }
}

/// How a selection was decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Source {
    /// Sub-threshold problem: the fixed small-class kernel.
    Small,
    /// Static heuristic table (autotune disabled or cache unusable).
    Static,
    /// Measured in this process (cold tune).
    Measured,
    /// Loaded from the persistent tune cache (warm).
    Cached,
}

impl Source {
    /// Short tag used in bench JSON: `"small"` / `"static"` /
    /// `"measured"` / `"cached"`.
    pub fn tag(&self) -> &'static str {
        match self {
            Source::Small => "small",
            Source::Static => "static",
            Source::Measured => "measured",
            Source::Cached => "cached",
        }
    }
}

/// The routine the selector resolved for a problem, with provenance.
#[derive(Debug, Clone)]
pub struct Selection {
    /// Registry name of the chosen routine.
    pub routine: &'static str,
    /// How the choice was made.
    pub source: Source,
    /// The shape-class key the choice is filed under.
    pub key: String,
    /// Wall-clock cost of the measurement pass that produced the choice
    /// (milliseconds) — the cold-tune cost a warm run avoids. `None` for
    /// small/static selections.
    pub tune_ms: Option<f64>,
}

/// Cold-start heuristic table. TN goes to the transpose-packing routine;
/// NN/NT problems wide enough to split into several row chunks benefit
/// from the shared-B buffer, everything else takes the wide tile.
fn static_choice(p: &Problem) -> &'static str {
    if p.trans_a {
        "tn_packed"
    } else if p.m > MC {
        "double_buffered"
    } else {
        "packed_blocked"
    }
}

/// Fixed small-class kernel for the problem's kind.
fn small_choice(p: &Problem) -> &'static str {
    if p.kind() == Kind::Nt {
        "small_nt_unrolled"
    } else {
        "single_chunk"
    }
}

/// Resolves the routine for a problem — the public face of the selector,
/// also used by `bench_kernels` to report per-entry routine names and
/// tune provenance. On a cache miss with autotuning active this runs the
/// measurement pass (so a bench "tune pass" is just a `selection_for`
/// sweep over its shapes).
pub fn selection_for(trans_a: bool, trans_b: bool, m: usize, k: usize, n: usize) -> Selection {
    select(&Problem::new(trans_a, trans_b, m, k, n))
}

fn select(p: &Problem) -> Selection {
    let class = ShapeClass::of(p);
    let key = class.key();
    if p.small() {
        return Selection {
            routine: small_choice(p),
            source: Source::Small,
            key,
            tune_ms: None,
        };
    }
    if !tune::active() {
        return Selection {
            routine: static_choice(p),
            source: Source::Static,
            key,
            tune_ms: None,
        };
    }
    if let Some(entry) = tune::lookup(&key) {
        // A cached name that no longer exists (or no longer supports the
        // class) falls back to the static table rather than panicking.
        if let Some(r) = routine_by_name(&entry.routine) {
            if r.supports(p) {
                return Selection {
                    routine: r.name(),
                    source: if entry.from_file {
                        Source::Cached
                    } else {
                        Source::Measured
                    },
                    key,
                    tune_ms: Some(entry.tune_ms),
                };
            }
        }
        return Selection {
            routine: static_choice(p),
            source: Source::Static,
            key,
            tune_ms: None,
        };
    }
    let (routine, tune_ms) = measure(p);
    tune::record(&key, routine, tune_ms);
    Selection {
        routine,
        source: Source::Measured,
        key,
        tune_ms: Some(tune_ms),
    }
}

/// Measures every candidate routine on synthetic data of the problem's
/// exact size and returns (winner, total measurement milliseconds).
/// Candidates within a class are bitwise-identical, so timing jitter can
/// only affect speed, never results; ties keep the earlier registry
/// entry.
fn measure(p: &Problem) -> (&'static str, f64) {
    let started = Instant::now();
    let cands: Vec<&'static dyn Routine> = routines()
        .iter()
        .copied()
        .filter(|r| r.supports(p))
        .collect();
    let mut a = scratch::take_filled(p.m * p.k, 0.0);
    let mut b = scratch::take_filled(p.k * p.n, 0.0);
    fill_pattern(&mut a, 3);
    fill_pattern(&mut b, 7);
    let mut out = scratch::take_filled(p.m * p.n, 0.0);
    let reps = if p.macs() >= 1 << 26 {
        3
    } else if p.macs() >= 1 << 22 {
        5
    } else {
        7
    };
    // Untimed warmup: first-touch scratch allocation and cache
    // population would otherwise pollute each candidate's first rep.
    for r in &cands {
        out.fill(0.0);
        r.run(p, &a, &b, &mut out);
    }
    // Round-robin the timed reps across candidates so a transient noise
    // window (this host is a shared VM) degrades every candidate's
    // sample equally instead of sinking whichever one it lands on;
    // best-of-reps then discards the noisy rounds entirely.
    let mut fastest = vec![f64::INFINITY; cands.len()];
    for _ in 0..reps {
        for (r, fast) in cands.iter().zip(fastest.iter_mut()) {
            out.fill(0.0);
            let t0 = Instant::now();
            r.run(p, &a, &b, &mut out);
            *fast = fast.min(t0.elapsed().as_secs_f64());
        }
    }
    let mut best_name = cands[0].name();
    let mut best = f64::INFINITY;
    for (r, fast) in cands.iter().zip(fastest.iter()) {
        if *fast < best {
            best = *fast;
            best_name = r.name();
        }
    }
    scratch::give(out);
    scratch::give(b);
    scratch::give(a);
    (best_name, started.elapsed().as_secs_f64() * 1e3)
}

/// Cheap deterministic fill for tuning inputs (values are irrelevant to
/// timing; no RNG dependency).
fn fill_pattern(buf: &mut [f32], salt: usize) {
    for (i, v) in buf.iter_mut().enumerate() {
        *v = (((i * salt) % 31) as f32 - 15.0) * 0.0625;
    }
}

/// GEMM entry point: resolves a routine and runs it.
#[allow(clippy::too_many_arguments)]
pub(crate) fn dispatch(
    trans_a: bool,
    trans_b: bool,
    ad: &[f32],
    bd: &[f32],
    od: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let p = Problem::new(trans_a, trans_b, m, k, n);
    let sel = select(&p);
    let r = routine_by_name(sel.routine).expect("selector returned a registered routine");
    r.run(&p, ad, bd, od);
}

// ---------------------------------------------------------------------------
// Execution engines shared by the blocked routines
// ---------------------------------------------------------------------------

/// Classic chunk granularity, retained verbatim for the reference
/// routine: `MC` rows for NN/NT; TN aims for ~`2^20` multiply-adds per
/// chunk with a single-chunk fallback below `2^21`. These TN constants
/// used to be the engine's only routing knob — the shape selector now
/// supersedes them (TN normally dispatches to `tn_packed`), but the
/// reference routine keeps them so it reproduces pre-dispatch behavior
/// exactly. A fixed function of the problem size only (determinism
/// contract rule 1).
fn classic_chunk_rows(trans_a: bool, m: usize, k: usize, n: usize) -> usize {
    if !trans_a {
        return MC;
    }
    const TN_PARALLEL_MIN_MACS: usize = 1 << 21;
    if m * k * n < TN_PARALLEL_MIN_MACS {
        return m.max(1);
    }
    const TN_CHUNK_MACS: usize = 1 << 20;
    let per_row = (k * n).max(1);
    let rows = (TN_CHUNK_MACS / per_row).max(1).div_ceil(MR) * MR;
    rows.clamp(MR, MC)
}

/// Per-chunk pack-and-tile engine (the pre-dispatch `gemm` body) with a
/// const-generic register-tile height.
fn blocked_run<const MRT: usize>(p: &Problem, ad: &[f32], bd: &[f32], od: &mut [f32]) {
    let simd = simd_active();
    let rows_per_chunk = classic_chunk_rows(p.trans_a, p.m, p.k, p.n);
    let (trans_a, trans_b, m, k, n) = (p.trans_a, p.trans_b, p.m, p.k, p.n);
    backend::parallel_chunks_mut(od, rows_per_chunk * n, |ci, oc| {
        classic_chunk::<MRT>(
            trans_a,
            trans_b,
            ad,
            bd,
            oc,
            ci * rows_per_chunk,
            k,
            m,
            n,
            simd,
        );
    });
}

/// Blocked GEMM over one chunk of `oc.len() / n` consecutive output rows
/// starting at global row `i0`, packing its own A rows and B panels.
#[allow(clippy::too_many_arguments)]
fn classic_chunk<const MRT: usize>(
    trans_a: bool,
    trans_b: bool,
    ad: &[f32],
    bd: &[f32],
    oc: &mut [f32],
    i0: usize,
    k: usize,
    m: usize,
    n: usize,
    simd: bool,
) {
    let rows = oc.len() / n;
    // Pack buffer comes from the thread-local scratch pool: steady-state
    // training steps repeat the same shapes, so after warmup this is
    // allocation-free.
    let mut pa = scratch::take_filled(rows * KC, 0.0);
    let mut panel = [0f32; KC * NR];
    let mut p0 = 0;
    while p0 < k {
        let kc = KC.min(k - p0);
        pack_a(trans_a, ad, &mut pa, i0, rows, p0, kc, m, k);
        let mut j0 = 0;
        while j0 < n {
            let nr = NR.min(n - j0);
            pack_b(trans_b, bd, &mut panel, p0, kc, j0, nr, k, n);
            microkernel::<MRT>(&pa, KC, &panel, oc, rows, kc, n, j0, nr, simd);
            j0 += NR;
        }
        p0 += KC;
    }
    scratch::give(pa);
}

/// Shared-B engine: per `KC` depth block, B is packed once into a shared
/// panel run, the next block is packed into the inactive buffer before
/// the current block's row chunks are dispatched (double buffering), and
/// `MC`-row chunks consume the shared panels.
///
/// Iterating depth blocks *outside* the chunk dispatch is bitwise
/// identical to the per-chunk loop: each output element still receives
/// its block partials in increasing `p0` order, and each partial is the
/// same micro-kernel FMA chain.
fn shared_b_run<const MRT: usize>(
    trans_b: bool,
    ad: &[f32],
    bd: &[f32],
    od: &mut [f32],
    _m: usize,
    k: usize,
    n: usize,
) {
    let simd = simd_active();
    let panels = n.div_ceil(NR);
    let blen = panels * KC * NR;
    let mut cur = scratch::take_filled(blen, 0.0);
    let mut nxt = scratch::take_filled(blen, 0.0);
    pack_block(trans_b, bd, &mut cur, 0, KC.min(k), k, n);
    let mut p0 = 0;
    while p0 < k {
        let kc = KC.min(k - p0);
        let next_p0 = p0 + KC;
        if next_p0 < k {
            pack_block(trans_b, bd, &mut nxt, next_p0, KC.min(k - next_p0), k, n);
        }
        let cur_ref: &[f32] = &cur;
        backend::parallel_chunks_mut(od, MC * n, |ci, oc| {
            shared_chunk::<MRT>(ad, cur_ref, oc, ci * MC, p0, kc, k, n, simd);
        });
        std::mem::swap(&mut cur, &mut nxt);
        p0 += KC;
    }
    scratch::give(nxt);
    scratch::give(cur);
}

/// Shared-B engine without A packing: same double-buffered per-block B
/// panels as [`shared_b_run`], but each row chunk feeds the micro-kernel
/// its A rows straight from the NN-layout matrix (row stride `k`).
fn direct_a_run<const MRT: usize>(
    trans_b: bool,
    ad: &[f32],
    bd: &[f32],
    od: &mut [f32],
    k: usize,
    n: usize,
) {
    let simd = simd_active();
    let panels = n.div_ceil(NR);
    let blen = panels * KC * NR;
    let mut cur = scratch::take_filled(blen, 0.0);
    let mut nxt = scratch::take_filled(blen, 0.0);
    pack_block(trans_b, bd, &mut cur, 0, KC.min(k), k, n);
    let mut p0 = 0;
    while p0 < k {
        let kc = KC.min(k - p0);
        let next_p0 = p0 + KC;
        if next_p0 < k {
            pack_block(trans_b, bd, &mut nxt, next_p0, KC.min(k - next_p0), k, n);
        }
        let cur_ref: &[f32] = &cur;
        backend::parallel_chunks_mut(od, MC * n, |ci, oc| {
            let rows = oc.len() / n;
            let ablock = &ad[ci * MC * k + p0..];
            let mut j0 = 0;
            let mut ji = 0;
            while j0 < n {
                let nr = NR.min(n - j0);
                let panel = &cur_ref[ji * KC * NR..(ji + 1) * KC * NR];
                microkernel::<MRT>(ablock, k, panel, oc, rows, kc, n, j0, nr, simd);
                j0 += NR;
                ji += 1;
            }
        });
        std::mem::swap(&mut cur, &mut nxt);
        p0 += KC;
    }
    scratch::give(nxt);
    scratch::give(cur);
}

/// Packs all `NR`-wide panels of one `kc`-deep block of op(B) into a
/// contiguous panel run (`panels × KC × NR`, only the first `kc` rows of
/// each panel are meaningful).
fn pack_block(
    trans_b: bool,
    bd: &[f32],
    buf: &mut [f32],
    p0: usize,
    kc: usize,
    k: usize,
    n: usize,
) {
    let mut j0 = 0;
    let mut ji = 0;
    while j0 < n {
        let nr = NR.min(n - j0);
        let panel = &mut buf[ji * KC * NR..(ji + 1) * KC * NR];
        pack_b(trans_b, bd, panel, p0, kc, j0, nr, k, n);
        j0 += NR;
        ji += 1;
    }
}

/// One row chunk of the shared-B engine: packs its A rows for the
/// current depth block, then sweeps the pre-packed panels.
#[allow(clippy::too_many_arguments)]
fn shared_chunk<const MRT: usize>(
    ad: &[f32],
    bblock: &[f32],
    oc: &mut [f32],
    i0: usize,
    p0: usize,
    kc: usize,
    k: usize,
    n: usize,
    simd: bool,
) {
    let rows = oc.len() / n;
    let mut pa = scratch::take_filled(rows * KC, 0.0);
    pack_a(false, ad, &mut pa, i0, rows, p0, kc, 0, k);
    let mut j0 = 0;
    let mut ji = 0;
    while j0 < n {
        let nr = NR.min(n - j0);
        let panel = &bblock[ji * KC * NR..(ji + 1) * KC * NR];
        microkernel::<MRT>(&pa, KC, panel, oc, rows, kc, n, j0, nr, simd);
        j0 += NR;
        ji += 1;
    }
    scratch::give(pa);
}

// ---------------------------------------------------------------------------
// Quantized (u8 × i8 → i32) routine registry and selector
// ---------------------------------------------------------------------------

/// One quantized NT GEMM problem: `a` is `(m, k)` unsigned codes, `b` is
/// `(n, k)` signed codes, output is `m × n` i32. There is only one
/// transpose kind (NT — every quantized consumer is row-dot-row), so the
/// problem is just its dims.
#[derive(Debug, Clone, Copy)]
pub struct QProblem {
    /// Output rows.
    pub m: usize,
    /// Depth (dot-product length).
    pub k: usize,
    /// Output columns.
    pub n: usize,
}

impl QProblem {
    /// Builds a problem description.
    pub fn new(m: usize, k: usize, n: usize) -> Self {
        Self { m, k, n }
    }

    /// Total multiply-adds.
    pub fn macs(&self) -> usize {
        self.m * self.k * self.n
    }

    /// Whether this problem runs the fixed streaming kernel instead of
    /// the tuned blocked family. Same threshold as the f32 selector.
    /// Unlike the f32 boundary this one is *not* a numeric contract —
    /// integer kernels are all bitwise-identical — it just keeps tiny
    /// problems out of the pool and the tune cache.
    pub fn small(&self) -> bool {
        self.n < NR / 2 || self.macs() < SMALL_MACS
    }

    /// Canonical cache key, e.g. `"qnt:m256:k256:n256:t4:simd"`. The
    /// `qnt` tag keeps quantized classes disjoint from the f32 `nn` /
    /// `tn` / `nt` namespaces in the shared `XBAR_TUNE_CACHE` file.
    pub fn key(&self) -> String {
        format!(
            "qnt:m{}:k{}:n{}:t{}:{}",
            bucket(self.m),
            bucket(self.k),
            bucket(self.n),
            backend::threads(),
            if simd_active() { "simd" } else { "nosimd" }
        )
    }
}

/// A named quantized GEMM routine. All routines are exact integer
/// arithmetic and therefore bitwise-identical wherever they overlap.
pub trait QRoutine: Sync {
    /// Stable registry name (appears in tune-cache files and bench JSON).
    fn name(&self) -> &'static str;
    /// Whether this routine can run `p`.
    fn supports(&self, p: &QProblem) -> bool;
    /// Runs the routine. `od` is the row-major `m × n` output.
    fn run(&self, p: &QProblem, ad: &[u8], bd: &[i8], od: &mut [i32]);
}

/// Serial streaming kernel: the small-class routine (also a blocked-class
/// candidate — on memory-bound shapes the pool fan-out can lose).
struct QRowDot;

impl QRoutine for QRowDot {
    fn name(&self) -> &'static str {
        "q_rowdot"
    }
    fn supports(&self, _p: &QProblem) -> bool {
        true
    }
    fn run(&self, p: &QProblem, ad: &[u8], bd: &[i8], od: &mut [i32]) {
        crate::qgemm::qk_rowdot(ad, bd, od, p.m, p.k, p.n);
    }
}

/// Scalar 2×4 register-blocked kernel, parallel over row chunks.
struct QBlocked;

impl QRoutine for QBlocked {
    fn name(&self) -> &'static str {
        "q_blocked"
    }
    fn supports(&self, p: &QProblem) -> bool {
        !p.small()
    }
    fn run(&self, p: &QProblem, ad: &[u8], bd: &[i8], od: &mut [i32]) {
        crate::qgemm::qk_blocked(ad, bd, od, p.m, p.k, p.n);
    }
}

/// AVX2 `maddubs` micro-kernel, parallel over row chunks.
struct QMaddubs;

impl QRoutine for QMaddubs {
    fn name(&self) -> &'static str {
        "q_maddubs"
    }
    fn supports(&self, p: &QProblem) -> bool {
        !p.small() && simd_active()
    }
    fn run(&self, p: &QProblem, ad: &[u8], bd: &[i8], od: &mut [i32]) {
        crate::qgemm::qk_maddubs(ad, bd, od, p.m, p.k, p.n);
    }
}

/// The quantized routine registry, in deterministic tie-break order.
pub fn q_routines() -> &'static [&'static dyn QRoutine] {
    static REGISTRY: [&dyn QRoutine; 3] = [&QRowDot, &QBlocked, &QMaddubs];
    &REGISTRY
}

/// Looks up a registered quantized routine by name.
pub fn q_routine_by_name(name: &str) -> Option<&'static dyn QRoutine> {
    q_routines().iter().copied().find(|r| r.name() == name)
}

/// Names of the quantized routines that support the given problem, in
/// registry order.
pub fn q_candidate_names(m: usize, k: usize, n: usize) -> Vec<&'static str> {
    let p = QProblem::new(m, k, n);
    q_routines()
        .iter()
        .filter(|r| r.supports(&p))
        .map(|r| r.name())
        .collect()
}

/// Runs one named quantized routine directly, bypassing the selector
/// (test hook). Returns `false` if the routine is unknown or does not
/// support the problem.
pub fn run_q_routine(
    name: &str,
    ad: &[u8],
    bd: &[i8],
    od: &mut [i32],
    m: usize,
    k: usize,
    n: usize,
) -> bool {
    let Some(r) = q_routine_by_name(name) else {
        return false;
    };
    let p = QProblem::new(m, k, n);
    if m == 0 || k == 0 || n == 0 {
        return true;
    }
    if !r.supports(&p) {
        return false;
    }
    r.run(&p, ad, bd, od);
    true
}

/// Cold-start heuristic for blocked quantized problems: the SIMD kernel
/// when available, the scalar blocked kernel otherwise.
fn q_static_choice(_p: &QProblem) -> &'static str {
    if simd_active() {
        "q_maddubs"
    } else {
        "q_blocked"
    }
}

/// Resolves the routine for a quantized problem — mirrors
/// [`selection_for`], sharing [`Source`], [`Selection`], and the
/// persistent tune cache (under `qnt:` keys).
pub fn q_selection_for(m: usize, k: usize, n: usize) -> Selection {
    q_select(&QProblem::new(m, k, n))
}

fn q_select(p: &QProblem) -> Selection {
    let key = p.key();
    if p.small() {
        return Selection {
            routine: "q_rowdot",
            source: Source::Small,
            key,
            tune_ms: None,
        };
    }
    if !tune::active() {
        return Selection {
            routine: q_static_choice(p),
            source: Source::Static,
            key,
            tune_ms: None,
        };
    }
    if let Some(entry) = tune::lookup(&key) {
        if let Some(r) = q_routine_by_name(&entry.routine) {
            if r.supports(p) {
                return Selection {
                    routine: r.name(),
                    source: if entry.from_file {
                        Source::Cached
                    } else {
                        Source::Measured
                    },
                    key,
                    tune_ms: Some(entry.tune_ms),
                };
            }
        }
        return Selection {
            routine: q_static_choice(p),
            source: Source::Static,
            key,
            tune_ms: None,
        };
    }
    let (routine, tune_ms) = q_measure(p);
    tune::record(&key, routine, tune_ms);
    Selection {
        routine,
        source: Source::Measured,
        key,
        tune_ms: Some(tune_ms),
    }
}

/// Measures every candidate quantized routine on synthetic data of the
/// problem's exact size — the integer twin of [`measure`].
fn q_measure(p: &QProblem) -> (&'static str, f64) {
    let started = Instant::now();
    let cands: Vec<&'static dyn QRoutine> = q_routines()
        .iter()
        .copied()
        .filter(|r| r.supports(p))
        .collect();
    let mut a8 = scratch::take_filled_i8(p.m * p.k, 0);
    for (i, v) in a8.iter_mut().enumerate() {
        *v = ((i * 37) % 128) as i8;
    }
    // Codes in 0..=127 reinterpret exactly as the unsigned operand.
    let a: &[u8] = unsafe { std::slice::from_raw_parts(a8.as_ptr().cast::<u8>(), a8.len()) };
    let mut b = scratch::take_filled_i8(p.k * p.n, 0);
    for (i, v) in b.iter_mut().enumerate() {
        *v = (((i * 53) % 255) as i32 - 127) as i8;
    }
    let mut out = scratch::take_filled_i32(p.m * p.n, 0);
    let reps = if p.macs() >= 1 << 26 {
        3
    } else if p.macs() >= 1 << 22 {
        5
    } else {
        7
    };
    for r in &cands {
        out.fill(0);
        r.run(p, a, &b, &mut out);
    }
    let mut fastest = vec![f64::INFINITY; cands.len()];
    for _ in 0..reps {
        for (r, fast) in cands.iter().zip(fastest.iter_mut()) {
            out.fill(0);
            let t0 = Instant::now();
            r.run(p, a, &b, &mut out);
            *fast = fast.min(t0.elapsed().as_secs_f64());
        }
    }
    let mut best_name = cands[0].name();
    let mut best = f64::INFINITY;
    for (r, fast) in cands.iter().zip(fastest.iter()) {
        if *fast < best {
            best = *fast;
            best_name = r.name();
        }
    }
    scratch::give_i32(out);
    scratch::give_i8(b);
    scratch::give_i8(a8);
    (best_name, started.elapsed().as_secs_f64() * 1e3)
}

/// Quantized GEMM entry point: resolves a routine and runs it.
pub(crate) fn q_dispatch(ad: &[u8], bd: &[i8], od: &mut [i32], m: usize, k: usize, n: usize) {
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let p = QProblem::new(m, k, n);
    let sel = q_select(&p);
    let r = q_routine_by_name(sel.routine).expect("selector returned a registered routine");
    r.run(&p, ad, bd, od);
}

/// Cache-blocked transpose: `src` is `(k, m)` row-major, `dst` becomes
/// `(m, k)` row-major. Pure data movement — parallel over destination
/// row blocks with disjoint writes, so scheduling cannot affect values.
fn transpose_into(src: &[f32], dst: &mut [f32], k: usize, m: usize) {
    const TB: usize = 32;
    backend::parallel_chunks_mut(dst, TB * k, |bi, chunk| {
        let i0 = bi * TB;
        let rows = chunk.len() / k;
        let mut j0 = 0;
        while j0 < k {
            let jb = TB.min(k - j0);
            for r in 0..rows {
                let i = i0 + r;
                for j in j0..j0 + jb {
                    chunk[r * k + j] = src[j * m + i];
                }
            }
            j0 += TB;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::XorShiftRng;
    use crate::tune::test_support::{guard, temp_cache};
    use crate::Tensor;

    #[test]
    fn bucket_is_pow2_floor() {
        assert_eq!(bucket(0), 0);
        assert_eq!(bucket(1), 1);
        assert_eq!(bucket(2), 2);
        assert_eq!(bucket(3), 2);
        assert_eq!(bucket(96), 64);
        assert_eq!(bucket(256), 256);
        assert_eq!(bucket(257), 256);
    }

    #[test]
    fn shape_class_key_is_canonical() {
        let p = Problem::new(true, false, 300, 256, 257);
        let c = ShapeClass::of(&p);
        assert_eq!(
            c.key(),
            format!(
                "tn:m256:k256:n256:t{}:{}",
                backend::threads(),
                if simd_active() { "simd" } else { "nosimd" }
            )
        );
    }

    #[test]
    fn registry_names_are_unique_and_every_problem_has_candidates() {
        let names: Vec<_> = routines().iter().map(|r| r.name()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "duplicate routine name");
        for (ta, tb) in [(false, false), (true, false), (false, true)] {
            for (m, k, n) in [(2, 3, 4), (256, 256, 256)] {
                assert!(
                    !candidate_names(ta, tb, m, k, n).is_empty(),
                    "no candidate for ({ta},{tb}) {m}x{k}x{n}"
                );
            }
        }
    }

    #[test]
    fn supports_sets_never_cross_the_class_boundary() {
        let small = Problem::new(false, false, 4, 5, 8);
        let blocked = Problem::new(false, false, 256, 256, 256);
        assert!(small.small() && !blocked.small());
        for r in routines() {
            assert!(
                !(r.supports(&small) && r.supports(&blocked)),
                "{} crosses the small/blocked boundary",
                r.name()
            );
        }
    }

    #[test]
    fn static_choice_covers_every_kind() {
        // TN always routes to the transpose-packing routine.
        assert_eq!(
            static_choice(&Problem::new(true, false, 256, 256, 256)),
            "tn_packed"
        );
        // Multi-chunk NN/NT prefer the shared-B engine, single-chunk the
        // reference tile; every choice must be a registered, supporting routine.
        assert_eq!(
            static_choice(&Problem::new(false, false, 256, 256, 256)),
            "double_buffered"
        );
        assert_eq!(
            static_choice(&Problem::new(false, true, 32, 400, 120)),
            "packed_blocked"
        );
        for p in [
            Problem::new(false, false, 2048, 576, 128),
            Problem::new(true, false, 400, 32, 120),
            Problem::new(false, true, 64, 64, 64),
        ] {
            let r = routine_by_name(static_choice(&p)).unwrap();
            assert!(r.supports(&p), "static choice must support its class");
        }
    }

    #[test]
    fn tn_chunk_rows_depend_only_on_problem_size() {
        // Below the parallel threshold: one chunk covering every row.
        assert_eq!(classic_chunk_rows(true, 64, 64, 64), 64);
        // Above it: work-balanced, MR-aligned, clamped to [MR, MC].
        let r = classic_chunk_rows(true, 256, 256, 256);
        assert!(r.is_multiple_of(MR) && (MR..=MC).contains(&r));
        assert!(r < 256, "large TN must split into multiple chunks");
        // NN/NT keep the MC granularity.
        assert_eq!(classic_chunk_rows(false, 256, 256, 256), MC);
    }

    #[test]
    fn tn_multi_chunk_split_is_bitwise_identical_to_one_chunk() {
        // 160x160x160 = 4.1M MACs crosses the TN parallel threshold, so
        // the reference routine runs multiple row chunks; the
        // single-chunk execution of the same blocked loop must agree bit
        // for bit (per-row accumulation is chunk-grouping independent).
        let (m, k, n) = (160, 160, 160);
        let mut rng = XorShiftRng::new(0x7171);
        let a = Tensor::rand_normal(&[k, m], 0.0, 1.0, &mut rng);
        let b = Tensor::rand_normal(&[k, n], 0.0, 1.0, &mut rng);
        assert!(
            classic_chunk_rows(true, m, k, n) < m,
            "test must exercise a split"
        );
        let p = Problem::new(true, false, m, k, n);
        let mut got = vec![0f32; m * n];
        blocked_run::<MR>(&p, a.data(), b.data(), &mut got);
        let mut want = vec![0f32; m * n];
        classic_chunk::<MR>(
            true,
            false,
            a.data(),
            b.data(),
            &mut want,
            0,
            k,
            m,
            n,
            simd_active(),
        );
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.to_bits(), w.to_bits());
        }
    }

    #[test]
    fn every_blocked_routine_is_bitwise_identical_to_the_reference() {
        // Ragged blocked shapes per kind; the big bench shapes live in
        // tests/integration_dispatch.rs.
        for (ta, tb, m, k, n) in [
            (false, false, 70, 300, 33),
            (false, true, 70, 300, 33),
            (true, false, 70, 300, 33),
            (false, false, 97, 89, 83),
            (true, false, 97, 89, 83),
            (false, true, 97, 89, 83),
        ] {
            let p = Problem::new(ta, tb, m, k, n);
            assert!(!p.small());
            let mut rng = XorShiftRng::new(0x9000 + m as u64 + u64::from(ta) + 2 * u64::from(tb));
            let a_shape = if ta { [k, m] } else { [m, k] };
            let b_shape = if tb { [n, k] } else { [k, n] };
            let a = Tensor::rand_normal(&a_shape, 0.0, 1.0, &mut rng);
            let b = Tensor::rand_normal(&b_shape, 0.0, 1.0, &mut rng);
            let mut want = vec![0f32; m * n];
            assert!(run_routine(
                "packed_blocked",
                ta,
                tb,
                a.data(),
                b.data(),
                &mut want,
                m,
                k,
                n
            ));
            for name in candidate_names(ta, tb, m, k, n) {
                let mut got = vec![0f32; m * n];
                assert!(run_routine(
                    name,
                    ta,
                    tb,
                    a.data(),
                    b.data(),
                    &mut got,
                    m,
                    k,
                    n
                ));
                for (g, w) in got.iter().zip(&want) {
                    assert_eq!(
                        g.to_bits(),
                        w.to_bits(),
                        "{name} differs from reference on ({ta},{tb}) {m}x{k}x{n}"
                    );
                }
            }
        }
    }

    #[test]
    fn transpose_into_round_trips() {
        let (k, m) = (37, 53);
        let mut rng = XorShiftRng::new(0xABCD);
        let src = Tensor::rand_normal(&[k, m], 0.0, 1.0, &mut rng);
        let mut dst = vec![0f32; m * k];
        transpose_into(src.data(), &mut dst, k, m);
        for i in 0..m {
            for j in 0..k {
                assert_eq!(dst[i * k + j].to_bits(), src.data()[j * m + i].to_bits());
            }
        }
    }

    #[test]
    fn run_routine_rejects_unknown_and_unsupported() {
        let a = [1.0f32; 64];
        let mut o = [0f32; 64];
        assert!(!run_routine(
            "no_such", false, false, &a, &a, &mut o, 8, 8, 8
        ));
        // Blocked routine on a small problem is refused.
        assert!(!run_routine(
            "packed_wide",
            false,
            false,
            &a,
            &a,
            &mut o,
            8,
            8,
            8
        ));
        // Zero dims are a successful no-op.
        assert!(run_routine(
            "packed_wide",
            false,
            false,
            &a,
            &a,
            &mut o[..0],
            0,
            8,
            8
        ));
    }

    #[test]
    fn selector_sources_follow_cache_state() {
        let _g = guard();
        let path = temp_cache("selector");
        let _ = std::fs::remove_file(&path);
        // Small problems never consult the cache.
        crate::tune::reload_from(None, true).unwrap();
        let s = selection_for(false, true, 4, 5, 8);
        assert_eq!((s.routine, s.source), ("small_nt_unrolled", Source::Small));
        // Disabled: static table.
        crate::tune::reload_from(None, false).unwrap();
        let s = selection_for(true, false, 256, 256, 256);
        assert_eq!((s.routine, s.source), ("tn_packed", Source::Static));
        assert!(s.tune_ms.is_none());
        // Enabled with a cache path: first resolve measures and persists…
        crate::tune::reload_from(Some(&path), true).unwrap();
        let cold = selection_for(true, false, 96, 96, 96);
        assert_eq!(cold.source, Source::Measured);
        assert!(cold.tune_ms.is_some());
        // …repeat resolves hit the in-memory entry…
        let repeat = selection_for(true, false, 96, 96, 96);
        assert_eq!(repeat.source, Source::Measured);
        assert_eq!(repeat.routine, cold.routine);
        // …and a reload serves it from the file (warm).
        assert_eq!(crate::tune::reload_from(Some(&path), true).unwrap(), 1);
        let warm = selection_for(true, false, 96, 96, 96);
        assert_eq!(warm.source, Source::Cached);
        assert_eq!(warm.routine, cold.routine);
        assert_eq!(warm.key, cold.key);
        crate::tune::reload_from(None, true).unwrap();
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn cached_unknown_routine_falls_back_to_static() {
        let _g = guard();
        let path = temp_cache("unknown-routine");
        let key = ShapeClass::of(&Problem::new(false, false, 256, 256, 256)).key();
        std::fs::write(
            &path,
            format!("{{\"version\":1,\"entries\":[{{\"key\":\"{key}\",\"routine\":\"retired_routine\",\"tune_ms\":1}}]}}"),
        )
        .unwrap();
        crate::tune::reload_from(Some(&path), true).unwrap();
        let s = selection_for(false, false, 256, 256, 256);
        assert_eq!(s.source, Source::Static);
        assert!(routine_by_name(s.routine).is_some());
        crate::tune::reload_from(None, true).unwrap();
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn q_registry_names_unique_and_small_problems_have_the_fixed_kernel() {
        let mut names: Vec<_> = q_routines().iter().map(|r| r.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), q_routines().len());
        // q_rowdot supports everything; blocked candidates exist for
        // blocked shapes.
        assert_eq!(q_candidate_names(2, 8, 4), vec!["q_rowdot"]);
        assert!(q_candidate_names(256, 256, 256).len() >= 2);
    }

    #[test]
    fn q_key_is_disjoint_from_f32_namespace() {
        let key = QProblem::new(256, 256, 256).key();
        assert!(key.starts_with("qnt:"), "{key}");
        let f32_key = ShapeClass::of(&Problem::new(false, true, 256, 256, 256)).key();
        assert_ne!(key, f32_key);
    }

    #[test]
    fn q_selector_sources_follow_cache_state() {
        let _g = guard();
        let path = temp_cache("q-selector");
        let _ = std::fs::remove_file(&path);
        crate::tune::reload_from(None, true).unwrap();
        let s = q_selection_for(2, 8, 4);
        assert_eq!((s.routine, s.source), ("q_rowdot", Source::Small));
        crate::tune::reload_from(None, false).unwrap();
        let s = q_selection_for(96, 96, 96);
        assert_eq!(s.source, Source::Static);
        assert!(q_routine_by_name(s.routine).is_some());
        crate::tune::reload_from(Some(&path), true).unwrap();
        let cold = q_selection_for(96, 96, 96);
        assert_eq!(cold.source, Source::Measured);
        assert!(cold.tune_ms.is_some());
        assert_eq!(crate::tune::reload_from(Some(&path), true).unwrap(), 1);
        let warm = q_selection_for(96, 96, 96);
        assert_eq!(warm.source, Source::Cached);
        assert_eq!(warm.routine, cold.routine);
        assert_eq!(warm.key, cold.key);
        crate::tune::reload_from(None, true).unwrap();
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn run_q_routine_rejects_unknown_and_unsupported() {
        let (m, k, n) = (2, 8, 4);
        let a = vec![1u8; m * k];
        let b = vec![1i8; n * k];
        let mut out = vec![0i32; m * n];
        assert!(!run_q_routine("nope", &a, &b, &mut out, m, k, n));
        // Blocked-only routine on a small problem.
        assert!(!run_q_routine("q_blocked", &a, &b, &mut out, m, k, n));
        assert!(run_q_routine("q_rowdot", &a, &b, &mut out, m, k, n));
        assert!(out.iter().all(|&v| v == k as i32));
    }
}
