//! Persistent work-stealing scheduler: the mechanism behind [`crate::backend`].
//!
//! This module owns the thread pool itself — per-lane work-stealing deques,
//! the task-graph submission API ([`TaskScope`] with `spawn` / `spawn_after`
//! / `defer`), and the journal-ordered commit stream
//! ([`Pool::ordered_stream`]). The policy layer (`parallel_for`,
//! `parallel_map`, chunking, grain sizes) lives in [`crate::backend`] and is
//! a thin shim over these primitives.
//!
//! # Queueing discipline
//!
//! Every spawned worker owns a deque. The owner pushes and pops at the
//! *back* (LIFO — newest first, keeping its cache hot), thieves steal from
//! the *front* (FIFO — oldest first, so stolen work is the work least
//! likely to be touched by the owner next). Tasks submitted from outside
//! the pool land in a shared *injector* queue that every lane drains FIFO
//! before trying to steal from siblings. The calling thread of a scope is
//! a lane too: while it waits for its latch it steals exactly like a
//! worker.
//!
//! # Determinism contract
//!
//! Steal order is nondeterministic by construction, so determinism is
//! enforced one level up, at the *commit* point:
//!
//! * every task writes only state it owns (a disjoint output slot or
//!   buffer range), and
//! * results are consumed in **submission order** on the calling thread —
//!   [`Pool::ordered_stream`] buffers each task's result in its
//!   submission-indexed slot and releases the consumer callback strictly
//!   in index order, and reductions behind [`TaskScope::defer`] run their
//!   accumulation loops in a fixed (shard/segment) order that does not
//!   depend on which lane executed them.
//!
//! Under that discipline the bitwise result is a pure function of the
//! submission sequence, which depends only on the problem shape — never on
//! thread count, steal interleaving, or injected jitter.
//!
//! # Why lanes never block
//!
//! Workers never wait on a latch — only the thread that *opened* a scope
//! does, and while waiting it drains queues itself. A task that opens a
//! nested scope runs the nested work inline on its own lane
//! ([`serial_active`] is true on every pool lane). Deferred tasks are
//! enqueued by whichever lane delivers the final dependency signal, onto
//! that lane's own deque, so dependency chains cannot strand work on a
//! sleeping thread. Together these rules make the scheduler deadlock-free
//! for arbitrarily nested submissions (see the regression tests in
//! `tests/integration_sched.rs`).

use std::collections::VecDeque;
use std::marker::PhantomData;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// A unit of queued work. Lifetime-erased to `'static`; soundness is
/// provided by the scope that submitted it, which does not return until
/// every task it enqueued has finished (see [`Pool::scope`] /
/// [`Pool::run_scoped`]).
pub(crate) type Job = Box<dyn FnOnce() + Send + 'static>;

/// Shared state of one pool: the per-worker deques, the injector queue,
/// and the sleep protocol.
pub(crate) struct Shared {
    /// One work-stealing deque per spawned worker lane. The owning worker
    /// pushes/pops at the back; everyone else steals from the front.
    lanes: Vec<Mutex<VecDeque<Job>>>,
    /// Submission queue for tasks spawned off-pool (scope callers) —
    /// drained FIFO by every lane, so submission order is the base
    /// execution order when nobody is stealing.
    injector: Mutex<VecDeque<Job>>,
    /// Count of queued-but-not-yet-taken jobs across all queues. Lags a
    /// pop (decremented after the job leaves a queue), which errs on the
    /// side of keeping lanes awake — never on the side of losing a wake.
    pending: AtomicUsize,
    /// Sleep mutex + condvar, deliberately separate from every queue lock:
    /// waking a sleeper never contends with lanes pushing or popping work.
    sleep: Mutex<()>,
    available: Condvar,
}

impl Shared {
    fn new(workers: usize) -> Self {
        Self {
            lanes: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            injector: Mutex::new(VecDeque::new()),
            pending: AtomicUsize::new(0),
            sleep: Mutex::new(()),
            available: Condvar::new(),
        }
    }

    /// Wakes one sleeping lane. The lock round-trip on `sleep` pairs with
    /// the sleeper's pending re-check under the same lock: a lane can only
    /// commit to sleeping while holding `sleep`, and it re-checks
    /// `pending` there, so a push that bumped `pending` before we acquired
    /// the lock is either seen by the re-check or its notify lands after
    /// the `wait` began. No lost wakeups either way.
    fn wake_one(&self) {
        let _guard = self.sleep.lock().unwrap();
        self.available.notify_one();
    }

    /// Enqueues one job, preferring the current lane's own deque when the
    /// calling thread is a worker of this pool (owner-LIFO keeps the
    /// just-unblocked dependency chain hot), falling back to the injector.
    pub(crate) fn push(self: &Arc<Self>, job: Job) {
        match current_lane_of(self) {
            Some(lane) => self.lanes[lane].lock().unwrap().push_back(job),
            None => self.injector.lock().unwrap().push_back(job),
        }
        self.pending.fetch_add(1, Ordering::SeqCst);
        self.wake_one();
    }

    /// Bulk-enqueues jobs into the injector in submission order. One wake;
    /// the taker chain (see [`Shared::take`]) fans out to further lanes.
    fn push_batch(&self, jobs: Vec<Job>) {
        let count = jobs.len();
        {
            let mut q = self.injector.lock().unwrap();
            q.extend(jobs);
        }
        self.pending.fetch_add(count, Ordering::SeqCst);
        self.wake_one();
    }

    /// Takes one job: own deque back (LIFO) when called from worker
    /// `lane`, then injector front, then sibling deque fronts (FIFO
    /// steal). Chains a wake to the next sleeper while work remains, so a
    /// burst of N jobs costs N wakes total instead of a thundering herd
    /// per push.
    fn take(&self, lane: Option<usize>) -> Option<Job> {
        let job = self.pop_any(lane)?;
        if self.pending.fetch_sub(1, Ordering::SeqCst) > 1 {
            self.wake_one();
        }
        Some(job)
    }

    fn pop_any(&self, lane: Option<usize>) -> Option<Job> {
        if let Some(own) = lane {
            if let Some(job) = self.lanes[own].lock().unwrap().pop_back() {
                return Some(job);
            }
        }
        if let Some(job) = self.injector.lock().unwrap().pop_front() {
            return Some(job);
        }
        let n = self.lanes.len();
        let start = lane.map_or(0, |l| l + 1);
        for off in 0..n {
            let victim = (start + off) % n;
            if Some(victim) == lane {
                continue;
            }
            if let Some(job) = self.lanes[victim].lock().unwrap().pop_front() {
                return Some(job);
            }
        }
        None
    }
}

thread_local! {
    /// True on pool lanes (spawned workers, and scope callers while they
    /// drain); nested parallel helpers on a lane run inline.
    static IN_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
    /// Worker identity: (address of the owning pool's `Shared`, lane + 1).
    /// `(0, 0)` on non-worker threads. Worker threads keep their pool's
    /// `Arc<Shared>` alive forever, so the address is never reused.
    static WORKER_CTX: std::cell::Cell<(usize, usize)> = const { std::cell::Cell::new((0, 0)) };
}

/// The lane index of the current thread *within this pool*, or `None` when
/// the thread is not one of this pool's workers.
fn current_lane_of(shared: &Arc<Shared>) -> Option<usize> {
    let (addr, lane1) = WORKER_CTX.with(std::cell::Cell::get);
    (lane1 > 0 && addr == Arc::as_ptr(shared) as usize).then(|| lane1 - 1)
}

/// Process-wide serial override (see [`force_serial`]).
static FORCE_SERIAL: AtomicBool = AtomicBool::new(false);

/// Switches the whole process to guaranteed-serial execution (`on =
/// true`) or back to pooled execution (`on = false`). Parallel helpers
/// observe the flag at entry. Because every kernel is
/// thread-count-invariant, toggling this changes wall-clock only, never
/// results — which is exactly what the benchmark harness and the parity
/// tests rely on.
pub fn force_serial(on: bool) {
    FORCE_SERIAL.store(on, Ordering::SeqCst);
}

/// Whether execution is currently serial: forced via [`force_serial`], or
/// running on a pool lane (nested parallelism runs inline).
pub fn serial_active() -> bool {
    FORCE_SERIAL.load(Ordering::SeqCst) || IN_WORKER.with(std::cell::Cell::get)
}

/// Marks the current thread as a pool lane for the guard's lifetime, so
/// nested parallel helpers inside a job run inline. Restores the previous
/// state on drop (scope callers toggle this around each stolen job).
struct LaneGuard {
    prev: bool,
}

impl LaneGuard {
    fn enter() -> Self {
        let prev = IN_WORKER.with(|f| f.replace(true));
        Self { prev }
    }
}

impl Drop for LaneGuard {
    fn drop(&mut self) {
        let prev = self.prev;
        IN_WORKER.with(|f| f.set(prev));
    }
}

/// Executes one dequeued job on the current thread (with the steal-order
/// fuzz hook applied first when the `sched-fuzz` feature is enabled).
fn run_job(job: Job) {
    #[cfg(feature = "sched-fuzz")]
    fuzz_jitter();
    job();
}

/// Injected per-task jitter for steal-order fuzzing: sleeps a few dozen
/// deterministic-pseudo-random microseconds before each pooled task when
/// `XBAR_SCHED_JITTER=<nonzero seed>` is set. Perturbs which lane wins
/// each steal race without touching any computed value — the determinism
/// tests assert results are bitwise identical anyway.
#[cfg(feature = "sched-fuzz")]
fn fuzz_jitter() {
    use std::sync::OnceLock;
    static SEED: OnceLock<Option<u64>> = OnceLock::new();
    let Some(seed) = *SEED.get_or_init(|| {
        std::env::var("XBAR_SCHED_JITTER")
            .ok()
            .and_then(|s| s.trim().parse::<u64>().ok())
            .filter(|&s| s != 0)
    }) else {
        return;
    };
    static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let i = SEQ.fetch_add(1, Ordering::Relaxed);
    let mut h = seed ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    h ^= h >> 33;
    h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    h ^= h >> 33;
    std::thread::sleep(std::time::Duration::from_micros(h % 120));
}

struct LatchState {
    remaining: usize,
    panic: Option<Box<dyn std::any::Any + Send>>,
}

/// Counts outstanding tasks of one scope and captures the first panic so
/// it can be re-thrown on the caller. Notifies on *every* completion (not
/// only the last) because scope callers and ordered-stream consumers wake
/// per completion to re-check for newly committable results or newly
/// stealable work.
pub(crate) struct Latch {
    state: Mutex<LatchState>,
    done: Condvar,
}

impl Latch {
    pub(crate) fn new(count: usize) -> Self {
        Self {
            state: Mutex::new(LatchState {
                remaining: count,
                panic: None,
            }),
            done: Condvar::new(),
        }
    }

    /// Registers `n` more outstanding tasks (called at submission time —
    /// before the task is enqueued or can possibly complete).
    fn add(&self, n: usize) {
        self.state.lock().unwrap().remaining += n;
    }

    pub(crate) fn complete(&self, panic: Option<Box<dyn std::any::Any + Send>>) {
        let mut st = self.state.lock().unwrap();
        st.remaining -= 1;
        if st.panic.is_none() {
            st.panic = panic;
        }
        self.done.notify_all();
    }
}

/// A scoped worker pool over `threads` concurrent lanes (workers plus the
/// calling thread). Most callers want the process-wide
/// [`crate::backend::global`] pool; explicit construction exists for tests
/// and embedders.
pub struct Pool {
    pub(crate) shared: Arc<Shared>,
    threads: usize,
    /// Spawned worker threads — `min(threads, available_parallelism) - 1`.
    /// Zero means every scope runs inline on the caller.
    workers: usize,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Pool({} threads, {} workers)",
            self.threads, self.workers
        )
    }
}

impl Pool {
    /// Creates a pool with `threads` total lanes; the caller is always
    /// one lane. Worker spawn count is clamped to the host's available
    /// parallelism: lanes the hardware cannot run concurrently are
    /// virtual (the caller drains their share inline), so an oversized
    /// `threads` never adds queueing or context-switch overhead.
    /// `threads <= 1` creates a serial pool that never spawns and always
    /// runs inline.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let workers = threads
            .min(crate::backend::hardware_threads())
            .saturating_sub(1);
        let shared = Arc::new(Shared::new(workers));
        for lane in 0..workers {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("xbar-worker-{}", lane + 1))
                .spawn(move || worker_loop(shared, lane))
                .expect("spawning pool worker");
        }
        Self {
            shared,
            threads,
            workers,
        }
    }

    /// Total concurrent lanes (including the calling thread). Always >= 1.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// True when the pool has spawned workers to dispatch to. False for
    /// serial pools and for pools whose lanes were clamped away by the
    /// host's available parallelism — the `parallel_*` helpers use this
    /// to skip task construction entirely when every task would run on
    /// the caller anyway.
    pub fn has_workers(&self) -> bool {
        self.workers > 0
    }

    /// Waits until every task accounted to `latch` has completed, helping
    /// by stealing queued jobs (from any scope — helping a sibling scope
    /// is sound because *its* caller waits on its own latch) while
    /// waiting. Returns the first captured task panic, if any.
    fn wait_latch(&self, latch: &Latch) -> Option<Box<dyn std::any::Any + Send>> {
        loop {
            match self.shared.take(None) {
                Some(job) => {
                    // While running a stolen job the caller is a lane:
                    // nested parallel helpers inside it run inline, same
                    // as on spawned workers.
                    let _lane = LaneGuard::enter();
                    run_job(job);
                }
                None => {
                    let mut st = latch.state.lock().unwrap();
                    if st.remaining == 0 {
                        return st.panic.take();
                    }
                    // Nothing to steal and tasks still in flight: sleep
                    // until a completion (every complete() notifies), then
                    // re-check the queues — a running task may have pushed
                    // follow-on work (deferred tasks, nested spawns).
                    let _st = latch.done.wait(st).unwrap();
                }
            }
        }
    }

    /// Runs every task to completion, using the pool workers plus the
    /// calling thread, and returns once all have finished. Tasks may
    /// borrow from the caller's stack (the `'scope` lifetime): none of
    /// them outlives this call.
    ///
    /// Runs inline, in order, when the pool has no spawned workers (serial
    /// pool, or lanes clamped by the host's available parallelism),
    /// [`force_serial`] is active, the caller is itself a pool lane
    /// (nested parallelism), or there is at most one task.
    ///
    /// # Panics
    ///
    /// If a task panics, the panic is captured and re-thrown on the
    /// calling thread after the remaining tasks have completed — the same
    /// contract on the inline and queued paths.
    pub fn run_scoped<'scope>(&self, tasks: Vec<Box<dyn FnOnce() + Send + 'scope>>) {
        if tasks.len() <= 1 || self.workers == 0 || serial_active() {
            let mut first_panic = None;
            for task in tasks {
                if let Err(p) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(task)) {
                    first_panic.get_or_insert(p);
                }
            }
            if let Some(p) = first_panic {
                std::panic::resume_unwind(p);
            }
            return;
        }
        let latch = Arc::new(Latch::new(tasks.len()));
        let jobs: Vec<Job> = tasks
            .into_iter()
            .map(|task| {
                // SAFETY: the job is only erased to 'static so it can sit
                // in a queue; this function blocks until the latch reports
                // every job finished, so no borrow in `task` outlives its
                // referent.
                let task: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(task) };
                let latch = Arc::clone(&latch);
                Box::new(move || {
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(task));
                    latch.complete(result.err());
                }) as Job
            })
            .collect();
        self.shared.push_batch(jobs);
        if let Some(payload) = self.wait_latch(&latch) {
            std::panic::resume_unwind(payload);
        }
    }

    /// Opens a task-graph scope: `f` receives a [`TaskScope`] on which it
    /// may [`TaskScope::spawn`] independent tasks, chain them with
    /// [`TaskScope::spawn_after`], and create dependency-counted deferred
    /// tasks with [`TaskScope::defer`]. The call returns only after every
    /// submitted task (including deferred ones) has completed, so tasks
    /// may borrow from the caller's stack.
    ///
    /// When the pool is serial (no workers, [`force_serial`], or the
    /// caller is itself a pool lane) every task runs inline **at
    /// submission** — spawns in submission order, deferred tasks at the
    /// moment their final dependency signal arrives — which is exactly the
    /// order the parallel path commits in, preserving bitwise parity.
    ///
    /// # Panics
    ///
    /// Task panics are captured and the first is re-thrown here after all
    /// tasks finish. Panics in `f` itself are re-thrown after the tasks it
    /// already spawned have drained.
    pub fn scope<'scope, R>(&self, f: impl FnOnce(&TaskScope<'scope>) -> R) -> R {
        let scope = TaskScope {
            shared: Arc::clone(&self.shared),
            latch: Arc::new(Latch::new(0)),
            inline: self.workers == 0 || serial_active(),
            _marker: PhantomData,
        };
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&scope)));
        let task_panic = if scope.inline {
            // Inline tasks ran (and completed) at submission, so there is
            // nothing to wait for; a non-zero latch means a deferred
            // task's trigger was never fully signaled, which in pooled
            // mode would hang — fail loudly instead (unless `f` panicked
            // first, in which case its panic wins below).
            let mut st = scope.latch.state.lock().unwrap();
            assert!(
                st.remaining == 0 || result.is_err(),
                "TaskScope closed with {} deferred task(s) whose triggers were never signaled",
                st.remaining
            );
            st.panic.take()
        } else {
            self.wait_latch(&scope.latch)
        };
        match result {
            Ok(value) => {
                if let Some(payload) = task_panic {
                    std::panic::resume_unwind(payload);
                }
                value
            }
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }

    /// Streams `items` through `produce` on the pool and feeds each result
    /// to `consume` **in submission order** on the calling thread — the
    /// journal-ordered commit buffer. Task `i`'s result is buffered in
    /// slot `i`; the consumer cursor only ever advances to the lowest
    /// unconsumed index, so the observable commit sequence is independent
    /// of steal order and thread count. While the next-in-order result is
    /// pending the caller steals queued tasks instead of sleeping, so
    /// lanes stay busy across heterogeneous item costs.
    ///
    /// Equivalent to `for (i, it) in items { consume(i, produce(i, it)) }`
    /// — and runs exactly that loop when serial.
    ///
    /// # Panics
    ///
    /// If `produce` panics for some item, the panic is re-thrown on the
    /// caller after in-flight items finish; `consume` is not called for
    /// the panicked item or any later one. (Callers needing per-item fault
    /// isolation catch inside `produce`, as the sweep runner does.)
    pub fn ordered_stream<I, R, F, C>(&self, items: Vec<I>, produce: F, mut consume: C)
    where
        I: Send,
        R: Send,
        F: Fn(usize, I) -> R + Sync,
        C: FnMut(usize, R),
    {
        let n = items.len();
        if n == 0 {
            return;
        }
        if n == 1 || self.workers == 0 || serial_active() {
            for (i, item) in items.into_iter().enumerate() {
                consume(i, produce(i, item));
            }
            return;
        }

        /// One submission-indexed commit slot: the producing task is the
        /// only writer, the consuming caller the only reader, and the
        /// `ready` flag (Release store / Acquire load) orders the two.
        struct Slot<R> {
            ready: AtomicBool,
            value: std::cell::UnsafeCell<Option<R>>,
        }
        // SAFETY: cross-thread access is the producer's single write
        // followed by the consumer's single read, sequenced by `ready`.
        unsafe impl<R: Send> Sync for Slot<R> {}

        let slots: Vec<Slot<R>> = (0..n)
            .map(|_| Slot {
                ready: AtomicBool::new(false),
                value: std::cell::UnsafeCell::new(None),
            })
            .collect();
        let latch = Arc::new(Latch::new(n));
        {
            let produce = &produce;
            let slots = &slots;
            let jobs: Vec<Job> = items
                .into_iter()
                .enumerate()
                .map(|(i, item)| {
                    let latch = Arc::clone(&latch);
                    let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            produce(i, item)
                        }));
                        match result {
                            Ok(value) => {
                                // SAFETY: sole writer of slot i; the
                                // consumer reads only after `ready`.
                                unsafe { *slots[i].value.get() = Some(value) };
                                slots[i].ready.store(true, Ordering::Release);
                                latch.complete(None);
                            }
                            Err(payload) => latch.complete(Some(payload)),
                        }
                    });
                    // SAFETY: erased to 'static to sit in the queue; this
                    // function does not return until the latch drains, so
                    // the borrows of `produce`/`slots` stay valid.
                    unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, Job>(job) }
                })
                .collect();
            self.shared.push_batch(jobs);

            let mut next = 0usize;
            loop {
                while next < n && slots[next].ready.load(Ordering::Acquire) {
                    // SAFETY: `ready` is set, so the producer is done with
                    // this slot and we are the only reader.
                    let value = unsafe { (*slots[next].value.get()).take() }
                        .expect("ordered_stream: ready slot must hold a value");
                    consume(next, value);
                    next += 1;
                }
                if next == n {
                    break;
                }
                if let Some(job) = self.shared.take(None) {
                    let _lane = LaneGuard::enter();
                    run_job(job);
                    continue;
                }
                let st = latch.state.lock().unwrap();
                // Re-check under the latch lock: a producer sets `ready`
                // *before* locking the latch to complete, so if the slot
                // is still not ready here, its notify has not fired yet
                // and the wait below cannot miss it.
                if slots[next].ready.load(Ordering::Acquire) {
                    continue;
                }
                if st.remaining == 0 {
                    // All tasks done yet slot `next` never became ready:
                    // its producer panicked. Fall through to rethrow.
                    break;
                }
                let _st = latch.done.wait(st).unwrap();
            }
        }
        let mut st = latch.state.lock().unwrap();
        while st.remaining > 0 {
            st = latch.done.wait(st).unwrap();
        }
        if let Some(payload) = st.panic.take() {
            drop(st);
            std::panic::resume_unwind(payload);
        }
    }
}

fn worker_loop(shared: Arc<Shared>, lane: usize) {
    IN_WORKER.with(|f| f.set(true));
    WORKER_CTX.with(|c| c.set((Arc::as_ptr(&shared) as usize, lane + 1)));
    loop {
        if let Some(job) = shared.take(Some(lane)) {
            run_job(job);
            continue;
        }
        let guard = shared.sleep.lock().unwrap();
        // Double-check under the sleep lock (pairs with wake_one): a push
        // that raced our empty queue scan has either bumped `pending`
        // (seen here → retry) or will notify after our wait begins.
        if shared.pending.load(Ordering::SeqCst) > 0 {
            drop(guard);
            continue;
        }
        let _guard = shared.available.wait(guard).unwrap();
    }
}

/// A handle to a task submitted on a [`TaskScope`] — an ordering token for
/// [`TaskScope::spawn_after`], not a join handle (the scope itself joins
/// everything).
pub struct TaskHandle {
    node: Arc<TaskNode>,
}

#[derive(Default)]
struct TaskNode {
    state: Mutex<NodeState>,
}

#[derive(Default)]
struct NodeState {
    done: bool,
    followers: Vec<Arc<Deferred>>,
}

impl TaskNode {
    fn finish(&self) {
        let followers = {
            let mut st = self.state.lock().unwrap();
            st.done = true;
            std::mem::take(&mut st.followers)
        };
        for follower in followers {
            follower.signal();
        }
    }

    /// Registers `follower` to be signaled when this task finishes.
    /// Returns false when the task already finished (the caller signals
    /// immediately instead).
    fn subscribe(&self, follower: &Arc<Deferred>) -> bool {
        let mut st = self.state.lock().unwrap();
        if st.done {
            false
        } else {
            st.followers.push(Arc::clone(follower));
            true
        }
    }
}

/// A dependency-counted pending task: holds the job until `remaining`
/// signals arrive, then runs it (inline in serial mode, enqueued on the
/// signaling lane's deque otherwise).
struct Deferred {
    remaining: AtomicUsize,
    job: Mutex<Option<Job>>,
    shared: Arc<Shared>,
    inline: bool,
}

impl Deferred {
    fn signal(self: &Arc<Self>) {
        if self.remaining.fetch_sub(1, Ordering::AcqRel) != 1 {
            return;
        }
        let job = self.job.lock().unwrap().take();
        let Some(job) = job else { return };
        if self.inline {
            // Serial mode: dependencies completed synchronously in
            // submission order, so firing here — at the final signal —
            // is the deterministic commit point.
            run_job(job);
        } else {
            self.shared.push(job);
        }
    }
}

/// The explicit dependency-count handle returned by [`TaskScope::defer`].
///
/// The deferred task runs after exactly `deps` [`Trigger::signal`] calls.
/// **Contract:** every trigger must receive its full signal count before
/// the scope closes — an unsignaled trigger leaves the scope waiting
/// forever (the inline path asserts on it). Call sites guard their signal
/// loops so early returns and panics still deliver the remaining signals.
///
/// Clones share the same count; `Trigger` is `Send + Sync` so shard tasks
/// can signal segment triggers from any lane.
pub struct Trigger {
    deferred: Arc<Deferred>,
}

impl Clone for Trigger {
    fn clone(&self) -> Self {
        Self {
            deferred: Arc::clone(&self.deferred),
        }
    }
}

impl Trigger {
    /// Delivers one dependency signal. The deferred task runs when the
    /// count reaches zero. Signaling more than `deps` times is a bug (the
    /// extra signals are ignored).
    pub fn signal(&self) {
        self.deferred.signal();
    }
}

/// A task-graph submission scope: spawn independent tasks, chain
/// dependents, and defer dependency-counted reductions. Created by
/// [`Pool::scope`]; every submitted task completes before `scope` returns.
pub struct TaskScope<'scope> {
    shared: Arc<Shared>,
    latch: Arc<Latch>,
    /// Serial mode: run every task inline at its (deterministic)
    /// submission point instead of enqueueing.
    inline: bool,
    /// Invariant over 'scope: a longer-lived scope must not be usable
    /// where a shorter one is expected (spawned tasks borrow for 'scope).
    _marker: PhantomData<std::cell::Cell<&'scope ()>>,
}

impl<'scope> TaskScope<'scope> {
    fn submit(&self, job: Box<dyn FnOnce() + Send + 'scope>) {
        // SAFETY: erased to 'static to sit in a queue; `Pool::scope` does
        // not return until this scope's latch drains, so borrows captured
        // for 'scope outlive the job's execution.
        let job: Job = unsafe { std::mem::transmute(job) };
        self.shared.push(job);
    }

    fn wrap<F>(&self, node: &Arc<TaskNode>, f: F) -> impl FnOnce() + Send + 'scope
    where
        F: FnOnce() + Send + 'scope,
    {
        self.latch.add(1);
        let latch = Arc::clone(&self.latch);
        let node = Arc::clone(node);
        move || {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
            // Release followers before the latch so a dependent enqueued
            // by this completion is already visible to the scope's drain.
            node.finish();
            latch.complete(result.err());
        }
    }

    /// Submits an independent task. Returns a [`TaskHandle`] usable as a
    /// dependency in [`TaskScope::spawn_after`].
    pub fn spawn<F>(&self, f: F) -> TaskHandle
    where
        F: FnOnce() + Send + 'scope,
    {
        let node = Arc::new(TaskNode::default());
        let job = self.wrap(&node, f);
        if self.inline {
            run_job_inline(job);
        } else {
            self.submit(Box::new(job));
        }
        TaskHandle { node }
    }

    /// Submits a task that runs only after every handle in `deps` has
    /// completed. With an empty `deps` this is [`TaskScope::spawn`].
    pub fn spawn_after<F>(&self, deps: &[&TaskHandle], f: F) -> TaskHandle
    where
        F: FnOnce() + Send + 'scope,
    {
        let node = Arc::new(TaskNode::default());
        let job = self.wrap(&node, f);
        let deferred = self.make_deferred(deps.len(), Box::new(job));
        let mut missing = 0usize;
        for dep in deps {
            if !dep.node.subscribe(&deferred) {
                missing += 1;
            }
        }
        if deps.is_empty() {
            missing = 1; // count was clamped to 1: release it
        }
        for _ in 0..missing {
            deferred.signal();
        }
        TaskHandle { node }
    }

    /// Submits a task that runs after exactly `deps` explicit
    /// [`Trigger::signal`] calls — the primitive behind per-segment
    /// gradient reduction, where shard k signals segment g as soon as its
    /// copy of that segment commits. `deps == 0` fires immediately.
    ///
    /// See [`Trigger`] for the signal-count contract.
    pub fn defer<F>(&self, deps: usize, f: F) -> Trigger
    where
        F: FnOnce() + Send + 'scope,
    {
        let node = Arc::new(TaskNode::default());
        let job = self.wrap(&node, f);
        let deferred = self.make_deferred(deps, Box::new(job));
        if deps == 0 {
            deferred.signal();
        }
        Trigger { deferred }
    }

    fn make_deferred(&self, deps: usize, job: Box<dyn FnOnce() + Send + 'scope>) -> Arc<Deferred> {
        // SAFETY: same erasure argument as `submit` — the scope's latch
        // already counts this task (wrap() added it), so `Pool::scope`
        // waits for it to run before any 'scope borrow dies.
        let job: Job = unsafe { std::mem::transmute(job) };
        Arc::new(Deferred {
            remaining: AtomicUsize::new(deps.max(1)),
            job: Mutex::new(Some(job)),
            shared: Arc::clone(&self.shared),
            inline: self.inline,
        })
    }
}

/// Runs a not-yet-boxed job inline (serial scopes): same panic capture as
/// the pooled path, without the queue round-trip.
fn run_job_inline(job: impl FnOnce()) {
    job();
}

/// Runs `f` over disjoint sub-ranges covering `0..n` — re-exported through
/// [`crate::backend::parallel_for`]; see there for the full contract.
pub(crate) fn parallel_for_impl<F>(pool: &Pool, n: usize, grain: usize, tasks_hint: usize, f: F)
where
    F: Fn(Range<usize>) + Sync,
{
    let grain = grain.max(1);
    let n_chunks = n.div_ceil(grain);
    if n == 0 {
        return;
    }
    if n_chunks <= 1 || !pool.has_workers() || serial_active() {
        f(0..n);
        return;
    }
    let groups = n_chunks.min(tasks_hint.max(1));
    let grains_per_group = n_chunks.div_ceil(groups);
    let step = grains_per_group * grain;
    let f = &f;
    let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..n.div_ceil(step))
        .map(|g| {
            let start = g * step;
            let end = (start + step).min(n);
            Box::new(move || f(start..end)) as Box<dyn FnOnce() + Send + '_>
        })
        .collect();
    pool.run_scoped(tasks);
}
