//! # xbar-tensor
//!
//! Minimal, dependency-free dense `f32` tensor library backing the
//! crossbar-array neural-network simulation stack.
//!
//! The crate provides exactly what a from-scratch DNN trainer needs:
//!
//! * [`Tensor`] — an owned, row-major, N-dimensional `f32` array with
//!   shape-checked elementwise arithmetic and reductions;
//! * [`backend`] — a dependency-free scoped worker pool (`XBAR_THREADS`,
//!   guaranteed-serial mode) with a strict determinism contract: every
//!   parallel kernel is bitwise identical to its serial execution;
//! * [`linalg`] — cache-blocked, SIMD-accelerated, row-parallel matrix
//!   multiplication kernels (plain, transposed operands, and GEMV);
//! * [`dispatch`] — autotuned GEMM routine registry and per-shape
//!   selector (every routine bitwise-identical within its class);
//! * [`tune`] — the persistent autotune cache behind `XBAR_TUNE_CACHE` /
//!   `XBAR_AUTOTUNE`;
//! * [`json`] — dependency-free canonical JSON (shared with the bench
//!   sweep journal downstream);
//! * [`conv`] — `im2col`/`col2im` based 2-D convolution and pooling
//!   forward/backward kernels;
//! * [`rng`] — a small deterministic xorshift PRNG so every experiment in
//!   the workspace is reproducible from a single seed;
//! * [`init`] — common weight initializers (He, Xavier, uniform);
//! * [`scratch`] — thread-local buffer recycling behind
//!   `Tensor::zeros`/`Tensor::full`, making steady-state training loops
//!   (nearly) allocation-free;
//! * [`elementwise`] — bit-exact SIMD elementwise kernels (axpy update,
//!   batch-norm normalize, softmax row max).
//!
//! # Example
//!
//! ```
//! use xbar_tensor::{Tensor, linalg};
//!
//! # fn main() -> Result<(), xbar_tensor::ShapeError> {
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
//! let b = Tensor::eye(2);
//! let c = linalg::matmul(&a, &b)?;
//! assert_eq!(c.data(), a.data());
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

mod error;
mod gemm;
mod sched;
mod tensor;

pub mod backend;
pub mod conv;
pub mod dispatch;
pub mod elementwise;
pub mod init;
pub mod json;
pub mod linalg;
pub mod qgemm;
pub mod quant;
pub mod rng;
pub mod scratch;
pub mod tune;

pub use error::ShapeError;
pub use gemm::simd_active;
pub use quant::{qmatmul_nt, QScheme, QuantizedTensor};
pub use tensor::Tensor;
