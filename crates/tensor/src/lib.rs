//! # xbar-tensor
//!
//! Minimal, dependency-free dense `f32` tensor library backing the
//! crossbar-array neural-network simulation stack.
//!
//! The crate provides exactly what a from-scratch DNN trainer needs:
//!
//! * [`Tensor`] — an owned, row-major, N-dimensional `f32` array with
//!   shape-checked elementwise arithmetic and reductions;
//! * [`linalg`] — blocked matrix multiplication kernels (plain, transposed
//!   operands, and GEMV) tuned for the single-core simulation workloads in
//!   this workspace;
//! * [`conv`] — `im2col`/`col2im` based 2-D convolution and pooling
//!   forward/backward kernels;
//! * [`rng`] — a small deterministic xorshift PRNG so every experiment in
//!   the workspace is reproducible from a single seed;
//! * [`init`] — common weight initializers (He, Xavier, uniform).
//!
//! # Example
//!
//! ```
//! use xbar_tensor::{Tensor, linalg};
//!
//! # fn main() -> Result<(), xbar_tensor::ShapeError> {
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
//! let b = Tensor::eye(2);
//! let c = linalg::matmul(&a, &b)?;
//! assert_eq!(c.data(), a.data());
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

mod error;
mod tensor;

pub mod conv;
pub mod init;
pub mod linalg;
pub mod rng;

pub use error::ShapeError;
pub use tensor::Tensor;
