//! Property-based tests of tile-granular execution: for any weight
//! shape, tile shape, and mapping, the tiled crossbar agrees with the
//! monolithic reference array.

// Entire file is proptest-driven; compiled only with the non-default
// `slow-proptests` feature (the proptest dep is unavailable offline).
#![cfg(feature = "slow-proptests")]

use proptest::prelude::*;
use xbar_core::{CrossbarArray, Mapping, TileGrid, TiledCrossbar};
use xbar_device::{DeviceConfig, TileShape};
use xbar_tensor::rng::XorShiftRng;
use xbar_tensor::Tensor;

fn mapping_strategy() -> impl Strategy<Value = Mapping> {
    prop::sample::select(Mapping::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Tiled MVM and batched forward agree with the monolithic array for
    /// any shape/tile/mapping combination, including ragged edge tiles.
    #[test]
    fn tiled_matches_monolithic(
        mapping in mapping_strategy(),
        n_out in 1usize..20,
        n_in in 1usize..24,
        tile_rows in 1usize..10,
        tile_cols in 2usize..10,
        batch in 1usize..5,
        seed in 0u64..1024,
    ) {
        let mut rng = XorShiftRng::new(seed.wrapping_mul(0x9E37_79B9).wrapping_add(1));
        // Keep weights small enough that every mapping can represent them
        // even in the worst case (ACM bounds the cumulative column spread
        // over up to 20 outputs, BC the per-element half-span).
        let w = Tensor::rand_uniform(&[n_out, n_in], -0.02, 0.02, &mut rng);
        let x = Tensor::rand_uniform(&[batch, n_in], -1.0, 1.0, &mut rng);
        let tile = TileShape::new(tile_rows, tile_cols);
        let dev = DeviceConfig::ideal();

        let mut r1 = XorShiftRng::new(7);
        let mono = CrossbarArray::program_signed(&w, mapping, dev, &mut r1).unwrap();
        let mut r2 = XorShiftRng::new(7);
        let tiled = TiledCrossbar::program_signed(&w, mapping, dev, tile, &mut r2).unwrap();

        let mono_out = mono.forward(&x).unwrap();
        let tiled_out = tiled.forward(&x).unwrap();
        prop_assert!(
            tiled_out.all_close(&mono_out, 1e-3),
            "{mapping} {n_out}x{n_in} @{tile}: forward diverged"
        );
        prop_assert!(
            tiled.effective_weights().all_close(&w, 1e-3),
            "{mapping} {n_out}x{n_in} @{tile}: effective weights diverged"
        );
    }

    /// The grid covers every logical output and input exactly once, and
    /// per-group `N_D` accounting sums to the grid total.
    #[test]
    fn grid_partitions_are_exact(
        mapping in mapping_strategy(),
        n_out in 1usize..40,
        n_in in 1usize..40,
        tile_rows in 1usize..12,
        tile_cols in 2usize..12,
    ) {
        let tile = TileShape::new(tile_rows, tile_cols);
        let grid = TileGrid::new(n_out, n_in, mapping, Some(tile)).unwrap();
        let rows: usize = grid.row_blocks().iter().map(|&(_, len)| len).sum();
        prop_assert_eq!(rows, n_in);
        let outs: usize = grid.col_groups().iter().map(|g| g.out_len).sum();
        prop_assert_eq!(outs, n_out);
        let nd: usize = grid.col_groups().iter().map(|g| g.dev_len).sum();
        prop_assert_eq!(nd, grid.nd_total());
        prop_assert_eq!(
            grid.nd_total(),
            mapping.num_device_columns(n_out) + grid.replicated_reference_columns()
        );
    }
}
