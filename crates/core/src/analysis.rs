//! The regularization analysis of paper Sec. III-E.
//!
//! For the ACM periphery, expanding `W = S·M` telescopes: the sum of *all*
//! signed weights collapses to the difference between the total conductance
//! of the first and last device columns (Eq. 4):
//!
//! ```text
//! Σᵢⱼ Wᵢⱼ = M̄₁ − M̄_{N_D}
//! ```
//!
//! With `B`-bit elements each column total takes one of `N_I·(2^B−1)+1`
//! values, so the global weight sum is restricted to `≈ 2·N_I·2^B` values —
//! independent of `N_O`. DE and BC leave the sum free to take
//! `≈ 2·N_I·N_O·2^B` values. The ratio (`1/N_O`) is the *constraint
//! tightness* that gives ACM its mild regularization, stronger at low bit
//! precision — the mechanism behind the Fig. 6 variation-resilience
//! results.

use xbar_tensor::Tensor;

use crate::{compose, Mapping, MappingError};

/// Evaluates both sides of the paper's Eq. (4) for an ACM conductance
/// matrix `M (N_D × N_I)`: returns `(Σ W, M̄_first − M̄_last)`, which are
/// equal by the telescoping identity.
///
/// # Errors
///
/// Returns an error if `m` is not a valid ACM conductance matrix shape.
pub fn acm_sum_identity(m: &Tensor) -> Result<(f32, f32), MappingError> {
    let w = compose(m, Mapping::Acm)?;
    let nd = m.shape()[0];
    let first: f32 = m.row(0).sum();
    let last: f32 = m.row(nd - 1).sum();
    Ok((w.sum(), first - last))
}

/// Checks the Eq. (4) identity within `tol`.
///
/// # Errors
///
/// Returns an error if `m` has an invalid shape.
pub fn verify_acm_sum_identity(m: &Tensor, tol: f32) -> Result<bool, MappingError> {
    let (lhs, rhs) = acm_sum_identity(m)?;
    Ok((lhs - rhs).abs() <= tol)
}

/// Number of distinct values the total weight sum `Σᵢⱼ Wᵢⱼ` can take for a
/// quantized `B`-bit, `n_out × n_in` layer under `mapping`
/// (paper Sec. III-E counting argument). Returned as `f64` because the
/// counts overflow integers for realistic layers.
///
/// # Panics
///
/// Panics if `bits == 0` or either dimension is zero.
pub fn representable_sum_count(mapping: Mapping, bits: u8, n_in: usize, n_out: usize) -> f64 {
    assert!(bits >= 1, "need at least 1 bit");
    assert!(n_in > 0 && n_out > 0, "layer dimensions must be positive");
    let levels = ((1u64 << bits) - 1) as f64; // 2^B - 1 steps per element
    match mapping {
        // ACM: the sum is M̄_first − M̄_last; each column total spans
        // n_in·levels steps, the difference spans twice that.
        Mapping::Acm => 2.0 * n_in as f64 * levels + 1.0,
        // DE/BC/Perm: every weight contributes independently; the sum of
        // n_in·n_out quantized weights spans 2·n_in·n_out·levels steps
        // (each weight can move the sum by ±levels steps). Perm only
        // reorders BC's rows, which cannot change the reachable sums.
        Mapping::DoubleElement | Mapping::BiasColumn | Mapping::Perm => {
            2.0 * (n_in * n_out) as f64 * levels + 1.0
        }
    }
}

/// The constraint-tightness ratio of ACM relative to DE/BC: how many times
/// fewer values the global weight sum may take. Approaches `1/n_out`; the
/// *absolute* number of ACM-reachable sums shrinks as `2^B` shrinks, which
/// is why the paper observes stronger regularization (and more variation
/// resilience) at lower bit precision.
pub fn constraint_tightness(bits: u8, n_in: usize, n_out: usize) -> f64 {
    representable_sum_count(Mapping::Acm, bits, n_in, n_out)
        / representable_sum_count(Mapping::DoubleElement, bits, n_in, n_out)
}

/// Hardware-resource summary of a mapping for an `n_out × n_in` layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResourceSummary {
    /// The mapping summarized.
    pub mapping: Mapping,
    /// Synapse elements used.
    pub elements: usize,
    /// Crossbar columns used.
    pub columns: usize,
    /// Periphery add/sub operations per MVM.
    pub periphery_ops: usize,
    /// Signed weight range, `(lo, hi)`, for a normalized device.
    pub weight_range: (f32, f32),
}

/// Builds the resource comparison the paper's Sec. II/III-D tables imply.
pub fn resource_summary(mapping: Mapping, n_in: usize, n_out: usize) -> ResourceSummary {
    let range = xbar_device::ConductanceRange::normalized();
    ResourceSummary {
        mapping,
        elements: mapping.num_elements(n_out, n_in),
        columns: mapping.num_device_columns(n_out),
        periphery_ops: 2 * n_out, // one +1 and one −1 per output row
        weight_range: mapping.weight_range(range),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompose;
    use xbar_device::ConductanceRange;
    use xbar_tensor::rng::XorShiftRng;

    #[test]
    fn eq4_identity_holds_for_random_acm_matrices() {
        let mut rng = XorShiftRng::new(91);
        for _ in 0..20 {
            let w = Tensor::rand_uniform(&[5, 8], -0.08, 0.08, &mut rng);
            let m = decompose(&w, Mapping::Acm, ConductanceRange::normalized()).unwrap();
            assert!(verify_acm_sum_identity(&m, 1e-4).unwrap());
        }
    }

    #[test]
    fn eq4_both_sides_numerically_equal() {
        let mut rng = XorShiftRng::new(92);
        let w = Tensor::rand_uniform(&[4, 6], -0.1, 0.1, &mut rng);
        let m = decompose(&w, Mapping::Acm, ConductanceRange::normalized()).unwrap();
        let (lhs, rhs) = acm_sum_identity(&m).unwrap();
        assert!((lhs - rhs).abs() < 1e-4, "{lhs} vs {rhs}");
        assert!((lhs - w.sum()).abs() < 1e-4);
    }

    #[test]
    fn sum_count_matches_paper_formula() {
        // Paper: ACM constrains ΣW to ~2·N_I·2^B values.
        let count = representable_sum_count(Mapping::Acm, 4, 100, 50);
        assert_eq!(count, 2.0 * 100.0 * 15.0 + 1.0);
        let free = representable_sum_count(Mapping::DoubleElement, 4, 100, 50);
        assert_eq!(free, 2.0 * 5000.0 * 15.0 + 1.0);
    }

    #[test]
    fn tightness_scales_inversely_with_outputs() {
        let t10 = constraint_tightness(4, 64, 10);
        let t100 = constraint_tightness(4, 64, 100);
        assert!(t100 < t10);
        assert!((t10 - 0.1).abs() < 0.01, "~1/n_out, got {t10}");
    }

    #[test]
    fn tightness_absolute_count_shrinks_with_bits() {
        // The paper: the constraint is tighter when 2^B is smaller.
        let low = representable_sum_count(Mapping::Acm, 2, 64, 10);
        let high = representable_sum_count(Mapping::Acm, 6, 64, 10);
        assert!(low < high);
    }

    #[test]
    fn resource_summary_matches_mapping_accessors() {
        let s = resource_summary(Mapping::DoubleElement, 400, 100);
        assert_eq!(s.elements, 200 * 400);
        assert_eq!(s.columns, 200);
        assert_eq!(s.periphery_ops, 200);
        let a = resource_summary(Mapping::Acm, 400, 100);
        assert_eq!(a.elements, 101 * 400);
        assert_eq!(a.weight_range, (-1.0, 1.0));
        let b = resource_summary(Mapping::BiasColumn, 400, 100);
        assert_eq!(b.elements, a.elements);
        assert_eq!(b.weight_range, (-0.5, 0.5));
    }

    #[test]
    #[should_panic(expected = "at least 1 bit")]
    fn sum_count_rejects_zero_bits() {
        let _ = representable_sum_count(Mapping::Acm, 0, 10, 10);
    }
}
