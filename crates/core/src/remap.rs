//! Fault-aware remapping: absorbing stuck-at faults into the mapping's
//! representational slack.
//!
//! The decomposition `W = S·M` is never unique: every valid periphery
//! matrix certifies a strictly positive null vector `x_h` with
//! `S·x_h = 0` (paper Sec. III-C), so a whole family of conductance
//! matrices implements the same weights. A cell stuck at `g_min`/`g_max`
//! forces one entry of a column away from its target; instead of eating
//! that error, the remapper moves the *rest* of the column to compensate.
//!
//! Formally, per faulty column the remapper solves the box-constrained
//! least-squares problem
//!
//! ```text
//! minimise ‖S·δ‖²   over  δ_j ∈ [g_min − m_j, g_max − m_j]  (healthy j)
//!                   with  δ_j  fixed at  g_stuck − m_j       (stuck j)
//! ```
//!
//! — the weight-space error the defective, range-limited hardware must
//! keep. With one stuck cell and headroom the optimum is the exact null
//! shift `δ = c·x_h` and the fault disappears entirely; for ACM the
//! general solution diffuses the stuck-cell discrepancy along the ladder
//! of adjacent columns. The convex problem is solved by projected
//! Gauss–Seidel warm-started from the clamped null shift, and whatever
//! error remains is reported in a [`RemapReport`] rather than silently
//! ignored.

use xbar_device::{ConductanceRange, FaultMap};
use xbar_tensor::{linalg, Tensor};

use crate::{MappingError, PeripheryMatrix};

/// Gauss–Seidel sweeps per faulty column. The systems are small (one row
/// per device column) and warm-started, so convergence is fast; the cap
/// only bounds worst-case work.
const GS_SWEEPS: usize = 80;

/// Outcome of one [`remap_for_faults`] pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RemapReport {
    stuck_cells: usize,
    columns_affected: usize,
    columns_shifted: usize,
    residual_before: f32,
    residual_after: f32,
}

impl RemapReport {
    /// Total stuck cells in the fault map.
    pub fn stuck_cells(&self) -> usize {
        self.stuck_cells
    }

    /// Input columns containing at least one stuck cell.
    pub fn columns_affected(&self) -> usize {
        self.columns_affected
    }

    /// Columns where healthy cells were moved to compensate.
    pub fn columns_shifted(&self) -> usize {
        self.columns_shifted
    }

    /// Frobenius norm of the weight-space error the faults would inflict
    /// on the *untouched* targets (the naive baseline).
    pub fn residual_before(&self) -> f32 {
        self.residual_before
    }

    /// Frobenius norm of the weight-space error remaining after
    /// remapping. Zero means every fault was absorbed exactly.
    pub fn residual_after(&self) -> f32 {
        self.residual_after
    }

    /// Whether remapping absorbed every fault (to float tolerance).
    pub fn is_exact(&self) -> bool {
        self.residual_after <= 1e-5
    }

    /// Fraction of the naive weight-space error removed, in `[0, 1]`.
    pub fn error_reduction(&self) -> f32 {
        if self.residual_before <= f32::EPSILON {
            return 1.0;
        }
        (1.0 - self.residual_after / self.residual_before).max(0.0)
    }

    /// Combines this report with another covering a *disjoint* region of
    /// the same array — used by tiled crossbars that remap each physical
    /// tile independently. Counts add; the Frobenius residuals combine in
    /// quadrature.
    pub fn merge(&self, other: &RemapReport) -> RemapReport {
        RemapReport {
            stuck_cells: self.stuck_cells + other.stuck_cells,
            columns_affected: self.columns_affected + other.columns_affected,
            columns_shifted: self.columns_shifted + other.columns_shifted,
            residual_before: self.residual_before.hypot(other.residual_before),
            residual_after: self.residual_after.hypot(other.residual_after),
        }
    }
}

/// Rewrites each faulty column of `m` so the healthy cells compensate, as
/// far as the device range allows, for the conductances the stuck cells
/// are frozen at, returning the remapped targets and a [`RemapReport`].
///
/// `m` is the `N_D × N_I` target conductance matrix. In the returned
/// tensor, stuck cells hold their forced value — the targets describe
/// what the defective hardware will actually realise — and healthy cells
/// hold the compensated targets, guaranteed inside the device range.
/// Fault-free columns are untouched.
///
/// # Errors
///
/// Returns [`MappingError::FaultMapMismatch`] if the fault map's shape
/// differs from `m`, a shape error if `m` is not `N_D × N_I` for this
/// periphery, and [`MappingError::NonFiniteInput`] if `m` contains
/// NaN/Inf.
pub fn remap_for_faults(
    m: &Tensor,
    periphery: &PeripheryMatrix,
    faults: &FaultMap,
    range: ConductanceRange,
) -> Result<(Tensor, RemapReport), MappingError> {
    if m.ndim() != 2 || m.shape()[0] != periphery.n_dev() {
        return Err(MappingError::Shape(xbar_tensor::ShapeError::new(
            "remap_for_faults",
            format!(
                "expected a {} x N_I conductance matrix, got {:?}",
                periphery.n_dev(),
                m.shape()
            ),
        )));
    }
    if !m.data().iter().all(|v| v.is_finite()) {
        return Err(MappingError::NonFiniteInput {
            op: "remap_for_faults",
        });
    }
    let (nd, n_in) = (m.shape()[0], m.shape()[1]);
    if faults.shape() != (nd, n_in) {
        return Err(MappingError::FaultMapMismatch {
            expected: (nd, n_in),
            got: faults.shape(),
        });
    }

    let xh = periphery.null_vector();
    let s = periphery.matrix();
    let n_out = periphery.n_out();
    let mut out = m.clone();
    let mut report = RemapReport {
        stuck_cells: faults.num_stuck(),
        columns_affected: 0,
        columns_shifted: 0,
        residual_before: 0.0,
        residual_after: 0.0,
    };
    if report.stuck_cells == 0 {
        return Ok((out, report));
    }
    // Normal matrix of the per-column least-squares problem, shared by
    // every column: G = SᵀS (N_D × N_D).
    let gram = linalg::matmul_tn(s, s)?;
    let weight_norm_sq = |delta: &[f32]| {
        (0..n_out)
            .map(|o| {
                let e: f32 = (0..nd).map(|j| s.at(&[o, j]) * delta[j]).sum();
                e * e
            })
            .sum::<f32>()
    };

    let mut delta = vec![0.0f32; nd];
    let mut fixed = vec![false; nd];
    for i in 0..n_in {
        let mut any_stuck = false;
        for j in 0..nd {
            match faults.get(j, i) {
                Some(kind) => {
                    delta[j] = kind.forced_value(range) - m.at(&[j, i]);
                    fixed[j] = true;
                    any_stuck = true;
                }
                None => {
                    delta[j] = 0.0;
                    fixed[j] = false;
                }
            }
        }
        if !any_stuck {
            continue;
        }
        report.columns_affected += 1;
        report.residual_before += weight_norm_sq(&delta);

        // Warm start from the classical null shift: the single scalar c
        // minimising the stuck-cell mismatch along x_h, clamped per cell
        // to the device range.
        let mut num = 0.0f32;
        let mut den = 0.0f32;
        for j in 0..nd {
            if fixed[j] {
                num += xh[j] * delta[j];
                den += xh[j] * xh[j];
            }
        }
        let c = num / den;
        for j in 0..nd {
            if !fixed[j] {
                let lo = range.g_min() - m.at(&[j, i]);
                let hi = range.g_max() - m.at(&[j, i]);
                delta[j] = (c * xh[j]).clamp(lo, hi);
            }
        }

        // Projected Gauss–Seidel on min ‖S·δ‖²: each healthy coordinate
        // in turn moves to the unconstrained minimiser given the others —
        // δ_j = −Σ_{k≠j} G_jk·δ_k / G_jj — then projects onto its range
        // box. The objective is convex, so every step is a descent step.
        for _ in 0..GS_SWEEPS {
            let mut max_change = 0.0f32;
            for j in 0..nd {
                if fixed[j] {
                    continue;
                }
                let g_jj = gram.at(&[j, j]);
                if g_jj <= 1e-12 {
                    continue; // periphery ignores this device column
                }
                let mut acc = 0.0f32;
                for (k, &d) in delta.iter().enumerate() {
                    if k != j {
                        acc += gram.at(&[j, k]) * d;
                    }
                }
                let lo = range.g_min() - m.at(&[j, i]);
                let hi = range.g_max() - m.at(&[j, i]);
                let next = (-acc / g_jj).clamp(lo, hi);
                max_change = max_change.max((next - delta[j]).abs());
                delta[j] = next;
            }
            if max_change < 1e-7 * range.span() {
                break;
            }
        }

        report.residual_after += weight_norm_sq(&delta);
        if delta
            .iter()
            .zip(&fixed)
            .any(|(&d, &f)| !f && d.abs() > 1e-9)
        {
            report.columns_shifted += 1;
        }
        for j in 0..nd {
            *out.at_mut(&[j, i]) = if fixed[j] {
                m.at(&[j, i]) + delta[j] // the forced value
            } else {
                range.clamp(m.at(&[j, i]) + delta[j])
            };
        }
    }
    report.residual_before = report.residual_before.sqrt();
    report.residual_after = report.residual_after.sqrt();
    Ok((out, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use xbar_device::FaultKind;

    fn range() -> ConductanceRange {
        ConductanceRange::normalized()
    }

    /// Effective weights implied by targets, with stuck cells already
    /// folded in by `remap_for_faults`.
    fn weights(m: &Tensor, p: &PeripheryMatrix) -> Tensor {
        linalg::matmul(p.matrix(), m).unwrap()
    }

    #[test]
    fn single_stuck_cell_is_absorbed_exactly() {
        let p = PeripheryMatrix::acm(3);
        // Mid-range targets leave headroom for the shift; one off-centre
        // entry keeps the implemented weights non-trivial.
        let mut m = Tensor::full(&[4, 2], 0.5);
        *m.at_mut(&[2, 0]) = 0.45;
        let ideal = weights(&m, &p);
        let mut map = FaultMap::pristine(4, 2);
        map.set(2, 0, FaultKind::StuckAtGMin);
        let (out, report) = remap_for_faults(&m, &p, &map, range()).unwrap();
        assert!(report.is_exact(), "residual {}", report.residual_after());
        assert!(report.residual_before() > 0.1);
        assert_eq!(report.columns_shifted(), 1);
        assert_eq!(out.at(&[2, 0]), 0.0, "stuck target holds forced value");
        // Column 0 slid down by 0.45 along x_h = 1; weights unchanged.
        assert!(weights(&out, &p).all_close(&ideal, 1e-5));
        assert!((out.at(&[0, 0]) - 0.05).abs() < 1e-5);
        // Untouched column stays put.
        assert_eq!(out.at(&[0, 1]), 0.5);
    }

    #[test]
    fn works_for_all_standard_peripheries() {
        for p in [
            PeripheryMatrix::acm(4),
            PeripheryMatrix::bias_column(4),
            PeripheryMatrix::double_element(4),
        ] {
            let m = Tensor::full(&[p.n_dev(), 3], 0.4);
            let ideal = weights(&m, &p);
            let mut map = FaultMap::pristine(p.n_dev(), 3);
            map.set(1, 1, FaultKind::StuckAtGMin);
            let (out, report) = remap_for_faults(&m, &p, &map, range()).unwrap();
            assert!(report.is_exact(), "{:?}", report);
            assert!(weights(&out, &p).all_close(&ideal, 1e-4));
        }
    }

    #[test]
    fn conflicting_faults_take_least_squares_compromise() {
        let p = PeripheryMatrix::acm(3);
        let m = Tensor::full(&[4, 1], 0.5);
        // One cell pulled up, one pulled down: no remap fixes both, but
        // diffusing the conflict along the ladder (δ = +0.5, +1/6, −1/6,
        // −0.5) spreads it over three weights instead of dumping it on
        // two.
        let mut map = FaultMap::pristine(4, 1);
        map.set(0, 0, FaultKind::StuckAtGMax);
        map.set(3, 0, FaultKind::StuckAtGMin);
        let (out, report) = remap_for_faults(&m, &p, &map, range()).unwrap();
        assert!(!report.is_exact());
        assert!(report.residual_after() < report.residual_before() - 1e-3);
        // The interior cells interpolate between the two frozen ends.
        assert!(out.at(&[1, 0]) > out.at(&[2, 0]));
    }

    #[test]
    fn range_limited_compensation_is_clamped_and_reported() {
        let p = PeripheryMatrix::acm(2);
        // Healthy cells already at g_max: no headroom to move up at all.
        let mut m = Tensor::full(&[3, 1], 1.0);
        *m.at_mut(&[1, 0]) = 0.0;
        let mut map = FaultMap::pristine(3, 1);
        map.set(1, 0, FaultKind::StuckAtGMax); // needs neighbours to rise
        let (out, report) = remap_for_faults(&m, &p, &map, range()).unwrap();
        // Nothing can move: the full fault error remains, honestly
        // reported, and no target leaves the device range.
        assert!(!report.is_exact());
        assert!((report.residual_after() - report.residual_before()).abs() < 1e-6);
        assert!(out.data().iter().all(|&g| (0.0..=1.0).contains(&g)));
    }

    #[test]
    fn partial_absorption_beats_naive_under_conflict() {
        let p = PeripheryMatrix::acm(3);
        // Two stuck-high cells with different gaps: the compensation
        // absorbs most of both.
        let mut m = Tensor::full(&[4, 1], 0.3);
        *m.at_mut(&[2, 0]) = 0.6;
        let mut map = FaultMap::pristine(4, 1);
        map.set(0, 0, FaultKind::StuckAtGMax);
        map.set(2, 0, FaultKind::StuckAtGMax);
        let (_, report) = remap_for_faults(&m, &p, &map, range()).unwrap();
        assert!(report.residual_after() < report.residual_before() * 0.6);
        assert!(report.error_reduction() > 0.4);
    }

    #[test]
    fn pristine_map_is_identity() {
        let p = PeripheryMatrix::acm(3);
        let m = Tensor::full(&[4, 5], 0.2);
        let map = FaultMap::pristine(4, 5);
        let (out, report) = remap_for_faults(&m, &p, &map, range()).unwrap();
        assert_eq!(out, m);
        assert_eq!(report.columns_affected(), 0);
        assert_eq!(report.residual_before(), 0.0);
        assert!(report.is_exact());
        assert_eq!(report.error_reduction(), 1.0);
    }

    #[test]
    fn saturated_column_still_gains_from_partial_moves() {
        let p = PeripheryMatrix::acm(3);
        // Mixed column: some cells have headroom, some are pinned at the
        // ceiling. The solver moves what it can.
        let m = Tensor::from_vec(vec![1.0, 0.5, 0.4, 1.0], &[4, 1]).unwrap();
        let mut map = FaultMap::pristine(4, 1);
        map.set(1, 0, FaultKind::StuckAtGMax); // wants neighbours up by 0.5
        let (out, report) = remap_for_faults(&m, &p, &map, range()).unwrap();
        assert!(report.residual_after() < report.residual_before());
        assert!(out.data().iter().all(|&g| (0.0..=1.0).contains(&g)));
        // The cell with headroom moved toward the stuck value's level.
        assert!(out.at(&[2, 0]) > 0.4);
    }

    #[test]
    fn shape_mismatches_are_typed_errors() {
        let p = PeripheryMatrix::acm(3);
        let m = Tensor::full(&[4, 2], 0.5);
        let bad_map = FaultMap::pristine(3, 2);
        assert!(matches!(
            remap_for_faults(&m, &p, &bad_map, range()),
            Err(MappingError::FaultMapMismatch { .. })
        ));
        let bad_m = Tensor::full(&[5, 2], 0.5);
        assert!(matches!(
            remap_for_faults(&bad_m, &p, &FaultMap::pristine(5, 2), range()),
            Err(MappingError::Shape(_))
        ));
        let nan_m = Tensor::full(&[4, 2], f32::NAN);
        assert!(matches!(
            remap_for_faults(&nan_m, &p, &FaultMap::pristine(4, 2), range()),
            Err(MappingError::NonFiniteInput { .. })
        ));
    }
}
