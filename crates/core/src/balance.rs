//! Column-balance diagnostics for ACM-trained conductance matrices.
//!
//! ACM's representable set couples every weight in a column: the running
//! sums of the column's weights must fit inside the conductance span
//! (Sec. III-D: "ACM is limited by having to balance DNN accuracy and
//! weight range"). These diagnostics quantify how hard that constraint is
//! binding on a given matrix — how much conductance headroom each column
//! has left, and what fraction of elements sit pinned at the rails —
//! which is the signal behind the small-width ACM accuracy floor discussed
//! in EXPERIMENTS.md.

use xbar_device::ConductanceRange;
use xbar_tensor::Tensor;

use crate::MappingError;

/// Saturation/headroom profile of a conductance matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct BalanceProfile {
    /// Fraction of elements within `tol` of either conductance rail.
    pub saturated_frac: f32,
    /// Per-column remaining headroom: `span − (max − min)` of each input
    /// column, normalized by span (`1` = completely free, `0` = the
    /// column's spread already covers the full range).
    pub column_headroom: Vec<f32>,
    /// Mean of [`BalanceProfile::column_headroom`].
    pub mean_headroom: f32,
}

impl BalanceProfile {
    /// Whether the constraint is essentially inactive (most elements
    /// interior, plenty of headroom everywhere).
    pub fn is_relaxed(&self) -> bool {
        self.saturated_frac < 0.05 && self.mean_headroom > 0.25
    }
}

/// Profiles a conductance matrix `M (N_D × N_I)` against the device range.
///
/// # Errors
///
/// Returns a shape error if `m` is not a non-empty 2-D matrix.
pub fn balance_profile(
    m: &Tensor,
    range: ConductanceRange,
    tol: f32,
) -> Result<BalanceProfile, MappingError> {
    if m.ndim() != 2 || m.is_empty() {
        return Err(MappingError::Shape(xbar_tensor::ShapeError::new(
            "balance_profile",
            format!("expected non-empty 2-D matrix, got {:?}", m.shape()),
        )));
    }
    let (nd, n_in) = (m.shape()[0], m.shape()[1]);
    let span = range.span();
    let mut saturated = 0usize;
    for &g in m.data() {
        if (g - range.g_min()).abs() <= tol || (range.g_max() - g).abs() <= tol {
            saturated += 1;
        }
    }
    let mut column_headroom = Vec::with_capacity(n_in);
    for i in 0..n_in {
        let mut lo = f32::INFINITY;
        let mut hi = f32::NEG_INFINITY;
        for j in 0..nd {
            let g = m.at(&[j, i]);
            lo = lo.min(g);
            hi = hi.max(g);
        }
        column_headroom.push(((span - (hi - lo)) / span).clamp(0.0, 1.0));
    }
    let mean_headroom = column_headroom.iter().sum::<f32>() / n_in as f32;
    Ok(BalanceProfile {
        saturated_frac: saturated as f32 / m.len() as f32,
        column_headroom,
        mean_headroom,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{decompose, Mapping};
    use xbar_tensor::rng::XorShiftRng;

    fn range() -> ConductanceRange {
        ConductanceRange::normalized()
    }

    #[test]
    fn mid_range_matrix_is_fully_relaxed() {
        let m = Tensor::full(&[5, 4], 0.5);
        let p = balance_profile(&m, range(), 1e-3).unwrap();
        assert_eq!(p.saturated_frac, 0.0);
        assert!(p.column_headroom.iter().all(|&h| (h - 1.0).abs() < 1e-6));
        assert!(p.is_relaxed());
    }

    #[test]
    fn rail_pinned_matrix_is_saturated() {
        let mut m = Tensor::zeros(&[4, 2]);
        *m.at_mut(&[0, 0]) = 1.0;
        *m.at_mut(&[1, 0]) = 1.0;
        let p = balance_profile(&m, range(), 1e-3).unwrap();
        assert_eq!(p.saturated_frac, 1.0);
        // Column 0 spans the full range: zero headroom.
        assert_eq!(p.column_headroom[0], 0.0);
        assert!(!p.is_relaxed());
    }

    #[test]
    fn small_weights_decompose_with_headroom() {
        let mut rng = XorShiftRng::new(201);
        let w = Tensor::rand_uniform(&[6, 8], -0.02, 0.02, &mut rng);
        let m = decompose(&w, Mapping::Acm, range()).unwrap();
        let p = balance_profile(&m, range(), 1e-4).unwrap();
        assert!(p.mean_headroom > 0.5, "headroom {}", p.mean_headroom);
    }

    #[test]
    fn headroom_shrinks_as_weights_grow() {
        let mut rng = XorShiftRng::new(202);
        let w_small = Tensor::rand_uniform(&[4, 6], -0.02, 0.02, &mut rng);
        let w_big = w_small.scale(8.0);
        let p_small = balance_profile(
            &decompose(&w_small, Mapping::Acm, range()).unwrap(),
            range(),
            1e-4,
        )
        .unwrap();
        let p_big = balance_profile(
            &decompose(&w_big, Mapping::Acm, range()).unwrap(),
            range(),
            1e-4,
        )
        .unwrap();
        assert!(p_big.mean_headroom < p_small.mean_headroom);
    }

    #[test]
    fn rejects_bad_shapes() {
        assert!(balance_profile(&Tensor::zeros(&[3]), range(), 1e-3).is_err());
    }
}
