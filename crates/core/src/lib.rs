//! # xbar-core
//!
//! The primary contribution of the DAC 2020 paper *"A Device Non-Ideality
//! Resilient Approach for Mapping Neural Networks to Crossbar Arrays"*
//! (Kazemi et al.): the **adjacent connection matrix (ACM)** and the
//! periphery-matrix framework it lives in.
//!
//! A crossbar array stores weights as *non-negative* conductances, but DNN
//! weight matrices are signed. All practical mappings factor the signed
//! matrix `W` as
//!
//! ```text
//! W = S · M,    M ≥ 0
//! ```
//!
//! where `M` is the conductance matrix on the crossbar and `S` — the
//! *periphery matrix* — is a fixed signed matrix with entries in
//! `{−1, 0, +1}` implemented as additions/subtractions of digitized column
//! outputs at the array periphery (paper Sec. III-B).
//!
//! The crate provides:
//!
//! * [`Mapping`] — the three mappings the paper studies: double element
//!   (DE), bias column (BC), and the proposed ACM;
//! * [`PeripheryMatrix`] — construction and validation of periphery
//!   matrices, including the paper's two sufficient conditions
//!   (`rank(S) = N_O` and a strictly positive null vector, Sec. III-C);
//! * [`decompose`]/[`compose`] — constructive per-mapping decompositions
//!   plus a generic Gaussian-elimination solver for *any* valid `S`;
//! * [`CrossbarArray`] — a behavioural crossbar simulator that programs
//!   `M` through a [`xbar_device::DeviceConfig`] (quantization +
//!   variation) and evaluates signed MVMs;
//! * [`remap_for_faults`] — fault-aware remapping: stuck-at defects are
//!   absorbed into the null-space slack of `W = S·M` (shifting a column by
//!   `c·x_h` changes no weight), with the unabsorbable residual reported;
//! * [`analysis`] — the Sec. III-E regularization identity
//!   (`ΣW = M̄_1 − M̄_{N_D}`), representable-sum counting, weight-range and
//!   hardware-cost accounting.
//!
//! # Example
//!
//! ```
//! use xbar_core::{compose, decompose, Mapping};
//! use xbar_device::ConductanceRange;
//! use xbar_tensor::{rng::XorShiftRng, Tensor};
//!
//! # fn main() -> Result<(), xbar_core::MappingError> {
//! let mut rng = XorShiftRng::new(7);
//! let w = Tensor::rand_uniform(&[4, 6], -0.4, 0.4, &mut rng);
//! let range = ConductanceRange::normalized();
//!
//! let m = decompose(&w, Mapping::Acm, range)?;
//! assert!(m.min() >= 0.0);                    // crossbar-programmable
//! let back = compose(&m, Mapping::Acm)?;
//! assert!(back.all_close(&w, 1e-5));          // exact reconstruction
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

pub mod analysis;
mod balance;
mod crossbar;
mod decompose;
mod error;
mod healing;
mod mapping;
mod periphery;
mod quantized;
mod remap;
mod tiling;

pub use balance::{balance_profile, BalanceProfile};
pub use crossbar::{magnitude_permutation, CrossbarArray};
pub use decompose::{compose, decompose, decompose_with_periphery, max_representable_scale};
pub use error::MappingError;
pub use healing::{
    checksum_residual, HealthAction, HealthMonitor, RepairAttempt, RepairPolicy, RepairStage,
    ScrubReport, SelfHealingCrossbar, TileHealth,
};
pub use mapping::{Mapping, ParseMappingError};
pub use periphery::PeripheryMatrix;
pub use quantized::{quantized_raw_batch, QuantReadout};
pub use remap::{remap_for_faults, RemapReport};
pub use tiling::{ColGroup, TileGrid, TiledCrossbar};
// Re-exported from `xbar_device` (where the physical array bound lives)
// so existing `xbar_core::TileShape` callers keep compiling.
pub use xbar_device::TileShape;
// Re-exported alongside the quantized readout that consumes it.
pub use xbar_device::AdcSpec;
