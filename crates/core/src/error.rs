use std::error::Error;
use std::fmt;

use xbar_tensor::ShapeError;

/// Errors from mapping construction, validation, and decomposition.
#[derive(Debug, Clone, PartialEq)]
pub enum MappingError {
    /// A tensor shape was incompatible with the operation.
    Shape(ShapeError),
    /// The candidate periphery matrix violates one of the paper's
    /// sufficient conditions (Sec. III-C).
    InvalidPeriphery {
        /// Which condition failed, in human-readable form.
        reason: String,
    },
    /// The signed matrix cannot be represented with non-negative
    /// conductances in the device range under the chosen mapping
    /// (e.g. a BC weight outside `[−G_max/2, G_max/2]`).
    NotRepresentable {
        /// Which mapping rejected the matrix.
        mapping: &'static str,
        /// Human-readable detail (offending value / bound).
        detail: String,
    },
}

impl fmt::Display for MappingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Shape(e) => write!(f, "{e}"),
            Self::InvalidPeriphery { reason } => {
                write!(f, "invalid periphery matrix: {reason}")
            }
            Self::NotRepresentable { mapping, detail } => {
                write!(f, "matrix not representable under {mapping} mapping: {detail}")
            }
        }
    }
}

impl Error for MappingError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Shape(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ShapeError> for MappingError {
    fn from(e: ShapeError) -> Self {
        Self::Shape(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = MappingError::InvalidPeriphery {
            reason: "rank deficient".into(),
        };
        assert!(e.to_string().contains("rank deficient"));

        let e = MappingError::NotRepresentable {
            mapping: "BC",
            detail: "weight 0.9 exceeds 0.5".into(),
        };
        assert!(e.to_string().contains("BC"));

        let e = MappingError::from(ShapeError::new("compose", "bad dims"));
        assert!(e.to_string().contains("compose"));
    }

    #[test]
    fn shape_error_preserves_source() {
        let e = MappingError::from(ShapeError::new("x", "y"));
        assert!(Error::source(&e).is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MappingError>();
    }
}
