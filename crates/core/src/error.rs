use std::error::Error;
use std::fmt;

use xbar_tensor::ShapeError;

/// Errors from mapping construction, validation, and decomposition.
#[derive(Debug, Clone, PartialEq)]
pub enum MappingError {
    /// A tensor shape was incompatible with the operation.
    Shape(ShapeError),
    /// The candidate periphery matrix violates one of the paper's
    /// sufficient conditions (Sec. III-C).
    InvalidPeriphery {
        /// Which condition failed, in human-readable form.
        reason: String,
    },
    /// The signed matrix cannot be represented with non-negative
    /// conductances in the device range under the chosen mapping
    /// (e.g. a BC weight outside `[−G_max/2, G_max/2]`).
    NotRepresentable {
        /// Which mapping rejected the matrix.
        mapping: &'static str,
        /// Human-readable detail (offending value / bound).
        detail: String,
    },
    /// An input tensor contained NaN or ±Inf. Analog crossbar hardware has
    /// no representation for these; letting them through would silently
    /// poison every downstream accumulation.
    NonFiniteInput {
        /// The operation that rejected the input.
        op: &'static str,
    },
    /// A stuck-at fault map was supplied for an array of a different
    /// shape.
    FaultMapMismatch {
        /// `(rows, cols)` of the conductance matrix being programmed.
        expected: (usize, usize),
        /// `(rows, cols)` of the offending fault map.
        got: (usize, usize),
    },
    /// The array configuration cannot run the requested operation (e.g.
    /// the quantized readout on a device without a bit width ≤ 8).
    Unsupported {
        /// The operation that was refused.
        op: &'static str,
        /// Why, in human-readable form.
        reason: String,
    },
    /// Closed-loop programming exhausted its write budget with cells still
    /// out of tolerance, and the caller demanded full convergence.
    ProgrammingFailed {
        /// Number of cells that failed to converge.
        unconverged: usize,
        /// The largest remaining `|realised − target|`, in conductance
        /// units.
        worst_residual: f32,
    },
}

impl fmt::Display for MappingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Shape(e) => write!(f, "{e}"),
            Self::InvalidPeriphery { reason } => {
                write!(f, "invalid periphery matrix: {reason}")
            }
            Self::NotRepresentable { mapping, detail } => {
                write!(
                    f,
                    "matrix not representable under {mapping} mapping: {detail}"
                )
            }
            Self::NonFiniteInput { op } => {
                write!(f, "{op}: input contains NaN or infinite values")
            }
            Self::FaultMapMismatch { expected, got } => {
                write!(
                    f,
                    "fault map shape {}x{} does not match array shape {}x{}",
                    got.0, got.1, expected.0, expected.1
                )
            }
            Self::Unsupported { op, reason } => {
                write!(f, "{op}: unsupported configuration: {reason}")
            }
            Self::ProgrammingFailed {
                unconverged,
                worst_residual,
            } => {
                write!(
                    f,
                    "programming left {unconverged} cell(s) out of tolerance \
                     (worst residual {worst_residual})"
                )
            }
        }
    }
}

impl Error for MappingError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Shape(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ShapeError> for MappingError {
    fn from(e: ShapeError) -> Self {
        Self::Shape(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = MappingError::InvalidPeriphery {
            reason: "rank deficient".into(),
        };
        assert!(e.to_string().contains("rank deficient"));

        let e = MappingError::NotRepresentable {
            mapping: "BC",
            detail: "weight 0.9 exceeds 0.5".into(),
        };
        assert!(e.to_string().contains("BC"));

        let e = MappingError::from(ShapeError::new("compose", "bad dims"));
        assert!(e.to_string().contains("compose"));

        let e = MappingError::NonFiniteInput { op: "mvm_raw" };
        assert!(e.to_string().contains("mvm_raw"));
        assert!(e.to_string().contains("NaN"));

        let e = MappingError::FaultMapMismatch {
            expected: (3, 4),
            got: (5, 6),
        };
        assert!(e.to_string().contains("5x6"));
        assert!(e.to_string().contains("3x4"));

        let e = MappingError::ProgrammingFailed {
            unconverged: 7,
            worst_residual: 0.25,
        };
        assert!(e.to_string().contains('7'));
    }

    #[test]
    fn shape_error_preserves_source() {
        let e = MappingError::from(ShapeError::new("x", "y"));
        assert!(Error::source(&e).is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MappingError>();
    }
}
