use xbar_device::{DeviceConfig, FaultMap, ProgrammingReport};
use xbar_tensor::rng::XorShiftRng;
use xbar_tensor::{backend, linalg, Tensor};

use crate::{decompose, remap_for_faults, Mapping, MappingError, PeripheryMatrix, RemapReport};

/// A behavioural simulator of one crossbar array plus its periphery.
///
/// The array stores a non-negative conductance matrix `M` of shape
/// `(N_D, N_I)` — `N_I` rows driven by input voltages, `N_D` columns of
/// synapse elements. Programming goes through a
/// [`DeviceConfig`]: target conductances are snapped to the device's
/// quantized states and then perturbed by device variation, reproducing the
/// paper's inference-under-variation methodology (Sec. IV-B): *train,
/// program with noise, evaluate without fine-tuning*.
///
/// An MVM is evaluated in two stages, exactly as in hardware:
/// 1. the analog stage — raw column dot products `y_dev = M·x`;
/// 2. the digital periphery — the fixed signed combine `y = S·y_dev`.
///
/// The analog stage reads the *effective* conductances: the programmed
/// values composed with the device's parasitic read non-idealities
/// (conductance drift at the configured time index, then the
/// position-dependent line-resistance attenuation, the whole array acting
/// as one tile). With both parasitic models off the effective matrix is
/// the programmed matrix, bitwise.
///
/// # Example
///
/// ```
/// use xbar_core::{CrossbarArray, Mapping};
/// use xbar_device::DeviceConfig;
/// use xbar_tensor::{rng::XorShiftRng, Tensor};
///
/// # fn main() -> Result<(), xbar_core::MappingError> {
/// let w = Tensor::from_vec(vec![0.4, -0.2, -0.3, 0.1], &[2, 2])?;
/// let mut rng = XorShiftRng::new(1);
/// // Ideal device: the crossbar result equals the mathematical MVM.
/// let xbar = CrossbarArray::program_signed(&w, Mapping::Acm, DeviceConfig::ideal(), &mut rng)?;
/// let x = Tensor::from_vec(vec![1.0, 2.0], &[2])?;
/// let y = xbar.mvm_signed(&x)?;
/// assert!((y.data()[0] - 0.0).abs() < 1e-6);   // 0.4·1 − 0.2·2
/// assert!((y.data()[1] - (-0.1)).abs() < 1e-6); // −0.3·1 + 0.1·2
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CrossbarArray {
    mapping: Mapping,
    periphery: PeripheryMatrix,
    device: DeviceConfig,
    /// Ideal (post-quantization, pre-variation) conductance targets.
    targets: Tensor,
    /// Realised conductances after variation sampling.
    programmed: Tensor,
    /// What the read path sees: `programmed` composed with drift and
    /// line-resistance attenuation (equal to `programmed` when both are
    /// off).
    effective: Tensor,
    /// The stuck-at defect pattern this physical array was dealt.
    faults: FaultMap,
    /// Outcome of the most recent programming pass.
    report: ProgrammingReport,
}

/// Stable descending order of the device rows of `M (N_D × N_I)` by total
/// deviation from `mid` (`Σᵢ |m[j,i] − mid|`) — the X-CHANGR-style
/// placement rule behind [`Mapping::Perm`]: the returned `perm` assigns
/// logical device column `perm[p]` to physical position `p`, so the
/// largest-magnitude rows land nearest the drivers where IR-drop
/// attenuation is smallest. The sort is stable, so a BC reference row
/// (all `mid`, deviation exactly zero, stored last) stays last.
pub fn magnitude_permutation(m: &Tensor, mid: f32) -> Vec<usize> {
    let (nd, n_in) = (m.shape()[0], m.shape()[1]);
    let key: Vec<f32> = (0..nd)
        .map(|j| {
            m.data()[j * n_in..(j + 1) * n_in]
                .iter()
                .map(|&g| (g - mid).abs())
                .sum()
        })
        .collect();
    let mut perm: Vec<usize> = (0..nd).collect();
    perm.sort_by(|&a, &b| {
        key[b]
            .partial_cmp(&key[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    perm
}

/// Copies the rows of `M` into physical order: row `p` of the result is
/// logical row `perm[p]` of `m`.
pub(crate) fn permute_rows(m: &Tensor, perm: &[usize]) -> Tensor {
    let (_, n_in) = (m.shape()[0], m.shape()[1]);
    let mut out = Tensor::zeros(&[perm.len(), n_in]);
    for (p, &logical) in perm.iter().enumerate() {
        out.data_mut()[p * n_in..(p + 1) * n_in]
            .copy_from_slice(&m.data()[logical * n_in..(logical + 1) * n_in]);
    }
    out
}

/// Composes the parasitic read non-idealities onto a programmed
/// conductance matrix: drift first (cell state decays; stuck cells are
/// physically frozen and do not drift), then line-resistance attenuation
/// over the given tile-local block geometry handled by the caller. This
/// monolithic variant treats the whole matrix as one tile. Returns a
/// plain clone (bitwise identity) when both models are off.
fn effective_monolithic(programmed: &Tensor, device: &DeviceConfig, faults: &FaultMap) -> Tensor {
    let line = device.line_resistance();
    let drift = device.drift();
    let mut eff = programmed.clone();
    if drift.is_active() {
        let range = device.range();
        let cols = eff.shape()[1];
        for (idx, g) in eff.data_mut().iter_mut().enumerate() {
            let (r, c) = (idx / cols, idx % cols);
            if faults.get(r, c).is_none() {
                *g = drift.decayed(*g, r, c, range);
            }
        }
    }
    line.apply_tile(&mut eff);
    eff
}

impl CrossbarArray {
    /// Decomposes a signed weight matrix `W (N_O × N_I)` under `mapping`
    /// and programs the resulting conductances through `device`.
    ///
    /// # Errors
    ///
    /// Returns an error if the decomposition fails (weights outside the
    /// representable range — see [`decompose`]).
    pub fn program_signed(
        w: &Tensor,
        mapping: Mapping,
        device: DeviceConfig,
        rng: &mut XorShiftRng,
    ) -> Result<Self, MappingError> {
        let m = decompose(w, mapping, device.range())?;
        Self::program_conductances(&m, mapping, device, rng)
    }

    /// Like [`CrossbarArray::program_signed`], but absorbs the sampled
    /// stuck-at faults into the mapping's null-space slack before
    /// programming (see [`remap_for_faults`]); the [`RemapReport`] carries
    /// the residual weight error that could not be absorbed.
    ///
    /// # Errors
    ///
    /// Returns an error if the decomposition fails.
    pub fn program_signed_remapped(
        w: &Tensor,
        mapping: Mapping,
        device: DeviceConfig,
        rng: &mut XorShiftRng,
    ) -> Result<(Self, RemapReport), MappingError> {
        let m = decompose(w, mapping, device.range())?;
        Self::program_conductances_remapped(&m, mapping, device, rng)
    }

    /// Programs an explicit non-negative conductance matrix
    /// `M (N_D × N_I)` — the path used after training, where the trainer
    /// owns `M` directly.
    ///
    /// # Errors
    ///
    /// Returns an error if `M` is negative anywhere, exceeds the device
    /// range, or its row count is invalid for `mapping`.
    pub fn program_conductances(
        m: &Tensor,
        mapping: Mapping,
        device: DeviceConfig,
        rng: &mut XorShiftRng,
    ) -> Result<Self, MappingError> {
        Self::program_inner(m, mapping, device, false, rng).map(|(xbar, _)| xbar)
    }

    /// Like [`CrossbarArray::program_conductances`], but fault-aware: after
    /// sampling the stuck-at pattern, each faulty column is shifted along
    /// the periphery's null direction so the stuck cells land on the
    /// conductances they are frozen at anyway (see [`remap_for_faults`]).
    ///
    /// # Errors
    ///
    /// Same validation as [`CrossbarArray::program_conductances`].
    pub fn program_conductances_remapped(
        m: &Tensor,
        mapping: Mapping,
        device: DeviceConfig,
        rng: &mut XorShiftRng,
    ) -> Result<(Self, RemapReport), MappingError> {
        Self::program_inner(m, mapping, device, true, rng)
            .map(|(xbar, report)| (xbar, report.expect("remap requested")))
    }

    fn program_inner(
        m: &Tensor,
        mapping: Mapping,
        device: DeviceConfig,
        remap: bool,
        rng: &mut XorShiftRng,
    ) -> Result<(Self, Option<RemapReport>), MappingError> {
        if m.ndim() != 2 {
            return Err(MappingError::Shape(xbar_tensor::ShapeError::new(
                "program_conductances",
                format!("expected 2-D conductance matrix, got {:?}", m.shape()),
            )));
        }
        if !m.data().iter().all(|v| v.is_finite()) {
            return Err(MappingError::NonFiniteInput {
                op: "program_conductances",
            });
        }
        let range = device.range();
        if m.min() < range.g_min() - 1e-6 || m.max() > range.g_max() + 1e-6 {
            return Err(MappingError::NotRepresentable {
                mapping: mapping.tag(),
                detail: format!(
                    "conductances [{}, {}] outside device range [{}, {}]",
                    m.min(),
                    m.max(),
                    range.g_min(),
                    range.g_max()
                ),
            });
        }
        let nd = m.shape()[0];
        let n_out = match mapping {
            Mapping::DoubleElement => {
                if !nd.is_multiple_of(2) {
                    return Err(MappingError::Shape(xbar_tensor::ShapeError::new(
                        "program_conductances",
                        format!("DE needs an even device-column count, got {nd}"),
                    )));
                }
                nd / 2
            }
            Mapping::BiasColumn | Mapping::Acm | Mapping::Perm => {
                if nd < 2 {
                    return Err(MappingError::Shape(xbar_tensor::ShapeError::new(
                        "program_conductances",
                        format!("{mapping} needs at least two device columns, got {nd}"),
                    )));
                }
                nd - 1
            }
        };
        // Perm: `m` arrives in logical (decompose) order; the physical
        // placement reorders device columns so large-magnitude rows sit
        // nearest the drivers, and the inverse permutation is folded into
        // the periphery so `S_p · (P·M) = S · M` exactly.
        let (periphery, m_phys) = match mapping {
            Mapping::Perm => {
                let perm = magnitude_permutation(m, range.midpoint());
                let periphery = mapping.periphery(n_out).permuted(&perm);
                (periphery, Some(permute_rows(m, &perm)))
            }
            _ => (mapping.periphery(n_out), None),
        };
        let m = m_phys.as_ref().unwrap_or(m);
        // Stage 1: snap to the device's programmable states (non-uniform
        // in conductance for nonlinear devices — states sit at equal pulse
        // spacing along the transfer curve).
        let mut targets = m.map(|g| device.snap(g));
        // Stage 2: deal this physical array its stuck-at defect pattern
        // (consumes no randomness under the default fault-free model).
        let faults = device.faults().sample_map(nd, m.shape()[1], rng);
        // Stage 3 (optional): absorb the faults into the mapping's slack.
        // The compensated targets stay analog — closed-loop programming can
        // trim a cell to any in-range conductance; the state ladder only
        // constrains training-time weight updates. Re-snapping here would
        // quantize away sub-step compensations.
        let remap_report = if remap {
            let (shifted, report) = remap_for_faults(&targets, &periphery, &faults, range)?;
            targets = shifted;
            Some(report)
        } else {
            None
        };
        // Stage 4: write the targets through the programming scheme —
        // variation per write, stuck cells frozen, unconverged cells
        // reported rather than silently mis-written.
        let (programmed, report) = device.programming().program_tensor(
            &targets,
            &device.variation(),
            range,
            Some(&faults),
            rng,
        );
        let effective = effective_monolithic(&programmed, &device, &faults);
        Ok((
            Self {
                mapping,
                periphery,
                device,
                targets,
                programmed,
                effective,
                faults,
                report,
            },
            remap_report,
        ))
    }

    /// The mapping this array was programmed with.
    pub fn mapping(&self) -> Mapping {
        self.mapping
    }

    /// The device model.
    pub fn device(&self) -> &DeviceConfig {
        &self.device
    }

    /// The periphery matrix.
    pub fn periphery(&self) -> &PeripheryMatrix {
        &self.periphery
    }

    /// Number of inputs (crossbar rows).
    pub fn n_in(&self) -> usize {
        self.programmed.shape()[1]
    }

    /// Number of signed outputs.
    pub fn n_out(&self) -> usize {
        self.periphery.n_out()
    }

    /// Number of device columns (`N_D`).
    pub fn n_dev(&self) -> usize {
        self.periphery.n_dev()
    }

    /// Total synapse elements in the array.
    pub fn num_elements(&self) -> usize {
        self.programmed.len()
    }

    /// The realised conductances (after quantization and variation).
    pub fn conductances(&self) -> &Tensor {
        &self.programmed
    }

    /// The conductances the read path sees: [`CrossbarArray::conductances`]
    /// composed with drift (at the device's configured time index) and
    /// line-resistance attenuation. Equal to the programmed matrix when
    /// both parasitic models are off.
    pub fn effective_conductances(&self) -> &Tensor {
        &self.effective
    }

    /// The ideal conductance targets (after quantization, before
    /// variation).
    pub fn targets(&self) -> &Tensor {
        &self.targets
    }

    /// The effective signed weight matrix `S · G` realised by the array,
    /// including the parasitic read non-idealities.
    pub fn effective_weights(&self) -> Tensor {
        linalg::matmul(self.periphery.matrix(), &self.effective)
            .expect("periphery and conductances are dimension-checked at construction")
    }

    /// The stuck-at defect pattern this array was dealt at programming
    /// time (pristine under the default fault-free device).
    pub fn fault_map(&self) -> &FaultMap {
        &self.faults
    }

    /// Outcome of the most recent programming pass: converged / stuck /
    /// unconverged cell counts and write statistics.
    pub fn programming_report(&self) -> &ProgrammingReport {
        &self.report
    }

    /// Returns a typed error if the last programming pass left any cell
    /// out of tolerance — for callers that need strict convergence rather
    /// than the default graceful degradation.
    ///
    /// # Errors
    ///
    /// [`MappingError::ProgrammingFailed`] with the unconverged-cell count
    /// and worst residual.
    pub fn require_converged(&self) -> Result<(), MappingError> {
        if self.report.all_converged() {
            Ok(())
        } else {
            Err(MappingError::ProgrammingFailed {
                unconverged: self.report.num_unconverged(),
                worst_residual: self.report.worst_residual(),
            })
        }
    }

    /// Re-programs the array around the stored targets, modelling a fresh
    /// chip written with the same weights — one Monte-Carlo sample of the
    /// paper's Fig. 6 loop. The defect pattern is part of the chip, so it
    /// is kept; variation (and write-verify retries) are re-drawn.
    pub fn resample_variation(&mut self, rng: &mut XorShiftRng) {
        let (programmed, report) = self.device.programming().program_tensor(
            &self.targets,
            &self.device.variation(),
            self.device.range(),
            Some(&self.faults),
            rng,
        );
        self.programmed = programmed;
        self.effective = effective_monolithic(&self.programmed, &self.device, &self.faults);
        self.report = report;
    }

    /// Raw analog column outputs `y_dev = G · x` for a 1-D input of length
    /// `n_in()` — what the ADCs digitize, before the periphery combine.
    ///
    /// # Errors
    ///
    /// Returns a shape error on input-length mismatch, or
    /// [`MappingError::NonFiniteInput`] if `x` contains NaN/Inf — a DAC
    /// has no encoding for either, and letting them through would poison
    /// every column sum.
    pub fn mvm_raw(&self, x: &Tensor) -> Result<Tensor, MappingError> {
        if !x.data().iter().all(|v| v.is_finite()) {
            return Err(MappingError::NonFiniteInput { op: "mvm_raw" });
        }
        linalg::matvec(&self.effective, x).map_err(MappingError::from)
    }

    /// Signed MVM `y = S · (G · x)` for a 1-D input.
    ///
    /// # Errors
    ///
    /// Returns a shape error on input-length mismatch.
    pub fn mvm_signed(&self, x: &Tensor) -> Result<Tensor, MappingError> {
        let raw = self.mvm_raw(x)?;
        linalg::matvec(self.periphery.matrix(), &raw).map_err(MappingError::from)
    }

    /// Batched signed MVM: `X (batch × N_I) → Y (batch × N_O)`.
    ///
    /// # Errors
    ///
    /// Returns a shape error if `x` is not `(batch, n_in())`, or
    /// [`MappingError::NonFiniteInput`] if `x` contains NaN/Inf.
    pub fn forward(&self, x: &Tensor) -> Result<Tensor, MappingError> {
        if !x.data().iter().all(|v| v.is_finite()) {
            return Err(MappingError::NonFiniteInput { op: "forward" });
        }
        // (batch, n_in) · G^T -> (batch, nd)
        let raw = linalg::matmul_nt(x, &self.effective).map_err(MappingError::from)?;
        self.periphery.combine(&raw)
    }

    /// Monte-Carlo fan-out: evaluates `trials` freshly re-programmed
    /// copies of this array on the same batch `X (batch × N_I)`, fanning
    /// the trials across the compute pool. Trial `t` behaves exactly like
    /// `{ let mut c = self.clone(); c.resample_variation(&mut rng.fork(t)); c.forward(x) }`
    /// run serially in trial order — per-trial RNG streams are forked from
    /// `rng` up front, so the returned outputs are bitwise identical for
    /// any thread count.
    ///
    /// # Errors
    ///
    /// Returns the first trial's error on input-shape or non-finite-input
    /// failures (all trials share `x`, so all fail alike).
    pub fn variation_trials(
        &self,
        x: &Tensor,
        trials: usize,
        rng: &mut XorShiftRng,
    ) -> Result<Vec<Tensor>, MappingError> {
        // Fork serially, in trial order, before going parallel: forking
        // advances the parent stream, so this is the step that must not
        // race.
        let trial_rngs: Vec<XorShiftRng> = (0..trials).map(|t| rng.fork(t as u64)).collect();
        backend::parallel_map(trial_rngs, |_, mut trial_rng| {
            let mut chip = self.clone();
            chip.resample_variation(&mut trial_rng);
            chip.forward(x)
        })
        .into_iter()
        .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xbar_device::{DeviceConfig, UpdateModel};

    fn rng() -> XorShiftRng {
        XorShiftRng::new(81)
    }

    fn test_w() -> Tensor {
        Tensor::from_vec(vec![0.3, -0.2, 0.1, -0.4, 0.25, 0.05], &[2, 3]).unwrap()
    }

    #[test]
    fn ideal_crossbar_equals_mathematical_mvm_all_mappings() {
        let w = test_w();
        let x = Tensor::from_vec(vec![0.5, -1.0, 2.0], &[3]).unwrap();
        let expected = linalg::matvec(&w, &x).unwrap();
        for mapping in Mapping::ALL {
            let mut r = rng();
            let xb =
                CrossbarArray::program_signed(&w, mapping, DeviceConfig::ideal(), &mut r).unwrap();
            let y = xb.mvm_signed(&x).unwrap();
            assert!(y.all_close(&expected, 1e-5), "{mapping}: {:?}", y.data());
        }
    }

    #[test]
    fn batched_forward_matches_per_sample_mvm() {
        let w = test_w();
        let mut r = rng();
        let xb =
            CrossbarArray::program_signed(&w, Mapping::Acm, DeviceConfig::ideal(), &mut r).unwrap();
        let x = Tensor::from_vec(vec![1.0, 0.0, -1.0, 0.5, 0.5, 0.5], &[2, 3]).unwrap();
        let batch = xb.forward(&x).unwrap();
        for b in 0..2 {
            let single = xb.mvm_signed(&x.row(b)).unwrap();
            for j in 0..2 {
                assert!((batch.at(&[b, j]) - single.data()[j]).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn quantized_program_snaps_to_states() {
        let w = test_w();
        let dev = DeviceConfig::quantized_linear(2); // states 0, 1/3, 2/3, 1
        let mut r = rng();
        let xb = CrossbarArray::program_signed(&w, Mapping::DoubleElement, dev, &mut r).unwrap();
        let q = dev.quantizer();
        for &g in xb.conductances().data() {
            assert!(
                (g - q.quantize(g)).abs() < 1e-6,
                "{g} is not a device state"
            );
        }
    }

    #[test]
    fn variation_perturbs_but_targets_stay() {
        let w = test_w();
        let dev = DeviceConfig::quantized_linear(4).with_variation_sigma(0.1);
        let mut r = rng();
        let xb = CrossbarArray::program_signed(&w, Mapping::Acm, dev, &mut r).unwrap();
        assert!(!xb.conductances().all_close(xb.targets(), 1e-4));
        // Targets are still exact device states.
        let q = dev.quantizer();
        for &g in xb.targets().data() {
            assert!((g - q.quantize(g)).abs() < 1e-6);
        }
    }

    #[test]
    fn resample_variation_changes_programmed_not_targets() {
        let w = test_w();
        let dev = DeviceConfig::quantized_linear(4).with_variation_sigma(0.1);
        let mut r = rng();
        let mut xb = CrossbarArray::program_signed(&w, Mapping::Acm, dev, &mut r).unwrap();
        let before = xb.conductances().clone();
        let targets = xb.targets().clone();
        xb.resample_variation(&mut r);
        assert!(!xb.conductances().all_close(&before, 1e-6));
        assert!(xb.targets().all_close(&targets, 0.0));
    }

    #[test]
    fn effective_weights_approximate_w_under_quantization() {
        let w = test_w();
        let dev = DeviceConfig::quantized_linear(6);
        let mut r = rng();
        let xb = CrossbarArray::program_signed(&w, Mapping::DoubleElement, dev, &mut r).unwrap();
        let eff = xb.effective_weights();
        // 6-bit quantization: max error per element <= step (two elements).
        let step = dev.quantizer().step();
        assert!(eff.all_close(&w, step * 1.01), "{:?}", eff.data());
    }

    #[test]
    fn dimensions_reported_correctly() {
        let w = test_w();
        let mut r = rng();
        let xb =
            CrossbarArray::program_signed(&w, Mapping::Acm, DeviceConfig::ideal(), &mut r).unwrap();
        assert_eq!(xb.n_in(), 3);
        assert_eq!(xb.n_out(), 2);
        assert_eq!(xb.n_dev(), 3);
        assert_eq!(xb.num_elements(), 9);
        assert_eq!(xb.mapping(), Mapping::Acm);
    }

    #[test]
    fn rejects_negative_conductances() {
        let m = Tensor::from_vec(vec![-0.1, 0.2, 0.3, 0.4, 0.5, 0.6], &[3, 2]).unwrap();
        let mut r = rng();
        let err =
            CrossbarArray::program_conductances(&m, Mapping::Acm, DeviceConfig::ideal(), &mut r)
                .unwrap_err();
        assert!(matches!(err, MappingError::NotRepresentable { .. }));
    }

    #[test]
    fn rejects_bad_input_length() {
        let w = test_w();
        let mut r = rng();
        let xb =
            CrossbarArray::program_signed(&w, Mapping::Acm, DeviceConfig::ideal(), &mut r).unwrap();
        assert!(xb.mvm_signed(&Tensor::zeros(&[5])).is_err());
    }

    #[test]
    fn rejects_non_finite_inputs_and_conductances() {
        let w = test_w();
        let mut r = rng();
        let xb =
            CrossbarArray::program_signed(&w, Mapping::Acm, DeviceConfig::ideal(), &mut r).unwrap();
        let bad = Tensor::from_vec(vec![1.0, f32::NAN, 0.0], &[3]).unwrap();
        assert!(matches!(
            xb.mvm_raw(&bad),
            Err(MappingError::NonFiniteInput { op: "mvm_raw" })
        ));
        assert!(matches!(
            xb.mvm_signed(&bad),
            Err(MappingError::NonFiniteInput { .. })
        ));
        let bad_batch = Tensor::from_vec(vec![0.5, 0.5, f32::INFINITY], &[1, 3]).unwrap();
        assert!(matches!(
            xb.forward(&bad_batch),
            Err(MappingError::NonFiniteInput { op: "forward" })
        ));
        let bad_m = Tensor::from_vec(vec![0.1, f32::NAN, 0.2, 0.3, 0.4, 0.5], &[3, 2]).unwrap();
        assert!(matches!(
            CrossbarArray::program_conductances(
                &bad_m,
                Mapping::Acm,
                DeviceConfig::ideal(),
                &mut r
            ),
            Err(MappingError::NonFiniteInput { .. })
        ));
    }

    #[test]
    fn fault_free_device_reports_pristine_map_and_full_convergence() {
        let w = test_w();
        let mut r = rng();
        let xb =
            CrossbarArray::program_signed(&w, Mapping::Acm, DeviceConfig::ideal(), &mut r).unwrap();
        assert!(xb.fault_map().is_pristine());
        assert!(xb.programming_report().all_converged());
        assert!(xb.require_converged().is_ok());
        assert_eq!(xb.programming_report().total_cells(), xb.num_elements());
    }

    #[test]
    fn fault_model_freezes_cells_through_programming() {
        use xbar_device::FaultModel;
        let mut r = rng();
        let w = Tensor::rand_uniform(&[8, 16], -0.02, 0.02, &mut r);
        let dev = DeviceConfig::ideal().with_faults(FaultModel::uniform(0.05));
        let xb = CrossbarArray::program_signed(&w, Mapping::Acm, dev, &mut r).unwrap();
        let stuck = xb.fault_map().num_stuck();
        assert!(stuck > 0, "5% rate on 144 cells should hit");
        assert_eq!(xb.programming_report().num_stuck(), stuck);
        let range = dev.range();
        for (row, col, kind) in xb.fault_map().iter_stuck() {
            assert_eq!(xb.conductances().at(&[row, col]), kind.forced_value(range));
        }
    }

    #[test]
    fn remapped_programming_recovers_weight_accuracy() {
        use xbar_device::FaultModel;
        let mut r = rng();
        let w = Tensor::rand_uniform(&[8, 16], -0.02, 0.02, &mut r);
        let dev = DeviceConfig::ideal().with_faults(FaultModel::uniform(0.02));
        // Same seed for both arrays → identical fault pattern.
        let naive =
            CrossbarArray::program_signed(&w, Mapping::Acm, dev, &mut XorShiftRng::new(5)).unwrap();
        let (remapped, report) =
            CrossbarArray::program_signed_remapped(&w, Mapping::Acm, dev, &mut XorShiftRng::new(5))
                .unwrap();
        assert_eq!(naive.fault_map(), remapped.fault_map());
        assert!(naive.fault_map().num_stuck() > 0);
        let err = |xb: &CrossbarArray| xb.effective_weights().sub(&w).unwrap().norm_sq().sqrt();
        assert!(
            err(&remapped) < err(&naive) * 0.5,
            "remapped error {} vs naive {}",
            err(&remapped),
            err(&naive)
        );
        assert!(report.residual_after() <= report.residual_before());
        assert_eq!(report.stuck_cells(), naive.fault_map().num_stuck());
    }

    #[test]
    fn resample_keeps_fault_pattern_but_redraws_noise() {
        use xbar_device::FaultModel;
        let mut r = rng();
        let w = Tensor::rand_uniform(&[6, 10], -0.02, 0.02, &mut r);
        let dev = DeviceConfig::ideal()
            .with_faults(FaultModel::uniform(0.05))
            .with_variation_sigma(0.05);
        let mut xb = CrossbarArray::program_signed(&w, Mapping::Acm, dev, &mut r).unwrap();
        let map_before = xb.fault_map().clone();
        let prog_before = xb.conductances().clone();
        xb.resample_variation(&mut r);
        assert_eq!(xb.fault_map(), &map_before, "defects belong to the chip");
        assert!(!xb.conductances().all_close(&prog_before, 1e-7));
        for (row, col, kind) in xb.fault_map().iter_stuck() {
            assert_eq!(
                xb.conductances().at(&[row, col]),
                kind.forced_value(dev.range())
            );
        }
    }

    #[test]
    fn variation_trials_match_serial_resample_loop() {
        let w = test_w();
        let dev = DeviceConfig::quantized_linear(4).with_variation_sigma(0.05);
        let mut r = rng();
        let xb = CrossbarArray::program_signed(&w, Mapping::Acm, dev, &mut r).unwrap();
        let x = Tensor::from_vec(vec![0.5, -1.0, 2.0, 0.1, 0.2, 0.3], &[2, 3]).unwrap();
        let mut rng_a = XorShiftRng::new(99);
        let got = xb.variation_trials(&x, 5, &mut rng_a).unwrap();
        assert_eq!(got.len(), 5);
        // Reference: the documented serial loop with the same fork order.
        let mut rng_b = XorShiftRng::new(99);
        let forks: Vec<_> = (0..5u64).map(|t| rng_b.fork(t)).collect();
        for (t, mut fr) in forks.into_iter().enumerate() {
            let mut chip = xb.clone();
            chip.resample_variation(&mut fr);
            let want = chip.forward(&x).unwrap();
            assert_eq!(got[t].data(), want.data(), "trial {t}");
        }
        // Variation is actually redrawn between trials.
        assert!(!got[0].all_close(&got[1], 1e-7));
        // The parent stream advanced exactly as the serial loop's did.
        assert_eq!(rng_a.next_u64(), rng_b.next_u64());
    }

    #[test]
    fn strict_convergence_check_surfaces_programming_failure() {
        use xbar_device::ProgrammingModel;
        let w = test_w();
        // Impossible tolerance with heavy noise: nothing converges.
        let dev = DeviceConfig::ideal()
            .with_variation_sigma(0.2)
            .with_programming(ProgrammingModel::write_verify(2, 1e-6));
        let mut r = rng();
        let xb = CrossbarArray::program_signed(&w, Mapping::Acm, dev, &mut r).unwrap();
        assert!(xb.programming_report().num_unconverged() > 0);
        let err = xb.require_converged().unwrap_err();
        assert!(matches!(err, MappingError::ProgrammingFailed { .. }));
    }

    #[test]
    fn write_verify_tightens_programmed_weights() {
        use xbar_device::ProgrammingModel;
        let mut r = rng();
        let w = Tensor::rand_uniform(&[8, 16], -0.02, 0.02, &mut r);
        let err_with = |prog: ProgrammingModel| {
            let dev = DeviceConfig::ideal()
                .with_variation_sigma(0.1)
                .with_programming(prog);
            let xb =
                CrossbarArray::program_signed(&w, Mapping::Acm, dev, &mut XorShiftRng::new(17))
                    .unwrap();
            xb.effective_weights().sub(&w).unwrap().norm_sq().sqrt()
        };
        let one_shot = err_with(ProgrammingModel::one_shot());
        let verified = err_with(ProgrammingModel::write_verify(8, 0.02));
        assert!(
            verified < one_shot * 0.5,
            "write-verify {verified} vs one-shot {one_shot}"
        );
    }

    #[test]
    fn nonlinear_update_device_still_programs_correctly() {
        // Programming (as opposed to in-situ training) is a write-verify
        // operation: the nonlinearity affects training updates, not the
        // final programmed states.
        let w = test_w();
        let dev = DeviceConfig::builder()
            .bits(4)
            .update(UpdateModel::symmetric_nonlinear(5.0))
            .build();
        let mut r = rng();
        let xb = CrossbarArray::program_signed(&w, Mapping::Acm, dev, &mut r).unwrap();
        let eff = xb.effective_weights();
        assert!(eff.all_close(&w, dev.quantizer().step() * 2.0));
    }

    #[test]
    fn parasitics_off_effective_is_bitwise_programmed() {
        let w = test_w();
        for mapping in Mapping::ALL {
            let xb = CrossbarArray::program_signed(
                &w,
                mapping,
                DeviceConfig::quantized_linear(4).with_variation_sigma(0.03),
                &mut rng(),
            )
            .unwrap();
            assert_eq!(
                xb.effective_conductances().data(),
                xb.conductances().data(),
                "{mapping}: parasitics off must be a pure pass-through"
            );
        }
    }

    #[test]
    fn line_resistance_attenuates_every_live_cell() {
        use xbar_device::LineResistanceModel;
        let w = test_w();
        let dev = DeviceConfig::ideal().with_line_resistance(LineResistanceModel::new(0.01));
        let xb = CrossbarArray::program_signed(&w, Mapping::Acm, dev, &mut rng()).unwrap();
        let (prog, eff) = (xb.conductances(), xb.effective_conductances());
        for (p, e) in prog.data().iter().zip(eff.data()) {
            if *p > 0.0 {
                assert!(*e < *p, "attenuation must strictly shrink {p} -> {e}");
            } else {
                assert_eq!(*e, *p);
            }
        }
        // Output error grows with the wire resistance.
        let x = Tensor::ones(&[w.shape()[1]]);
        let err = |r_frac: f32| {
            let dev = DeviceConfig::ideal().with_line_resistance(LineResistanceModel::new(r_frac));
            let xb = CrossbarArray::program_signed(&w, Mapping::Acm, dev, &mut rng()).unwrap();
            let ideal = linalg::matvec(&w, &x).unwrap();
            xb.mvm_signed(&x).unwrap().sub(&ideal).unwrap().abs_max()
        };
        assert!(err(0.02) > err(0.002));
    }

    #[test]
    fn drift_decays_toward_g_min_but_skips_stuck_cells() {
        use xbar_device::{DriftModel, FaultModel};
        let w = test_w();
        let dev = DeviceConfig::ideal()
            .with_faults(FaultModel::uniform(0.1))
            .with_drift(DriftModel::new(0.1, 0.02, 99).at_time(1000));
        let xb = CrossbarArray::program_signed(&w, Mapping::BiasColumn, dev, &mut rng()).unwrap();
        assert!(xb.fault_map().num_stuck() > 0);
        let g_min = dev.range().g_min();
        let cols = xb.conductances().shape()[1];
        let mut decayed = 0usize;
        for (idx, (p, e)) in xb
            .conductances()
            .data()
            .iter()
            .zip(xb.effective_conductances().data())
            .enumerate()
        {
            let (r, c) = (idx / cols, idx % cols);
            if xb.fault_map().get(r, c).is_some() {
                assert_eq!(*e, *p, "stuck cells are frozen and must not drift");
            } else {
                assert!(*e <= *p && *e >= g_min);
                if *e < *p {
                    decayed += 1;
                }
            }
        }
        assert!(decayed > 0, "drift at t=1000 must move some live cells");
    }

    #[test]
    fn perm_reorders_conductance_rows_but_weights_are_exact() {
        let w = test_w();
        let mut r = rng();
        let bc = CrossbarArray::program_signed(
            &w,
            Mapping::BiasColumn,
            DeviceConfig::ideal(),
            &mut rng(),
        )
        .unwrap();
        let perm =
            CrossbarArray::program_signed(&w, Mapping::Perm, DeviceConfig::ideal(), &mut rng())
                .unwrap();
        // Same multiset of device rows, different order.
        assert_eq!(bc.conductances().shape(), perm.conductances().shape());
        assert_ne!(
            bc.conductances().data(),
            perm.conductances().data(),
            "the magnitude sort should move rows for a generic W"
        );
        // The folded-in inverse permutation keeps the map exact.
        assert!(perm.effective_weights().all_close(&w, 1e-5));
        let x = Tensor::rand_uniform(&[w.shape()[1]], -1.0, 1.0, &mut r);
        let yb = bc.mvm_signed(&x).unwrap();
        let yp = perm.mvm_signed(&x).unwrap();
        assert!(yp.all_close(&yb, 1e-4));
    }

    #[test]
    fn perm_places_large_magnitude_rows_near_the_driver() {
        let w = test_w();
        let xb =
            CrossbarArray::program_signed(&w, Mapping::Perm, DeviceConfig::ideal(), &mut rng())
                .unwrap();
        let mid = xb.device().range().midpoint();
        let (nd, n_in) = (xb.conductances().shape()[0], xb.conductances().shape()[1]);
        let dev: Vec<f32> = (0..nd)
            .map(|j| {
                xb.conductances().data()[j * n_in..(j + 1) * n_in]
                    .iter()
                    .map(|&g| (g - mid).abs())
                    .sum()
            })
            .collect();
        for pair in dev.windows(2) {
            assert!(
                pair[0] >= pair[1] - 1e-6,
                "physical rows must be sorted by descending mid-deviation: {dev:?}"
            );
        }
    }

    #[test]
    fn magnitude_permutation_is_stable_for_ties() {
        // Identical rows keep their original order (stable sort), which
        // is what pins BC's all-mid reference row to the last slot.
        let m = Tensor::from_vec(vec![0.5, 0.5, 0.9, 0.1, 0.5, 0.5], &[3, 2]).unwrap();
        assert_eq!(magnitude_permutation(&m, 0.5), vec![1, 0, 2]);
    }
}
