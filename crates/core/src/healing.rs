//! Self-healing crossbar execution: online fault detection, staged repair
//! with retry/backoff, and exact digital fallback.
//!
//! The resilience machinery elsewhere in this crate (write-verify
//! programming, null-space remap, `Mapping::Perm`) runs at *program time*
//! — a fault that arrives after mapping silently corrupts every
//! subsequent MVM. This module closes the loop at run time:
//!
//! 1. **Detection** — an ABFT-style checksum per physical tile. The
//!    expected column sums of a tile's target block form a checksum
//!    vector `c` with `Σ_d (x·Mᵀ)[d] = x·c` for every input `x`, so each
//!    tile MVM yields a residual at the cost of one extra dot product
//!    ([`SelfHealingCrossbar::forward_verified`]). The scrub loop
//!    evaluates the same residual analytically (its worst case over unit
//!    inputs, [`checksum_residual`]), which keeps detection a pure
//!    function of array state.
//! 2. **Health tracking** — a [`HealthMonitor`] holds a per-tile residual
//!    EWMA and drives the state machine `Healthy → Suspect → Repairing →
//!    Quarantined` ([`TileHealth`]). One suspect observation never
//!    triggers a repair; the residual must persist.
//! 3. **Staged repair** — a bounded retry/backoff budget walks the
//!    escalation ladder [`RepairStage::Reprogram`] (write-verify pass;
//!    clears transient upsets) → [`RepairStage::Remap`] (tile-local
//!    null-space compensation of the stuck cells) →
//!    [`RepairStage::FullRemap`] (discard accumulated shifts, remap from
//!    the pristine targets). Every attempt is recorded in a
//!    [`RepairAttempt`].
//! 4. **Digital fallback** — a tile that exhausts its budget is
//!    quarantined: its partial product is served from the ideal
//!    (fault-free, snapped) targets, exactly — accuracy is preserved and
//!    the [`ScrubReport::analog_coverage`] metric drops instead.
//!
//! Determinism contract: scrub-path programming always uses
//! `VariationModel::none()`, which writes targets exactly and consumes no
//! RNG, so the entire array state after any number of scrubs is a pure
//! function of `(reference array, lifetime model, policy, epoch)` —
//! serial and pooled execution stay bitwise identical, and a checkpoint
//! can rebuild the state exactly. With an inactive
//! [`LifetimeFaultModel`], every path is a bitwise no-op.

use xbar_device::{DeviceConfig, FaultMap, LifetimeFaultModel, ProgrammingReport, VariationModel};
use xbar_tensor::rng::XorShiftRng;
use xbar_tensor::{backend, linalg, Tensor};

use crate::tiling::{block, cols_slice, write_block};
use crate::{remap_for_faults, ColGroup, MappingError, PeripheryMatrix, TileGrid, TiledCrossbar};

/// Health state of one physical tile, as tracked by the
/// [`HealthMonitor`]'s per-tile state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TileHealth {
    /// Residual EWMA below threshold; the tile serves analog MVMs.
    Healthy,
    /// The residual crossed the threshold once; confirmed (and repaired)
    /// only if it persists at the next scrub.
    Suspect,
    /// Under active repair, walking the escalation ladder between
    /// backoff windows.
    Repairing,
    /// Repair budget exhausted; the tile's partial product is served by
    /// the exact digital fallback path.
    Quarantined,
}

impl TileHealth {
    /// Stable numeric code, for flat (tensor) persistence.
    pub fn code(self) -> f32 {
        match self {
            Self::Healthy => 0.0,
            Self::Suspect => 1.0,
            Self::Repairing => 2.0,
            Self::Quarantined => 3.0,
        }
    }

    /// Inverse of [`TileHealth::code`].
    pub fn from_code(code: f32) -> Option<Self> {
        [
            Self::Healthy,
            Self::Suspect,
            Self::Repairing,
            Self::Quarantined,
        ]
        .into_iter()
        .find(|s| s.code() == code)
    }
}

/// One rung of the repair escalation ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairStage {
    /// Re-run the write-verify programming pass against the current
    /// targets. Clears transient (soft) corruption; cannot fix stuck
    /// cells.
    Reprogram,
    /// Tile-local null-space remap: shift the tile's healthy cells along
    /// the local periphery's null direction to compensate the stuck
    /// ones, then re-program.
    Remap,
    /// Discard every previously accumulated shift and remap the tile
    /// from its pristine targets — recovers from a stale compensation
    /// that later arrivals invalidated.
    FullRemap,
}

impl RepairStage {
    /// Short lowercase tag for logs and JSON.
    pub fn tag(self) -> &'static str {
        match self {
            Self::Reprogram => "reprogram",
            Self::Remap => "remap",
            Self::FullRemap => "full_remap",
        }
    }
}

/// Tuning knobs of the detection/repair loop.
///
/// The attempt counts define the escalation ladder: the first
/// `reprogram_attempts` failed attempts on a tile re-program it, the next
/// `remap_attempts` remap it, the final `full_remap_attempts` remap it
/// from scratch; a tile whose total budget is exhausted is quarantined.
/// After every failed attempt the tile backs off for
/// `backoff_base << attempts` scrub epochs (capped) before the next try.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RepairPolicy {
    /// Checksum-residual level above which a tile becomes suspect.
    pub residual_threshold: f32,
    /// Smoothing factor of the per-tile residual EWMA in `(0, 1]`
    /// (1 = no smoothing, track the raw residual).
    pub ewma_alpha: f32,
    /// Budget for the [`RepairStage::Reprogram`] rung.
    pub reprogram_attempts: u32,
    /// Budget for the [`RepairStage::Remap`] rung.
    pub remap_attempts: u32,
    /// Budget for the [`RepairStage::FullRemap`] rung.
    pub full_remap_attempts: u32,
    /// Base backoff in scrub epochs; doubles per failed attempt.
    pub backoff_base: u32,
    /// Weight-space residual (Frobenius, normalized weight units) below
    /// which a remap counts as having restored the tile's accuracy. This
    /// is the accuracy-vs-coverage knob: range clamping leaves real
    /// remaps slightly inexact, so a tolerance near machine precision
    /// quarantines every faulty tile (exact but all-digital), while a
    /// loose one keeps tiles analog at the cost of bounded weight error.
    pub weight_tolerance: f32,
}

impl Default for RepairPolicy {
    fn default() -> Self {
        Self {
            residual_threshold: 1e-4,
            ewma_alpha: 0.5,
            reprogram_attempts: 1,
            remap_attempts: 1,
            full_remap_attempts: 1,
            backoff_base: 1,
            weight_tolerance: 1e-2,
        }
    }
}

impl RepairPolicy {
    /// Total repair attempts a tile is granted before quarantine.
    pub fn budget(&self) -> u32 {
        self.reprogram_attempts + self.remap_attempts + self.full_remap_attempts
    }

    /// The ladder rung for the `attempt`-th attempt (0-based).
    pub fn stage_for(&self, attempt: u32) -> RepairStage {
        if attempt < self.reprogram_attempts {
            RepairStage::Reprogram
        } else if attempt < self.reprogram_attempts + self.remap_attempts {
            RepairStage::Remap
        } else {
            RepairStage::FullRemap
        }
    }

    /// Backoff window (in scrub epochs) after the `attempt`-th failed
    /// attempt: `backoff_base << attempt`, capped at 6 doublings.
    pub fn backoff_after(&self, attempt: u32) -> u32 {
        self.backoff_base << attempt.min(6)
    }
}

/// What the monitor asks the scrub loop to do with one tile this epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthAction {
    /// Residual nominal; nothing to do.
    Nothing,
    /// First threshold crossing: the tile is now suspect, confirm next
    /// scrub before repairing.
    Detected,
    /// Run one repair attempt at the given ladder rung.
    Repair(RepairStage),
    /// In a backoff window after a failed attempt; wait.
    Backoff,
    /// The tile is quarantined; it is served digitally and ignored.
    AlreadyQuarantined,
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct TileState {
    state: TileHealth,
    ewma: f32,
    attempts: u32,
    backoff_until: u32,
}

impl TileState {
    fn healthy() -> Self {
        Self {
            state: TileHealth::Healthy,
            ewma: 0.0,
            attempts: 0,
            backoff_until: 0,
        }
    }
}

/// Per-tile residual EWMAs and the `Healthy → Suspect → Repairing →
/// Quarantined` state machine they drive.
///
/// Tiles are indexed in the grid's deterministic order: row blocks outer,
/// column groups inner (matching [`TileGrid::row_blocks`] ×
/// [`TileGrid::col_groups`]).
#[derive(Debug, Clone, PartialEq)]
pub struct HealthMonitor {
    policy: RepairPolicy,
    tiles: Vec<TileState>,
}

impl HealthMonitor {
    /// A monitor with every tile healthy.
    pub fn new(num_tiles: usize, policy: RepairPolicy) -> Self {
        Self {
            policy,
            tiles: vec![TileState::healthy(); num_tiles],
        }
    }

    /// Number of tracked tiles.
    pub fn num_tiles(&self) -> usize {
        self.tiles.len()
    }

    /// The policy in force.
    pub fn policy(&self) -> &RepairPolicy {
        &self.policy
    }

    /// Health state of one tile.
    pub fn state(&self, tile: usize) -> TileHealth {
        self.tiles[tile].state
    }

    /// Current residual EWMA of one tile.
    pub fn ewma(&self, tile: usize) -> f32 {
        self.tiles[tile].ewma
    }

    /// Tiles currently quarantined.
    pub fn num_quarantined(&self) -> usize {
        self.tiles
            .iter()
            .filter(|t| t.state == TileHealth::Quarantined)
            .count()
    }

    /// Tiles still serving analog MVMs.
    pub fn num_analog(&self) -> usize {
        self.num_tiles() - self.num_quarantined()
    }

    /// Folds one scrub's residual observation for `tile` into the EWMA
    /// and advances the state machine, returning the action the scrub
    /// loop should take.
    pub fn observe(&mut self, tile: usize, residual: f32, epoch: u32) -> HealthAction {
        let policy = self.policy;
        let t = &mut self.tiles[tile];
        if t.state == TileHealth::Quarantined {
            return HealthAction::AlreadyQuarantined;
        }
        t.ewma = policy.ewma_alpha * residual + (1.0 - policy.ewma_alpha) * t.ewma;
        let over = t.ewma > policy.residual_threshold;
        match t.state {
            TileHealth::Healthy => {
                if over {
                    t.state = TileHealth::Suspect;
                    HealthAction::Detected
                } else {
                    HealthAction::Nothing
                }
            }
            TileHealth::Suspect => {
                if over {
                    t.state = TileHealth::Repairing;
                    HealthAction::Repair(policy.stage_for(t.attempts))
                } else {
                    // Transient: the residual cleared on its own.
                    t.state = TileHealth::Healthy;
                    HealthAction::Nothing
                }
            }
            TileHealth::Repairing => {
                if epoch < t.backoff_until {
                    HealthAction::Backoff
                } else {
                    HealthAction::Repair(policy.stage_for(t.attempts))
                }
            }
            TileHealth::Quarantined => unreachable!("handled above"),
        }
    }

    /// Records the outcome of one repair attempt on `tile` and returns
    /// the tile's new state. A healed tile goes back to `Healthy` with a
    /// fresh budget; a failed attempt burns budget, schedules an
    /// exponential backoff window, and quarantines the tile once the
    /// budget is gone.
    pub fn record_attempt(&mut self, tile: usize, epoch: u32, healed: bool) -> TileHealth {
        let policy = self.policy;
        let t = &mut self.tiles[tile];
        if healed {
            *t = TileState::healthy();
        } else {
            t.attempts += 1;
            if t.attempts >= policy.budget() {
                t.state = TileHealth::Quarantined;
            } else {
                t.backoff_until = epoch + policy.backoff_after(t.attempts - 1);
            }
        }
        t.state
    }

    /// Flattens the monitor to `4` floats per tile
    /// (`[state code, ewma, attempts, backoff_until]`), for tensor-based
    /// checkpoint persistence.
    pub fn to_flat(&self) -> Vec<f32> {
        self.tiles
            .iter()
            .flat_map(|t| {
                [
                    t.state.code(),
                    t.ewma,
                    t.attempts as f32,
                    t.backoff_until as f32,
                ]
            })
            .collect()
    }

    /// Rebuilds a monitor from [`HealthMonitor::to_flat`] output.
    ///
    /// # Errors
    ///
    /// Returns a shape error if the length is not a multiple of 4 or a
    /// state code is invalid.
    pub fn from_flat(flat: &[f32], policy: RepairPolicy) -> Result<Self, MappingError> {
        if !flat.len().is_multiple_of(4) {
            return Err(MappingError::Shape(xbar_tensor::ShapeError::new(
                "health monitor",
                format!("flat state length {} is not a multiple of 4", flat.len()),
            )));
        }
        let tiles = flat
            .chunks_exact(4)
            .map(|c| {
                let state = TileHealth::from_code(c[0]).ok_or_else(|| {
                    MappingError::Shape(xbar_tensor::ShapeError::new(
                        "health monitor",
                        format!("invalid tile health code {}", c[0]),
                    ))
                })?;
                Ok(TileState {
                    state,
                    ewma: c[1],
                    attempts: c[2] as u32,
                    backoff_until: c[3] as u32,
                })
            })
            .collect::<Result<Vec<_>, MappingError>>()?;
        Ok(Self { policy, tiles })
    }
}

/// One rung-of-the-ladder repair attempt on one tile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RepairAttempt {
    /// Scrub epoch the attempt ran in.
    pub epoch: u32,
    /// Tile index (row blocks outer, column groups inner).
    pub tile: usize,
    /// The ladder rung used.
    pub stage: RepairStage,
    /// Checksum residual before the attempt.
    pub residual_before: f32,
    /// Checksum residual after the attempt.
    pub residual_after: f32,
    /// Whether the attempt restored the tile (stage-specific criterion:
    /// checksum residual for re-programming, weight-space residual for
    /// the remap rungs).
    pub healed: bool,
}

/// Outcome of one [`SelfHealingCrossbar::scrub`] pass.
#[derive(Debug, Clone, PartialEq)]
pub struct ScrubReport {
    /// The scrub epoch this report covers.
    pub epoch: u32,
    /// Lifetime faults that arrived this epoch (new stuck cells).
    pub new_faults: usize,
    /// Tiles that newly crossed the detection threshold.
    pub detections: usize,
    /// Every repair attempt run this epoch.
    pub repairs: Vec<RepairAttempt>,
    /// Tiles quarantined during this scrub.
    pub quarantined_now: usize,
    /// Total quarantined tiles after this scrub.
    pub quarantined_total: usize,
    /// Tiles still serving analog MVMs after this scrub.
    pub analog_tiles: usize,
    /// Total tiles in the grid.
    pub total_tiles: usize,
    /// Cells that blew the write-verify retry budget across this epoch's
    /// programming passes.
    pub exhausted_cells: usize,
}

impl ScrubReport {
    /// Fraction of tiles still served by the analog array, in `[0, 1]`.
    pub fn analog_coverage(&self) -> f32 {
        if self.total_tiles == 0 {
            return 1.0;
        }
        self.analog_tiles as f32 / self.total_tiles as f32
    }
}

/// Worst-case ABFT checksum residual of a tile: the maximum over input
/// columns of the absolute column-sum mismatch between the physical and
/// target blocks. Equals the largest residual
/// [`SelfHealingCrossbar::forward_verified`] can observe over unit
/// inputs. A single column checksum can in principle be blinded by two
/// arrivals of opposite sign cancelling in the same column — rare, and
/// caught at the next arrival.
pub fn checksum_residual(physical: &Tensor, targets: &Tensor) -> f32 {
    debug_assert_eq!(physical.shape(), targets.shape());
    let (rows, cols) = (physical.shape()[0], physical.shape()[1]);
    let mut worst = 0.0f32;
    for c in 0..cols {
        let mut sum = 0.0f32;
        for r in 0..rows {
            sum += physical.data()[r * cols + c] - targets.data()[r * cols + c];
        }
        worst = worst.max(sum.abs());
    }
    worst
}

/// A [`TiledCrossbar`] wrapped with the full self-healing loop: lifetime
/// fault arrivals, per-tile checksum detection, staged repair, and exact
/// digital fallback for quarantined tiles.
///
/// Built from a programmed reference array (whose snapped targets become
/// both the pristine repair reference and the digital fallback source),
/// the wrapper serves MVMs bitwise identical to the reference until
/// [`SelfHealingCrossbar::scrub`] advances the wear clock.
///
/// # Example
///
/// ```
/// use xbar_core::{Mapping, RepairPolicy, SelfHealingCrossbar, TiledCrossbar};
/// use xbar_device::{DeviceConfig, LifetimeFaultModel, TileShape};
/// use xbar_tensor::{rng::XorShiftRng, Tensor};
///
/// # fn main() -> Result<(), xbar_core::MappingError> {
/// let mut rng = XorShiftRng::new(9);
/// let w = Tensor::rand_uniform(&[12, 24], -0.02, 0.02, &mut rng);
/// let tiled = TiledCrossbar::program_signed(
///     &w, Mapping::Acm, DeviceConfig::ideal(), TileShape::new(8, 8), &mut rng)?;
/// let lifetime = LifetimeFaultModel::new(0.001, 7).unwrap();
/// let mut healing = SelfHealingCrossbar::new(&tiled, lifetime, RepairPolicy::default());
/// let report = healing.scrub()?;
/// assert_eq!(report.epoch, 1);
/// assert_eq!(report.total_tiles, tiled.num_tiles());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SelfHealingCrossbar {
    grid: TileGrid,
    periphery: PeripheryMatrix,
    device: DeviceConfig,
    lifetime: LifetimeFaultModel,
    monitor: HealthMonitor,
    /// Pristine snapped targets: repair reference and digital fallback.
    ideal: Tensor,
    /// Current targets, including any remap compensation shifts.
    targets: Tensor,
    /// Physical conductances, stuck cells included.
    physical: Tensor,
    /// What `forward` reads: `physical`, with every quarantined tile's
    /// block replaced by its `ideal` block.
    served: Tensor,
    faults: FaultMap,
    epoch: u32,
    log: Vec<RepairAttempt>,
}

impl SelfHealingCrossbar {
    /// Wraps a programmed reference array. Its snapped targets become the
    /// pristine repair reference (and exact digital fallback); its
    /// effective conductances seed the physical state, so with no scrubs
    /// the wrapper's [`SelfHealingCrossbar::forward`] is bitwise
    /// identical to the reference's.
    pub fn new(
        reference: &TiledCrossbar,
        lifetime: LifetimeFaultModel,
        policy: RepairPolicy,
    ) -> Self {
        let grid = reference.grid().clone();
        let num_tiles = grid.num_tiles();
        Self {
            periphery: reference.periphery().clone(),
            device: *reference.device(),
            lifetime,
            monitor: HealthMonitor::new(num_tiles, policy),
            ideal: reference.targets().clone(),
            targets: reference.targets().clone(),
            physical: reference.effective_conductances().clone(),
            served: reference.effective_conductances().clone(),
            faults: reference.fault_map().clone(),
            epoch: 0,
            log: Vec::new(),
            grid,
        }
    }

    /// The current scrub epoch (0 = never scrubbed).
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// The health monitor.
    pub fn monitor(&self) -> &HealthMonitor {
        &self.monitor
    }

    /// Every repair attempt across all scrubs, in order.
    pub fn repair_log(&self) -> &[RepairAttempt] {
        &self.log
    }

    /// The accumulated stuck-cell map, in the stacked frame.
    pub fn fault_map(&self) -> &FaultMap {
        &self.faults
    }

    /// Fraction of tiles still served by the analog array.
    pub fn analog_coverage(&self) -> f32 {
        if self.grid.num_tiles() == 0 {
            return 1.0;
        }
        self.monitor.num_analog() as f32 / self.grid.num_tiles() as f32
    }

    /// The effective signed weights the served array realises (digital
    /// fallback blocks included).
    ///
    /// # Errors
    ///
    /// Returns a shape error if the periphery and conductances disagree
    /// (impossible by construction, surfaced rather than panicking).
    pub fn effective_weights(&self) -> Result<Tensor, MappingError> {
        linalg::matmul(self.periphery.matrix(), &self.served).map_err(MappingError::from)
    }

    fn tile_faults(&self, g: &ColGroup, r0: usize, rl: usize) -> FaultMap {
        let mut tf = FaultMap::pristine(g.dev_len, rl);
        for (row, col, kind) in self.faults.iter_stuck() {
            if (g.dev_start..g.dev_start + g.dev_len).contains(&row) && (r0..r0 + rl).contains(&col)
            {
                tf.set(row - g.dev_start, col - r0, kind);
            }
        }
        tf
    }

    /// The local stencil of one column group, extracted from the
    /// block-diagonal layer periphery (so any folded-in `Perm` row order
    /// is preserved).
    fn group_periphery(&self, g: &ColGroup) -> Result<PeripheryMatrix, MappingError> {
        PeripheryMatrix::try_new(block(
            self.periphery.matrix(),
            g.out_start,
            g.out_len,
            g.dev_start,
            g.dev_len,
        ))
    }

    /// Advances the wear clock one scrub epoch: overlays newly arrived
    /// lifetime faults onto the physical array, re-evaluates every tile's
    /// checksum residual, and runs the detection → repair → quarantine
    /// loop. A no-op (bitwise, including the report counters) when the
    /// lifetime model is inactive and every tile is healthy.
    ///
    /// # Errors
    ///
    /// Propagates remap failures ([`MappingError`]); the array is left in
    /// a consistent (pre-attempt) state for the failing tile.
    pub fn scrub(&mut self) -> Result<ScrubReport, MappingError> {
        self.epoch += 1;
        let (nd, n_in) = (self.grid.nd_total(), self.grid.n_in());
        let range = self.device.range();
        let quarantined_before = self.monitor.num_quarantined();

        // 1. Overlay this epoch's fault arrivals onto the physical state.
        let mut new_faults = 0;
        if self.lifetime.is_active() {
            for (row, col, kind) in self.lifetime.fault_map(nd, n_in, self.epoch).iter_stuck() {
                if self.faults.get(row, col).is_none() {
                    self.faults.set(row, col, kind);
                    new_faults += 1;
                }
                *self.physical.at_mut(&[row, col]) = kind.forced_value(range);
            }
        }

        // 2. Detection + staged repair, tile by tile in grid order.
        let mut report = ScrubReport {
            epoch: self.epoch,
            new_faults,
            detections: 0,
            repairs: Vec::new(),
            quarantined_now: 0,
            quarantined_total: 0,
            analog_tiles: 0,
            total_tiles: self.grid.num_tiles(),
            exhausted_cells: 0,
        };
        let mut tile_idx = 0;
        let row_blocks = self.grid.row_blocks().to_vec();
        let col_groups = self.grid.col_groups().to_vec();
        for &(r0, rl) in &row_blocks {
            for g in &col_groups {
                let phys = block(&self.physical, g.dev_start, g.dev_len, r0, rl);
                let tgt = block(&self.targets, g.dev_start, g.dev_len, r0, rl);
                let residual = checksum_residual(&phys, &tgt);
                match self.monitor.observe(tile_idx, residual, self.epoch) {
                    HealthAction::Detected => report.detections += 1,
                    HealthAction::Repair(stage) => {
                        let attempt = self.repair_tile(tile_idx, g, r0, rl, stage, &mut report)?;
                        report.repairs.push(attempt);
                        self.log.push(attempt);
                    }
                    HealthAction::Nothing
                    | HealthAction::Backoff
                    | HealthAction::AlreadyQuarantined => {}
                }
                tile_idx += 1;
            }
        }

        // 3. Rebuild the served view: physical everywhere, ideal blocks
        // for quarantined tiles.
        self.served = self.physical.clone();
        let mut tile_idx = 0;
        for &(r0, rl) in &row_blocks {
            for g in &col_groups {
                if self.monitor.state(tile_idx) == TileHealth::Quarantined {
                    let ideal_block = block(&self.ideal, g.dev_start, g.dev_len, r0, rl);
                    write_block(&mut self.served, g.dev_start, r0, &ideal_block);
                }
                tile_idx += 1;
            }
        }

        report.quarantined_total = self.monitor.num_quarantined();
        report.quarantined_now = report.quarantined_total - quarantined_before;
        report.analog_tiles = self.monitor.num_analog();
        Ok(report)
    }

    /// Runs one repair attempt on a tile and records the outcome with the
    /// monitor. Scrub-path programming is deliberately noiseless
    /// (`VariationModel::none()`): it writes targets exactly, consumes no
    /// RNG, and keeps the repair a pure function of array state.
    fn repair_tile(
        &mut self,
        tile: usize,
        g: &ColGroup,
        r0: usize,
        rl: usize,
        stage: RepairStage,
        report: &mut ScrubReport,
    ) -> Result<RepairAttempt, MappingError> {
        let range = self.device.range();
        let tf = self.tile_faults(g, r0, rl);
        let before = block(&self.physical, g.dev_start, g.dev_len, r0, rl);
        let residual_before = checksum_residual(
            &before,
            &block(&self.targets, g.dev_start, g.dev_len, r0, rl),
        );

        // Stage-specific target revision.
        let (tile_targets, weight_residual) = match stage {
            RepairStage::Reprogram => (block(&self.targets, g.dev_start, g.dev_len, r0, rl), None),
            RepairStage::Remap => {
                let base = block(&self.targets, g.dev_start, g.dev_len, r0, rl);
                let p = self.group_periphery(g)?;
                let (shifted, rr) = remap_for_faults(&base, &p, &tf, range)?;
                (shifted, Some(rr.residual_after()))
            }
            RepairStage::FullRemap => {
                let base = block(&self.ideal, g.dev_start, g.dev_len, r0, rl);
                let p = self.group_periphery(g)?;
                let (shifted, rr) = remap_for_faults(&base, &p, &tf, range)?;
                (shifted, Some(rr.residual_after()))
            }
        };

        // Noiseless write-verify pass; stuck cells keep their forced
        // values, everything else lands exactly on target.
        let mut scrub_rng = XorShiftRng::new(0x5C2B);
        let (programmed, prog_report): (Tensor, ProgrammingReport) =
            self.device.programming().program_tensor(
                &tile_targets,
                &VariationModel::none(),
                range,
                Some(&tf),
                &mut scrub_rng,
            );
        report.exhausted_cells += prog_report.num_unconverged();
        write_block(&mut self.targets, g.dev_start, r0, &tile_targets);
        write_block(&mut self.physical, g.dev_start, r0, &programmed);

        let residual_after = checksum_residual(&programmed, &tile_targets);
        let healed = match weight_residual {
            // Remap rungs must restore *weight* accuracy, not just agree
            // with their own revised targets.
            Some(wr) => wr <= self.monitor.policy().weight_tolerance,
            None => residual_after <= self.monitor.policy().residual_threshold,
        };
        let state = self.monitor.record_attempt(tile, self.epoch, healed);
        if state == TileHealth::Quarantined {
            // Reset the tile's intent to pristine so the digital fallback
            // and any later diagnostics agree on what it should compute.
            let ideal_block = block(&self.ideal, g.dev_start, g.dev_len, r0, rl);
            write_block(&mut self.targets, g.dev_start, r0, &ideal_block);
        }
        Ok(RepairAttempt {
            epoch: self.epoch,
            tile,
            stage,
            residual_before,
            residual_after,
            healed,
        })
    }

    /// Injects a transient (soft) corruption into one physical cell —
    /// the non-stuck error class [`RepairStage::Reprogram`] exists to
    /// clear. Test/experiment hook; real arrays get this from radiation
    /// or read disturb.
    pub fn inject_soft_error(&mut self, row: usize, col: usize, value: f32) {
        *self.physical.at_mut(&[row, col]) = value;
        *self.served.at_mut(&[row, col]) = value;
    }

    /// Raw accumulated column outputs over the served conductances —
    /// the exact per-tile fan-out of [`TiledCrossbar`], run over the
    /// self-healed view.
    fn raw_batch(&self, x: &Tensor) -> Tensor {
        let batch = x.shape()[0];
        let nd = self.grid.nd_total();
        let mut items = Vec::with_capacity(self.grid.num_tiles());
        for &(r0, rl) in self.grid.row_blocks() {
            for g in self.grid.col_groups() {
                items.push(((r0, rl), *g));
            }
        }
        // Same journal-ordered commit as [`TiledCrossbar::raw_batch`]:
        // per-tile tasks on the pool, accumulation in submission order.
        let mut raw = Tensor::zeros(&[batch, nd]);
        let raw_data = raw.data_mut();
        backend::ordered_stream(
            items,
            |_, ((r0, rl), g)| {
                let x_block = cols_slice(x, r0, rl);
                let m_block = block(&self.served, g.dev_start, g.dev_len, r0, rl);
                let partial = linalg::matmul_nt(&x_block, &m_block)
                    .expect("tile dimensions agree by construction");
                (g, partial)
            },
            |_, (g, partial)| {
                for b in 0..batch {
                    let dst = &mut raw_data[b * nd + g.dev_start..b * nd + g.dev_start + g.dev_len];
                    for (d, &p) in dst.iter_mut().zip(&partial.data()[b * g.dev_len..]) {
                        *d += p;
                    }
                }
            },
        );
        raw
    }

    /// Batched signed MVM over the self-healed array: quarantined tiles'
    /// partial products come from the exact digital fallback, everything
    /// else from the (possibly faulty) analog state.
    ///
    /// # Errors
    ///
    /// Returns a shape error if `x` is not `(batch, n_in)`, or
    /// [`MappingError::NonFiniteInput`] on NaN/Inf inputs.
    pub fn forward(&self, x: &Tensor) -> Result<Tensor, MappingError> {
        if x.ndim() != 2 || x.shape()[1] != self.grid.n_in() {
            return Err(MappingError::Shape(xbar_tensor::ShapeError::new(
                "self-healing forward",
                format!(
                    "expected (batch, {}) input, got {:?}",
                    self.grid.n_in(),
                    x.shape()
                ),
            )));
        }
        if !x.data().iter().all(|v| v.is_finite()) {
            return Err(MappingError::NonFiniteInput {
                op: "self-healing forward",
            });
        }
        let raw = self.raw_batch(x);
        self.periphery.combine(&raw)
    }

    /// Like [`SelfHealingCrossbar::forward`], but also returns the ABFT
    /// checksum residual each tile's MVM produced on this batch: per tile
    /// the identity `Σ_d partial[b, d] = x_block[b] · c` (with `c` the
    /// target block's column sums) must hold; the reported value is the
    /// worst absolute violation over the batch.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SelfHealingCrossbar::forward`].
    pub fn forward_verified(&self, x: &Tensor) -> Result<(Tensor, Vec<f32>), MappingError> {
        if x.ndim() != 2 || x.shape()[1] != self.grid.n_in() {
            return Err(MappingError::Shape(xbar_tensor::ShapeError::new(
                "self-healing forward_verified",
                format!(
                    "expected (batch, {}) input, got {:?}",
                    self.grid.n_in(),
                    x.shape()
                ),
            )));
        }
        if !x.data().iter().all(|v| v.is_finite()) {
            return Err(MappingError::NonFiniteInput {
                op: "self-healing forward_verified",
            });
        }
        let batch = x.shape()[0];
        let nd = self.grid.nd_total();
        let mut raw = Tensor::zeros(&[batch, nd]);
        let mut residuals = Vec::with_capacity(self.grid.num_tiles());
        for &(r0, rl) in self.grid.row_blocks() {
            for g in self.grid.col_groups() {
                let x_block = cols_slice(x, r0, rl);
                let m_block = block(&self.served, g.dev_start, g.dev_len, r0, rl);
                let partial = linalg::matmul_nt(&x_block, &m_block)
                    .expect("tile dimensions agree by construction");
                // Checksum of the *expected* block: c[i] = Σ_d targets[d, i].
                let t_block = block(&self.targets, g.dev_start, g.dev_len, r0, rl);
                let mut checksum = vec![0.0f32; rl];
                for d in 0..g.dev_len {
                    for (i, c) in checksum.iter_mut().enumerate() {
                        *c += t_block.data()[d * rl + i];
                    }
                }
                let mut worst = 0.0f32;
                for b in 0..batch {
                    let got: f32 = partial.data()[b * g.dev_len..(b + 1) * g.dev_len]
                        .iter()
                        .sum();
                    let want: f32 = x_block.data()[b * rl..(b + 1) * rl]
                        .iter()
                        .zip(&checksum)
                        .map(|(&xi, &ci)| xi * ci)
                        .sum();
                    worst = worst.max((got - want).abs());
                }
                residuals.push(worst);
                for b in 0..batch {
                    let dst =
                        &mut raw.data_mut()[b * nd + g.dev_start..b * nd + g.dev_start + g.dev_len];
                    for (d, &p) in dst.iter_mut().zip(&partial.data()[b * g.dev_len..]) {
                        *d += p;
                    }
                }
            }
        }
        Ok((self.periphery.combine(&raw)?, residuals))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Mapping;
    use xbar_device::{LifetimeFaultModel, TileShape};

    fn reference(mapping: Mapping) -> TiledCrossbar {
        let mut r = XorShiftRng::new(404);
        let w = Tensor::rand_uniform(&[12, 24], -0.02, 0.02, &mut r);
        TiledCrossbar::program_signed(
            &w,
            mapping,
            DeviceConfig::ideal(),
            TileShape::new(8, 8),
            &mut r,
        )
        .unwrap()
    }

    #[test]
    fn monitor_walks_the_state_machine() {
        let policy = RepairPolicy::default();
        let mut m = HealthMonitor::new(1, policy);
        assert_eq!(m.state(0), TileHealth::Healthy);
        // Clean observation: nothing.
        assert_eq!(m.observe(0, 0.0, 1), HealthAction::Nothing);
        // First crossing: detected, no repair yet.
        assert_eq!(m.observe(0, 1.0, 2), HealthAction::Detected);
        assert_eq!(m.state(0), TileHealth::Suspect);
        // Persisting: repair, starting at the reprogram rung.
        assert_eq!(
            m.observe(0, 1.0, 3),
            HealthAction::Repair(RepairStage::Reprogram)
        );
        assert_eq!(m.state(0), TileHealth::Repairing);
        // Failed attempt: budget burns, backoff scheduled.
        assert_eq!(m.record_attempt(0, 3, false), TileHealth::Repairing);
        assert_eq!(m.observe(0, 1.0, 3), HealthAction::Backoff);
        // After the backoff window the ladder escalates to remap.
        assert_eq!(
            m.observe(0, 1.0, 10),
            HealthAction::Repair(RepairStage::Remap)
        );
        // Successful attempt: healthy again, fresh budget.
        assert_eq!(m.record_attempt(0, 10, true), TileHealth::Healthy);
        assert_eq!(m.ewma(0), 0.0);
        // Exhaust the whole budget: quarantined, observe becomes a no-op.
        for epoch in 20..23u32 {
            m.observe(0, 1.0, epoch);
            m.record_attempt(0, epoch, false);
        }
        assert_eq!(m.state(0), TileHealth::Quarantined);
        assert_eq!(m.observe(0, 0.0, 30), HealthAction::AlreadyQuarantined);
        assert_eq!(m.num_quarantined(), 1);
        assert_eq!(m.num_analog(), 0);
    }

    #[test]
    fn suspect_clears_on_transient_residual() {
        let mut m = HealthMonitor::new(
            1,
            RepairPolicy {
                ewma_alpha: 1.0,
                ..RepairPolicy::default()
            },
        );
        assert_eq!(m.observe(0, 1.0, 1), HealthAction::Detected);
        assert_eq!(m.observe(0, 0.0, 2), HealthAction::Nothing);
        assert_eq!(m.state(0), TileHealth::Healthy);
    }

    #[test]
    fn stage_ladder_follows_attempt_budgets() {
        let p = RepairPolicy {
            reprogram_attempts: 2,
            remap_attempts: 1,
            full_remap_attempts: 1,
            ..RepairPolicy::default()
        };
        assert_eq!(p.budget(), 4);
        assert_eq!(p.stage_for(0), RepairStage::Reprogram);
        assert_eq!(p.stage_for(1), RepairStage::Reprogram);
        assert_eq!(p.stage_for(2), RepairStage::Remap);
        assert_eq!(p.stage_for(3), RepairStage::FullRemap);
    }

    #[test]
    fn monitor_flat_round_trips() {
        let policy = RepairPolicy::default();
        let mut m = HealthMonitor::new(3, policy);
        m.observe(0, 1.0, 1);
        m.observe(1, 0.5, 1);
        m.observe(2, 2.0, 1);
        m.observe(2, 2.0, 2);
        m.record_attempt(2, 2, false);
        let flat = m.to_flat();
        assert_eq!(flat.len(), 12);
        let back = HealthMonitor::from_flat(&flat, policy).unwrap();
        assert_eq!(back, m);
        // Invalid encodings are rejected.
        assert!(HealthMonitor::from_flat(&flat[..7], policy).is_err());
        let mut bad = flat.clone();
        bad[0] = 9.0;
        assert!(HealthMonitor::from_flat(&bad, policy).is_err());
    }

    #[test]
    fn inactive_lifetime_is_a_bitwise_noop() {
        let mut r = XorShiftRng::new(11);
        let x = Tensor::rand_uniform(&[5, 24], -1.0, 1.0, &mut r);
        for mapping in Mapping::ALL {
            let tiled = reference(mapping);
            let mut healing = SelfHealingCrossbar::new(
                &tiled,
                LifetimeFaultModel::none(),
                RepairPolicy::default(),
            );
            assert_eq!(
                healing.forward(&x).unwrap().data(),
                tiled.forward(&x).unwrap().data(),
                "{mapping}: wrapper must match the reference bitwise"
            );
            for _ in 0..3 {
                let report = healing.scrub().unwrap();
                assert_eq!(report.new_faults, 0);
                assert_eq!(report.detections, 0);
                assert!(report.repairs.is_empty());
                assert_eq!(report.analog_coverage(), 1.0);
            }
            assert_eq!(
                healing.forward(&x).unwrap().data(),
                tiled.forward(&x).unwrap().data(),
                "{mapping}: scrubbing a wear-free array must change nothing"
            );
        }
    }

    #[test]
    fn forward_verified_flags_exactly_the_corrupted_tile() {
        let tiled = reference(Mapping::Acm);
        let mut healing =
            SelfHealingCrossbar::new(&tiled, LifetimeFaultModel::none(), RepairPolicy::default());
        let mut r = XorShiftRng::new(13);
        let x = Tensor::rand_uniform(&[4, 24], 0.5, 1.0, &mut r);
        let (y0, res0) = healing.forward_verified(&x).unwrap();
        assert!(res0.iter().all(|&v| v < 1e-4), "clean array: {res0:?}");
        assert_eq!(y0.data(), tiled.forward(&x).unwrap().data());
        // Corrupt one cell in tile 0 (rows 0..9 ACM group 0, cols 0..8).
        healing.inject_soft_error(2, 3, 1.0);
        let (_, res1) = healing.forward_verified(&x).unwrap();
        assert!(res1[0] > 0.1, "corrupted tile must trip: {res1:?}");
        assert!(
            res1[1..].iter().all(|&v| v < 1e-4),
            "other tiles stay clean: {res1:?}"
        );
    }

    #[test]
    fn soft_error_is_detected_and_reprogrammed_away() {
        let tiled = reference(Mapping::Acm);
        let mut healing =
            SelfHealingCrossbar::new(&tiled, LifetimeFaultModel::none(), RepairPolicy::default());
        healing.inject_soft_error(2, 3, 1.0);
        // Scrub 1: detection; scrub 2: reprogram heals it.
        let r1 = healing.scrub().unwrap();
        assert_eq!(r1.detections, 1);
        assert!(r1.repairs.is_empty());
        let r2 = healing.scrub().unwrap();
        assert_eq!(r2.repairs.len(), 1);
        assert_eq!(r2.repairs[0].stage, RepairStage::Reprogram);
        assert!(r2.repairs[0].healed);
        assert!(r2.repairs[0].residual_before > 0.1);
        assert!(r2.repairs[0].residual_after < 1e-6);
        assert_eq!(healing.monitor().num_quarantined(), 0);
        // The array is back to the reference bitwise.
        let mut r = XorShiftRng::new(17);
        let x = Tensor::rand_uniform(&[3, 24], -1.0, 1.0, &mut r);
        assert_eq!(
            healing.forward(&x).unwrap().data(),
            tiled.forward(&x).unwrap().data()
        );
    }

    #[test]
    fn lifetime_fault_escalates_to_remap_and_recovers_weights() {
        for mapping in [Mapping::Acm, Mapping::Perm] {
            let tiled = reference(mapping);
            let w_ideal = tiled.effective_weights();
            // Low rate: a few stuck cells over the first epochs.
            let lifetime = LifetimeFaultModel::new(0.002, 23).unwrap();
            let policy = RepairPolicy::default();
            let mut healing = SelfHealingCrossbar::new(&tiled, lifetime, policy);
            // Scrub until the array quiesces: three consecutive epochs
            // with no arrivals, no repair activity, and no tile pending.
            let (mut detections, mut remaps, mut quiet, mut epochs) = (0, 0, 0, 0);
            while quiet < 3 && epochs < 80 {
                let rep = healing.scrub().unwrap();
                detections += rep.detections;
                remaps += rep
                    .repairs
                    .iter()
                    .filter(|a| a.stage != RepairStage::Reprogram && a.healed)
                    .count();
                let pending = (0..healing.monitor().num_tiles()).any(|t| {
                    matches!(
                        healing.monitor().state(t),
                        TileHealth::Suspect | TileHealth::Repairing
                    )
                });
                if rep.new_faults > 0 || rep.detections > 0 || !rep.repairs.is_empty() || pending {
                    quiet = 0;
                } else {
                    quiet += 1;
                }
                epochs += 1;
            }
            assert_eq!(quiet, 3, "{mapping}: wear never quiesced");
            assert!(healing.fault_map().num_stuck() > 0, "{mapping}: no wear");
            assert!(detections > 0, "{mapping}: wear was never detected");
            assert!(remaps > 0, "{mapping}: no successful remap repair");
            // Quiescent means every tile is Healthy (fault-free, or
            // remap-healed to within the policy's weight tolerance) or
            // Quarantined (served exactly by the digital fallback), so the
            // end-to-end weight error is bounded by the tolerance.
            let w_healed = healing.effective_weights().unwrap();
            assert!(
                w_healed.all_close(&w_ideal, 1.5 * policy.weight_tolerance),
                "{mapping}: weight error {} after healing",
                w_healed.sub(&w_ideal).unwrap().abs_max()
            );
        }
    }

    #[test]
    fn total_wearout_quarantines_everything_and_falls_back_exactly() {
        let tiled = reference(Mapping::Acm);
        let lifetime = LifetimeFaultModel::new(1.0, 3).unwrap();
        let mut healing = SelfHealingCrossbar::new(&tiled, lifetime, RepairPolicy::default());
        // Every cell fails at epoch 1; no remap can absorb a fully stuck
        // tile, so the ladder runs dry and every tile quarantines.
        let mut saw_quarantine_event = false;
        for _ in 0..12 {
            let rep = healing.scrub().unwrap();
            saw_quarantine_event |= rep.quarantined_now > 0;
            if rep.analog_tiles == 0 {
                break;
            }
        }
        assert!(saw_quarantine_event);
        assert_eq!(healing.monitor().num_quarantined(), tiled.num_tiles());
        assert_eq!(healing.analog_coverage(), 0.0);
        // Digital fallback serves the ideal fault-free output *exactly*.
        let mut r = XorShiftRng::new(29);
        let x = Tensor::rand_uniform(&[6, 24], -1.0, 1.0, &mut r);
        assert_eq!(
            healing.forward(&x).unwrap().data(),
            tiled.forward(&x).unwrap().data(),
            "quarantined grid must be bitwise the ideal reference"
        );
    }

    #[test]
    fn scrub_and_forward_are_bitwise_serial_vs_pooled() {
        let tiled = reference(Mapping::Acm);
        let lifetime = LifetimeFaultModel::new(0.003, 51).unwrap();
        let run = |serial: bool| {
            backend::force_serial(serial);
            let mut healing = SelfHealingCrossbar::new(&tiled, lifetime, RepairPolicy::default());
            let mut reports = Vec::new();
            for _ in 0..8 {
                reports.push(healing.scrub().unwrap());
            }
            let mut r = XorShiftRng::new(31);
            let x = Tensor::rand_uniform(&[7, 24], -1.0, 1.0, &mut r);
            let y = healing.forward(&x).unwrap();
            backend::force_serial(false);
            (reports, y, healing.monitor().clone())
        };
        let (rep_s, y_s, mon_s) = run(true);
        let (rep_p, y_p, mon_p) = run(false);
        assert_eq!(rep_s, rep_p, "scrub reports diverged across pooling");
        assert_eq!(y_s.data(), y_p.data(), "forward diverged across pooling");
        assert_eq!(mon_s, mon_p, "health state diverged across pooling");
    }
}
