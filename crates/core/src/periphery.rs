use xbar_tensor::{linalg, Tensor};

use crate::MappingError;

/// A validated periphery matrix `S` (paper Sec. III-B/III-C).
///
/// `S` has shape `N_O × N_D`, entries restricted to `{−1, 0, +1}` (so it is
/// implementable as additions/subtractions of digitized column outputs),
/// and satisfies the paper's two sufficient conditions:
///
/// 1. `rank(S) = N_O` — any signed `W` lies in the column space of `S`;
/// 2. there exists `x_h > 0` with `S·x_h = 0` — any particular solution of
///    `S·m = w` can be shifted (`m + α·x_h`) into the non-negative orthant.
///
/// The three standard stencils are provided as constructors
/// ([`PeripheryMatrix::acm`], [`PeripheryMatrix::bias_column`],
/// [`PeripheryMatrix::double_element`]); arbitrary user matrices can be
/// validated through [`PeripheryMatrix::try_new`].
///
/// # Example
///
/// ```
/// use xbar_core::PeripheryMatrix;
///
/// let s = PeripheryMatrix::acm(3);
/// assert_eq!(s.n_out(), 3);
/// assert_eq!(s.n_dev(), 4);
/// // Row i subtracts column i+1 from column i:
/// assert_eq!(s.matrix().at(&[0, 0]), 1.0);
/// assert_eq!(s.matrix().at(&[0, 1]), -1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PeripheryMatrix {
    s: Tensor,
    null_vector: Vec<f32>,
}

/// Tolerance used for rank and null-space computations. Periphery entries
/// are exactly representable integers so this only guards float roundoff.
const TOL: f32 = 1e-5;

impl PeripheryMatrix {
    /// The adjacent connection matrix of the paper (Fig. 2): row `j` is
    /// `+1` at column `j` and `−1` at column `j + 1`.
    ///
    /// # Panics
    ///
    /// Panics if `n_out == 0`.
    pub fn acm(n_out: usize) -> Self {
        assert!(n_out > 0, "periphery needs at least one output");
        let nd = n_out + 1;
        let mut s = Tensor::zeros(&[n_out, nd]);
        for j in 0..n_out {
            *s.at_mut(&[j, j]) = 1.0;
            *s.at_mut(&[j, j + 1]) = -1.0;
        }
        Self {
            s,
            null_vector: vec![1.0; nd],
        }
    }

    /// The bias-column mapping (Fig. 1b): row `j` is `+1` at column `j` and
    /// `−1` at the shared reference column `N_O`.
    ///
    /// # Panics
    ///
    /// Panics if `n_out == 0`.
    pub fn bias_column(n_out: usize) -> Self {
        assert!(n_out > 0, "periphery needs at least one output");
        let nd = n_out + 1;
        let mut s = Tensor::zeros(&[n_out, nd]);
        for j in 0..n_out {
            *s.at_mut(&[j, j]) = 1.0;
            *s.at_mut(&[j, nd - 1]) = -1.0;
        }
        Self {
            s,
            null_vector: vec![1.0; nd],
        }
    }

    /// The double-element mapping (Fig. 1a): row `j` is `+1` at column `2j`
    /// and `−1` at column `2j + 1`.
    ///
    /// # Panics
    ///
    /// Panics if `n_out == 0`.
    pub fn double_element(n_out: usize) -> Self {
        assert!(n_out > 0, "periphery needs at least one output");
        let nd = 2 * n_out;
        let mut s = Tensor::zeros(&[n_out, nd]);
        for j in 0..n_out {
            *s.at_mut(&[j, 2 * j]) = 1.0;
            *s.at_mut(&[j, 2 * j + 1]) = -1.0;
        }
        Self {
            s,
            null_vector: vec![1.0; nd],
        }
    }

    /// Builds the block-diagonal composition of `blocks` — the periphery
    /// of a *tiled* layer, where each physical column-group of crossbar
    /// tiles carries its own local stencil (and, for BC/ACM, its own
    /// reference column).
    ///
    /// The composition inherits validity from its blocks without
    /// re-running the expensive rank check: the rank of a block-diagonal
    /// matrix is the sum of the block ranks, and the concatenation of the
    /// blocks' strictly positive null vectors is a strictly positive null
    /// vector of the whole.
    ///
    /// # Panics
    ///
    /// Panics if `blocks` is empty.
    pub fn block_diagonal(blocks: &[PeripheryMatrix]) -> Self {
        assert!(!blocks.is_empty(), "block-diagonal periphery needs blocks");
        if blocks.len() == 1 {
            return blocks[0].clone();
        }
        let n_out: usize = blocks.iter().map(PeripheryMatrix::n_out).sum();
        let nd: usize = blocks.iter().map(PeripheryMatrix::n_dev).sum();
        let mut s = Tensor::zeros(&[n_out, nd]);
        let mut null_vector = Vec::with_capacity(nd);
        let (mut r0, mut c0) = (0, 0);
        for b in blocks {
            for i in 0..b.n_out() {
                for j in 0..b.n_dev() {
                    *s.at_mut(&[r0 + i, c0 + j]) = b.matrix().at(&[i, j]);
                }
            }
            null_vector.extend_from_slice(b.null_vector());
            r0 += b.n_out();
            c0 += b.n_dev();
        }
        Self { s, null_vector }
    }

    /// Folds a device-column permutation into this stencil: returns
    /// `S_p = S · Pᵀ`, the periphery of an array whose physical device
    /// column `p` stores logical device column `perm[p]`.
    ///
    /// Validity is inherited by construction (no rank recheck needed):
    /// permuting columns of a ternary matrix keeps it ternary, preserves
    /// row rank, and permutes the strictly positive null vector into
    /// another strictly positive null vector (`x_h_p[p] = x_h[perm[p]]`).
    /// This is how [`crate::Mapping::Perm`] keeps `W = S_p · (P·M)` exact:
    /// `S_p · P · M = S · Pᵀ · P · M = S · M`.
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..n_dev()`.
    pub fn permuted(&self, perm: &[usize]) -> Self {
        let nd = self.n_dev();
        assert_eq!(perm.len(), nd, "permutation length must equal N_D");
        let mut seen = vec![false; nd];
        for &l in perm {
            assert!(l < nd && !seen[l], "not a permutation of 0..{nd}");
            seen[l] = true;
        }
        let n_out = self.n_out();
        let mut s = Tensor::zeros(&[n_out, nd]);
        let mut null_vector = Vec::with_capacity(nd);
        for (phys, &logical) in perm.iter().enumerate() {
            for i in 0..n_out {
                *s.at_mut(&[i, phys]) = self.s.at(&[i, logical]);
            }
            null_vector.push(self.null_vector[logical]);
        }
        Self { s, null_vector }
    }

    /// Validates an arbitrary candidate periphery matrix against the
    /// paper's conditions.
    ///
    /// # Errors
    ///
    /// Returns [`MappingError::InvalidPeriphery`] if any entry is outside
    /// `{−1, 0, +1}`, if `rank(S) < N_O`, or if no strictly positive null
    /// vector can be certified. The positive-null-vector search tries the
    /// paper's canonical certificate `x_h = 1` (rows summing to zero),
    /// then single-vector null bases; matrices needing a genuinely
    /// non-trivial positive combination are conservatively rejected.
    pub fn try_new(s: Tensor) -> Result<Self, MappingError> {
        if s.ndim() != 2 {
            return Err(MappingError::InvalidPeriphery {
                reason: format!("expected 2-D matrix, got shape {:?}", s.shape()),
            });
        }
        let (n_out, nd) = (s.shape()[0], s.shape()[1]);
        if n_out == 0 || nd == 0 {
            return Err(MappingError::InvalidPeriphery {
                reason: "empty matrix".into(),
            });
        }
        for (i, &v) in s.data().iter().enumerate() {
            if v != 0.0 && v != 1.0 && v != -1.0 {
                return Err(MappingError::InvalidPeriphery {
                    reason: format!("entry {i} is {v}, not in {{-1, 0, +1}}"),
                });
            }
        }
        // Condition 1: full row rank.
        let r = linalg::rank(&s, TOL).map_err(MappingError::from)?;
        if r != n_out {
            return Err(MappingError::InvalidPeriphery {
                reason: format!("rank(S) = {r} but N_O = {n_out}; W would not span"),
            });
        }
        // Condition 2: strictly positive null vector.
        let null_vector =
            find_positive_null_vector(&s).ok_or_else(|| MappingError::InvalidPeriphery {
                reason: "no strictly positive null vector found; \
                         non-negative decomposition not guaranteed"
                    .into(),
            })?;
        Ok(Self { s, null_vector })
    }

    /// The underlying `N_O × N_D` matrix.
    pub fn matrix(&self) -> &Tensor {
        &self.s
    }

    /// Number of signed outputs `N_O`.
    pub fn n_out(&self) -> usize {
        self.s.shape()[0]
    }

    /// Number of crossbar (device) columns `N_D`.
    pub fn n_dev(&self) -> usize {
        self.s.shape()[1]
    }

    /// The certified strictly positive null vector `x_h` (`S·x_h = 0`).
    /// For all three standard mappings this is the all-ones vector.
    pub fn null_vector(&self) -> &[f32] {
        &self.null_vector
    }

    /// Applies the periphery combine to a batch of raw column outputs:
    /// `Y_dev (batch × N_D)  →  Y (batch × N_O)`, i.e. `Y = Y_dev · Sᵀ`.
    ///
    /// # Errors
    ///
    /// Returns a shape error if `y_dev` is not `(batch, N_D)`.
    pub fn combine(&self, y_dev: &Tensor) -> Result<Tensor, MappingError> {
        linalg::matmul_nt(y_dev, &self.s).map_err(MappingError::from)
    }

    /// Adjoint of [`PeripheryMatrix::combine`], used for gradient routing:
    /// `G (batch × N_O)  →  G_dev (batch × N_D)`, i.e. `G_dev = G · S`.
    ///
    /// # Errors
    ///
    /// Returns a shape error if `grad` is not `(batch, N_O)`.
    pub fn spread(&self, grad: &Tensor) -> Result<Tensor, MappingError> {
        linalg::matmul(grad, &self.s).map_err(MappingError::from)
    }

    /// Number of non-zero entries — the count of periphery add/sub
    /// operations per MVM.
    pub fn num_ops(&self) -> usize {
        self.s.data().iter().filter(|&&v| v != 0.0).count()
    }
}

/// Searches for a strictly positive vector in the null space of `s`.
fn find_positive_null_vector(s: &Tensor) -> Option<Vec<f32>> {
    let (n_out, nd) = (s.shape()[0], s.shape()[1]);
    // Fast path — the paper's canonical certificate: rows sum to zero
    // means x_h = 1 is in the null space.
    let ones_works = (0..n_out).all(|i| {
        let row_sum: f32 = (0..nd).map(|j| s.at(&[i, j])).sum();
        row_sum.abs() <= TOL
    });
    if ones_works {
        return Some(vec![1.0; nd]);
    }
    // General path: compute a null-space basis by RREF and test each basis
    // vector (and its negation) for strict positivity.
    let basis = null_space_basis(s);
    for v in &basis {
        if v.iter().all(|&x| x > TOL) {
            return Some(v.clone());
        }
        if v.iter().all(|&x| x < -TOL) {
            return Some(v.iter().map(|&x| -x).collect());
        }
    }
    // Equal-weight combination of the basis occasionally certifies when no
    // single vector does.
    if basis.len() > 1 {
        let mut sum = vec![0.0f32; nd];
        for v in &basis {
            for (a, &b) in sum.iter_mut().zip(v) {
                *a += b;
            }
        }
        if sum.iter().all(|&x| x > TOL) {
            return Some(sum);
        }
    }
    None
}

/// Null-space basis of `s` via reduced row echelon form (f64 arithmetic).
fn null_space_basis(s: &Tensor) -> Vec<Vec<f32>> {
    let (m, n) = (s.shape()[0], s.shape()[1]);
    let mut a: Vec<f64> = s.data().iter().map(|&x| x as f64).collect();
    let tol = TOL as f64;
    let mut pivot_cols = Vec::new();
    let mut row = 0;
    for col in 0..n {
        if row >= m {
            break;
        }
        let mut pivot = row;
        for r in row + 1..m {
            if a[r * n + col].abs() > a[pivot * n + col].abs() {
                pivot = r;
            }
        }
        if a[pivot * n + col].abs() <= tol {
            continue;
        }
        if pivot != row {
            for c in 0..n {
                a.swap(row * n + c, pivot * n + c);
            }
        }
        let pv = a[row * n + col];
        for c in 0..n {
            a[row * n + c] /= pv;
        }
        for r in 0..m {
            if r != row {
                let f = a[r * n + col];
                if f != 0.0 {
                    for c in 0..n {
                        a[r * n + c] -= f * a[row * n + c];
                    }
                }
            }
        }
        pivot_cols.push(col);
        row += 1;
    }
    let free_cols: Vec<usize> = (0..n).filter(|c| !pivot_cols.contains(c)).collect();
    let mut basis = Vec::with_capacity(free_cols.len());
    for &fc in &free_cols {
        let mut v = vec![0.0f32; n];
        v[fc] = 1.0;
        for (r, &pc) in pivot_cols.iter().enumerate() {
            v[pc] = -a[r * n + fc] as f32;
        }
        basis.push(v);
    }
    basis
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acm_stencil_matches_figure2() {
        let s = PeripheryMatrix::acm(3);
        let expected = Tensor::from_vec(
            vec![
                1.0, -1.0, 0.0, 0.0, //
                0.0, 1.0, -1.0, 0.0, //
                0.0, 0.0, 1.0, -1.0,
            ],
            &[3, 4],
        )
        .unwrap();
        assert_eq!(s.matrix(), &expected);
    }

    #[test]
    fn bias_column_stencil_matches_figure1b() {
        let s = PeripheryMatrix::bias_column(2);
        let expected = Tensor::from_vec(vec![1.0, 0.0, -1.0, 0.0, 1.0, -1.0], &[2, 3]).unwrap();
        assert_eq!(s.matrix(), &expected);
    }

    #[test]
    fn double_element_stencil_matches_figure1a() {
        let s = PeripheryMatrix::double_element(2);
        let expected =
            Tensor::from_vec(vec![1.0, -1.0, 0.0, 0.0, 0.0, 0.0, 1.0, -1.0], &[2, 4]).unwrap();
        assert_eq!(s.matrix(), &expected);
    }

    #[test]
    fn standard_stencils_pass_validation() {
        for no in [1usize, 2, 5, 17] {
            for s in [
                PeripheryMatrix::acm(no),
                PeripheryMatrix::bias_column(no),
                PeripheryMatrix::double_element(no),
            ] {
                let revalidated = PeripheryMatrix::try_new(s.matrix().clone()).unwrap();
                assert_eq!(revalidated.n_out(), no);
            }
        }
    }

    #[test]
    fn standard_stencils_have_all_ones_null_vector() {
        // The paper's canonical x_h = 1 certificate (Sec. III-C).
        for s in [
            PeripheryMatrix::acm(4),
            PeripheryMatrix::bias_column(4),
            PeripheryMatrix::double_element(4),
        ] {
            assert!(s.null_vector().iter().all(|&x| x == 1.0));
            // Verify S * x_h = 0.
            let xh = Tensor::from_vec(s.null_vector().to_vec(), &[s.n_dev()]).unwrap();
            let prod = linalg::matvec(s.matrix(), &xh).unwrap();
            assert!(prod.abs_max() < 1e-6);
        }
    }

    #[test]
    fn each_row_has_one_plus_and_one_minus() {
        // Paper Sec. III-D: each periphery row has exactly two nonzeros,
        // +1 and -1.
        for s in [
            PeripheryMatrix::acm(5),
            PeripheryMatrix::bias_column(5),
            PeripheryMatrix::double_element(5),
        ] {
            for i in 0..s.n_out() {
                let row = s.matrix().row(i);
                let plus = row.data().iter().filter(|&&v| v == 1.0).count();
                let minus = row.data().iter().filter(|&&v| v == -1.0).count();
                assert_eq!((plus, minus), (1, 1));
            }
        }
    }

    #[test]
    fn identity_matrix_is_rejected() {
        // rank is fine but no positive null vector exists (square, full
        // rank => trivial null space): the identity cannot realise signed
        // weights with non-negative M.
        let err = PeripheryMatrix::try_new(Tensor::eye(3)).unwrap_err();
        assert!(matches!(err, MappingError::InvalidPeriphery { .. }));
    }

    #[test]
    fn rank_deficient_matrix_is_rejected() {
        // Two identical rows: rank 1 < N_O = 2.
        let s = Tensor::from_vec(vec![1.0, -1.0, 0.0, 1.0, -1.0, 0.0], &[2, 3]).unwrap();
        let err = PeripheryMatrix::try_new(s).unwrap_err();
        match err {
            MappingError::InvalidPeriphery { reason } => assert!(reason.contains("rank")),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn non_ternary_entries_are_rejected() {
        let s = Tensor::from_vec(vec![0.5, -1.0, 0.5], &[1, 3]).unwrap();
        assert!(PeripheryMatrix::try_new(s).is_err());
    }

    #[test]
    fn reversed_acm_is_valid() {
        // Subtracting the *left* neighbour instead of the right one is an
        // equally valid periphery (used by the column-order ablation).
        let mut s = Tensor::zeros(&[3, 4]);
        for j in 0..3 {
            *s.at_mut(&[j, j]) = -1.0;
            *s.at_mut(&[j, j + 1]) = 1.0;
        }
        let p = PeripheryMatrix::try_new(s).unwrap();
        assert_eq!(p.n_dev(), 4);
    }

    #[test]
    fn combine_and_spread_are_adjoint() {
        use xbar_tensor::rng::XorShiftRng;
        let mut rng = XorShiftRng::new(61);
        let s = PeripheryMatrix::acm(4);
        let y_dev = Tensor::rand_normal(&[3, 5], 0.0, 1.0, &mut rng);
        let g = Tensor::rand_normal(&[3, 4], 0.0, 1.0, &mut rng);
        let lhs: f32 = s
            .combine(&y_dev)
            .unwrap()
            .data()
            .iter()
            .zip(g.data())
            .map(|(&a, &b)| a * b)
            .sum();
        let rhs: f32 = y_dev
            .data()
            .iter()
            .zip(s.spread(&g).unwrap().data())
            .map(|(&a, &b)| a * b)
            .sum();
        assert!((lhs - rhs).abs() < 1e-4);
    }

    #[test]
    fn combine_computes_adjacent_differences_for_acm() {
        let s = PeripheryMatrix::acm(2);
        let y_dev = Tensor::from_vec(vec![5.0, 3.0, 2.0], &[1, 3]).unwrap();
        let y = s.combine(&y_dev).unwrap();
        assert_eq!(y.data(), &[2.0, 1.0]); // 5-3, 3-2
    }

    #[test]
    fn num_ops_counts_nonzeros() {
        assert_eq!(PeripheryMatrix::acm(4).num_ops(), 8);
        assert_eq!(PeripheryMatrix::double_element(4).num_ops(), 8);
        assert_eq!(PeripheryMatrix::bias_column(4).num_ops(), 8);
    }

    #[test]
    fn block_diagonal_composes_and_revalidates() {
        let blocks = [PeripheryMatrix::acm(3), PeripheryMatrix::acm(2)];
        let s = PeripheryMatrix::block_diagonal(&blocks);
        assert_eq!(s.n_out(), 5);
        assert_eq!(s.n_dev(), 7);
        // Off-diagonal blocks are zero: row 0 never touches group 1.
        for j in 4..7 {
            assert_eq!(s.matrix().at(&[0, j]), 0.0);
        }
        // Still a valid periphery by the expensive check.
        let revalidated = PeripheryMatrix::try_new(s.matrix().clone()).unwrap();
        assert_eq!(revalidated.n_out(), 5);
        assert!(s.null_vector().iter().all(|&x| x == 1.0));
    }

    #[test]
    fn block_diagonal_of_one_is_identityish() {
        let b = PeripheryMatrix::bias_column(4);
        let s = PeripheryMatrix::block_diagonal(std::slice::from_ref(&b));
        assert_eq!(s, b);
    }

    #[test]
    fn permuted_stencil_is_valid_and_undoes_the_row_shuffle() {
        use xbar_tensor::rng::XorShiftRng;
        let base = PeripheryMatrix::bias_column(4);
        // Physical row p stores logical row perm[p].
        let perm = [3usize, 0, 4, 1, 2];
        let sp = base.permuted(&perm);
        // Still a valid periphery by the expensive check.
        let revalidated = PeripheryMatrix::try_new(sp.matrix().clone()).unwrap();
        assert_eq!(revalidated.n_out(), 4);
        // S_p · (P·M) == S · M for any M.
        let mut rng = XorShiftRng::new(63);
        let m = Tensor::rand_uniform(&[5, 6], 0.0, 1.0, &mut rng);
        let mut m_phys = Tensor::zeros(&[5, 6]);
        for (phys, &logical) in perm.iter().enumerate() {
            for c in 0..6 {
                *m_phys.at_mut(&[phys, c]) = m.at(&[logical, c]);
            }
        }
        let want = linalg::matmul(base.matrix(), &m).unwrap();
        let got = linalg::matmul(sp.matrix(), &m_phys).unwrap();
        assert!(got.all_close(&want, 1e-6));
        // Identity permutation is a no-op.
        assert_eq!(base.permuted(&[0, 1, 2, 3, 4]), base);
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn permuted_rejects_duplicates() {
        let _ = PeripheryMatrix::bias_column(2).permuted(&[0, 0, 1]);
    }

    #[test]
    fn null_space_basis_dimension() {
        let s = PeripheryMatrix::acm(3);
        let basis = null_space_basis(s.matrix());
        // N_D - rank = 4 - 3 = 1.
        assert_eq!(basis.len(), 1);
    }
}
