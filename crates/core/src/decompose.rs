//! Constructive decompositions `W = S · M` (paper Sec. III-C).
//!
//! Each mapping admits a closed-form non-negative solution; additionally a
//! generic Gaussian-elimination solver handles *any* validated
//! [`PeripheryMatrix`], implementing the paper's existence proof
//! constructively: find a particular solution of `S·m = w`, then shift it
//! along the strictly positive null vector `x_h` until non-negative.

use xbar_device::ConductanceRange;
use xbar_tensor::{linalg, Tensor};

use crate::{Mapping, MappingError, PeripheryMatrix};

fn expect_signed_matrix(op: &'static str, w: &Tensor) -> Result<(usize, usize), MappingError> {
    if w.ndim() != 2 || w.shape()[0] == 0 || w.shape()[1] == 0 {
        return Err(MappingError::Shape(xbar_tensor::ShapeError::new(
            op,
            format!("expected non-empty 2-D weight matrix, got {:?}", w.shape()),
        )));
    }
    Ok((w.shape()[0], w.shape()[1]))
}

/// Reconstructs the signed matrix `W = S · M` from a conductance matrix
/// `M` of shape `(N_D, N_I)`.
///
/// # Errors
///
/// Returns an error if `M`'s row count does not match the mapping's
/// `N_D` for any `N_O`, or shapes are otherwise invalid.
pub fn compose(m: &Tensor, mapping: Mapping) -> Result<Tensor, MappingError> {
    let (nd, _) = expect_signed_matrix("compose", m)?;
    let n_out = match mapping {
        Mapping::DoubleElement => {
            if nd % 2 != 0 {
                return Err(MappingError::Shape(xbar_tensor::ShapeError::new(
                    "compose",
                    format!("DE conductance matrix needs even row count, got {nd}"),
                )));
            }
            nd / 2
        }
        Mapping::BiasColumn | Mapping::Acm | Mapping::Perm => {
            if nd < 2 {
                return Err(MappingError::Shape(xbar_tensor::ShapeError::new(
                    "compose",
                    format!("{mapping} needs at least 2 device columns, got {nd}"),
                )));
            }
            nd - 1
        }
    };
    let s = mapping.periphery(n_out);
    linalg::matmul(s.matrix(), m).map_err(MappingError::from)
}

/// Decomposes a signed `W` of shape `(N_O, N_I)` into the non-negative
/// conductance matrix `M` of shape `(N_D, N_I)` for the given mapping,
/// using the closed-form construction:
///
/// * **DE** — positive/negative part split:
///   `m_{2j} = g_min + max(w_j, 0)`, `m_{2j+1} = g_min + max(−w_j, 0)`;
/// * **BC** — midpoint shift: `m_j = mid + w_j`, reference column fixed at
///   `mid` (paper Sec. II);
/// * **ACM** — suffix sums `m_j = c + Σ_{t ≥ j} w_t` with `c` chosen so the
///   smallest element sits exactly at `g_min` (the paper's
///   `x_p + α·x_h` shift with `x_h = 1`).
///
/// # Errors
///
/// Returns [`MappingError::NotRepresentable`] when a weight (or, for ACM, a
/// column's cumulative spread) exceeds what the conductance range can hold,
/// with the offending value in the message.
pub fn decompose(
    w: &Tensor,
    mapping: Mapping,
    range: ConductanceRange,
) -> Result<Tensor, MappingError> {
    let (n_out, n_in) = expect_signed_matrix("decompose", w)?;
    let span = range.span();
    match mapping {
        Mapping::DoubleElement => {
            let mut m = Tensor::zeros(&[2 * n_out, n_in]);
            for j in 0..n_out {
                for i in 0..n_in {
                    let wv = w.at(&[j, i]);
                    if wv.abs() > span + 1e-6 {
                        return Err(MappingError::NotRepresentable {
                            mapping: "DE",
                            detail: format!("|{wv}| exceeds span {span}"),
                        });
                    }
                    *m.at_mut(&[2 * j, i]) = range.g_min() + wv.max(0.0).min(span);
                    *m.at_mut(&[2 * j + 1, i]) = range.g_min() + (-wv).max(0.0).min(span);
                }
            }
            Ok(m)
        }
        // Perm decomposes exactly like BC: the physical row permutation
        // is applied (and folded into the periphery) at program time, in
        // the logical→physical step — `M` here is in logical row order.
        Mapping::BiasColumn | Mapping::Perm => {
            let mid = range.midpoint();
            let mut m = Tensor::zeros(&[n_out + 1, n_in]);
            for j in 0..n_out {
                for i in 0..n_in {
                    let wv = w.at(&[j, i]);
                    if wv.abs() > span / 2.0 + 1e-6 {
                        return Err(MappingError::NotRepresentable {
                            mapping: mapping.tag(),
                            detail: format!("|{wv}| exceeds half-span {}", span / 2.0),
                        });
                    }
                    *m.at_mut(&[j, i]) = range.clamp(mid + wv);
                }
            }
            for i in 0..n_in {
                *m.at_mut(&[n_out, i]) = mid;
            }
            Ok(m)
        }
        Mapping::Acm => {
            let mut m = Tensor::zeros(&[n_out + 1, n_in]);
            for i in 0..n_in {
                // Suffix sums: s_j = sum_{t=j..n_out-1} w_t, s_{n_out} = 0.
                let mut suffix = vec![0.0f32; n_out + 1];
                for j in (0..n_out).rev() {
                    suffix[j] = suffix[j + 1] + w.at(&[j, i]);
                }
                let lo = suffix.iter().copied().fold(f32::INFINITY, f32::min);
                let hi = suffix.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                if hi - lo > span + 1e-6 {
                    return Err(MappingError::NotRepresentable {
                        mapping: "ACM",
                        detail: format!(
                            "column {i} cumulative spread {} exceeds span {span}",
                            hi - lo
                        ),
                    });
                }
                let c = range.g_min() - lo;
                for (j, &sv) in suffix.iter().enumerate() {
                    *m.at_mut(&[j, i]) = range.clamp(sv + c);
                }
            }
            Ok(m)
        }
    }
}

/// Decomposes `W` against an *arbitrary* validated periphery matrix using
/// the constructive existence proof of Sec. III-C: per column, a particular
/// solution of `S·m = w` is found by Gaussian elimination (free variables
/// zero) and shifted along the positive null vector `x_h` until every
/// element is at least `g_min`.
///
/// Unlike [`decompose`], this does **not** check the `g_max` bound — the
/// paper's conditions guarantee non-negativity, not boundedness, for
/// arbitrary `S`. Callers that need range-fitting should rescale `W` first.
///
/// # Errors
///
/// Returns a shape error if `W` is not `(s.n_out(), N_I)`.
pub fn decompose_with_periphery(
    w: &Tensor,
    s: &PeripheryMatrix,
    range: ConductanceRange,
) -> Result<Tensor, MappingError> {
    let (n_out, n_in) = expect_signed_matrix("decompose_with_periphery", w)?;
    if n_out != s.n_out() {
        return Err(MappingError::Shape(xbar_tensor::ShapeError::new(
            "decompose_with_periphery",
            format!("W has {n_out} rows but S expects {}", s.n_out()),
        )));
    }
    let nd = s.n_dev();
    let xh = s.null_vector();
    let mut m = Tensor::zeros(&[nd, n_in]);
    for i in 0..n_in {
        let w_col: Vec<f64> = (0..n_out).map(|j| w.at(&[j, i]) as f64).collect();
        let particular = solve_particular(s.matrix(), &w_col);
        // Shift: find the largest deficit below g_min relative to x_h.
        let mut alpha = 0.0f64;
        for (p, &h) in particular.iter().zip(xh) {
            let need = (range.g_min() as f64 - p) / h as f64;
            if need > alpha {
                alpha = need;
            }
        }
        for j in 0..nd {
            *m.at_mut(&[j, i]) = (particular[j] + alpha * xh[j] as f64) as f32;
        }
    }
    Ok(m)
}

/// Solves `S·m = w` for one particular solution (free variables = 0) by
/// Gaussian elimination with partial pivoting. `S` is assumed full row
/// rank (guaranteed by [`PeripheryMatrix`] validation).
fn solve_particular(s: &Tensor, w: &[f64]) -> Vec<f64> {
    let (m_rows, n) = (s.shape()[0], s.shape()[1]);
    let mut a: Vec<f64> = s.data().iter().map(|&x| x as f64).collect();
    let mut b: Vec<f64> = w.to_vec();
    let mut pivot_cols = Vec::with_capacity(m_rows);
    let mut row = 0;
    for col in 0..n {
        if row >= m_rows {
            break;
        }
        let mut pivot = row;
        for r in row + 1..m_rows {
            if a[r * n + col].abs() > a[pivot * n + col].abs() {
                pivot = r;
            }
        }
        if a[pivot * n + col].abs() <= 1e-9 {
            continue;
        }
        if pivot != row {
            for c in 0..n {
                a.swap(row * n + c, pivot * n + c);
            }
            b.swap(row, pivot);
        }
        let pv = a[row * n + col];
        for r in row + 1..m_rows {
            let f = a[r * n + col] / pv;
            if f != 0.0 {
                for c in col..n {
                    a[r * n + c] -= f * a[row * n + c];
                }
                b[r] -= f * b[row];
            }
        }
        pivot_cols.push((row, col));
        row += 1;
    }
    // Back substitution, free variables left at 0.
    let mut x = vec![0.0f64; n];
    for &(r, c) in pivot_cols.iter().rev() {
        let mut acc = b[r];
        for cc in c + 1..n {
            acc -= a[r * n + cc] * x[cc];
        }
        x[c] = acc / a[r * n + c];
    }
    x
}

/// The largest `scale` such that `scale · W` remains representable under
/// `mapping` within `range` — used to fit freshly initialized weights onto
/// the crossbar without violating conductance bounds.
///
/// Returns `f32::INFINITY` for an all-zero `W`.
///
/// # Errors
///
/// Returns a shape error for non-2-D input.
pub fn max_representable_scale(
    w: &Tensor,
    mapping: Mapping,
    range: ConductanceRange,
) -> Result<f32, MappingError> {
    let (n_out, n_in) = expect_signed_matrix("max_representable_scale", w)?;
    let span = range.span();
    let limit = match mapping {
        Mapping::DoubleElement => w.abs_max(),
        Mapping::BiasColumn | Mapping::Perm => 2.0 * w.abs_max(),
        Mapping::Acm => {
            let mut worst = 0.0f32;
            for i in 0..n_in {
                let mut suffix = 0.0f32;
                let (mut lo, mut hi) = (0.0f32, 0.0f32);
                for j in (0..n_out).rev() {
                    suffix += w.at(&[j, i]);
                    lo = lo.min(suffix);
                    hi = hi.max(suffix);
                }
                worst = worst.max(hi - lo);
            }
            worst
        }
    };
    if limit == 0.0 {
        Ok(f32::INFINITY)
    } else {
        Ok(span / limit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xbar_tensor::rng::XorShiftRng;

    fn range() -> ConductanceRange {
        ConductanceRange::normalized()
    }

    fn small_random_w(rng: &mut XorShiftRng, no: usize, ni: usize, amp: f32) -> Tensor {
        Tensor::rand_uniform(&[no, ni], -amp, amp, rng)
    }

    #[test]
    fn de_round_trip_exact() {
        let mut rng = XorShiftRng::new(71);
        let w = small_random_w(&mut rng, 5, 7, 0.9);
        let m = decompose(&w, Mapping::DoubleElement, range()).unwrap();
        assert!(m.min() >= 0.0 && m.max() <= 1.0);
        assert!(compose(&m, Mapping::DoubleElement)
            .unwrap()
            .all_close(&w, 1e-5));
    }

    #[test]
    fn bc_round_trip_exact() {
        let mut rng = XorShiftRng::new(72);
        let w = small_random_w(&mut rng, 5, 7, 0.45);
        let m = decompose(&w, Mapping::BiasColumn, range()).unwrap();
        assert!(m.min() >= 0.0 && m.max() <= 1.0);
        assert!(compose(&m, Mapping::BiasColumn)
            .unwrap()
            .all_close(&w, 1e-5));
    }

    #[test]
    fn acm_round_trip_exact() {
        let mut rng = XorShiftRng::new(73);
        let w = small_random_w(&mut rng, 5, 7, 0.1);
        let m = decompose(&w, Mapping::Acm, range()).unwrap();
        assert!(m.min() >= 0.0 && m.max() <= 1.0);
        assert!(compose(&m, Mapping::Acm).unwrap().all_close(&w, 1e-5));
    }

    #[test]
    fn bc_bias_column_is_fixed_at_midpoint() {
        let mut rng = XorShiftRng::new(74);
        let w = small_random_w(&mut rng, 4, 3, 0.4);
        let m = decompose(&w, Mapping::BiasColumn, range()).unwrap();
        for i in 0..3 {
            assert_eq!(m.at(&[4, i]), 0.5);
        }
    }

    #[test]
    fn acm_touches_g_min_per_column() {
        // The shift construction places the smallest element of each column
        // exactly at g_min — maximal headroom.
        let mut rng = XorShiftRng::new(75);
        let w = small_random_w(&mut rng, 6, 4, 0.1);
        let m = decompose(&w, Mapping::Acm, range()).unwrap();
        for i in 0..4 {
            let col_min = (0..7).map(|j| m.at(&[j, i])).fold(f32::INFINITY, f32::min);
            assert!(col_min.abs() < 1e-6, "column {i} min {col_min}");
        }
    }

    #[test]
    fn bc_rejects_weights_beyond_half_span() {
        let w = Tensor::from_vec(vec![0.7], &[1, 1]).unwrap();
        let err = decompose(&w, Mapping::BiasColumn, range()).unwrap_err();
        assert!(matches!(
            err,
            MappingError::NotRepresentable { mapping: "BC", .. }
        ));
        // ...but DE and ACM accept the same weight.
        assert!(decompose(&w, Mapping::DoubleElement, range()).is_ok());
        assert!(decompose(&w, Mapping::Acm, range()).is_ok());
    }

    #[test]
    fn de_rejects_weights_beyond_span() {
        let w = Tensor::from_vec(vec![1.5], &[1, 1]).unwrap();
        assert!(decompose(&w, Mapping::DoubleElement, range()).is_err());
    }

    #[test]
    fn acm_rejects_unbalanced_columns() {
        // All-positive column: suffix spread = sum of weights = 1.5 > span.
        let w = Tensor::from_vec(vec![0.5, 0.5, 0.5], &[3, 1]).unwrap();
        let err = decompose(&w, Mapping::Acm, range()).unwrap_err();
        assert!(matches!(
            err,
            MappingError::NotRepresentable { mapping: "ACM", .. }
        ));
        // The same magnitudes with alternating signs fit easily — this is
        // the column-balance property the paper discusses in Sec. III-D.
        let w = Tensor::from_vec(vec![0.5, -0.5, 0.5], &[3, 1]).unwrap();
        assert!(decompose(&w, Mapping::Acm, range()).is_ok());
    }

    #[test]
    fn generic_solver_matches_all_standard_stencils() {
        let mut rng = XorShiftRng::new(76);
        let w = small_random_w(&mut rng, 4, 5, 0.1);
        for mapping in Mapping::ALL {
            let s = mapping.periphery(4);
            let m = decompose_with_periphery(&w, &s, range()).unwrap();
            assert!(m.min() >= -1e-6, "{mapping}: negative conductance");
            let back = linalg::matmul(s.matrix(), &m).unwrap();
            assert!(back.all_close(&w, 1e-4), "{mapping}: reconstruction failed");
        }
    }

    #[test]
    fn generic_solver_handles_custom_periphery() {
        // A hand-rolled valid periphery: reversed-ACM.
        let mut s = Tensor::zeros(&[3, 4]);
        for j in 0..3 {
            *s.at_mut(&[j, j]) = -1.0;
            *s.at_mut(&[j, j + 1]) = 1.0;
        }
        let p = PeripheryMatrix::try_new(s).unwrap();
        let mut rng = XorShiftRng::new(77);
        let w = small_random_w(&mut rng, 3, 4, 0.2);
        let m = decompose_with_periphery(&w, &p, range()).unwrap();
        assert!(m.min() >= -1e-6);
        let back = linalg::matmul(p.matrix(), &m).unwrap();
        assert!(back.all_close(&w, 1e-4));
    }

    #[test]
    fn compose_rejects_bad_row_counts() {
        let m = Tensor::zeros(&[5, 3]);
        assert!(compose(&m, Mapping::DoubleElement).is_err()); // odd rows
        let m1 = Tensor::zeros(&[1, 3]);
        assert!(compose(&m1, Mapping::Acm).is_err()); // < 2 rows
    }

    #[test]
    fn max_scale_makes_w_exactly_representable() {
        let mut rng = XorShiftRng::new(78);
        let w = small_random_w(&mut rng, 6, 6, 3.0);
        for mapping in Mapping::ALL {
            let s = max_representable_scale(&w, mapping, range()).unwrap();
            assert!(s.is_finite() && s > 0.0);
            let scaled = w.scale(s * 0.999); // margin for roundoff
            assert!(
                decompose(&scaled, mapping, range()).is_ok(),
                "{mapping} at scale {s}"
            );
            let too_big = w.scale(s * 1.05);
            assert!(
                decompose(&too_big, mapping, range()).is_err(),
                "{mapping} should reject 5% over the limit"
            );
        }
    }

    #[test]
    fn max_scale_of_zero_matrix_is_infinite() {
        let w = Tensor::zeros(&[3, 3]);
        for mapping in Mapping::ALL {
            assert_eq!(
                max_representable_scale(&w, mapping, range()).unwrap(),
                f32::INFINITY
            );
        }
    }

    #[test]
    fn acm_effective_range_beats_bc_at_resource_parity() {
        // A single weight of magnitude 0.9: BC (half-span limit 0.5) fails,
        // ACM (same element count) succeeds — the dynamic-range recovery
        // that drives the paper's Fig. 5 accuracy gap.
        let w = Tensor::from_vec(vec![0.9, -0.9], &[2, 1]).unwrap();
        assert!(decompose(&w, Mapping::BiasColumn, range()).is_err());
        assert!(decompose(&w, Mapping::Acm, range()).is_ok());
        assert_eq!(
            Mapping::Acm.num_elements(2, 1),
            Mapping::BiasColumn.num_elements(2, 1)
        );
    }

    #[test]
    fn non_unit_range_round_trips() {
        let r = ConductanceRange::new(0.2, 0.8);
        let mut rng = XorShiftRng::new(79);
        let w = small_random_w(&mut rng, 4, 4, 0.05);
        for mapping in Mapping::ALL {
            let m = decompose(&w, mapping, r).unwrap();
            assert!(m.min() >= 0.2 - 1e-6 && m.max() <= 0.8 + 1e-6, "{mapping}");
            assert!(compose(&m, mapping).is_ok());
        }
    }
}
