//! Integer (int8) crossbar readout: the ADC-exact quantized forward path.
//!
//! The fp32 forward path multiplies activations against the effective
//! conductance matrix in floating point. Real inference hardware does
//! neither: DACs drive the rows with a few bits of activation code, the
//! array accumulates charge, and a column ADC digitizes the sum. This
//! module models that pipeline as *exact integer arithmetic* end to end:
//!
//! 1. **Activations** quantize onto the unsigned affine grid
//!    (`x ≈ s_x · (c − zp)`, codes ≤ 127 — the
//!    [`xbar_tensor::qgemm`] operand contract).
//! 2. **Conductances** are read as their state indices on the device's
//!    `B`-bit grid, centered into i8 (`gsym = index − 2^(B−1)`, so
//!    `g = c₀ + step · gsym`). This requires `B ≤ 8`; conductances that
//!    sit off-grid (variation, drift, IR drop) snap to the nearest state
//!    — the read discretization a digital readout cannot avoid.
//! 3. Each tile computes `acc = Σ c · gsym` through the int8 GEMM
//!    kernels, removes the zero point digitally
//!    (`A = acc − zp · Σ gsym`, the analog zero-point compensation
//!    current), and digitizes `A` with the column [`AdcSpec`] — ranged
//!    from the worst-case tile-local magnitude, truncating and
//!    saturating exactly as the converter would.
//! 4. Digitized partial sums accumulate *as integers* across grid rows
//!    in fixed tile order; the only floating-point work is the final
//!    per-element reconstruction
//!    `y_dev = s_x · (c₀ · S + step · A)` (with `S = Σ (c − zp)` the
//!    input code sum), done serially on the calling thread.
//!
//! Because every parallel step is integer-exact and the commit order is
//! pinned by [`backend::ordered_stream`], the quantized forward is
//! **bitwise identical for any thread count** — stronger than the fp32
//! path's tolerance-free determinism, and checked by `ci.sh`.

use xbar_device::{AdcSpec, DeviceConfig, Quantizer};
use xbar_tensor::backend;
use xbar_tensor::qgemm::{self, QGEMM_MAX_K};
use xbar_tensor::quant::{QScheme, QuantizedTensor};
use xbar_tensor::{scratch, Tensor};

use crate::crossbar::CrossbarArray;
use crate::error::MappingError;
use crate::tiling::{TileGrid, TiledCrossbar};

/// Configuration of the integer readout: activation DAC width, optional
/// calibrated activation clip range, and the column ADC.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantReadout {
    /// Activation (DAC) bit width, `1..=7` — codes must respect the
    /// unsigned GEMM operand bound.
    pub act_bits: u8,
    /// Calibrated activation clip range `(lo, hi)`. `None` derives the
    /// range from the batch itself (min/max), which is convenient but
    /// makes the grid data-dependent; calibrated inference should pass
    /// the range observed during calibration.
    pub act_range: Option<(f32, f32)>,
    /// The column ADC model.
    pub adc: AdcSpec,
}

impl Default for QuantReadout {
    /// 7-bit activations (the widest exact configuration), data-derived
    /// range, effectively transparent ADC.
    fn default() -> Self {
        Self {
            act_bits: 7,
            act_range: None,
            adc: AdcSpec::lossless(),
        }
    }
}

impl QuantReadout {
    /// The readout with a `bits`-wide column ADC and defaults elsewhere.
    pub fn with_adc_bits(bits: u8) -> Self {
        Self {
            adc: AdcSpec::new(bits),
            ..Self::default()
        }
    }
}

/// Checks that `device` supports the integer readout: it must expose a
/// quantized state grid no wider than 8 bits (centered indices must fit
/// i8).
fn readout_quantizer(device: &DeviceConfig, op: &'static str) -> Result<Quantizer, MappingError> {
    let q = device
        .quantizer_opt()
        .ok_or_else(|| MappingError::Unsupported {
            op,
            reason: "device conductance is continuous; the integer readout needs a \
                     quantized state grid (set a bit width ≤ 8)"
                .into(),
        })?;
    if q.bits() > 8 {
        return Err(MappingError::Unsupported {
            op,
            reason: format!(
                "device bit width {} exceeds 8; centered state codes must fit i8",
                q.bits()
            ),
        });
    }
    Ok(q)
}

fn validate_input(x: &Tensor, n_in: usize, op: &'static str) -> Result<(), MappingError> {
    if x.ndim() != 2 || x.shape()[1] != n_in {
        return Err(MappingError::Shape(xbar_tensor::ShapeError::new(
            op,
            format!("expected (batch, {n_in}) input, got {:?}", x.shape()),
        )));
    }
    if !x.data().iter().all(|v| v.is_finite()) {
        return Err(MappingError::NonFiniteInput { op });
    }
    Ok(())
}

/// Raw dequantized column outputs `(batch × N_D)` of the integer readout
/// of `effective (N_D × N_I)` — what the ADCs delivered, before the
/// periphery combine. With `grid = None` the whole array is one tile;
/// otherwise each grid tile gets its own int8 GEMM and its own ADC
/// ranging, and digitized partial sums accumulate as integers across row
/// blocks in fixed tile order.
///
/// The caller guarantees `q.bits() ≤ 8` (see the module docs); shapes
/// must agree (`x` is `(batch, N_I)`).
///
/// # Panics
///
/// Panics if `mode.act_bits` is outside `1..=7`, shapes disagree, or
/// `N_I` exceeds [`QGEMM_MAX_K`].
pub fn quantized_raw_batch(
    effective: &Tensor,
    grid: Option<&TileGrid>,
    q: &Quantizer,
    mode: &QuantReadout,
    x: &Tensor,
) -> Tensor {
    let (batch, k) = (x.shape()[0], x.shape()[1]);
    let nd = effective.shape()[0];
    assert_eq!(effective.shape()[1], k, "conductance/input width mismatch");
    assert!(k <= QGEMM_MAX_K, "input width {k} exceeds exact-i32 bound");
    assert!(q.bits() <= 8, "device bits must be ≤ 8 for the i8 image");

    // Activation codes (unsigned affine, ≤ 127 by construction).
    let qx = QuantizedTensor::quantize_affine_with_range(x, mode.act_bits, mode.act_range);
    let QScheme::Affine {
        scale: sx,
        zero_point: zp,
        ..
    } = *qx.scheme()
    else {
        unreachable!("quantize_affine always returns an affine scheme")
    };
    let codes = qx.data();
    let max_code = ((1u32 << mode.act_bits) - 1) as i64;

    // Centered i8 image of the conductance grid: g = c0 + step · gsym.
    let half = 1i32 << (q.bits() - 1);
    let mut gsym = scratch::take_filled_i8(nd * k, 0);
    for (c, &g) in gsym.iter_mut().zip(effective.data()) {
        *c = (q.state_index(g) as i32 - half) as i8;
    }

    // Per-batch centered input code sums S[b] = Σ_i (c_i − zp): the term
    // the grid offset c0 multiplies. Row blocks partition the inputs, so
    // the total equals the sum of every tile's local S.
    let s_tot: Vec<i32> = (0..batch)
        .map(|b| codes[b * k..][..k].iter().map(|&c| c as i32 - zp).sum())
        .collect();

    // One work item per tile; the degenerate monolithic grid is a single
    // full-array tile.
    let tiles: Vec<(usize, usize, usize, usize)> = match grid {
        Some(g) => {
            debug_assert_eq!(g.nd_total(), nd);
            let mut v = Vec::with_capacity(g.num_tiles());
            for &(r0, rl) in g.row_blocks() {
                for cg in g.col_groups() {
                    v.push((r0, rl, cg.dev_start, cg.dev_len));
                }
            }
            v
        }
        None => vec![(0, k, 0, nd)],
    };

    // Digitized partial column sums, accumulated in i32: per-tile integer
    // GEMMs fan across the pool, the ordered stream commits them in
    // submission order, and every step is exact — bitwise identical at
    // any thread count.
    let mut a_tot = scratch::take_filled_i32(batch * nd, 0);
    let adc = mode.adc;
    let gsym_ref: &[i8] = &gsym;
    backend::ordered_stream(
        tiles,
        |_, (r0, rl, d0, dl)| {
            let mut a_blk = scratch::take_filled_i8(batch * rl, 0);
            for b in 0..batch {
                a_blk[b * rl..][..rl].copy_from_slice(&codes[b * k + r0..][..rl]);
            }
            let mut b_blk = scratch::take_filled_i8(dl * rl, 0);
            for j in 0..dl {
                b_blk[j * rl..][..rl].copy_from_slice(&gsym_ref[(d0 + j) * k + r0..][..rl]);
            }
            let mut acc = scratch::take_filled_i32(batch * dl, 0);
            // SAFETY: affine codes are non-negative (≤ 127), so the i8
            // buffer reinterprets to u8 value-preservingly.
            let a_u8 =
                unsafe { std::slice::from_raw_parts(a_blk.as_ptr().cast::<u8>(), a_blk.len()) };
            qgemm::qgemm_nt(a_u8, &b_blk, &mut acc, batch, rl, dl);
            // Zero-point correction term, then the tile's ADC: ranged
            // from the worst-case tile-local centered sum
            // rl · max|c − zp| · max|gsym|.
            let colsum: Vec<i32> = (0..dl)
                .map(|j| b_blk[j * rl..][..rl].iter().map(|&c| c as i32).sum())
                .collect();
            let shift = adc.shift_for(rl as i64 * max_code * half as i64);
            for b in 0..batch {
                for j in 0..dl {
                    let a = acc[b * dl + j] - zp * colsum[j];
                    acc[b * dl + j] = adc.convert(a, shift);
                }
            }
            scratch::give_i8(a_blk);
            scratch::give_i8(b_blk);
            (d0, dl, acc)
        },
        |_, (d0, dl, acc)| {
            for b in 0..batch {
                let dst = &mut a_tot[b * nd + d0..][..dl];
                for (d, &p) in dst.iter_mut().zip(&acc[b * dl..][..dl]) {
                    *d += p;
                }
            }
            scratch::give_i32(acc);
        },
    );
    scratch::give_i8(gsym);

    // Serial f32 reconstruction: y_dev = s_x · (c0 · S + step · A).
    let step = q.step();
    let c0 = q.state_value(0) + half as f32 * step;
    let mut raw = Tensor::zeros(&[batch, nd]);
    let rd = raw.data_mut();
    for b in 0..batch {
        let base = sx * c0 * s_tot[b] as f32;
        for j in 0..nd {
            rd[b * nd + j] = base + sx * step * a_tot[b * nd + j] as f32;
        }
    }
    scratch::give_i32(a_tot);
    raw
}

impl CrossbarArray {
    /// Batched signed MVM through the integer readout:
    /// `X (batch × N_I) → Y (batch × N_O)`, with activations quantized to
    /// `mode.act_bits`, conductances read on the device state grid, and
    /// each column sum digitized by `mode.adc`. Bitwise identical for any
    /// thread count.
    ///
    /// # Errors
    ///
    /// [`MappingError::Unsupported`] if the device has no quantizer or
    /// more than 8 bits; shape / non-finite-input errors as for
    /// [`CrossbarArray::forward`].
    pub fn forward_quantized(
        &self,
        x: &Tensor,
        mode: &QuantReadout,
    ) -> Result<Tensor, MappingError> {
        let q = readout_quantizer(self.device(), "forward_quantized")?;
        validate_input(x, self.n_in(), "forward_quantized")?;
        let raw = quantized_raw_batch(self.effective_conductances(), None, &q, mode, x);
        self.periphery().combine(&raw)
    }
}

impl TiledCrossbar {
    /// Batched signed MVM through the integer readout, tile by tile:
    /// each grid tile runs its own int8 GEMM and ADC (ranged for the
    /// tile's row depth), digitized partial sums accumulate as integers
    /// across row blocks, and the per-group periphery combines the
    /// result. Bitwise identical for any thread count.
    ///
    /// # Errors
    ///
    /// [`MappingError::Unsupported`] if the device has no quantizer or
    /// more than 8 bits; shape / non-finite-input errors as for
    /// [`TiledCrossbar::forward`].
    pub fn forward_quantized(
        &self,
        x: &Tensor,
        mode: &QuantReadout,
    ) -> Result<Tensor, MappingError> {
        let q = readout_quantizer(self.device(), "forward_quantized")?;
        validate_input(x, self.n_in(), "forward_quantized")?;
        let raw = quantized_raw_batch(
            self.effective_conductances(),
            Some(self.grid()),
            &q,
            mode,
            x,
        );
        self.periphery().combine(&raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Mapping;
    use xbar_device::TileShape;
    use xbar_tensor::rng::XorShiftRng;

    fn rand_tensor(rng: &mut XorShiftRng, shape: &[usize], lo: f32, hi: f32) -> Tensor {
        let mut t = Tensor::zeros(shape);
        for v in t.data_mut() {
            *v = lo + (hi - lo) * rng.next_f32();
        }
        t
    }

    fn ideal_device(bits: u8) -> DeviceConfig {
        DeviceConfig::builder().bits(bits).build()
    }

    #[test]
    fn monolithic_readout_matches_f32_on_the_quantized_input() {
        let mut rng = XorShiftRng::new(42);
        let w = rand_tensor(&mut rng, &[11, 37], -0.05, 0.05);
        let xbar =
            CrossbarArray::program_signed(&w, Mapping::Acm, ideal_device(6), &mut rng).unwrap();
        let x = rand_tensor(&mut rng, &[5, 37], -1.0, 1.0);
        let mode = QuantReadout::default();
        let got = xbar.forward_quantized(&x, &mode).unwrap();
        // The same product through the fp32 path, fed the dequantized
        // activations the integer path actually sees: identical math,
        // integer-exact vs f32 accumulation.
        let x_dq = QuantizedTensor::quantize_affine(&x, mode.act_bits).dequantize();
        let want = xbar.forward(&x_dq).unwrap();
        for (&g, &e) in got.data().iter().zip(want.data()) {
            assert!((g - e).abs() <= 1e-4 + 1e-3 * e.abs(), "{g} vs {e}");
        }
    }

    #[test]
    fn tiled_readout_matches_f32_on_the_quantized_input() {
        let mut rng = XorShiftRng::new(7);
        let w = rand_tensor(&mut rng, &[20, 50], -0.04, 0.04);
        let xbar = TiledCrossbar::program_signed(
            &w,
            Mapping::Acm,
            ideal_device(6),
            TileShape::new(16, 16),
            &mut rng,
        )
        .unwrap();
        assert!(xbar.num_tiles() > 1);
        let x = rand_tensor(&mut rng, &[4, 50], -1.0, 1.0);
        let mode = QuantReadout::default();
        let got = xbar.forward_quantized(&x, &mode).unwrap();
        let x_dq = QuantizedTensor::quantize_affine(&x, mode.act_bits).dequantize();
        let want = xbar.forward(&x_dq).unwrap();
        for (&g, &e) in got.data().iter().zip(want.data()) {
            assert!((g - e).abs() <= 1e-4 + 1e-3 * e.abs(), "{g} vs {e}");
        }
    }

    #[test]
    fn readout_is_bitwise_identical_serial_vs_parallel() {
        let mut rng = XorShiftRng::new(99);
        let w = rand_tensor(&mut rng, &[24, 60], -0.3, 0.3);
        let xbar = TiledCrossbar::program_signed(
            &w,
            Mapping::BiasColumn,
            ideal_device(5),
            TileShape::new(16, 16),
            &mut rng,
        )
        .unwrap();
        let x = rand_tensor(&mut rng, &[6, 60], -1.0, 1.0);
        let mode = QuantReadout::with_adc_bits(8);
        let parallel = xbar.forward_quantized(&x, &mode).unwrap();
        backend::force_serial(true);
        let serial = xbar.forward_quantized(&x, &mode).unwrap();
        backend::force_serial(false);
        assert_eq!(serial.data(), parallel.data());
    }

    #[test]
    fn narrow_adc_truncates_the_readout() {
        let mut rng = XorShiftRng::new(5);
        let w = rand_tensor(&mut rng, &[9, 64], -0.05, 0.05);
        let xbar =
            CrossbarArray::program_signed(&w, Mapping::Acm, ideal_device(6), &mut rng).unwrap();
        let x = rand_tensor(&mut rng, &[3, 64], -1.0, 1.0);
        let wide = xbar
            .forward_quantized(&x, &QuantReadout::default())
            .unwrap();
        let narrow = xbar
            .forward_quantized(&x, &QuantReadout::with_adc_bits(4))
            .unwrap();
        assert_ne!(wide.data(), narrow.data());
        // More resolution brings the readout closer to the transparent
        // converter.
        let mid = xbar
            .forward_quantized(&x, &QuantReadout::with_adc_bits(10))
            .unwrap();
        let err = |y: &Tensor| -> f32 {
            y.data()
                .iter()
                .zip(wide.data())
                .map(|(&a, &b)| (a - b).abs())
                .sum()
        };
        assert!(err(&mid) < err(&narrow));
    }

    #[test]
    fn unquantized_or_too_wide_devices_are_rejected() {
        let mut rng = XorShiftRng::new(1);
        let w = rand_tensor(&mut rng, &[4, 8], -0.05, 0.05);
        let x = rand_tensor(&mut rng, &[2, 8], -1.0, 1.0);
        let full_precision = CrossbarArray::program_signed(
            &w,
            Mapping::Acm,
            DeviceConfig::builder().build(),
            &mut rng,
        )
        .unwrap();
        let err = full_precision
            .forward_quantized(&x, &QuantReadout::default())
            .unwrap_err();
        assert!(matches!(err, MappingError::Unsupported { .. }), "{err}");
        let wide =
            CrossbarArray::program_signed(&w, Mapping::Acm, ideal_device(9), &mut rng).unwrap();
        let err = wide
            .forward_quantized(&x, &QuantReadout::default())
            .unwrap_err();
        assert!(err.to_string().contains("exceeds 8"), "{err}");
    }

    #[test]
    fn input_validation_mirrors_the_f32_path() {
        let mut rng = XorShiftRng::new(2);
        let w = rand_tensor(&mut rng, &[4, 8], -0.05, 0.05);
        let xbar =
            CrossbarArray::program_signed(&w, Mapping::Acm, ideal_device(4), &mut rng).unwrap();
        let bad_shape = Tensor::zeros(&[2, 9]);
        assert!(matches!(
            xbar.forward_quantized(&bad_shape, &QuantReadout::default()),
            Err(MappingError::Shape(_))
        ));
        let mut bad_value = Tensor::zeros(&[2, 8]);
        bad_value.data_mut()[3] = f32::NAN;
        assert!(matches!(
            xbar.forward_quantized(&bad_value, &QuantReadout::default()),
            Err(MappingError::NonFiniteInput { .. })
        ));
    }

    #[test]
    fn calibrated_activation_range_pins_the_grid() {
        let mut rng = XorShiftRng::new(3);
        let w = rand_tensor(&mut rng, &[6, 16], -0.05, 0.05);
        let xbar =
            CrossbarArray::program_signed(&w, Mapping::Acm, ideal_device(6), &mut rng).unwrap();
        let x = rand_tensor(&mut rng, &[3, 16], -0.5, 0.5);
        let mode = QuantReadout {
            act_range: Some((-1.0, 1.0)),
            ..QuantReadout::default()
        };
        let y = xbar.forward_quantized(&x, &mode).unwrap();
        // A batch-dependent subrange input produces the same grid when
        // the calibrated range is pinned: scaling the batch down must not
        // change the codes' meaning, only which codes fire.
        let x_half = {
            let mut t = x.clone();
            t.data_mut().iter_mut().for_each(|v| *v *= 0.5);
            t
        };
        let y_half = xbar.forward_quantized(&x_half, &mode).unwrap();
        assert_ne!(y.data(), y_half.data());
        assert!(y.data().iter().all(|v| v.is_finite()));
        assert!(y_half.data().iter().all(|v| v.is_finite()));
    }
}
