use std::fmt;

use xbar_device::ConductanceRange;

use crate::PeripheryMatrix;

/// The signed-to-nonnegative mapping strategies compared in the paper.
///
/// All three factor a signed `N_O × N_I` weight matrix `W` into
/// `W = S · M` with `M ≥ 0` stored on the crossbar (paper Fig. 1 and
/// Fig. 2); they differ only in the shape and stencil of the periphery
/// matrix `S`:
///
/// | Mapping | `N_D` (crossbar columns) | weight range (G_min = 0) |
/// |---|---|---|
/// | [`Mapping::DoubleElement`] | `2·N_O` | `[−G_max, G_max]` |
/// | [`Mapping::BiasColumn`]    | `N_O + 1` | `[−G_max/2, G_max/2]` |
/// | [`Mapping::Acm`]           | `N_O + 1` | `[−G_max, G_max]`, column-coupled |
/// | [`Mapping::Perm`]          | `N_O + 1` | `[−G_max/2, G_max/2]`, rows permuted |
///
/// ACM achieves DE's dynamic range at BC's hardware cost, at the price of a
/// nearest-neighbour coupling between columns — which Sec. III-E shows acts
/// as a mild regularizer.
///
/// Perm extends the comparison beyond the paper: it is BC with an
/// X-CHANGR-style physical reordering of the device columns (rows of
/// `M`) that places large-magnitude weight rows nearest the drivers,
/// mitigating line-resistance IR drop; the inverse permutation is folded
/// into the periphery (`S_p = S · Pᵀ`), so the factorization stays exact.
///
/// # Example
///
/// ```
/// use xbar_core::Mapping;
///
/// assert_eq!(Mapping::Acm.num_device_columns(10), 11);
/// assert_eq!(Mapping::DoubleElement.num_device_columns(10), 20);
/// assert_eq!(Mapping::BiasColumn.num_device_columns(10), 11);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mapping {
    /// Differential encoding: two crossbar columns per weight column, the
    /// output being their difference (paper Fig. 1a; refs \[5\], \[6\]).
    DoubleElement,
    /// A single fixed reference column at mid-range conductance subtracted
    /// from every output (paper Fig. 1b; refs \[7\], \[8\]).
    BiasColumn,
    /// The paper's proposal: each column is the reference for its immediate
    /// neighbour — outputs are differences of adjacent columns with
    /// alternating signs (paper Fig. 2).
    Acm,
    /// Permutation remapping (beyond the paper; after X-CHANGR): the BC
    /// stencil with device columns physically reordered so that
    /// large-magnitude weight rows sit nearest the drivers, where
    /// line-resistance attenuation is smallest. The inverse permutation
    /// is folded into the periphery, so the mapping stays exact under
    /// zero parasitics.
    Perm,
}

impl Mapping {
    /// All mappings, in the order the paper's tables list them, with the
    /// beyond-paper permutation mapping appended last.
    pub const ALL: [Mapping; 4] = [
        Mapping::BiasColumn,
        Mapping::DoubleElement,
        Mapping::Acm,
        Mapping::Perm,
    ];

    /// Number of crossbar columns (`N_D`) needed to represent `n_out`
    /// signed weight columns.
    pub fn num_device_columns(&self, n_out: usize) -> usize {
        match self {
            Self::DoubleElement => 2 * n_out,
            Self::BiasColumn | Self::Acm | Self::Perm => n_out + 1,
        }
    }

    /// Number of synapse elements for an `n_out × n_in` weight matrix.
    pub fn num_elements(&self, n_out: usize, n_in: usize) -> usize {
        self.num_device_columns(n_out) * n_in
    }

    /// Per-weight operational overhead: digitized additions/subtractions
    /// at the periphery. One subtraction per weight for every mapping
    /// (paper Sec. II) — this is why the comparison is purely about element
    /// count and dynamic range.
    pub fn subtractions_per_weight(&self) -> usize {
        1
    }

    /// The signed weight range a single (pair of) element(s) can represent
    /// under this mapping, for a device range `[g_min, g_max]`
    /// (paper Sec. II and Sec. III-D).
    ///
    /// For ACM this is the *upper bound* `[−span, span]`: the actual
    /// representable set is coupled across the column (neighbouring columns
    /// must balance), which is exactly the regularization the paper
    /// analyses.
    pub fn weight_range(&self, range: ConductanceRange) -> (f32, f32) {
        let span = range.span();
        match self {
            Self::DoubleElement | Self::Acm => (-span, span),
            Self::BiasColumn | Self::Perm => (-span / 2.0, span / 2.0),
        }
    }

    /// Builds this mapping's periphery matrix for `n_out` outputs.
    ///
    /// # Panics
    ///
    /// Panics if `n_out == 0`.
    pub fn periphery(&self, n_out: usize) -> PeripheryMatrix {
        match self {
            Self::DoubleElement => PeripheryMatrix::double_element(n_out),
            // Perm's *base* stencil is BC's; a concrete array folds its
            // row permutation in via `PeripheryMatrix::permuted`.
            Self::BiasColumn | Self::Perm => PeripheryMatrix::bias_column(n_out),
            Self::Acm => PeripheryMatrix::acm(n_out),
        }
    }

    /// Short uppercase tag used in experiment output ("DE", "BC", "ACM").
    pub fn tag(&self) -> &'static str {
        match self {
            Self::DoubleElement => "DE",
            Self::BiasColumn => "BC",
            Self::Acm => "ACM",
            Self::Perm => "PERM",
        }
    }
}

impl fmt::Display for Mapping {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

/// Error parsing a [`Mapping`] from a string tag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseMappingError(String);

impl fmt::Display for ParseMappingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown mapping '{}': expected one of DE, BC, ACM, PERM",
            self.0
        )
    }
}

impl std::error::Error for ParseMappingError {}

impl std::str::FromStr for Mapping {
    type Err = ParseMappingError;

    /// Parses the [`Mapping::tag`] form, case-insensitively — the
    /// round-trip inverse of [`Mapping`]'s `Display`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_uppercase().as_str() {
            "DE" => Ok(Self::DoubleElement),
            "BC" => Ok(Self::BiasColumn),
            "ACM" => Ok(Self::Acm),
            "PERM" => Ok(Self::Perm),
            _ => Err(ParseMappingError(s.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn column_counts_match_paper() {
        // Paper Sec. III-D: DE has N_D = 2 N_O; BC and ACM have the minimum
        // N_D = N_O + 1.
        for no in [1usize, 4, 100] {
            assert_eq!(Mapping::DoubleElement.num_device_columns(no), 2 * no);
            assert_eq!(Mapping::BiasColumn.num_device_columns(no), no + 1);
            assert_eq!(Mapping::Acm.num_device_columns(no), no + 1);
            assert_eq!(Mapping::Perm.num_device_columns(no), no + 1);
        }
    }

    #[test]
    fn element_counts_scale_with_inputs() {
        assert_eq!(Mapping::DoubleElement.num_elements(10, 5), 100);
        assert_eq!(Mapping::Acm.num_elements(10, 5), 55);
        assert_eq!(Mapping::BiasColumn.num_elements(10, 5), 55);
    }

    #[test]
    fn de_uses_roughly_double_the_elements_of_acm() {
        // The 2.3x area advantage in Table I stems from this ratio.
        let de = Mapping::DoubleElement.num_elements(100, 400) as f32;
        let acm = Mapping::Acm.num_elements(100, 400) as f32;
        assert!((de / acm - 2.0).abs() < 0.05);
    }

    #[test]
    fn operational_overhead_identical() {
        for m in Mapping::ALL {
            assert_eq!(m.subtractions_per_weight(), 1);
        }
    }

    #[test]
    fn weight_ranges_match_paper_sec2() {
        let r = ConductanceRange::normalized();
        assert_eq!(Mapping::DoubleElement.weight_range(r), (-1.0, 1.0));
        assert_eq!(Mapping::BiasColumn.weight_range(r), (-0.5, 0.5));
        assert_eq!(Mapping::Acm.weight_range(r), (-1.0, 1.0));
        // Perm is a physically reordered BC: same dynamic range.
        assert_eq!(Mapping::Perm.weight_range(r), (-0.5, 0.5));
    }

    #[test]
    fn display_tags() {
        assert_eq!(Mapping::DoubleElement.to_string(), "DE");
        assert_eq!(Mapping::BiasColumn.to_string(), "BC");
        assert_eq!(Mapping::Acm.to_string(), "ACM");
        assert_eq!(Mapping::Perm.to_string(), "PERM");
    }

    #[test]
    fn from_str_round_trips_display() {
        for m in Mapping::ALL {
            assert_eq!(m.to_string().parse::<Mapping>().unwrap(), m);
            assert_eq!(m.tag().parse::<Mapping>().unwrap(), m);
            // Case-insensitive: experiment CLIs pass lowercase tags.
            assert_eq!(m.tag().to_ascii_lowercase().parse::<Mapping>().unwrap(), m);
        }
        let err = "adjacent".parse::<Mapping>().unwrap_err();
        assert!(err.to_string().contains("adjacent"));
    }
}
