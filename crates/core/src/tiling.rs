//! Tiled crossbar execution for layers larger than one physical array.
//!
//! Physical crossbar arrays are bounded (128×128 is a typical fabricated
//! size; the paper's VGG-9 layers are far larger), so a real accelerator
//! splits a layer across a grid of tiles: input rows are partitioned
//! across tile *rows* (partial sums added digitally after the ADC) and
//! output columns across tile *column-groups*, each of which carries its
//! own local periphery stencil — and, for BC/ACM, its own reference
//! column, since a reference must sit in the same physical array as the
//! columns it serves. The layer-level periphery is therefore
//! block-diagonal ([`PeripheryMatrix::block_diagonal`]), and the per-group
//! `N_D = outputs + 1` accounting replicates one reference column per
//! group.
//!
//! Tiling interacts with the mapping: the column count being split is the
//! mapping's `N_D`, so DE fits `cols/2` outputs per tile against BC/ACM's
//! `cols − 1` — the physical origin of Table I's area gap.
//! [`TileGrid`] exposes the grid so system-level models can count arrays,
//! and [`TiledCrossbar`] mirrors the full [`crate::CrossbarArray`] API
//! (programming reports, fault maps, fault-aware remapping, Monte-Carlo
//! resampling) with every operation applied tile-locally.

use xbar_device::{DeviceConfig, FaultMap, ProgrammingReport, TileShape};
use xbar_tensor::rng::XorShiftRng;
use xbar_tensor::{backend, linalg, Tensor};

use crate::crossbar::permute_rows;
use crate::{
    decompose, magnitude_permutation, remap_for_faults, Mapping, MappingError, PeripheryMatrix,
    RemapReport,
};

/// One column-group of a [`TileGrid`]: a contiguous run of logical
/// outputs whose device columns (including any local reference column)
/// fit one physical tile width.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ColGroup {
    /// First logical output in the group.
    pub out_start: usize,
    /// Logical outputs in the group.
    pub out_len: usize,
    /// First device column in the stacked conductance matrix.
    pub dev_start: usize,
    /// Device columns the group occupies (`mapping.num_device_columns(out_len)`).
    pub dev_len: usize,
}

/// The tile decomposition of one mapped layer: how `n_in` inputs and
/// `n_out` outputs split across a grid of `TileShape`-bounded physical
/// arrays.
///
/// With `tile = None` the grid is the degenerate 1×1 monolithic case —
/// one row block, one column group, the classic `N_D = N_O + 1`
/// accounting — which preserves the untiled behaviour exactly.
///
/// # Example
///
/// ```
/// use xbar_core::{Mapping, TileGrid};
/// use xbar_device::TileShape;
///
/// # fn main() -> Result<(), xbar_core::MappingError> {
/// // 20 outputs under ACM with 16-wide tiles: 15 outputs (+1 reference)
/// // per group -> 2 groups; 50 inputs over 16-row tiles -> 4 row blocks.
/// let grid = TileGrid::new(20, 50, Mapping::Acm, Some(TileShape::new(16, 16)))?;
/// assert_eq!(grid.grid(), (4, 2));
/// assert_eq!(grid.num_tiles(), 8);
/// assert_eq!(grid.nd_total(), 22); // 20 outputs + one reference per group
/// assert_eq!(grid.replicated_reference_columns(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TileGrid {
    mapping: Mapping,
    n_out: usize,
    n_in: usize,
    tile: Option<TileShape>,
    /// `(start, len)` input runs, one per grid row.
    row_blocks: Vec<(usize, usize)>,
    col_groups: Vec<ColGroup>,
}

impl TileGrid {
    /// Computes the grid for an `n_out × n_in` layer under `mapping`,
    /// bounded by `tile` (or monolithic when `None`).
    ///
    /// # Errors
    ///
    /// Returns a shape error if either dimension is zero or the tile is
    /// too narrow to hold even one output under `mapping` (every mapping
    /// needs at least two device columns per tile).
    pub fn new(
        n_out: usize,
        n_in: usize,
        mapping: Mapping,
        tile: Option<TileShape>,
    ) -> Result<Self, MappingError> {
        if n_out == 0 || n_in == 0 {
            return Err(MappingError::Shape(xbar_tensor::ShapeError::new(
                "tile_grid",
                format!("layer dimensions must be positive, got {n_out} x {n_in}"),
            )));
        }
        let (row_blocks, col_groups) = match tile {
            None => (
                vec![(0, n_in)],
                vec![ColGroup {
                    out_start: 0,
                    out_len: n_out,
                    dev_start: 0,
                    dev_len: mapping.num_device_columns(n_out),
                }],
            ),
            Some(t) => {
                let cap = Self::outputs_per_tile(mapping, t)?;
                let mut col_groups = Vec::with_capacity(n_out.div_ceil(cap));
                let (mut out, mut dev) = (0, 0);
                while out < n_out {
                    let out_len = cap.min(n_out - out);
                    let dev_len = mapping.num_device_columns(out_len);
                    col_groups.push(ColGroup {
                        out_start: out,
                        out_len,
                        dev_start: dev,
                        dev_len,
                    });
                    out += out_len;
                    dev += dev_len;
                }
                let mut row_blocks = Vec::with_capacity(n_in.div_ceil(t.rows));
                let mut row = 0;
                while row < n_in {
                    let len = t.rows.min(n_in - row);
                    row_blocks.push((row, len));
                    row += len;
                }
                (row_blocks, col_groups)
            }
        };
        Ok(Self {
            mapping,
            n_out,
            n_in,
            tile,
            row_blocks,
            col_groups,
        })
    }

    /// Logical outputs one `tile`-wide physical array can carry under
    /// `mapping`: `cols − 1` for BC/ACM (one local reference column),
    /// `cols / 2` for DE (an element pair per output).
    ///
    /// # Errors
    ///
    /// Returns a shape error if the tile is narrower than two columns.
    pub fn outputs_per_tile(mapping: Mapping, tile: TileShape) -> Result<usize, MappingError> {
        let cap = match mapping {
            Mapping::DoubleElement => tile.cols / 2,
            Mapping::BiasColumn | Mapping::Acm | Mapping::Perm => tile.cols.saturating_sub(1),
        };
        if cap == 0 {
            return Err(MappingError::Shape(xbar_tensor::ShapeError::new(
                "tile_grid",
                format!(
                    "{mapping} needs tiles at least 2 device columns wide, got {}",
                    tile.cols
                ),
            )));
        }
        Ok(cap)
    }

    /// The mapping the grid was laid out for.
    pub fn mapping(&self) -> Mapping {
        self.mapping
    }

    /// Logical outputs.
    pub fn n_out(&self) -> usize {
        self.n_out
    }

    /// Logical inputs.
    pub fn n_in(&self) -> usize {
        self.n_in
    }

    /// The physical tile bound (`None` for the monolithic grid).
    pub fn tile_shape(&self) -> Option<TileShape> {
        self.tile
    }

    /// Grid dimensions `(row blocks, column groups)`.
    pub fn grid(&self) -> (usize, usize) {
        (self.row_blocks.len(), self.col_groups.len())
    }

    /// Total physical arrays.
    pub fn num_tiles(&self) -> usize {
        self.row_blocks.len() * self.col_groups.len()
    }

    /// Whether this is the degenerate 1×1 (monolithic) grid.
    pub fn is_monolithic(&self) -> bool {
        self.num_tiles() == 1
    }

    /// `(start, len)` input runs, one per grid row.
    pub fn row_blocks(&self) -> &[(usize, usize)] {
        &self.row_blocks
    }

    /// The output column-groups, one per grid column.
    pub fn col_groups(&self) -> &[ColGroup] {
        &self.col_groups
    }

    /// Total device columns across all groups (`ND`): per group
    /// `outputs + 1` for BC/ACM and `2·outputs` for DE.
    pub fn nd_total(&self) -> usize {
        self.col_groups
            .last()
            .map(|g| g.dev_start + g.dev_len)
            .unwrap_or(0)
    }

    /// Reference columns added *because of tiling*: the device columns
    /// beyond what the monolithic mapping would need. Zero for DE (no
    /// shared reference to replicate) and for any monolithic grid; one
    /// per extra column-group for BC/ACM.
    pub fn replicated_reference_columns(&self) -> usize {
        self.nd_total() - self.mapping.num_device_columns(self.n_out)
    }

    /// The layer-level periphery: block-diagonal over the per-group
    /// stencils (a single plain stencil for the monolithic grid).
    pub fn periphery(&self) -> PeripheryMatrix {
        let blocks: Vec<PeripheryMatrix> = self
            .col_groups
            .iter()
            .map(|g| self.mapping.periphery(g.out_len))
            .collect();
        PeripheryMatrix::block_diagonal(&blocks)
    }

    /// Decomposes a signed `W (n_out × n_in)` into the stacked per-group
    /// non-negative conductance matrix `M (nd_total × n_in)`: each
    /// column-group's row-slice of `W` is decomposed independently under
    /// the group's local stencil, which is exact for all three mappings.
    ///
    /// # Errors
    ///
    /// Returns a shape error if `w` is not `(n_out, n_in)`, or
    /// [`MappingError::NotRepresentable`] if any group's weights exceed
    /// the device range.
    pub fn decompose(
        &self,
        w: &Tensor,
        range: xbar_device::ConductanceRange,
    ) -> Result<Tensor, MappingError> {
        if w.ndim() != 2 || w.shape() != [self.n_out, self.n_in] {
            return Err(MappingError::Shape(xbar_tensor::ShapeError::new(
                "tile_grid decompose",
                format!(
                    "expected ({}, {}) weights, got {:?}",
                    self.n_out,
                    self.n_in,
                    w.shape()
                ),
            )));
        }
        if self.col_groups.len() == 1 {
            return decompose(w, self.mapping, range);
        }
        let mut m = Tensor::zeros(&[self.nd_total(), self.n_in]);
        for g in &self.col_groups {
            let w_group = rows_slice(w, g.out_start, g.out_len);
            let m_group = decompose(&w_group, self.mapping, range)?;
            write_rows(&mut m, g.dev_start, &m_group);
        }
        Ok(m)
    }

    /// Composes the parasitic read non-idealities of `device` onto a
    /// stacked `(nd_total × n_in)` conductance tensor in place: drift
    /// first (cell state decays where it sits; cells stuck in `faults`
    /// are physically frozen and do not drift), then line-resistance
    /// attenuation applied *tile-locally* — each physical array has its
    /// own wire runs, so the IR drop restarts at every tile boundary.
    /// Drift coordinates are the global stacked `(row, col)`, making the
    /// decay a pure function of the cell's position in the layer
    /// regardless of the tile grid. Leaves the tensor bitwise untouched
    /// when both models are off.
    pub fn apply_parasitics(
        &self,
        conductances: &mut Tensor,
        device: &xbar_device::DeviceConfig,
        faults: &xbar_device::FaultMap,
    ) {
        let drift = device.drift();
        let line = device.line_resistance();
        if drift.is_active() {
            let range = device.range();
            let cols = conductances.shape()[1];
            for (idx, g) in conductances.data_mut().iter_mut().enumerate() {
                let (r, c) = (idx / cols, idx % cols);
                if faults.get(r, c).is_none() {
                    *g = drift.decayed(*g, r, c, range);
                }
            }
        }
        if !line.is_none() {
            for &(r0, rl) in self.row_blocks() {
                for g in self.col_groups() {
                    let mut tile_block = block(conductances, g.dev_start, g.dev_len, r0, rl);
                    line.apply_tile(&mut tile_block);
                    write_block(conductances, g.dev_start, r0, &tile_block);
                }
            }
        }
    }
}

/// Copies rows `[start, start + len)` of a 2-D tensor into a new tensor.
pub(crate) fn rows_slice(t: &Tensor, start: usize, len: usize) -> Tensor {
    let cols = t.shape()[1];
    Tensor::from_vec(
        t.data()[start * cols..(start + len) * cols].to_vec(),
        &[len, cols],
    )
    .expect("slice length matches shape")
}

/// Copies columns `[start, start + len)` of a 2-D tensor into a new tensor.
pub(crate) fn cols_slice(t: &Tensor, start: usize, len: usize) -> Tensor {
    let (rows, cols) = (t.shape()[0], t.shape()[1]);
    let mut out = Tensor::zeros(&[rows, len]);
    for r in 0..rows {
        let src = &t.data()[r * cols + start..r * cols + start + len];
        out.data_mut()[r * len..(r + 1) * len].copy_from_slice(src);
    }
    out
}

/// Extracts the `(r0..r0+rl, c0..c0+cl)` block of a 2-D tensor.
pub(crate) fn block(t: &Tensor, r0: usize, rl: usize, c0: usize, cl: usize) -> Tensor {
    let cols = t.shape()[1];
    let mut out = Tensor::zeros(&[rl, cl]);
    for r in 0..rl {
        let src = &t.data()[(r0 + r) * cols + c0..(r0 + r) * cols + c0 + cl];
        out.data_mut()[r * cl..(r + 1) * cl].copy_from_slice(src);
    }
    out
}

/// Writes `src` into `dst` starting at row `r0` (full-width rows).
pub(crate) fn write_rows(dst: &mut Tensor, r0: usize, src: &Tensor) {
    let cols = dst.shape()[1];
    debug_assert_eq!(cols, src.shape()[1]);
    let n = src.len();
    dst.data_mut()[r0 * cols..r0 * cols + n].copy_from_slice(src.data());
}

/// Writes `src` into the `(r0.., c0..)` block of `dst`.
pub(crate) fn write_block(dst: &mut Tensor, r0: usize, c0: usize, src: &Tensor) {
    let cols = dst.shape()[1];
    let (srl, scl) = (src.shape()[0], src.shape()[1]);
    for r in 0..srl {
        dst.data_mut()[(r0 + r) * cols + c0..(r0 + r) * cols + c0 + scl]
            .copy_from_slice(&src.data()[r * scl..(r + 1) * scl]);
    }
}

/// Composes the parasitic read non-idealities onto the stacked programmed
/// conductances: drift first (cell state decays in place; stuck cells are
/// physically frozen and do not drift), then line-resistance attenuation
/// applied *tile-locally* — each physical array has its own wire runs, so
/// the IR drop restarts at every tile boundary. Drift coordinates are the
/// global stacked `(row, col)`, making the decay a pure function of the
/// cell's position in the layer regardless of the tile grid. Returns a
/// plain copy when both models are off.
fn effective_tiled(
    programmed: &Tensor,
    device: &DeviceConfig,
    faults: &FaultMap,
    grid: &TileGrid,
) -> Tensor {
    let mut eff = programmed.clone();
    grid.apply_parasitics(&mut eff, device, faults);
    eff
}

/// A signed MVM engine built from a grid of physical crossbar tiles.
///
/// Semantically equivalent to [`crate::CrossbarArray`] and exposing the
/// same API surface (batched `forward`, fault maps, programming reports,
/// fault-aware remapping, Monte-Carlo resampling), but respecting a
/// physical tile size: each tile holds one sub-block of the stacked
/// conductance matrix and is dealt its own stuck-at defects, programmed
/// through its own write-verify pass, and remapped against its own local
/// periphery stencil — as separate chips would be. Batched MVMs fan the
/// per-tile partial products across the compute pool and accumulate them
/// in fixed tile order, so results are bitwise identical to serial
/// execution.
///
/// # Example
///
/// ```
/// use xbar_core::{Mapping, TiledCrossbar};
/// use xbar_device::{DeviceConfig, TileShape};
/// use xbar_tensor::{rng::XorShiftRng, Tensor};
///
/// # fn main() -> Result<(), xbar_core::MappingError> {
/// let mut rng = XorShiftRng::new(5);
/// let w = Tensor::rand_uniform(&[20, 50], -0.01, 0.01, &mut rng);
/// let tiled = TiledCrossbar::program_signed(
///     &w, Mapping::Acm, DeviceConfig::ideal(), TileShape::new(16, 16), &mut rng)?;
/// // ceil(50/16) row blocks x ceil(20/15) column groups.
/// assert_eq!(tiled.tile_grid(), (4, 2));
/// let x = Tensor::rand_uniform(&[50], -1.0, 1.0, &mut rng);
/// let y = tiled.mvm_signed(&x)?;
/// assert_eq!(y.len(), 20);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TiledCrossbar {
    grid: TileGrid,
    periphery: PeripheryMatrix,
    device: DeviceConfig,
    tile: TileShape,
    /// Ideal (post-quantization, pre-variation, post-remap) conductance
    /// targets, stacked `(nd_total, n_in)`.
    targets: Tensor,
    /// Realised conductances after per-tile programming.
    programmed: Tensor,
    /// What the read path sees: `programmed` composed with conductance
    /// drift (global stacked coordinates) and per-tile line-resistance
    /// attenuation. Equal to `programmed` when both parasitics are off.
    effective: Tensor,
    /// The stuck-at defects all tiles were dealt, in the stacked frame.
    faults: FaultMap,
    /// Merged outcome of the most recent per-tile programming passes.
    report: ProgrammingReport,
}

impl TiledCrossbar {
    /// Decomposes `W (N_O × N_I)` under `mapping` and programs the
    /// conductances across a grid of `tile`-sized arrays through
    /// `device`, tile by tile.
    ///
    /// # Errors
    ///
    /// Returns an error if the decomposition fails or the tile is too
    /// narrow for `mapping`.
    pub fn program_signed(
        w: &Tensor,
        mapping: Mapping,
        device: DeviceConfig,
        tile: TileShape,
        rng: &mut XorShiftRng,
    ) -> Result<Self, MappingError> {
        let grid = Self::grid_for(w, mapping, tile)?;
        let m = grid.decompose(w, device.range())?;
        Self::program_inner(&m, grid, device, tile, false, rng).map(|(xbar, _)| xbar)
    }

    /// Like [`TiledCrossbar::program_signed`], but absorbs each tile's
    /// sampled stuck-at faults into its local periphery's null-space
    /// slack before programming (see [`remap_for_faults`]); the returned
    /// [`RemapReport`] merges the per-tile reports.
    ///
    /// # Errors
    ///
    /// Returns an error if the decomposition fails.
    pub fn program_signed_remapped(
        w: &Tensor,
        mapping: Mapping,
        device: DeviceConfig,
        tile: TileShape,
        rng: &mut XorShiftRng,
    ) -> Result<(Self, RemapReport), MappingError> {
        let grid = Self::grid_for(w, mapping, tile)?;
        let m = grid.decompose(w, device.range())?;
        Self::program_inner(&m, grid, device, tile, true, rng)
            .map(|(xbar, report)| (xbar, report.expect("remap requested")))
    }

    /// Programs an explicit stacked non-negative conductance matrix
    /// `M (nd_total × N_I)` — the path used after training, where the
    /// trainer owns `M` directly. The logical output count is inferred
    /// from the row count, `mapping` and `tile`.
    ///
    /// # Errors
    ///
    /// Returns an error if `M` is negative anywhere, exceeds the device
    /// range, or its row count is inconsistent with `mapping` and `tile`.
    pub fn program_conductances(
        m: &Tensor,
        mapping: Mapping,
        device: DeviceConfig,
        tile: TileShape,
        rng: &mut XorShiftRng,
    ) -> Result<Self, MappingError> {
        let grid = Self::grid_for_conductances(m, mapping, tile)?;
        Self::program_inner(m, grid, device, tile, false, rng).map(|(xbar, _)| xbar)
    }

    /// Like [`TiledCrossbar::program_conductances`], but fault-aware:
    /// each tile's frozen cells are compensated by shifting its healthy
    /// cells along the local periphery's null direction.
    ///
    /// # Errors
    ///
    /// Same validation as [`TiledCrossbar::program_conductances`].
    pub fn program_conductances_remapped(
        m: &Tensor,
        mapping: Mapping,
        device: DeviceConfig,
        tile: TileShape,
        rng: &mut XorShiftRng,
    ) -> Result<(Self, RemapReport), MappingError> {
        let grid = Self::grid_for_conductances(m, mapping, tile)?;
        Self::program_inner(m, grid, device, tile, true, rng)
            .map(|(xbar, report)| (xbar, report.expect("remap requested")))
    }

    fn grid_for(w: &Tensor, mapping: Mapping, tile: TileShape) -> Result<TileGrid, MappingError> {
        if w.ndim() != 2 {
            return Err(MappingError::Shape(xbar_tensor::ShapeError::new(
                "tiled program_signed",
                format!("expected 2-D weights, got {:?}", w.shape()),
            )));
        }
        TileGrid::new(w.shape()[0], w.shape()[1], mapping, Some(tile))
    }

    fn grid_for_conductances(
        m: &Tensor,
        mapping: Mapping,
        tile: TileShape,
    ) -> Result<TileGrid, MappingError> {
        if m.ndim() != 2 {
            return Err(MappingError::Shape(xbar_tensor::ShapeError::new(
                "tiled program_conductances",
                format!("expected 2-D conductance matrix, got {:?}", m.shape()),
            )));
        }
        let nd = m.shape()[0];
        let cap = TileGrid::outputs_per_tile(mapping, tile)?;
        let n_out = match mapping {
            Mapping::DoubleElement => {
                if !nd.is_multiple_of(2) || nd == 0 {
                    return Err(MappingError::Shape(xbar_tensor::ShapeError::new(
                        "tiled program_conductances",
                        format!("DE needs a positive even device-column count, got {nd}"),
                    )));
                }
                nd / 2
            }
            Mapping::BiasColumn | Mapping::Acm | Mapping::Perm => {
                // nd = n_out + ceil(n_out / cap) is strictly increasing in
                // n_out, so the group count k with nd = n_out + k is
                // unique when it exists.
                (1..nd)
                    .map(|k| nd - k)
                    .find(|&n_out| n_out.div_ceil(cap) == nd - n_out)
                    .ok_or_else(|| {
                        MappingError::Shape(xbar_tensor::ShapeError::new(
                            "tiled program_conductances",
                            format!(
                                "{nd} device columns are inconsistent with {mapping} on {tile} tiles"
                            ),
                        ))
                    })?
            }
        };
        TileGrid::new(n_out, m.shape()[1], mapping, Some(tile))
    }

    fn program_inner(
        m: &Tensor,
        grid: TileGrid,
        device: DeviceConfig,
        tile: TileShape,
        remap: bool,
        rng: &mut XorShiftRng,
    ) -> Result<(Self, Option<RemapReport>), MappingError> {
        if !m.data().iter().all(|v| v.is_finite()) {
            return Err(MappingError::NonFiniteInput {
                op: "tiled program_conductances",
            });
        }
        let range = device.range();
        if m.min() < range.g_min() - 1e-6 || m.max() > range.g_max() + 1e-6 {
            return Err(MappingError::NotRepresentable {
                mapping: grid.mapping().tag(),
                detail: format!(
                    "conductances [{}, {}] outside device range [{}, {}]",
                    m.min(),
                    m.max(),
                    range.g_min(),
                    range.g_max()
                ),
            });
        }
        let (nd, n_in) = (grid.nd_total(), grid.n_in());
        debug_assert_eq!(m.shape(), [nd, n_in]);
        // Snap to the device's programmable states (as one array would);
        // every per-tile stage below starts from the snapped targets.
        let mut snapped = m.map(|g| device.snap(g));
        let mut targets = Tensor::zeros(&[nd, n_in]);
        let mut programmed = Tensor::zeros(&[nd, n_in]);
        let mut faults = FaultMap::pristine(nd, n_in);
        let mut report = ProgrammingReport::default();
        let mut remap_report: Option<RemapReport> = None;
        // Per-group local stencils, reused across the grid rows.
        let mut peripheries: Vec<PeripheryMatrix> = grid
            .col_groups()
            .iter()
            .map(|g| grid.mapping().periphery(g.out_len))
            .collect();
        // Perm: each group derives its physical row order from the
        // *pre-snap* conductances over the full input width (so every row
        // block of the group agrees on one order), folds the inverse into
        // the group's local stencil, and rearranges the group's snapped
        // rows into physical order. The stable descending sort keeps the
        // group's all-mid reference row in the last position.
        if grid.mapping() == Mapping::Perm {
            let mid = range.midpoint();
            for (g, periphery) in grid.col_groups().iter().zip(peripheries.iter_mut()) {
                let m_group = rows_slice(m, g.dev_start, g.dev_len);
                let perm = magnitude_permutation(&m_group, mid);
                *periphery = periphery.permuted(&perm);
                let snapped_group = rows_slice(&snapped, g.dev_start, g.dev_len);
                write_rows(
                    &mut snapped,
                    g.dev_start,
                    &permute_rows(&snapped_group, &perm),
                );
            }
        }
        // Deterministic tile order: row blocks outer, column groups inner.
        // Each tile is an independent physical array: it draws its own
        // defect pattern and runs its own write-verify pass.
        for &(r0, rl) in grid.row_blocks() {
            for (g, periphery) in grid.col_groups().iter().zip(&peripheries) {
                let mut tile_targets = block(&snapped, g.dev_start, g.dev_len, r0, rl);
                let tile_faults = device.faults().sample_map(g.dev_len, rl, rng);
                if remap {
                    let (shifted, tile_remap) =
                        remap_for_faults(&tile_targets, periphery, &tile_faults, range)?;
                    tile_targets = shifted;
                    remap_report = Some(match remap_report {
                        Some(acc) => acc.merge(&tile_remap),
                        None => tile_remap,
                    });
                }
                let (tile_programmed, tile_report) = device.programming().program_tensor(
                    &tile_targets,
                    &device.variation(),
                    range,
                    Some(&tile_faults),
                    rng,
                );
                write_block(&mut targets, g.dev_start, r0, &tile_targets);
                write_block(&mut programmed, g.dev_start, r0, &tile_programmed);
                for (row, col, kind) in tile_faults.iter_stuck() {
                    faults.set(g.dev_start + row, r0 + col, kind);
                }
                report.merge(tile_report, g.dev_start, r0);
            }
        }
        // Block-diagonal over the (possibly permuted) per-group stencils;
        // identical to `grid.periphery()` for the non-permuted mappings.
        let periphery = PeripheryMatrix::block_diagonal(&peripheries);
        let effective = effective_tiled(&programmed, &device, &faults, &grid);
        Ok((
            Self {
                grid,
                periphery,
                device,
                tile,
                targets,
                programmed,
                effective,
                faults,
                report,
            },
            remap_report,
        ))
    }

    /// The mapping in use.
    pub fn mapping(&self) -> Mapping {
        self.grid.mapping()
    }

    /// The device model.
    pub fn device(&self) -> &DeviceConfig {
        &self.device
    }

    /// The block-diagonal layer-level periphery.
    pub fn periphery(&self) -> &PeripheryMatrix {
        &self.periphery
    }

    /// The physical tile shape.
    pub fn tile_shape(&self) -> TileShape {
        self.tile
    }

    /// The tile layout.
    pub fn grid(&self) -> &TileGrid {
        &self.grid
    }

    /// Grid dimensions `(row blocks, column groups)`.
    pub fn tile_grid(&self) -> (usize, usize) {
        self.grid.grid()
    }

    /// Total number of physical arrays.
    pub fn num_tiles(&self) -> usize {
        self.grid.num_tiles()
    }

    /// Number of logical inputs.
    pub fn n_in(&self) -> usize {
        self.grid.n_in()
    }

    /// Number of signed outputs.
    pub fn n_out(&self) -> usize {
        self.grid.n_out()
    }

    /// Total device columns across all column groups.
    pub fn n_dev(&self) -> usize {
        self.grid.nd_total()
    }

    /// Total synapse elements across all tiles (occupied cells).
    pub fn num_elements(&self) -> usize {
        self.programmed.len()
    }

    /// The realised conductances (stacked `(n_dev, n_in)`).
    pub fn conductances(&self) -> &Tensor {
        &self.programmed
    }

    /// The conductances the read path sees: [`TiledCrossbar::conductances`]
    /// composed with drift and per-tile line-resistance attenuation. Equal
    /// to the programmed matrix when both parasitic models are off.
    pub fn effective_conductances(&self) -> &Tensor {
        &self.effective
    }

    /// The ideal conductance targets (after quantization and any remap,
    /// before variation).
    pub fn targets(&self) -> &Tensor {
        &self.targets
    }

    /// The effective signed weight matrix `S · G` realised by the grid,
    /// including the parasitic read non-idealities.
    pub fn effective_weights(&self) -> Tensor {
        linalg::matmul(self.periphery.matrix(), &self.effective)
            .expect("periphery and conductances are dimension-checked at construction")
    }

    /// The stuck-at defects all tiles were dealt, in the stacked
    /// conductance-matrix frame.
    pub fn fault_map(&self) -> &FaultMap {
        &self.faults
    }

    /// Merged outcome of the per-tile programming passes.
    pub fn programming_report(&self) -> &ProgrammingReport {
        &self.report
    }

    /// Returns a typed error if any tile's last programming pass left a
    /// cell out of tolerance.
    ///
    /// # Errors
    ///
    /// [`MappingError::ProgrammingFailed`] with the unconverged-cell count
    /// and worst residual.
    pub fn require_converged(&self) -> Result<(), MappingError> {
        if self.report.all_converged() {
            Ok(())
        } else {
            Err(MappingError::ProgrammingFailed {
                unconverged: self.report.num_unconverged(),
                worst_residual: self.report.worst_residual(),
            })
        }
    }

    /// Re-programs every tile around the stored targets, modelling a
    /// fresh multi-chip module written with the same weights. Each tile's
    /// defect pattern is part of its chip, so it is kept; variation (and
    /// write-verify retries) are re-drawn tile by tile in grid order.
    pub fn resample_variation(&mut self, rng: &mut XorShiftRng) {
        let mut programmed = Tensor::zeros(self.targets.shape());
        let mut report = ProgrammingReport::default();
        for &(r0, rl) in self.grid.row_blocks() {
            for g in self.grid.col_groups() {
                let tile_targets = block(&self.targets, g.dev_start, g.dev_len, r0, rl);
                let mut tile_faults = FaultMap::pristine(g.dev_len, rl);
                for (row, col, kind) in self.faults.iter_stuck() {
                    if (g.dev_start..g.dev_start + g.dev_len).contains(&row)
                        && (r0..r0 + rl).contains(&col)
                    {
                        tile_faults.set(row - g.dev_start, col - r0, kind);
                    }
                }
                let (tile_programmed, tile_report) = self.device.programming().program_tensor(
                    &tile_targets,
                    &self.device.variation(),
                    self.device.range(),
                    Some(&tile_faults),
                    rng,
                );
                write_block(&mut programmed, g.dev_start, r0, &tile_programmed);
                report.merge(tile_report, g.dev_start, r0);
            }
        }
        self.programmed = programmed;
        self.effective = effective_tiled(&self.programmed, &self.device, &self.faults, &self.grid);
        self.report = report;
    }

    /// Raw accumulated column outputs for a batch `X (batch × N_I)`:
    /// per-tile partial products fanned across the compute pool, then
    /// summed digitally across grid rows in fixed tile order (bitwise
    /// identical to serial execution).
    fn raw_batch(&self, x: &Tensor) -> Tensor {
        let batch = x.shape()[0];
        let nd = self.grid.nd_total();
        let mut items = Vec::with_capacity(self.grid.num_tiles());
        for &(r0, rl) in self.grid.row_blocks() {
            for g in self.grid.col_groups() {
                items.push(((r0, rl), *g));
            }
        }
        // One task per tile; partial products are committed (accumulated)
        // in submission order on the calling thread via the ordered
        // stream, so the reduction over row blocks is bitwise identical
        // at any thread count and under any steal interleaving.
        let mut raw = Tensor::zeros(&[batch, nd]);
        let raw_data = raw.data_mut();
        backend::ordered_stream(
            items,
            |_, ((r0, rl), g)| {
                let x_block = cols_slice(x, r0, rl);
                let m_block = block(&self.effective, g.dev_start, g.dev_len, r0, rl);
                let partial = linalg::matmul_nt(&x_block, &m_block)
                    .expect("tile dimensions agree by construction");
                (g, partial)
            },
            |_, (g, partial)| {
                for b in 0..batch {
                    let dst = &mut raw_data[b * nd + g.dev_start..b * nd + g.dev_start + g.dev_len];
                    for (d, &p) in dst.iter_mut().zip(&partial.data()[b * g.dev_len..]) {
                        *d += p;
                    }
                }
            },
        );
        raw
    }

    /// Raw analog column outputs for a 1-D input of length `n_in()` —
    /// what the ADCs digitize across all tiles, before the periphery
    /// combine, accumulated digitally across grid rows.
    ///
    /// # Errors
    ///
    /// Returns a shape error on input-length mismatch, or
    /// [`MappingError::NonFiniteInput`] if `x` contains NaN/Inf.
    pub fn mvm_raw(&self, x: &Tensor) -> Result<Tensor, MappingError> {
        if x.ndim() != 1 || x.len() != self.grid.n_in() {
            return Err(MappingError::Shape(xbar_tensor::ShapeError::new(
                "tiled mvm",
                format!(
                    "expected 1-D input of length {}, got {:?}",
                    self.grid.n_in(),
                    x.shape()
                ),
            )));
        }
        if !x.data().iter().all(|v| v.is_finite()) {
            return Err(MappingError::NonFiniteInput { op: "mvm_raw" });
        }
        let x2 = Tensor::from_vec(x.data().to_vec(), &[1, x.len()]).expect("reshape to batch 1");
        let raw = self.raw_batch(&x2);
        Ok(
            Tensor::from_vec(raw.data().to_vec(), &[self.grid.nd_total()])
                .expect("flatten batch 1"),
        )
    }

    /// Signed MVM through the tile grid: each tile produces partial
    /// column currents; partial sums accumulate digitally across tile
    /// rows, then the per-group periphery combine produces the signed
    /// outputs.
    ///
    /// # Errors
    ///
    /// Returns a shape error if `x` is not 1-D of length `n_in()`.
    pub fn mvm_signed(&self, x: &Tensor) -> Result<Tensor, MappingError> {
        let raw = self.mvm_raw(x)?;
        linalg::matvec(self.periphery.matrix(), &raw).map_err(MappingError::from)
    }

    /// Batched signed MVM: `X (batch × N_I) → Y (batch × N_O)`, with the
    /// per-tile partial products fanned across the compute pool.
    ///
    /// # Errors
    ///
    /// Returns a shape error if `x` is not `(batch, n_in())`, or
    /// [`MappingError::NonFiniteInput`] if `x` contains NaN/Inf.
    pub fn forward(&self, x: &Tensor) -> Result<Tensor, MappingError> {
        if x.ndim() != 2 || x.shape()[1] != self.grid.n_in() {
            return Err(MappingError::Shape(xbar_tensor::ShapeError::new(
                "tiled forward",
                format!(
                    "expected (batch, {}) input, got {:?}",
                    self.grid.n_in(),
                    x.shape()
                ),
            )));
        }
        if !x.data().iter().all(|v| v.is_finite()) {
            return Err(MappingError::NonFiniteInput { op: "forward" });
        }
        let raw = self.raw_batch(x);
        self.periphery.combine(&raw)
    }

    /// Monte-Carlo fan-out: evaluates `trials` freshly re-programmed
    /// copies of this grid on the same batch `X (batch × N_I)`. Trial `t`
    /// behaves exactly like
    /// `{ let mut c = self.clone(); c.resample_variation(&mut rng.fork(t)); c.forward(x) }`
    /// run serially in trial order — per-trial RNG streams are forked
    /// from `rng` up front, so the returned outputs are bitwise identical
    /// for any thread count.
    ///
    /// # Errors
    ///
    /// Returns the first trial's error on input-shape or
    /// non-finite-input failures (all trials share `x`).
    pub fn variation_trials(
        &self,
        x: &Tensor,
        trials: usize,
        rng: &mut XorShiftRng,
    ) -> Result<Vec<Tensor>, MappingError> {
        let trial_rngs: Vec<XorShiftRng> = (0..trials).map(|t| rng.fork(t as u64)).collect();
        backend::parallel_map(trial_rngs, |_, mut trial_rng| {
            let mut chip = self.clone();
            chip.resample_variation(&mut trial_rng);
            chip.forward(x)
        })
        .into_iter()
        .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CrossbarArray;

    fn rng() -> XorShiftRng {
        XorShiftRng::new(171)
    }

    #[test]
    fn tiled_matches_monolithic_ideal() {
        let mut r = rng();
        let w = Tensor::rand_uniform(&[12, 30], -0.02, 0.02, &mut r);
        let x = Tensor::rand_uniform(&[30], -1.0, 1.0, &mut r);
        for mapping in Mapping::ALL {
            let mono =
                CrossbarArray::program_signed(&w, mapping, DeviceConfig::ideal(), &mut r).unwrap();
            let tiled = TiledCrossbar::program_signed(
                &w,
                mapping,
                DeviceConfig::ideal(),
                TileShape::new(8, 8),
                &mut r,
            )
            .unwrap();
            let ym = mono.mvm_signed(&x).unwrap();
            let yt = tiled.mvm_signed(&x).unwrap();
            assert!(yt.all_close(&ym, 1e-4), "{mapping}: tiled != monolithic");
        }
    }

    #[test]
    fn tiled_forward_matches_monolithic_on_ragged_grid() {
        // 13 outputs x 21 inputs on 8x8 tiles: ragged in both directions
        // for every mapping (ACM/BC groups of 7, DE groups of 4).
        let mut r = rng();
        let w = Tensor::rand_uniform(&[13, 21], -0.02, 0.02, &mut r);
        let x = Tensor::rand_uniform(&[5, 21], -1.0, 1.0, &mut r);
        for mapping in Mapping::ALL {
            let mono =
                CrossbarArray::program_signed(&w, mapping, DeviceConfig::ideal(), &mut r).unwrap();
            let tiled = TiledCrossbar::program_signed(
                &w,
                mapping,
                DeviceConfig::ideal(),
                TileShape::new(8, 8),
                &mut r,
            )
            .unwrap();
            let ym = mono.forward(&x).unwrap();
            let yt = tiled.forward(&x).unwrap();
            assert!(yt.all_close(&ym, 1e-4), "{mapping}: tiled != monolithic");
            assert_eq!(tiled.effective_weights().shape(), w.shape());
            assert!(tiled.effective_weights().all_close(&w, 1e-4), "{mapping}");
        }
    }

    #[test]
    fn parallel_forward_is_bitwise_identical_to_serial() {
        let mut r = rng();
        let w = Tensor::rand_uniform(&[40, 70], -0.01, 0.01, &mut r);
        let x = Tensor::rand_uniform(&[9, 70], -1.0, 1.0, &mut r);
        let tiled = TiledCrossbar::program_signed(
            &w,
            Mapping::Acm,
            DeviceConfig::ideal(),
            TileShape::new(16, 16),
            &mut r,
        )
        .unwrap();
        backend::force_serial(true);
        let serial = tiled.forward(&x).unwrap();
        backend::force_serial(false);
        let parallel = tiled.forward(&x).unwrap();
        assert_eq!(serial.data(), parallel.data(), "per-tile fan-out raced");
    }

    #[test]
    fn grid_dimensions_are_ceilings() {
        let mut r = rng();
        let w = Tensor::rand_uniform(&[20, 50], -0.01, 0.01, &mut r);
        // ACM on 16x16 tiles: 15 outputs per group -> ceil(20/15) = 2
        // groups; ceil(50/16) = 4 row blocks.
        let t = TiledCrossbar::program_signed(
            &w,
            Mapping::Acm,
            DeviceConfig::ideal(),
            TileShape::new(16, 16),
            &mut r,
        )
        .unwrap();
        assert_eq!(t.tile_grid(), (4, 2));
        assert_eq!(t.num_tiles(), 8);
        assert_eq!(t.n_in(), 50);
        assert_eq!(t.n_out(), 20);
        // Per-group ND accounting: 20 outputs + one reference per group.
        assert_eq!(t.n_dev(), 22);
        assert_eq!(t.grid().replicated_reference_columns(), 1);
    }

    #[test]
    fn de_needs_more_tiles_than_acm() {
        let mut r = rng();
        let w = Tensor::rand_uniform(&[60, 100], -0.002, 0.002, &mut r);
        let tiles = |mapping| {
            TiledCrossbar::program_signed(
                &w,
                mapping,
                DeviceConfig::ideal(),
                TileShape::standard(),
                &mut XorShiftRng::new(1),
            )
            .unwrap()
            .num_tiles()
        };
        assert!(tiles(Mapping::DoubleElement) >= tiles(Mapping::Acm));
        let w2 = Tensor::rand_uniform(&[100, 100], -0.002, 0.002, &mut r);
        let tiles2 = |mapping| {
            TiledCrossbar::program_signed(
                &w2,
                mapping,
                DeviceConfig::ideal(),
                TileShape::standard(),
                &mut XorShiftRng::new(2),
            )
            .unwrap()
            .num_tiles()
        };
        // DE fits 64 outputs per 128-wide tile -> 2 groups; ACM fits 127 -> 1.
        assert_eq!(tiles2(Mapping::DoubleElement), 2 * tiles2(Mapping::Acm));
    }

    #[test]
    fn quantization_and_variation_apply_per_tile() {
        let mut r = rng();
        let w = Tensor::rand_uniform(&[8, 20], -0.02, 0.02, &mut r);
        let dev = DeviceConfig::quantized_linear(4).with_variation_sigma(0.05);
        let tiled = TiledCrossbar::program_signed(
            &w,
            Mapping::DoubleElement,
            dev,
            TileShape::new(8, 8),
            &mut r,
        )
        .unwrap();
        let x = Tensor::ones(&[20]);
        // Must still approximate the ideal result. Per-output noise std is
        // ~sigma*sqrt(2*n_in) ~ 0.32, so 1.0 is a ~3-sigma bound on the
        // worst of 8 outputs.
        let ideal = linalg::matvec(&w, &x).unwrap();
        let y = tiled.mvm_signed(&x).unwrap();
        assert!(y.sub(&ideal).unwrap().abs_max() < 1.0);
    }

    #[test]
    fn per_tile_fault_maps_and_programming_reports_merge() {
        use xbar_device::FaultModel;
        let mut r = rng();
        let w = Tensor::rand_uniform(&[12, 24], -0.02, 0.02, &mut r);
        let dev = DeviceConfig::ideal().with_faults(FaultModel::uniform(0.05));
        let tiled =
            TiledCrossbar::program_signed(&w, Mapping::Acm, dev, TileShape::new(8, 8), &mut r)
                .unwrap();
        let stuck = tiled.fault_map().num_stuck();
        assert!(stuck > 0, "5% rate across the grid should hit");
        assert_eq!(tiled.programming_report().num_stuck(), stuck);
        assert_eq!(
            tiled.programming_report().total_cells(),
            tiled.num_elements()
        );
        assert!(tiled.require_converged().is_ok());
        // Frozen cells hold their forced value in the stacked frame.
        let range = dev.range();
        for (row, col, kind) in tiled.fault_map().iter_stuck() {
            assert_eq!(
                tiled.conductances().at(&[row, col]),
                kind.forced_value(range)
            );
        }
    }

    #[test]
    fn tile_local_remap_recovers_weight_accuracy() {
        use xbar_device::FaultModel;
        let mut r = rng();
        let w = Tensor::rand_uniform(&[12, 24], -0.02, 0.02, &mut r);
        let dev = DeviceConfig::ideal().with_faults(FaultModel::uniform(0.02));
        let naive = TiledCrossbar::program_signed(
            &w,
            Mapping::Acm,
            dev,
            TileShape::new(8, 8),
            &mut XorShiftRng::new(5),
        )
        .unwrap();
        let (remapped, report) = TiledCrossbar::program_signed_remapped(
            &w,
            Mapping::Acm,
            dev,
            TileShape::new(8, 8),
            &mut XorShiftRng::new(5),
        )
        .unwrap();
        // Same seed -> same per-tile defect deal.
        assert_eq!(naive.fault_map(), remapped.fault_map());
        assert!(naive.fault_map().num_stuck() > 0);
        let err = |xb: &TiledCrossbar| xb.effective_weights().sub(&w).unwrap().norm_sq().sqrt();
        assert!(
            err(&remapped) < err(&naive) * 0.5,
            "remapped error {} vs naive {}",
            err(&remapped),
            err(&naive)
        );
        assert!(report.residual_after() <= report.residual_before());
        assert_eq!(report.stuck_cells(), naive.fault_map().num_stuck());
    }

    #[test]
    fn remap_never_crosses_tile_boundaries() {
        use xbar_device::FaultModel;
        // A fault in one tile must leave every fault-free tile region's
        // targets untouched: the compensation is tile-local. Compare a
        // faulty remapped grid against the same grid with no fault model.
        let mut r = rng();
        let w = Tensor::rand_uniform(&[12, 8], -0.02, 0.02, &mut r);
        let clean = TiledCrossbar::program_signed(
            &w,
            Mapping::Acm,
            DeviceConfig::ideal(),
            TileShape::new(8, 8),
            &mut XorShiftRng::new(7),
        )
        .unwrap();
        let dev = DeviceConfig::ideal().with_faults(FaultModel::uniform(0.04));
        let (remapped, _) = TiledCrossbar::program_signed_remapped(
            &w,
            Mapping::Acm,
            dev,
            TileShape::new(8, 8),
            &mut XorShiftRng::new(7),
        )
        .unwrap();
        assert!(remapped.fault_map().num_stuck() > 0);
        // Any group with no faults anywhere in a given input column must
        // hold exactly the clean targets in that column.
        for g in remapped.grid().col_groups() {
            for col in 0..remapped.n_in() {
                let group_has_fault = remapped.fault_map().iter_stuck().any(|(row, c, _)| {
                    c == col && (g.dev_start..g.dev_start + g.dev_len).contains(&row)
                });
                if group_has_fault {
                    continue;
                }
                for row in g.dev_start..g.dev_start + g.dev_len {
                    assert_eq!(
                        remapped.targets().at(&[row, col]),
                        clean.targets().at(&[row, col]),
                        "remap leaked into fault-free tile region ({row}, {col})"
                    );
                }
            }
        }
    }

    #[test]
    fn resample_keeps_fault_pattern_but_redraws_noise() {
        use xbar_device::FaultModel;
        let mut r = rng();
        let w = Tensor::rand_uniform(&[10, 20], -0.02, 0.02, &mut r);
        let dev = DeviceConfig::ideal()
            .with_faults(FaultModel::uniform(0.05))
            .with_variation_sigma(0.05);
        let mut tiled =
            TiledCrossbar::program_signed(&w, Mapping::Acm, dev, TileShape::new(8, 8), &mut r)
                .unwrap();
        let map_before = tiled.fault_map().clone();
        let prog_before = tiled.conductances().clone();
        let targets_before = tiled.targets().clone();
        tiled.resample_variation(&mut r);
        assert_eq!(
            tiled.fault_map(),
            &map_before,
            "defects belong to the chips"
        );
        assert!(tiled.targets().all_close(&targets_before, 0.0));
        assert!(!tiled.conductances().all_close(&prog_before, 1e-7));
        for (row, col, kind) in tiled.fault_map().iter_stuck() {
            assert_eq!(
                tiled.conductances().at(&[row, col]),
                kind.forced_value(dev.range())
            );
        }
    }

    #[test]
    fn variation_trials_match_serial_resample_loop() {
        let mut r = rng();
        let w = Tensor::rand_uniform(&[10, 20], -0.02, 0.02, &mut r);
        let dev = DeviceConfig::quantized_linear(4).with_variation_sigma(0.05);
        let tiled =
            TiledCrossbar::program_signed(&w, Mapping::Acm, dev, TileShape::new(8, 8), &mut r)
                .unwrap();
        let x = Tensor::rand_uniform(&[3, 20], -1.0, 1.0, &mut r);
        let mut rng_a = XorShiftRng::new(99);
        let got = tiled.variation_trials(&x, 4, &mut rng_a).unwrap();
        assert_eq!(got.len(), 4);
        let mut rng_b = XorShiftRng::new(99);
        let forks: Vec<_> = (0..4u64).map(|t| rng_b.fork(t)).collect();
        for (t, mut fr) in forks.into_iter().enumerate() {
            let mut chip = tiled.clone();
            chip.resample_variation(&mut fr);
            let want = chip.forward(&x).unwrap();
            assert_eq!(got[t].data(), want.data(), "trial {t}");
        }
        assert!(!got[0].all_close(&got[1], 1e-7));
        assert_eq!(rng_a.next_u64(), rng_b.next_u64());
    }

    #[test]
    fn program_conductances_infers_output_count() {
        let mut r = rng();
        let w = Tensor::rand_uniform(&[13, 10], -0.02, 0.02, &mut r);
        for mapping in Mapping::ALL {
            let grid = TileGrid::new(13, 10, mapping, Some(TileShape::new(8, 8))).unwrap();
            let m = grid.decompose(&w, DeviceConfig::ideal().range()).unwrap();
            let tiled = TiledCrossbar::program_conductances(
                &m,
                mapping,
                DeviceConfig::ideal(),
                TileShape::new(8, 8),
                &mut r,
            )
            .unwrap();
            assert_eq!(tiled.n_out(), 13, "{mapping}");
            assert!(tiled.effective_weights().all_close(&w, 1e-4), "{mapping}");
        }
        // An inconsistent stacked row count is rejected (ACM on 8-wide
        // tiles: nd = n_out + ceil(n_out/7); nd = 9 has no solution).
        let bad = Tensor::zeros(&[9, 10]);
        assert!(TiledCrossbar::program_conductances(
            &bad,
            Mapping::Acm,
            DeviceConfig::ideal(),
            TileShape::new(8, 8),
            &mut r,
        )
        .is_err());
    }

    #[test]
    fn rejects_bad_input_length() {
        let mut r = rng();
        let w = Tensor::rand_uniform(&[4, 10], -0.05, 0.05, &mut r);
        let t = TiledCrossbar::program_signed(
            &w,
            Mapping::Acm,
            DeviceConfig::ideal(),
            TileShape::new(4, 4),
            &mut r,
        )
        .unwrap();
        assert!(t.mvm_signed(&Tensor::zeros(&[11])).is_err());
        assert!(t.forward(&Tensor::zeros(&[2, 11])).is_err());
        let bad = Tensor::from_vec(vec![f32::NAN; 10], &[10]).unwrap();
        assert!(matches!(
            t.mvm_raw(&bad),
            Err(MappingError::NonFiniteInput { .. })
        ));
    }

    #[test]
    fn tile_too_narrow_is_rejected() {
        assert!(TileGrid::new(4, 4, Mapping::Acm, Some(TileShape::new(4, 1))).is_err());
        assert!(TileGrid::new(4, 4, Mapping::DoubleElement, Some(TileShape::new(4, 1))).is_err());
        assert!(TileGrid::new(4, 4, Mapping::BiasColumn, Some(TileShape::new(4, 2))).is_ok());
    }

    #[test]
    fn monolithic_grid_is_degenerate_case() {
        let grid = TileGrid::new(10, 30, Mapping::Acm, None).unwrap();
        assert!(grid.is_monolithic());
        assert_eq!(grid.grid(), (1, 1));
        assert_eq!(grid.nd_total(), 11);
        assert_eq!(grid.replicated_reference_columns(), 0);
        assert_eq!(grid.periphery(), Mapping::Acm.periphery(10));
        // A huge tile is monolithic too.
        let big = TileGrid::new(10, 30, Mapping::Acm, Some(TileShape::standard())).unwrap();
        assert!(big.is_monolithic());
        assert_eq!(big.nd_total(), 11);
    }

    #[test]
    fn grid_decompose_matches_whole_matrix_per_group() {
        let mut r = rng();
        let w = Tensor::rand_uniform(&[12, 6], -0.02, 0.02, &mut r);
        let range = DeviceConfig::ideal().range();
        for mapping in Mapping::ALL {
            let grid = TileGrid::new(12, 6, mapping, Some(TileShape::new(8, 8))).unwrap();
            let m = grid.decompose(&w, range).unwrap();
            assert_eq!(m.shape(), [grid.nd_total(), 6]);
            for g in grid.col_groups() {
                let w_group = rows_slice(&w, g.out_start, g.out_len);
                let m_group = decompose(&w_group, mapping, range).unwrap();
                let got = rows_slice(&m, g.dev_start, g.dev_len);
                assert!(got.all_close(&m_group, 0.0), "{mapping}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn tile_shape_rejects_zero() {
        let _ = TileShape::new(0, 4);
    }

    #[test]
    fn tiled_parasitics_off_effective_is_bitwise_programmed() {
        let mut r = rng();
        let w = Tensor::rand_uniform(&[12, 30], -0.02, 0.02, &mut r);
        for mapping in Mapping::ALL {
            let tiled = TiledCrossbar::program_signed(
                &w,
                mapping,
                DeviceConfig::quantized_linear(4).with_variation_sigma(0.03),
                TileShape::new(8, 8),
                &mut r,
            )
            .unwrap();
            assert_eq!(
                tiled.effective_conductances().data(),
                tiled.conductances().data(),
                "{mapping}: parasitics off must be a pure pass-through"
            );
        }
    }

    #[test]
    fn tiled_line_resistance_restarts_at_tile_boundaries() {
        use xbar_device::LineResistanceModel;
        // The same layer split over smaller tiles has shorter wire runs,
        // so the worst-case attenuation is milder than monolithic.
        let mut r = rng();
        let w = Tensor::rand_uniform(&[12, 30], 0.005, 0.02, &mut r);
        let x = Tensor::ones(&[30]);
        let dev = DeviceConfig::ideal().with_line_resistance(LineResistanceModel::new(0.01));
        let ideal = linalg::matvec(&w, &x).unwrap();
        let err = |tile: TileShape| {
            let t = TiledCrossbar::program_signed(&w, Mapping::Acm, dev, tile, &mut rng()).unwrap();
            t.mvm_signed(&x).unwrap().sub(&ideal).unwrap().abs_max()
        };
        assert!(err(TileShape::new(8, 8)) < err(TileShape::new(128, 128)));
    }

    #[test]
    fn tiled_perm_sorts_each_group_and_stays_exact() {
        let mut r = rng();
        let w = Tensor::rand_uniform(&[13, 21], -0.02, 0.02, &mut r);
        let tiled = TiledCrossbar::program_signed(
            &w,
            Mapping::Perm,
            DeviceConfig::ideal(),
            TileShape::new(8, 8),
            &mut r,
        )
        .unwrap();
        assert!(tiled.effective_weights().all_close(&w, 1e-4));
        // Within every column-group the physical rows are in descending
        // mid-deviation order.
        let mid = tiled.device().range().midpoint();
        let n_in = tiled.n_in();
        for g in tiled.grid().col_groups() {
            let dev: Vec<f32> = (g.dev_start..g.dev_start + g.dev_len)
                .map(|j| {
                    tiled.conductances().data()[j * n_in..(j + 1) * n_in]
                        .iter()
                        .map(|&v| (v - mid).abs())
                        .sum()
                })
                .collect();
            for pair in dev.windows(2) {
                assert!(pair[0] >= pair[1] - 1e-6, "group not sorted: {dev:?}");
            }
        }
    }

    #[test]
    fn tiled_perm_remap_still_recovers_faults() {
        use xbar_device::FaultModel;
        let mut r = rng();
        let w = Tensor::rand_uniform(&[12, 24], -0.02, 0.02, &mut r);
        let dev = DeviceConfig::ideal().with_faults(FaultModel::uniform(0.02));
        let naive = TiledCrossbar::program_signed(
            &w,
            Mapping::Perm,
            dev,
            TileShape::new(8, 8),
            &mut XorShiftRng::new(5),
        )
        .unwrap();
        let (remapped, report) = TiledCrossbar::program_signed_remapped(
            &w,
            Mapping::Perm,
            dev,
            TileShape::new(8, 8),
            &mut XorShiftRng::new(5),
        )
        .unwrap();
        assert!(naive.fault_map().num_stuck() > 0);
        let err = |xb: &TiledCrossbar| xb.effective_weights().sub(&w).unwrap().norm_sq().sqrt();
        assert!(
            err(&remapped) < err(&naive),
            "null-space slack survives the permutation"
        );
        assert!(report.residual_after() <= report.residual_before());
    }
}
