//! Tiled crossbar execution for layers larger than one physical array.
//!
//! Physical crossbar arrays are bounded (128×128 is a typical fabricated
//! size; the paper's VGG-9 layers are far larger), so a real accelerator
//! splits a layer across a grid of tiles: input rows are partitioned
//! across tile *rows* (partial sums added digitally after the ADC) and
//! weight columns across tile *columns*. The periphery combine runs once
//! on the accumulated column outputs.
//!
//! Tiling interacts with the mapping: the column count being split is the
//! mapping's `N_D`, so DE needs roughly twice the tile columns of BC/ACM —
//! the physical origin of Table I's area gap. [`TiledCrossbar::tile_grid`]
//! exposes the grid so system-level models can count arrays.

use xbar_device::DeviceConfig;
use xbar_tensor::rng::XorShiftRng;
use xbar_tensor::{linalg, Tensor};

use crate::{decompose, Mapping, MappingError, PeripheryMatrix};

/// Physical dimensions of one crossbar tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileShape {
    /// Rows (inputs) per tile.
    pub rows: usize,
    /// Columns (device columns) per tile.
    pub cols: usize,
}

impl TileShape {
    /// Creates a tile shape.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "tile dimensions must be positive");
        Self { rows, cols }
    }

    /// The 128×128 tile size common in fabricated RRAM macros.
    pub fn standard() -> Self {
        Self::new(128, 128)
    }
}

/// A signed MVM engine built from a grid of physical crossbar tiles.
///
/// Semantically equivalent to [`crate::CrossbarArray`] but respecting a
/// physical tile size: each tile stores a sub-block of the conductance
/// matrix and is programmed (quantization + variation) independently, as
/// separate chips would be.
///
/// # Example
///
/// ```
/// use xbar_core::{Mapping, TiledCrossbar, TileShape};
/// use xbar_device::DeviceConfig;
/// use xbar_tensor::{rng::XorShiftRng, Tensor};
///
/// # fn main() -> Result<(), xbar_core::MappingError> {
/// let mut rng = XorShiftRng::new(5);
/// let w = Tensor::rand_uniform(&[20, 50], -0.01, 0.01, &mut rng);
/// let tiled = TiledCrossbar::program_signed(
///     &w, Mapping::Acm, DeviceConfig::ideal(), TileShape::new(16, 16), &mut rng)?;
/// assert_eq!(tiled.tile_grid(), (4, 2)); // ceil(50/16) x ceil(21/16)
/// let x = Tensor::rand_uniform(&[50], -1.0, 1.0, &mut rng);
/// let y = tiled.mvm_signed(&x)?;
/// assert_eq!(y.len(), 20);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TiledCrossbar {
    mapping: Mapping,
    periphery: PeripheryMatrix,
    tile: TileShape,
    n_in: usize,
    n_dev: usize,
    /// Tiles in row-major grid order; tile `(r, c)` holds conductance
    /// block `rows [r·tile.rows ..], cols [c·tile.cols ..]` of `M`
    /// *transposed into array orientation* (rows = inputs).
    tiles: Vec<Tensor>,
    grid_rows: usize,
    grid_cols: usize,
}

impl TiledCrossbar {
    /// Decomposes `W (N_O × N_I)` under `mapping` and programs the
    /// conductances across a grid of `tile`-sized arrays through `device`.
    ///
    /// # Errors
    ///
    /// Returns an error if the decomposition fails.
    pub fn program_signed(
        w: &Tensor,
        mapping: Mapping,
        device: DeviceConfig,
        tile: TileShape,
        rng: &mut XorShiftRng,
    ) -> Result<Self, MappingError> {
        let m = decompose(w, mapping, device.range())?;
        let (n_dev, n_in) = (m.shape()[0], m.shape()[1]);
        let n_out = w.shape()[0];
        let periphery = mapping.periphery(n_out);
        let grid_rows = n_in.div_ceil(tile.rows);
        let grid_cols = n_dev.div_ceil(tile.cols);
        let mut tiles = Vec::with_capacity(grid_rows * grid_cols);
        for gr in 0..grid_rows {
            for gc in 0..grid_cols {
                let r0 = gr * tile.rows;
                let c0 = gc * tile.cols;
                let rows = tile.rows.min(n_in - r0);
                let cols = tile.cols.min(n_dev - c0);
                // Array orientation: tile[i][j] = conductance of device
                // column (c0 + j) at input row (r0 + i).
                let mut block = Tensor::zeros(&[rows, cols]);
                for i in 0..rows {
                    for j in 0..cols {
                        let target = device.snap(m.at(&[c0 + j, r0 + i]));
                        let realised = device.variation().sample(target, device.range(), rng);
                        *block.at_mut(&[i, j]) = realised;
                    }
                }
                tiles.push(block);
            }
        }
        Ok(Self {
            mapping,
            periphery,
            tile,
            n_in,
            n_dev,
            tiles,
            grid_rows,
            grid_cols,
        })
    }

    /// The mapping in use.
    pub fn mapping(&self) -> Mapping {
        self.mapping
    }

    /// The physical tile shape.
    pub fn tile_shape(&self) -> TileShape {
        self.tile
    }

    /// Grid dimensions `(tile_rows, tile_cols)`.
    pub fn tile_grid(&self) -> (usize, usize) {
        (self.grid_rows, self.grid_cols)
    }

    /// Total number of physical arrays.
    pub fn num_tiles(&self) -> usize {
        self.tiles.len()
    }

    /// Number of logical inputs.
    pub fn n_in(&self) -> usize {
        self.n_in
    }

    /// Number of signed outputs.
    pub fn n_out(&self) -> usize {
        self.periphery.n_out()
    }

    /// Signed MVM through the tile grid: each tile produces partial column
    /// currents; partial sums accumulate digitally across tile rows, then
    /// the periphery combine produces the signed outputs.
    ///
    /// # Errors
    ///
    /// Returns a shape error if `x` is not 1-D of length `n_in()`.
    pub fn mvm_signed(&self, x: &Tensor) -> Result<Tensor, MappingError> {
        if x.ndim() != 1 || x.len() != self.n_in {
            return Err(MappingError::Shape(xbar_tensor::ShapeError::new(
                "tiled mvm",
                format!(
                    "expected 1-D input of length {}, got {:?}",
                    self.n_in,
                    x.shape()
                ),
            )));
        }
        // Accumulate raw device-column outputs across the tile grid.
        let mut raw = Tensor::zeros(&[self.n_dev]);
        for gr in 0..self.grid_rows {
            let r0 = gr * self.tile.rows;
            for gc in 0..self.grid_cols {
                let c0 = gc * self.tile.cols;
                let block = &self.tiles[gr * self.grid_cols + gc];
                let (rows, cols) = (block.shape()[0], block.shape()[1]);
                // Partial product: x-slice (rows) through the tile.
                let x_slice = Tensor::from_vec(x.data()[r0..r0 + rows].to_vec(), &[rows])
                    .expect("slice length matches");
                // block^T · x_slice -> cols partial sums.
                for j in 0..cols {
                    let mut acc = 0.0;
                    for i in 0..rows {
                        acc += block.at(&[i, j]) * x_slice.data()[i];
                    }
                    raw.data_mut()[c0 + j] += acc;
                }
            }
        }
        linalg::matvec(self.periphery.matrix(), &raw).map_err(MappingError::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CrossbarArray;

    fn rng() -> XorShiftRng {
        XorShiftRng::new(171)
    }

    #[test]
    fn tiled_matches_monolithic_ideal() {
        let mut r = rng();
        let w = Tensor::rand_uniform(&[12, 30], -0.02, 0.02, &mut r);
        let x = Tensor::rand_uniform(&[30], -1.0, 1.0, &mut r);
        for mapping in Mapping::ALL {
            let mono =
                CrossbarArray::program_signed(&w, mapping, DeviceConfig::ideal(), &mut r).unwrap();
            let tiled = TiledCrossbar::program_signed(
                &w,
                mapping,
                DeviceConfig::ideal(),
                TileShape::new(8, 8),
                &mut r,
            )
            .unwrap();
            let ym = mono.mvm_signed(&x).unwrap();
            let yt = tiled.mvm_signed(&x).unwrap();
            assert!(yt.all_close(&ym, 1e-4), "{mapping}: tiled != monolithic");
        }
    }

    #[test]
    fn grid_dimensions_are_ceilings() {
        let mut r = rng();
        let w = Tensor::rand_uniform(&[20, 50], -0.01, 0.01, &mut r);
        // ACM: n_dev = 21, n_in = 50; tiles 16x16 -> grid ceil(50/16)=4 x ceil(21/16)=2.
        let t = TiledCrossbar::program_signed(
            &w,
            Mapping::Acm,
            DeviceConfig::ideal(),
            TileShape::new(16, 16),
            &mut r,
        )
        .unwrap();
        assert_eq!(t.tile_grid(), (4, 2));
        assert_eq!(t.num_tiles(), 8);
        assert_eq!(t.n_in(), 50);
        assert_eq!(t.n_out(), 20);
    }

    #[test]
    fn de_needs_more_tiles_than_acm() {
        let mut r = rng();
        let w = Tensor::rand_uniform(&[60, 100], -0.002, 0.002, &mut r);
        let tiles = |mapping| {
            TiledCrossbar::program_signed(
                &w,
                mapping,
                DeviceConfig::ideal(),
                TileShape::standard(),
                &mut XorShiftRng::new(1),
            )
            .unwrap()
            .num_tiles()
        };
        // ACM: 61 cols -> 1 tile col; DE: 120 cols -> 1 tile col at 128...
        // use enough outputs that DE crosses the 128 boundary.
        assert!(tiles(Mapping::DoubleElement) >= tiles(Mapping::Acm));
        let w2 = Tensor::rand_uniform(&[100, 100], -0.002, 0.002, &mut r);
        let tiles2 = |mapping| {
            TiledCrossbar::program_signed(
                &w2,
                mapping,
                DeviceConfig::ideal(),
                TileShape::standard(),
                &mut XorShiftRng::new(2),
            )
            .unwrap()
            .num_tiles()
        };
        // DE: 200 device cols -> 2 tile cols; ACM: 101 -> 1.
        assert_eq!(tiles2(Mapping::DoubleElement), 2 * tiles2(Mapping::Acm));
    }

    #[test]
    fn quantization_and_variation_apply_per_tile() {
        let mut r = rng();
        let w = Tensor::rand_uniform(&[8, 20], -0.02, 0.02, &mut r);
        let dev = DeviceConfig::quantized_linear(4).with_variation_sigma(0.05);
        let tiled = TiledCrossbar::program_signed(
            &w,
            Mapping::DoubleElement,
            dev,
            TileShape::new(8, 8),
            &mut r,
        )
        .unwrap();
        let x = Tensor::ones(&[20]);
        // Must still approximate the ideal result.
        let ideal = linalg::matvec(&w, &x).unwrap();
        let y = tiled.mvm_signed(&x).unwrap();
        assert!(y.sub(&ideal).unwrap().abs_max() < 0.5);
    }

    #[test]
    fn rejects_bad_input_length() {
        let mut r = rng();
        let w = Tensor::rand_uniform(&[4, 10], -0.05, 0.05, &mut r);
        let t = TiledCrossbar::program_signed(
            &w,
            Mapping::Acm,
            DeviceConfig::ideal(),
            TileShape::new(4, 4),
            &mut r,
        )
        .unwrap();
        assert!(t.mvm_signed(&Tensor::zeros(&[11])).is_err());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn tile_shape_rejects_zero() {
        let _ = TileShape::new(0, 4);
    }
}
