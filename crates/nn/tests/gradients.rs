//! Gradient-correctness property tests: every layer's backward pass is
//! checked against central finite differences on random shapes.

// Entire file is proptest-driven; compiled only with the non-default
// `slow-proptests` feature (the proptest dep is unavailable offline).
#![cfg(feature = "slow-proptests")]

use proptest::prelude::*;
use xbar_core::Mapping;
use xbar_device::DeviceConfig;
use xbar_nn::{
    AvgPool2d, BatchNorm2d, Conv2d, Dense, Flatten, GlobalAvgPool, Layer, MaxPool2d, QuantAct,
    Relu, WeightKind,
};
use xbar_tensor::{rng::XorShiftRng, Tensor};

/// Checks d(sum∘weighted)/dx of `layer` against central differences at a
/// few random coordinates.
fn check_input_gradient(
    layer: &mut dyn Layer,
    x: &Tensor,
    tol: f32,
    seed: u64,
) -> Result<(), String> {
    let mut rng = XorShiftRng::new(seed);
    let wts = Tensor::rand_normal(&[1], 0.0, 1.0, &mut rng); // placeholder to consume rng
    let _ = wts;
    let weights = Tensor::rand_normal(
        layer.forward(x, false).map_err(|e| e.to_string())?.shape(),
        0.0,
        1.0,
        &mut rng,
    );
    let y = layer.forward(x, true).map_err(|e| e.to_string())?;
    let loss0: f32 = y
        .data()
        .iter()
        .zip(weights.data())
        .map(|(&a, &b)| a * b)
        .sum();
    let gx = layer.backward(&weights).map_err(|e| e.to_string())?;
    let eps = 1e-2;
    for _ in 0..4 {
        let i = rng.below(x.len());
        let mut xp = x.clone();
        xp.data_mut()[i] += eps;
        let yp = layer.forward(&xp, false).map_err(|e| e.to_string())?;
        let lossp: f32 = yp
            .data()
            .iter()
            .zip(weights.data())
            .map(|(&a, &b)| a * b)
            .sum();
        let mut xm = x.clone();
        xm.data_mut()[i] -= eps;
        let ym = layer.forward(&xm, false).map_err(|e| e.to_string())?;
        let lossm: f32 = ym
            .data()
            .iter()
            .zip(weights.data())
            .map(|(&a, &b)| a * b)
            .sum();
        let num = (lossp - lossm) / (2.0 * eps);
        let ana = gx.data()[i];
        let scale = gx.abs_max().max(1.0);
        if (num - ana).abs() > tol * scale {
            return Err(format!(
                "coord {i}: numeric {num} vs analytic {ana} (loss0 {loss0})"
            ));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn dense_input_gradient(seed in any::<u64>(), n_in in 2usize..8, n_out in 2usize..8) {
        let mut rng = XorShiftRng::new(seed);
        let mut layer =
            Dense::new(n_in, n_out, WeightKind::Signed, DeviceConfig::ideal(), &mut rng).unwrap();
        let x = Tensor::rand_normal(&[3, n_in], 0.0, 1.0, &mut rng);
        prop_assert!(check_input_gradient(&mut layer, &x, 0.05, seed).is_ok());
    }

    #[test]
    fn mapped_dense_input_gradient(seed in any::<u64>(), n_in in 2usize..6) {
        for mapping in Mapping::ALL {
            let mut rng = XorShiftRng::new(seed);
            let mut layer = Dense::new(
                n_in, 4, WeightKind::Mapped(mapping), DeviceConfig::ideal(), &mut rng,
            ).unwrap();
            let x = Tensor::rand_normal(&[2, n_in], 0.0, 1.0, &mut rng);
            if let Err(e) = check_input_gradient(&mut layer, &x, 0.05, seed) {
                prop_assert!(false, "{}: {}", mapping, e);
            }
        }
    }

    #[test]
    fn conv_input_gradient(seed in any::<u64>(), c in 1usize..3, oc in 1usize..3) {
        let mut rng = XorShiftRng::new(seed);
        let mut layer = Conv2d::same3x3(c, oc, WeightKind::Signed, DeviceConfig::ideal(), &mut rng)
            .unwrap();
        let x = Tensor::rand_normal(&[1, c, 5, 5], 0.0, 1.0, &mut rng);
        prop_assert!(check_input_gradient(&mut layer, &x, 0.05, seed).is_ok());
    }

    #[test]
    fn relu_and_structural_layers(seed in any::<u64>()) {
        let mut rng = XorShiftRng::new(seed);
        // Keep inputs away from the ReLU kink and pooling ties where the
        // true gradient is undefined.
        let x4 = Tensor::from_fn(&[1, 2, 4, 4], |_| {
            let v = rng.normal();
            if v.abs() < 0.1 { v + 0.2 } else { v }
        });
        prop_assert!(check_input_gradient(&mut Relu::new(), &x4, 0.05, seed).is_ok());
        prop_assert!(check_input_gradient(&mut Flatten::new(), &x4, 0.02, seed).is_ok());
        prop_assert!(check_input_gradient(&mut GlobalAvgPool::new(), &x4, 0.02, seed).is_ok());
        prop_assert!(check_input_gradient(&mut AvgPool2d::new(2, 2), &x4, 0.02, seed).is_ok());
        // Max pooling needs well-separated values: the true gradient is
        // undefined at ties, so build inputs from a shuffled grid with
        // spacing comfortably above the finite-difference step.
        let mut perm: Vec<usize> = (0..32).collect();
        rng.shuffle(&mut perm);
        let x_sep = Tensor::from_fn(&[1, 2, 4, 4], |i| perm[i] as f32 * 0.07 - 1.0);
        prop_assert!(check_input_gradient(&mut MaxPool2d::halving(), &x_sep, 0.05, seed).is_ok());
    }

    #[test]
    fn batchnorm_gradient(seed in any::<u64>(), c in 1usize..3) {
        let mut rng = XorShiftRng::new(seed);
        let mut layer = BatchNorm2d::new(c);
        let x = Tensor::rand_normal(&[2, c, 3, 3], 0.0, 1.0, &mut rng);
        // BN in eval mode differs from train mode, so finite differences
        // must rerun in train mode: use a manual check instead.
        let weights = Tensor::rand_normal(&[2, c, 3, 3], 0.0, 1.0, &mut rng);
        let y = layer.forward(&x, true).unwrap();
        let loss0: f32 = y.data().iter().zip(weights.data()).map(|(&a, &b)| a * b).sum();
        let gx = layer.backward(&weights).unwrap();
        let eps = 1e-2;
        for _ in 0..3 {
            let i = rng.below(x.len());
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let yp = layer.forward(&xp, true).unwrap();
            layer.backward(&weights).unwrap(); // clear cache
            let lossp: f32 = yp.data().iter().zip(weights.data()).map(|(&a, &b)| a * b).sum();
            let num = (lossp - loss0) / eps;
            let ana = gx.data()[i];
            prop_assert!(
                (num - ana).abs() < 0.1 * gx.abs_max().max(1.0),
                "coord {}: numeric {} vs analytic {}", i, num, ana
            );
        }
    }

    /// QuantAct implements the clipped straight-through estimator exactly:
    /// the gradient passes unchanged inside the clip range and is zeroed
    /// outside. (A finite-difference check is meaningless on a staircase.)
    #[test]
    fn quant_act_ste(seed in any::<u64>(), limit in 0.5f32..4.0) {
        let mut rng = XorShiftRng::new(seed);
        let mut layer = QuantAct::new(8, limit);
        let x = Tensor::rand_normal(&[2, 6], 0.0, 2.0, &mut rng);
        layer.forward(&x, true).unwrap();
        let g_in = Tensor::rand_normal(&[2, 6], 0.0, 1.0, &mut rng);
        let g_out = layer.backward(&g_in).unwrap();
        for i in 0..x.len() {
            let expected = if x.data()[i].abs() <= limit { g_in.data()[i] } else { 0.0 };
            prop_assert_eq!(g_out.data()[i], expected, "coord {}", i);
        }
    }
}
