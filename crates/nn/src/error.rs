use std::error::Error;
use std::fmt;

use xbar_core::MappingError;
use xbar_tensor::ShapeError;

use crate::persist::PersistError;

/// Errors from network construction, forward/backward passes, and training.
#[derive(Debug, Clone, PartialEq)]
pub enum NnError {
    /// A tensor shape was incompatible with the layer.
    Shape(ShapeError),
    /// A crossbar mapping operation failed.
    Mapping(MappingError),
    /// An invalid layer or training configuration.
    Config(String),
    /// Backward called without (or inconsistently with) a prior forward.
    State(String),
    /// Checkpoint save/load failed.
    Persist(PersistError),
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Shape(e) => write!(f, "{e}"),
            Self::Mapping(e) => write!(f, "{e}"),
            Self::Config(msg) => write!(f, "invalid configuration: {msg}"),
            Self::State(msg) => write!(f, "invalid layer state: {msg}"),
            Self::Persist(e) => write!(f, "{e}"),
        }
    }
}

impl Error for NnError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Shape(e) => Some(e),
            Self::Mapping(e) => Some(e),
            Self::Persist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PersistError> for NnError {
    fn from(e: PersistError) -> Self {
        Self::Persist(e)
    }
}

impl From<ShapeError> for NnError {
    fn from(e: ShapeError) -> Self {
        Self::Shape(e)
    }
}

impl From<MappingError> for NnError {
    fn from(e: MappingError) -> Self {
        Self::Mapping(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_all_variants() {
        assert!(NnError::Config("bad".into()).to_string().contains("bad"));
        assert!(NnError::State("no forward".into())
            .to_string()
            .contains("no forward"));
        assert!(NnError::from(ShapeError::new("op", "d"))
            .to_string()
            .contains("op"));
        let me = MappingError::NotRepresentable {
            mapping: "BC",
            detail: "x".into(),
        };
        assert!(NnError::from(me).to_string().contains("BC"));
    }

    #[test]
    fn sources_preserved() {
        assert!(NnError::from(ShapeError::new("a", "b")).source().is_some());
        assert!(NnError::Config("c".into()).source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NnError>();
    }
}
