use xbar_tensor::rng::XorShiftRng;
use xbar_tensor::Tensor;

use crate::{Layer, NnError};

/// Inverted dropout: at training time each activation is zeroed with
/// probability `p` and survivors are scaled by `1/(1−p)`; inference is the
/// identity.
///
/// The paper notes that ACM's implicit regularization "is not meant to
/// replace standard regularization methods, e.g. L-2, dropout, etc, which
/// have a much stronger regularization effect" (Sec. III-E) — this layer
/// exists so that comparison can actually be run (see the
/// `ablation_dropout` experiment binary).
#[derive(Clone, Debug)]
pub struct Dropout {
    p: f32,
    rng: XorShiftRng,
    mask: Option<Vec<f32>>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p`, seeded for
    /// reproducibility.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= p < 1`.
    pub fn new(p: f32, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "drop probability {p} outside [0, 1)"
        );
        Self {
            p,
            rng: XorShiftRng::new(seed),
            mask: None,
        }
    }

    /// The drop probability.
    pub fn probability(&self) -> f32 {
        self.p
    }
}

impl Layer for Dropout {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn describe(&self) -> String {
        format!("dropout p={}", self.p)
    }

    fn forward(&mut self, x: &Tensor, train: bool) -> Result<Tensor, NnError> {
        if !train || self.p == 0.0 {
            if train {
                self.mask = Some(vec![1.0; x.len()]);
            }
            return Ok(x.clone());
        }
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        let mask: Vec<f32> = (0..x.len())
            .map(|_| {
                if self.rng.next_f32() < keep {
                    scale
                } else {
                    0.0
                }
            })
            .collect();
        let mut y = x.clone();
        for (v, &m) in y.data_mut().iter_mut().zip(&mask) {
            *v *= m;
        }
        self.mask = Some(mask);
        Ok(y)
    }

    fn backward(&mut self, grad: &Tensor) -> Result<Tensor, NnError> {
        let mask = self
            .mask
            .take()
            .ok_or_else(|| NnError::State("dropout backward without forward".into()))?;
        if mask.len() != grad.len() {
            return Err(NnError::Shape(xbar_tensor::ShapeError::new(
                "dropout backward",
                format!("cached {} elements, grad has {}", mask.len(), grad.len()),
            )));
        }
        let mut out = grad.clone();
        for (g, &m) in out.data_mut().iter_mut().zip(&mask) {
            *g *= m;
        }
        Ok(out)
    }

    fn visit_forward_rngs(&mut self, visit: &mut dyn FnMut(&mut XorShiftRng)) {
        visit(&mut self.rng);
    }

    fn visit_state(&mut self, prefix: &str, visitor: &mut dyn crate::StateVisitor) {
        visitor.rng(&format!("{prefix}rng"), &mut self.rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inference_is_identity() {
        let mut d = Dropout::new(0.5, 1);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]).unwrap();
        assert_eq!(d.forward(&x, false).unwrap(), x);
    }

    #[test]
    fn zero_probability_is_identity_in_training() {
        let mut d = Dropout::new(0.0, 2);
        let x = Tensor::from_vec(vec![1.0, -2.0], &[1, 2]).unwrap();
        assert_eq!(d.forward(&x, true).unwrap(), x);
    }

    #[test]
    fn training_drops_and_rescales() {
        let mut d = Dropout::new(0.5, 3);
        let x = Tensor::ones(&[1, 1000]);
        let y = d.forward(&x, true).unwrap();
        let dropped = y.data().iter().filter(|&&v| v == 0.0).count();
        let kept = y.data().iter().filter(|&&v| (v - 2.0).abs() < 1e-6).count();
        assert_eq!(dropped + kept, 1000);
        assert!((400..600).contains(&dropped), "dropped {dropped}");
        // Mean preserved in expectation.
        assert!((y.mean() - 1.0).abs() < 0.15);
    }

    #[test]
    fn backward_uses_same_mask() {
        let mut d = Dropout::new(0.5, 4);
        let x = Tensor::ones(&[1, 100]);
        let y = d.forward(&x, true).unwrap();
        let g = d.backward(&Tensor::ones(&[1, 100])).unwrap();
        // Gradient zero exactly where output was dropped.
        for (yv, gv) in y.data().iter().zip(g.data()) {
            assert_eq!(*yv == 0.0, *gv == 0.0);
        }
    }

    #[test]
    fn backward_without_forward_errors() {
        let mut d = Dropout::new(0.3, 5);
        assert!(d.backward(&Tensor::ones(&[1])).is_err());
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn rejects_bad_probability() {
        let _ = Dropout::new(1.0, 6);
    }
}
