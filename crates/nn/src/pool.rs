use xbar_tensor::conv::{
    avgpool2d_backward, avgpool2d_forward, maxpool2d_backward, maxpool2d_forward, ConvGeometry,
};
use xbar_tensor::Tensor;

use crate::{Layer, NnError};

/// Max pooling over `k×k` windows.
#[derive(Clone, Debug)]
pub struct MaxPool2d {
    kernel: usize,
    stride: usize,
    cache: Option<(Vec<usize>, Vec<usize>)>, // (argmax indices, input shape)
}

impl MaxPool2d {
    /// Creates a max-pool layer with window `kernel` and stride `stride`.
    ///
    /// # Panics
    ///
    /// Panics if `kernel == 0` or `stride == 0`.
    pub fn new(kernel: usize, stride: usize) -> Self {
        assert!(
            kernel > 0 && stride > 0,
            "pool kernel/stride must be positive"
        );
        Self {
            kernel,
            stride,
            cache: None,
        }
    }

    /// The common 2×2/stride-2 pool.
    pub fn halving() -> Self {
        Self::new(2, 2)
    }
}

impl Layer for MaxPool2d {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn describe(&self) -> String {
        format!("maxpool {}x{} s{}", self.kernel, self.kernel, self.stride)
    }

    fn forward(&mut self, x: &Tensor, train: bool) -> Result<Tensor, NnError> {
        if x.ndim() != 4 {
            return Err(NnError::Shape(xbar_tensor::ShapeError::new(
                "maxpool",
                format!("expected NCHW, got {:?}", x.shape()),
            )));
        }
        let geom = ConvGeometry::new(
            x.shape()[2],
            x.shape()[3],
            self.kernel,
            self.kernel,
            self.stride,
            0,
        );
        let (y, idx) = maxpool2d_forward(x, &geom)?;
        if train {
            self.cache = Some((idx, x.shape().to_vec()));
        }
        Ok(y)
    }

    fn backward(&mut self, grad: &Tensor) -> Result<Tensor, NnError> {
        let (idx, shape) = self
            .cache
            .take()
            .ok_or_else(|| NnError::State("maxpool backward without forward".into()))?;
        Ok(maxpool2d_backward(grad, &idx, &shape)?)
    }
}

/// Average pooling over `k×k` windows.
#[derive(Clone, Debug)]
pub struct AvgPool2d {
    kernel: usize,
    stride: usize,
    cache: Option<(usize, usize, ConvGeometry)>, // (n, c, geom)
}

impl AvgPool2d {
    /// Creates an average-pool layer.
    ///
    /// # Panics
    ///
    /// Panics if `kernel == 0` or `stride == 0`.
    pub fn new(kernel: usize, stride: usize) -> Self {
        assert!(
            kernel > 0 && stride > 0,
            "pool kernel/stride must be positive"
        );
        Self {
            kernel,
            stride,
            cache: None,
        }
    }
}

impl Layer for AvgPool2d {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn describe(&self) -> String {
        format!("avgpool {}x{} s{}", self.kernel, self.kernel, self.stride)
    }

    fn forward(&mut self, x: &Tensor, train: bool) -> Result<Tensor, NnError> {
        if x.ndim() != 4 {
            return Err(NnError::Shape(xbar_tensor::ShapeError::new(
                "avgpool",
                format!("expected NCHW, got {:?}", x.shape()),
            )));
        }
        let geom = ConvGeometry::new(
            x.shape()[2],
            x.shape()[3],
            self.kernel,
            self.kernel,
            self.stride,
            0,
        );
        let y = avgpool2d_forward(x, &geom)?;
        if train {
            self.cache = Some((x.shape()[0], x.shape()[1], geom));
        }
        Ok(y)
    }

    fn backward(&mut self, grad: &Tensor) -> Result<Tensor, NnError> {
        let (n, c, geom) = self
            .cache
            .take()
            .ok_or_else(|| NnError::State("avgpool backward without forward".into()))?;
        Ok(avgpool2d_backward(grad, n, c, &geom)?)
    }
}

/// Global average pooling: collapses each channel's spatial map to its
/// mean, producing `(batch, channels)` — the classifier head of ResNets.
#[derive(Clone, Debug, Default)]
pub struct GlobalAvgPool {
    input_shape: Option<Vec<usize>>,
}

impl GlobalAvgPool {
    /// Creates a global average-pool layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for GlobalAvgPool {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn describe(&self) -> String {
        "global-avgpool".into()
    }

    fn forward(&mut self, x: &Tensor, train: bool) -> Result<Tensor, NnError> {
        if x.ndim() != 4 {
            return Err(NnError::Shape(xbar_tensor::ShapeError::new(
                "global-avgpool",
                format!("expected NCHW, got {:?}", x.shape()),
            )));
        }
        let (n, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
        let spatial = h * w;
        let mut y = Tensor::zeros(&[n, c]);
        for ni in 0..n {
            for ci in 0..c {
                let base = (ni * c + ci) * spatial;
                let s: f32 = x.data()[base..base + spatial].iter().sum();
                *y.at_mut(&[ni, ci]) = s / spatial as f32;
            }
        }
        if train {
            self.input_shape = Some(x.shape().to_vec());
        }
        Ok(y)
    }

    fn backward(&mut self, grad: &Tensor) -> Result<Tensor, NnError> {
        let shape = self
            .input_shape
            .take()
            .ok_or_else(|| NnError::State("global-avgpool backward without forward".into()))?;
        let (n, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        if grad.shape() != [n, c] {
            return Err(NnError::Shape(xbar_tensor::ShapeError::new(
                "global-avgpool backward",
                format!("expected ({n}, {c}), got {:?}", grad.shape()),
            )));
        }
        let spatial = (h * w) as f32;
        let mut out = Tensor::zeros(&shape);
        for ni in 0..n {
            for ci in 0..c {
                let share = grad.at(&[ni, ci]) / spatial;
                let base = (ni * c + ci) * (h * w);
                for v in &mut out.data_mut()[base..base + h * w] {
                    *v = share;
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxpool_halves_spatial_dims() {
        let mut p = MaxPool2d::halving();
        let x = Tensor::from_vec((0..16).map(|v| v as f32).collect(), &[1, 1, 4, 4]).unwrap();
        let y = p.forward(&x, true).unwrap();
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[5.0, 7.0, 13.0, 15.0]);
        let g = p.backward(&Tensor::ones(&[1, 1, 2, 2])).unwrap();
        assert_eq!(g.sum(), 4.0);
    }

    #[test]
    fn avgpool_averages() {
        let mut p = AvgPool2d::new(2, 2);
        let x = Tensor::from_vec(vec![1.0, 3.0, 5.0, 7.0], &[1, 1, 2, 2]).unwrap();
        let y = p.forward(&x, true).unwrap();
        assert_eq!(y.data(), &[4.0]);
        let g = p
            .backward(&Tensor::from_vec(vec![4.0], &[1, 1, 1, 1]).unwrap())
            .unwrap();
        assert_eq!(g.data(), &[1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn global_avgpool_and_backward() {
        let mut p = GlobalAvgPool::new();
        let x = Tensor::from_vec((1..=8).map(|v| v as f32).collect(), &[1, 2, 2, 2]).unwrap();
        let y = p.forward(&x, true).unwrap();
        assert_eq!(y.shape(), &[1, 2]);
        assert_eq!(y.data(), &[2.5, 6.5]);
        let g = p
            .backward(&Tensor::from_vec(vec![4.0, 8.0], &[1, 2]).unwrap())
            .unwrap();
        assert_eq!(g.data(), &[1.0, 1.0, 1.0, 1.0, 2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn pools_reject_non_4d() {
        assert!(MaxPool2d::halving()
            .forward(&Tensor::zeros(&[4, 4]), true)
            .is_err());
        assert!(AvgPool2d::new(2, 2)
            .forward(&Tensor::zeros(&[4, 4]), true)
            .is_err());
        assert!(GlobalAvgPool::new()
            .forward(&Tensor::zeros(&[4, 4]), true)
            .is_err());
    }

    #[test]
    fn backward_requires_forward() {
        assert!(MaxPool2d::halving()
            .backward(&Tensor::zeros(&[1, 1, 1, 1]))
            .is_err());
        assert!(AvgPool2d::new(2, 2)
            .backward(&Tensor::zeros(&[1, 1, 1, 1]))
            .is_err());
        assert!(GlobalAvgPool::new()
            .backward(&Tensor::zeros(&[1, 1]))
            .is_err());
    }
}
