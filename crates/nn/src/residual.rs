use xbar_tensor::Tensor;

use crate::{Layer, MappedParam, NnError, Sequential};

/// A residual block: `y = relu(body(x) + shortcut(x))`.
///
/// The body is any [`Sequential`] pipeline (typically conv–BN–relu–conv–BN
/// in ResNet-20); the shortcut is the identity when `None`, or a projection
/// pipeline (1×1 strided convolution + BN) when the block changes spatial
/// size or channel count.
#[derive(Clone)]
pub struct ResidualBlock {
    body: Sequential,
    shortcut: Option<Sequential>,
    relu_mask: Option<Vec<bool>>,
}

impl ResidualBlock {
    /// Creates a residual block with an identity shortcut.
    pub fn new(body: Sequential) -> Self {
        Self {
            body,
            shortcut: None,
            relu_mask: None,
        }
    }

    /// Creates a residual block with a projection shortcut.
    pub fn with_projection(body: Sequential, shortcut: Sequential) -> Self {
        Self {
            body,
            shortcut: Some(shortcut),
            relu_mask: None,
        }
    }
}

impl Layer for ResidualBlock {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn describe(&self) -> String {
        match &self.shortcut {
            Some(_) => format!("residual(project) [{} body layers]", self.body.len()),
            None => format!("residual [{} body layers]", self.body.len()),
        }
    }

    fn forward(&mut self, x: &Tensor, train: bool) -> Result<Tensor, NnError> {
        let branch = self.body.forward(x, train)?;
        let skip = match &mut self.shortcut {
            Some(s) => s.forward(x, train)?,
            None => x.clone(),
        };
        let pre = branch.add(&skip)?;
        if train {
            self.relu_mask = Some(pre.data().iter().map(|&v| v > 0.0).collect());
        }
        Ok(pre.map(|v| v.max(0.0)))
    }

    fn backward(&mut self, grad: &Tensor) -> Result<Tensor, NnError> {
        let mask = self
            .relu_mask
            .take()
            .ok_or_else(|| NnError::State("residual backward without forward".into()))?;
        if mask.len() != grad.len() {
            return Err(NnError::Shape(xbar_tensor::ShapeError::new(
                "residual backward",
                format!("cached {} elements, grad has {}", mask.len(), grad.len()),
            )));
        }
        let mut g = grad.clone();
        for (v, &m) in g.data_mut().iter_mut().zip(&mask) {
            if !m {
                *v = 0.0;
            }
        }
        let g_body = self.body.backward(&g)?;
        let g_skip = match &mut self.shortcut {
            Some(s) => s.backward(&g)?,
            None => g,
        };
        Ok(g_body.add(&g_skip)?)
    }

    fn update(&mut self, lr: f32) {
        self.body.update(lr);
        if let Some(s) = &mut self.shortcut {
            s.update(lr);
        }
    }

    fn zero_grad(&mut self) {
        self.body.zero_grad();
        if let Some(s) = &mut self.shortcut {
            s.zero_grad();
        }
    }

    fn num_params(&self) -> usize {
        self.body.num_params() + self.shortcut.as_ref().map_or(0, |s| s.num_params())
    }

    fn visit_mapped(&mut self, visit: &mut dyn FnMut(&mut MappedParam)) {
        self.body.visit_mapped(visit);
        if let Some(s) = &mut self.shortcut {
            s.visit_mapped(visit);
        }
    }

    fn visit_grads(&mut self, visit: &mut dyn FnMut(&mut Tensor)) {
        self.body.visit_grads(visit);
        if let Some(s) = &mut self.shortcut {
            s.visit_grads(visit);
        }
    }

    fn visit_forward_rngs(&mut self, visit: &mut dyn FnMut(&mut xbar_tensor::rng::XorShiftRng)) {
        self.body.visit_forward_rngs(visit);
        if let Some(s) = &mut self.shortcut {
            s.visit_forward_rngs(visit);
        }
    }

    fn visit_batch_stats(&mut self, visit: &mut dyn FnMut(&mut Tensor)) {
        self.body.visit_batch_stats(visit);
        if let Some(s) = &mut self.shortcut {
            s.visit_batch_stats(visit);
        }
    }

    fn visit_state(&mut self, prefix: &str, visitor: &mut dyn crate::StateVisitor) {
        self.body.visit_state(&format!("{prefix}body."), visitor);
        if let Some(s) = &mut self.shortcut {
            s.visit_state(&format!("{prefix}shortcut."), visitor);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Conv2d, WeightKind};
    use xbar_device::DeviceConfig;
    use xbar_tensor::rng::XorShiftRng;

    fn small_body(rng: &mut XorShiftRng) -> Sequential {
        let mut s = Sequential::new();
        s.push(Conv2d::same3x3(2, 2, WeightKind::Signed, DeviceConfig::ideal(), rng).unwrap());
        s
    }

    #[test]
    fn identity_shortcut_adds_input() {
        let mut rng = XorShiftRng::new(151);
        let mut block = ResidualBlock::new(small_body(&mut rng));
        let x = Tensor::rand_normal(&[1, 2, 4, 4], 0.0, 1.0, &mut rng);
        let y = block.forward(&x, true).unwrap();
        assert_eq!(y.shape(), x.shape());
        // y = relu(conv(x) + x) — all outputs non-negative.
        assert!(y.min() >= 0.0);
    }

    #[test]
    fn gradient_flows_through_both_paths() {
        let mut rng = XorShiftRng::new(152);
        let mut block = ResidualBlock::new(small_body(&mut rng));
        let x = Tensor::rand_normal(&[1, 2, 4, 4], 0.5, 0.2, &mut rng);
        let y = block.forward(&x, true).unwrap();
        let gx = block.backward(&Tensor::ones(y.shape())).unwrap();
        // Numeric spot check.
        let eps = 1e-3;
        let mut block2 = ResidualBlock::new(small_body(&mut XorShiftRng::new(152)));
        for &i in &[0usize, 10, 25] {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let yp = block2.forward(&xp, false).unwrap();
            let y0 = block2.forward(&x, false).unwrap();
            let num = (yp.sum() - y0.sum()) / eps;
            assert!(
                (num - gx.data()[i]).abs() < 0.1,
                "grad {i}: {num} vs {}",
                gx.data()[i]
            );
        }
    }

    #[test]
    fn projection_shortcut_changes_shape() {
        let mut rng = XorShiftRng::new(153);
        let mut body = Sequential::new();
        body.push(
            Conv2d::new(
                2,
                4,
                3,
                2,
                1,
                WeightKind::Signed,
                DeviceConfig::ideal(),
                &mut rng,
            )
            .unwrap(),
        );
        let mut proj = Sequential::new();
        proj.push(
            Conv2d::new(
                2,
                4,
                1,
                2,
                0,
                WeightKind::Signed,
                DeviceConfig::ideal(),
                &mut rng,
            )
            .unwrap(),
        );
        let mut block = ResidualBlock::with_projection(body, proj);
        let x = Tensor::rand_normal(&[1, 2, 8, 8], 0.0, 1.0, &mut rng);
        let y = block.forward(&x, true).unwrap();
        assert_eq!(y.shape(), &[1, 4, 4, 4]);
        let gx = block.backward(&Tensor::ones(y.shape())).unwrap();
        assert_eq!(gx.shape(), x.shape());
    }

    #[test]
    fn visit_mapped_reaches_both_paths() {
        use xbar_core::Mapping;
        let mut rng = XorShiftRng::new(154);
        let mut body = Sequential::new();
        body.push(
            Conv2d::same3x3(
                2,
                2,
                WeightKind::Mapped(Mapping::Acm),
                DeviceConfig::ideal(),
                &mut rng,
            )
            .unwrap(),
        );
        let mut proj = Sequential::new();
        proj.push(
            Conv2d::new(
                2,
                2,
                1,
                1,
                0,
                WeightKind::Mapped(Mapping::Acm),
                DeviceConfig::ideal(),
                &mut rng,
            )
            .unwrap(),
        );
        let mut block = ResidualBlock::with_projection(body, proj);
        let mut count = 0;
        block.visit_mapped(&mut |_| count += 1);
        assert_eq!(count, 2);
    }
}
