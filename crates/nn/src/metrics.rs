//! Classification metrics.

use xbar_tensor::Tensor;

use crate::NnError;

/// Fraction of rows whose argmax matches the label.
///
/// # Errors
///
/// Returns a shape error if `logits` is not `(batch, classes)` with
/// `batch == labels.len()`.
///
/// # Example
///
/// ```
/// use xbar_nn::accuracy;
/// use xbar_tensor::Tensor;
///
/// # fn main() -> Result<(), xbar_nn::NnError> {
/// let logits = Tensor::from_vec(vec![0.9, 0.1, 0.2, 0.8], &[2, 2])?;
/// assert_eq!(accuracy(&logits, &[0, 1])?, 1.0);
/// assert_eq!(accuracy(&logits, &[1, 1])?, 0.5);
/// # Ok(())
/// # }
/// ```
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> Result<f32, NnError> {
    if logits.ndim() != 2 || logits.shape()[0] != labels.len() {
        return Err(NnError::Shape(xbar_tensor::ShapeError::new(
            "accuracy",
            format!(
                "expected ({}, classes) logits, got {:?}",
                labels.len(),
                logits.shape()
            ),
        )));
    }
    if labels.is_empty() {
        return Ok(0.0);
    }
    let classes = logits.shape()[1];
    let mut correct = 0usize;
    for (b, &label) in labels.iter().enumerate() {
        let row = &logits.data()[b * classes..(b + 1) * classes];
        let mut best = 0;
        for (j, &v) in row.iter().enumerate() {
            if v > row[best] {
                best = j;
            }
        }
        if best == label {
            correct += 1;
        }
    }
    Ok(correct as f32 / labels.len() as f32)
}

/// Confusion matrix `counts[true][predicted]` for `classes` classes.
///
/// # Errors
///
/// Returns a shape error on dimension mismatch or an out-of-range label.
pub fn confusion_matrix(
    logits: &Tensor,
    labels: &[usize],
    classes: usize,
) -> Result<Vec<Vec<usize>>, NnError> {
    if logits.ndim() != 2 || logits.shape()[0] != labels.len() || logits.shape()[1] != classes {
        return Err(NnError::Shape(xbar_tensor::ShapeError::new(
            "confusion_matrix",
            format!(
                "expected ({}, {classes}) logits, got {:?}",
                labels.len(),
                logits.shape()
            ),
        )));
    }
    let mut counts = vec![vec![0usize; classes]; classes];
    for (b, &label) in labels.iter().enumerate() {
        if label >= classes {
            return Err(NnError::Config(format!(
                "label {label} out of range for {classes} classes"
            )));
        }
        let row = &logits.data()[b * classes..(b + 1) * classes];
        let mut best = 0;
        for (j, &v) in row.iter().enumerate() {
            if v > row[best] {
                best = j;
            }
        }
        counts[label][best] += 1;
    }
    Ok(counts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_counts_argmax_matches() {
        let logits = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 1.0, 0.0], &[3, 2]).unwrap();
        assert_eq!(accuracy(&logits, &[0, 1, 0]).unwrap(), 1.0);
        assert_eq!(accuracy(&logits, &[1, 0, 1]).unwrap(), 0.0);
    }

    #[test]
    fn accuracy_empty_batch_is_zero() {
        let logits = Tensor::zeros(&[0, 3]);
        assert_eq!(accuracy(&logits, &[]).unwrap(), 0.0);
    }

    #[test]
    fn accuracy_rejects_mismatched_labels() {
        let logits = Tensor::zeros(&[2, 3]);
        assert!(accuracy(&logits, &[0]).is_err());
    }

    #[test]
    fn confusion_matrix_diagonal_for_perfect_predictions() {
        let logits = Tensor::from_vec(
            vec![
                1.0, 0.0, 0.0, //
                0.0, 1.0, 0.0, //
                0.0, 0.0, 1.0,
            ],
            &[3, 3],
        )
        .unwrap();
        let cm = confusion_matrix(&logits, &[0, 1, 2], 3).unwrap();
        assert_eq!(cm[0], vec![1, 0, 0]);
        assert_eq!(cm[1], vec![0, 1, 0]);
        assert_eq!(cm[2], vec![0, 0, 1]);
    }

    #[test]
    fn confusion_matrix_off_diagonal_for_errors() {
        let logits = Tensor::from_vec(vec![0.0, 1.0], &[1, 2]).unwrap();
        let cm = confusion_matrix(&logits, &[0], 2).unwrap();
        assert_eq!(cm[0][1], 1);
    }

    #[test]
    fn confusion_matrix_rejects_bad_labels() {
        let logits = Tensor::zeros(&[1, 2]);
        assert!(confusion_matrix(&logits, &[5], 2).is_err());
    }
}
