use xbar_tensor::{elementwise, Tensor};

use crate::{Layer, NnError};

/// Per-channel batch normalization over NCHW tensors.
///
/// Batch-norm parameters (`γ`, `β`) and statistics are digital bookkeeping
/// outside the crossbar — only the convolution/dense weights are mapped —
/// matching how crossbar accelerators implement normalization in the
/// periphery or digitally. Training uses batch statistics and maintains
/// running estimates; inference (`train = false`) uses the running
/// estimates.
#[derive(Clone)]
pub struct BatchNorm2d {
    channels: usize,
    eps: f32,
    momentum: f32,
    gamma: Tensor,
    beta: Tensor,
    gamma_grad: Tensor,
    beta_grad: Tensor,
    running_mean: Tensor,
    running_var: Tensor,
    cache: Option<BnCache>,
}

#[derive(Clone)]
struct BnCache {
    xhat: Tensor,
    inv_std: Vec<f32>,
    shape: Vec<usize>,
}

impl BatchNorm2d {
    /// Creates a batch-norm layer over `channels` feature maps with the
    /// standard `eps = 1e-5`, `momentum = 0.1`.
    ///
    /// # Panics
    ///
    /// Panics if `channels == 0`.
    pub fn new(channels: usize) -> Self {
        assert!(channels > 0, "batch norm needs at least one channel");
        Self {
            channels,
            eps: 1e-5,
            momentum: 0.1,
            gamma: Tensor::ones(&[channels]),
            beta: Tensor::zeros(&[channels]),
            gamma_grad: Tensor::zeros(&[channels]),
            beta_grad: Tensor::zeros(&[channels]),
            running_mean: Tensor::zeros(&[channels]),
            running_var: Tensor::ones(&[channels]),
            cache: None,
        }
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.channels
    }

    fn check_input(&self, x: &Tensor) -> Result<(usize, usize, usize), NnError> {
        if x.ndim() != 4 || x.shape()[1] != self.channels {
            return Err(NnError::Shape(xbar_tensor::ShapeError::new(
                "batchnorm",
                format!("expected (n, {}, h, w), got {:?}", self.channels, x.shape()),
            )));
        }
        Ok((x.shape()[0], x.shape()[2], x.shape()[3]))
    }
}

impl Layer for BatchNorm2d {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn describe(&self) -> String {
        format!("batchnorm c{}", self.channels)
    }

    fn forward(&mut self, x: &Tensor, train: bool) -> Result<Tensor, NnError> {
        let (n, h, w) = self.check_input(x)?;
        let c = self.channels;
        let spatial = h * w;
        let m = (n * spatial) as f32;
        let mut y = x.clone();
        if train {
            let mut xhat = x.clone();
            let mut inv_stds = Vec::with_capacity(c);
            for ci in 0..c {
                // Channel mean/var over batch and spatial dims.
                let mut mean = 0.0f32;
                for ni in 0..n {
                    let base = (ni * c + ci) * spatial;
                    mean += x.data()[base..base + spatial].iter().sum::<f32>();
                }
                mean /= m;
                let mut var = 0.0f32;
                for ni in 0..n {
                    let base = (ni * c + ci) * spatial;
                    var += x.data()[base..base + spatial]
                        .iter()
                        .map(|&v| (v - mean) * (v - mean))
                        .sum::<f32>();
                }
                var /= m;
                let inv_std = 1.0 / (var + self.eps).sqrt();
                inv_stds.push(inv_std);
                let (g, b) = (self.gamma.data()[ci], self.beta.data()[ci]);
                for ni in 0..n {
                    let base = (ni * c + ci) * spatial;
                    elementwise::bn_normalize_train(
                        &x.data()[base..base + spatial],
                        &mut xhat.data_mut()[base..base + spatial],
                        &mut y.data_mut()[base..base + spatial],
                        mean,
                        inv_std,
                        g,
                        b,
                    );
                }
                // Running estimates.
                let rm = self.running_mean.data_mut();
                rm[ci] = (1.0 - self.momentum) * rm[ci] + self.momentum * mean;
                let rv = self.running_var.data_mut();
                rv[ci] = (1.0 - self.momentum) * rv[ci] + self.momentum * var;
            }
            self.cache = Some(BnCache {
                xhat,
                inv_std: inv_stds,
                shape: x.shape().to_vec(),
            });
        } else {
            for ci in 0..c {
                let mean = self.running_mean.data()[ci];
                let inv_std = 1.0 / (self.running_var.data()[ci] + self.eps).sqrt();
                let (g, b) = (self.gamma.data()[ci], self.beta.data()[ci]);
                for ni in 0..n {
                    let base = (ni * c + ci) * spatial;
                    elementwise::bn_normalize_eval(
                        &x.data()[base..base + spatial],
                        &mut y.data_mut()[base..base + spatial],
                        mean,
                        inv_std,
                        g,
                        b,
                    );
                }
            }
        }
        Ok(y)
    }

    #[allow(clippy::needless_range_loop)] // ci walks several per-channel arrays in lockstep
    fn backward(&mut self, grad: &Tensor) -> Result<Tensor, NnError> {
        let BnCache {
            xhat,
            inv_std,
            shape,
        } = self
            .cache
            .take()
            .ok_or_else(|| NnError::State("batchnorm backward without forward".into()))?;
        if grad.shape() != shape.as_slice() {
            return Err(NnError::Shape(xbar_tensor::ShapeError::new(
                "batchnorm backward",
                format!("expected {:?}, got {:?}", shape, grad.shape()),
            )));
        }
        let (n, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        let spatial = h * w;
        let m = (n * spatial) as f32;
        let mut dx = Tensor::zeros(&shape);
        for ci in 0..c {
            // Reductions Σg and Σ(g·x̂) per channel.
            let mut sum_g = 0.0f32;
            let mut sum_gx = 0.0f32;
            for ni in 0..n {
                let base = (ni * c + ci) * spatial;
                for k in base..base + spatial {
                    sum_g += grad.data()[k];
                    sum_gx += grad.data()[k] * xhat.data()[k];
                }
            }
            self.beta_grad.data_mut()[ci] += sum_g;
            self.gamma_grad.data_mut()[ci] += sum_gx;
            let scale = self.gamma.data()[ci] * inv_std[ci] / m;
            for ni in 0..n {
                let base = (ni * c + ci) * spatial;
                for k in base..base + spatial {
                    dx.data_mut()[k] =
                        scale * (m * grad.data()[k] - sum_g - xhat.data()[k] * sum_gx);
                }
            }
        }
        Ok(dx)
    }

    fn update(&mut self, lr: f32) {
        let gg = self.gamma_grad.clone();
        let bg = self.beta_grad.clone();
        self.gamma
            .add_scaled(&gg, -lr)
            .expect("gamma shapes fixed at construction");
        self.beta
            .add_scaled(&bg, -lr)
            .expect("beta shapes fixed at construction");
    }

    fn zero_grad(&mut self) {
        self.gamma_grad.map_inplace(|_| 0.0);
        self.beta_grad.map_inplace(|_| 0.0);
    }

    fn num_params(&self) -> usize {
        2 * self.channels
    }

    fn visit_grads(&mut self, visit: &mut dyn FnMut(&mut Tensor)) {
        visit(&mut self.gamma_grad);
        visit(&mut self.beta_grad);
    }

    fn visit_batch_stats(&mut self, visit: &mut dyn FnMut(&mut Tensor)) {
        visit(&mut self.running_mean);
        visit(&mut self.running_var);
    }

    fn visit_state(&mut self, prefix: &str, visitor: &mut dyn crate::StateVisitor) {
        visitor.tensor(&format!("{prefix}gamma"), &mut self.gamma);
        visitor.tensor(&format!("{prefix}beta"), &mut self.beta);
        visitor.tensor(&format!("{prefix}running_mean"), &mut self.running_mean);
        visitor.tensor(&format!("{prefix}running_var"), &mut self.running_var);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xbar_tensor::rng::XorShiftRng;

    #[test]
    fn training_forward_normalizes_channels() {
        let mut rng = XorShiftRng::new(141);
        let mut bn = BatchNorm2d::new(3);
        let x = Tensor::rand_normal(&[4, 3, 5, 5], 3.0, 2.0, &mut rng);
        let y = bn.forward(&x, true).unwrap();
        // Each channel of y should be ~N(0,1).
        let spatial = 25;
        for ci in 0..3 {
            let mut vals = Vec::new();
            for ni in 0..4 {
                let base = (ni * 3 + ci) * spatial;
                vals.extend_from_slice(&y.data()[base..base + spatial]);
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 =
                vals.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-3, "channel {ci} mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "channel {ci} var {var}");
        }
    }

    #[test]
    fn eval_uses_running_stats() {
        let mut rng = XorShiftRng::new(142);
        let mut bn = BatchNorm2d::new(2);
        let x = Tensor::rand_normal(&[8, 2, 4, 4], 5.0, 1.0, &mut rng);
        // Accumulate running stats over many passes.
        for _ in 0..50 {
            bn.forward(&x, true).unwrap();
        }
        let y = bn.forward(&x, false).unwrap();
        // Running stats converge to batch stats -> eval output also ~N(0,1).
        let mean = y.mean();
        assert!(mean.abs() < 0.1, "eval mean {mean}");
    }

    #[test]
    fn backward_matches_finite_differences() {
        let mut rng = XorShiftRng::new(143);
        let mut bn = BatchNorm2d::new(2);
        let x = Tensor::rand_normal(&[2, 2, 3, 3], 0.0, 1.0, &mut rng);
        // Loss: weighted sum to give non-uniform gradients.
        let wts = Tensor::rand_normal(&[2, 2, 3, 3], 0.0, 1.0, &mut rng);
        let y = bn.forward(&x, true).unwrap();
        let loss0: f32 = y.data().iter().zip(wts.data()).map(|(&a, &b)| a * b).sum();
        let gx = bn.backward(&wts).unwrap();
        let eps = 1e-2;
        for &i in &[0usize, 7, 20, 35] {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let yp = bn.forward(&xp, true).unwrap();
            let lossp: f32 = yp.data().iter().zip(wts.data()).map(|(&a, &b)| a * b).sum();
            let num = (lossp - loss0) / eps;
            assert!(
                (num - gx.data()[i]).abs() < 0.05 * gx.abs_max().max(1.0),
                "grad {i}: numeric {num} vs analytic {}",
                gx.data()[i]
            );
        }
    }

    #[test]
    fn gamma_beta_update() {
        let mut rng = XorShiftRng::new(144);
        let mut bn = BatchNorm2d::new(2);
        let x = Tensor::rand_normal(&[2, 2, 2, 2], 0.0, 1.0, &mut rng);
        bn.forward(&x, true).unwrap();
        bn.backward(&Tensor::ones(&[2, 2, 2, 2])).unwrap();
        let g0 = bn.gamma.clone();
        bn.update(0.1);
        // beta_grad = sum of ones > 0 -> beta decreases.
        assert!(bn.beta.data().iter().all(|&b| b < 0.0));
        // gamma changed unless gradient was exactly zero.
        assert!(!bn.gamma.all_close(&g0, 0.0) || bn.gamma_grad.abs_max() == 0.0);
    }

    #[test]
    fn rejects_wrong_channels() {
        let mut bn = BatchNorm2d::new(3);
        assert!(bn.forward(&Tensor::zeros(&[1, 2, 4, 4]), true).is_err());
    }

    #[test]
    fn num_params_is_two_per_channel() {
        assert_eq!(BatchNorm2d::new(16).num_params(), 32);
    }
}
