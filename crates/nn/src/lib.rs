//! # xbar-nn
//!
//! A from-scratch neural-network training framework whose weight layers
//! live on simulated crossbar arrays.
//!
//! The framework exists to reproduce the training methodology of the DAC
//! 2020 ACM paper: a network's dense and convolution layers do **not** own
//! a signed weight matrix — they own a *non-negative* conductance matrix
//! `M` (via [`MappedParam`]) together with a fixed periphery matrix `S`
//! from [`xbar_core`], so the effective signed weights are `W = α·S·M`.
//! Training constrains `M ≥ 0` (clipping to the device range after every
//! update), quantizes `M` to the device's `2^B` states in the forward pass
//! (straight-through backward), and can route every SGD update through the
//! device's nonlinear pulse transfer curve — the exact simulation setup of
//! the paper's Sec. IV.
//!
//! Besides the mapped layers the crate provides the usual training stack:
//! activations (with 8-bit activation quantization), pooling, batch
//! normalization, residual blocks, softmax cross-entropy, vanilla SGD, and
//! a [`train`] driver with per-epoch history.
//!
//! # Example
//!
//! ```
//! use xbar_core::Mapping;
//! use xbar_device::DeviceConfig;
//! use xbar_nn::{Dense, Layer, Relu, Sequential, WeightKind};
//! use xbar_tensor::rng::XorShiftRng;
//!
//! # fn main() -> Result<(), xbar_nn::NnError> {
//! let mut rng = XorShiftRng::new(3);
//! let mut net = Sequential::new();
//! net.push(Dense::new(4, 8, WeightKind::Mapped(Mapping::Acm), DeviceConfig::ideal(), &mut rng)?);
//! net.push(Relu::new());
//! net.push(Dense::new(8, 2, WeightKind::Mapped(Mapping::Acm), DeviceConfig::ideal(), &mut rng)?);
//! assert!(net.num_params() > 0);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

mod activations;
mod conv;
mod dense;
mod dropout;
mod error;
mod layer;
mod loss;
mod metrics;
mod norm;
mod param;
pub mod persist;
mod pool;
mod residual;
mod train;

pub use activations::{Flatten, QuantAct, Relu};
pub use conv::{conv_mapped, Conv2d};
pub use dense::{dense_mapped, dense_signed, Dense};
pub use dropout::Dropout;
pub use error::NnError;
pub use layer::{Layer, Sequential, StateVisitor};
pub use loss::SoftmaxCrossEntropy;
pub use metrics::{accuracy, confusion_matrix};
pub use norm::BatchNorm2d;
pub use param::{MappedParam, WeightKind};
pub use pool::{AvgPool2d, GlobalAvgPool, MaxPool2d};
pub use residual::ResidualBlock;
pub use train::{
    auto_shards, calibrate, evaluate, evaluate_quantized, scrub_network, train, EpochStats,
    History, Split, TrainConfig,
};
// Re-exported so quantized-inference callers need only this crate.
pub use xbar_core::QuantReadout;
