//! Vanilla-SGD training driver.
//!
//! The paper trains every model "using a vanilla stochastic gradient
//! descent" (Sec. IV); this module provides exactly that — shuffled
//! mini-batches, a constant or step-decayed learning rate, per-epoch
//! train/test statistics — over any [`Layer`] (normally a
//! [`crate::Sequential`]) with [`crate::SoftmaxCrossEntropy`] loss.
//!
//! # Data-parallel training
//!
//! With a resolved shard count > 1 ([`TrainConfig::shards`], auto-tuned
//! from the batch size and worker-pool width when unset) every mini-batch
//! is split into that many fixed, contiguous row shards; each shard runs
//! forward/backward on its own model replica as a task on the
//! [`xbar_tensor::backend`] work-stealing scheduler. Gradients are
//! reduced **per segment** — one segment per [`xbar_core::TileGrid`]
//! column group for crossbar-mapped weights
//! ([`Layer::visit_grad_segments`]) — as dependency-counted deferred
//! tasks: shard *k* signals segment *g* the moment its copy of that
//! segment commits, and the reduction for *g* fires on the final signal,
//! summing shard buffers in fixed shard-index order. Shard boundaries,
//! dropout streams (forked per shard from the primary's persisted
//! streams), the segment plan, and the reduction order depend only on the
//! shard count and model shape — never on the thread count or steal order
//! — so an `XBAR_THREADS=N` sharded run is bitwise identical to the same
//! run executed serially, and checkpoint/resume keeps working unchanged
//! (all state lives in the primary network; the resolved shard count is
//! recorded in the checkpoint and [`History`]).

use std::ops::Range;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use xbar_tensor::rng::XorShiftRng;
use xbar_tensor::{backend, elementwise, Tensor};

use xbar_core::{QuantReadout, RepairPolicy, ScrubReport};

use crate::persist::{self, TrainCheckpoint};
use crate::{accuracy, Layer, NnError, SoftmaxCrossEntropy};

/// Hyper-parameters for [`train`].
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Initial learning rate.
    pub lr: f32,
    /// Multiplicative learning-rate decay applied after every epoch
    /// (`1.0` = constant).
    pub lr_decay: f32,
    /// Shuffling seed.
    pub seed: u64,
    /// Print one line per epoch to stdout.
    pub verbose: bool,
    /// Write a crash-safe checkpoint every this many epochs (`0` = never).
    /// Requires [`TrainConfig::checkpoint_dir`].
    pub checkpoint_every: usize,
    /// Directory for the training checkpoint (`train.ckpt`). When the file
    /// already exists, [`train`] resumes from it and reproduces the
    /// uninterrupted run bitwise.
    pub checkpoint_dir: Option<PathBuf>,
    /// Number of data-parallel shards per mini-batch (`Some(1)` = classic
    /// single-replica training). `None` auto-tunes the count from the
    /// batch size and the worker-pool width at [`train`] start (see
    /// [`auto_shards`]); the resolved value is recorded in the [`History`]
    /// and in checkpoints, and a resumed run reuses the recorded count.
    /// The *sharding* changes the floating-point reduction order relative
    /// to one shard, but for a fixed shard count the run is bitwise
    /// independent of the thread count (`XBAR_THREADS`) and fully
    /// checkpoint/resumable.
    pub shards: Option<usize>,
    /// Run one self-healing scrub pass ([`scrub_network`]) every this many
    /// epochs (`0` = never). Only does anything for networks whose mapped
    /// devices carry an active [`xbar_device::LifetimeFaultModel`]; a tick
    /// on a wear-free network is a bitwise no-op. When checkpointing is
    /// also on, `checkpoint_every` must be a multiple of `scrub_every` so
    /// every checkpoint lands on a tick boundary and a resumed run replays
    /// the scrub schedule bitwise.
    pub scrub_every: usize,
    /// Whether scrub passes run the checksum detection + staged repair +
    /// quarantine loop (`true`), or only the refresh programming the
    /// maintenance-free baseline gets (`false`).
    pub scrub_detect: bool,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 10,
            batch_size: 32,
            lr: 0.05,
            lr_decay: 0.95,
            seed: 0x7EA1,
            verbose: false,
            checkpoint_every: 0,
            checkpoint_dir: None,
            shards: None,
            scrub_every: 0,
            scrub_detect: true,
        }
    }
}

/// Runs one self-healing scrub tick over every crossbar-mapped parameter
/// of `net` (see [`crate::MappedParam::scrub_tick`]) and merges the
/// per-array [`ScrubReport`]s. Returns `None` when no parameter has
/// scrubbing active — in which case nothing was touched, bitwise.
///
/// # Errors
///
/// Propagates the first per-parameter failure (invalid health state or a
/// failed tile-local remap).
pub fn scrub_network(
    net: &mut dyn Layer,
    detect: bool,
    policy: &RepairPolicy,
) -> Result<Option<ScrubReport>, NnError> {
    let mut merged: Option<ScrubReport> = None;
    let mut first_err: Option<NnError> = None;
    net.visit_mapped(&mut |p| {
        if first_err.is_some() {
            return;
        }
        match p.scrub_tick(detect, policy) {
            Ok(Some(r)) => {
                merged = Some(match merged.take() {
                    None => r,
                    Some(mut acc) => {
                        acc.epoch = acc.epoch.max(r.epoch);
                        acc.new_faults += r.new_faults;
                        acc.detections += r.detections;
                        acc.repairs.extend(r.repairs);
                        acc.quarantined_now += r.quarantined_now;
                        acc.quarantined_total += r.quarantined_total;
                        acc.analog_tiles += r.analog_tiles;
                        acc.total_tiles += r.total_tiles;
                        acc.exhausted_cells += r.exhausted_cells;
                        acc
                    }
                });
            }
            Ok(None) => {}
            Err(e) => first_err = Some(e),
        }
    });
    match first_err {
        Some(e) => Err(e),
        None => Ok(merged),
    }
}

/// Statistics for one training epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean training loss over the epoch.
    pub train_loss: f32,
    /// Training accuracy over the epoch (running, pre-update batches).
    pub train_acc: f32,
    /// Test accuracy after the epoch (if a test set was provided).
    pub test_acc: Option<f32>,
    /// Learning rate used this epoch.
    pub lr: f32,
}

impl EpochStats {
    /// Training error percentage, `100·(1 − train_acc)` — the paper's
    /// Fig. 5a/5e y-axis.
    pub fn train_error_pct(&self) -> f32 {
        100.0 * (1.0 - self.train_acc)
    }

    /// Test error percentage, if a test set was provided.
    pub fn test_error_pct(&self) -> Option<f32> {
        self.test_acc.map(|a| 100.0 * (1.0 - a))
    }
}

/// Per-epoch history of a training run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct History {
    epochs: Vec<EpochStats>,
    resolved_shards: usize,
}

impl History {
    /// Builds a history from pre-recorded epoch statistics (e.g. a resumed
    /// checkpoint).
    pub fn from_epochs(epochs: Vec<EpochStats>) -> Self {
        Self {
            epochs,
            resolved_shards: 0,
        }
    }

    /// The data-parallel shard count the run actually used — either the
    /// explicit [`TrainConfig::shards`] value or the [`auto_shards`]
    /// resolution recorded at [`train`] start. `0` when the history was
    /// built outside [`train`] and the count is unknown.
    pub fn resolved_shards(&self) -> usize {
        self.resolved_shards
    }

    /// All epoch records, in order.
    pub fn epochs(&self) -> &[EpochStats] {
        &self.epochs
    }

    /// The final epoch's statistics.
    pub fn last(&self) -> Option<&EpochStats> {
        self.epochs.last()
    }

    /// Final test accuracy, if recorded.
    pub fn final_test_acc(&self) -> Option<f32> {
        self.last().and_then(|e| e.test_acc)
    }

    /// Best (maximum) test accuracy across epochs, if recorded.
    pub fn best_test_acc(&self) -> Option<f32> {
        self.epochs
            .iter()
            .filter_map(|e| e.test_acc)
            .fold(None, |best, a| Some(best.map_or(a, |b: f32| b.max(a))))
    }
}

/// A labelled dataset split: images/features plus integer class labels.
///
/// The feature tensor's first dimension is the sample index; the rest is
/// the per-sample shape (e.g. `(n, c, h, w)` images or `(n, d)` features).
#[derive(Debug, Clone)]
pub struct Split<'a> {
    /// Feature tensor, sample-major.
    pub x: &'a Tensor,
    /// One label per sample.
    pub labels: &'a [usize],
}

impl<'a> Split<'a> {
    /// Creates a split, validating that counts agree.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Config`] if the label count disagrees with the
    /// first tensor dimension.
    pub fn new(x: &'a Tensor, labels: &'a [usize]) -> Result<Self, NnError> {
        if x.ndim() == 0 || x.shape()[0] != labels.len() {
            return Err(NnError::Config(format!(
                "{} samples but {} labels",
                x.shape().first().copied().unwrap_or(0),
                labels.len()
            )));
        }
        Ok(Self { x, labels })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the split is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }
}

/// Copies the rows at `idxs` (first-dimension indices) into a new tensor.
pub(crate) fn gather_rows(x: &Tensor, idxs: &[usize]) -> Tensor {
    let sample: usize = x.shape()[1..].iter().product();
    let mut shape = x.shape().to_vec();
    shape[0] = idxs.len();
    let mut out = Tensor::zeros(&shape);
    for (row, &i) in idxs.iter().enumerate() {
        out.data_mut()[row * sample..(row + 1) * sample]
            .copy_from_slice(&x.data()[i * sample..(i + 1) * sample]);
    }
    out
}

/// Trains `net` with softmax cross-entropy under vanilla SGD.
///
/// Returns the per-epoch [`History`]. When `test` is provided, test
/// accuracy is evaluated after each epoch (inference mode — batch norm uses
/// running statistics, caches are not retained).
///
/// # Crash safety
///
/// With [`TrainConfig::checkpoint_every`] set and a
/// [`TrainConfig::checkpoint_dir`], the full training state (model,
/// shuffling RNG, sample order, learning rate, history) is written
/// atomically to `<dir>/train.ckpt` every `checkpoint_every` epochs. When
/// that file already exists at the next call, training *resumes* from it —
/// a run killed at epoch *k* and restarted reproduces the uninterrupted
/// run's [`History`] and final weights bitwise (given the same network
/// construction, data, and config).
///
/// # Errors
///
/// Returns an error on empty data, a zero batch size, any layer
/// shape/state failure, or a corrupt/incompatible checkpoint.
pub fn train(
    net: &mut dyn Layer,
    train_split: Split<'_>,
    test: Option<Split<'_>>,
    cfg: &TrainConfig,
) -> Result<History, NnError> {
    if train_split.is_empty() {
        return Err(NnError::Config("empty training set".into()));
    }
    if cfg.batch_size == 0 {
        return Err(NnError::Config("batch size must be positive".into()));
    }
    if cfg.lr <= 0.0 || !cfg.lr.is_finite() {
        return Err(NnError::Config(format!("bad learning rate {}", cfg.lr)));
    }
    if cfg.checkpoint_every > 0 && cfg.checkpoint_dir.is_none() {
        return Err(NnError::Config(
            "checkpoint_every set without checkpoint_dir".into(),
        ));
    }
    if cfg.shards == Some(0) {
        return Err(NnError::Config("shard count must be positive".into()));
    }
    if cfg.scrub_every > 0
        && cfg.checkpoint_every > 0
        && !cfg.checkpoint_every.is_multiple_of(cfg.scrub_every)
    {
        // A checkpoint between two ticks of the same scrub interval would
        // resume with a scrub due at a different epoch than the
        // uninterrupted run ran it, breaking bitwise resume.
        return Err(NnError::Config(format!(
            "checkpoint_every ({}) must be a multiple of scrub_every ({}) \
             so every checkpoint lands on a scrub boundary",
            cfg.checkpoint_every, cfg.scrub_every
        )));
    }
    let mut rng = XorShiftRng::new(cfg.seed);
    let n = train_split.len();
    let mut order: Vec<usize> = (0..n).collect();
    let mut lr = cfg.lr;
    let mut history = History::default();
    let mut start_epoch = 0usize;
    let mut ckpt_shards: Option<usize> = None;
    let ckpt_path = cfg.checkpoint_dir.as_ref().map(|d| d.join("train.ckpt"));
    if let Some(path) = &ckpt_path {
        if cfg.checkpoint_every > 0 {
            if let Some(dir) = path.parent() {
                std::fs::create_dir_all(dir).map_err(|e| {
                    NnError::Persist(crate::persist::PersistError::Io {
                        path: dir.to_path_buf(),
                        op: "mkdir",
                        detail: e.to_string(),
                    })
                })?;
            }
        }
        if path.exists() {
            let ckpt = persist::load_checkpoint(path)?;
            if ckpt.order.len() != n {
                return Err(NnError::Persist(
                    crate::persist::PersistError::StateMismatch(format!(
                        "checkpoint was taken with {} training samples, run has {n}",
                        ckpt.order.len()
                    )),
                ));
            }
            if ckpt.epochs_done > cfg.epochs {
                return Err(NnError::Config(format!(
                    "checkpoint already has {} epochs done, run asks for {}",
                    ckpt.epochs_done, cfg.epochs
                )));
            }
            persist::restore_state(net, &ckpt.model)?;
            net.zero_grad();
            rng.restore_state(ckpt.rng);
            order = ckpt.order;
            lr = ckpt.lr;
            start_epoch = ckpt.epochs_done;
            history = History::from_epochs(ckpt.history);
            ckpt_shards = Some(ckpt.shards);
            if cfg.verbose {
                println!("resumed from {} at epoch {start_epoch}", path.display());
            }
        }
    }
    // Resolve the shard count. The checkpointed value wins on resume (the
    // reduction order is part of the bitwise trajectory, so an auto-tuned
    // resume must replay the original count even on a different machine);
    // an explicit config value that disagrees with it is an error rather
    // than a silent divergence.
    let shards = match (cfg.shards, ckpt_shards) {
        (Some(k), Some(c)) if k != c => {
            return Err(NnError::Persist(
                crate::persist::PersistError::StateMismatch(format!(
                    "checkpoint was taken with {c} shards, config asks for {k}"
                )),
            ));
        }
        (Some(k), _) => k,
        (None, Some(c)) => c,
        (None, None) => auto_shards(cfg.batch_size, backend::threads()),
    };
    history.resolved_shards = shards;
    // Data-parallel state: one replica + one flat gradient buffer per
    // shard, one reduced buffer, and the fixed per-segment reduction plan
    // — allocated once (after a possible resume restored the primary) and
    // reused across every step of the run.
    let mut replicas: Vec<Box<dyn Layer>> = if shards > 1 {
        (0..shards).map(|_| net.clone_box()).collect()
    } else {
        Vec::new()
    };
    let grad_len = {
        let mut n = 0usize;
        net.visit_grads(&mut |g| n += g.len());
        n
    };
    let mut grad_bufs: Vec<Vec<f32>> = (0..replicas.len()).map(|_| vec![0.0; grad_len]).collect();
    let mut reduced: Vec<f32> = if shards > 1 {
        vec![0.0; grad_len]
    } else {
        Vec::new()
    };
    let segments = if shards > 1 {
        grad_segments(net, grad_len)
    } else {
        Vec::new()
    };
    for epoch in start_epoch..cfg.epochs {
        rng.shuffle(&mut order);
        let mut loss_sum = 0.0f64;
        let mut acc_sum = 0.0f64;
        let mut batches = 0usize;
        for chunk in order.chunks(cfg.batch_size) {
            if shards > 1 {
                let (loss, acc) = sharded_step(
                    net,
                    &mut replicas,
                    &mut grad_bufs,
                    &mut reduced,
                    &segments,
                    train_split.x,
                    train_split.labels,
                    chunk,
                    lr,
                )?;
                loss_sum += loss;
                acc_sum += acc;
                batches += 1;
                continue;
            }
            let xb = gather_rows(train_split.x, chunk);
            let yb: Vec<usize> = chunk.iter().map(|&i| train_split.labels[i]).collect();
            let logits = net.forward(&xb, true)?;
            let (loss, grad) = SoftmaxCrossEntropy::forward(&logits, &yb)?;
            loss_sum += f64::from(loss);
            acc_sum += f64::from(accuracy(&logits, &yb)?);
            batches += 1;
            net.zero_grad();
            net.backward(&grad)?;
            net.update(lr);
        }
        if cfg.scrub_every > 0 && (epoch + 1).is_multiple_of(cfg.scrub_every) {
            if let Some(rep) = scrub_network(net, cfg.scrub_detect, &RepairPolicy::default())? {
                if cfg.verbose {
                    println!(
                        "scrub {:>3}: +{} faults, {} detections, {} repairs, \
                         {} quarantined ({:.1}% analog)",
                        rep.epoch,
                        rep.new_faults,
                        rep.detections,
                        rep.repairs.len(),
                        rep.quarantined_total,
                        100.0 * rep.analog_coverage()
                    );
                }
            }
        }
        let test_acc = match &test {
            Some(t) => Some(evaluate(net, t.x, t.labels, cfg.batch_size)?.1),
            None => None,
        };
        let stats = EpochStats {
            epoch,
            train_loss: (loss_sum / batches as f64) as f32,
            train_acc: (acc_sum / batches as f64) as f32,
            test_acc,
            lr,
        };
        if cfg.verbose {
            match test_acc {
                Some(a) => println!(
                    "epoch {:>3}: loss {:.4} train-acc {:.3} test-acc {:.3} (lr {:.4})",
                    epoch, stats.train_loss, stats.train_acc, a, lr
                ),
                None => println!(
                    "epoch {:>3}: loss {:.4} train-acc {:.3} (lr {:.4})",
                    epoch, stats.train_loss, stats.train_acc, lr
                ),
            }
        }
        history.epochs.push(stats);
        lr *= cfg.lr_decay;
        if cfg.checkpoint_every > 0 && (epoch + 1) % cfg.checkpoint_every == 0 {
            let path = ckpt_path.as_ref().expect("validated above");
            let ckpt = TrainCheckpoint {
                epochs_done: epoch + 1,
                lr,
                shards,
                rng: rng.save_state(),
                order: order.clone(),
                history: history.epochs.clone(),
                model: persist::collect_state(net),
            };
            persist::save_checkpoint(path, &ckpt)?;
        }
    }
    Ok(history)
}

/// Resolves the data-parallel shard count when [`TrainConfig::shards`] is
/// unset: one shard per worker-pool lane, capped so a shard never gets
/// fewer than eight rows of the mini-batch, and always at least one.
/// Depends only on the config and the pool width (`XBAR_THREADS` or
/// hardware), never on runtime timing, so a given machine + config
/// resolves the same count every run; the resolved value is recorded in
/// checkpoints so a resume replays it even where the pool width differs.
pub fn auto_shards(batch_size: usize, lanes: usize) -> usize {
    lanes.max(1).min((batch_size / 8).max(1))
}

/// Minimum reduction-segment length, in floats. Segment plans finer than
/// this (small bias vectors, tiny column groups) are coalesced into their
/// predecessor so per-segment task overhead stays negligible.
const MIN_SEGMENT_LEN: usize = 256;

/// Builds the fixed per-segment reduction plan over `net`'s flat gradient
/// layout: the [`Layer::visit_grad_segments`] boundaries (one segment per
/// `TileGrid` column group for crossbar-mapped weights), coalesced to at
/// least [`MIN_SEGMENT_LEN`] floats. The plan depends only on the model
/// shape. Falls back to one whole-buffer segment if a layer's plan
/// disagrees with its flat gradient length.
fn grad_segments(net: &mut dyn Layer, grad_len: usize) -> Vec<Range<usize>> {
    let mut segs: Vec<Range<usize>> = Vec::new();
    let mut off = 0usize;
    net.visit_grad_segments(&mut |len| {
        if len == 0 {
            return;
        }
        let start = off;
        off += len;
        match segs.last_mut() {
            Some(prev) if prev.len() < MIN_SEGMENT_LEN => prev.end = off,
            _ => segs.push(start..off),
        }
    });
    if off != grad_len {
        debug_assert!(
            false,
            "segment plan covers {off} of {grad_len} gradient floats"
        );
        segs.clear();
    }
    if segs.is_empty() && grad_len > 0 {
        segs.push(0..grad_len);
    }
    segs
}

/// Raw views over the per-shard gradient buffers and the reduced output
/// buffer, shared between concurrent shard writers and segment-reduction
/// readers.
///
/// Safety protocol: every access materialises a slice over one index
/// range only. A shard task writes only its own buffer, at monotonically
/// increasing offsets, and signals a segment's trigger only after its
/// writes passed the segment's end; a reduction task reads shard buffers
/// only within its segment's range, only after all shards signalled it
/// (the scheduler's dependency-count release/acquire chain orders the
/// writes before the reads), and is the unique writer of that range of
/// `reduced`. No two live slices ever overlap.
struct RawBufs {
    shards: Vec<*mut f32>,
    reduced: *mut f32,
    len: usize,
}

// SAFETY: the raw pointers are only dereferenced under the disjoint
// segment-range protocol documented on the struct.
unsafe impl Send for RawBufs {}
unsafe impl Sync for RawBufs {}

impl RawBufs {
    /// Shared view of shard `k`'s floats in `range`.
    ///
    /// # Safety
    ///
    /// Shard `k` must have committed (signalled) `range` already, and no
    /// writer may touch it again this step.
    unsafe fn shard(&self, k: usize, range: &Range<usize>) -> &[f32] {
        debug_assert!(range.end <= self.len);
        std::slice::from_raw_parts(self.shards[k].add(range.start), range.len())
    }

    /// Exclusive view of shard `k`'s floats in `range`.
    ///
    /// # Safety
    ///
    /// Caller must be shard `k`'s own task and must not have signalled any
    /// segment overlapping `range` yet.
    #[allow(clippy::mut_from_ref)]
    unsafe fn shard_mut(&self, k: usize, range: &Range<usize>) -> &mut [f32] {
        debug_assert!(range.end <= self.len);
        std::slice::from_raw_parts_mut(self.shards[k].add(range.start), range.len())
    }

    /// Exclusive view of the reduced buffer's floats in `range`.
    ///
    /// # Safety
    ///
    /// Caller must be the unique reduction task for `range`'s segment.
    #[allow(clippy::mut_from_ref)]
    unsafe fn reduced_mut(&self, range: &Range<usize>) -> &mut [f32] {
        debug_assert!(range.end <= self.len);
        std::slice::from_raw_parts_mut(self.reduced.add(range.start), range.len())
    }
}

/// Signals each segment's reduction trigger exactly once, in segment
/// order, as a shard's flat-gradient commit offset advances past the
/// segment's end. Dropping the guard signals every remaining trigger, so
/// a failed (or short-circuited) shard still releases the deferred
/// reductions instead of deadlocking the scope — their output is garbage
/// in that case, but the step checks shard errors before using it.
struct SegmentSignals<'a> {
    triggers: Vec<backend::Trigger>,
    segments: &'a [Range<usize>],
    next: usize,
}

impl SegmentSignals<'_> {
    fn advance_through(&mut self, committed: usize) {
        while self.next < self.segments.len() && self.segments[self.next].end <= committed {
            self.triggers[self.next].signal();
            self.next += 1;
        }
    }
}

impl Drop for SegmentSignals<'_> {
    fn drop(&mut self) {
        self.advance_through(usize::MAX);
    }
}

/// A shard task's exclusive result slot: `(sum_loss, weighted_acc)` or
/// the first error the shard hit.
type ShardResult = Mutex<Option<Result<(f64, f64), NnError>>>;

/// One shard's slice of a data-parallel step: its model replica, its
/// forked forward-RNG streams, and its batch rows.
struct ShardRun<'a> {
    replica: &'a mut Box<dyn Layer>,
    rngs: Vec<XorShiftRng>,
    rows: Vec<usize>,
}

/// Runs one data-parallel training step over `chunk` (the shuffled row
/// indices of one mini-batch), returning `(mean_loss, mean_accuracy)` for
/// the step.
///
/// Determinism: shard boundaries are a fixed contiguous row split by
/// shard count only; each shard's dropout streams are forked from the
/// primary's persisted streams (`fork(r)` in shard order, advancing the
/// primary so resume replays the same forks); per-row CE gradients are
/// divided by the *total* batch size inside each shard
/// ([`SoftmaxCrossEntropy::forward_scaled`]), making them independent of
/// the split; and the per-shard gradients are combined per reduction
/// segment (`segments`, see [`grad_segments`]) by deferred tasks that sum
/// the shard buffers in fixed shard-index order the moment the last shard
/// commits that segment. The reduced bytes depend only on the shard count
/// and segment plan — never on how many worker threads execute the
/// fan-out or in what order segments complete.
#[allow(clippy::too_many_arguments)] // per-step reuse buffers are all load-bearing
fn sharded_step(
    net: &mut dyn Layer,
    replicas: &mut [Box<dyn Layer>],
    grad_bufs: &mut [Vec<f32>],
    reduced: &mut [f32],
    segments: &[Range<usize>],
    x: &Tensor,
    labels: &[usize],
    chunk: &[usize],
    lr: f32,
) -> Result<(f64, f64), NnError> {
    let shards = replicas.len();
    let b_total = chunk.len();
    // Broadcast: every replica starts the step as an exact copy of the
    // primary (weights, biases, BN parameters and running statistics).
    let state = persist::collect_state(net);
    for rep in replicas.iter_mut() {
        persist::restore_state(rep.as_mut(), &state)?;
    }
    // Pre-fork one dropout stream per (layer stream, shard). Forking
    // advances the primary stream, so the draws are part of the persisted
    // trajectory and a resumed run replays them identically.
    let mut forked: Vec<Vec<XorShiftRng>> = (0..shards).map(|_| Vec::new()).collect();
    net.visit_forward_rngs(&mut |rng| {
        for (r, shard_streams) in forked.iter_mut().enumerate() {
            shard_streams.push(rng.fork(r as u64));
        }
    });
    // Fixed contiguous row split: shard r takes base + (r < rem) rows.
    let base = b_total / shards;
    let rem = b_total % shards;
    let mut offset = 0usize;
    let mut tasks: Vec<ShardRun<'_>> = Vec::with_capacity(shards);
    for (r, replica) in replicas.iter_mut().enumerate() {
        let cnt = base + usize::from(r < rem);
        let rows = chunk[offset..offset + cnt].to_vec();
        offset += cnt;
        tasks.push(ShardRun {
            replica,
            rngs: std::mem::take(&mut forked[r]),
            rows,
        });
    }
    let shard_counts: Vec<usize> = tasks.iter().map(|t| t.rows.len()).collect();
    let raw = Arc::new(RawBufs {
        shards: grad_bufs.iter_mut().map(|b| b.as_mut_ptr()).collect(),
        reduced: reduced.as_mut_ptr(),
        len: reduced.len(),
    });
    // One result slot per shard, written exclusively by that shard's task.
    let results: Vec<ShardResult> = (0..shards).map(|_| Mutex::new(None)).collect();
    // Fan out on the task-graph scheduler. Each segment's reduction is a
    // deferred task with a dependency count of `shards`; each shard task
    // signals segment g the moment its flat-gradient commit passes g's
    // end, so reductions start while later layers are still flattening.
    // A reduction sums the shard buffers in fixed shard-index order, so
    // the reduced bytes are independent of execution and steal order; in
    // forced-serial/inline mode everything runs at the signalling point
    // in submission order, producing the same bytes.
    backend::scope(|s| {
        let triggers: Vec<backend::Trigger> = segments
            .iter()
            .map(|seg| {
                let raw = Arc::clone(&raw);
                let seg = seg.clone();
                s.defer(shards, move || {
                    // SAFETY: all `shards` signals for `seg` fired, so
                    // every shard's writes to this range are committed and
                    // final; this task is the unique writer of
                    // `reduced[seg]`.
                    unsafe {
                        let dst = raw.reduced_mut(&seg);
                        dst.copy_from_slice(raw.shard(0, &seg));
                        for k in 1..raw.shards.len() {
                            elementwise::axpy(dst, raw.shard(k, &seg), 1.0);
                        }
                    }
                })
            })
            .collect();
        for (r, task) in tasks.into_iter().enumerate() {
            let raw = Arc::clone(&raw);
            let trigs = triggers.clone();
            let slot = &results[r];
            s.spawn(move || {
                let ShardRun {
                    replica,
                    rngs,
                    rows,
                } = task;
                let mut signals = SegmentSignals {
                    triggers: trigs,
                    segments,
                    next: 0,
                };
                let out = (|| -> Result<(f64, f64), NnError> {
                    let mut streams = rngs.into_iter();
                    replica.visit_forward_rngs(&mut |rng| {
                        if let Some(st) = streams.next() {
                            *rng = st;
                        }
                    });
                    if rows.is_empty() {
                        // SAFETY: shard r's own buffer, nothing signalled.
                        unsafe { raw.shard_mut(r, &(0..raw.len)) }.fill(0.0);
                        signals.advance_through(raw.len);
                        return Ok((0.0, 0.0));
                    }
                    let xb = gather_rows(x, &rows);
                    let yb: Vec<usize> = rows.iter().map(|&i| labels[i]).collect();
                    let logits = replica.forward(&xb, true)?;
                    let (sum_loss, grad) =
                        SoftmaxCrossEntropy::forward_scaled(&logits, &yb, b_total)?;
                    let weighted_acc = f64::from(accuracy(&logits, &yb)?) * rows.len() as f64;
                    replica.zero_grad();
                    replica.backward(&grad)?;
                    let mut off = 0usize;
                    replica.visit_grads(&mut |g| {
                        // SAFETY: shard r's own buffer; no segment
                        // overlapping this range has been signalled yet
                        // (signals trail the commit offset).
                        unsafe { raw.shard_mut(r, &(off..off + g.len())) }
                            .copy_from_slice(g.data());
                        off += g.len();
                        signals.advance_through(off);
                    });
                    Ok((sum_loss, weighted_acc))
                })();
                // The guard releases any segments an error path never
                // reached, so the deferred reductions always fire and the
                // scope can close; the step discards the reduced bytes
                // when a shard failed.
                drop(signals);
                *slot.lock().expect("shard result lock") = Some(out);
            });
        }
    });
    let mut loss_sum = 0.0f64;
    let mut acc_sum = 0.0f64;
    for slot in &results {
        let (l, a) = slot
            .lock()
            .expect("shard result lock")
            .take()
            .expect("every shard task stores a result")?;
        loss_sum += l;
        acc_sum += a;
    }
    // Scatter the reduced gradient into the primary and take the single
    // SGD step there (the update RNG for nonlinear devices is consumed by
    // the primary only).
    let mut off = 0usize;
    net.visit_grads(&mut |g| {
        let n = g.len();
        g.data_mut().copy_from_slice(&reduced[off..off + n]);
        off += n;
    });
    net.update(lr);
    // Combine batch statistics (BN running mean/var): shard-weighted sum
    // in fixed shard order, written back into the primary.
    let mut stat_len = 0usize;
    net.visit_batch_stats(&mut |t| stat_len += t.len());
    if stat_len > 0 {
        let mut combined = vec![0.0f32; stat_len];
        for (rep, &cnt) in replicas.iter_mut().zip(&shard_counts) {
            if cnt == 0 {
                continue;
            }
            let w = cnt as f32 / b_total as f32;
            let mut off = 0usize;
            rep.visit_batch_stats(&mut |t| {
                for (c, &v) in combined[off..off + t.len()].iter_mut().zip(t.data()) {
                    *c += w * v;
                }
                off += t.len();
            });
        }
        let mut off = 0usize;
        net.visit_batch_stats(&mut |t| {
            let n = t.len();
            t.data_mut().copy_from_slice(&combined[off..off + n]);
            off += n;
        });
    }
    Ok((loss_sum / b_total as f64, acc_sum / b_total as f64))
}

/// Evaluates `net` in inference mode, returning `(mean_loss, accuracy)`.
///
/// # Errors
///
/// Returns an error on shape mismatches or a zero batch size.
pub fn evaluate(
    net: &mut dyn Layer,
    x: &Tensor,
    labels: &[usize],
    batch_size: usize,
) -> Result<(f32, f32), NnError> {
    if batch_size == 0 {
        return Err(NnError::Config("batch size must be positive".into()));
    }
    if labels.is_empty() {
        return Ok((0.0, 0.0));
    }
    let idxs: Vec<usize> = (0..labels.len()).collect();
    let mut loss_sum = 0.0f64;
    let mut correct = 0.0f64;
    for chunk in idxs.chunks(batch_size) {
        let xb = gather_rows(x, chunk);
        let yb: Vec<usize> = chunk.iter().map(|&i| labels[i]).collect();
        let logits = net.forward(&xb, false)?;
        let (loss, _) = SoftmaxCrossEntropy::forward(&logits, &yb)?;
        loss_sum += f64::from(loss) * chunk.len() as f64;
        correct += f64::from(accuracy(&logits, &yb)?) * chunk.len() as f64;
    }
    let n = labels.len() as f64;
    Ok(((loss_sum / n) as f32, (correct / n) as f32))
}

/// Runs `x` through `net` in calibration mode (batched), recording
/// activation ranges for post-training quantization — run this on a few
/// representative batches before [`evaluate_quantized`].
///
/// # Errors
///
/// Returns an error on shape mismatches or a zero batch size.
pub fn calibrate(net: &mut dyn Layer, x: &Tensor, batch_size: usize) -> Result<(), NnError> {
    if batch_size == 0 {
        return Err(NnError::Config("batch size must be positive".into()));
    }
    let n = x.shape()[0];
    let idxs: Vec<usize> = (0..n).collect();
    for chunk in idxs.chunks(batch_size) {
        let xb = gather_rows(x, chunk);
        net.calibrate(&xb)?;
    }
    Ok(())
}

/// Evaluates `net` through the quantized inference path
/// ([`Layer::forward_quantized`]), returning `(mean_loss, accuracy)` —
/// the int8 counterpart of [`evaluate`].
///
/// # Errors
///
/// Returns an error on shape mismatches, a zero batch size, or an
/// unsupported device (see [`crate::MappedParam::forward_quantized`]).
pub fn evaluate_quantized(
    net: &mut dyn Layer,
    x: &Tensor,
    labels: &[usize],
    batch_size: usize,
    mode: &QuantReadout,
) -> Result<(f32, f32), NnError> {
    if batch_size == 0 {
        return Err(NnError::Config("batch size must be positive".into()));
    }
    if labels.is_empty() {
        return Ok((0.0, 0.0));
    }
    let idxs: Vec<usize> = (0..labels.len()).collect();
    let mut loss_sum = 0.0f64;
    let mut correct = 0.0f64;
    for chunk in idxs.chunks(batch_size) {
        let xb = gather_rows(x, chunk);
        let yb: Vec<usize> = chunk.iter().map(|&i| labels[i]).collect();
        let logits = net.forward_quantized(&xb, mode)?;
        let (loss, _) = SoftmaxCrossEntropy::forward(&logits, &yb)?;
        loss_sum += f64::from(loss) * chunk.len() as f64;
        correct += f64::from(accuracy(&logits, &yb)?) * chunk.len() as f64;
    }
    let n = labels.len() as f64;
    Ok(((loss_sum / n) as f32, (correct / n) as f32))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dense, Relu, Sequential, WeightKind};
    use xbar_core::Mapping;
    use xbar_device::{DeviceConfig, TileShape};

    /// Asserts two collected state dumps are bitwise identical (plain
    /// `==` would treat `0.0` and `-0.0` as equal).
    fn assert_state_bitwise(s1: &[persist::StateItem], s2: &[persist::StateItem]) {
        assert_eq!(s1.len(), s2.len());
        for (a, b) in s1.iter().zip(s2) {
            match (a, b) {
                (
                    persist::StateItem::Tensor {
                        name: na,
                        value: va,
                    },
                    persist::StateItem::Tensor {
                        name: nb,
                        value: vb,
                    },
                ) => {
                    assert_eq!(na, nb);
                    for (x, y) in va.data().iter().zip(vb.data()) {
                        assert_eq!(x.to_bits(), y.to_bits(), "{na}");
                    }
                }
                (
                    persist::StateItem::Rng {
                        name: na,
                        value: va,
                    },
                    persist::StateItem::Rng {
                        name: nb,
                        value: vb,
                    },
                ) => {
                    assert_eq!(na, nb);
                    assert_eq!(va, vb);
                }
                _ => panic!("state item kind mismatch"),
            }
        }
    }

    /// Two-Gaussian-blob binary classification problem.
    fn blobs(n: usize, seed: u64) -> (Tensor, Vec<usize>) {
        let mut rng = XorShiftRng::new(seed);
        let mut x = Tensor::zeros(&[n, 2]);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let class = i % 2;
            let (cx, cy) = if class == 0 { (-1.0, -1.0) } else { (1.0, 1.0) };
            *x.at_mut(&[i, 0]) = rng.normal_with(cx, 0.4);
            *x.at_mut(&[i, 1]) = rng.normal_with(cy, 0.4);
            labels.push(class);
        }
        (x, labels)
    }

    fn mlp(kind: WeightKind, seed: u64) -> Sequential {
        let mut rng = XorShiftRng::new(seed);
        let mut net = Sequential::new();
        net.push(Dense::new(2, 16, kind, DeviceConfig::ideal(), &mut rng).unwrap());
        net.push(Relu::new());
        net.push(Dense::new(16, 2, kind, DeviceConfig::ideal(), &mut rng).unwrap());
        net
    }

    #[test]
    fn training_learns_blobs_baseline() {
        let (x, labels) = blobs(200, 161);
        let (tx, tlabels) = blobs(100, 162);
        let mut net = mlp(WeightKind::Signed, 163);
        let cfg = TrainConfig {
            epochs: 15,
            batch_size: 16,
            lr: 0.1,
            ..TrainConfig::default()
        };
        let hist = train(
            &mut net,
            Split::new(&x, &labels).unwrap(),
            Some(Split::new(&tx, &tlabels).unwrap()),
            &cfg,
        )
        .unwrap();
        assert!(hist.final_test_acc().unwrap() > 0.95, "{:?}", hist.last());
    }

    #[test]
    fn quantized_evaluation_tracks_fp32_after_calibration() {
        let (x, labels) = blobs(200, 181);
        let (tx, tlabels) = blobs(100, 182);
        // Mapped MLP on an 8-bit device — the configuration the fig5
        // quantized arm and the ci.sh parity gate run.
        let mut rng = XorShiftRng::new(183);
        let mut net = Sequential::new();
        let dev = DeviceConfig::quantized_linear(8);
        net.push(Dense::new(2, 16, WeightKind::Mapped(Mapping::Acm), dev, &mut rng).unwrap());
        net.push(Relu::new());
        net.push(Dense::new(16, 2, WeightKind::Mapped(Mapping::Acm), dev, &mut rng).unwrap());
        let cfg = TrainConfig {
            epochs: 15,
            batch_size: 16,
            lr: 0.1,
            ..TrainConfig::default()
        };
        train(&mut net, Split::new(&x, &labels).unwrap(), None, &cfg).unwrap();
        calibrate(&mut net, &x, 32).unwrap();
        let (_, fp32_acc) = evaluate(&mut net, &tx, &tlabels, 32).unwrap();
        let mode = QuantReadout::default();
        let (_, int8_acc) = evaluate_quantized(&mut net, &tx, &tlabels, 32, &mode).unwrap();
        assert!(fp32_acc > 0.9, "fp32 {fp32_acc}");
        assert!(
            (fp32_acc - int8_acc).abs() <= 0.01 + f32::EPSILON,
            "int8 {int8_acc} vs fp32 {fp32_acc}"
        );
        // The integer path is bitwise thread-invariant.
        backend::force_serial(true);
        let (_, serial_acc) = evaluate_quantized(&mut net, &tx, &tlabels, 32, &mode).unwrap();
        backend::force_serial(false);
        assert_eq!(serial_acc.to_bits(), int8_acc.to_bits());
    }

    #[test]
    fn training_learns_blobs_all_mappings() {
        let (x, labels) = blobs(200, 164);
        let (tx, tlabels) = blobs(100, 165);
        for mapping in Mapping::ALL {
            let mut net = mlp(WeightKind::Mapped(mapping), 166);
            let cfg = TrainConfig {
                epochs: 15,
                batch_size: 16,
                lr: 0.1,
                ..TrainConfig::default()
            };
            let hist = train(
                &mut net,
                Split::new(&x, &labels).unwrap(),
                Some(Split::new(&tx, &tlabels).unwrap()),
                &cfg,
            )
            .unwrap();
            assert!(
                hist.final_test_acc().unwrap() > 0.9,
                "{mapping}: {:?}",
                hist.last()
            );
        }
    }

    #[test]
    fn loss_decreases_over_epochs() {
        let (x, labels) = blobs(100, 167);
        let mut net = mlp(WeightKind::Signed, 168);
        let cfg = TrainConfig {
            epochs: 8,
            batch_size: 10,
            lr: 0.05,
            ..TrainConfig::default()
        };
        let hist = train(&mut net, Split::new(&x, &labels).unwrap(), None, &cfg).unwrap();
        let first = hist.epochs().first().unwrap().train_loss;
        let last = hist.last().unwrap().train_loss;
        assert!(last < first, "{first} -> {last}");
        assert!(hist.last().unwrap().test_acc.is_none());
    }

    #[test]
    fn history_accessors() {
        let (x, labels) = blobs(60, 169);
        let (tx, tl) = blobs(30, 170);
        let mut net = mlp(WeightKind::Signed, 171);
        let cfg = TrainConfig {
            epochs: 3,
            ..TrainConfig::default()
        };
        let hist = train(
            &mut net,
            Split::new(&x, &labels).unwrap(),
            Some(Split::new(&tx, &tl).unwrap()),
            &cfg,
        )
        .unwrap();
        assert_eq!(hist.epochs().len(), 3);
        assert!(hist.best_test_acc().unwrap() >= hist.final_test_acc().unwrap() - 1e-6);
        let e = hist.last().unwrap();
        assert!((e.train_error_pct() - 100.0 * (1.0 - e.train_acc)).abs() < 1e-5);
    }

    #[test]
    fn config_validation() {
        let (x, labels) = blobs(10, 172);
        let mut net = mlp(WeightKind::Signed, 173);
        let bad_batch = TrainConfig {
            batch_size: 0,
            ..TrainConfig::default()
        };
        assert!(train(&mut net, Split::new(&x, &labels).unwrap(), None, &bad_batch).is_err());
        let bad_lr = TrainConfig {
            lr: -1.0,
            ..TrainConfig::default()
        };
        assert!(train(&mut net, Split::new(&x, &labels).unwrap(), None, &bad_lr).is_err());
        assert!(Split::new(&x, &labels[..5]).is_err());
        // A checkpoint cadence that is not a multiple of the scrub cadence
        // would break bitwise resume; it must be rejected up front.
        let bad_cadence = TrainConfig {
            scrub_every: 3,
            checkpoint_every: 4,
            checkpoint_dir: Some(std::env::temp_dir().join("xbar-cadence-test")),
            ..TrainConfig::default()
        };
        let err = train(
            &mut net,
            Split::new(&x, &labels).unwrap(),
            None,
            &bad_cadence,
        );
        match err {
            Err(NnError::Config(msg)) => assert!(msg.contains("scrub_every"), "{msg}"),
            other => panic!("cadence mismatch must be a config error, got {other:?}"),
        }
    }

    #[test]
    fn evaluate_on_empty_set() {
        let mut net = mlp(WeightKind::Signed, 174);
        let x = Tensor::zeros(&[0, 2]);
        assert_eq!(evaluate(&mut net, &x, &[], 8).unwrap(), (0.0, 0.0));
    }

    #[test]
    fn gather_rows_copies_selected_samples() {
        let x = Tensor::from_vec((0..12).map(|v| v as f32).collect(), &[4, 3]).unwrap();
        let g = gather_rows(&x, &[2, 0]);
        assert_eq!(g.shape(), &[2, 3]);
        assert_eq!(g.data(), &[6.0, 7.0, 8.0, 0.0, 1.0, 2.0]);
    }

    #[test]
    fn sharded_training_learns_blobs() {
        let (x, labels) = blobs(200, 180);
        let (tx, tlabels) = blobs(100, 181);
        let mut net = mlp(WeightKind::Signed, 182);
        let cfg = TrainConfig {
            epochs: 15,
            batch_size: 16,
            lr: 0.1,
            shards: Some(4),
            ..TrainConfig::default()
        };
        let hist = train(
            &mut net,
            Split::new(&x, &labels).unwrap(),
            Some(Split::new(&tx, &tlabels).unwrap()),
            &cfg,
        )
        .unwrap();
        assert!(hist.final_test_acc().unwrap() > 0.95, "{:?}", hist.last());
        assert_eq!(hist.resolved_shards(), 4);
    }

    #[test]
    fn sharded_training_is_serial_parallel_bitwise() {
        // The determinism contract: for a fixed shard count, training is
        // bitwise identical whether the fan-out runs serially or on the
        // pool. (Forced-serial vs pooled toggling is safe here because the
        // contract says results never change — only wall-clock.)
        let (x, labels) = blobs(64, 183);
        let run = |serial: bool| {
            xbar_tensor::backend::force_serial(serial);
            let mut net = mlp(WeightKind::Mapped(Mapping::Acm), 184);
            let cfg = TrainConfig {
                epochs: 3,
                batch_size: 16,
                shards: Some(4),
                ..TrainConfig::default()
            };
            let hist = train(&mut net, Split::new(&x, &labels).unwrap(), None, &cfg).unwrap();
            xbar_tensor::backend::force_serial(false);
            (hist, persist::collect_state(&mut net))
        };
        let (h1, s1) = run(true);
        let (h2, s2) = run(false);
        assert_eq!(h1, h2);
        assert_state_bitwise(&s1, &s2);
    }

    #[test]
    fn sharded_run_is_repeatable() {
        let (x, labels) = blobs(60, 185);
        let run = || {
            let mut net = mlp(WeightKind::Mapped(Mapping::DoubleElement), 186);
            let cfg = TrainConfig {
                epochs: 2,
                batch_size: 10,
                shards: Some(3),
                ..TrainConfig::default()
            };
            train(&mut net, Split::new(&x, &labels).unwrap(), None, &cfg)
                .unwrap()
                .last()
                .unwrap()
                .train_loss
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn more_shards_than_batch_rows_is_ok() {
        // batch_size 2 with 4 shards leaves two shards empty each step.
        let (x, labels) = blobs(6, 187);
        let mut net = mlp(WeightKind::Signed, 188);
        let cfg = TrainConfig {
            epochs: 2,
            batch_size: 2,
            shards: Some(4),
            ..TrainConfig::default()
        };
        let hist = train(&mut net, Split::new(&x, &labels).unwrap(), None, &cfg).unwrap();
        assert_eq!(hist.epochs().len(), 2);
        assert!(hist.last().unwrap().train_loss.is_finite());
    }

    #[test]
    fn zero_shards_is_rejected() {
        let (x, labels) = blobs(10, 189);
        let mut net = mlp(WeightKind::Signed, 190);
        let cfg = TrainConfig {
            shards: Some(0),
            ..TrainConfig::default()
        };
        assert!(train(&mut net, Split::new(&x, &labels).unwrap(), None, &cfg).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, labels) = blobs(80, 175);
        let run = |seed| {
            let mut net = mlp(WeightKind::Mapped(Mapping::Acm), 176);
            let cfg = TrainConfig {
                epochs: 3,
                seed,
                ..TrainConfig::default()
            };
            train(&mut net, Split::new(&x, &labels).unwrap(), None, &cfg)
                .unwrap()
                .last()
                .unwrap()
                .train_loss
        };
        assert_eq!(run(1), run(1));
        // Different shuffling order almost surely gives a different loss.
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn auto_shards_caps_by_rows_and_lanes() {
        assert_eq!(auto_shards(32, 8), 4); // at least 8 rows per shard
        assert_eq!(auto_shards(256, 4), 4); // lane-bound
        assert_eq!(auto_shards(4, 8), 1); // tiny batch stays single-shard
        assert_eq!(auto_shards(0, 0), 1); // degenerate inputs stay positive
    }

    #[test]
    fn auto_shards_resolution_is_recorded() {
        let (x, labels) = blobs(60, 191);
        let mut net = mlp(WeightKind::Signed, 192);
        let cfg = TrainConfig {
            epochs: 1,
            batch_size: 16,
            ..TrainConfig::default()
        };
        assert_eq!(cfg.shards, None);
        let hist = train(&mut net, Split::new(&x, &labels).unwrap(), None, &cfg).unwrap();
        assert_eq!(
            hist.resolved_shards(),
            auto_shards(16, xbar_tensor::backend::threads())
        );
        assert!(hist.resolved_shards() >= 1);
    }

    /// Random 64-feature two-class data plus a tiled crossbar MLP whose
    /// weight gradient splits into several `TileGrid` column-group
    /// reduction segments (16-column tiles over 64 outputs).
    fn tiled_net_and_data(seed: u64) -> (Tensor, Vec<usize>, Sequential) {
        let mut rng = XorShiftRng::new(seed);
        let n = 48;
        let mut x = Tensor::zeros(&[n, 64]);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let class = i % 2;
            let mean = if class == 0 { -0.5 } else { 0.5 };
            for j in 0..64 {
                *x.at_mut(&[i, j]) = rng.normal_with(mean, 1.0);
            }
            labels.push(class);
        }
        let dev = DeviceConfig::ideal().with_tile_shape(Some(TileShape::new(16, 16)));
        let mut wrng = XorShiftRng::new(seed ^ 0xA5);
        let mut net = Sequential::new();
        net.push(Dense::new(64, 64, WeightKind::Mapped(Mapping::Acm), dev, &mut wrng).unwrap());
        net.push(Relu::new());
        net.push(Dense::new(64, 2, WeightKind::Mapped(Mapping::Acm), dev, &mut wrng).unwrap());
        (x, labels, net)
    }

    #[test]
    fn tiled_grad_segments_follow_column_groups() {
        let (_, _, mut net) = tiled_net_and_data(200);
        let grad_len = {
            let mut n = 0usize;
            net.visit_grads(&mut |g| n += g.len());
            n
        };
        let segs = grad_segments(&mut net, grad_len);
        assert!(segs.len() > 1, "tiled net should split, got {segs:?}");
        assert_eq!(segs.first().unwrap().start, 0);
        assert_eq!(segs.last().unwrap().end, grad_len);
        for w in segs.windows(2) {
            assert_eq!(w[0].end, w[1].start, "plan must be contiguous");
            assert!(!w[0].is_empty());
        }
    }

    #[test]
    fn tiled_sharded_training_is_serial_parallel_bitwise() {
        // Multi-segment variant of the determinism contract: per-column-
        // group reductions commit in steal-dependent order, but the bytes
        // must match the forced-serial run exactly.
        let (x, labels, _) = tiled_net_and_data(201);
        let run = |serial: bool| {
            xbar_tensor::backend::force_serial(serial);
            let (_, _, mut net) = tiled_net_and_data(201);
            let cfg = TrainConfig {
                epochs: 2,
                batch_size: 12,
                shards: Some(3),
                ..TrainConfig::default()
            };
            let hist = train(&mut net, Split::new(&x, &labels).unwrap(), None, &cfg).unwrap();
            xbar_tensor::backend::force_serial(false);
            (hist, persist::collect_state(&mut net))
        };
        let (h1, s1) = run(true);
        let (h2, s2) = run(false);
        assert_eq!(h1, h2);
        assert_state_bitwise(&s1, &s2);
    }

    #[test]
    fn resume_replays_recorded_shards_and_rejects_mismatch() {
        let (x, labels) = blobs(40, 195);
        let dir = std::env::temp_dir().join(format!("xbar-shards-resume-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let base_cfg = TrainConfig {
            epochs: 2,
            batch_size: 10,
            checkpoint_every: 1,
            checkpoint_dir: Some(dir.clone()),
            shards: Some(2),
            ..TrainConfig::default()
        };
        let mut net = mlp(WeightKind::Signed, 196);
        train(&mut net, Split::new(&x, &labels).unwrap(), None, &base_cfg).unwrap();
        // A conflicting explicit count must be rejected…
        let conflict = TrainConfig {
            epochs: 3,
            shards: Some(3),
            ..base_cfg.clone()
        };
        let err = train(&mut net, Split::new(&x, &labels).unwrap(), None, &conflict);
        assert!(matches!(err, Err(NnError::Persist(_))), "{err:?}");
        // …while an unset count adopts the checkpointed one instead of
        // re-running the auto-tune on the resuming machine.
        let auto = TrainConfig {
            epochs: 3,
            shards: None,
            ..base_cfg
        };
        let hist = train(&mut net, Split::new(&x, &labels).unwrap(), None, &auto).unwrap();
        assert_eq!(hist.resolved_shards(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
