//! Vanilla-SGD training driver.
//!
//! The paper trains every model "using a vanilla stochastic gradient
//! descent" (Sec. IV); this module provides exactly that — shuffled
//! mini-batches, a constant or step-decayed learning rate, per-epoch
//! train/test statistics — over any [`Layer`] (normally a
//! [`crate::Sequential`]) with [`crate::SoftmaxCrossEntropy`] loss.
//!
//! # Data-parallel training
//!
//! With [`TrainConfig::shards`] > 1 every mini-batch is split into that
//! many fixed, contiguous row shards; each shard runs forward/backward on
//! its own model replica (fanned out over the [`xbar_tensor::backend`]
//! worker pool) and the per-shard gradients are combined by a fixed-order
//! tree reduction before a single update on the primary network. Shard
//! boundaries, dropout streams (forked per shard from the primary's
//! persisted streams), and the reduction order depend only on the shard
//! count — never on the thread count — so an `XBAR_THREADS=N` sharded run
//! is bitwise identical to the same run executed serially, and
//! checkpoint/resume keeps working unchanged (all state lives in the
//! primary network).

use std::path::PathBuf;

use xbar_tensor::rng::XorShiftRng;
use xbar_tensor::{backend, elementwise, Tensor};

use xbar_core::{RepairPolicy, ScrubReport};

use crate::persist::{self, TrainCheckpoint};
use crate::{accuracy, Layer, NnError, SoftmaxCrossEntropy};

/// Hyper-parameters for [`train`].
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Initial learning rate.
    pub lr: f32,
    /// Multiplicative learning-rate decay applied after every epoch
    /// (`1.0` = constant).
    pub lr_decay: f32,
    /// Shuffling seed.
    pub seed: u64,
    /// Print one line per epoch to stdout.
    pub verbose: bool,
    /// Write a crash-safe checkpoint every this many epochs (`0` = never).
    /// Requires [`TrainConfig::checkpoint_dir`].
    pub checkpoint_every: usize,
    /// Directory for the training checkpoint (`train.ckpt`). When the file
    /// already exists, [`train`] resumes from it and reproduces the
    /// uninterrupted run bitwise.
    pub checkpoint_dir: Option<PathBuf>,
    /// Number of data-parallel shards per mini-batch (`1` = classic
    /// single-replica training). The *sharding* changes the floating-point
    /// reduction order relative to `shards = 1`, but for a fixed shard
    /// count the run is bitwise independent of the thread count
    /// (`XBAR_THREADS`) and fully checkpoint/resumable.
    pub shards: usize,
    /// Run one self-healing scrub pass ([`scrub_network`]) every this many
    /// epochs (`0` = never). Only does anything for networks whose mapped
    /// devices carry an active [`xbar_device::LifetimeFaultModel`]; a tick
    /// on a wear-free network is a bitwise no-op. When checkpointing is
    /// also on, `checkpoint_every` must be a multiple of `scrub_every` so
    /// every checkpoint lands on a tick boundary and a resumed run replays
    /// the scrub schedule bitwise.
    pub scrub_every: usize,
    /// Whether scrub passes run the checksum detection + staged repair +
    /// quarantine loop (`true`), or only the refresh programming the
    /// maintenance-free baseline gets (`false`).
    pub scrub_detect: bool,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 10,
            batch_size: 32,
            lr: 0.05,
            lr_decay: 0.95,
            seed: 0x7EA1,
            verbose: false,
            checkpoint_every: 0,
            checkpoint_dir: None,
            shards: 1,
            scrub_every: 0,
            scrub_detect: true,
        }
    }
}

/// Runs one self-healing scrub tick over every crossbar-mapped parameter
/// of `net` (see [`crate::MappedParam::scrub_tick`]) and merges the
/// per-array [`ScrubReport`]s. Returns `None` when no parameter has
/// scrubbing active — in which case nothing was touched, bitwise.
///
/// # Errors
///
/// Propagates the first per-parameter failure (invalid health state or a
/// failed tile-local remap).
pub fn scrub_network(
    net: &mut dyn Layer,
    detect: bool,
    policy: &RepairPolicy,
) -> Result<Option<ScrubReport>, NnError> {
    let mut merged: Option<ScrubReport> = None;
    let mut first_err: Option<NnError> = None;
    net.visit_mapped(&mut |p| {
        if first_err.is_some() {
            return;
        }
        match p.scrub_tick(detect, policy) {
            Ok(Some(r)) => {
                merged = Some(match merged.take() {
                    None => r,
                    Some(mut acc) => {
                        acc.epoch = acc.epoch.max(r.epoch);
                        acc.new_faults += r.new_faults;
                        acc.detections += r.detections;
                        acc.repairs.extend(r.repairs);
                        acc.quarantined_now += r.quarantined_now;
                        acc.quarantined_total += r.quarantined_total;
                        acc.analog_tiles += r.analog_tiles;
                        acc.total_tiles += r.total_tiles;
                        acc.exhausted_cells += r.exhausted_cells;
                        acc
                    }
                });
            }
            Ok(None) => {}
            Err(e) => first_err = Some(e),
        }
    });
    match first_err {
        Some(e) => Err(e),
        None => Ok(merged),
    }
}

/// Statistics for one training epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean training loss over the epoch.
    pub train_loss: f32,
    /// Training accuracy over the epoch (running, pre-update batches).
    pub train_acc: f32,
    /// Test accuracy after the epoch (if a test set was provided).
    pub test_acc: Option<f32>,
    /// Learning rate used this epoch.
    pub lr: f32,
}

impl EpochStats {
    /// Training error percentage, `100·(1 − train_acc)` — the paper's
    /// Fig. 5a/5e y-axis.
    pub fn train_error_pct(&self) -> f32 {
        100.0 * (1.0 - self.train_acc)
    }

    /// Test error percentage, if a test set was provided.
    pub fn test_error_pct(&self) -> Option<f32> {
        self.test_acc.map(|a| 100.0 * (1.0 - a))
    }
}

/// Per-epoch history of a training run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct History {
    epochs: Vec<EpochStats>,
}

impl History {
    /// Builds a history from pre-recorded epoch statistics (e.g. a resumed
    /// checkpoint).
    pub fn from_epochs(epochs: Vec<EpochStats>) -> Self {
        Self { epochs }
    }

    /// All epoch records, in order.
    pub fn epochs(&self) -> &[EpochStats] {
        &self.epochs
    }

    /// The final epoch's statistics.
    pub fn last(&self) -> Option<&EpochStats> {
        self.epochs.last()
    }

    /// Final test accuracy, if recorded.
    pub fn final_test_acc(&self) -> Option<f32> {
        self.last().and_then(|e| e.test_acc)
    }

    /// Best (maximum) test accuracy across epochs, if recorded.
    pub fn best_test_acc(&self) -> Option<f32> {
        self.epochs
            .iter()
            .filter_map(|e| e.test_acc)
            .fold(None, |best, a| Some(best.map_or(a, |b: f32| b.max(a))))
    }
}

/// A labelled dataset split: images/features plus integer class labels.
///
/// The feature tensor's first dimension is the sample index; the rest is
/// the per-sample shape (e.g. `(n, c, h, w)` images or `(n, d)` features).
#[derive(Debug, Clone)]
pub struct Split<'a> {
    /// Feature tensor, sample-major.
    pub x: &'a Tensor,
    /// One label per sample.
    pub labels: &'a [usize],
}

impl<'a> Split<'a> {
    /// Creates a split, validating that counts agree.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Config`] if the label count disagrees with the
    /// first tensor dimension.
    pub fn new(x: &'a Tensor, labels: &'a [usize]) -> Result<Self, NnError> {
        if x.ndim() == 0 || x.shape()[0] != labels.len() {
            return Err(NnError::Config(format!(
                "{} samples but {} labels",
                x.shape().first().copied().unwrap_or(0),
                labels.len()
            )));
        }
        Ok(Self { x, labels })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the split is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }
}

/// Copies the rows at `idxs` (first-dimension indices) into a new tensor.
pub(crate) fn gather_rows(x: &Tensor, idxs: &[usize]) -> Tensor {
    let sample: usize = x.shape()[1..].iter().product();
    let mut shape = x.shape().to_vec();
    shape[0] = idxs.len();
    let mut out = Tensor::zeros(&shape);
    for (row, &i) in idxs.iter().enumerate() {
        out.data_mut()[row * sample..(row + 1) * sample]
            .copy_from_slice(&x.data()[i * sample..(i + 1) * sample]);
    }
    out
}

/// Trains `net` with softmax cross-entropy under vanilla SGD.
///
/// Returns the per-epoch [`History`]. When `test` is provided, test
/// accuracy is evaluated after each epoch (inference mode — batch norm uses
/// running statistics, caches are not retained).
///
/// # Crash safety
///
/// With [`TrainConfig::checkpoint_every`] set and a
/// [`TrainConfig::checkpoint_dir`], the full training state (model,
/// shuffling RNG, sample order, learning rate, history) is written
/// atomically to `<dir>/train.ckpt` every `checkpoint_every` epochs. When
/// that file already exists at the next call, training *resumes* from it —
/// a run killed at epoch *k* and restarted reproduces the uninterrupted
/// run's [`History`] and final weights bitwise (given the same network
/// construction, data, and config).
///
/// # Errors
///
/// Returns an error on empty data, a zero batch size, any layer
/// shape/state failure, or a corrupt/incompatible checkpoint.
pub fn train(
    net: &mut dyn Layer,
    train_split: Split<'_>,
    test: Option<Split<'_>>,
    cfg: &TrainConfig,
) -> Result<History, NnError> {
    if train_split.is_empty() {
        return Err(NnError::Config("empty training set".into()));
    }
    if cfg.batch_size == 0 {
        return Err(NnError::Config("batch size must be positive".into()));
    }
    if cfg.lr <= 0.0 || !cfg.lr.is_finite() {
        return Err(NnError::Config(format!("bad learning rate {}", cfg.lr)));
    }
    if cfg.checkpoint_every > 0 && cfg.checkpoint_dir.is_none() {
        return Err(NnError::Config(
            "checkpoint_every set without checkpoint_dir".into(),
        ));
    }
    if cfg.shards == 0 {
        return Err(NnError::Config("shard count must be positive".into()));
    }
    if cfg.scrub_every > 0
        && cfg.checkpoint_every > 0
        && !cfg.checkpoint_every.is_multiple_of(cfg.scrub_every)
    {
        // A checkpoint between two ticks of the same scrub interval would
        // resume with a scrub due at a different epoch than the
        // uninterrupted run ran it, breaking bitwise resume.
        return Err(NnError::Config(format!(
            "checkpoint_every ({}) must be a multiple of scrub_every ({}) \
             so every checkpoint lands on a scrub boundary",
            cfg.checkpoint_every, cfg.scrub_every
        )));
    }
    // Data-parallel state: one replica + one flat gradient buffer per
    // shard, allocated once and reused across every step of the run.
    let mut replicas: Vec<Box<dyn Layer>> = if cfg.shards > 1 {
        (0..cfg.shards).map(|_| net.clone_box()).collect()
    } else {
        Vec::new()
    };
    let grad_len = {
        let mut n = 0usize;
        net.visit_grads(&mut |g| n += g.len());
        n
    };
    let mut grad_bufs: Vec<Vec<f32>> = (0..replicas.len()).map(|_| vec![0.0; grad_len]).collect();
    let mut rng = XorShiftRng::new(cfg.seed);
    let n = train_split.len();
    let mut order: Vec<usize> = (0..n).collect();
    let mut lr = cfg.lr;
    let mut history = History::default();
    let mut start_epoch = 0usize;
    let ckpt_path = cfg.checkpoint_dir.as_ref().map(|d| d.join("train.ckpt"));
    if let Some(path) = &ckpt_path {
        if cfg.checkpoint_every > 0 {
            if let Some(dir) = path.parent() {
                std::fs::create_dir_all(dir).map_err(|e| {
                    NnError::Persist(crate::persist::PersistError::Io {
                        path: dir.to_path_buf(),
                        op: "mkdir",
                        detail: e.to_string(),
                    })
                })?;
            }
        }
        if path.exists() {
            let ckpt = persist::load_checkpoint(path)?;
            if ckpt.order.len() != n {
                return Err(NnError::Persist(
                    crate::persist::PersistError::StateMismatch(format!(
                        "checkpoint was taken with {} training samples, run has {n}",
                        ckpt.order.len()
                    )),
                ));
            }
            if ckpt.epochs_done > cfg.epochs {
                return Err(NnError::Config(format!(
                    "checkpoint already has {} epochs done, run asks for {}",
                    ckpt.epochs_done, cfg.epochs
                )));
            }
            persist::restore_state(net, &ckpt.model)?;
            net.zero_grad();
            rng.restore_state(ckpt.rng);
            order = ckpt.order;
            lr = ckpt.lr;
            start_epoch = ckpt.epochs_done;
            history = History::from_epochs(ckpt.history);
            if cfg.verbose {
                println!("resumed from {} at epoch {start_epoch}", path.display());
            }
        }
    }
    for epoch in start_epoch..cfg.epochs {
        rng.shuffle(&mut order);
        let mut loss_sum = 0.0f64;
        let mut acc_sum = 0.0f64;
        let mut batches = 0usize;
        for chunk in order.chunks(cfg.batch_size) {
            if cfg.shards > 1 {
                let (loss, acc) = sharded_step(
                    net,
                    &mut replicas,
                    &mut grad_bufs,
                    train_split.x,
                    train_split.labels,
                    chunk,
                    lr,
                )?;
                loss_sum += loss;
                acc_sum += acc;
                batches += 1;
                continue;
            }
            let xb = gather_rows(train_split.x, chunk);
            let yb: Vec<usize> = chunk.iter().map(|&i| train_split.labels[i]).collect();
            let logits = net.forward(&xb, true)?;
            let (loss, grad) = SoftmaxCrossEntropy::forward(&logits, &yb)?;
            loss_sum += f64::from(loss);
            acc_sum += f64::from(accuracy(&logits, &yb)?);
            batches += 1;
            net.zero_grad();
            net.backward(&grad)?;
            net.update(lr);
        }
        if cfg.scrub_every > 0 && (epoch + 1).is_multiple_of(cfg.scrub_every) {
            if let Some(rep) = scrub_network(net, cfg.scrub_detect, &RepairPolicy::default())? {
                if cfg.verbose {
                    println!(
                        "scrub {:>3}: +{} faults, {} detections, {} repairs, \
                         {} quarantined ({:.1}% analog)",
                        rep.epoch,
                        rep.new_faults,
                        rep.detections,
                        rep.repairs.len(),
                        rep.quarantined_total,
                        100.0 * rep.analog_coverage()
                    );
                }
            }
        }
        let test_acc = match &test {
            Some(t) => Some(evaluate(net, t.x, t.labels, cfg.batch_size)?.1),
            None => None,
        };
        let stats = EpochStats {
            epoch,
            train_loss: (loss_sum / batches as f64) as f32,
            train_acc: (acc_sum / batches as f64) as f32,
            test_acc,
            lr,
        };
        if cfg.verbose {
            match test_acc {
                Some(a) => println!(
                    "epoch {:>3}: loss {:.4} train-acc {:.3} test-acc {:.3} (lr {:.4})",
                    epoch, stats.train_loss, stats.train_acc, a, lr
                ),
                None => println!(
                    "epoch {:>3}: loss {:.4} train-acc {:.3} (lr {:.4})",
                    epoch, stats.train_loss, stats.train_acc, lr
                ),
            }
        }
        history.epochs.push(stats);
        lr *= cfg.lr_decay;
        if cfg.checkpoint_every > 0 && (epoch + 1) % cfg.checkpoint_every == 0 {
            let path = ckpt_path.as_ref().expect("validated above");
            let ckpt = TrainCheckpoint {
                epochs_done: epoch + 1,
                lr,
                rng: rng.save_state(),
                order: order.clone(),
                history: history.epochs.clone(),
                model: persist::collect_state(net),
            };
            persist::save_checkpoint(path, &ckpt)?;
        }
    }
    Ok(history)
}

/// One shard's slice of a data-parallel step: its model replica, its flat
/// gradient buffer, its forked forward-RNG streams, and its batch rows.
struct ShardRun<'a> {
    replica: &'a mut Box<dyn Layer>,
    grad_buf: &'a mut Vec<f32>,
    rngs: Vec<XorShiftRng>,
    rows: Vec<usize>,
}

/// Runs one data-parallel training step over `chunk` (the shuffled row
/// indices of one mini-batch), returning `(mean_loss, mean_accuracy)` for
/// the step.
///
/// Determinism: shard boundaries are a fixed contiguous row split by
/// shard count only; each shard's dropout streams are forked from the
/// primary's persisted streams (`fork(r)` in shard order, advancing the
/// primary so resume replays the same forks); per-row CE gradients are
/// divided by the *total* batch size inside each shard
/// ([`SoftmaxCrossEntropy::forward_scaled`]), making them independent of
/// the split; and the per-shard gradients are combined by a fixed-order
/// stride-doubling tree reduction on the calling thread. Nothing above
/// depends on how many worker threads execute the fan-out.
fn sharded_step(
    net: &mut dyn Layer,
    replicas: &mut [Box<dyn Layer>],
    grad_bufs: &mut [Vec<f32>],
    x: &Tensor,
    labels: &[usize],
    chunk: &[usize],
    lr: f32,
) -> Result<(f64, f64), NnError> {
    let shards = replicas.len();
    let b_total = chunk.len();
    // Broadcast: every replica starts the step as an exact copy of the
    // primary (weights, biases, BN parameters and running statistics).
    let state = persist::collect_state(net);
    for rep in replicas.iter_mut() {
        persist::restore_state(rep.as_mut(), &state)?;
    }
    // Pre-fork one dropout stream per (layer stream, shard). Forking
    // advances the primary stream, so the draws are part of the persisted
    // trajectory and a resumed run replays them identically.
    let mut forked: Vec<Vec<XorShiftRng>> = (0..shards).map(|_| Vec::new()).collect();
    net.visit_forward_rngs(&mut |rng| {
        for (r, shard_streams) in forked.iter_mut().enumerate() {
            shard_streams.push(rng.fork(r as u64));
        }
    });
    // Fixed contiguous row split: shard r takes base + (r < rem) rows.
    let base = b_total / shards;
    let rem = b_total % shards;
    let mut offset = 0usize;
    let mut tasks: Vec<ShardRun<'_>> = Vec::with_capacity(shards);
    for ((r, replica), grad_buf) in replicas.iter_mut().enumerate().zip(grad_bufs.iter_mut()) {
        let cnt = base + usize::from(r < rem);
        let rows = chunk[offset..offset + cnt].to_vec();
        offset += cnt;
        tasks.push(ShardRun {
            replica,
            grad_buf,
            rngs: std::mem::take(&mut forked[r]),
            rows,
        });
    }
    let shard_counts: Vec<usize> = tasks.iter().map(|t| t.rows.len()).collect();
    // Fan out: forward + scaled loss + backward + gradient flatten, one
    // task per shard. Workers run nested kernels inline; results are
    // shard-indexed, so completion order is irrelevant.
    let results = backend::parallel_map(tasks, |_, task| -> Result<(f64, f64), NnError> {
        let ShardRun {
            replica,
            grad_buf,
            rngs,
            rows,
        } = task;
        let mut streams = rngs.into_iter();
        replica.visit_forward_rngs(&mut |rng| {
            if let Some(s) = streams.next() {
                *rng = s;
            }
        });
        if rows.is_empty() {
            grad_buf.fill(0.0);
            return Ok((0.0, 0.0));
        }
        let xb = gather_rows(x, &rows);
        let yb: Vec<usize> = rows.iter().map(|&i| labels[i]).collect();
        let logits = replica.forward(&xb, true)?;
        let (sum_loss, grad) = SoftmaxCrossEntropy::forward_scaled(&logits, &yb, b_total)?;
        let weighted_acc = f64::from(accuracy(&logits, &yb)?) * rows.len() as f64;
        replica.zero_grad();
        replica.backward(&grad)?;
        let mut off = 0usize;
        replica.visit_grads(&mut |g| {
            grad_buf[off..off + g.len()].copy_from_slice(g.data());
            off += g.len();
        });
        Ok((sum_loss, weighted_acc))
    });
    let mut loss_sum = 0.0f64;
    let mut acc_sum = 0.0f64;
    for res in results {
        let (l, a) = res?;
        loss_sum += l;
        acc_sum += a;
    }
    // Fixed-order tree reduction (stride doubling) of the shard gradient
    // buffers into buffer 0. `axpy(…, 1.0)` adds exactly, and the
    // combination tree depends only on the shard count.
    let mut stride = 1usize;
    while stride < shards {
        let mut i = 0usize;
        while i + stride < shards {
            let (head, tail) = grad_bufs.split_at_mut(i + stride);
            elementwise::axpy(&mut head[i], &tail[0], 1.0);
            i += 2 * stride;
        }
        stride *= 2;
    }
    // Scatter the reduced gradient into the primary and take the single
    // SGD step there (the update RNG for nonlinear devices is consumed by
    // the primary only).
    let mut off = 0usize;
    net.visit_grads(&mut |g| {
        let n = g.len();
        g.data_mut().copy_from_slice(&grad_bufs[0][off..off + n]);
        off += n;
    });
    net.update(lr);
    // Combine batch statistics (BN running mean/var): shard-weighted sum
    // in fixed shard order, written back into the primary.
    let mut stat_len = 0usize;
    net.visit_batch_stats(&mut |t| stat_len += t.len());
    if stat_len > 0 {
        let mut combined = vec![0.0f32; stat_len];
        for (rep, &cnt) in replicas.iter_mut().zip(&shard_counts) {
            if cnt == 0 {
                continue;
            }
            let w = cnt as f32 / b_total as f32;
            let mut off = 0usize;
            rep.visit_batch_stats(&mut |t| {
                for (c, &v) in combined[off..off + t.len()].iter_mut().zip(t.data()) {
                    *c += w * v;
                }
                off += t.len();
            });
        }
        let mut off = 0usize;
        net.visit_batch_stats(&mut |t| {
            let n = t.len();
            t.data_mut().copy_from_slice(&combined[off..off + n]);
            off += n;
        });
    }
    Ok((loss_sum / b_total as f64, acc_sum / b_total as f64))
}

/// Evaluates `net` in inference mode, returning `(mean_loss, accuracy)`.
///
/// # Errors
///
/// Returns an error on shape mismatches or a zero batch size.
pub fn evaluate(
    net: &mut dyn Layer,
    x: &Tensor,
    labels: &[usize],
    batch_size: usize,
) -> Result<(f32, f32), NnError> {
    if batch_size == 0 {
        return Err(NnError::Config("batch size must be positive".into()));
    }
    if labels.is_empty() {
        return Ok((0.0, 0.0));
    }
    let idxs: Vec<usize> = (0..labels.len()).collect();
    let mut loss_sum = 0.0f64;
    let mut correct = 0.0f64;
    for chunk in idxs.chunks(batch_size) {
        let xb = gather_rows(x, chunk);
        let yb: Vec<usize> = chunk.iter().map(|&i| labels[i]).collect();
        let logits = net.forward(&xb, false)?;
        let (loss, _) = SoftmaxCrossEntropy::forward(&logits, &yb)?;
        loss_sum += f64::from(loss) * chunk.len() as f64;
        correct += f64::from(accuracy(&logits, &yb)?) * chunk.len() as f64;
    }
    let n = labels.len() as f64;
    Ok(((loss_sum / n) as f32, (correct / n) as f32))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dense, Relu, Sequential, WeightKind};
    use xbar_core::Mapping;
    use xbar_device::DeviceConfig;

    /// Two-Gaussian-blob binary classification problem.
    fn blobs(n: usize, seed: u64) -> (Tensor, Vec<usize>) {
        let mut rng = XorShiftRng::new(seed);
        let mut x = Tensor::zeros(&[n, 2]);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let class = i % 2;
            let (cx, cy) = if class == 0 { (-1.0, -1.0) } else { (1.0, 1.0) };
            *x.at_mut(&[i, 0]) = rng.normal_with(cx, 0.4);
            *x.at_mut(&[i, 1]) = rng.normal_with(cy, 0.4);
            labels.push(class);
        }
        (x, labels)
    }

    fn mlp(kind: WeightKind, seed: u64) -> Sequential {
        let mut rng = XorShiftRng::new(seed);
        let mut net = Sequential::new();
        net.push(Dense::new(2, 16, kind, DeviceConfig::ideal(), &mut rng).unwrap());
        net.push(Relu::new());
        net.push(Dense::new(16, 2, kind, DeviceConfig::ideal(), &mut rng).unwrap());
        net
    }

    #[test]
    fn training_learns_blobs_baseline() {
        let (x, labels) = blobs(200, 161);
        let (tx, tlabels) = blobs(100, 162);
        let mut net = mlp(WeightKind::Signed, 163);
        let cfg = TrainConfig {
            epochs: 15,
            batch_size: 16,
            lr: 0.1,
            ..TrainConfig::default()
        };
        let hist = train(
            &mut net,
            Split::new(&x, &labels).unwrap(),
            Some(Split::new(&tx, &tlabels).unwrap()),
            &cfg,
        )
        .unwrap();
        assert!(hist.final_test_acc().unwrap() > 0.95, "{:?}", hist.last());
    }

    #[test]
    fn training_learns_blobs_all_mappings() {
        let (x, labels) = blobs(200, 164);
        let (tx, tlabels) = blobs(100, 165);
        for mapping in Mapping::ALL {
            let mut net = mlp(WeightKind::Mapped(mapping), 166);
            let cfg = TrainConfig {
                epochs: 15,
                batch_size: 16,
                lr: 0.1,
                ..TrainConfig::default()
            };
            let hist = train(
                &mut net,
                Split::new(&x, &labels).unwrap(),
                Some(Split::new(&tx, &tlabels).unwrap()),
                &cfg,
            )
            .unwrap();
            assert!(
                hist.final_test_acc().unwrap() > 0.9,
                "{mapping}: {:?}",
                hist.last()
            );
        }
    }

    #[test]
    fn loss_decreases_over_epochs() {
        let (x, labels) = blobs(100, 167);
        let mut net = mlp(WeightKind::Signed, 168);
        let cfg = TrainConfig {
            epochs: 8,
            batch_size: 10,
            lr: 0.05,
            ..TrainConfig::default()
        };
        let hist = train(&mut net, Split::new(&x, &labels).unwrap(), None, &cfg).unwrap();
        let first = hist.epochs().first().unwrap().train_loss;
        let last = hist.last().unwrap().train_loss;
        assert!(last < first, "{first} -> {last}");
        assert!(hist.last().unwrap().test_acc.is_none());
    }

    #[test]
    fn history_accessors() {
        let (x, labels) = blobs(60, 169);
        let (tx, tl) = blobs(30, 170);
        let mut net = mlp(WeightKind::Signed, 171);
        let cfg = TrainConfig {
            epochs: 3,
            ..TrainConfig::default()
        };
        let hist = train(
            &mut net,
            Split::new(&x, &labels).unwrap(),
            Some(Split::new(&tx, &tl).unwrap()),
            &cfg,
        )
        .unwrap();
        assert_eq!(hist.epochs().len(), 3);
        assert!(hist.best_test_acc().unwrap() >= hist.final_test_acc().unwrap() - 1e-6);
        let e = hist.last().unwrap();
        assert!((e.train_error_pct() - 100.0 * (1.0 - e.train_acc)).abs() < 1e-5);
    }

    #[test]
    fn config_validation() {
        let (x, labels) = blobs(10, 172);
        let mut net = mlp(WeightKind::Signed, 173);
        let bad_batch = TrainConfig {
            batch_size: 0,
            ..TrainConfig::default()
        };
        assert!(train(&mut net, Split::new(&x, &labels).unwrap(), None, &bad_batch).is_err());
        let bad_lr = TrainConfig {
            lr: -1.0,
            ..TrainConfig::default()
        };
        assert!(train(&mut net, Split::new(&x, &labels).unwrap(), None, &bad_lr).is_err());
        assert!(Split::new(&x, &labels[..5]).is_err());
        // A checkpoint cadence that is not a multiple of the scrub cadence
        // would break bitwise resume; it must be rejected up front.
        let bad_cadence = TrainConfig {
            scrub_every: 3,
            checkpoint_every: 4,
            checkpoint_dir: Some(std::env::temp_dir().join("xbar-cadence-test")),
            ..TrainConfig::default()
        };
        let err = train(
            &mut net,
            Split::new(&x, &labels).unwrap(),
            None,
            &bad_cadence,
        );
        match err {
            Err(NnError::Config(msg)) => assert!(msg.contains("scrub_every"), "{msg}"),
            other => panic!("cadence mismatch must be a config error, got {other:?}"),
        }
    }

    #[test]
    fn evaluate_on_empty_set() {
        let mut net = mlp(WeightKind::Signed, 174);
        let x = Tensor::zeros(&[0, 2]);
        assert_eq!(evaluate(&mut net, &x, &[], 8).unwrap(), (0.0, 0.0));
    }

    #[test]
    fn gather_rows_copies_selected_samples() {
        let x = Tensor::from_vec((0..12).map(|v| v as f32).collect(), &[4, 3]).unwrap();
        let g = gather_rows(&x, &[2, 0]);
        assert_eq!(g.shape(), &[2, 3]);
        assert_eq!(g.data(), &[6.0, 7.0, 8.0, 0.0, 1.0, 2.0]);
    }

    #[test]
    fn sharded_training_learns_blobs() {
        let (x, labels) = blobs(200, 180);
        let (tx, tlabels) = blobs(100, 181);
        let mut net = mlp(WeightKind::Signed, 182);
        let cfg = TrainConfig {
            epochs: 15,
            batch_size: 16,
            lr: 0.1,
            shards: 4,
            ..TrainConfig::default()
        };
        let hist = train(
            &mut net,
            Split::new(&x, &labels).unwrap(),
            Some(Split::new(&tx, &tlabels).unwrap()),
            &cfg,
        )
        .unwrap();
        assert!(hist.final_test_acc().unwrap() > 0.95, "{:?}", hist.last());
    }

    #[test]
    fn sharded_training_is_serial_parallel_bitwise() {
        // The determinism contract: for a fixed shard count, training is
        // bitwise identical whether the fan-out runs serially or on the
        // pool. (Forced-serial vs pooled toggling is safe here because the
        // contract says results never change — only wall-clock.)
        let (x, labels) = blobs(64, 183);
        let run = |serial: bool| {
            xbar_tensor::backend::force_serial(serial);
            let mut net = mlp(WeightKind::Mapped(Mapping::Acm), 184);
            let cfg = TrainConfig {
                epochs: 3,
                batch_size: 16,
                shards: 4,
                ..TrainConfig::default()
            };
            let hist = train(&mut net, Split::new(&x, &labels).unwrap(), None, &cfg).unwrap();
            xbar_tensor::backend::force_serial(false);
            (hist, persist::collect_state(&mut net))
        };
        let (h1, s1) = run(true);
        let (h2, s2) = run(false);
        assert_eq!(h1, h2);
        assert_eq!(s1.len(), s2.len());
        for (a, b) in s1.iter().zip(&s2) {
            match (a, b) {
                (
                    persist::StateItem::Tensor {
                        name: na,
                        value: va,
                    },
                    persist::StateItem::Tensor {
                        name: nb,
                        value: vb,
                    },
                ) => {
                    assert_eq!(na, nb);
                    for (x, y) in va.data().iter().zip(vb.data()) {
                        assert_eq!(x.to_bits(), y.to_bits(), "{na}");
                    }
                }
                (
                    persist::StateItem::Rng {
                        name: na,
                        value: va,
                    },
                    persist::StateItem::Rng {
                        name: nb,
                        value: vb,
                    },
                ) => {
                    assert_eq!(na, nb);
                    assert_eq!(va, vb);
                }
                _ => panic!("state item kind mismatch"),
            }
        }
    }

    #[test]
    fn sharded_run_is_repeatable() {
        let (x, labels) = blobs(60, 185);
        let run = || {
            let mut net = mlp(WeightKind::Mapped(Mapping::DoubleElement), 186);
            let cfg = TrainConfig {
                epochs: 2,
                batch_size: 10,
                shards: 3,
                ..TrainConfig::default()
            };
            train(&mut net, Split::new(&x, &labels).unwrap(), None, &cfg)
                .unwrap()
                .last()
                .unwrap()
                .train_loss
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn more_shards_than_batch_rows_is_ok() {
        // batch_size 2 with 4 shards leaves two shards empty each step.
        let (x, labels) = blobs(6, 187);
        let mut net = mlp(WeightKind::Signed, 188);
        let cfg = TrainConfig {
            epochs: 2,
            batch_size: 2,
            shards: 4,
            ..TrainConfig::default()
        };
        let hist = train(&mut net, Split::new(&x, &labels).unwrap(), None, &cfg).unwrap();
        assert_eq!(hist.epochs().len(), 2);
        assert!(hist.last().unwrap().train_loss.is_finite());
    }

    #[test]
    fn zero_shards_is_rejected() {
        let (x, labels) = blobs(10, 189);
        let mut net = mlp(WeightKind::Signed, 190);
        let cfg = TrainConfig {
            shards: 0,
            ..TrainConfig::default()
        };
        assert!(train(&mut net, Split::new(&x, &labels).unwrap(), None, &cfg).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, labels) = blobs(80, 175);
        let run = |seed| {
            let mut net = mlp(WeightKind::Mapped(Mapping::Acm), 176);
            let cfg = TrainConfig {
                epochs: 3,
                seed,
                ..TrainConfig::default()
            };
            train(&mut net, Split::new(&x, &labels).unwrap(), None, &cfg)
                .unwrap()
                .last()
                .unwrap()
                .train_loss
        };
        assert_eq!(run(1), run(1));
        // Different shuffling order almost surely gives a different loss.
        assert_ne!(run(1), run(2));
    }
}
