//! Vanilla-SGD training driver.
//!
//! The paper trains every model "using a vanilla stochastic gradient
//! descent" (Sec. IV); this module provides exactly that — shuffled
//! mini-batches, a constant or step-decayed learning rate, per-epoch
//! train/test statistics — over any [`Layer`] (normally a
//! [`crate::Sequential`]) with [`crate::SoftmaxCrossEntropy`] loss.

use std::path::PathBuf;

use xbar_tensor::rng::XorShiftRng;
use xbar_tensor::Tensor;

use crate::persist::{self, TrainCheckpoint};
use crate::{accuracy, Layer, NnError, SoftmaxCrossEntropy};

/// Hyper-parameters for [`train`].
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Initial learning rate.
    pub lr: f32,
    /// Multiplicative learning-rate decay applied after every epoch
    /// (`1.0` = constant).
    pub lr_decay: f32,
    /// Shuffling seed.
    pub seed: u64,
    /// Print one line per epoch to stdout.
    pub verbose: bool,
    /// Write a crash-safe checkpoint every this many epochs (`0` = never).
    /// Requires [`TrainConfig::checkpoint_dir`].
    pub checkpoint_every: usize,
    /// Directory for the training checkpoint (`train.ckpt`). When the file
    /// already exists, [`train`] resumes from it and reproduces the
    /// uninterrupted run bitwise.
    pub checkpoint_dir: Option<PathBuf>,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 10,
            batch_size: 32,
            lr: 0.05,
            lr_decay: 0.95,
            seed: 0x7EA1,
            verbose: false,
            checkpoint_every: 0,
            checkpoint_dir: None,
        }
    }
}

/// Statistics for one training epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean training loss over the epoch.
    pub train_loss: f32,
    /// Training accuracy over the epoch (running, pre-update batches).
    pub train_acc: f32,
    /// Test accuracy after the epoch (if a test set was provided).
    pub test_acc: Option<f32>,
    /// Learning rate used this epoch.
    pub lr: f32,
}

impl EpochStats {
    /// Training error percentage, `100·(1 − train_acc)` — the paper's
    /// Fig. 5a/5e y-axis.
    pub fn train_error_pct(&self) -> f32 {
        100.0 * (1.0 - self.train_acc)
    }

    /// Test error percentage, if a test set was provided.
    pub fn test_error_pct(&self) -> Option<f32> {
        self.test_acc.map(|a| 100.0 * (1.0 - a))
    }
}

/// Per-epoch history of a training run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct History {
    epochs: Vec<EpochStats>,
}

impl History {
    /// Builds a history from pre-recorded epoch statistics (e.g. a resumed
    /// checkpoint).
    pub fn from_epochs(epochs: Vec<EpochStats>) -> Self {
        Self { epochs }
    }

    /// All epoch records, in order.
    pub fn epochs(&self) -> &[EpochStats] {
        &self.epochs
    }

    /// The final epoch's statistics.
    pub fn last(&self) -> Option<&EpochStats> {
        self.epochs.last()
    }

    /// Final test accuracy, if recorded.
    pub fn final_test_acc(&self) -> Option<f32> {
        self.last().and_then(|e| e.test_acc)
    }

    /// Best (maximum) test accuracy across epochs, if recorded.
    pub fn best_test_acc(&self) -> Option<f32> {
        self.epochs
            .iter()
            .filter_map(|e| e.test_acc)
            .fold(None, |best, a| Some(best.map_or(a, |b: f32| b.max(a))))
    }
}

/// A labelled dataset split: images/features plus integer class labels.
///
/// The feature tensor's first dimension is the sample index; the rest is
/// the per-sample shape (e.g. `(n, c, h, w)` images or `(n, d)` features).
#[derive(Debug, Clone)]
pub struct Split<'a> {
    /// Feature tensor, sample-major.
    pub x: &'a Tensor,
    /// One label per sample.
    pub labels: &'a [usize],
}

impl<'a> Split<'a> {
    /// Creates a split, validating that counts agree.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Config`] if the label count disagrees with the
    /// first tensor dimension.
    pub fn new(x: &'a Tensor, labels: &'a [usize]) -> Result<Self, NnError> {
        if x.ndim() == 0 || x.shape()[0] != labels.len() {
            return Err(NnError::Config(format!(
                "{} samples but {} labels",
                x.shape().first().copied().unwrap_or(0),
                labels.len()
            )));
        }
        Ok(Self { x, labels })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the split is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }
}

/// Copies the rows at `idxs` (first-dimension indices) into a new tensor.
pub(crate) fn gather_rows(x: &Tensor, idxs: &[usize]) -> Tensor {
    let sample: usize = x.shape()[1..].iter().product();
    let mut shape = x.shape().to_vec();
    shape[0] = idxs.len();
    let mut out = Tensor::zeros(&shape);
    for (row, &i) in idxs.iter().enumerate() {
        out.data_mut()[row * sample..(row + 1) * sample]
            .copy_from_slice(&x.data()[i * sample..(i + 1) * sample]);
    }
    out
}

/// Trains `net` with softmax cross-entropy under vanilla SGD.
///
/// Returns the per-epoch [`History`]. When `test` is provided, test
/// accuracy is evaluated after each epoch (inference mode — batch norm uses
/// running statistics, caches are not retained).
///
/// # Crash safety
///
/// With [`TrainConfig::checkpoint_every`] set and a
/// [`TrainConfig::checkpoint_dir`], the full training state (model,
/// shuffling RNG, sample order, learning rate, history) is written
/// atomically to `<dir>/train.ckpt` every `checkpoint_every` epochs. When
/// that file already exists at the next call, training *resumes* from it —
/// a run killed at epoch *k* and restarted reproduces the uninterrupted
/// run's [`History`] and final weights bitwise (given the same network
/// construction, data, and config).
///
/// # Errors
///
/// Returns an error on empty data, a zero batch size, any layer
/// shape/state failure, or a corrupt/incompatible checkpoint.
pub fn train(
    net: &mut dyn Layer,
    train_split: Split<'_>,
    test: Option<Split<'_>>,
    cfg: &TrainConfig,
) -> Result<History, NnError> {
    if train_split.is_empty() {
        return Err(NnError::Config("empty training set".into()));
    }
    if cfg.batch_size == 0 {
        return Err(NnError::Config("batch size must be positive".into()));
    }
    if cfg.lr <= 0.0 || !cfg.lr.is_finite() {
        return Err(NnError::Config(format!("bad learning rate {}", cfg.lr)));
    }
    if cfg.checkpoint_every > 0 && cfg.checkpoint_dir.is_none() {
        return Err(NnError::Config(
            "checkpoint_every set without checkpoint_dir".into(),
        ));
    }
    let mut rng = XorShiftRng::new(cfg.seed);
    let n = train_split.len();
    let mut order: Vec<usize> = (0..n).collect();
    let mut lr = cfg.lr;
    let mut history = History::default();
    let mut start_epoch = 0usize;
    let ckpt_path = cfg.checkpoint_dir.as_ref().map(|d| d.join("train.ckpt"));
    if let Some(path) = &ckpt_path {
        if cfg.checkpoint_every > 0 {
            if let Some(dir) = path.parent() {
                std::fs::create_dir_all(dir).map_err(|e| {
                    NnError::Persist(crate::persist::PersistError::Io {
                        path: dir.to_path_buf(),
                        op: "mkdir",
                        detail: e.to_string(),
                    })
                })?;
            }
        }
        if path.exists() {
            let ckpt = persist::load_checkpoint(path)?;
            if ckpt.order.len() != n {
                return Err(NnError::Persist(
                    crate::persist::PersistError::StateMismatch(format!(
                        "checkpoint was taken with {} training samples, run has {n}",
                        ckpt.order.len()
                    )),
                ));
            }
            if ckpt.epochs_done > cfg.epochs {
                return Err(NnError::Config(format!(
                    "checkpoint already has {} epochs done, run asks for {}",
                    ckpt.epochs_done, cfg.epochs
                )));
            }
            persist::restore_state(net, &ckpt.model)?;
            net.zero_grad();
            rng.restore_state(ckpt.rng);
            order = ckpt.order;
            lr = ckpt.lr;
            start_epoch = ckpt.epochs_done;
            history = History::from_epochs(ckpt.history);
            if cfg.verbose {
                println!("resumed from {} at epoch {start_epoch}", path.display());
            }
        }
    }
    for epoch in start_epoch..cfg.epochs {
        rng.shuffle(&mut order);
        let mut loss_sum = 0.0f64;
        let mut acc_sum = 0.0f64;
        let mut batches = 0usize;
        for chunk in order.chunks(cfg.batch_size) {
            let xb = gather_rows(train_split.x, chunk);
            let yb: Vec<usize> = chunk.iter().map(|&i| train_split.labels[i]).collect();
            let logits = net.forward(&xb, true)?;
            let (loss, grad) = SoftmaxCrossEntropy::forward(&logits, &yb)?;
            loss_sum += f64::from(loss);
            acc_sum += f64::from(accuracy(&logits, &yb)?);
            batches += 1;
            net.zero_grad();
            net.backward(&grad)?;
            net.update(lr);
        }
        let test_acc = match &test {
            Some(t) => Some(evaluate(net, t.x, t.labels, cfg.batch_size)?.1),
            None => None,
        };
        let stats = EpochStats {
            epoch,
            train_loss: (loss_sum / batches as f64) as f32,
            train_acc: (acc_sum / batches as f64) as f32,
            test_acc,
            lr,
        };
        if cfg.verbose {
            match test_acc {
                Some(a) => println!(
                    "epoch {:>3}: loss {:.4} train-acc {:.3} test-acc {:.3} (lr {:.4})",
                    epoch, stats.train_loss, stats.train_acc, a, lr
                ),
                None => println!(
                    "epoch {:>3}: loss {:.4} train-acc {:.3} (lr {:.4})",
                    epoch, stats.train_loss, stats.train_acc, lr
                ),
            }
        }
        history.epochs.push(stats);
        lr *= cfg.lr_decay;
        if cfg.checkpoint_every > 0 && (epoch + 1) % cfg.checkpoint_every == 0 {
            let path = ckpt_path.as_ref().expect("validated above");
            let ckpt = TrainCheckpoint {
                epochs_done: epoch + 1,
                lr,
                rng: rng.save_state(),
                order: order.clone(),
                history: history.epochs.clone(),
                model: persist::collect_state(net),
            };
            persist::save_checkpoint(path, &ckpt)?;
        }
    }
    Ok(history)
}

/// Evaluates `net` in inference mode, returning `(mean_loss, accuracy)`.
///
/// # Errors
///
/// Returns an error on shape mismatches or a zero batch size.
pub fn evaluate(
    net: &mut dyn Layer,
    x: &Tensor,
    labels: &[usize],
    batch_size: usize,
) -> Result<(f32, f32), NnError> {
    if batch_size == 0 {
        return Err(NnError::Config("batch size must be positive".into()));
    }
    if labels.is_empty() {
        return Ok((0.0, 0.0));
    }
    let idxs: Vec<usize> = (0..labels.len()).collect();
    let mut loss_sum = 0.0f64;
    let mut correct = 0.0f64;
    for chunk in idxs.chunks(batch_size) {
        let xb = gather_rows(x, chunk);
        let yb: Vec<usize> = chunk.iter().map(|&i| labels[i]).collect();
        let logits = net.forward(&xb, false)?;
        let (loss, _) = SoftmaxCrossEntropy::forward(&logits, &yb)?;
        loss_sum += f64::from(loss) * chunk.len() as f64;
        correct += f64::from(accuracy(&logits, &yb)?) * chunk.len() as f64;
    }
    let n = labels.len() as f64;
    Ok(((loss_sum / n) as f32, (correct / n) as f32))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dense, Relu, Sequential, WeightKind};
    use xbar_core::Mapping;
    use xbar_device::DeviceConfig;

    /// Two-Gaussian-blob binary classification problem.
    fn blobs(n: usize, seed: u64) -> (Tensor, Vec<usize>) {
        let mut rng = XorShiftRng::new(seed);
        let mut x = Tensor::zeros(&[n, 2]);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let class = i % 2;
            let (cx, cy) = if class == 0 { (-1.0, -1.0) } else { (1.0, 1.0) };
            *x.at_mut(&[i, 0]) = rng.normal_with(cx, 0.4);
            *x.at_mut(&[i, 1]) = rng.normal_with(cy, 0.4);
            labels.push(class);
        }
        (x, labels)
    }

    fn mlp(kind: WeightKind, seed: u64) -> Sequential {
        let mut rng = XorShiftRng::new(seed);
        let mut net = Sequential::new();
        net.push(Dense::new(2, 16, kind, DeviceConfig::ideal(), &mut rng).unwrap());
        net.push(Relu::new());
        net.push(Dense::new(16, 2, kind, DeviceConfig::ideal(), &mut rng).unwrap());
        net
    }

    #[test]
    fn training_learns_blobs_baseline() {
        let (x, labels) = blobs(200, 161);
        let (tx, tlabels) = blobs(100, 162);
        let mut net = mlp(WeightKind::Signed, 163);
        let cfg = TrainConfig {
            epochs: 15,
            batch_size: 16,
            lr: 0.1,
            ..TrainConfig::default()
        };
        let hist = train(
            &mut net,
            Split::new(&x, &labels).unwrap(),
            Some(Split::new(&tx, &tlabels).unwrap()),
            &cfg,
        )
        .unwrap();
        assert!(hist.final_test_acc().unwrap() > 0.95, "{:?}", hist.last());
    }

    #[test]
    fn training_learns_blobs_all_mappings() {
        let (x, labels) = blobs(200, 164);
        let (tx, tlabels) = blobs(100, 165);
        for mapping in Mapping::ALL {
            let mut net = mlp(WeightKind::Mapped(mapping), 166);
            let cfg = TrainConfig {
                epochs: 15,
                batch_size: 16,
                lr: 0.1,
                ..TrainConfig::default()
            };
            let hist = train(
                &mut net,
                Split::new(&x, &labels).unwrap(),
                Some(Split::new(&tx, &tlabels).unwrap()),
                &cfg,
            )
            .unwrap();
            assert!(
                hist.final_test_acc().unwrap() > 0.9,
                "{mapping}: {:?}",
                hist.last()
            );
        }
    }

    #[test]
    fn loss_decreases_over_epochs() {
        let (x, labels) = blobs(100, 167);
        let mut net = mlp(WeightKind::Signed, 168);
        let cfg = TrainConfig {
            epochs: 8,
            batch_size: 10,
            lr: 0.05,
            ..TrainConfig::default()
        };
        let hist = train(&mut net, Split::new(&x, &labels).unwrap(), None, &cfg).unwrap();
        let first = hist.epochs().first().unwrap().train_loss;
        let last = hist.last().unwrap().train_loss;
        assert!(last < first, "{first} -> {last}");
        assert!(hist.last().unwrap().test_acc.is_none());
    }

    #[test]
    fn history_accessors() {
        let (x, labels) = blobs(60, 169);
        let (tx, tl) = blobs(30, 170);
        let mut net = mlp(WeightKind::Signed, 171);
        let cfg = TrainConfig {
            epochs: 3,
            ..TrainConfig::default()
        };
        let hist = train(
            &mut net,
            Split::new(&x, &labels).unwrap(),
            Some(Split::new(&tx, &tl).unwrap()),
            &cfg,
        )
        .unwrap();
        assert_eq!(hist.epochs().len(), 3);
        assert!(hist.best_test_acc().unwrap() >= hist.final_test_acc().unwrap() - 1e-6);
        let e = hist.last().unwrap();
        assert!((e.train_error_pct() - 100.0 * (1.0 - e.train_acc)).abs() < 1e-5);
    }

    #[test]
    fn config_validation() {
        let (x, labels) = blobs(10, 172);
        let mut net = mlp(WeightKind::Signed, 173);
        let bad_batch = TrainConfig {
            batch_size: 0,
            ..TrainConfig::default()
        };
        assert!(train(&mut net, Split::new(&x, &labels).unwrap(), None, &bad_batch).is_err());
        let bad_lr = TrainConfig {
            lr: -1.0,
            ..TrainConfig::default()
        };
        assert!(train(&mut net, Split::new(&x, &labels).unwrap(), None, &bad_lr).is_err());
        assert!(Split::new(&x, &labels[..5]).is_err());
    }

    #[test]
    fn evaluate_on_empty_set() {
        let mut net = mlp(WeightKind::Signed, 174);
        let x = Tensor::zeros(&[0, 2]);
        assert_eq!(evaluate(&mut net, &x, &[], 8).unwrap(), (0.0, 0.0));
    }

    #[test]
    fn gather_rows_copies_selected_samples() {
        let x = Tensor::from_vec((0..12).map(|v| v as f32).collect(), &[4, 3]).unwrap();
        let g = gather_rows(&x, &[2, 0]);
        assert_eq!(g.shape(), &[2, 3]);
        assert_eq!(g.data(), &[6.0, 7.0, 8.0, 0.0, 1.0, 2.0]);
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, labels) = blobs(80, 175);
        let run = |seed| {
            let mut net = mlp(WeightKind::Mapped(Mapping::Acm), 176);
            let cfg = TrainConfig {
                epochs: 3,
                seed,
                ..TrainConfig::default()
            };
            train(&mut net, Split::new(&x, &labels).unwrap(), None, &cfg)
                .unwrap()
                .last()
                .unwrap()
                .train_loss
        };
        assert_eq!(run(1), run(1));
        // Different shuffling order almost surely gives a different loss.
        assert_ne!(run(1), run(2));
    }
}
