use xbar_tensor::{elementwise, Tensor};

use crate::NnError;

/// Softmax cross-entropy loss over class logits.
///
/// Combines the softmax and the negative log-likelihood in one numerically
/// stable step, returning both the mean loss and the gradient with respect
/// to the logits (already divided by the batch size, ready to feed to
/// `backward`).
///
/// # Example
///
/// ```
/// use xbar_nn::SoftmaxCrossEntropy;
/// use xbar_tensor::Tensor;
///
/// # fn main() -> Result<(), xbar_nn::NnError> {
/// let logits = Tensor::from_vec(vec![2.0, 0.0, 0.0, 0.0, 3.0, 0.0], &[2, 3])?;
/// let (loss, grad) = SoftmaxCrossEntropy::forward(&logits, &[0, 1])?;
/// assert!(loss < 0.5); // both predictions confident and correct
/// assert_eq!(grad.shape(), &[2, 3]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct SoftmaxCrossEntropy;

impl SoftmaxCrossEntropy {
    /// Computes `(mean_loss, grad_logits)` for a batch of logits
    /// `(batch, classes)` and integer `labels`.
    ///
    /// # Errors
    ///
    /// Returns a shape error if `logits` is not 2-D, the label count does
    /// not match the batch, or any label is out of class range.
    pub fn forward(logits: &Tensor, labels: &[usize]) -> Result<(f32, Tensor), NnError> {
        let batch = if logits.ndim() == 2 {
            logits.shape()[0]
        } else {
            1
        };
        let (total_loss, grad) = Self::forward_scaled(logits, labels, batch)?;
        Ok(((total_loss / batch as f64) as f32, grad))
    }

    /// Shard-aware cross-entropy: computes the *summed* loss (in `f64`)
    /// over the rows of `logits` and per-row gradients divided by
    /// `divisor` instead of the local row count.
    ///
    /// This is the primitive behind data-parallel training
    /// ([`crate::train::TrainConfig::shards`]): each shard evaluates its
    /// own rows with `divisor` set to the *total* batch size, so the
    /// per-row gradients are bitwise identical to what a single
    /// whole-batch [`SoftmaxCrossEntropy::forward`] call would produce —
    /// the grad of a row does not depend on how the batch is split.
    /// Summed shard losses combine exactly in `f64` fixed shard order.
    ///
    /// # Errors
    ///
    /// Returns a shape error if `logits` is not 2-D, the label count does
    /// not match the rows, any label is out of class range, or `divisor`
    /// is zero.
    pub fn forward_scaled(
        logits: &Tensor,
        labels: &[usize],
        divisor: usize,
    ) -> Result<(f64, Tensor), NnError> {
        if logits.ndim() != 2 {
            return Err(NnError::Shape(xbar_tensor::ShapeError::new(
                "cross-entropy",
                format!("expected (batch, classes), got {:?}", logits.shape()),
            )));
        }
        let (batch, classes) = (logits.shape()[0], logits.shape()[1]);
        if labels.len() != batch {
            return Err(NnError::Shape(xbar_tensor::ShapeError::new(
                "cross-entropy",
                format!("batch {batch} but {} labels", labels.len()),
            )));
        }
        if let Some(&bad) = labels.iter().find(|&&l| l >= classes) {
            return Err(NnError::Config(format!(
                "label {bad} out of range for {classes} classes"
            )));
        }
        if divisor == 0 {
            return Err(NnError::Config("cross-entropy divisor must be > 0".into()));
        }
        let mut grad = Tensor::zeros(&[batch, classes]);
        let mut total_loss = 0.0f64;
        for b in 0..batch {
            let row = &logits.data()[b * classes..(b + 1) * classes];
            let max = elementwise::row_max(row);
            let exp_sum: f32 = row.iter().map(|&v| (v - max).exp()).sum();
            let log_sum = exp_sum.ln() + max;
            total_loss += f64::from(log_sum - row[labels[b]]);
            let g = &mut grad.data_mut()[b * classes..(b + 1) * classes];
            for (j, gv) in g.iter_mut().enumerate() {
                let p = (row[j] - max).exp() / exp_sum;
                *gv = (p - if j == labels[b] { 1.0 } else { 0.0 }) / divisor as f32;
            }
        }
        Ok((total_loss, grad))
    }

    /// Softmax probabilities for a batch of logits (no loss/grad) —
    /// convenient for calibration and analysis.
    ///
    /// # Errors
    ///
    /// Returns a shape error if `logits` is not 2-D.
    pub fn probabilities(logits: &Tensor) -> Result<Tensor, NnError> {
        if logits.ndim() != 2 {
            return Err(NnError::Shape(xbar_tensor::ShapeError::new(
                "softmax",
                format!("expected (batch, classes), got {:?}", logits.shape()),
            )));
        }
        let (batch, classes) = (logits.shape()[0], logits.shape()[1]);
        let mut out = logits.clone();
        for b in 0..batch {
            let row = &mut out.data_mut()[b * classes..(b + 1) * classes];
            let max = elementwise::row_max(row);
            let mut sum = 0.0;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                sum += *v;
            }
            for v in row.iter_mut() {
                *v /= sum;
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_give_log_c_loss() {
        let logits = Tensor::zeros(&[4, 10]);
        let (loss, _) = SoftmaxCrossEntropy::forward(&logits, &[0, 1, 2, 3]).unwrap();
        assert!((loss - (10.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn confident_correct_prediction_has_low_loss() {
        let logits = Tensor::from_vec(vec![10.0, 0.0], &[1, 2]).unwrap();
        let (loss, _) = SoftmaxCrossEntropy::forward(&logits, &[0]).unwrap();
        assert!(loss < 1e-3);
        let (wrong_loss, _) = SoftmaxCrossEntropy::forward(&logits, &[1]).unwrap();
        assert!(wrong_loss > 5.0);
    }

    #[test]
    fn gradient_rows_sum_to_zero() {
        let logits = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.5, 0.0], &[2, 3]).unwrap();
        let (_, grad) = SoftmaxCrossEntropy::forward(&logits, &[2, 0]).unwrap();
        for b in 0..2 {
            let s: f32 = grad.data()[b * 3..(b + 1) * 3].iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let logits = Tensor::from_vec(vec![0.3, -0.7, 1.2, 0.1, 0.0, -0.4], &[2, 3]).unwrap();
        let labels = [1usize, 2];
        let (loss0, grad) = SoftmaxCrossEntropy::forward(&logits, &labels).unwrap();
        let eps = 1e-3;
        for i in 0..6 {
            let mut lp = logits.clone();
            lp.data_mut()[i] += eps;
            let (lossp, _) = SoftmaxCrossEntropy::forward(&lp, &labels).unwrap();
            let num = (lossp - loss0) / eps;
            assert!(
                (num - grad.data()[i]).abs() < 1e-3,
                "grad {i}: {num} vs {}",
                grad.data()[i]
            );
        }
    }

    #[test]
    fn numerically_stable_for_large_logits() {
        let logits = Tensor::from_vec(vec![1000.0, 0.0], &[1, 2]).unwrap();
        let (loss, grad) = SoftmaxCrossEntropy::forward(&logits, &[0]).unwrap();
        assert!(loss.is_finite() && loss < 1e-3);
        assert!(grad.data().iter().all(|g| g.is_finite()));
    }

    #[test]
    fn probabilities_sum_to_one() {
        let logits = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]).unwrap();
        let p = SoftmaxCrossEntropy::probabilities(&logits).unwrap();
        assert!((p.sum() - 1.0).abs() < 1e-6);
        assert!(p.data()[2] > p.data()[1] && p.data()[1] > p.data()[0]);
    }

    #[test]
    fn rejects_bad_labels_and_shapes() {
        let logits = Tensor::zeros(&[2, 3]);
        assert!(SoftmaxCrossEntropy::forward(&logits, &[0]).is_err()); // count
        assert!(SoftmaxCrossEntropy::forward(&logits, &[0, 3]).is_err()); // range
        assert!(SoftmaxCrossEntropy::forward(&Tensor::zeros(&[6]), &[0]).is_err());
        // ndim
    }
}
