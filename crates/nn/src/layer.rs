use xbar_core::QuantReadout;
use xbar_tensor::rng::XorShiftRng;
use xbar_tensor::Tensor;

use crate::{MappedParam, NnError};

/// Receives every persistent state component of a layer tree, in a fixed
/// deterministic order — the bridge between [`Layer::visit_state`] and the
/// checkpoint codec in [`crate::persist`].
///
/// Implementations either *read* the visited values (saving) or *write*
/// them (restoring); layers themselves stay agnostic of the direction.
pub trait StateVisitor {
    /// Visits a named tensor-valued state component (weights, biases,
    /// running statistics).
    fn tensor(&mut self, name: &str, value: &mut Tensor);

    /// Visits a named deterministic RNG stream (dropout masks, stochastic
    /// pulse rounding).
    fn rng(&mut self, name: &str, value: &mut XorShiftRng);
}

/// A trainable network layer.
///
/// The contract is the classic three-phase cycle:
///
/// 1. [`Layer::forward`] — computes the output and caches whatever the
///    backward pass needs (`train = true`) or runs statelessly for
///    inference (`train = false`, e.g. batch norm uses running statistics);
/// 2. [`Layer::backward`] — consumes the cached state, accumulates
///    parameter gradients internally, and returns the gradient with
///    respect to the layer input;
/// 3. [`Layer::update`] — applies one vanilla-SGD step (through the device
///    update model for crossbar-mapped parameters) and is followed by
///    [`Layer::zero_grad`].
///
/// Layers with crossbar-mapped weights expose them through
/// [`Layer::visit_mapped`] so experiment harnesses can apply device
/// variation to every array in a network without knowing its structure.
///
/// Layers are `Send + Sync` plain data (no interior mutability — all
/// mutation goes through `&mut self`), and [`Layer::clone_box`] provides a
/// deep copy through the trait object. Together these let experiment
/// harnesses clone a trained network per worker and fan Monte-Carlo
/// trials across the compute pool.
pub trait Layer: Send + Sync {
    /// Short human-readable descriptor, e.g. `"dense 128->10 [ACM]"`.
    fn describe(&self) -> String;

    /// Deep-copies this layer as a boxed trait object — the object-safe
    /// stand-in for `Clone` that makes `Box<dyn Layer>` (and therefore
    /// [`Sequential`]) clonable.
    fn clone_box(&self) -> Box<dyn Layer>;

    /// Runs the layer forward. `train` selects training behaviour
    /// (caching, batch statistics).
    ///
    /// # Errors
    ///
    /// Returns an error if the input shape is incompatible.
    fn forward(&mut self, x: &Tensor, train: bool) -> Result<Tensor, NnError>;

    /// Inference forward that additionally *records* activation
    /// statistics for post-training quantization: layers with a
    /// quantized inference path (currently [`crate::Dense`]) extend
    /// their running input range with this batch. Run a few
    /// representative batches through this before
    /// [`Layer::forward_quantized`]; without calibration the quantized
    /// path derives its activation grid from each batch itself
    /// (convenient, but data-dependent). The default is a plain
    /// inference forward.
    ///
    /// # Errors
    ///
    /// Returns an error if the input shape is incompatible.
    fn calibrate(&mut self, x: &Tensor) -> Result<Tensor, NnError> {
        self.forward(x, false)
    }

    /// Runs the layer in *quantized inference* mode: layers with an
    /// integer path (currently [`crate::Dense`]) quantize activations to
    /// `mode.act_bits`, run the int8 kernels (through the crossbar's
    /// ADC-exact readout for mapped weights), and dequantize the result.
    /// Layers without an integer path — activations, pooling, and the
    /// fp32-only `Conv2d` — fall back to the plain inference forward, so
    /// a mixed network degrades gracefully rather than refusing to run.
    ///
    /// # Errors
    ///
    /// Returns an error if the input shape is incompatible or a mapped
    /// parameter's device cannot support the integer readout.
    fn forward_quantized(&mut self, x: &Tensor, mode: &QuantReadout) -> Result<Tensor, NnError> {
        let _ = mode;
        self.forward(x, false)
    }

    /// Backpropagates `grad` (same shape as the last forward output),
    /// returning the gradient with respect to the last forward input.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::State`] if no forward pass preceded this call,
    /// or a shape error on mismatch.
    fn backward(&mut self, grad: &Tensor) -> Result<Tensor, NnError>;

    /// Applies one SGD step with learning rate `lr`. Parameter-free layers
    /// keep the default no-op.
    fn update(&mut self, lr: f32) {
        let _ = lr;
    }

    /// Clears accumulated gradients. Parameter-free layers keep the
    /// default no-op.
    fn zero_grad(&mut self) {}

    /// Total stored scalar parameters.
    fn num_params(&self) -> usize {
        0
    }

    /// Visits every crossbar-mapped parameter in this layer (and
    /// sub-layers).
    fn visit_mapped(&mut self, visit: &mut dyn FnMut(&mut MappedParam)) {
        let _ = visit;
    }

    /// Visits every accumulated-gradient tensor of this layer (and
    /// sub-layers) in a fixed deterministic order — the flatten/scatter
    /// hook behind the data-parallel trainer's gradient reduction
    /// ([`crate::train::TrainConfig::shards`]). The visit order must match
    /// across clones of the same network (it always does: clones share
    /// structure). Parameter-free layers keep the default no-op.
    fn visit_grads(&mut self, visit: &mut dyn FnMut(&mut Tensor)) {
        let _ = visit;
    }

    /// Visits the *reduction segment* lengths of this layer's flattened
    /// gradient — the finest contiguous pieces of the
    /// [`Layer::visit_grads`] flat layout that can be reduced
    /// independently. Crossbar-mapped layers split their weight gradient
    /// per [`xbar_core::TileGrid`] column group (each group's device rows
    /// are contiguous in the row-major shadow gradient), so the
    /// sharded trainer can commit and reduce a shard's group-g gradient as
    /// soon as it lands instead of waiting for the whole layer. The
    /// lengths must sum to the total [`Layer::visit_grads`] length and be
    /// emitted in the same order; the default is one segment per gradient
    /// tensor.
    fn visit_grad_segments(&mut self, visit: &mut dyn FnMut(usize)) {
        self.visit_grads(&mut |g| visit(g.len()));
    }

    /// Visits every RNG stream consumed by the *forward* pass (dropout
    /// masks) in a fixed deterministic order. The data-parallel trainer
    /// re-seeds these per shard from the primary network's streams so that
    /// sharded training stays deterministic and resumable. Layers without
    /// forward-pass randomness keep the default no-op.
    fn visit_forward_rngs(&mut self, visit: &mut dyn FnMut(&mut XorShiftRng)) {
        let _ = visit;
    }

    /// Visits every batch-statistics tensor updated by a training forward
    /// pass (batch-norm running mean/variance) in a fixed deterministic
    /// order — the data-parallel trainer combines per-shard statistics
    /// into the primary network through this hook. Layers without batch
    /// statistics keep the default no-op.
    fn visit_batch_stats(&mut self, visit: &mut dyn FnMut(&mut Tensor)) {
        let _ = visit;
    }

    /// Visits every *persistent* state component of this layer (and
    /// sub-layers) under `prefix`-qualified names: trained parameters,
    /// running statistics, and RNG streams — everything a checkpoint must
    /// capture for a resumed run to continue bitwise. Transient state
    /// (forward caches, accumulated gradients) is excluded: the training
    /// loop rebuilds it before use. Stateless layers keep the default
    /// no-op.
    ///
    /// The visit order must be deterministic and identical between save
    /// and restore — the persist codec matches components positionally and
    /// verifies names.
    fn visit_state(&mut self, prefix: &str, visitor: &mut dyn StateVisitor) {
        let _ = (prefix, visitor);
    }
}

/// An ordered pipeline of layers, itself a [`Layer`].
///
/// # Example
///
/// ```
/// use xbar_nn::{Flatten, Relu, Sequential};
///
/// let mut net = Sequential::new();
/// net.push(Flatten::new());
/// net.push(Relu::new());
/// assert_eq!(net.len(), 2);
/// ```
#[derive(Default, Clone)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Clone for Box<dyn Layer> {
    fn clone(&self) -> Self {
        self.as_ref().clone_box()
    }
}

impl Sequential {
    /// Creates an empty pipeline.
    pub fn new() -> Self {
        Self { layers: Vec::new() }
    }

    /// Appends a layer.
    pub fn push(&mut self, layer: impl Layer + 'static) -> &mut Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Appends an already-boxed layer.
    pub fn push_boxed(&mut self, layer: Box<dyn Layer>) -> &mut Self {
        self.layers.push(layer);
        self
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the pipeline is empty.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Multi-line structural summary (one layer per line).
    pub fn summary(&self) -> String {
        let mut s = String::new();
        for (i, l) in self.layers.iter().enumerate() {
            s.push_str(&format!("{i:>3}: {}\n", l.describe()));
        }
        s.push_str(&format!("total params: {}", self.num_params()));
        s
    }
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Sequential({} layers)", self.layers.len())
    }
}

impl Layer for Sequential {
    fn describe(&self) -> String {
        format!("sequential x{}", self.layers.len())
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn forward(&mut self, x: &Tensor, train: bool) -> Result<Tensor, NnError> {
        let mut cur = x.clone();
        for layer in &mut self.layers {
            cur = layer.forward(&cur, train)?;
        }
        Ok(cur)
    }

    fn calibrate(&mut self, x: &Tensor) -> Result<Tensor, NnError> {
        let mut cur = x.clone();
        for layer in &mut self.layers {
            cur = layer.calibrate(&cur)?;
        }
        Ok(cur)
    }

    fn forward_quantized(&mut self, x: &Tensor, mode: &QuantReadout) -> Result<Tensor, NnError> {
        let mut cur = x.clone();
        for layer in &mut self.layers {
            cur = layer.forward_quantized(&cur, mode)?;
        }
        Ok(cur)
    }

    fn backward(&mut self, grad: &Tensor) -> Result<Tensor, NnError> {
        let mut cur = grad.clone();
        for layer in self.layers.iter_mut().rev() {
            cur = layer.backward(&cur)?;
        }
        Ok(cur)
    }

    fn update(&mut self, lr: f32) {
        for layer in &mut self.layers {
            layer.update(lr);
        }
    }

    fn zero_grad(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grad();
        }
    }

    fn num_params(&self) -> usize {
        self.layers.iter().map(|l| l.num_params()).sum()
    }

    fn visit_mapped(&mut self, visit: &mut dyn FnMut(&mut MappedParam)) {
        for layer in &mut self.layers {
            layer.visit_mapped(visit);
        }
    }

    fn visit_grads(&mut self, visit: &mut dyn FnMut(&mut Tensor)) {
        for layer in &mut self.layers {
            layer.visit_grads(visit);
        }
    }

    fn visit_grad_segments(&mut self, visit: &mut dyn FnMut(usize)) {
        for layer in &mut self.layers {
            layer.visit_grad_segments(visit);
        }
    }

    fn visit_forward_rngs(&mut self, visit: &mut dyn FnMut(&mut XorShiftRng)) {
        for layer in &mut self.layers {
            layer.visit_forward_rngs(visit);
        }
    }

    fn visit_batch_stats(&mut self, visit: &mut dyn FnMut(&mut Tensor)) {
        for layer in &mut self.layers {
            layer.visit_batch_stats(visit);
        }
    }

    fn visit_state(&mut self, prefix: &str, visitor: &mut dyn StateVisitor) {
        for (i, layer) in self.layers.iter_mut().enumerate() {
            layer.visit_state(&format!("{prefix}{i}."), visitor);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Relu;

    #[test]
    fn empty_sequential_is_identity() {
        let mut net = Sequential::new();
        let x = Tensor::from_vec(vec![1.0, -2.0], &[1, 2]).unwrap();
        assert_eq!(net.forward(&x, true).unwrap(), x);
        assert_eq!(net.backward(&x).unwrap(), x);
        assert!(net.is_empty());
    }

    #[test]
    fn sequential_chains_layers() {
        let mut net = Sequential::new();
        net.push(Relu::new());
        net.push(Relu::new());
        let x = Tensor::from_vec(vec![1.0, -2.0, 3.0, -4.0], &[2, 2]).unwrap();
        let y = net.forward(&x, true).unwrap();
        assert_eq!(y.data(), &[1.0, 0.0, 3.0, 0.0]);
        let g = net.backward(&Tensor::ones(&[2, 2])).unwrap();
        assert_eq!(g.data(), &[1.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn sequential_clone_is_deep_and_independent() {
        let mut net = Sequential::new();
        net.push(Relu::new());
        let mut copy = net.clone();
        assert_eq!(copy.len(), net.len());
        // Forward on the copy (which caches state) must leave the
        // original able to run its own independent cycle.
        let x = Tensor::from_vec(vec![1.0, -2.0], &[1, 2]).unwrap();
        let y = copy.forward(&x, true).unwrap();
        assert_eq!(y.data(), &[1.0, 0.0]);
        let y2 = net.forward(&x, true).unwrap();
        assert_eq!(y2.data(), y.data());
    }

    #[test]
    fn summary_lists_layers() {
        let mut net = Sequential::new();
        net.push(Relu::new());
        let s = net.summary();
        assert!(s.contains("relu"));
        assert!(s.contains("total params: 0"));
    }
}
