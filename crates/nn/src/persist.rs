//! Crash-safe persistence for tensors, models, and training state.
//!
//! Monte-Carlo resilience sweeps are long-running batch jobs; this module
//! gives them durable state with a dependency-free binary codec:
//!
//! * **Container format** — every file starts with the magic `XBARCKPT`,
//!   a format version, a payload *kind* tag, the payload length, and a
//!   CRC-32 of the payload. Truncated, bit-flipped, or foreign files are
//!   rejected with a typed [`PersistError`] — never UB or silent garbage.
//! * **Atomic writes** — payloads are written to a temp file in the target
//!   directory, `fsync`ed, then renamed over the destination, so a crash
//!   mid-write can never leave a torn checkpoint; the previous checkpoint
//!   (if any) survives intact.
//! * **Bitwise fidelity** — `f32` values are stored as raw IEEE-754 bits,
//!   and RNG streams (including the Box–Muller spare) are captured via
//!   [`RngState`], so a restored training run continues *bitwise*
//!   identically to an uninterrupted one.
//!
//! The bridge between layers and the codec is [`crate::StateVisitor`]:
//! [`collect_state`] walks a network and snapshots every persistent
//! component; [`restore_state`] validates the snapshot against the target
//! network (names, kinds, shapes) and only then applies it.

use std::error::Error;
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use xbar_tensor::rng::{RngState, XorShiftRng};
use xbar_tensor::Tensor;

use crate::{EpochStats, Layer, StateVisitor};

/// File magic for all persisted artifacts.
pub const MAGIC: &[u8; 8] = b"XBARCKPT";
/// Current container format version. Version 2 added the resolved
/// data-parallel shard count to [`TrainCheckpoint`] so auto-tuned runs
/// resume with the shard count they were started with.
pub const FORMAT_VERSION: u32 = 2;

/// Payload kind tag: a single tensor.
pub const KIND_TENSOR: u8 = 1;
/// Payload kind tag: a model state bundle (named tensors + RNG streams).
pub const KIND_MODEL: u8 = 2;
/// Payload kind tag: a full training checkpoint.
pub const KIND_TRAIN: u8 = 3;

/// Typed errors from checkpoint save/load.
#[derive(Debug, Clone, PartialEq)]
pub enum PersistError {
    /// An OS-level I/O operation failed.
    Io {
        /// The path involved.
        path: PathBuf,
        /// The operation that failed (`"open"`, `"write"`, `"rename"`, ...).
        op: &'static str,
        /// The OS error message.
        detail: String,
    },
    /// The file does not start with the `XBARCKPT` magic.
    BadMagic,
    /// The container version is newer than this build understands.
    UnsupportedVersion(u32),
    /// The file holds a different payload kind than requested.
    WrongKind {
        /// The kind tag the caller expected.
        expected: u8,
        /// The kind tag found in the file.
        found: u8,
    },
    /// The file ends before the declared payload does.
    Truncated {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// The payload checksum does not match (bit rot / partial overwrite).
    ChecksumMismatch {
        /// CRC-32 stored in the header.
        stored: u32,
        /// CRC-32 computed over the payload.
        computed: u32,
    },
    /// The payload is internally inconsistent (valid checksum, bad data).
    Corrupt(String),
    /// The snapshot does not match the target network's state layout.
    StateMismatch(String),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io { path, op, detail } => {
                write!(f, "checkpoint {op} failed for {}: {detail}", path.display())
            }
            Self::BadMagic => write!(f, "not a checkpoint file (bad magic)"),
            Self::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported checkpoint version {v} (this build reads {FORMAT_VERSION})"
                )
            }
            Self::WrongKind { expected, found } => {
                write!(
                    f,
                    "wrong checkpoint kind: expected {expected}, found {found}"
                )
            }
            Self::Truncated { needed, available } => {
                write!(
                    f,
                    "truncated checkpoint: needed {needed} bytes, only {available} available"
                )
            }
            Self::ChecksumMismatch { stored, computed } => write!(
                f,
                "checkpoint checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
            Self::Corrupt(msg) => write!(f, "corrupt checkpoint payload: {msg}"),
            Self::StateMismatch(msg) => write!(f, "checkpoint/model mismatch: {msg}"),
        }
    }
}

impl Error for PersistError {}

fn io_err(path: &Path, op: &'static str, e: &std::io::Error) -> PersistError {
    PersistError::Io {
        path: path.to_path_buf(),
        op,
        detail: e.to_string(),
    }
}

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3, polynomial 0xEDB88320)
// ---------------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE) of `bytes` — the payload checksum used by the container.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Little-endian encode/decode cursors
// ---------------------------------------------------------------------------

/// Append-only little-endian byte encoder.
#[derive(Debug, Default)]
struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f32(&mut self, v: f32) {
        self.u32(v.to_bits());
    }
    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// Bounds-checked little-endian byte decoder.
struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        if self.buf.len() - self.pos < n {
            return Err(PersistError::Truncated {
                needed: self.pos + n,
                available: self.buf.len(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, PersistError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, PersistError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn f32(&mut self) -> Result<f32, PersistError> {
        Ok(f32::from_bits(self.u32()?))
    }
    fn str(&mut self) -> Result<String, PersistError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| PersistError::Corrupt("non-UTF-8 name".into()))
    }
    fn usize(&mut self) -> Result<usize, PersistError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| PersistError::Corrupt(format!("count {v} overflows usize")))
    }

    fn done(&self) -> Result<(), PersistError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(PersistError::Corrupt(format!(
                "{} trailing bytes after payload",
                self.buf.len() - self.pos
            )))
        }
    }
}

// ---------------------------------------------------------------------------
// Atomic container I/O
// ---------------------------------------------------------------------------

/// Writes `bytes` to `path` atomically: temp file in the same directory,
/// `write` + `fsync`, then `rename` over the destination. A crash at any
/// point leaves either the old file or the new file, never a mix.
fn atomic_write(path: &Path, bytes: &[u8]) -> Result<(), PersistError> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let file_name = path
        .file_name()
        .ok_or_else(|| PersistError::Io {
            path: path.to_path_buf(),
            op: "open",
            detail: "path has no file name".into(),
        })?
        .to_string_lossy()
        .into_owned();
    let tmp = match dir {
        Some(d) => d.join(format!(".{file_name}.tmp")),
        None => PathBuf::from(format!(".{file_name}.tmp")),
    };
    let mut f = fs::File::create(&tmp).map_err(|e| io_err(&tmp, "create", &e))?;
    f.write_all(bytes).map_err(|e| io_err(&tmp, "write", &e))?;
    f.sync_all().map_err(|e| io_err(&tmp, "fsync", &e))?;
    drop(f);
    fs::rename(&tmp, path).map_err(|e| {
        let _ = fs::remove_file(&tmp);
        io_err(path, "rename", &e)
    })?;
    // Make the rename itself durable. Directory fsync is not supported on
    // every platform/filesystem, so failures here are non-fatal.
    if let Some(d) = dir {
        if let Ok(dirf) = fs::File::open(d) {
            let _ = dirf.sync_all();
        }
    }
    Ok(())
}

/// Wraps `payload` in the versioned, checksummed container and writes it
/// atomically to `path`.
///
/// # Errors
///
/// Returns [`PersistError::Io`] on any filesystem failure.
pub fn write_container(path: &Path, kind: u8, payload: &[u8]) -> Result<(), PersistError> {
    let mut bytes = Vec::with_capacity(MAGIC.len() + 17 + payload.len());
    bytes.extend_from_slice(MAGIC);
    bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    bytes.push(kind);
    bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    bytes.extend_from_slice(&crc32(payload).to_le_bytes());
    bytes.extend_from_slice(payload);
    atomic_write(path, &bytes)
}

/// Reads a container from `path`, verifying magic, version, kind, length,
/// and checksum, and returns the validated payload.
///
/// # Errors
///
/// Returns the specific [`PersistError`] for each corruption mode: bad
/// magic, unsupported version, wrong kind, truncation, checksum mismatch.
pub fn read_container(path: &Path, expected_kind: u8) -> Result<Vec<u8>, PersistError> {
    let bytes = fs::read(path).map_err(|e| io_err(path, "read", &e))?;
    let mut d = Dec::new(&bytes);
    let magic = d.take(MAGIC.len()).map_err(|_| PersistError::BadMagic)?;
    if magic != MAGIC {
        return Err(PersistError::BadMagic);
    }
    let version = d.u32()?;
    if version != FORMAT_VERSION {
        return Err(PersistError::UnsupportedVersion(version));
    }
    let kind = d.u8()?;
    if kind != expected_kind {
        return Err(PersistError::WrongKind {
            expected: expected_kind,
            found: kind,
        });
    }
    let len = d.usize()?;
    let stored = d.u32()?;
    let payload = d.take(len)?;
    d.done()?;
    let computed = crc32(payload);
    if stored != computed {
        return Err(PersistError::ChecksumMismatch { stored, computed });
    }
    Ok(payload.to_vec())
}

// ---------------------------------------------------------------------------
// Tensor / RNG payload codecs
// ---------------------------------------------------------------------------

fn encode_tensor(e: &mut Enc, t: &Tensor) {
    e.u32(t.ndim() as u32);
    for &d in t.shape() {
        e.u64(d as u64);
    }
    for &v in t.data() {
        e.f32(v);
    }
}

fn decode_tensor(d: &mut Dec<'_>) -> Result<Tensor, PersistError> {
    let ndim = d.u32()? as usize;
    if ndim > 8 {
        return Err(PersistError::Corrupt(format!("implausible rank {ndim}")));
    }
    let mut shape = Vec::with_capacity(ndim);
    let mut len = 1usize;
    for _ in 0..ndim {
        let dim = d.usize()?;
        len = len
            .checked_mul(dim)
            .ok_or_else(|| PersistError::Corrupt("tensor size overflows".into()))?;
        shape.push(dim);
    }
    // Bound the allocation by what the buffer can actually hold.
    let remaining = d.buf.len() - d.pos;
    if len > remaining / 4 {
        return Err(PersistError::Truncated {
            needed: d.pos + len * 4,
            available: d.buf.len(),
        });
    }
    let mut data = Vec::with_capacity(len);
    for _ in 0..len {
        data.push(d.f32()?);
    }
    Tensor::from_vec(data, &shape)
        .map_err(|e| PersistError::Corrupt(format!("tensor shape invalid: {e}")))
}

fn encode_rng(e: &mut Enc, s: RngState) {
    e.u64(s.state);
    match s.spare_normal {
        Some(v) => {
            e.u8(1);
            e.f32(v);
        }
        None => {
            e.u8(0);
            e.f32(0.0);
        }
    }
}

fn decode_rng(d: &mut Dec<'_>) -> Result<RngState, PersistError> {
    let state = d.u64()?;
    let flag = d.u8()?;
    let spare = d.f32()?;
    let spare_normal = match flag {
        0 => None,
        1 => Some(spare),
        other => {
            return Err(PersistError::Corrupt(format!(
                "invalid RNG spare flag {other}"
            )))
        }
    };
    Ok(RngState {
        state,
        spare_normal,
    })
}

/// Saves a single tensor to `path` (kind [`KIND_TENSOR`]).
///
/// # Errors
///
/// Returns [`PersistError::Io`] on filesystem failure.
pub fn save_tensor(path: &Path, t: &Tensor) -> Result<(), PersistError> {
    let mut e = Enc::default();
    encode_tensor(&mut e, t);
    write_container(path, KIND_TENSOR, &e.buf)
}

/// Loads a single tensor from `path`.
///
/// # Errors
///
/// Returns a typed [`PersistError`] on any corruption or I/O failure.
pub fn load_tensor(path: &Path) -> Result<Tensor, PersistError> {
    let payload = read_container(path, KIND_TENSOR)?;
    let mut d = Dec::new(&payload);
    let t = decode_tensor(&mut d)?;
    d.done()?;
    Ok(t)
}

// ---------------------------------------------------------------------------
// Model state bundles (StateVisitor bridge)
// ---------------------------------------------------------------------------

/// One named persistent state component captured from a layer tree.
#[derive(Debug, Clone, PartialEq)]
pub enum StateItem {
    /// A tensor-valued component (weights, biases, running statistics).
    Tensor {
        /// Hierarchical component name, e.g. `"0.w.shadow"`.
        name: String,
        /// The captured value.
        value: Tensor,
    },
    /// A deterministic RNG stream.
    Rng {
        /// Hierarchical component name, e.g. `"3.rng"`.
        name: String,
        /// The captured stream state.
        value: RngState,
    },
}

impl StateItem {
    /// The component's hierarchical name.
    pub fn name(&self) -> &str {
        match self {
            Self::Tensor { name, .. } | Self::Rng { name, .. } => name,
        }
    }
}

struct Collector {
    items: Vec<StateItem>,
}

impl StateVisitor for Collector {
    fn tensor(&mut self, name: &str, value: &mut Tensor) {
        self.items.push(StateItem::Tensor {
            name: name.to_string(),
            value: value.clone(),
        });
    }

    fn rng(&mut self, name: &str, value: &mut XorShiftRng) {
        self.items.push(StateItem::Rng {
            name: name.to_string(),
            value: value.save_state(),
        });
    }
}

/// Snapshots every persistent state component of `net`, in visit order.
pub fn collect_state(net: &mut dyn Layer) -> Vec<StateItem> {
    let mut c = Collector { items: Vec::new() };
    net.visit_state("", &mut c);
    c.items
}

/// Validation pass: checks each visited component against the snapshot
/// without mutating anything.
struct Validator<'a> {
    items: &'a [StateItem],
    next: usize,
    error: Option<PersistError>,
}

impl Validator<'_> {
    fn mismatch(&mut self, msg: String) {
        if self.error.is_none() {
            self.error = Some(PersistError::StateMismatch(msg));
        }
    }

    fn expect(&mut self, name: &str) -> Option<&StateItem> {
        if self.error.is_some() {
            return None;
        }
        match self.items.get(self.next) {
            Some(item) => {
                self.next += 1;
                if item.name() != name {
                    self.mismatch(format!(
                        "component {}: snapshot has '{}', network expects '{name}'",
                        self.next - 1,
                        item.name()
                    ));
                    return None;
                }
                Some(item)
            }
            None => {
                self.mismatch(format!(
                    "snapshot has {} components, network expects more (next: '{name}')",
                    self.items.len()
                ));
                None
            }
        }
    }
}

impl StateVisitor for Validator<'_> {
    fn tensor(&mut self, name: &str, value: &mut Tensor) {
        let expected_shape = value.shape().to_vec();
        if let Some(item) = self.expect(name) {
            match item {
                StateItem::Tensor { value: t, .. } => {
                    if t.shape() != expected_shape {
                        let got = t.shape().to_vec();
                        self.mismatch(format!(
                            "tensor '{name}': snapshot shape {got:?}, network shape {expected_shape:?}"
                        ));
                    }
                }
                StateItem::Rng { .. } => {
                    self.mismatch(format!(
                        "component '{name}': snapshot has RNG, network expects tensor"
                    ));
                }
            }
        }
    }

    fn rng(&mut self, name: &str, _value: &mut XorShiftRng) {
        if let Some(StateItem::Tensor { .. }) = self.expect(name) {
            self.mismatch(format!(
                "component '{name}': snapshot has tensor, network expects RNG"
            ));
        }
    }
}

/// Application pass: overwrites each visited component from the snapshot.
/// Only run after [`Validator`] has passed.
struct Applier<'a> {
    items: &'a [StateItem],
    next: usize,
}

impl StateVisitor for Applier<'_> {
    fn tensor(&mut self, _name: &str, value: &mut Tensor) {
        if let Some(StateItem::Tensor { value: t, .. }) = self.items.get(self.next) {
            *value = t.clone();
        }
        self.next += 1;
    }

    fn rng(&mut self, _name: &str, value: &mut XorShiftRng) {
        if let Some(StateItem::Rng { value: s, .. }) = self.items.get(self.next) {
            value.restore_state(*s);
        }
        self.next += 1;
    }
}

/// Restores a snapshot produced by [`collect_state`] into `net`.
///
/// The snapshot is validated first (component names, kinds, and tensor
/// shapes must all match the network's state layout); the network is only
/// mutated if validation passes, so a mismatched snapshot leaves `net`
/// untouched.
///
/// # Errors
///
/// Returns [`PersistError::StateMismatch`] describing the first
/// incompatibility found.
pub fn restore_state(net: &mut dyn Layer, items: &[StateItem]) -> Result<(), PersistError> {
    let mut v = Validator {
        items,
        next: 0,
        error: None,
    };
    net.visit_state("", &mut v);
    if let Some(e) = v.error {
        return Err(e);
    }
    if v.next != items.len() {
        return Err(PersistError::StateMismatch(format!(
            "snapshot has {} components, network expects {}",
            items.len(),
            v.next
        )));
    }
    let mut a = Applier { items, next: 0 };
    net.visit_state("", &mut a);
    Ok(())
}

const ITEM_TENSOR: u8 = 1;
const ITEM_RNG: u8 = 2;

fn encode_items(e: &mut Enc, items: &[StateItem]) {
    e.u64(items.len() as u64);
    for item in items {
        match item {
            StateItem::Tensor { name, value } => {
                e.u8(ITEM_TENSOR);
                e.str(name);
                encode_tensor(e, value);
            }
            StateItem::Rng { name, value } => {
                e.u8(ITEM_RNG);
                e.str(name);
                encode_rng(e, *value);
            }
        }
    }
}

fn decode_items(d: &mut Dec<'_>) -> Result<Vec<StateItem>, PersistError> {
    let count = d.usize()?;
    let mut items = Vec::new();
    for _ in 0..count {
        let tag = d.u8()?;
        let name = d.str()?;
        let item = match tag {
            ITEM_TENSOR => StateItem::Tensor {
                name,
                value: decode_tensor(d)?,
            },
            ITEM_RNG => StateItem::Rng {
                name,
                value: decode_rng(d)?,
            },
            other => {
                return Err(PersistError::Corrupt(format!(
                    "unknown state item tag {other}"
                )))
            }
        };
        items.push(item);
    }
    Ok(items)
}

/// Saves the persistent state of `net` to `path` (kind [`KIND_MODEL`]).
///
/// # Errors
///
/// Returns [`PersistError::Io`] on filesystem failure.
pub fn save_model(path: &Path, net: &mut dyn Layer) -> Result<(), PersistError> {
    let items = collect_state(net);
    let mut e = Enc::default();
    encode_items(&mut e, &items);
    write_container(path, KIND_MODEL, &e.buf)
}

/// Loads a model state bundle from `path` and restores it into `net`.
///
/// # Errors
///
/// Returns a typed [`PersistError`] on corruption, I/O failure, or a
/// snapshot that does not match `net`'s state layout (in which case `net`
/// is left untouched).
pub fn load_model(path: &Path, net: &mut dyn Layer) -> Result<(), PersistError> {
    let payload = read_container(path, KIND_MODEL)?;
    let mut d = Dec::new(&payload);
    let items = decode_items(&mut d)?;
    d.done()?;
    restore_state(net, &items)
}

// ---------------------------------------------------------------------------
// Training checkpoints
// ---------------------------------------------------------------------------

/// A complete snapshot of an in-progress [`crate::train`] run.
///
/// Captures everything the training loop needs to continue bitwise:
/// epochs completed, current learning rate, the shuffling RNG stream, the
/// *current sample order permutation* (the loop shuffles it cumulatively
/// across epochs, so RNG state alone is not enough), the history so far,
/// and the full model state.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainCheckpoint {
    /// Number of epochs fully completed.
    pub epochs_done: usize,
    /// Learning rate for the next epoch.
    pub lr: f32,
    /// Resolved data-parallel shard count of the run (what
    /// [`crate::TrainConfig::shards`] resolved to — the recorded value,
    /// not the request). Sharding fixes the gradient reduction order, so
    /// a resumed run must reuse exactly this count to stay bitwise.
    pub shards: usize,
    /// Shuffling RNG stream state.
    pub rng: RngState,
    /// Current sample order permutation.
    pub order: Vec<usize>,
    /// Per-epoch statistics recorded so far.
    pub history: Vec<EpochStats>,
    /// Model state snapshot.
    pub model: Vec<StateItem>,
}

fn encode_stats(e: &mut Enc, s: &EpochStats) {
    e.u64(s.epoch as u64);
    e.f32(s.train_loss);
    e.f32(s.train_acc);
    match s.test_acc {
        Some(a) => {
            e.u8(1);
            e.f32(a);
        }
        None => {
            e.u8(0);
            e.f32(0.0);
        }
    }
    e.f32(s.lr);
}

fn decode_stats(d: &mut Dec<'_>) -> Result<EpochStats, PersistError> {
    let epoch = d.usize()?;
    let train_loss = d.f32()?;
    let train_acc = d.f32()?;
    let flag = d.u8()?;
    let acc = d.f32()?;
    let test_acc = match flag {
        0 => None,
        1 => Some(acc),
        other => {
            return Err(PersistError::Corrupt(format!(
                "invalid test-acc flag {other}"
            )))
        }
    };
    let lr = d.f32()?;
    Ok(EpochStats {
        epoch,
        train_loss,
        train_acc,
        test_acc,
        lr,
    })
}

/// Saves a training checkpoint to `path` (kind [`KIND_TRAIN`]),
/// atomically.
///
/// # Errors
///
/// Returns [`PersistError::Io`] on filesystem failure.
pub fn save_checkpoint(path: &Path, ckpt: &TrainCheckpoint) -> Result<(), PersistError> {
    let mut e = Enc::default();
    e.u64(ckpt.epochs_done as u64);
    e.f32(ckpt.lr);
    e.u64(ckpt.shards as u64);
    encode_rng(&mut e, ckpt.rng);
    e.u64(ckpt.order.len() as u64);
    for &i in &ckpt.order {
        e.u64(i as u64);
    }
    e.u64(ckpt.history.len() as u64);
    for s in &ckpt.history {
        encode_stats(&mut e, s);
    }
    encode_items(&mut e, &ckpt.model);
    write_container(path, KIND_TRAIN, &e.buf)
}

/// Loads a training checkpoint from `path`.
///
/// # Errors
///
/// Returns a typed [`PersistError`] on any corruption or I/O failure.
pub fn load_checkpoint(path: &Path) -> Result<TrainCheckpoint, PersistError> {
    let payload = read_container(path, KIND_TRAIN)?;
    let mut d = Dec::new(&payload);
    let epochs_done = d.usize()?;
    let lr = d.f32()?;
    let shards = d.usize()?;
    let rng = decode_rng(&mut d)?;
    let order_len = d.usize()?;
    if order_len > (d.buf.len() - d.pos) / 8 {
        return Err(PersistError::Truncated {
            needed: d.pos + order_len * 8,
            available: d.buf.len(),
        });
    }
    let mut order = Vec::with_capacity(order_len);
    for _ in 0..order_len {
        order.push(d.usize()?);
    }
    let hist_len = d.usize()?;
    if hist_len > (d.buf.len() - d.pos) / 21 {
        return Err(PersistError::Truncated {
            needed: d.pos + hist_len * 21,
            available: d.buf.len(),
        });
    }
    let mut history = Vec::with_capacity(hist_len);
    for _ in 0..hist_len {
        history.push(decode_stats(&mut d)?);
    }
    let model = decode_items(&mut d)?;
    d.done()?;
    Ok(TrainCheckpoint {
        epochs_done,
        lr,
        shards,
        rng,
        order,
        history,
        model,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_reference_vector() {
        // The classic check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn enc_dec_round_trip_primitives() {
        let mut e = Enc::default();
        e.u8(7);
        e.u32(0xDEAD_BEEF);
        e.u64(u64::MAX);
        e.f32(-0.0);
        e.str("layer.0.w");
        let mut d = Dec::new(&e.buf);
        assert_eq!(d.u8().unwrap(), 7);
        assert_eq!(d.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(d.u64().unwrap(), u64::MAX);
        assert_eq!(d.f32().unwrap().to_bits(), (-0.0f32).to_bits());
        assert_eq!(d.str().unwrap(), "layer.0.w");
        d.done().unwrap();
    }

    #[test]
    fn dec_reports_truncation() {
        let mut d = Dec::new(&[1, 2]);
        let err = d.u32().unwrap_err();
        assert_eq!(
            err,
            PersistError::Truncated {
                needed: 4,
                available: 2
            }
        );
    }
}
