use xbar_core::Mapping;
use xbar_device::DeviceConfig;
use xbar_tensor::conv::{conv2d_backward, conv2d_forward, ConvGeometry};
use xbar_tensor::init::Init;
use xbar_tensor::rng::XorShiftRng;
use xbar_tensor::Tensor;

use crate::{Layer, MappedParam, NnError, WeightKind};

/// A 2-D convolution whose flattened filter bank is stored on a crossbar.
///
/// The filter bank `(out_c, in_c·k·k)` is exactly the matrix a crossbar
/// tile holds when convolutions are lowered to matrix multiplication
/// (im2col), so the same [`MappedParam`] machinery as [`crate::Dense`]
/// applies — the paper notes "all linear transforms, including
/// convolutions, are possible through ACM" (Sec. III-B).
///
/// Stride and padding are fixed at construction; the spatial geometry is
/// derived from the first input seen and revalidated on each call.
#[derive(Clone)]
pub struct Conv2d {
    in_c: usize,
    out_c: usize,
    kernel: usize,
    stride: usize,
    pad: usize,
    weights: MappedParam,
    bias: Tensor,
    bias_grad: Tensor,
    cache: Option<ConvCache>,
}

#[derive(Clone)]
struct ConvCache {
    cols: Tensor,
    /// The forward-time effective weights, kept only when they had to be
    /// materialized (mapped weights); `None` means backward can re-borrow
    /// the still-unchanged matrix from the parameter.
    w_eff: Option<Tensor>,
    n: usize,
    geom: ConvGeometry,
}

impl Conv2d {
    /// Creates a convolution layer with He-normal initialization.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Config`] on zero dimensions or a zero stride.
    #[allow(clippy::too_many_arguments)] // geometry + mapping + device are all load-bearing
    pub fn new(
        in_c: usize,
        out_c: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        kind: WeightKind,
        device: DeviceConfig,
        rng: &mut XorShiftRng,
    ) -> Result<Self, NnError> {
        if in_c == 0 || out_c == 0 || kernel == 0 {
            return Err(NnError::Config(format!(
                "conv dims must be positive: in_c={in_c} out_c={out_c} k={kernel}"
            )));
        }
        if stride == 0 {
            return Err(NnError::Config("conv stride must be positive".into()));
        }
        let fan_in = in_c * kernel * kernel;
        let w_init = Init::HeNormal.sample(&[out_c, fan_in], fan_in, out_c, rng);
        let weights = MappedParam::from_signed(&w_init, kind, device)?;
        Ok(Self {
            in_c,
            out_c,
            kernel,
            stride,
            pad,
            weights,
            bias: Tensor::zeros(&[out_c]),
            bias_grad: Tensor::zeros(&[out_c]),
            cache: None,
        })
    }

    /// Convenience: 3×3 "same" convolution (stride 1, pad 1).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Config`] on zero dimensions.
    pub fn same3x3(
        in_c: usize,
        out_c: usize,
        kind: WeightKind,
        device: DeviceConfig,
        rng: &mut XorShiftRng,
    ) -> Result<Self, NnError> {
        Self::new(in_c, out_c, 3, 1, 1, kind, device, rng)
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.out_c
    }

    /// The weight parameter.
    pub fn weights(&self) -> &MappedParam {
        &self.weights
    }

    /// Mutable access to the weight parameter.
    pub fn weights_mut(&mut self) -> &mut MappedParam {
        &mut self.weights
    }
}

impl Layer for Conv2d {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn describe(&self) -> String {
        let kind = match self.weights.mapping() {
            Some(m) => m.tag().to_string(),
            None => "signed".to_string(),
        };
        let tiles = match self.weights.tile_grid() {
            Some(g) if !g.is_monolithic() => {
                let (rows, cols) = g.grid();
                format!(" tiles={rows}x{cols}")
            }
            _ => String::new(),
        };
        format!(
            "conv {}x{}x{}->{} s{} p{} [{kind}]{tiles}",
            self.kernel, self.kernel, self.in_c, self.out_c, self.stride, self.pad
        )
    }

    fn forward(&mut self, x: &Tensor, train: bool) -> Result<Tensor, NnError> {
        if x.ndim() != 4 || x.shape()[1] != self.in_c {
            return Err(NnError::Shape(xbar_tensor::ShapeError::new(
                "conv forward",
                format!("expected (n, {}, h, w), got {:?}", self.in_c, x.shape()),
            )));
        }
        let (n, h, w) = (x.shape()[0], x.shape()[2], x.shape()[3]);
        let geom = ConvGeometry::new(h, w, self.kernel, self.kernel, self.stride, self.pad);
        // Borrow the effective weights when the parameter allows it (the
        // zero-copy hot path, as in `Dense`); otherwise materialize once
        // and keep the tensor for backward.
        let (mut y, cols, w_cached) = match self.weights.effective_weights_ref() {
            Some(w_eff) => {
                let (y, cols) = conv2d_forward(x, w_eff, &geom)?;
                (y, cols, None)
            }
            None => {
                let w_eff = self.weights.effective_weights();
                let (y, cols) = conv2d_forward(x, &w_eff, &geom)?;
                (y, cols, Some(w_eff))
            }
        };
        // Per-channel bias.
        let spatial = geom.out_h * geom.out_w;
        {
            let yd = y.data_mut();
            for ni in 0..n {
                for oc in 0..self.out_c {
                    let b = self.bias.data()[oc];
                    if b != 0.0 {
                        let base = (ni * self.out_c + oc) * spatial;
                        for v in &mut yd[base..base + spatial] {
                            *v += b;
                        }
                    }
                }
            }
        }
        if train {
            self.cache = Some(ConvCache {
                cols,
                w_eff: w_cached,
                n,
                geom,
            });
        }
        Ok(y)
    }

    fn backward(&mut self, grad: &Tensor) -> Result<Tensor, NnError> {
        let ConvCache {
            cols,
            w_eff,
            n,
            geom,
        } = self
            .cache
            .take()
            .ok_or_else(|| NnError::State("conv backward without forward".into()))?;
        let expected = [n, self.out_c, geom.out_h, geom.out_w];
        if grad.shape() != expected {
            return Err(NnError::Shape(xbar_tensor::ShapeError::new(
                "conv backward",
                format!("expected {:?}, got {:?}", expected, grad.shape()),
            )));
        }
        // Backward against the forward-time effective weights: either the
        // cached materialization, or the still-unchanged borrowable matrix
        // (nothing mutates weights between forward and backward).
        let (grad_input, grad_weight) = match &w_eff {
            Some(w_eff) => conv2d_backward(grad, &cols, w_eff, n, self.in_c, &geom)?,
            None => match self.weights.effective_weights_ref() {
                Some(w_eff) => conv2d_backward(grad, &cols, w_eff, n, self.in_c, &geom)?,
                None => {
                    let w_eff = self.weights.effective_weights();
                    conv2d_backward(grad, &cols, &w_eff, n, self.in_c, &geom)?
                }
            },
        };
        self.weights.accumulate_grad(&grad_weight)?;
        // Per-channel bias gradient: sum over batch and spatial dims.
        let spatial = geom.out_h * geom.out_w;
        for ni in 0..n {
            for oc in 0..self.out_c {
                let base = (ni * self.out_c + oc) * spatial;
                let s: f32 = grad.data()[base..base + spatial].iter().sum();
                self.bias_grad.data_mut()[oc] += s;
            }
        }
        Ok(grad_input)
    }

    fn update(&mut self, lr: f32) {
        self.weights.apply_update(lr);
        let bg = self.bias_grad.clone();
        self.bias
            .add_scaled(&bg, -lr)
            .expect("bias shapes fixed at construction");
    }

    fn zero_grad(&mut self) {
        self.weights.zero_grad();
        self.bias_grad.map_inplace(|_| 0.0);
    }

    fn num_params(&self) -> usize {
        self.weights.num_params() + self.bias.len()
    }

    fn visit_mapped(&mut self, visit: &mut dyn FnMut(&mut MappedParam)) {
        visit(&mut self.weights);
    }

    fn visit_grads(&mut self, visit: &mut dyn FnMut(&mut Tensor)) {
        self.weights.visit_grads(visit);
        visit(&mut self.bias_grad);
    }

    fn visit_grad_segments(&mut self, visit: &mut dyn FnMut(usize)) {
        self.weights.visit_grad_segments(visit);
        visit(self.bias_grad.len());
    }

    fn visit_state(&mut self, prefix: &str, visitor: &mut dyn crate::StateVisitor) {
        self.weights.visit_state(&format!("{prefix}w."), visitor);
        visitor.tensor(&format!("{prefix}bias"), &mut self.bias);
    }
}

/// Convenience constructor for a crossbar-mapped convolution.
#[allow(clippy::too_many_arguments)]
pub fn conv_mapped(
    in_c: usize,
    out_c: usize,
    kernel: usize,
    stride: usize,
    pad: usize,
    mapping: Mapping,
    device: DeviceConfig,
    rng: &mut XorShiftRng,
) -> Result<Conv2d, NnError> {
    Conv2d::new(
        in_c,
        out_c,
        kernel,
        stride,
        pad,
        WeightKind::Mapped(mapping),
        device,
        rng,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> XorShiftRng {
        XorShiftRng::new(131)
    }

    #[test]
    fn forward_shapes() {
        let mut r = rng();
        let mut c = Conv2d::new(
            2,
            4,
            3,
            1,
            1,
            WeightKind::Signed,
            DeviceConfig::ideal(),
            &mut r,
        )
        .unwrap();
        let x = Tensor::zeros(&[3, 2, 8, 8]);
        let y = c.forward(&x, true).unwrap();
        assert_eq!(y.shape(), &[3, 4, 8, 8]);
    }

    #[test]
    fn strided_forward_shapes() {
        let mut r = rng();
        let mut c = Conv2d::new(
            1,
            2,
            3,
            2,
            1,
            WeightKind::Signed,
            DeviceConfig::ideal(),
            &mut r,
        )
        .unwrap();
        let x = Tensor::zeros(&[1, 1, 8, 8]);
        let y = c.forward(&x, true).unwrap();
        assert_eq!(y.shape(), &[1, 2, 4, 4]);
    }

    #[test]
    fn rejects_wrong_channel_count() {
        let mut r = rng();
        let mut c = Conv2d::new(
            2,
            4,
            3,
            1,
            1,
            WeightKind::Signed,
            DeviceConfig::ideal(),
            &mut r,
        )
        .unwrap();
        assert!(c.forward(&Tensor::zeros(&[1, 3, 8, 8]), true).is_err());
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut r = rng();
        let mut c = Conv2d::new(
            2,
            3,
            3,
            1,
            1,
            WeightKind::Signed,
            DeviceConfig::ideal(),
            &mut r,
        )
        .unwrap();
        let x = Tensor::rand_normal(&[1, 2, 5, 5], 0.0, 1.0, &mut r);
        let y = c.forward(&x, true).unwrap();
        let gx = c.backward(&Tensor::ones(y.shape())).unwrap();
        let eps = 1e-3;
        for &i in &[0usize, 11, 23, 49] {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let yp = c.forward(&xp, false).unwrap();
            let num = (yp.sum() - y.sum()) / eps;
            assert!(
                (num - gx.data()[i]).abs() < 0.05,
                "input grad {i}: {num} vs {}",
                gx.data()[i]
            );
        }
    }

    #[test]
    fn mapped_conv_trains_toward_target() {
        let mut r = rng();
        let mut c =
            conv_mapped(1, 2, 3, 1, 1, Mapping::Acm, DeviceConfig::ideal(), &mut r).unwrap();
        let x = Tensor::rand_normal(&[4, 1, 6, 6], 0.0, 1.0, &mut r);
        let target = Tensor::rand_normal(&[4, 2, 6, 6], 0.0, 0.5, &mut r);
        let mut first = None;
        let mut last = 0.0;
        // Gradients accumulate over all 36 spatial positions, so the
        // stable learning rate is correspondingly smaller than for dense.
        for _ in 0..120 {
            let y = c.forward(&x, true).unwrap();
            let diff = y.sub(&target).unwrap();
            last = diff.norm_sq() / x.shape()[0] as f32;
            first.get_or_insert(last);
            c.zero_grad();
            c.backward(&diff.scale(2.0 / x.shape()[0] as f32)).unwrap();
            c.update(0.001);
        }
        assert!(last < first.unwrap() * 0.7, "{:?} -> {last}", first);
    }

    #[test]
    fn bias_gradient_accumulates_spatially() {
        let mut r = rng();
        let mut c = Conv2d::new(
            1,
            1,
            1,
            1,
            0,
            WeightKind::Signed,
            DeviceConfig::ideal(),
            &mut r,
        )
        .unwrap();
        let x = Tensor::ones(&[1, 1, 2, 2]);
        c.forward(&x, true).unwrap();
        c.backward(&Tensor::ones(&[1, 1, 2, 2])).unwrap();
        assert_eq!(c.bias_grad.data(), &[4.0]);
    }

    #[test]
    fn num_params_and_describe() {
        let mut r = rng();
        let c = conv_mapped(
            2,
            4,
            3,
            1,
            1,
            Mapping::DoubleElement,
            DeviceConfig::ideal(),
            &mut r,
        )
        .unwrap();
        // DE: 2*4 = 8 device rows x (2*9) inputs + 4 bias.
        assert_eq!(c.num_params(), 8 * 18 + 4);
        assert!(c.describe().contains("DE"));
    }

    #[test]
    fn geometry_adapts_to_input_size() {
        let mut r = rng();
        let mut c =
            Conv2d::same3x3(1, 1, WeightKind::Signed, DeviceConfig::ideal(), &mut r).unwrap();
        assert_eq!(
            c.forward(&Tensor::zeros(&[1, 1, 8, 8]), false)
                .unwrap()
                .shape(),
            &[1, 1, 8, 8]
        );
        assert_eq!(
            c.forward(&Tensor::zeros(&[1, 1, 5, 5]), false)
                .unwrap()
                .shape(),
            &[1, 1, 5, 5]
        );
    }
}
