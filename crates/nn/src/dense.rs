use xbar_core::{Mapping, QuantReadout};
use xbar_device::DeviceConfig;
use xbar_tensor::init::Init;
use xbar_tensor::rng::XorShiftRng;
use xbar_tensor::{linalg, Tensor};

use crate::{Layer, MappedParam, NnError, WeightKind};

/// A fully connected layer `y = x·Wᵀ + b`, with `W` optionally stored as a
/// crossbar conductance matrix via [`MappedParam`].
///
/// Biases stay in the digital domain (ordinary `f32` SGD) — the standard
/// assumption for crossbar accelerators, where the array computes the MVM
/// and bias addition happens in the periphery after the ADC.
///
/// # Example
///
/// ```
/// use xbar_core::Mapping;
/// use xbar_device::DeviceConfig;
/// use xbar_nn::{Dense, Layer, WeightKind};
/// use xbar_tensor::{rng::XorShiftRng, Tensor};
///
/// # fn main() -> Result<(), xbar_nn::NnError> {
/// let mut rng = XorShiftRng::new(5);
/// let mut fc = Dense::new(3, 2, WeightKind::Mapped(Mapping::Acm), DeviceConfig::ideal(), &mut rng)?;
/// let x = Tensor::zeros(&[4, 3]); // batch of 4
/// let y = fc.forward(&x, true)?;
/// assert_eq!(y.shape(), &[4, 2]);
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct Dense {
    weights: MappedParam,
    bias: Tensor,
    bias_grad: Tensor,
    /// Cached state from the last training forward: the input, plus the
    /// materialized effective weights for mapped parameters. `None`
    /// weights mean the parameter exposes a borrowable effective matrix
    /// ([`MappedParam::effective_weights_ref`]) which backward re-reads
    /// in place — sound because weights only change in `update`, after
    /// the backward pass.
    cache: Option<(Tensor, Option<Tensor>)>,
    /// Observed input range from [`Layer::calibrate`] passes — the
    /// activation clip range the quantized forward pins its grid to.
    /// Inference-only state: not persisted (re-run calibration after a
    /// checkpoint restore).
    act_range: Option<(f32, f32)>,
}

impl Dense {
    /// Creates a dense layer with He-normal initialization.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Config`] if either dimension is zero.
    pub fn new(
        n_in: usize,
        n_out: usize,
        kind: WeightKind,
        device: DeviceConfig,
        rng: &mut XorShiftRng,
    ) -> Result<Self, NnError> {
        if n_in == 0 || n_out == 0 {
            return Err(NnError::Config(format!(
                "dense dimensions must be positive, got {n_in}x{n_out}"
            )));
        }
        let w_init = Init::HeNormal.sample(&[n_out, n_in], n_in, n_out, rng);
        let weights = MappedParam::from_signed(&w_init, kind, device)?;
        Ok(Self {
            weights,
            bias: Tensor::zeros(&[n_out]),
            bias_grad: Tensor::zeros(&[n_out]),
            cache: None,
            act_range: None,
        })
    }

    /// Input dimension.
    pub fn n_in(&self) -> usize {
        self.weights.n_in()
    }

    /// Output dimension.
    pub fn n_out(&self) -> usize {
        self.weights.n_out()
    }

    /// The weight parameter.
    pub fn weights(&self) -> &MappedParam {
        &self.weights
    }

    /// Mutable access to the weight parameter (e.g. for variation
    /// experiments).
    pub fn weights_mut(&mut self) -> &mut MappedParam {
        &mut self.weights
    }
}

impl Layer for Dense {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn describe(&self) -> String {
        let kind = match self.weights.mapping() {
            Some(m) => m.tag().to_string(),
            None => "signed".to_string(),
        };
        let tiles = match self.weights.tile_grid() {
            Some(g) if !g.is_monolithic() => {
                let (rows, cols) = g.grid();
                format!(" tiles={rows}x{cols}")
            }
            _ => String::new(),
        };
        format!("dense {}->{} [{kind}]{tiles}", self.n_in(), self.n_out())
    }

    fn forward(&mut self, x: &Tensor, train: bool) -> Result<Tensor, NnError> {
        if x.ndim() != 2 || x.shape()[1] != self.n_in() {
            return Err(NnError::Shape(xbar_tensor::ShapeError::new(
                "dense forward",
                format!("expected (batch, {}), got {:?}", self.n_in(), x.shape()),
            )));
        }
        // Borrow the effective weights when the parameter allows it (the
        // zero-copy hot path); otherwise materialize once and keep the
        // tensor for backward.
        let (mut y, w_cached) = match self.weights.effective_weights_ref() {
            Some(w) => (linalg::matmul_nt(x, w)?, None),
            None => {
                let w_eff = self.weights.effective_weights();
                let y = linalg::matmul_nt(x, &w_eff)?;
                (y, Some(w_eff))
            }
        };
        let n_out = self.n_out();
        for (i, v) in y.data_mut().iter_mut().enumerate() {
            *v += self.bias.data()[i % n_out];
        }
        if train {
            self.cache = Some((x.clone(), w_cached));
        }
        Ok(y)
    }

    fn calibrate(&mut self, x: &Tensor) -> Result<Tensor, NnError> {
        let (mut lo, mut hi) = self.act_range.unwrap_or((f32::INFINITY, f32::NEG_INFINITY));
        for &v in x.data() {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        if lo <= hi {
            self.act_range = Some((lo, hi));
        }
        self.forward(x, false)
    }

    fn forward_quantized(&mut self, x: &Tensor, mode: &QuantReadout) -> Result<Tensor, NnError> {
        if x.ndim() != 2 || x.shape()[1] != self.n_in() {
            return Err(NnError::Shape(xbar_tensor::ShapeError::new(
                "dense forward_quantized",
                format!("expected (batch, {}), got {:?}", self.n_in(), x.shape()),
            )));
        }
        // An explicit range in `mode` wins; otherwise use the calibrated
        // one; otherwise the integer path derives it from the batch.
        let mode = QuantReadout {
            act_range: mode.act_range.or(self.act_range),
            ..*mode
        };
        let mut y = self.weights.forward_quantized(x, &mode)?;
        // Digital bias add after the ADC, as in the fp32 periphery.
        let n_out = self.n_out();
        for (i, v) in y.data_mut().iter_mut().enumerate() {
            *v += self.bias.data()[i % n_out];
        }
        Ok(y)
    }

    fn backward(&mut self, grad: &Tensor) -> Result<Tensor, NnError> {
        let (x, w_cached) = self
            .cache
            .take()
            .ok_or_else(|| NnError::State("dense backward without forward".into()))?;
        if grad.ndim() != 2 || grad.shape() != [x.shape()[0], self.n_out()] {
            return Err(NnError::Shape(xbar_tensor::ShapeError::new(
                "dense backward",
                format!(
                    "expected ({}, {}), got {:?}",
                    x.shape()[0],
                    self.n_out(),
                    grad.shape()
                ),
            )));
        }
        // dW = gradᵀ · x, routed into the mapped parameter.
        let grad_w = linalg::matmul_tn(grad, &x)?;
        self.weights.accumulate_grad(&grad_w)?;
        // db = column sums of grad.
        let n_out = self.n_out();
        for (i, &g) in grad.data().iter().enumerate() {
            self.bias_grad.data_mut()[i % n_out] += g;
        }
        // dx = grad · W, against the forward-time effective weights:
        // either the cached materialization, or the still-unchanged
        // borrowable matrix (nothing mutates weights between forward and
        // backward; `update` runs after).
        let dx = match &w_cached {
            Some(w_eff) => linalg::matmul(grad, w_eff)?,
            None => match self.weights.effective_weights_ref() {
                Some(w) => linalg::matmul(grad, w)?,
                None => linalg::matmul(grad, &self.weights.effective_weights())?,
            },
        };
        Ok(dx)
    }

    fn update(&mut self, lr: f32) {
        self.weights.apply_update(lr);
        let bg = self.bias_grad.clone();
        self.bias
            .add_scaled(&bg, -lr)
            .expect("bias shapes fixed at construction");
    }

    fn zero_grad(&mut self) {
        self.weights.zero_grad();
        self.bias_grad.map_inplace(|_| 0.0);
    }

    fn num_params(&self) -> usize {
        self.weights.num_params() + self.bias.len()
    }

    fn visit_mapped(&mut self, visit: &mut dyn FnMut(&mut MappedParam)) {
        visit(&mut self.weights);
    }

    fn visit_grads(&mut self, visit: &mut dyn FnMut(&mut Tensor)) {
        self.weights.visit_grads(visit);
        visit(&mut self.bias_grad);
    }

    fn visit_grad_segments(&mut self, visit: &mut dyn FnMut(usize)) {
        self.weights.visit_grad_segments(visit);
        visit(self.bias_grad.len());
    }

    fn visit_state(&mut self, prefix: &str, visitor: &mut dyn crate::StateVisitor) {
        self.weights.visit_state(&format!("{prefix}w."), visitor);
        visitor.tensor(&format!("{prefix}bias"), &mut self.bias);
    }
}

/// Convenience constructor for a baseline (signed, full-precision) dense
/// layer.
pub fn dense_signed(n_in: usize, n_out: usize, rng: &mut XorShiftRng) -> Result<Dense, NnError> {
    Dense::new(n_in, n_out, WeightKind::Signed, DeviceConfig::ideal(), rng)
}

/// Convenience constructor for a crossbar-mapped dense layer.
pub fn dense_mapped(
    n_in: usize,
    n_out: usize,
    mapping: Mapping,
    device: DeviceConfig,
    rng: &mut XorShiftRng,
) -> Result<Dense, NnError> {
    Dense::new(n_in, n_out, WeightKind::Mapped(mapping), device, rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> XorShiftRng {
        XorShiftRng::new(121)
    }

    #[test]
    fn forward_shape_and_bias() {
        let mut r = rng();
        let mut fc = dense_signed(3, 2, &mut r).unwrap();
        fc.bias = Tensor::from_vec(vec![1.0, -1.0], &[2]).unwrap();
        let x = Tensor::zeros(&[2, 3]);
        let y = fc.forward(&x, false).unwrap();
        assert_eq!(y.shape(), &[2, 2]);
        assert_eq!(y.data(), &[1.0, -1.0, 1.0, -1.0]);
    }

    #[test]
    fn rejects_wrong_input_width() {
        let mut r = rng();
        let mut fc = dense_signed(3, 2, &mut r).unwrap();
        assert!(fc.forward(&Tensor::zeros(&[2, 4]), true).is_err());
    }

    fn rand_input(r: &mut XorShiftRng, shape: &[usize]) -> Tensor {
        let mut x = Tensor::zeros(shape);
        for v in x.data_mut() {
            *v = 2.0 * r.next_f32() - 1.0;
        }
        x
    }

    #[test]
    fn signed_quantized_forward_tracks_fp32() {
        let mut r = rng();
        let mut fc = dense_signed(24, 6, &mut r).unwrap();
        fc.bias = Tensor::from_vec((0..6).map(|i| 0.1 * i as f32).collect(), &[6]).unwrap();
        let x = rand_input(&mut r, &[5, 24]);
        let want = fc.forward(&x, false).unwrap();
        let got = fc.forward_quantized(&x, &QuantReadout::default()).unwrap();
        // 7-bit activations × 8-bit weights: close, not exact.
        for (&g, &e) in got.data().iter().zip(want.data()) {
            assert!((g - e).abs() < 0.05, "{g} vs {e}");
        }
    }

    #[test]
    fn mapped_quantized_forward_tracks_fp32() {
        for mapping in [Mapping::Acm, Mapping::BiasColumn, Mapping::DoubleElement] {
            let mut r = rng();
            let mut fc =
                dense_mapped(24, 6, mapping, DeviceConfig::quantized_linear(8), &mut r).unwrap();
            let x = rand_input(&mut r, &[5, 24]);
            let want = fc.forward(&x, false).unwrap();
            let got = fc.forward_quantized(&x, &QuantReadout::default()).unwrap();
            let scale = want.data().iter().fold(0.0f32, |m, &v| m.max(v.abs()));
            for (&g, &e) in got.data().iter().zip(want.data()) {
                assert!(
                    (g - e).abs() < 0.02 + 0.05 * scale,
                    "{mapping:?}: {g} vs {e}"
                );
            }
        }
    }

    #[test]
    fn calibration_pins_the_activation_grid() {
        let mut r = rng();
        let mut fc = dense_mapped(
            16,
            4,
            Mapping::Acm,
            DeviceConfig::quantized_linear(8),
            &mut r,
        )
        .unwrap();
        let wide = rand_input(&mut r, &[8, 16]);
        fc.calibrate(&wide).unwrap();
        // A narrow batch now quantizes on the calibrated (wide) grid, not
        // its own: outputs differ from the uncalibrated layer's.
        let narrow = wide.scale(0.1);
        let calibrated = fc
            .forward_quantized(&narrow, &QuantReadout::default())
            .unwrap();
        let mut fresh = dense_mapped(
            16,
            4,
            Mapping::Acm,
            DeviceConfig::quantized_linear(8),
            &mut rng(),
        )
        .unwrap();
        let uncalibrated = fresh
            .forward_quantized(&narrow, &QuantReadout::default())
            .unwrap();
        assert_ne!(calibrated.data(), uncalibrated.data());
        // An explicit range in the mode overrides calibration.
        let pinned = fc
            .forward_quantized(
                &narrow,
                &QuantReadout {
                    act_range: Some((-1.0, 1.0)),
                    ..QuantReadout::default()
                },
            )
            .unwrap();
        assert!(pinned.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn quantized_forward_rejects_unquantizable_devices() {
        let mut r = rng();
        let mut fc = dense_mapped(8, 3, Mapping::Acm, DeviceConfig::ideal(), &mut r).unwrap();
        let x = rand_input(&mut r, &[2, 8]);
        assert!(fc.forward_quantized(&x, &QuantReadout::default()).is_err());
    }

    #[test]
    fn backward_without_forward_is_state_error() {
        let mut r = rng();
        let mut fc = dense_signed(3, 2, &mut r).unwrap();
        let err = fc.backward(&Tensor::zeros(&[1, 2])).unwrap_err();
        assert!(matches!(err, NnError::State(_)));
    }

    #[test]
    fn gradients_match_finite_differences_baseline() {
        let mut r = rng();
        let mut fc = dense_signed(4, 3, &mut r).unwrap();
        let x = Tensor::rand_normal(&[2, 4], 0.0, 1.0, &mut r);
        let y = fc.forward(&x, true).unwrap();
        let grad_out = Tensor::ones(y.shape());
        let gx = fc.backward(&grad_out).unwrap();
        // Numeric check on input gradient.
        let eps = 1e-3;
        for &i in &[0usize, 3, 5] {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let yp = fc.forward(&xp, false).unwrap();
            let num = (yp.sum() - y.sum()) / eps;
            assert!(
                (num - gx.data()[i]).abs() < 0.05,
                "input grad {i}: numeric {num} vs {}",
                gx.data()[i]
            );
        }
    }

    #[test]
    fn preconditioned_update_moves_weights_by_exact_sgd_step() {
        // The preconditioned routing (Sᵀ·(S·Sᵀ)⁻¹) makes a step on M move
        // the *logical* weights by exactly −lr·∂L/∂W for every mapping
        // (absent clamping) — verify ΔW/lr == grad for each.
        let mut r = rng();
        for mapping in Mapping::ALL {
            let mut fc = dense_mapped(4, 3, mapping, DeviceConfig::ideal(), &mut r).unwrap();
            let x = Tensor::rand_normal(&[2, 4], 0.0, 1.0, &mut r);
            let y = fc.forward(&x, true).unwrap();
            fc.backward(&Tensor::ones(y.shape())).unwrap();
            // Loss = sum(y): dL/dW = 1ᵀ·x per output row.
            let ones = Tensor::ones(&[3, 2]);
            let grad_w = linalg::matmul(&ones, &x).unwrap();
            let w_before = fc.weights().effective_weights();
            let lr = 1e-4; // small enough that no conductance clamps
            fc.update(lr);
            let w_after = fc.weights().effective_weights();
            let delta = w_before.sub(&w_after).unwrap().scale(1.0 / lr);
            let tol = 0.02 * grad_w.abs_max().max(1.0);
            let exact = delta
                .data()
                .iter()
                .zip(grad_w.data())
                .filter(|(&d, &g)| (d - g).abs() <= tol)
                .count();
            // ACM's chained init inevitably leaves a few conductances at a
            // clamp boundary (the suffix walk saturates); those weights
            // receive a *smaller* step, never a larger or flipped one.
            let required = if mapping == Mapping::Acm {
                delta.len() * 2 / 3
            } else {
                delta.len()
            };
            assert!(
                exact >= required,
                "{mapping}: only {exact}/{} elements took the exact SGD step",
                delta.len()
            );
        }
    }

    #[test]
    fn training_step_reduces_quadratic_loss() {
        let mut r = rng();
        for kind in [
            WeightKind::Signed,
            WeightKind::Mapped(Mapping::Acm),
            WeightKind::Mapped(Mapping::DoubleElement),
            WeightKind::Mapped(Mapping::BiasColumn),
        ] {
            let mut fc = Dense::new(4, 2, kind, DeviceConfig::ideal(), &mut r).unwrap();
            let x = Tensor::rand_normal(&[8, 4], 0.0, 1.0, &mut r);
            let target = Tensor::rand_normal(&[8, 2], 0.0, 1.0, &mut r);
            let mut first_loss = None;
            let mut last_loss = 0.0;
            for _ in 0..60 {
                let y = fc.forward(&x, true).unwrap();
                let diff = y.sub(&target).unwrap();
                last_loss = diff.norm_sq();
                first_loss.get_or_insert(last_loss);
                fc.zero_grad();
                fc.backward(&diff.scale(2.0 / 8.0)).unwrap();
                fc.update(0.05);
            }
            let first = first_loss.unwrap();
            assert!(
                last_loss < first * 0.5,
                "{kind:?}: loss {first} -> {last_loss}"
            );
        }
    }

    #[test]
    fn visit_mapped_reaches_weights() {
        let mut r = rng();
        let mut fc = dense_mapped(3, 2, Mapping::Acm, DeviceConfig::ideal(), &mut r).unwrap();
        let mut count = 0;
        fc.visit_mapped(&mut |_p| count += 1);
        assert_eq!(count, 1);
    }

    #[test]
    fn describe_mentions_mapping() {
        let mut r = rng();
        let fc = dense_mapped(3, 2, Mapping::Acm, DeviceConfig::ideal(), &mut r).unwrap();
        assert!(fc.describe().contains("ACM"));
        let fcb = dense_signed(3, 2, &mut r).unwrap();
        assert!(fcb.describe().contains("signed"));
    }

    #[test]
    fn num_params_counts_elements_and_bias() {
        let mut r = rng();
        let fc = dense_mapped(4, 3, Mapping::Acm, DeviceConfig::ideal(), &mut r).unwrap();
        assert_eq!(fc.num_params(), 4 * 4 + 3); // (3+1) x 4 elements + 3 bias
    }
}
