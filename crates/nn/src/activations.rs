use xbar_device::quantize_signed;
use xbar_tensor::Tensor;

use crate::{Layer, NnError};

/// Rectified linear unit, `y = max(x, 0)`.
#[derive(Clone, Debug, Default)]
pub struct Relu {
    mask: Option<Vec<bool>>,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Relu {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn describe(&self) -> String {
        "relu".into()
    }

    fn forward(&mut self, x: &Tensor, train: bool) -> Result<Tensor, NnError> {
        if train {
            self.mask = Some(x.data().iter().map(|&v| v > 0.0).collect());
        }
        Ok(x.map(|v| v.max(0.0)))
    }

    fn backward(&mut self, grad: &Tensor) -> Result<Tensor, NnError> {
        let mask = self
            .mask
            .take()
            .ok_or_else(|| NnError::State("relu backward without forward".into()))?;
        if mask.len() != grad.len() {
            return Err(NnError::Shape(xbar_tensor::ShapeError::new(
                "relu backward",
                format!("cached {} elements, grad has {}", mask.len(), grad.len()),
            )));
        }
        let mut out = grad.clone();
        for (g, &m) in out.data_mut().iter_mut().zip(&mask) {
            if !m {
                *g = 0.0;
            }
        }
        Ok(out)
    }
}

/// Activation fake-quantization with a straight-through estimator.
///
/// Quantizes activations to `bits` uniform levels over `[-limit, limit]`
/// in the forward pass; the backward pass passes gradients through
/// unchanged inside the clip range and zeroes them outside (the clipped-STE
/// rule). The paper quantizes activations to 8 bits in all Fig. 5
/// experiments — place one of these after each activation.
#[derive(Clone, Debug)]
pub struct QuantAct {
    bits: u8,
    limit: f32,
    inside: Option<Vec<bool>>,
}

impl QuantAct {
    /// Creates an activation quantizer.
    ///
    /// # Panics
    ///
    /// Panics if `bits == 0` or `limit <= 0`.
    pub fn new(bits: u8, limit: f32) -> Self {
        assert!(bits >= 1, "need at least 1 bit");
        assert!(limit > 0.0, "limit must be positive");
        Self {
            bits,
            limit,
            inside: None,
        }
    }

    /// The paper's standard 8-bit activation quantizer with a ReLU-friendly
    /// clip at 4.0.
    pub fn standard() -> Self {
        Self::new(8, 4.0)
    }

    /// Bit width.
    pub fn bits(&self) -> u8 {
        self.bits
    }
}

impl Layer for QuantAct {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn describe(&self) -> String {
        format!("quant-act {}b clip {}", self.bits, self.limit)
    }

    fn forward(&mut self, x: &Tensor, train: bool) -> Result<Tensor, NnError> {
        if train {
            self.inside = Some(x.data().iter().map(|&v| v.abs() <= self.limit).collect());
        }
        Ok(x.map(|v| quantize_signed(v, self.bits, self.limit)))
    }

    fn backward(&mut self, grad: &Tensor) -> Result<Tensor, NnError> {
        let inside = self
            .inside
            .take()
            .ok_or_else(|| NnError::State("quant-act backward without forward".into()))?;
        if inside.len() != grad.len() {
            return Err(NnError::Shape(xbar_tensor::ShapeError::new(
                "quant-act backward",
                format!("cached {} elements, grad has {}", inside.len(), grad.len()),
            )));
        }
        let mut out = grad.clone();
        for (g, &ok) in out.data_mut().iter_mut().zip(&inside) {
            if !ok {
                *g = 0.0;
            }
        }
        Ok(out)
    }
}

/// Flattens an NCHW tensor to `(batch, c·h·w)`; the backward pass restores
/// the original shape.
#[derive(Clone, Debug, Default)]
pub struct Flatten {
    input_shape: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Flatten {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn describe(&self) -> String {
        "flatten".into()
    }

    fn forward(&mut self, x: &Tensor, train: bool) -> Result<Tensor, NnError> {
        if x.ndim() < 2 {
            return Err(NnError::Shape(xbar_tensor::ShapeError::new(
                "flatten",
                format!("need at least 2 dims, got {:?}", x.shape()),
            )));
        }
        let batch = x.shape()[0];
        let rest: usize = x.shape()[1..].iter().product();
        if train {
            self.input_shape = Some(x.shape().to_vec());
        }
        Ok(x.reshape(&[batch, rest])?)
    }

    fn backward(&mut self, grad: &Tensor) -> Result<Tensor, NnError> {
        let shape = self
            .input_shape
            .take()
            .ok_or_else(|| NnError::State("flatten backward without forward".into()))?;
        Ok(grad.reshape(&shape)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_forward_and_backward() {
        let mut r = Relu::new();
        let x = Tensor::from_vec(vec![-1.0, 0.0, 2.0], &[1, 3]).unwrap();
        let y = r.forward(&x, true).unwrap();
        assert_eq!(y.data(), &[0.0, 0.0, 2.0]);
        let g = r.backward(&Tensor::ones(&[1, 3])).unwrap();
        assert_eq!(g.data(), &[0.0, 0.0, 1.0]);
    }

    #[test]
    fn relu_backward_requires_forward() {
        let mut r = Relu::new();
        assert!(r.backward(&Tensor::ones(&[1])).is_err());
    }

    #[test]
    fn quant_act_quantizes_and_clips() {
        let mut q = QuantAct::new(2, 1.0); // 4 levels over [-1, 1]
        let x = Tensor::from_vec(vec![-2.0, -0.4, 0.4, 2.0], &[1, 4]).unwrap();
        let y = q.forward(&x, true).unwrap();
        assert_eq!(y.data()[0], -1.0);
        assert_eq!(y.data()[3], 1.0);
        assert!(y.data()[1] > -1.0 && y.data()[1] < 0.0);
        // STE: gradient flows inside the clip range, blocked outside.
        let g = q.backward(&Tensor::ones(&[1, 4])).unwrap();
        assert_eq!(g.data(), &[0.0, 1.0, 1.0, 0.0]);
    }

    #[test]
    fn quant_act_8bit_is_nearly_transparent() {
        let mut q = QuantAct::standard();
        let x = Tensor::from_vec(vec![0.1, 1.3, -2.7], &[1, 3]).unwrap();
        let y = q.forward(&x, false).unwrap();
        assert!(y.all_close(&x, 4.0 * 2.0 / 255.0 + 1e-6));
    }

    #[test]
    #[should_panic(expected = "limit must be positive")]
    fn quant_act_rejects_bad_limit() {
        let _ = QuantAct::new(8, 0.0);
    }

    #[test]
    fn flatten_round_trips() {
        let mut f = Flatten::new();
        let x = Tensor::from_vec((0..24).map(|v| v as f32).collect(), &[2, 3, 2, 2]).unwrap();
        let y = f.forward(&x, true).unwrap();
        assert_eq!(y.shape(), &[2, 12]);
        let g = f.backward(&y).unwrap();
        assert_eq!(g.shape(), &[2, 3, 2, 2]);
        assert_eq!(g, x);
    }

    #[test]
    fn flatten_rejects_scalars() {
        let mut f = Flatten::new();
        assert!(f.forward(&Tensor::zeros(&[3]), true).is_err());
    }
}
