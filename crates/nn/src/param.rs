//! The crossbar-mapped weight parameter — the training-side embodiment of
//! the paper's `W = S · M` factorization.

use xbar_core::{
    checksum_residual, magnitude_permutation, quantized_raw_batch, remap_for_faults, HealthAction,
    HealthMonitor, Mapping, PeripheryMatrix, QuantReadout, RepairAttempt, RepairPolicy,
    RepairStage, ScrubReport, TileGrid, TileHealth,
};
use xbar_device::{ConductanceRange, DeviceConfig, FaultMap};
use xbar_tensor::rng::XorShiftRng;
use xbar_tensor::{linalg, qmatmul_nt, QuantizedTensor, Tensor};

use crate::NnError;

/// Persistent state of the online self-healing loop of one mapped
/// parameter — present exactly when the parameter is crossbar-mapped AND
/// its device carries an active [`xbar_device::LifetimeFaultModel`]
/// (decided once at construction, so the checkpoint component count never
/// depends on runtime events).
///
/// Everything is kept as tensors so it rides the ordinary
/// [`crate::StateVisitor`] checkpoint path; the served conductance
/// override is *not* persisted — it is a pure function of
/// `(shadow, shift, health, epoch)` and is rebuilt after a restore.
#[derive(Debug, Clone)]
struct ScrubState {
    /// Scrub epoch counter, shape `[1]` (0 = never scrubbed).
    epoch: Tensor,
    /// Flattened [`HealthMonitor`], 4 floats per tile.
    health: Tensor,
    /// Persistent remap compensation: programming targets are
    /// `clamp(q(M) + shift)` elementwise, so a compensation decided at
    /// repair time keeps tracking the trained conductances.
    shift: Tensor,
}

/// How a layer's weights are realised.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WeightKind {
    /// Conventional signed floating-point weights — the paper's *baseline*
    /// model (Fig. 5a/5e), unconstrained by any crossbar.
    Signed,
    /// Weights stored as a non-negative conductance matrix on a crossbar
    /// under the given [`Mapping`].
    Mapped(Mapping),
}

/// A weight parameter stored in crossbar form.
///
/// Logically this is a signed `(n_out, n_in)` weight matrix `W`, but what
/// is *stored and trained* is the mapping's non-negative conductance
/// matrix `M` of shape `(N_D, n_in)` plus a fixed per-layer scale `α`, so
/// that `W = α · S · q(M)` where `q` is the device quantizer (identity for
/// full-precision devices). This mirrors the paper's training setup: "`M`
/// is constrained to be non-negative and is followed by a periphery matrix
/// defined as a fixed layer with values in `{−1, +1, 0}`" (Sec. IV).
///
/// When the device carries a physical tile bound
/// ([`DeviceConfig::tile_shape`]), the parameter is laid out on a
/// [`TileGrid`]: outputs split into column groups that each fit one tile
/// width, each group carries its own local periphery (and, for BC/ACM,
/// its own reference column — the per-group `N_D = outputs + 1`
/// accounting), and `S` is block-diagonal over the groups. The stored `M`
/// stacks the per-group conductance rows; with no tile bound the grid is
/// the degenerate 1×1 monolithic case and everything reduces to the
/// classic single-array layout.
///
/// Three training-time behaviours are owned here:
///
/// * **Quantization-aware forward** — `q(M)` in the forward pass, straight-
///   through gradients in the backward pass (the paper's ref \[17\] style);
/// * **Clipped SGD** — after every update `M` is clamped back into the
///   device conductance range (non-negativity constraint);
/// * **Nonlinear in-situ updates** — when the device has a nonlinear
///   [`xbar_device::UpdateModel`], each element's SGD delta is converted to a pulse
///   distance and applied through the device transfer curve, saturating
///   near the range ends exactly as hardware would.
///
/// For inference-under-variation studies (paper Fig. 6) the parameter can
/// temporarily [`MappedParam::apply_variation`] — sampling noisy
/// conductances around the quantized states — and later
/// [`MappedParam::clear_variation`].
#[derive(Debug, Clone)]
pub struct MappedParam {
    kind: WeightKind,
    /// Tile layout of the conductance matrix (mapped weights only);
    /// monolithic 1×1 when the device has no tile bound.
    grid: Option<TileGrid>,
    /// Block-diagonal over the grid's per-group stencils (with each
    /// group's physical row permutation folded in for [`Mapping::Perm`]).
    periphery: Option<PeripheryMatrix>,
    /// Physical row order for [`Mapping::Perm`]: entry at physical row
    /// `p` is the *global logical* device row stored there (indices kept
    /// as `f32` so the permutation rides the tensor checkpoint path).
    /// `None` for every other kind. Fixed at construction; a checkpoint
    /// restore overwrites it and rebuilds the periphery to match.
    perm: Option<Tensor>,
    device: DeviceConfig,
    /// Master copy: `M (N_D × n_in)` for mapped weights (conductance
    /// units), or signed `W (n_out × n_in)` for the baseline.
    shadow: Tensor,
    /// Gradient with respect to `shadow`.
    grad: Tensor,
    /// When set, forward passes read these conductances instead of
    /// `q(shadow)` — used for Monte-Carlo variation sampling.
    variation_override: Option<Tensor>,
    /// The stuck-cell map of the last [`MappedParam::apply_faults`] call,
    /// kept so a later [`MappedParam::apply_parasitics`] can freeze stuck
    /// cells out of the drift decay (a stuck device holds its defect
    /// value; it has no programmed state left to lose).
    fault_map: Option<xbar_device::FaultMap>,
    n_out: usize,
    n_in: usize,
    /// Conductance-to-logical-weight scale.
    alpha: f32,
    /// Private stream for stochastic pulse rounding (nonlinear in-situ
    /// updates), seeded deterministically from the initial weights.
    update_rng: XorShiftRng,
    /// Online self-healing state; `Some` iff mapped with an active
    /// lifetime fault model.
    scrub: Option<ScrubState>,
}

impl MappedParam {
    /// Builds a parameter from an initial signed weight matrix
    /// `w_init (n_out × n_in)`.
    ///
    /// For mapped kinds, `α` is chosen so the BC mapping can represent
    /// roughly ±4 standard deviations of the initializer — giving every
    /// mapping the same logical quantization step while preserving the
    /// paper's dynamic-range relationships (DE and ACM reach ±8σ at the
    /// same step size). The initial `M` is then constructed per mapping:
    ///
    /// * DE — positive/negative split of `w/α`;
    /// * BC — midpoint shift of `w/α`;
    /// * ACM — mean-centred suffix sums of `w/α` around the midpoint,
    ///   clamped to the range (columns whose cumulative spread exceeds the
    ///   device span are saturated; training recovers them).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Config`] if `w_init` is not a non-empty 2-D
    /// matrix.
    pub fn from_signed(
        w_init: &Tensor,
        kind: WeightKind,
        device: DeviceConfig,
    ) -> Result<Self, NnError> {
        if w_init.ndim() != 2 || w_init.is_empty() {
            return Err(NnError::Config(format!(
                "weight init must be non-empty 2-D, got {:?}",
                w_init.shape()
            )));
        }
        let (n_out, n_in) = (w_init.shape()[0], w_init.shape()[1]);
        // Deterministic per-parameter stream: derived from the init
        // contents so two layers with different inits decorrelate.
        let seed = (w_init.len() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ u64::from(w_init.data()[0].to_bits());
        let update_rng = XorShiftRng::new(seed | 1);
        match kind {
            WeightKind::Signed => {
                let shadow = w_init.clone();
                let grad = Tensor::zeros(shadow.shape());
                Ok(Self {
                    kind,
                    grid: None,
                    periphery: None,
                    perm: None,
                    device,
                    shadow,
                    grad,
                    variation_override: None,
                    fault_map: None,
                    n_out,
                    n_in,
                    alpha: 1.0,
                    update_rng,
                    scrub: None,
                })
            }
            WeightKind::Mapped(mapping) => {
                let range = device.range();
                let span = range.span();
                // rms of the initializer ~ He σ.
                let rms = (w_init.norm_sq() / w_init.len() as f32).sqrt().max(1e-8);
                // Every mapping represents the same logical weight range
                // [−w_lim, +w_lim]. DE and ACM spread that range over the
                // full conductance span; BC only has half the span
                // available (paper Sec. II), so its α is doubled and its
                // effective quantization step is 2× coarser — "DE
                // represents twice as many weight values as BC", with ACM
                // recovering DE's step at BC's hardware cost, limited only
                // by the column-balance coupling (paper Sec. III-D).
                //
                // The clip is bit-aware (ACIQ-style optimal clipping for a
                // Gaussian): with only 2^B levels, a tighter clip trades
                // rarely-used tails for a finer step. Without this, 1–2-bit
                // training produces ±3σ binary weights and diverges.
                let w_lim = clip_sigmas(device.bits()) * rms;
                let alpha = match mapping {
                    // Perm is BC with reordered rows: same half-span range.
                    Mapping::BiasColumn | Mapping::Perm => 2.0 * w_lim / span,
                    Mapping::DoubleElement | Mapping::Acm => w_lim / span,
                };
                let wc = w_init.scale(1.0 / alpha); // conductance units
                                                    // Lay the conductances out on the device's tile grid: each
                                                    // column group is an independent physical sub-array with
                                                    // its own stencil (and reference column), initialised from
                                                    // its own row-slice of the scaled weights.
                let grid = TileGrid::new(n_out, n_in, mapping, device.tile_shape())
                    .map_err(NnError::Mapping)?;
                let mut shadow = Tensor::zeros(&[grid.nd_total(), n_in]);
                for g in grid.col_groups() {
                    let wc_group = rows_slice(&wc, g.out_start, g.out_len);
                    let m_group = init_conductances(&wc_group, mapping, &device);
                    let cols = n_in;
                    shadow.data_mut()[g.dev_start * cols..(g.dev_start + g.dev_len) * cols]
                        .copy_from_slice(m_group.data());
                }
                // Perm: fix each group's physical row order from the
                // initial conductances (large mid-deviation rows first,
                // nearest the drivers), store the shadow in that physical
                // order, and fold the inverse into the periphery. The
                // order is decided once here and never re-sorted during
                // training — re-sorting would physically move device rows.
                let perm = if mapping == Mapping::Perm {
                    let mid = range.midpoint();
                    let mut perm = vec![0.0f32; grid.nd_total()];
                    for g in grid.col_groups() {
                        let group = rows_slice(&shadow, g.dev_start, g.dev_len);
                        let local = magnitude_permutation(&group, mid);
                        let permuted = permute_rows(&group, &local);
                        shadow.data_mut()[g.dev_start * n_in..(g.dev_start + g.dev_len) * n_in]
                            .copy_from_slice(permuted.data());
                        for (p, &logical) in local.iter().enumerate() {
                            perm[g.dev_start + p] = (g.dev_start + logical) as f32;
                        }
                    }
                    Some(Tensor::from_vec(perm, &[grid.nd_total()]).expect("len matches"))
                } else {
                    None
                };
                let periphery = match &perm {
                    Some(perm) => periphery_for_perm(&grid, perm),
                    None => grid.periphery(),
                };
                let grad = Tensor::zeros(shadow.shape());
                // The scrub state exists iff the device wears out, decided
                // here once: the checkpoint component list must not change
                // under runtime events, only under construction config.
                let scrub = device.lifetime().is_active().then(|| ScrubState {
                    epoch: Tensor::zeros(&[1]),
                    health: Tensor::zeros(&[grid.num_tiles() * 4]),
                    shift: Tensor::zeros(&[grid.nd_total(), n_in]),
                });
                Ok(Self {
                    kind,
                    grid: Some(grid),
                    periphery: Some(periphery),
                    perm,
                    device,
                    shadow,
                    grad,
                    variation_override: None,
                    fault_map: None,
                    n_out,
                    n_in,
                    alpha,
                    update_rng,
                    scrub,
                })
            }
        }
    }

    /// The weight-realisation kind.
    pub fn kind(&self) -> WeightKind {
        self.kind
    }

    /// The mapping, if the parameter is crossbar-mapped.
    pub fn mapping(&self) -> Option<Mapping> {
        match self.kind {
            WeightKind::Signed => None,
            WeightKind::Mapped(m) => Some(m),
        }
    }

    /// The device model.
    pub fn device(&self) -> &DeviceConfig {
        &self.device
    }

    /// Logical output dimension.
    pub fn n_out(&self) -> usize {
        self.n_out
    }

    /// Logical input dimension.
    pub fn n_in(&self) -> usize {
        self.n_in
    }

    /// Conductance-to-weight scale `α`.
    pub fn alpha(&self) -> f32 {
        self.alpha
    }

    /// The tile layout of the conductance matrix, if the parameter is
    /// crossbar-mapped (monolithic 1×1 when the device has no tile
    /// bound).
    pub fn tile_grid(&self) -> Option<&TileGrid> {
        self.grid.as_ref()
    }

    /// Device rows holding a fixed reference column: the last *logical*
    /// device row of each column group (BC/ACM layouts; callers only use
    /// this for BC and Perm, whose references are frozen at mid-range).
    /// For Perm the reference sits wherever the group's permutation put
    /// the logical last row — physically the row farthest from the
    /// driver, since its all-mid contents have zero mid-deviation.
    fn reference_rows(&self) -> Vec<usize> {
        match &self.grid {
            Some(grid) if !matches!(grid.mapping(), Mapping::DoubleElement) => grid
                .col_groups()
                .iter()
                .map(|g| {
                    let logical_ref = g.dev_start + g.dev_len - 1;
                    match &self.perm {
                        Some(perm) => {
                            let data = &perm.data()[g.dev_start..g.dev_start + g.dev_len];
                            let local = data
                                .iter()
                                .position(|&v| v as usize == logical_ref)
                                .expect("every logical row appears in the permutation");
                            g.dev_start + local
                        }
                        None => logical_ref,
                    }
                })
                .collect(),
            _ => Vec::new(),
        }
    }

    /// The stored physical→logical row permutation ([`Mapping::Perm`]
    /// only).
    pub fn permutation(&self) -> Option<&Tensor> {
        self.perm.as_ref()
    }

    /// Number of stored scalar parameters (crossbar elements for mapped
    /// weights — `N_D · n_in` — or `n_out · n_in` for the baseline).
    pub fn num_params(&self) -> usize {
        self.shadow.len()
    }

    /// The trained master tensor: `M` (mapped) or `W` (baseline).
    pub fn shadow(&self) -> &Tensor {
        &self.shadow
    }

    /// The device-visible conductances: `q(M)` snapped to quantizer states
    /// (mapped weights only).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::State`] for baseline (signed) parameters.
    pub fn conductances(&self) -> Result<Tensor, NnError> {
        match self.kind {
            WeightKind::Signed => Err(NnError::State(
                "baseline signed weights have no conductances".into(),
            )),
            WeightKind::Mapped(_) => Ok(self.quantized_shadow()),
        }
    }

    fn quantized_shadow(&self) -> Tensor {
        match self.device.quantizer_opt() {
            Some(q) => {
                // Uniform forward quantization (DoReFa-style, the paper's
                // ref [17]): write-verify programming reaches any of the
                // 2^B uniform target levels regardless of the pulse curve.
                let mut out = self.shadow.map(|g| q.quantize(g));
                // Each BC reference column is a fixed, one-time-calibrated
                // analog reference at exactly mid-range (paper Fig. 1b) —
                // it is not re-programmed during training and is not
                // constrained to the weight-update state ladder. On a tile
                // grid every column group carries its own reference (the
                // last device row of the group).
                if matches!(
                    self.kind,
                    WeightKind::Mapped(Mapping::BiasColumn) | WeightKind::Mapped(Mapping::Perm)
                ) {
                    let n_in = out.shape()[1];
                    let mid = self.device.range().midpoint();
                    for row in self.reference_rows() {
                        for v in &mut out.data_mut()[row * n_in..(row + 1) * n_in] {
                            *v = mid;
                        }
                    }
                }
                out
            }
            None => self.shadow.clone(),
        }
    }

    /// The effective weights as a borrow, when no transformation
    /// separates them from stored state: the baseline (`Signed`)
    /// parameter's shadow, or its variation override while one is
    /// active. Mapped parameters — whose effective matrix `α·S·q(M)`
    /// must be computed — return `None`; materialize those with
    /// [`Self::effective_weights`]. Hot paths (the dense forward/backward
    /// pair) prefer this accessor to avoid copying the full weight
    /// matrix every step.
    pub fn effective_weights_ref(&self) -> Option<&Tensor> {
        match (&self.kind, &self.variation_override) {
            (WeightKind::Signed, Some(noisy)) => Some(noisy),
            (WeightKind::Signed, None) => Some(&self.shadow),
            _ => None,
        }
    }

    /// The effective signed logical weight matrix `W (n_out × n_in)` seen
    /// by the forward pass: `α·S·q(M)` for mapped weights (or the varied
    /// conductances while a variation override is active), `W` itself for
    /// the baseline.
    pub fn effective_weights(&self) -> Tensor {
        match (&self.kind, &self.periphery) {
            (WeightKind::Signed, _) => match &self.variation_override {
                Some(noisy) => noisy.clone(),
                None => self.shadow.clone(),
            },
            (WeightKind::Mapped(_), Some(s)) => {
                let g = match &self.variation_override {
                    Some(noisy) => noisy.clone(),
                    None => self.quantized_shadow(),
                };
                linalg::matmul(s.matrix(), &g)
                    .expect("periphery/conductance dims fixed at construction")
                    .scale(self.alpha)
            }
            _ => unreachable!("mapped parameters always carry a periphery"),
        }
    }

    /// Int8 inference forward `X (batch × n_in) → Y (batch × n_out)`.
    ///
    /// * **Mapped** weights run the crossbar's ADC-exact integer readout
    ///   ([`quantized_raw_batch`]): activations quantize to
    ///   `mode.act_bits`, conductances (the quantized shadow, or the
    ///   variation override while one is active) are read on the device
    ///   state grid, each tile's column sums digitize through `mode.adc`,
    ///   and the digital periphery combine + `α` scaling mirror the fp32
    ///   composition exactly. Off-grid conductances (BC/Perm reference
    ///   rows, variation, drift) snap to the nearest state — the read
    ///   discretization a digital readout cannot avoid.
    /// * **Signed** (baseline) weights run the digital int8 GEMM
    ///   ([`qmatmul_nt`]): per-row symmetric 8-bit weights against affine
    ///   activations.
    ///
    /// Both paths accumulate exactly in i32, so the output is bitwise
    /// identical for any thread count.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::State`] if a mapped parameter's device has no
    /// quantizer or more than 8 bits (centered state codes must fit i8),
    /// or a shape error on input mismatch.
    pub fn forward_quantized(&self, x: &Tensor, mode: &QuantReadout) -> Result<Tensor, NnError> {
        if x.ndim() != 2 || x.shape()[1] != self.n_in {
            return Err(NnError::Shape(xbar_tensor::ShapeError::new(
                "forward_quantized",
                format!("expected (batch, {}), got {:?}", self.n_in, x.shape()),
            )));
        }
        match self.kind {
            WeightKind::Signed => {
                let w = match &self.variation_override {
                    Some(noisy) => noisy,
                    None => &self.shadow,
                };
                let qx =
                    QuantizedTensor::quantize_affine_with_range(x, mode.act_bits, mode.act_range);
                let qw = QuantizedTensor::quantize_symmetric_per_row(w, 8);
                Ok(qmatmul_nt(&qx, &qw))
            }
            WeightKind::Mapped(_) => {
                let q = self.device.quantizer_opt().ok_or_else(|| {
                    NnError::State("quantized inference needs a quantized device (bits ≤ 8)".into())
                })?;
                if q.bits() > 8 {
                    return Err(NnError::State(format!(
                        "device bit width {} exceeds 8; the integer readout stores \
                         centered state codes in i8",
                        q.bits()
                    )));
                }
                let g = match &self.variation_override {
                    Some(noisy) => noisy.clone(),
                    None => self.quantized_shadow(),
                };
                let raw = quantized_raw_batch(&g, self.grid.as_ref(), &q, mode, x);
                let s = self
                    .periphery
                    .as_ref()
                    .expect("mapped parameters always carry a periphery");
                Ok(s.combine(&raw)?.scale(self.alpha))
            }
        }
    }

    /// Accumulates the gradient of the loss with respect to the *logical*
    /// weights into the stored shadow gradient, routing through the
    /// periphery transpose for mapped weights
    /// (`∂L/∂M = α · Sᵀ · ∂L/∂W`; straight-through past the quantizer).
    ///
    /// # Errors
    ///
    /// Returns a shape error if `grad_w` is not `(n_out, n_in)`.
    pub fn accumulate_grad(&mut self, grad_w: &Tensor) -> Result<(), NnError> {
        if grad_w.shape() != [self.n_out, self.n_in] {
            return Err(NnError::Shape(xbar_tensor::ShapeError::new(
                "accumulate_grad",
                format!(
                    "expected ({}, {}), got {:?}",
                    self.n_out,
                    self.n_in,
                    grad_w.shape()
                ),
            )));
        }
        match (&self.kind, &self.periphery) {
            (WeightKind::Signed, _) => {
                self.grad.add_scaled(grad_w, 1.0)?;
            }
            (WeightKind::Mapped(mapping), Some(s)) => {
                // Route through the *preconditioned* transpose,
                // Sᵀ·(S·Sᵀ)⁻¹, so that an SGD step on M moves the logical
                // weights by exactly −lr·∂L/∂W for every mapping. Plain
                // Sᵀ routing would give ΔW = −lr·(S·Sᵀ)·∂L/∂W: identity-
                // like for DE/BC but a channel *Laplacian* for ACM, whose
                // near-null smooth modes train ~100× slower — an artefact
                // of short schedules the paper's long training absorbs.
                // Preconditioning isolates the representation effects
                // (range, quantization, update nonlinearity) that the
                // paper actually compares.
                // The Gram S·Sᵀ is block-diagonal over the grid's column
                // groups, so preconditioning happens group-locally.
                let grid = self.grid.as_ref().expect("mapped parameters carry a grid");
                let pre = match mapping {
                    // DE: S·Sᵀ = 2·I (per group, hence globally).
                    Mapping::DoubleElement => grad_w.scale(0.5),
                    // BC with frozen references: identity. Perm's Gram is
                    // S·Pᵀ·P·Sᵀ = S·Sᵀ — row permutation cancels.
                    Mapping::BiasColumn | Mapping::Perm => grad_w.clone(),
                    // ACM: each group's Gram is the tridiagonal path
                    // Laplacian tridiag(−1, 2, −1) of size out_len; solve
                    // per group per input column.
                    Mapping::Acm => {
                        let mut pre = Tensor::zeros(&[self.n_out, self.n_in]);
                        for g in grid.col_groups() {
                            let g_slice = rows_slice(grad_w, g.out_start, g.out_len);
                            let solved = solve_acm_gram(&g_slice);
                            pre.data_mut()
                                [g.out_start * self.n_in..(g.out_start + g.out_len) * self.n_in]
                                .copy_from_slice(solved.data());
                        }
                        pre
                    }
                };
                let mut routed = linalg::matmul_tn(s.matrix(), &pre)?.scale(self.alpha);
                // Every BC reference column is *fixed* at mid-range (paper
                // Sec. II: "the conductance of each element in this column
                // is fixed to the middle of the conductance range") — it
                // receives no training updates. Without this freeze the
                // reference accumulates the negated sum of its group's
                // output gradients and saturates, collapsing the sign
                // range.
                if matches!(mapping, Mapping::BiasColumn | Mapping::Perm) {
                    let n_in = self.n_in;
                    for row in self.reference_rows() {
                        for v in &mut routed.data_mut()[row * n_in..(row + 1) * n_in] {
                            *v = 0.0;
                        }
                    }
                }
                self.grad.add_scaled(&routed, 1.0)?;
            }
            _ => unreachable!(),
        }
        Ok(())
    }

    /// Resets the accumulated gradient to zero.
    pub fn zero_grad(&mut self) {
        self.grad.map_inplace(|_| 0.0);
    }

    /// Applies one vanilla-SGD step `shadow ← shadow − lr·grad`, clipped to
    /// the device range (mapped weights), and — when the device has a
    /// nonlinear [`xbar_device::UpdateModel`] — routed element-wise through the pulse
    /// transfer curve.
    pub fn apply_update(&mut self, lr: f32) {
        match self.kind {
            WeightKind::Signed => {
                let g = self.grad.clone();
                self.shadow
                    .add_scaled(&g, -lr)
                    .expect("shadow/grad shapes fixed at construction");
            }
            WeightKind::Mapped(_) => {
                // The stored gradient is d L / d M = α·Sᵀ·(dL/dW); stepping
                // M by −lr·grad would move the *logical* weights by
                // α²·lr·S·Sᵀ·(dL/dW). Rescale by 1/α² so the same learning
                // rate produces logical-weight updates of baseline
                // magnitude — this is what lets the paper compare all four
                // model types under identical hyper-parameters.
                let step = lr / (self.alpha * self.alpha);
                let range = self.device.range();
                let update = self.device.update();
                if update.is_linear() {
                    let g = self.grad.clone();
                    self.shadow
                        .add_scaled(&g, -step)
                        .expect("shadow/grad shapes fixed at construction");
                    self.shadow.clamp_inplace(range.g_min(), range.g_max());
                } else {
                    // In-situ blind pulsing: the update controller only
                    // knows the device's *average* step, so it requests
                    // n = Δg/mean_step pulses (stochastically rounded to an
                    // integer — unbiased); the device then executes them
                    // along its nonlinear transfer curve, overshooting
                    // where steps are large and sticking near saturation
                    // where they vanish. This granular, state-dependent
                    // mismatch is the accuracy-degradation mechanism behind
                    // the paper's Fig. 5f–h.
                    let total = self.device.total_pulses();
                    let mean_step = update.mean_step(total, range);
                    let grad = self.grad.data();
                    for (g, &dg) in self.shadow.data_mut().iter_mut().zip(grad) {
                        let desired = -step * dg;
                        if desired != 0.0 {
                            let raw = desired / mean_step;
                            let floor = raw.floor();
                            let frac = raw - floor;
                            let pulses =
                                floor as i64 + i64::from(self.update_rng.next_f32() < frac);
                            if pulses != 0 {
                                *g = update.apply_fractional(*g, pulses as f32, total, range);
                            }
                        }
                    }
                }
            }
        }
    }

    /// Samples device variation around the quantized conductances and
    /// makes subsequent forward passes use the noisy copy — one
    /// Monte-Carlo sample of the paper's Fig. 6 methodology. For baseline
    /// weights, noise of `σ·span` (in conductance units, scaled by `α`) is
    /// added directly to the signed weights.
    ///
    /// Call [`MappedParam::clear_variation`] to return to ideal inference.
    pub fn apply_variation(&mut self, sigma_frac: f32, rng: &mut XorShiftRng) {
        let range = self.device.range();
        let var = xbar_device::VariationModel::new(sigma_frac);
        match self.kind {
            WeightKind::Signed => {
                // Equivalent per-element noise in logical units.
                let sigma = sigma_frac * range.span() * self.alpha;
                let noise = Tensor::from_fn(self.shadow.shape(), |_| rng.normal_with(0.0, sigma));
                self.variation_override =
                    Some(self.shadow.add(&noise).expect("same-shape add cannot fail"));
            }
            WeightKind::Mapped(_) => {
                let targets = self.quantized_shadow();
                self.variation_override = Some(var.sample_tensor(&targets, range, rng));
            }
        }
        // A fresh variation draw starts from the pristine array.
        self.fault_map = None;
    }

    /// Deals this parameter's crossbar a stuck-at defect pattern drawn
    /// from `faults`, programs the quantized conductances onto the
    /// defective array (through the device's [`xbar_device::ProgrammingModel`]
    /// with `sigma_frac` variation per write), and makes subsequent forward
    /// passes use the faulty conductances — the fault-injection analogue of
    /// [`MappedParam::apply_variation`].
    ///
    /// With `remap` set, the healthy cells of each faulty column are first
    /// moved to compensate for the frozen ones, exploiting the mapping's
    /// null-space slack ([`xbar_core::remap_for_faults`]); the returned
    /// [`xbar_core::RemapReport`] carries the unabsorbed residual. The
    /// [`xbar_device::ProgrammingReport`] lists stuck and unconverged
    /// cells rather than failing on them.
    ///
    /// Call [`MappedParam::clear_variation`] to return to ideal inference.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::State`] for baseline (signed) parameters, which
    /// have no crossbar cells to fail.
    pub fn apply_faults(
        &mut self,
        faults: xbar_device::FaultModel,
        sigma_frac: f32,
        remap: bool,
        rng: &mut XorShiftRng,
    ) -> Result<
        (
            xbar_device::ProgrammingReport,
            Option<xbar_core::RemapReport>,
        ),
        NnError,
    > {
        let Some(grid) = &self.grid else {
            return Err(NnError::State(
                "baseline signed weights have no crossbar cells to fail".into(),
            ));
        };
        let range = self.device.range();
        let var = xbar_device::VariationModel::new(sigma_frac);
        let mut targets = self.quantized_shadow();
        let n_in = targets.shape()[1];
        let map = faults.sample_map(targets.shape()[0], n_in, rng);
        let remap_report = if remap {
            // Remap each column group against its own local stencil, as
            // separate physical tiles would: compensation for a fault in
            // one group never moves another group's cells. The compensated
            // targets are programmed as-is: write-verify programming is an
            // analog trim, not restricted to the state ladder that governs
            // training updates. Re-snapping here would quantize away
            // sub-step compensations.
            let mut merged: Option<xbar_core::RemapReport> = None;
            for g in grid.col_groups() {
                let mut group_map = xbar_device::FaultMap::pristine(g.dev_len, n_in);
                for (row, col, kind) in map.iter_stuck() {
                    if (g.dev_start..g.dev_start + g.dev_len).contains(&row) {
                        group_map.set(row - g.dev_start, col, kind);
                    }
                }
                let group_targets = rows_slice(&targets, g.dev_start, g.dev_len);
                let mut group_periphery = grid.mapping().periphery(g.out_len);
                if let Some(perm) = &self.perm {
                    // The stored rows are in physical order; compensate
                    // against the same permuted stencil the forward uses.
                    group_periphery = group_periphery.permuted(&group_perm(perm, g));
                }
                let (shifted, report) = xbar_core::remap_for_faults(
                    &group_targets,
                    &group_periphery,
                    &group_map,
                    range,
                )
                .map_err(NnError::Mapping)?;
                targets.data_mut()[g.dev_start * n_in..(g.dev_start + g.dev_len) * n_in]
                    .copy_from_slice(shifted.data());
                merged = Some(match merged {
                    Some(acc) => acc.merge(&report),
                    None => report,
                });
            }
            merged
        } else {
            None
        };
        let (programmed, prog_report) =
            self.device
                .programming()
                .program_tensor(&targets, &var, range, Some(&map), rng);
        self.variation_override = Some(programmed);
        self.fault_map = Some(map);
        Ok((prog_report, remap_report))
    }

    /// Composes the parasitic read non-idealities — conductance drift,
    /// then tile-local IR-drop line-resistance attenuation — onto the
    /// currently-programmed conductances (the override installed by
    /// [`MappedParam::apply_variation`]/[`MappedParam::apply_faults`], or
    /// the ideal quantized shadow when none is active). Cells recorded as
    /// stuck by a preceding [`MappedParam::apply_faults`] do not drift.
    /// A no-op — the override stays bitwise untouched — when both models
    /// are inactive, so the degenerate `(R_line = 0, t = 0)` point of a
    /// parasitic sweep reproduces the parasitic-free path exactly.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::State`] for baseline signed weights, which have
    /// no crossbar wires to drop voltage over.
    pub fn apply_parasitics(
        &mut self,
        line: xbar_device::LineResistanceModel,
        drift: xbar_device::DriftModel,
    ) -> Result<(), NnError> {
        if line.is_none() && !drift.is_active() {
            return Ok(());
        }
        let Some(grid) = &self.grid else {
            return Err(NnError::State(
                "baseline signed weights have no crossbar lines to parasitically load".into(),
            ));
        };
        let mut conductances = match self.variation_override.take() {
            Some(c) => c,
            None => self.quantized_shadow(),
        };
        let device = self.device.with_line_resistance(line).with_drift(drift);
        let pristine;
        let faults = match &self.fault_map {
            Some(map) => map,
            None => {
                pristine = xbar_device::FaultMap::pristine(conductances.shape()[0], self.n_in);
                &pristine
            }
        };
        grid.apply_parasitics(&mut conductances, &device, faults);
        self.variation_override = Some(conductances);
        Ok(())
    }

    /// Installs an explicit conductance override for inference — the
    /// deployment-study generalization of [`MappedParam::apply_variation`]:
    /// forward passes read `conductances` (for mapped weights) or the
    /// given signed weights (baseline) until
    /// [`MappedParam::clear_variation`] is called. Used by redeployment
    /// ablations (e.g. programming a QAT-trained network onto a device
    /// with a non-uniform state ladder).
    ///
    /// # Panics
    ///
    /// Panics if the shape differs from the stored shadow tensor.
    pub fn set_inference_override(&mut self, conductances: Tensor) {
        assert_eq!(
            conductances.shape(),
            self.shadow.shape(),
            "override shape must match the stored parameter"
        );
        self.variation_override = Some(conductances);
        self.fault_map = None;
    }

    /// Removes any variation override (returns to ideal quantized
    /// inference).
    pub fn clear_variation(&mut self) {
        self.variation_override = None;
        self.fault_map = None;
    }

    /// Whether a variation override is active.
    pub fn has_variation(&self) -> bool {
        self.variation_override.is_some()
    }

    /// Whether this parameter runs the online self-healing loop (mapped
    /// weights on a device with an active lifetime fault model).
    pub fn scrub_active(&self) -> bool {
        self.scrub.is_some()
    }

    /// The current scrub epoch (0 = never scrubbed, or scrubbing
    /// inactive).
    pub fn scrub_epoch(&self) -> u32 {
        self.scrub.as_ref().map_or(0, |s| s.epoch.data()[0] as u32)
    }

    /// Advances this parameter's crossbar one scrub epoch: overlays the
    /// lifetime fault arrivals for the new epoch, refresh-programs every
    /// tile from the trained conductances (plus any persistent remap
    /// compensation), and — with `detect` set — runs the ABFT checksum
    /// detection, staged-repair, and quarantine loop of
    /// [`xbar_core::SelfHealingCrossbar`] against `policy`. The resulting
    /// served conductances are installed as the inference override, so
    /// subsequent forward passes read the aged (and healed) array.
    ///
    /// With `detect` unset the refresh programming still happens but the
    /// health machinery is bypassed entirely — the maintenance-free
    /// deployment an experiment compares against.
    ///
    /// Scrub-path programming is noiseless and consumes no RNG, so the
    /// whole array state after any tick is a pure function of
    /// `(shadow, shift, health, epoch)` — which is exactly what a
    /// checkpoint persists and [`MappedParam::visit_state`] rebuilds.
    ///
    /// Returns `None` (and changes nothing, bitwise) when scrubbing is
    /// inactive.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Mapping`] if a tile-local remap fails or the
    /// persisted health state is invalid.
    pub fn scrub_tick(
        &mut self,
        detect: bool,
        policy: &RepairPolicy,
    ) -> Result<Option<ScrubReport>, NnError> {
        if self.scrub.is_none() {
            return Ok(None);
        }
        let q = self.quantized_shadow();
        let grid = self.grid.clone().expect("scrub state implies a grid");
        let periphery = self
            .periphery
            .clone()
            .expect("mapped parameters carry a periphery");
        let lifetime = self.device.lifetime();
        let range = self.device.range();
        let programming = self.device.programming();
        let (nd, n_in) = (grid.nd_total(), self.n_in);

        let scrub = self.scrub.as_mut().expect("checked above");
        let epoch = scrub.epoch.data()[0] as u32 + 1;
        let faults = lifetime.fault_map(nd, n_in, epoch);
        let prev_stuck = lifetime.fault_map(nd, n_in, epoch - 1).num_stuck();
        let mut monitor =
            HealthMonitor::from_flat(scrub.health.data(), *policy).map_err(NnError::Mapping)?;
        let quarantined_before = monitor.num_quarantined();
        let targets = scrub_targets(&q, &scrub.shift, range);
        let mut served = Tensor::zeros(&[nd, n_in]);
        let mut report = ScrubReport {
            epoch,
            new_faults: faults.num_stuck() - prev_stuck,
            detections: 0,
            repairs: Vec::new(),
            quarantined_now: 0,
            quarantined_total: 0,
            analog_tiles: 0,
            total_tiles: grid.num_tiles(),
            exhausted_cells: 0,
        };
        // Noiseless scrub programming consumes no randomness; the stream
        // exists only to satisfy the programming API.
        let mut rng = XorShiftRng::new(SCRUB_RNG_SEED);
        let mut tile_idx = 0usize;
        for &(r0, rl) in grid.row_blocks() {
            for g in grid.col_groups() {
                let tf = tile_fault_map(&faults, g, r0, rl);
                let t_block = block_slice(&targets, g.dev_start, g.dev_len, r0, rl);
                let q_block = block_slice(&q, g.dev_start, g.dev_len, r0, rl);
                let (prog, prep) = programming.program_tensor(
                    &t_block,
                    &xbar_device::VariationModel::none(),
                    range,
                    Some(&tf),
                    &mut rng,
                );
                report.exhausted_cells += prep.num_unconverged();
                let mut serve = prog;
                if detect {
                    let residual = checksum_residual(&serve, &t_block);
                    match monitor.observe(tile_idx, residual, epoch) {
                        HealthAction::Detected => report.detections += 1,
                        HealthAction::Repair(stage) => {
                            // The remap rungs revise this tile's block of
                            // the persistent shift tensor; targets are then
                            // recomputed from the `clamp(q + shift)` formula
                            // so a checkpoint rebuild reproduces the same
                            // f32 operations bitwise.
                            let weight_residual = match stage {
                                RepairStage::Reprogram => None,
                                RepairStage::Remap | RepairStage::FullRemap => {
                                    let base = if stage == RepairStage::FullRemap {
                                        q_block.clone()
                                    } else {
                                        t_block.clone()
                                    };
                                    let stencil = PeripheryMatrix::try_new(block_slice(
                                        periphery.matrix(),
                                        g.out_start,
                                        g.out_len,
                                        g.dev_start,
                                        g.dev_len,
                                    ))
                                    .map_err(NnError::Mapping)?;
                                    let (shifted, rr) =
                                        remap_for_faults(&base, &stencil, &tf, range)
                                            .map_err(NnError::Mapping)?;
                                    let shift_block =
                                        shifted.sub(&q_block).map_err(NnError::Shape)?;
                                    write_block_slice(
                                        &mut scrub.shift,
                                        g.dev_start,
                                        r0,
                                        &shift_block,
                                    );
                                    Some(rr.residual_after())
                                }
                            };
                            let t_block = {
                                let shift_block =
                                    block_slice(&scrub.shift, g.dev_start, g.dev_len, r0, rl);
                                let mut t = q_block.add(&shift_block).map_err(NnError::Shape)?;
                                t.map_inplace(|v| range.clamp(v));
                                t
                            };
                            let (prog2, prep2) = programming.program_tensor(
                                &t_block,
                                &xbar_device::VariationModel::none(),
                                range,
                                Some(&tf),
                                &mut rng,
                            );
                            report.exhausted_cells += prep2.num_unconverged();
                            let residual_after = checksum_residual(&prog2, &t_block);
                            let healed = match weight_residual {
                                Some(wr) => wr <= policy.weight_tolerance,
                                None => residual_after <= policy.residual_threshold,
                            };
                            let state_after = monitor.record_attempt(tile_idx, epoch, healed);
                            serve = prog2;
                            if state_after == TileHealth::Quarantined {
                                // Exact digital fallback: the tile's partial
                                // product comes from the ideal quantized
                                // conductances; its compensation is cleared.
                                write_block_slice(
                                    &mut scrub.shift,
                                    g.dev_start,
                                    r0,
                                    &Tensor::zeros(&[g.dev_len, rl]),
                                );
                                serve = q_block.clone();
                            }
                            report.repairs.push(RepairAttempt {
                                epoch,
                                tile: tile_idx,
                                stage,
                                residual_before: residual,
                                residual_after,
                                healed,
                            });
                        }
                        HealthAction::AlreadyQuarantined => serve = q_block.clone(),
                        HealthAction::Nothing | HealthAction::Backoff => {}
                    }
                }
                write_block_slice(&mut served, g.dev_start, r0, &serve);
                tile_idx += 1;
            }
        }
        report.quarantined_total = monitor.num_quarantined();
        report.quarantined_now = report.quarantined_total - quarantined_before;
        report.analog_tiles = grid.num_tiles() - report.quarantined_total;
        scrub.epoch = Tensor::from_vec(vec![epoch as f32], &[1]).expect("len matches");
        let flat = monitor.to_flat();
        let flat_len = flat.len();
        scrub.health = Tensor::from_vec(flat, &[flat_len]).expect("len matches");
        self.variation_override = Some(served);
        self.fault_map = Some(faults);
        Ok(Some(report))
    }

    /// Rebuilds the served conductance override from the persisted scrub
    /// state — called after a checkpoint restore so a resumed run forwards
    /// through exactly the array the interrupted run was serving. The
    /// served view is a pure function of `(shadow, shift, health, epoch)`:
    /// quarantined tiles serve the ideal quantized block, everything else
    /// is noiselessly refresh-programmed over the epoch's fault map.
    fn rebuild_scrub_override(&mut self) {
        let Some(scrub) = &self.scrub else { return };
        let epoch = scrub.epoch.data()[0] as u32;
        if epoch == 0 {
            return;
        }
        let grid = self.grid.as_ref().expect("scrub state implies a grid");
        let lifetime = self.device.lifetime();
        let range = self.device.range();
        let programming = self.device.programming();
        let (nd, n_in) = (grid.nd_total(), self.n_in);
        let faults = lifetime.fault_map(nd, n_in, epoch);
        let q = self.quantized_shadow();
        let targets = scrub_targets(&q, &scrub.shift, range);
        // The policy is irrelevant here: only the persisted per-tile
        // states are read, no repair decision is taken.
        let monitor = HealthMonitor::from_flat(scrub.health.data(), RepairPolicy::default())
            .expect("scrub health tensor holds monitor-encoded state");
        let mut served = Tensor::zeros(&[nd, n_in]);
        let mut rng = XorShiftRng::new(SCRUB_RNG_SEED);
        let mut tile_idx = 0usize;
        for &(r0, rl) in grid.row_blocks() {
            for g in grid.col_groups() {
                let serve = if monitor.state(tile_idx) == TileHealth::Quarantined {
                    block_slice(&q, g.dev_start, g.dev_len, r0, rl)
                } else {
                    let tf = tile_fault_map(&faults, g, r0, rl);
                    let t_block = block_slice(&targets, g.dev_start, g.dev_len, r0, rl);
                    programming
                        .program_tensor(
                            &t_block,
                            &xbar_device::VariationModel::none(),
                            range,
                            Some(&tf),
                            &mut rng,
                        )
                        .0
                };
                write_block_slice(&mut served, g.dev_start, r0, &serve);
                tile_idx += 1;
            }
        }
        self.variation_override = Some(served);
        self.fault_map = Some(faults);
    }

    /// Checks the digital-fallback contract on the live served array:
    /// every quarantined tile's served conductances must equal the
    /// fault-free quantized shadow block bitwise, so a quarantined tile's
    /// MVM contribution is exactly what the ideal array would produce.
    /// Vacuously `true` when scrubbing is inactive or no tick has run;
    /// `false` also covers corrupt health state.
    pub fn scrub_fallback_parity(&self) -> bool {
        let Some(scrub) = &self.scrub else {
            return true;
        };
        if scrub.epoch.data()[0] as u32 == 0 {
            return true;
        }
        let (Some(served), Some(grid)) = (&self.variation_override, &self.grid) else {
            return true;
        };
        let Ok(monitor) = HealthMonitor::from_flat(scrub.health.data(), RepairPolicy::default())
        else {
            return false;
        };
        let q = self.quantized_shadow();
        let mut tile_idx = 0usize;
        for &(r0, rl) in grid.row_blocks() {
            for g in grid.col_groups() {
                if monitor.state(tile_idx) == TileHealth::Quarantined {
                    for row in g.dev_start..g.dev_start + g.dev_len {
                        for col in r0..r0 + rl {
                            if served.at(&[row, col]).to_bits() != q.at(&[row, col]).to_bits() {
                                return false;
                            }
                        }
                    }
                }
                tile_idx += 1;
            }
        }
        true
    }

    /// Visits the accumulated shadow-gradient tensor — the flatten/scatter
    /// hook behind [`crate::Layer::visit_grads`]. Gradient routing
    /// ([`MappedParam::accumulate_grad`]) is linear, so per-shard shadow
    /// gradients sum exactly like logical-weight gradients would.
    pub fn visit_grads(&mut self, visit: &mut dyn FnMut(&mut Tensor)) {
        visit(&mut self.grad);
    }

    /// Visits the reduction-segment lengths of the shadow gradient — one
    /// per [`TileGrid`] column group when the parameter is tiled (a
    /// group's logical output rows are contiguous in the row-major
    /// `(n_out, n_in)` gradient, so each group is one contiguous flat
    /// range of `out_len * n_in` values), one whole-tensor segment
    /// otherwise. Backs [`crate::Layer::visit_grad_segments`].
    pub fn visit_grad_segments(&self, visit: &mut dyn FnMut(usize)) {
        match &self.grid {
            // The shadow (and its gradient) is laid out `[nd_total, n_in]`
            // with group g occupying device rows `dev_start..dev_start +
            // dev_len`, so each group's gradient is one contiguous flat
            // slice of `dev_len * n_in` floats.
            Some(grid) if grid.col_groups().len() > 1 => {
                for g in grid.col_groups() {
                    visit(g.dev_len * self.n_in);
                }
            }
            _ => visit(self.grad.len()),
        }
    }

    /// Visits this parameter's persistent state: the trained master tensor
    /// (`M` or `W`) and the stochastic pulse-rounding stream. The gradient
    /// and any variation override are transient and excluded (see
    /// [`crate::Layer::visit_state`]).
    pub fn visit_state(&mut self, prefix: &str, visitor: &mut dyn crate::StateVisitor) {
        visitor.tensor(&format!("{prefix}shadow"), &mut self.shadow);
        visitor.rng(&format!("{prefix}update_rng"), &mut self.update_rng);
        // The Perm row order is part of the trained state: the shadow rows
        // are stored physically, so the permutation that decodes them must
        // travel with them. After a restore pass may have overwritten it,
        // rebuild the periphery so the stencil always matches.
        if let Some(perm) = &mut self.perm {
            visitor.tensor(&format!("{prefix}perm"), perm);
            let grid = self.grid.as_ref().expect("Perm parameters carry a grid");
            self.periphery = Some(periphery_for_perm(grid, perm));
        }
        // Self-healing state travels with the parameter; the served
        // override it implies is rebuilt (not persisted) — see
        // `rebuild_scrub_override`. Absent when scrubbing is inactive, so
        // pre-existing checkpoints keep their exact component list.
        if let Some(scrub) = &mut self.scrub {
            visitor.tensor(&format!("{prefix}scrub_epoch"), &mut scrub.epoch);
            visitor.tensor(&format!("{prefix}scrub_health"), &mut scrub.health);
            visitor.tensor(&format!("{prefix}scrub_shift"), &mut scrub.shift);
            self.rebuild_scrub_override();
        }
    }
}

/// Deterministic seed of the (never-consumed) scrub programming stream.
const SCRUB_RNG_SEED: u64 = 0x5C2B;

/// Elementwise `clamp(q + shift)` — the single formula both the scrub
/// tick and the checkpoint rebuild derive programming targets from, so
/// the two paths stay bitwise identical.
fn scrub_targets(q: &Tensor, shift: &Tensor, range: ConductanceRange) -> Tensor {
    let mut t = q.add(shift).expect("shift shape fixed at construction");
    t.map_inplace(|v| range.clamp(v));
    t
}

/// The sub-map of `faults` covering one tile (column group `g` × input
/// rows `r0..r0+rl`), in tile-local coordinates.
fn tile_fault_map(faults: &FaultMap, g: &xbar_core::ColGroup, r0: usize, rl: usize) -> FaultMap {
    let mut tf = FaultMap::pristine(g.dev_len, rl);
    for (row, col, kind) in faults.iter_stuck() {
        if (g.dev_start..g.dev_start + g.dev_len).contains(&row) && (r0..r0 + rl).contains(&col) {
            tf.set(row - g.dev_start, col - r0, kind);
        }
    }
    tf
}

/// Extracts the `(r0..r0+rl, c0..c0+cl)` block of a 2-D tensor.
fn block_slice(t: &Tensor, r0: usize, rl: usize, c0: usize, cl: usize) -> Tensor {
    let cols = t.shape()[1];
    let mut out = Tensor::zeros(&[rl, cl]);
    for r in 0..rl {
        let src = &t.data()[(r0 + r) * cols + c0..(r0 + r) * cols + c0 + cl];
        out.data_mut()[r * cl..(r + 1) * cl].copy_from_slice(src);
    }
    out
}

/// Writes `src` into the `(r0.., c0..)` block of `dst`.
fn write_block_slice(dst: &mut Tensor, r0: usize, c0: usize, src: &Tensor) {
    let cols = dst.shape()[1];
    let (srl, scl) = (src.shape()[0], src.shape()[1]);
    for r in 0..srl {
        dst.data_mut()[(r0 + r) * cols + c0..(r0 + r) * cols + c0 + scl]
            .copy_from_slice(&src.data()[r * scl..(r + 1) * scl]);
    }
}

/// Reorders the rows of a 2-D tensor: output row `p` is input row
/// `perm[p]`.
fn permute_rows(t: &Tensor, perm: &[usize]) -> Tensor {
    let cols = t.shape()[1];
    let mut out = Tensor::zeros(&[perm.len(), cols]);
    for (p, &logical) in perm.iter().enumerate() {
        out.data_mut()[p * cols..(p + 1) * cols]
            .copy_from_slice(&t.data()[logical * cols..(logical + 1) * cols]);
    }
    out
}

/// The group-local physical→logical row order for column group `g`,
/// sliced out of the stacked permutation tensor.
fn group_perm(perm: &Tensor, g: &xbar_core::ColGroup) -> Vec<usize> {
    perm.data()[g.dev_start..g.dev_start + g.dev_len]
        .iter()
        .map(|&v| v as usize - g.dev_start)
        .collect()
}

/// Rebuilds the block-diagonal periphery with each group's physical row
/// permutation folded into its local stencil.
fn periphery_for_perm(grid: &TileGrid, perm: &Tensor) -> PeripheryMatrix {
    let blocks: Vec<PeripheryMatrix> = grid
        .col_groups()
        .iter()
        .map(|g| {
            grid.mapping()
                .periphery(g.out_len)
                .permuted(&group_perm(perm, g))
        })
        .collect();
    PeripheryMatrix::block_diagonal(&blocks)
}

/// Copies rows `[start, start + len)` of a 2-D tensor into a new tensor.
fn rows_slice(t: &Tensor, start: usize, len: usize) -> Tensor {
    let cols = t.shape()[1];
    Tensor::from_vec(
        t.data()[start * cols..(start + len) * cols].to_vec(),
        &[len, cols],
    )
    .expect("slice length matches shape")
}

/// Solves `(S·Sᵀ)·X = G` for the ACM Gram matrix — the symmetric positive
/// definite tridiagonal `tridiag(−1, 2, −1)` of size `n_out` — via the
/// Thomas algorithm, one solve per input column of `G (n_out × n_in)`.
fn solve_acm_gram(g: &Tensor) -> Tensor {
    let (n_out, n_in) = (g.shape()[0], g.shape()[1]);
    if n_out == 1 {
        return g.scale(0.5);
    }
    let mut x = Tensor::zeros(&[n_out, n_in]);
    // Forward sweep coefficients are column-independent; precompute.
    let mut c_prime = vec![0.0f32; n_out];
    c_prime[0] = -1.0 / 2.0;
    for i in 1..n_out - 1 {
        c_prime[i] = -1.0 / (2.0 + c_prime[i - 1]);
    }
    for col in 0..n_in {
        let mut d_prime = vec![0.0f32; n_out];
        d_prime[0] = g.at(&[0, col]) / 2.0;
        for i in 1..n_out {
            let denom = 2.0 + c_prime[i - 1];
            d_prime[i] = (g.at(&[i, col]) + d_prime[i - 1]) / denom;
        }
        *x.at_mut(&[n_out - 1, col]) = d_prime[n_out - 1];
        for i in (0..n_out - 1).rev() {
            let next = x.at(&[i + 1, col]);
            *x.at_mut(&[i, col]) = d_prime[i] - c_prime[i] * next;
        }
    }
    x
}

/// Optimal Gaussian clip multiple for a given weight precision
/// (ACIQ-style): fewer levels want a tighter clip.
fn clip_sigmas(bits: Option<u8>) -> f32 {
    match bits {
        Some(1) => 1.5,
        Some(2) => 2.4,
        Some(3) => 2.7,
        Some(4) => 2.9,
        _ => 3.0,
    }
}

/// Builds the initial conductance matrix for `wc` (already in conductance
/// units) under `mapping`.
#[allow(clippy::needless_range_loop)] // loops walk suffix/M in lockstep
fn init_conductances(wc: &Tensor, mapping: Mapping, device: &DeviceConfig) -> Tensor {
    let range = device.range();
    let (n_out, n_in) = (wc.shape()[0], wc.shape()[1]);
    let mid = range.midpoint();
    match mapping {
        Mapping::DoubleElement => {
            // Both elements biased at mid-range (the NeuroSim convention):
            // m⁺ = mid + w/2, m⁻ = mid − w/2. A plain positive/negative
            // split would pin one element of every pair at g_min, where
            // clamping silently halves its updates.
            let mid = range.midpoint();
            let mut m = Tensor::zeros(&[2 * n_out, n_in]);
            for j in 0..n_out {
                for i in 0..n_in {
                    let w = wc.at(&[j, i]);
                    *m.at_mut(&[2 * j, i]) = range.clamp(mid + 0.5 * w);
                    *m.at_mut(&[2 * j + 1, i]) = range.clamp(mid - 0.5 * w);
                }
            }
            m
        }
        // Perm initialises exactly like BC — in logical row order; the
        // caller applies the physical permutation afterwards.
        Mapping::BiasColumn | Mapping::Perm => {
            let mut m = Tensor::zeros(&[n_out + 1, n_in]);
            for j in 0..n_out {
                for i in 0..n_in {
                    *m.at_mut(&[j, i]) = range.clamp(mid + wc.at(&[j, i]));
                }
            }
            for i in 0..n_in {
                *m.at_mut(&[n_out, i]) = mid;
            }
            m
        }
        Mapping::Acm => {
            // i.i.d. conductances around mid-range: m_j = mid + wc_j/√2,
            // reference tail at mid. The resulting effective weights are
            // *neighbour differences* of the He init — correct marginal
            // std, mildly anti-correlated across adjacent outputs — and
            // every element starts interior. (Decomposing an i.i.d. init
            // exactly would need suffix sums whose spread grows as σ√N_O,
            // saturating the conductance span for wide layers: an i.i.d.
            // W init is simply not in ACM's representable set. Training
            // *within* the column-balanced set is exactly the constraint
            // the paper's Sec. III-D/E describes.)
            let inv_sqrt2 = std::f32::consts::FRAC_1_SQRT_2;
            let mut m = Tensor::zeros(&[n_out + 1, n_in]);
            for i in 0..n_in {
                for j in 0..n_out {
                    *m.at_mut(&[j, i]) = range.clamp(mid + wc.at(&[j, i]) * inv_sqrt2);
                }
                *m.at_mut(&[n_out, i]) = mid;
            }
            m
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xbar_device::DeviceConfig;

    fn he_init(n_out: usize, n_in: usize, seed: u64) -> Tensor {
        let mut rng = XorShiftRng::new(seed);
        let std = (2.0 / n_in as f32).sqrt();
        Tensor::rand_normal(&[n_out, n_in], 0.0, std, &mut rng)
    }

    #[test]
    fn baseline_effective_weights_are_the_init() {
        let w = he_init(4, 6, 101);
        let p = MappedParam::from_signed(&w, WeightKind::Signed, DeviceConfig::ideal()).unwrap();
        assert!(p.effective_weights().all_close(&w, 0.0));
        assert_eq!(p.alpha(), 1.0);
        assert!(p.mapping().is_none());
    }

    #[test]
    fn mapped_init_approximates_signed_init() {
        let w = he_init(6, 8, 102);
        for mapping in Mapping::ALL {
            let p =
                MappedParam::from_signed(&w, WeightKind::Mapped(mapping), DeviceConfig::ideal())
                    .unwrap();
            let eff = p.effective_weights();
            // DE/BC are exact within clamping; ACM is approximate where
            // cumulative sums clamp. All should correlate strongly.
            let dot: f32 = eff.data().iter().zip(w.data()).map(|(&a, &b)| a * b).sum();
            let corr = dot / (eff.norm_sq().sqrt() * w.norm_sq().sqrt()).max(1e-9);
            assert!(corr > 0.7, "{mapping}: corr {corr}");
        }
    }

    #[test]
    fn de_and_bc_init_is_exact() {
        let w = he_init(5, 5, 103);
        for mapping in [Mapping::DoubleElement, Mapping::BiasColumn] {
            let p =
                MappedParam::from_signed(&w, WeightKind::Mapped(mapping), DeviceConfig::ideal())
                    .unwrap();
            assert!(
                p.effective_weights().all_close(&w, 1e-4),
                "{mapping} init should reconstruct exactly (4σ headroom)"
            );
        }
    }

    #[test]
    fn apply_parasitics_off_is_a_bitwise_noop() {
        let w = he_init(6, 8, 140);
        for mapping in Mapping::ALL {
            let mut p = MappedParam::from_signed(
                &w,
                WeightKind::Mapped(mapping),
                DeviceConfig::quantized_linear(4),
            )
            .unwrap();
            let mut rng = XorShiftRng::new(9);
            p.apply_variation(0.05, &mut rng);
            let before = p.variation_override.clone().unwrap();
            p.apply_parasitics(
                xbar_device::LineResistanceModel::none(),
                xbar_device::DriftModel::none(),
            )
            .unwrap();
            assert_eq!(
                p.variation_override.as_ref().unwrap().data(),
                before.data(),
                "{mapping}: inactive parasitics must not rewrite the override"
            );
        }
    }

    #[test]
    fn apply_parasitics_attenuates_the_programmed_override() {
        let w = he_init(6, 8, 141);
        let mut p = MappedParam::from_signed(
            &w,
            WeightKind::Mapped(Mapping::Acm),
            DeviceConfig::quantized_linear(4),
        )
        .unwrap();
        let ideal = p.quantized_shadow();
        p.apply_parasitics(
            xbar_device::LineResistanceModel::new(0.002),
            xbar_device::DriftModel::none(),
        )
        .unwrap();
        let loaded = p.variation_override.clone().unwrap();
        for (i, (&g, &g0)) in loaded.data().iter().zip(ideal.data()).enumerate() {
            assert!(g <= g0, "cell {i}: attenuation can only lower conductance");
            if g0 > 0.0 {
                assert!(g < g0, "cell {i}: live cell must see some IR drop");
            }
        }
    }

    #[test]
    fn apply_parasitics_drift_skips_stuck_cells() {
        let w = he_init(6, 8, 142);
        let mut p = MappedParam::from_signed(
            &w,
            WeightKind::Mapped(Mapping::BiasColumn),
            DeviceConfig::quantized_linear(4),
        )
        .unwrap();
        let mut rng = XorShiftRng::new(17);
        p.apply_faults(xbar_device::FaultModel::uniform(0.2), 0.0, false, &mut rng)
            .unwrap();
        let map = p.fault_map.clone().unwrap();
        let programmed = p.variation_override.clone().unwrap();
        assert!(map.num_stuck() > 0, "want stuck cells in this scenario");
        let drift = xbar_device::DriftModel::new(0.1, 0.0, 77).at_time(1000);
        p.apply_parasitics(xbar_device::LineResistanceModel::none(), drift)
            .unwrap();
        let drifted = p.variation_override.clone().unwrap();
        let cols = programmed.shape()[1];
        for (idx, (&before, &after)) in programmed.data().iter().zip(drifted.data()).enumerate() {
            let (r, c) = (idx / cols, idx % cols);
            if map.get(r, c).is_some() {
                assert_eq!(after, before, "stuck cell ({r}, {c}) must not drift");
            } else {
                assert!(after <= before, "live cell ({r}, {c}) decays toward g_min");
            }
        }
    }

    #[test]
    fn shadow_is_nonnegative_and_in_range() {
        let w = he_init(8, 10, 104);
        for mapping in Mapping::ALL {
            let p =
                MappedParam::from_signed(&w, WeightKind::Mapped(mapping), DeviceConfig::ideal())
                    .unwrap();
            assert!(p.shadow().min() >= 0.0, "{mapping}");
            assert!(p.shadow().max() <= 1.0, "{mapping}");
        }
    }

    #[test]
    fn num_params_reflects_element_count() {
        let w = he_init(4, 6, 105);
        let de = MappedParam::from_signed(
            &w,
            WeightKind::Mapped(Mapping::DoubleElement),
            DeviceConfig::ideal(),
        )
        .unwrap();
        assert_eq!(de.num_params(), 8 * 6);
        let acm =
            MappedParam::from_signed(&w, WeightKind::Mapped(Mapping::Acm), DeviceConfig::ideal())
                .unwrap();
        assert_eq!(acm.num_params(), 5 * 6);
    }

    #[test]
    fn gradient_descent_reduces_reconstruction_error() {
        // Train M so that W_eff approaches a random target: checks the
        // gradient routing α·Sᵀ·G end to end.
        let w = he_init(4, 4, 106);
        let target = he_init(4, 4, 107);
        for mapping in Mapping::ALL {
            let mut p =
                MappedParam::from_signed(&w, WeightKind::Mapped(mapping), DeviceConfig::ideal())
                    .unwrap();
            let err0 = p.effective_weights().sub(&target).unwrap().norm_sq();
            for _ in 0..200 {
                let diff = p.effective_weights().sub(&target).unwrap();
                p.zero_grad();
                p.accumulate_grad(&diff).unwrap();
                p.apply_update(0.05);
            }
            let err1 = p.effective_weights().sub(&target).unwrap().norm_sq();
            assert!(err1 < err0 * 0.2, "{mapping}: {err0} -> {err1}");
        }
    }

    #[test]
    fn quantized_forward_snaps_conductances() {
        let w = he_init(4, 4, 108);
        let dev = DeviceConfig::quantized_linear(2);
        let p = MappedParam::from_signed(&w, WeightKind::Mapped(Mapping::Acm), dev).unwrap();
        let g = p.conductances().unwrap();
        let q = dev.quantizer();
        for &v in g.data() {
            assert!((v - q.quantize(v)).abs() < 1e-6);
        }
    }

    #[test]
    fn updates_keep_shadow_in_range() {
        let w = he_init(4, 4, 109);
        let mut p = MappedParam::from_signed(
            &w,
            WeightKind::Mapped(Mapping::BiasColumn),
            DeviceConfig::ideal(),
        )
        .unwrap();
        // Huge gradient step in one direction.
        let big = Tensor::full(&[4, 4], 100.0);
        p.accumulate_grad(&big).unwrap();
        p.apply_update(1.0);
        assert!(p.shadow().min() >= 0.0 && p.shadow().max() <= 1.0);
    }

    #[test]
    fn nonlinear_updates_saturate_smoothly() {
        let w = he_init(4, 4, 110);
        let dev = DeviceConfig::quantized_nonlinear(4, 5.0);
        let mut p = MappedParam::from_signed(&w, WeightKind::Mapped(Mapping::Acm), dev).unwrap();
        let big = Tensor::full(&[4, 4], -10.0); // push all conductances up
        for _ in 0..50 {
            p.zero_grad();
            p.accumulate_grad(&big).unwrap();
            p.apply_update(0.01);
        }
        assert!(p.shadow().min() >= 0.0 && p.shadow().max() <= 1.0);
        // Nonlinear saturation: should approach but not exceed g_max.
        assert!(p.shadow().max() > 0.9);
    }

    #[test]
    fn variation_override_applies_and_clears() {
        let w = he_init(4, 4, 111);
        let dev = DeviceConfig::quantized_linear(3);
        let mut p = MappedParam::from_signed(&w, WeightKind::Mapped(Mapping::Acm), dev).unwrap();
        let clean = p.effective_weights();
        let mut rng = XorShiftRng::new(112);
        p.apply_variation(0.2, &mut rng);
        assert!(p.has_variation());
        let noisy = p.effective_weights();
        assert!(!noisy.all_close(&clean, 1e-4));
        p.clear_variation();
        assert!(p.effective_weights().all_close(&clean, 0.0));
    }

    #[test]
    fn fault_injection_overrides_and_reports() {
        use xbar_device::FaultModel;
        let w = he_init(8, 32, 120);
        let mut p =
            MappedParam::from_signed(&w, WeightKind::Mapped(Mapping::Acm), DeviceConfig::ideal())
                .unwrap();
        let clean = p.effective_weights();
        let mut rng = XorShiftRng::new(121);
        let (prog, remap) = p
            .apply_faults(FaultModel::uniform(0.05), 0.0, false, &mut rng)
            .unwrap();
        assert!(remap.is_none());
        assert!(prog.num_stuck() > 0);
        assert!(p.has_variation());
        assert!(!p.effective_weights().all_close(&clean, 1e-5));
        p.clear_variation();
        assert!(p.effective_weights().all_close(&clean, 0.0));
    }

    #[test]
    fn fault_remap_recovers_effective_weights() {
        use xbar_device::FaultModel;
        let w = he_init(8, 32, 122);
        let err_with = |remap: bool| {
            let mut p = MappedParam::from_signed(
                &w,
                WeightKind::Mapped(Mapping::Acm),
                DeviceConfig::ideal(),
            )
            .unwrap();
            let clean = p.effective_weights();
            // Same seed → identical fault pattern for both arms.
            let mut rng = XorShiftRng::new(123);
            let (_, remap_report) = p
                .apply_faults(FaultModel::uniform(0.03), 0.0, remap, &mut rng)
                .unwrap();
            assert_eq!(remap_report.is_some(), remap);
            p.effective_weights().sub(&clean).unwrap().norm_sq().sqrt()
        };
        let naive = err_with(false);
        let remapped = err_with(true);
        // Training spreads conductances across the whole range, so some
        // shifts clamp against the device limits — recovery is partial
        // here, unlike the mid-range-target case which absorbs exactly.
        assert!(
            remapped < naive * 0.75,
            "remapped {remapped} vs naive {naive}"
        );
    }

    #[test]
    fn fault_injection_rejects_baseline() {
        use xbar_device::FaultModel;
        let w = he_init(4, 4, 124);
        let mut p =
            MappedParam::from_signed(&w, WeightKind::Signed, DeviceConfig::ideal()).unwrap();
        let mut rng = XorShiftRng::new(125);
        assert!(p
            .apply_faults(FaultModel::uniform(0.01), 0.0, false, &mut rng)
            .is_err());
    }

    #[test]
    fn variation_on_baseline_perturbs_weights() {
        let w = he_init(4, 4, 113);
        let mut p =
            MappedParam::from_signed(&w, WeightKind::Signed, DeviceConfig::ideal()).unwrap();
        let mut rng = XorShiftRng::new(114);
        p.apply_variation(0.1, &mut rng);
        assert!(!p.effective_weights().all_close(&w, 1e-5));
    }

    #[test]
    fn grad_shape_is_validated() {
        let w = he_init(4, 4, 115);
        let mut p =
            MappedParam::from_signed(&w, WeightKind::Mapped(Mapping::Acm), DeviceConfig::ideal())
                .unwrap();
        assert!(p.accumulate_grad(&Tensor::zeros(&[3, 4])).is_err());
    }

    #[test]
    fn rejects_non_2d_init() {
        let w = Tensor::zeros(&[2, 2, 2]);
        assert!(MappedParam::from_signed(&w, WeightKind::Signed, DeviceConfig::ideal()).is_err());
    }

    #[test]
    fn conductances_error_on_baseline() {
        let w = he_init(2, 2, 116);
        let p = MappedParam::from_signed(&w, WeightKind::Signed, DeviceConfig::ideal()).unwrap();
        assert!(p.conductances().is_err());
    }

    #[test]
    fn untiled_device_gives_monolithic_grid() {
        let w = he_init(6, 8, 130);
        let p =
            MappedParam::from_signed(&w, WeightKind::Mapped(Mapping::Acm), DeviceConfig::ideal())
                .unwrap();
        let grid = p.tile_grid().unwrap();
        assert!(grid.is_monolithic());
        assert_eq!(grid.nd_total(), 7);
    }

    #[test]
    fn tiled_init_matches_monolithic_effective_weights() {
        use xbar_device::TileShape;
        let w = he_init(10, 12, 131);
        for mapping in Mapping::ALL {
            let mono =
                MappedParam::from_signed(&w, WeightKind::Mapped(mapping), DeviceConfig::ideal())
                    .unwrap();
            let dev = DeviceConfig::ideal().with_tile_shape(Some(TileShape::new(4, 4)));
            let tiled = MappedParam::from_signed(&w, WeightKind::Mapped(mapping), dev).unwrap();
            assert!(tiled.tile_grid().unwrap().num_tiles() > 1, "{mapping}");
            assert_eq!(tiled.alpha(), mono.alpha(), "{mapping}");
            match mapping {
                // DE/BC initialise element-locally (and Perm's folded-in
                // permutation cancels exactly): identical layouts.
                Mapping::DoubleElement | Mapping::BiasColumn | Mapping::Perm => assert!(
                    tiled
                        .effective_weights()
                        .all_close(&mono.effective_weights(), 1e-5),
                    "{mapping}"
                ),
                // ACM's neighbour-difference init sees different adjacency
                // at group boundaries; both layouts approximate w, so
                // check correlation rather than equality.
                Mapping::Acm => {
                    let eff = tiled.effective_weights();
                    let dot: f32 = eff.data().iter().zip(w.data()).map(|(&a, &b)| a * b).sum();
                    let corr = dot / (eff.norm_sq().sqrt() * w.norm_sq().sqrt()).max(1e-9);
                    assert!(corr > 0.7, "ACM tiled init corr {corr}");
                }
            }
        }
    }

    #[test]
    fn tiled_training_matches_monolithic_for_de_and_bc() {
        use xbar_device::TileShape;
        // DE and BC decompose exactly per group, and their gradient
        // routing is purely element-local, so tiled and monolithic
        // training trajectories coincide.
        let w = he_init(9, 6, 132);
        let target = he_init(9, 6, 133);
        for mapping in [Mapping::DoubleElement, Mapping::BiasColumn] {
            let mut mono =
                MappedParam::from_signed(&w, WeightKind::Mapped(mapping), DeviceConfig::ideal())
                    .unwrap();
            let dev = DeviceConfig::ideal().with_tile_shape(Some(TileShape::new(4, 4)));
            let mut tiled = MappedParam::from_signed(&w, WeightKind::Mapped(mapping), dev).unwrap();
            for _ in 0..20 {
                for p in [&mut mono, &mut tiled] {
                    let diff = p.effective_weights().sub(&target).unwrap();
                    p.zero_grad();
                    p.accumulate_grad(&diff).unwrap();
                    p.apply_update(0.05);
                }
                assert!(
                    tiled
                        .effective_weights()
                        .all_close(&mono.effective_weights(), 1e-4),
                    "{mapping}"
                );
            }
        }
    }

    #[test]
    fn tiled_gradient_descent_converges_for_all_mappings() {
        use xbar_device::TileShape;
        let w = he_init(10, 8, 134);
        let target = he_init(10, 8, 135);
        let dev = DeviceConfig::ideal().with_tile_shape(Some(TileShape::new(4, 4)));
        for mapping in Mapping::ALL {
            let mut p = MappedParam::from_signed(&w, WeightKind::Mapped(mapping), dev).unwrap();
            let err0 = p.effective_weights().sub(&target).unwrap().norm_sq();
            for _ in 0..200 {
                let diff = p.effective_weights().sub(&target).unwrap();
                p.zero_grad();
                p.accumulate_grad(&diff).unwrap();
                p.apply_update(0.05);
            }
            let err1 = p.effective_weights().sub(&target).unwrap().norm_sq();
            assert!(err1 < err0 * 0.2, "{mapping}: {err0} -> {err1}");
        }
    }

    #[test]
    fn tiled_bc_freezes_every_group_reference() {
        use xbar_device::TileShape;
        let w = he_init(10, 4, 136);
        let dev = DeviceConfig::quantized_linear(4).with_tile_shape(Some(TileShape::new(8, 4)));
        let mut p =
            MappedParam::from_signed(&w, WeightKind::Mapped(Mapping::BiasColumn), dev).unwrap();
        let grid = p.tile_grid().unwrap().clone();
        assert!(grid.col_groups().len() > 1);
        let mid = dev.range().midpoint();
        let check_refs = |p: &MappedParam| {
            let g = p.conductances().unwrap();
            for group in grid.col_groups() {
                let row = group.dev_start + group.dev_len - 1;
                for i in 0..p.n_in() {
                    assert_eq!(g.at(&[row, i]), mid, "reference row {row} moved");
                }
            }
        };
        check_refs(&p);
        let big = Tensor::full(&[10, 4], 5.0);
        p.accumulate_grad(&big).unwrap();
        p.apply_update(0.1);
        check_refs(&p);
    }

    #[test]
    fn perm_init_matches_bc_exactly() {
        // Perm is BC with reordered device rows and the inverse folded
        // into the periphery, so the effective weights coincide.
        let w = he_init(6, 8, 140);
        let bc = MappedParam::from_signed(
            &w,
            WeightKind::Mapped(Mapping::BiasColumn),
            DeviceConfig::ideal(),
        )
        .unwrap();
        let perm =
            MappedParam::from_signed(&w, WeightKind::Mapped(Mapping::Perm), DeviceConfig::ideal())
                .unwrap();
        assert_eq!(perm.alpha(), bc.alpha());
        assert!(perm
            .effective_weights()
            .all_close(&bc.effective_weights(), 1e-6));
        // The physical order really is a non-identity shuffle for a
        // generic init.
        let p = perm.permutation().unwrap();
        assert!(p.data().iter().enumerate().any(|(i, &v)| v as usize != i));
    }

    #[test]
    fn perm_reference_row_is_frozen_at_its_physical_position() {
        let w = he_init(6, 4, 141);
        let dev = DeviceConfig::quantized_linear(4);
        let mut p = MappedParam::from_signed(&w, WeightKind::Mapped(Mapping::Perm), dev).unwrap();
        let refs = p.reference_rows();
        assert_eq!(refs.len(), 1);
        let mid = dev.range().midpoint();
        let check = |p: &MappedParam| {
            let g = p.conductances().unwrap();
            for i in 0..p.n_in() {
                assert_eq!(g.at(&[refs[0], i]), mid, "reference moved");
            }
        };
        check(&p);
        let big = Tensor::full(&[6, 4], 5.0);
        p.accumulate_grad(&big).unwrap();
        p.apply_update(0.1);
        check(&p);
    }

    #[test]
    fn perm_state_round_trips_bitwise_through_a_snapshot() {
        use crate::persist::{collect_state, restore_state};
        use crate::{Dense, Layer};
        let dev = DeviceConfig::quantized_linear(4);
        let mut rng = XorShiftRng::new(150);
        let mut net = Dense::new(8, 5, WeightKind::Mapped(Mapping::Perm), dev, &mut rng).unwrap();
        // Train a few steps so shadow, perm, and update stream all carry
        // non-trivial state.
        let x = Tensor::rand_uniform(&[4, 8], -1.0, 1.0, &mut rng);
        let target = Tensor::rand_uniform(&[4, 5], -0.5, 0.5, &mut rng);
        for _ in 0..5 {
            let y = net.forward(&x, true).unwrap();
            let diff = y.sub(&target).unwrap();
            net.zero_grad();
            net.backward(&diff).unwrap();
            net.update(0.05);
        }
        let snapshot = collect_state(&mut net);
        // The permutation is part of the persisted state.
        assert!(
            snapshot.iter().any(|item| item.name().ends_with(".perm")),
            "snapshot must carry the Perm row order"
        );
        let want = net.forward(&x, false).unwrap();
        // Restore into a fresh identically-constructed network (the
        // persistence contract: α and architecture are rebuilt from the
        // same constructor, trained state comes from the snapshot).
        let mut rng2 = XorShiftRng::new(150);
        let mut other =
            Dense::new(8, 5, WeightKind::Mapped(Mapping::Perm), dev, &mut rng2).unwrap();
        assert!(!other.forward(&x, false).unwrap().all_close(&want, 1e-6));
        restore_state(&mut other, &snapshot).unwrap();
        let got = other.forward(&x, false).unwrap();
        assert_eq!(got.data(), want.data(), "restore must be bitwise");
        assert_eq!(
            other.weights().permutation().unwrap().data(),
            net.weights().permutation().unwrap().data()
        );
    }

    #[test]
    fn tiled_fault_remap_stays_group_local() {
        use xbar_device::{FaultModel, TileShape};
        let w = he_init(12, 16, 137);
        let dev = DeviceConfig::ideal().with_tile_shape(Some(TileShape::new(16, 4)));
        let mut p = MappedParam::from_signed(&w, WeightKind::Mapped(Mapping::Acm), dev).unwrap();
        let grid = p.tile_grid().unwrap().clone();
        let clean = p.conductances().unwrap();
        let mut rng = XorShiftRng::new(138);
        let (_, remap) = p
            .apply_faults(FaultModel::uniform(0.02), 0.0, true, &mut rng)
            .unwrap();
        let remap = remap.unwrap();
        assert!(remap.stuck_cells() > 0);
        // Re-derive the sampled fault pattern: same seed, same draw order.
        let mut rng2 = XorShiftRng::new(138);
        let map = FaultModel::uniform(0.02).sample_map(grid.nd_total(), 16, &mut rng2);
        assert!(map.num_stuck() > 0);
        // The periphery is block-diagonal, so compensation for a fault in
        // one column group never touches another group's rows: any
        // (group, input-column) region with no fault must be unchanged.
        let programmed = p.effective_weights(); // forces the override path
        assert_eq!(programmed.shape(), [12, 16]);
        let faulty = match &p.variation_override {
            Some(t) => t.clone(),
            None => unreachable!("apply_faults installs an override"),
        };
        for g in grid.col_groups() {
            for col in 0..16 {
                let group_rows = g.dev_start..g.dev_start + g.dev_len;
                let has_fault = map
                    .iter_stuck()
                    .any(|(row, c, _)| c == col && group_rows.contains(&row));
                if has_fault {
                    continue;
                }
                for row in group_rows {
                    assert_eq!(
                        faulty.at(&[row, col]),
                        clean.at(&[row, col]),
                        "remap leaked into fault-free group region ({row}, {col})"
                    );
                }
            }
        }
    }

    /// A device with an active wear-out process and a physical tile bound,
    /// as the self-healing scrub path requires.
    fn lifetime_device(rate: f32, seed: u64) -> DeviceConfig {
        use xbar_device::{LifetimeFaultModel, TileShape};
        DeviceConfig::quantized_linear(4)
            .with_tile_shape(Some(TileShape::new(8, 8)))
            .with_lifetime_faults(LifetimeFaultModel::new(rate, seed).unwrap())
    }

    #[test]
    fn scrub_without_lifetime_faults_is_inert() {
        use crate::persist::collect_state;
        use crate::Dense;
        let w = he_init(6, 8, 160);
        let mut p =
            MappedParam::from_signed(&w, WeightKind::Mapped(Mapping::Acm), DeviceConfig::ideal())
                .unwrap();
        assert!(!p.scrub_active());
        assert_eq!(p.scrub_epoch(), 0);
        let before = p.effective_weights();
        let report = p.scrub_tick(true, &RepairPolicy::default()).unwrap();
        assert!(report.is_none(), "inactive lifetime must not scrub");
        assert_eq!(
            p.effective_weights().data(),
            before.data(),
            "a no-op tick must be bitwise invisible"
        );
        // The persisted component set is unchanged: no scrub entries, so
        // pre-existing checkpoints keep restoring.
        let mut rng = XorShiftRng::new(161);
        let mut net = Dense::new(
            8,
            6,
            WeightKind::Mapped(Mapping::Acm),
            DeviceConfig::ideal(),
            &mut rng,
        )
        .unwrap();
        let snapshot = collect_state(&mut net);
        assert!(
            snapshot.iter().all(|item| !item.name().contains("scrub")),
            "inactive lifetime must not add state components"
        );
    }

    #[test]
    fn scrub_state_round_trips_bitwise_through_a_snapshot() {
        use crate::persist::{collect_state, restore_state};
        use crate::{scrub_network, Dense, Layer};
        let mut rng = XorShiftRng::new(162);
        let mut net = Dense::new(
            24,
            12,
            WeightKind::Mapped(Mapping::Acm),
            lifetime_device(0.01, 24),
            &mut rng,
        )
        .unwrap();
        let x = Tensor::rand_uniform(&[4, 24], -1.0, 1.0, &mut rng);
        let target = Tensor::rand_uniform(&[4, 12], -0.5, 0.5, &mut rng);
        let policy = RepairPolicy::default();
        let (mut detections, mut repairs) = (0, 0);
        // Interleave training and scrubbing so the snapshot carries
        // non-trivial shadow, health, and shift state.
        for _ in 0..6 {
            let y = net.forward(&x, true).unwrap();
            let diff = y.sub(&target).unwrap();
            net.zero_grad();
            net.backward(&diff).unwrap();
            net.update(0.05);
            let rep = scrub_network(&mut net, true, &policy).unwrap().unwrap();
            detections += rep.detections;
            repairs += rep.repairs.len();
        }
        assert!(detections > 0, "fault arrivals must trip the checksum");
        assert!(repairs > 0, "detections must trigger repair attempts");
        let snapshot = collect_state(&mut net);
        for suffix in ["scrub_epoch", "scrub_health", "scrub_shift"] {
            assert!(
                snapshot.iter().any(|item| item.name().ends_with(suffix)),
                "snapshot must carry {suffix}"
            );
        }
        let want = net.forward(&x, false).unwrap();
        // Restore into a fresh identically-constructed network: the served
        // (aged + healed) array is rebuilt from the persisted
        // (shadow, shift, health, epoch) alone.
        let mut rng2 = XorShiftRng::new(162);
        let mut other = Dense::new(
            24,
            12,
            WeightKind::Mapped(Mapping::Acm),
            lifetime_device(0.01, 24),
            &mut rng2,
        )
        .unwrap();
        restore_state(&mut other, &snapshot).unwrap();
        let got = other.forward(&x, false).unwrap();
        assert_eq!(got.data(), want.data(), "scrub restore must be bitwise");
    }

    #[test]
    fn scrub_detection_recovers_weights_lost_to_faults() {
        let w = he_init(12, 24, 163);
        let mut on = MappedParam::from_signed(
            &w,
            WeightKind::Mapped(Mapping::Acm),
            lifetime_device(0.01, 25),
        )
        .unwrap();
        let mut off = on.clone();
        let clean = on.effective_weights();
        let policy = RepairPolicy::default();
        let mut detections = 0;
        for _ in 0..8 {
            detections += on.scrub_tick(true, &policy).unwrap().unwrap().detections;
            off.scrub_tick(false, &policy).unwrap().unwrap();
        }
        assert!(detections > 0, "faults must be detected in the on arm");
        assert_eq!(on.scrub_epoch(), 8);
        assert_eq!(off.scrub_epoch(), 8);
        let err = |p: &MappedParam| {
            let eff = p.effective_weights();
            eff.sub(&clean).unwrap().norm_sq().sqrt()
        };
        let (err_on, err_off) = (err(&on), err(&off));
        assert!(
            err_off > 0.0,
            "the maintenance-free arm must accumulate weight damage"
        );
        assert!(
            err_on < err_off,
            "detection + repair must serve weights closer to fault-free: \
             on {err_on} vs off {err_off}"
        );
    }
}
