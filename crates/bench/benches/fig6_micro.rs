//! Criterion micro-benchmark of the Fig. 6 pipeline: one Monte-Carlo
//! variation sample (perturb → evaluate → restore) on a trained tiny net.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xbar_bench::experiments::{ModelType, NetKind, Setup};
use xbar_core::Mapping;
use xbar_device::DeviceConfig;
use xbar_models::ModelScale;
use xbar_nn::{evaluate, Layer};
use xbar_tensor::rng::XorShiftRng;

fn bench_variation_sample(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_mc_sample");
    group.sample_size(10);
    let mut setup = Setup::new(NetKind::Lenet);
    setup.scale = ModelScale::Tiny;
    setup.train_n = 120;
    setup.test_n = 60;
    setup.epochs = 1;
    let data = setup.data();
    for mapping in [Mapping::Acm, Mapping::DoubleElement] {
        let (mut net, _) = setup
            .train_model_keep(
                ModelType::Mapped(mapping),
                DeviceConfig::quantized_linear(3),
                &data,
            )
            .unwrap();
        let mut rng = XorShiftRng::new(8);
        group.bench_function(BenchmarkId::from_parameter(mapping.tag()), |b| {
            b.iter(|| {
                net.visit_mapped(&mut |p| p.apply_variation(0.15, &mut rng));
                let (_, acc) =
                    evaluate(&mut net, data.test.features(), data.test.labels(), 32).unwrap();
                net.visit_mapped(&mut |p| p.clear_variation());
                acc
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_variation_sample);
criterion_main!(benches);
