//! Criterion benchmarks of one SGD training step through crossbar-mapped
//! layers (forward + backward + device update).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xbar_core::Mapping;
use xbar_device::DeviceConfig;
use xbar_nn::{Dense, Layer, SoftmaxCrossEntropy, WeightKind};
use xbar_tensor::{rng::XorShiftRng, Tensor};

fn bench_dense_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("dense_train_step");
    for (label, kind, device) in [
        ("signed-fp", WeightKind::Signed, DeviceConfig::ideal()),
        (
            "acm-4b-linear",
            WeightKind::Mapped(Mapping::Acm),
            DeviceConfig::quantized_linear(4),
        ),
        (
            "acm-4b-nonlinear",
            WeightKind::Mapped(Mapping::Acm),
            DeviceConfig::quantized_nonlinear(4, 5.0),
        ),
        (
            "de-4b-linear",
            WeightKind::Mapped(Mapping::DoubleElement),
            DeviceConfig::quantized_linear(4),
        ),
    ] {
        let mut rng = XorShiftRng::new(7);
        let mut layer = Dense::new(128, 64, kind, device, &mut rng).unwrap();
        let x = Tensor::rand_normal(&[32, 128], 0.0, 1.0, &mut rng);
        let labels: Vec<usize> = (0..32).map(|i| i % 64).collect();
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| {
                let y = layer.forward(&x, true).unwrap();
                let (_, grad) = SoftmaxCrossEntropy::forward(&y, &labels).unwrap();
                layer.zero_grad();
                layer.backward(&grad).unwrap();
                layer.update(0.01);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dense_step);
criterion_main!(benches);
