//! Criterion benchmarks of the signed↔non-negative decomposition kernels
//! (the operations behind every figure's training loop).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xbar_core::{compose, decompose, decompose_with_periphery, Mapping};
use xbar_device::ConductanceRange;
use xbar_tensor::{rng::XorShiftRng, Tensor};

fn bench_decompose(c: &mut Criterion) {
    let mut group = c.benchmark_group("decompose");
    let range = ConductanceRange::normalized();
    for &(no, ni) in &[(32usize, 64usize), (100, 400)] {
        let mut rng = XorShiftRng::new(1);
        let w = Tensor::rand_uniform(&[no, ni], -0.2 / no as f32, 0.2 / no as f32, &mut rng);
        for mapping in Mapping::ALL {
            group.bench_with_input(
                BenchmarkId::new(mapping.tag(), format!("{no}x{ni}")),
                &w,
                |b, w| b.iter(|| decompose(w, mapping, range).unwrap()),
            );
        }
        group.bench_with_input(
            BenchmarkId::new("generic-ACM", format!("{no}x{ni}")),
            &w,
            |b, w| {
                let s = Mapping::Acm.periphery(no);
                b.iter(|| decompose_with_periphery(w, &s, range).unwrap())
            },
        );
    }
    group.finish();
}

fn bench_compose(c: &mut Criterion) {
    let mut group = c.benchmark_group("compose");
    let range = ConductanceRange::normalized();
    let mut rng = XorShiftRng::new(2);
    let w = Tensor::rand_uniform(&[100, 400], -0.002, 0.002, &mut rng);
    for mapping in Mapping::ALL {
        let m = decompose(&w, mapping, range).unwrap();
        group.bench_with_input(BenchmarkId::new(mapping.tag(), "100x400"), &m, |b, m| {
            b.iter(|| compose(m, mapping).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_decompose, bench_compose);
criterion_main!(benches);
