//! Criterion benchmarks of the synapse device models: quantization,
//! nonlinear pulse updates, and variation sampling.

use criterion::{criterion_group, criterion_main, Criterion};
use xbar_device::{ConductanceRange, Quantizer, UpdateModel, VariationModel};
use xbar_tensor::{rng::XorShiftRng, Tensor};

fn bench_quantizer(c: &mut Criterion) {
    let range = ConductanceRange::normalized();
    let q = Quantizer::new(4, range);
    let mut rng = XorShiftRng::new(5);
    let mut values: Vec<f32> = (0..10_000).map(|_| rng.next_f32()).collect();
    c.bench_function("quantize_10k_elements", |b| {
        b.iter(|| {
            q.quantize_slice(&mut values);
            values[0]
        })
    });
}

fn bench_nonlinear_update(c: &mut Criterion) {
    let range = ConductanceRange::normalized();
    let m = UpdateModel::symmetric_nonlinear(5.0);
    c.bench_function("nonlinear_apply_fractional", |b| {
        let mut g = 0.3f32;
        b.iter(|| {
            g = m.apply_fractional(g, 0.25, 31, range);
            if g > 0.9 {
                g = 0.1;
            }
            g
        })
    });
}

fn bench_variation_sampling(c: &mut Criterion) {
    let range = ConductanceRange::normalized();
    let var = VariationModel::new(0.15);
    let t = Tensor::full(&[100, 400], 0.5);
    let mut rng = XorShiftRng::new(6);
    c.bench_function("variation_sample_40k_elements", |b| {
        b.iter(|| var.sample_tensor(&t, range, &mut rng))
    });
}

criterion_group!(
    benches,
    bench_quantizer,
    bench_nonlinear_update,
    bench_variation_sampling
);
criterion_main!(benches);
