//! Criterion micro-benchmark of the Fig. 5 experiment pipeline: one
//! training epoch per mapping at one bit point on a tiny LeNet — measures
//! the cost of regenerating one cell of the paper's precision sweeps.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xbar_bench::experiments::{ModelType, NetKind, Setup};
use xbar_core::Mapping;
use xbar_device::DeviceConfig;
use xbar_models::ModelScale;

fn bench_fig5_cell(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_cell");
    group.sample_size(10);
    let mut setup = Setup::new(NetKind::Lenet);
    setup.scale = ModelScale::Tiny;
    setup.train_n = 120;
    setup.test_n = 40;
    setup.epochs = 1;
    let data = setup.data();
    for mapping in Mapping::ALL {
        group.bench_function(BenchmarkId::from_parameter(mapping.tag()), |b| {
            b.iter(|| {
                setup
                    .train_model(
                        ModelType::Mapped(mapping),
                        DeviceConfig::quantized_linear(4),
                        &data,
                    )
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig5_cell);
criterion_main!(benches);
