//! Criterion benchmark of the Table I analytical cost model (trivially
//! fast; included so every paper artefact has a bench target).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xbar_core::Mapping;
use xbar_neurosim::{evaluate, table1, TechParams, Workload};

fn bench_table1(c: &mut Criterion) {
    let params = TechParams::nm14();
    c.bench_function("table1_all_mappings", |b| b.iter(|| table1(&params)));

    let mut group = c.benchmark_group("cost_evaluate");
    let w = Workload::table1_mlp();
    for mapping in Mapping::ALL {
        group.bench_function(BenchmarkId::from_parameter(mapping.tag()), |b| {
            b.iter(|| evaluate(&w, mapping, &params))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
