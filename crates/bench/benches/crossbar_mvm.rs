//! Criterion benchmarks of crossbar MVM evaluation (the analog + periphery
//! pipeline behind every inference experiment).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xbar_core::{CrossbarArray, Mapping};
use xbar_device::DeviceConfig;
use xbar_tensor::{rng::XorShiftRng, Tensor};

fn bench_mvm(c: &mut Criterion) {
    let mut group = c.benchmark_group("crossbar_mvm");
    for &(no, ni) in &[(32usize, 64usize), (100, 400)] {
        let mut rng = XorShiftRng::new(3);
        let w = Tensor::rand_uniform(&[no, ni], -0.2 / no as f32, 0.2 / no as f32, &mut rng);
        let x = Tensor::rand_uniform(&[ni], -1.0, 1.0, &mut rng);
        for mapping in Mapping::ALL {
            let xbar = CrossbarArray::program_signed(
                &w,
                mapping,
                DeviceConfig::quantized_linear(4),
                &mut rng,
            )
            .unwrap();
            group.bench_with_input(
                BenchmarkId::new(mapping.tag(), format!("{no}x{ni}")),
                &x,
                |b, x| b.iter(|| xbar.mvm_signed(x).unwrap()),
            );
        }
    }
    group.finish();
}

fn bench_batched_forward(c: &mut Criterion) {
    let mut group = c.benchmark_group("crossbar_batched_forward");
    let mut rng = XorShiftRng::new(4);
    let w = Tensor::rand_uniform(&[32, 64], -0.005, 0.005, &mut rng);
    let x = Tensor::rand_uniform(&[64, 64], -1.0, 1.0, &mut rng);
    for mapping in Mapping::ALL {
        let xbar =
            CrossbarArray::program_signed(&w, mapping, DeviceConfig::ideal(), &mut rng).unwrap();
        group.bench_with_input(BenchmarkId::new(mapping.tag(), "batch64"), &x, |b, x| {
            b.iter(|| xbar.forward(x).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mvm, bench_batched_forward);
criterion_main!(benches);
